package repro

// End-to-end tests of the command-line tools: build each binary once and
// drive it through its documented flows.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "repro-bins")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"dictmatch", "lzpack", "optparse", "benchtab", "textgen", "streedump", "dictpack"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return buildDir
}

func run(t *testing.T, stdin []byte, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = bytes.NewReader(stdin)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestToolDictmatch(t *testing.T) {
	bins := binaries(t)
	dir := t.TempDir()
	dict := filepath.Join(dir, "pats.txt")
	if err := os.WriteFile(dict, []byte("she\nhe\nhers\nhis\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := run(t, []byte("ushers"), filepath.Join(bins, "dictmatch"), "-dict", dict)
	want := "1\tshe\n2\thers\n"
	if out != want {
		t.Fatalf("dictmatch output %q want %q", out, want)
	}
	// AC engine must agree.
	out2, _ := run(t, []byte("ushers"), filepath.Join(bins, "dictmatch"), "-dict", dict, "-engine", "ac")
	if out2 != want {
		t.Fatalf("ac engine output %q", out2)
	}
	// Stats mode mentions the PRAM ledger.
	_, errOut := run(t, []byte("ushers"), filepath.Join(bins, "dictmatch"), "-dict", dict, "-stats", "-q")
	if !strings.Contains(errOut, "work=") {
		t.Fatalf("stats output missing ledger: %q", errOut)
	}
}

// TestToolDictmatchCompressed: -compressed consumes an lzpack container and
// prints exactly the lines the plain path prints on the expanded text; a
// file that is not an LZ1R1 container exits non-zero with a typed message,
// never a panic.
func TestToolDictmatchCompressed(t *testing.T) {
	bins := binaries(t)
	dictmatch := filepath.Join(bins, "dictmatch")
	dir := t.TempDir()
	dict := filepath.Join(dir, "pats.txt")
	if err := os.WriteFile(dict, []byte("she\nhe\nhers\nhis\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("ushers and his heirs "), 100)

	want, _ := run(t, payload, dictmatch, "-dict", dict)
	packed, _ := run(t, payload, filepath.Join(bins, "lzpack"), "-c")
	got, _ := run(t, []byte(packed), dictmatch, "-dict", dict, "-compressed")
	if got != want {
		t.Fatalf("-compressed output diverges from plain match:\ngot  %q\nwant %q", got, want)
	}
	// -stats reports the compressed-domain economics.
	_, errOut := run(t, []byte(packed), dictmatch, "-dict", dict, "-compressed", "-q", "-stats")
	if !strings.Contains(errOut, "touched=") || !strings.Contains(errOut, "represented=") {
		t.Fatalf("compressed stats missing accounting: %q", errOut)
	}

	// Not a container: non-zero exit, typed message, no panic.
	cmd := exec.Command(dictmatch, "-dict", dict, "-compressed")
	cmd.Stdin = bytes.NewReader(payload)
	combined, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-compressed accepted plain text: %s", combined)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("unexpected run failure: %v", err)
	}
	if !strings.Contains(string(combined), "not an LZ1R1 container") {
		t.Fatalf("rejection message: %q", combined)
	}
	if strings.Contains(string(combined), "panic") {
		t.Fatalf("rejection panicked: %q", combined)
	}
}

func TestToolLzpackRoundTrip(t *testing.T) {
	bins := binaries(t)
	payload := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	packed, _ := run(t, payload, filepath.Join(bins, "lzpack"), "-c")
	if len(packed) >= len(payload) {
		t.Fatalf("no compression: %d >= %d", len(packed), len(payload))
	}
	for _, mode := range []string{"jump", "cc"} {
		restored, _ := run(t, []byte(packed), filepath.Join(bins, "lzpack"), "-d", "-mode", mode)
		if restored != string(payload) {
			t.Fatalf("mode %s roundtrip failed", mode)
		}
	}
}

func TestToolOptparse(t *testing.T) {
	bins := binaries(t)
	dir := t.TempDir()
	dict := filepath.Join(dir, "words.txt")
	if err := os.WriteFile(dict, []byte("a\nb\naa\naab\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut := run(t, []byte("aaab"), filepath.Join(bins, "optparse"), "-dict", dict, "-emit")
	if out != "0\ta\n1\taab\n" {
		t.Fatalf("optparse parse %q", out)
	}
	if !strings.Contains(errOut, "optimal: 2 phrases") || !strings.Contains(errOut, "greedy: 3 phrases") {
		t.Fatalf("optparse summary %q", errOut)
	}
	// Missing prefix property must be rejected without -close.
	if err := os.WriteFile(dict, []byte("abc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bins, "optparse"), "-dict", dict)
	cmd.Stdin = strings.NewReader("abc")
	if err := cmd.Run(); err == nil {
		t.Fatal("optparse accepted a non-prefix-closed dictionary")
	}
}

func TestToolTextgenAndBenchtab(t *testing.T) {
	bins := binaries(t)
	out, _ := run(t, nil, filepath.Join(bins, "textgen"), "-kind", "fibonacci", "-n", "13")
	if out != "abaababaabaab" {
		t.Fatalf("textgen fibonacci = %q", out)
	}
	// Determinism across runs.
	a, _ := run(t, nil, filepath.Join(bins, "textgen"), "-kind", "dna", "-n", "100", "-seed", "9")
	b, _ := run(t, nil, filepath.Join(bins, "textgen"), "-kind", "dna", "-n", "100", "-seed", "9")
	if a != b {
		t.Fatal("textgen not deterministic")
	}
	list, _ := run(t, nil, filepath.Join(bins, "benchtab"), "-list")
	if !strings.Contains(list, "E1") || !strings.Contains(list, "E13") {
		t.Fatalf("benchtab -list: %q", list)
	}
	tbl, _ := run(t, nil, filepath.Join(bins, "benchtab"), "-quick", "-run", "E5")
	if !strings.Contains(tbl, "fault injection") {
		t.Fatalf("benchtab E5 output missing: %q", tbl)
	}
}

// TestToolDictpackCompile drives the snapshot upgrade flow: pack a plain
// snapshot, inspect (no dense section), compile in place, inspect again
// (dense shape printed), verify still passes, a second compile is an
// idempotent no-op, and a corrupted file is quarantined instead of
// overwritten.
func TestToolDictpackCompile(t *testing.T) {
	bins := binaries(t)
	dictpack := filepath.Join(bins, "dictpack")
	dir := t.TempDir()
	pats := filepath.Join(dir, "pats.txt")
	snap := filepath.Join(dir, "dict.dmsnap")
	if err := os.WriteFile(pats, []byte("she\nhe\nhers\nhis\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, _ := run(t, nil, dictpack, "pack", "-dict", pats, "-o", snap)
	if !strings.Contains(out, "packed 4 patterns") {
		t.Fatalf("pack: %q", out)
	}
	plain, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	out, _ = run(t, nil, dictpack, "inspect", "-in", snap)
	if strings.Contains(out, "dense:") {
		t.Fatalf("plain snapshot inspect already mentions dense: %q", out)
	}

	out, _ = run(t, nil, dictpack, "compile", "-in", snap)
	if !strings.Contains(out, "compiled 4 patterns") || !strings.Contains(out, "DENSE section added") {
		t.Fatalf("compile: %q", out)
	}
	upgraded, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(upgraded) <= len(plain) {
		t.Fatalf("upgrade did not grow the file: %d <= %d", len(upgraded), len(plain))
	}

	out, _ = run(t, nil, dictpack, "inspect", "-in", snap)
	if !strings.Contains(out, "dense:") || !strings.Contains(out, "table bytes") {
		t.Fatalf("upgraded inspect missing dense shape: %q", out)
	}
	out, _ = run(t, nil, dictpack, "verify", "-in", snap)
	if !strings.Contains(out, "ok:") {
		t.Fatalf("verify after upgrade: %q", out)
	}

	// Idempotent: a second compile reports the existing section and leaves
	// the bytes alone.
	out, _ = run(t, nil, dictpack, "compile", "-in", snap)
	if !strings.Contains(out, "already compiled") {
		t.Fatalf("second compile: %q", out)
	}
	same, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, upgraded) {
		t.Fatal("idempotent compile rewrote the file")
	}

	// -o writes elsewhere, leaving the input untouched.
	alt := filepath.Join(dir, "alt.dmsnap")
	if err := os.WriteFile(snap, plain, 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, nil, dictpack, "compile", "-in", snap, "-o", alt)
	if got, _ := os.ReadFile(snap); !bytes.Equal(got, plain) {
		t.Fatal("-o compile modified the input file")
	}
	if got, _ := os.ReadFile(alt); !bytes.Equal(got, upgraded) {
		t.Fatalf("-o output differs from in-place upgrade (%d vs %d bytes)", len(got), len(upgraded))
	}

	// Corrupt input: compile must refuse and quarantine, not clobber.
	bad := filepath.Join(dir, "bad.dmsnap")
	mangled := append([]byte(nil), plain...)
	mangled[len(mangled)/2] ^= 0xFF
	if err := os.WriteFile(bad, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(dictpack, "compile", "-in", bad)
	combined, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("compile accepted a corrupt snapshot: %s", combined)
	}
	if !strings.Contains(string(combined), "quarantine") && !strings.Contains(string(combined), "moved to") {
		t.Fatalf("corrupt compile did not mention quarantine: %s", combined)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still in place after quarantine")
	}
}

func TestToolStreedump(t *testing.T) {
	bins := binaries(t)
	out, _ := run(t, []byte("banana"), filepath.Join(bins, "streedump"), "-locate", "ana")
	if !strings.Contains(out, `"ana" occurs 2 times: 1 3`) {
		t.Fatalf("streedump locate: %q", out)
	}
	if !strings.Contains(out, "longest repeated substring \"ana\"") {
		t.Fatalf("streedump stats: %q", out)
	}
	dot, _ := run(t, []byte("banana"), filepath.Join(bins, "streedump"), "-dot")
	if !strings.Contains(dot, "digraph suffixtree") || strings.Count(dot, "->") != 10 {
		t.Fatalf("streedump dot: %d edges", strings.Count(dot, "->"))
	}
}
