# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-json experiments quick-experiments fuzz serve chaos soak cluster-soak partition-soak fmt-check clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerates the committed runtime-benchmark record: the P-series
# (legacy vs pooled engine, internal/bench/perf.go), the S-series
# (one-shot vs streaming matching, internal/bench/streaming.go), the
# D-series (cold preprocess vs snapshot load, internal/bench/persist.go),
# the C-series (tree walk vs compiled dense automaton,
# internal/bench/dense.go), the B-series (solo vs batched serving,
# internal/bench/batch.go), the Z-series (compressed-domain matching
# vs decompress-then-match, internal/bench/czsearch.go), the
# K-series (1-node vs 3-node cluster throughput and hedged tail,
# internal/bench/cluster.go), and the R-series (resilience layer
# healthy-path overhead and breaker-guarded blackhole tails,
# internal/bench/resilience.go).
bench-json:
	$(GO) run ./cmd/benchtab -json BENCH_PR10.json

experiments:
	$(GO) run ./cmd/benchtab | tee experiments_raw.txt

quick-experiments:
	$(GO) run ./cmd/benchtab -quick

fuzz:
	$(GO) test -fuzz FuzzBuildInvariants -fuzztime 30s ./internal/suffixtree/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/lz/
	$(GO) test -fuzz FuzzDecodeStream -fuzztime 30s ./internal/lz/
	$(GO) test -fuzz FuzzHandleRequests -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzStreamEquivalence -fuzztime 30s ./internal/stream/
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/persist/
	$(GO) test -fuzz FuzzDenseEquivalence -fuzztime 30s ./internal/dense/
	$(GO) test -fuzz FuzzBatchEquivalence -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzCzsearchEquivalence -fuzztime 30s ./internal/czsearch/

# Flags: -addr :8080 -procs N -max-dicts N -max-inflight N -timeout 30s
serve:
	$(GO) run ./cmd/matchd $(SERVE_FLAGS)

# Fault-injection suite: the chaos build tag compiles the internal/chaos
# hooks live (without it every injection point is a compiled-out no-op) and
# runs the per-package chaos_test.go suites plus the e2e server test under
# the race detector.
chaos:
	$(GO) test -tags chaos -race ./...

# 30-second black-box soak: a chaos-built matchd under a fixed seed, oracle-
# verified concurrent traffic, SIGTERM drain check. SOAK_FLAGS appends, e.g.
# SOAK_FLAGS='-duration 5m -seed 7'.
soak:
	$(GO) build -tags chaos -o /tmp/matchd-chaos ./cmd/matchd
	$(GO) run ./cmd/chaossoak -bin /tmp/matchd-chaos -duration 30s -seed 42 $(SOAK_FLAGS)

# 30-second 3-node cluster soak: one node SIGKILLed mid-traffic and
# restarted warm, oracle-verified requests through every node throughout,
# replication pulls asserted, clean SIGTERM drains. The kill is the fault
# schedule, so a plain (non-chaos) build suffices.
cluster-soak:
	$(GO) build -o /tmp/matchd ./cmd/matchd
	$(GO) run ./cmd/chaossoak -bin /tmp/matchd -cluster 3 -duration 30s -seed 42 $(SOAK_FLAGS)

# 30-second 3-node partition soak: the primary owner is asymmetrically
# partitioned for the middle third (every other node's transport refuses
# its connections; the victim itself stays healthy and sees nothing),
# oracle-verified traffic throughout, breaker open→half-open→closed
# lifecycle and stale/rerouted serving asserted from /metrics. Bounded
# well under 90s end to end.
partition-soak:
	$(GO) build -o /tmp/matchd ./cmd/matchd
	$(GO) run ./cmd/chaossoak -bin /tmp/matchd -cluster 3 -partition -duration 30s -seed 42 $(SOAK_FLAGS)

clean:
	rm -rf internal/*/testdata/fuzz
