# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments quick-experiments fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/benchtab | tee experiments_raw.txt

quick-experiments:
	$(GO) run ./cmd/benchtab -quick

fuzz:
	$(GO) test -fuzz FuzzBuildInvariants -fuzztime 30s ./internal/suffixtree/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/lz/
	$(GO) test -fuzz FuzzDecodeStream -fuzztime 30s ./internal/lz/

clean:
	rm -rf internal/*/testdata/fuzz
