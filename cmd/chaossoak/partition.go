package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// rpcPeerStat mirrors the per-peer breaker slice of /metrics
// resilience.rpc.peers.
type rpcPeerStat struct {
	State     string `json:"state"`
	Failures  int64  `json:"failures"`
	Opens     int64  `json:"opens"`
	HalfOpens int64  `json:"halfOpens"`
	Closes    int64  `json:"closes"`
}

// rpcStats is the resilience.rpc slice of /metrics the partition soak
// cares about.
type rpcStats struct {
	Peers          map[string]rpcPeerStat `json:"peers"`
	InjectedFaults int64                  `json:"injectedFaults"`
	StaleServes    int64                  `json:"staleServes"`
}

func fetchRPCStats(base string) (rpcStats, error) {
	var ms struct {
		Resilience struct {
			Rpc *rpcStats `json:"rpc"`
		} `json:"resilience"`
	}
	status, body, err := postGet(base + "/metrics")
	if err != nil || status != http.StatusOK {
		return rpcStats{}, fmt.Errorf("metrics: status %d err %v", status, err)
	}
	if err := json.Unmarshal(body, &ms); err != nil {
		return rpcStats{}, err
	}
	if ms.Resilience.Rpc == nil {
		return rpcStats{}, fmt.Errorf("metrics: no resilience.rpc section")
	}
	return *ms.Resilience.Rpc, nil
}

func setRPCFaults(base, plan string, seed uint64) error {
	status, body, err := postJSON(base+"/v1/rpcfaults", map[string]any{"seed": seed, "plan": plan})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, body)
	}
	return nil
}

// runPartitionSoak is the -cluster N -partition mode: N matchd processes
// with breakers, retry budgets, and the fault-admin endpoint armed; the
// middle third of the soak asymmetrically partitions the dictionary's
// primary owner by injecting rpc.refuse faults into every OTHER node's
// outbound pool. The victim process stays healthy and reachable by
// clients the whole time — only its peers' view of it goes dark, which is
// exactly what a network partition looks like from inside.
func runPartitionSoak(bin string, n int, duration time.Duration, seed uint64, clients, textSize int, serverFlags string) {
	cacheRoot, err := os.MkdirTemp("", "chaossoak-partition-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheRoot)

	nodes := make([]*soakNode, n)
	var table []string
	for i := range nodes {
		addr := freeAddr()
		name := fmt.Sprintf("n%d", i+1)
		nodes[i] = &soakNode{name: name, addr: addr, base: "http://" + addr}
		table = append(table, name+"=http://"+addr)
	}
	peerTable := strings.Join(table, ",")
	for _, nd := range nodes {
		nd.args = []string{
			"-addr", nd.addr, "-procs", "2",
			"-cluster-self", nd.name, "-cluster-peers", peerTable,
			"-replicas", "2", "-hedge-after", "20ms",
			"-cache-dir", filepath.Join(cacheRoot, nd.name),
			// Resilience under test: short breaker fuse so the 1s-interval
			// probe failures open within the partition window, cooldown
			// under the probe interval so every post-cooldown probe can arm
			// a half-open trial.
			"-breaker-failures", "3", "-breaker-cooldown", "750ms",
			"-retry-budget", "10", "-hop-floor", "5ms",
			"-rpc-fault-admin",
		}
		nd.args = append(nd.args, strings.Fields(serverFlags)...)
	}

	fail := func(format string, args ...any) {
		for _, nd := range nodes {
			nd.mu.Lock()
			if nd.cmd != nil && nd.cmd.Process != nil {
				_ = nd.cmd.Process.Kill()
			}
			nd.mu.Unlock()
			if nd.cmd != nil {
				_ = nd.cmd.Wait()
			}
			log.Printf("--- %s log ---\n%s", nd.name, nd.log())
		}
		log.Fatalf(format, args...)
	}
	for _, nd := range nodes {
		if err := nd.start(bin); err != nil {
			fail("starting %s: %v", nd.name, err)
		}
		waitHealthy(nd.base, nd.cmd, fail)
	}

	// Workload: same as the cluster soak — planted dictionary, oracle, LZ
	// payloads, compressed container.
	gen := textgen.New(seed)
	text, patterns := gen.PlantedDictionary(textSize, 24, 8, 101, 4)
	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if wantHits == 0 {
		fail("degenerate workload: planted text has no oracle matches")
	}
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	id := createDict(nodes[0].base, patStrs, fail)
	lzPayloads := make([][]byte, 16)
	for i := range lzPayloads {
		lzPayloads[i] = gen.Repetitive(2048+128*i, 64, 0.02)
	}
	var enc bytes.Buffer
	m := pram.NewSequential()
	if err := lz.EncodeStream(&enc, lz.Compress(m, text)); err != nil {
		fail("compressing planted text: %v", err)
	}
	m.Close()
	container := enc.Bytes()

	// Warm every node so the replica owner holds the bundle before the
	// partition bites.
	warm := base64.StdEncoding.EncodeToString(text[:256])
	for _, nd := range nodes {
		status, body, err := postJSON(nd.base+"/v1/dicts/"+id+"/match", map[string]any{"textB64": warm})
		if err != nil || status != http.StatusOK {
			fail("warming %s: status %d err %v: %s", nd.name, status, err, body)
		}
	}

	victim := nodes[pickVictim(nodes, id, fail)]
	var others []*soakNode
	for _, nd := range nodes {
		if nd != victim {
			others = append(others, nd)
		}
	}
	log.Printf("partition: %d nodes up, dictionary %s..., victim %s", n, id[:12], victim.name)

	var (
		ok, shed, retried atomic.Int64
		streamErrTrailer  atomic.Int64
		mismatches        atomic.Int64
	)
	firstMismatch := make(chan string, 1)
	mismatch := func(format string, args ...any) {
		mismatches.Add(1)
		select {
		case firstMismatch <- fmt.Sprintf(format, args...):
		default:
		}
	}

	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				base := nodes[(c+i)%n].base
				switch (c + i) % 4 {
				case 0:
					doMatch(base, id, text, oracle, ac, &ok, &shed, &retried, mismatch)
				case 1:
					doLZRoundTrip(base, lzPayloads[(c*31+i)%len(lzPayloads)], &ok, &shed, &retried, mismatch)
				case 2:
					doStream(base, id, text, oracle, ac, wantHits, &ok, &shed, &streamErrTrailer, mismatch)
				case 3:
					doCompressedMatch(base, id, container, len(text), oracle, ac, wantHits, &ok, &shed, mismatch)
				}
			}
		}(c)
	}

	// Partition schedule: [healthy 1/3][partitioned 1/3][healed 1/3].
	// The injected fault is one-sided by construction — only the
	// non-victims' pools refuse connections TO the victim; nothing is
	// installed on the victim itself.
	partitionAt := duration / 3
	healAt := 2 * duration / 3
	refusePlan := "rpc.refuse." + victim.name + ":p=1"
	type phaseMarks struct {
		okAtPartition, okAtHeal int64
		err                     error
	}
	marks := make(chan phaseMarks, 1)
	go func() {
		var pm phaseMarks
		time.Sleep(partitionAt)
		pm.okAtPartition = ok.Load()
		log.Printf("partition: isolating %s at t=%v (%s on %d peers)", victim.name, partitionAt.Round(time.Millisecond), refusePlan, len(others))
		for _, nd := range others {
			if err := setRPCFaults(nd.base, refusePlan, seed); err != nil {
				pm.err = fmt.Errorf("installing faults on %s: %v", nd.name, err)
				marks <- pm
				return
			}
		}
		time.Sleep(healAt - partitionAt)
		pm.okAtHeal = ok.Load()
		log.Printf("partition: healing at t=%v", healAt.Round(time.Millisecond))
		for _, nd := range others {
			if err := setRPCFaults(nd.base, "", seed); err != nil {
				pm.err = fmt.Errorf("clearing faults on %s: %v", nd.name, err)
				marks <- pm
				return
			}
		}
		marks <- pm
	}()
	wg.Wait()
	pm := <-marks
	if pm.err != nil {
		fail("partition schedule: %v", pm.err)
	}
	okDuringPartition := pm.okAtHeal - pm.okAtPartition

	// Breaker lifecycle: every non-victim's breaker for the victim must
	// have opened during the partition, admitted a half-open trial, and
	// re-closed after the heal (the 1s /readyz prober is the recovery
	// path, so allow it a few beats).
	var injectedTotal int64
	lifecycleDeadline := time.Now().Add(15 * time.Second)
	for _, nd := range others {
		for {
			st, err := fetchRPCStats(nd.base)
			if err != nil {
				fail("rpc stats via %s: %v", nd.name, err)
			}
			ps := st.Peers[victim.name]
			if ps.Opens >= 1 && ps.HalfOpens >= 1 && ps.Closes >= 1 && ps.State == "closed" {
				injectedTotal += st.InjectedFaults
				break
			}
			if time.Now().After(lifecycleDeadline) {
				fail("breaker on %s for %s never completed open→half-open→closed: %+v", nd.name, victim.name, ps)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
	if injectedTotal == 0 {
		fail("no injected faults recorded on any peer — the partition never bit")
	}

	// Asymmetry: the victim's own outbound pool was never faulted, so it
	// reached its peers throughout.
	vst, err := fetchRPCStats(victim.base)
	if err != nil {
		fail("rpc stats via %s: %v", victim.name, err)
	}
	if vst.InjectedFaults != 0 {
		fail("victim %s reports %d injected faults on its own outbound — partition was not one-sided", victim.name, vst.InjectedFaults)
	}

	// Post-heal verification: oracle-exact service through every node,
	// victim included.
	full := base64.StdEncoding.EncodeToString(text)
	for _, nd := range nodes {
		status, body, err := postJSON(nd.base+"/v1/dicts/"+id+"/match", map[string]any{"textB64": full})
		if err != nil || status != http.StatusOK {
			fail("post-heal match via %s: status %d err %v: %s", nd.name, status, err, body)
		}
		var mr struct {
			Matched int `json:"matched"`
		}
		if err := json.Unmarshal(body, &mr); err != nil || mr.Matched != wantHits {
			fail("post-heal match via %s: %d hits, oracle says %d (err %v)", nd.name, mr.Matched, wantHits, err)
		}
	}

	// Drain: every node must exit 0 on SIGTERM with a clean shutdown.
	for _, nd := range nodes {
		nd.mu.Lock()
		proc := nd.cmd.Process
		nd.mu.Unlock()
		if err := proc.Signal(syscall.SIGTERM); err != nil {
			fail("SIGTERM %s: %v", nd.name, err)
		}
	}
	for _, nd := range nodes {
		waited := make(chan error, 1)
		go func() { waited <- nd.cmd.Wait() }()
		select {
		case err := <-waited:
			if err != nil {
				fail("%s exited uncleanly after SIGTERM: %v", nd.name, err)
			}
		case <-time.After(30 * time.Second):
			fail("%s did not exit within 30s of SIGTERM", nd.name)
		}
		if !strings.Contains(nd.log(), "clean shutdown") {
			fail("%s exited 0 but never logged a clean shutdown", nd.name)
		}
	}

	log.Printf("%v partition soak (%d nodes, victim %s): %d ok (%d during partition, %d after retries), %d shed, %d streams error-trailed, %d mismatches, %d injected faults",
		duration, n, victim.name, ok.Load(), okDuringPartition, retried.Load(), shed.Load(), streamErrTrailer.Load(), mismatches.Load(), injectedTotal)
	if mm := mismatches.Load(); mm > 0 {
		log.Fatalf("FAIL: %d oracle mismatches; first: %s", mm, <-firstMismatch)
	}
	if ok.Load() == 0 {
		log.Fatal("FAIL: no request ever succeeded — the soak measured nothing")
	}
	if okDuringPartition == 0 {
		log.Fatal("FAIL: nothing succeeded while the primary owner was partitioned — rerouting/stale serving never worked")
	}
	log.Print("PASS")
}
