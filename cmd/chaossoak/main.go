// Command chaossoak soak-tests a matchd binary under a deterministic fault
// schedule. It is the CI-facing half of internal/chaos: the chaos test
// suite (`go test -tags chaos ./...`) proves each recovery path in
// isolation; chaossoak proves the assembled service survives minutes of
// faulted traffic — and still drains cleanly on SIGTERM — as one black box.
//
// Usage:
//
//	go build -tags chaos -o /tmp/matchd ./cmd/matchd
//	go run ./cmd/chaossoak -bin /tmp/matchd -duration 30s -seed 42
//
// chaossoak starts the binary with -chaos-seed/-chaos-plan, registers a
// planted dictionary, and hammers it from -clients goroutines with four
// request kinds, each verified against an in-process oracle:
//
//   - buffered /match, checked position-by-position against Aho–Corasick
//   - /compress + /decompress, checked byte-for-byte round trip
//   - NDJSON /match/stream, events checked against the oracle and the
//     trailer required to be a summary or an explicit {"error":...} line —
//     a stream that just stops is silent truncation, the one unforgivable
//     outcome
//   - /match/compressed/buffered on an LZ1R1 container of the same text,
//     hits checked against the same oracle (the compressed-domain scanner
//     must be indistinguishable from decompress-then-match)
//
// Requests that fail with 500/503 are expected casualties (the plan forces
// Las Vegas exhaustion now and then; the breaker answers 503 while it
// re-randomizes) and are only counted. Any 200 whose payload disagrees
// with the oracle is a correctness bug and fails the soak immediately.
// After the deadline, chaossoak SIGTERMs the server and requires exit
// status 0 plus the "clean shutdown" log line.
//
// Exit status: 0 = soak passed; 1 = oracle mismatch, unclean drain, or the
// fault schedule never fired.
//
// Cluster soak (-cluster N, N ≥ 2): instead of one faulted process,
// chaossoak starts N matchd processes as a replicated cluster (consistent
// hashing, -replicas 2, request hedging), registers the dictionary once,
// warms every node, then hammers all N bases round-robin. A third of the
// way in it SIGKILLs one node mid-traffic; two thirds in it restarts the
// same node on the same address and cache directory (a warm start). The
// fault schedule here is the kill itself, so -plan defaults to empty and a
// plain (non-chaos) matchd build suffices; passing -plan explicitly arms it
// on every node. Pass criteria: zero oracle divergences, zero silently
// truncated streams (a stream either carries its trailer or fails as a
// broken transfer), the killed node's dictionaries stay servable from
// replicas, at least one replication pull shows in /metrics, and every
// surviving node drains cleanly on SIGTERM.
//
// Partition soak (-cluster N -partition): instead of a kill/restart, the
// middle third of the soak asymmetrically partitions the dictionary's
// primary owner — every other node's outbound pool gets an injected
// rpc.refuse fault against the victim via POST /v1/rpcfaults, while the
// victim's own outbound stays clean (A→B dead, B→A alive). Traffic keeps
// flowing to every node throughout. Pass criteria: zero oracle
// divergences, zero silent truncations, requests keep succeeding during
// the partition (rerouted to the surviving replica or served stale), every
// non-victim's breaker for the victim runs the full open → half-open →
// closed lifecycle visible in /metrics, the victim's outbound saw zero
// injected faults (asymmetry), and every node drains cleanly.
package main

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/chaos"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// defaultPlan keeps the per-attempt collision probability low enough that
// most requests recover within the matchAttempts budget (occasional
// exhaustions and breaker trips are wanted — they exercise the 500/503
// paths) while firing every point class: fingerprint collisions, LZ token
// corruption, straggler delays, stream stalls, and compressed-scan
// truncation (every Nth token read across the soak — the scanner must fail
// those requests with a 500, never a short 200).
const defaultPlan = "fp.collide:p=0.0001;lz.corrupt:p=0.005;pool.delay:p=0.002,delay=500us;stream.stall:p=0.02,delay=1ms;czsearch.truncate:every=5000"

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossoak: ")
	bin := flag.String("bin", "", "path to a matchd binary built with -tags chaos (required)")
	duration := flag.Duration("duration", 30*time.Second, "soak length before the SIGTERM drain check")
	seed := flag.Uint64("seed", 42, "chaos plan seed, forwarded as matchd -chaos-seed")
	plan := flag.String("plan", defaultPlan, "fault schedule, forwarded as matchd -chaos-plan")
	clients := flag.Int("clients", 8, "concurrent request loops")
	textSize := flag.Int("text", 1<<13, "planted text bytes per match request")
	serverFlags := flag.String("server-flags", "", "extra whitespace-separated flags appended to the matchd command line, e.g. '-batch=on -dense=off'")
	clusterN := flag.Int("cluster", 0, "run N matchd processes as a replicated cluster and kill/restart one mid-soak (0 = single-node chaos soak)")
	partition := flag.Bool("partition", false, "with -cluster N: instead of a kill/restart, asymmetrically partition the primary owner mid-soak via injected wire faults and require breaker open→half-open→closed recovery")
	flag.Parse()
	if *bin == "" {
		log.Fatal("-bin is required (build one with: go build -tags chaos -o /tmp/matchd ./cmd/matchd)")
	}
	if *partition && *clusterN < 2 {
		log.Fatal("-partition requires -cluster N (N >= 2)")
	}
	if *clusterN != 0 {
		if *clusterN < 2 {
			log.Fatal("-cluster needs at least 2 nodes")
		}
		if *partition {
			runPartitionSoak(*bin, *clusterN, *duration, *seed, *clients, *textSize, *serverFlags)
			return
		}
		planSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "plan" {
				planSet = true
			}
		})
		clusterPlan := *plan
		if !planSet {
			clusterPlan = "" // the node kill is the fault schedule
		}
		runClusterSoak(*bin, *clusterN, *duration, *seed, clusterPlan, *clients, *textSize, *serverFlags)
		return
	}
	if _, err := chaos.ParsePlan(*seed, *plan); err != nil {
		log.Fatalf("bad -plan: %v", err)
	}

	addr := freeAddr()
	base := "http://" + addr
	args := []string{
		"-addr", addr, "-procs", "2",
		"-chaos-seed", fmt.Sprint(*seed), "-chaos-plan", *plan,
	}
	args = append(args, strings.Fields(*serverFlags)...)
	cmd := exec.Command(*bin, args...)
	var serverLog bytes.Buffer
	cmd.Stdout = &serverLog
	cmd.Stderr = &serverLog
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting %s: %v", *bin, err)
	}
	fail := func(format string, args ...any) {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		log.Printf("--- server log ---\n%s", serverLog.String())
		log.Fatalf(format, args...)
	}
	waitHealthy(base, cmd, fail)

	// Workload: one planted dictionary plus its Aho–Corasick oracle, and a
	// pool of repetitive LZ payloads. Registration happens before traffic,
	// so preprocessing itself is unfaulted (the plan only perturbs serving).
	gen := textgen.New(*seed)
	text, patterns := gen.PlantedDictionary(*textSize, 24, 8, 101, 4)
	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if wantHits == 0 {
		fail("degenerate workload: planted text has no oracle matches")
	}
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	id := createDict(base, patStrs, fail)
	lzPayloads := make([][]byte, 16)
	for i := range lzPayloads {
		lzPayloads[i] = gen.Repetitive(2048+128*i, 64, 0.02)
	}
	// LZ1R1 container of the planted text, for the compressed-match kind:
	// same oracle as /match, different engine on the server side.
	var enc bytes.Buffer
	m := pram.NewSequential()
	if err := lz.EncodeStream(&enc, lz.Compress(m, text)); err != nil {
		fail("compressing planted text: %v", err)
	}
	m.Close()
	container := enc.Bytes()

	var (
		ok, shed, retried atomic.Int64 // 200s; 429/500/503s; 200s with attempts > 1
		streamErrTrailer  atomic.Int64 // streams ended by an explicit error line
		mismatches        atomic.Int64
	)
	firstMismatch := make(chan string, 1)
	mismatch := func(format string, args ...any) {
		mismatches.Add(1)
		select {
		case firstMismatch <- fmt.Sprintf(format, args...):
		default:
		}
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				switch (c + i) % 4 {
				case 0:
					doMatch(base, id, text, oracle, ac, &ok, &shed, &retried, mismatch)
				case 1:
					doLZRoundTrip(base, lzPayloads[(c*31+i)%len(lzPayloads)], &ok, &shed, &retried, mismatch)
				case 2:
					doStream(base, id, text, oracle, ac, wantHits, &ok, &shed, &streamErrTrailer, mismatch)
				case 3:
					doCompressedMatch(base, id, container, len(text), oracle, ac, wantHits, &ok, &shed, mismatch)
				}
			}
		}(c)
	}
	wg.Wait()

	// Drain check: SIGTERM, then the process must exit 0 having logged a
	// clean shutdown (matchd also logs per-point chaos counters here).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("SIGTERM: %v", err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			fail("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		fail("server did not exit within 30s of SIGTERM")
	}
	if !strings.Contains(serverLog.String(), "clean shutdown") {
		fail("server exited 0 but never logged a clean shutdown")
	}

	log.Printf("%v soak: %d ok (%d after retries), %d shed (429/500/503), %d streams error-trailed, %d mismatches",
		*duration, ok.Load(), retried.Load(), shed.Load(), streamErrTrailer.Load(), mismatches.Load())
	for _, line := range strings.Split(strings.TrimRight(serverLog.String(), "\n"), "\n") {
		if strings.Contains(line, "chaos:") {
			log.Print(line)
		}
	}
	if n := mismatches.Load(); n > 0 {
		log.Fatalf("FAIL: %d oracle mismatches; first: %s", n, <-firstMismatch)
	}
	if ok.Load() == 0 {
		log.Fatal("FAIL: no request ever succeeded — the soak measured nothing")
	}
	if !strings.Contains(serverLog.String(), "chaos: armed") {
		log.Fatal("FAIL: server never armed the chaos plan — was -bin built with -tags chaos?")
	}
	if retried.Load() == 0 && shed.Load() == 0 && streamErrTrailer.Load() == 0 {
		log.Fatal("FAIL: no fault ever surfaced (no retries, sheds, or error trailers) — plan too weak to prove anything")
	}
	log.Print("PASS")
}

// freeAddr picks an unused loopback port. The listener is closed before the
// server starts; the race window is harmless for a test harness.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(base string, cmd *exec.Cmd, fail func(string, ...any)) {
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			fail("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postJSON(url string, req any) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

func createDict(base string, patterns []string, fail func(string, ...any)) string {
	status, body, err := postJSON(base+"/v1/dicts", map[string]any{"patterns": patterns})
	if err != nil || status != http.StatusCreated {
		fail("dict create: status %d err %v: %s", status, err, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		fail("dict create response %q: %v", body, err)
	}
	return created.ID
}

// shedStatus reports whether a status is an expected pressure/fault
// casualty rather than a correctness problem: admission shedding (429),
// Las Vegas exhaustion (500), breaker/deadline (503), and — in the cluster
// soak — a proxy whose owner died under it (502).
func shedStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusInternalServerError ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusBadGateway
}

func doMatch(base, id string, text []byte, oracle []int32, ac *ahocorasick.Automaton,
	ok, shed, retried *atomic.Int64, mismatch func(string, ...any)) {
	status, body, err := postJSON(fmt.Sprintf("%s/v1/dicts/%s/match", base, id),
		map[string]any{"textB64": base64.StdEncoding.EncodeToString(text)})
	if err != nil {
		shed.Add(1) // transport error during drain races; not a verdict
		return
	}
	if shedStatus(status) {
		shed.Add(1)
		return
	}
	if status != http.StatusOK {
		mismatch("match: unexpected status %d: %s", status, body)
		return
	}
	var mr struct {
		N        int `json:"n"`
		Attempts int `json:"attempts"`
		Matched  int `json:"matched"`
		Hits     []struct {
			Pos     int `json:"pos"`
			Pattern int `json:"pattern"`
			Length  int `json:"length"`
		} `json:"hits"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		mismatch("match: bad body: %v", err)
		return
	}
	want := 0
	for _, p := range oracle {
		if p >= 0 {
			want++
		}
	}
	if mr.N != len(text) || mr.Matched != want {
		mismatch("match: %d hits over %d bytes, oracle says %d over %d", mr.Matched, mr.N, want, len(text))
		return
	}
	for _, h := range mr.Hits {
		if p := oracle[h.Pos]; int(p) != h.Pattern || int(ac.PatternLen(p)) != h.Length {
			mismatch("match: pos %d pattern %d len %d disagrees with oracle", h.Pos, h.Pattern, h.Length)
			return
		}
	}
	ok.Add(1)
	if mr.Attempts > 1 {
		retried.Add(1)
	}
}

func doLZRoundTrip(base string, payload []byte,
	ok, shed, retried *atomic.Int64, mismatch func(string, ...any)) {
	status, body, err := postJSON(base+"/v1/compress",
		map[string]any{"textB64": base64.StdEncoding.EncodeToString(payload)})
	if err != nil || shedStatus(status) {
		shed.Add(1)
		return
	}
	if status != http.StatusOK {
		mismatch("compress: unexpected status %d: %s", status, body)
		return
	}
	var cr struct {
		N        int    `json:"n"`
		Attempts int    `json:"attempts"`
		DataB64  string `json:"dataB64"`
	}
	if err := json.Unmarshal(body, &cr); err != nil || cr.N != len(payload) {
		mismatch("compress: n=%d want %d (err %v)", cr.N, len(payload), err)
		return
	}
	status, body, err = postJSON(base+"/v1/decompress", map[string]any{"dataB64": cr.DataB64})
	if err != nil || shedStatus(status) {
		shed.Add(1)
		return
	}
	if status != http.StatusOK {
		mismatch("decompress: unexpected status %d: %s", status, body)
		return
	}
	var dr struct {
		TextB64 string `json:"textB64"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		mismatch("decompress: bad body: %v", err)
		return
	}
	round, err := base64.StdEncoding.DecodeString(dr.TextB64)
	if err != nil || !bytes.Equal(round, payload) {
		mismatch("lz round trip: output differs from input (err %v)", err)
		return
	}
	ok.Add(1)
	if cr.Attempts > 1 {
		retried.Add(1)
	}
}

// doCompressedMatch posts the LZ1R1 container of the planted text to the
// buffered compressed-match endpoint. The scanner's contract is that its
// output is indistinguishable from decompress-then-match, so every hit is
// checked against the same Aho–Corasick oracle doMatch uses. A 500 is an
// expected casualty: under chaos the sampled server-side oracle fails
// poisoned requests loudly instead of serving them.
func doCompressedMatch(base, id string, container []byte, textLen int, oracle []int32, ac *ahocorasick.Automaton, wantHits int,
	ok, shed *atomic.Int64, mismatch func(string, ...any)) {
	status, body, err := postJSON(fmt.Sprintf("%s/v1/dicts/%s/match/compressed/buffered", base, id),
		map[string]any{"dataB64": base64.StdEncoding.EncodeToString(container)})
	if err != nil {
		shed.Add(1)
		return
	}
	if shedStatus(status) {
		shed.Add(1)
		return
	}
	if status != http.StatusOK {
		mismatch("compressed match: unexpected status %d: %s", status, body)
		return
	}
	var mr struct {
		N       int `json:"n"`
		Matched int `json:"matched"`
		Hits    []struct {
			Pos     int `json:"pos"`
			Pattern int `json:"pattern"`
			Length  int `json:"length"`
		} `json:"hits"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		mismatch("compressed match: bad body: %v", err)
		return
	}
	if mr.N != textLen || mr.Matched != wantHits {
		mismatch("compressed match: %d hits over %d bytes, oracle says %d over %d", mr.Matched, mr.N, wantHits, textLen)
		return
	}
	for _, h := range mr.Hits {
		if p := oracle[h.Pos]; int(p) != h.Pattern || int(ac.PatternLen(p)) != h.Length {
			mismatch("compressed match: pos %d pattern %d len %d disagrees with oracle", h.Pos, h.Pattern, h.Length)
			return
		}
	}
	ok.Add(1)
}

func doStream(base, id string, text []byte, oracle []int32, ac *ahocorasick.Automaton, wantHits int,
	ok, shed, streamErrTrailer *atomic.Int64, mismatch func(string, ...any)) {
	resp, err := http.Post(fmt.Sprintf("%s/v1/dicts/%s/match/stream?segment=2048", base, id),
		"application/octet-stream", bytes.NewReader(text))
	if err != nil {
		shed.Add(1)
		return
	}
	defer resp.Body.Close()
	if shedStatus(resp.StatusCode) {
		shed.Add(1)
		return
	}
	if resp.StatusCode != http.StatusOK {
		mismatch("stream: unexpected status %d", resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	events, sawTrailer := 0, false
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary"`)) {
			// Success trailer: the stream completed; its event count must
			// be oracle-exact for the full text.
			sawTrailer = true
			if events != wantHits {
				mismatch("stream: %d events before summary, oracle says %d", events, wantHits)
				return
			}
			continue
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			// Explicit error trailer: a mid-stream fault surfaced loudly.
			// Detected-and-reported is the contract under chaos.
			sawTrailer = true
			streamErrTrailer.Add(1)
			return
		}
		var ev struct {
			Pos     int `json:"pos"`
			Pattern int `json:"pattern"`
			Length  int `json:"length"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			mismatch("stream: unparseable line %q: %v", line, err)
			return
		}
		if p := oracle[ev.Pos]; int(p) != ev.Pattern || int(ac.PatternLen(p)) != ev.Length {
			mismatch("stream: event pos %d pattern %d len %d disagrees with oracle", ev.Pos, ev.Pattern, ev.Length)
			return
		}
		events++
	}
	if err := sc.Err(); err != nil {
		shed.Add(1) // connection died (e.g. server draining); not silent truncation by the server
		return
	}
	if !sawTrailer {
		mismatch("stream: ended after %d events with no summary or error trailer — silent truncation", events)
		return
	}
	ok.Add(1)
}
