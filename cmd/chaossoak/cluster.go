package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// soakNode is one matchd process in the cluster soak. A node can be killed
// and restarted on the same address and cache directory, so the args and a
// per-incarnation log buffer live here.
type soakNode struct {
	name string
	addr string
	base string
	args []string

	mu   sync.Mutex
	cmd  *exec.Cmd
	logs bytes.Buffer
}

func (nd *soakNode) start(bin string) error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	cmd := exec.Command(bin, nd.args...)
	cmd.Stdout = &lockedWriter{mu: &nd.mu, w: &nd.logs}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return err
	}
	nd.cmd = cmd
	return nil
}

// lockedWriter serializes the process's log writes with the harness's
// readers (the process writes concurrently with dumps and drain checks).
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func (nd *soakNode) log() string {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.logs.String()
}

// runClusterSoak is the -cluster N mode: N matchd processes as a replicated
// cluster, one of them SIGKILLed a third of the way in and restarted two
// thirds in, with oracle-verified traffic against every node throughout.
func runClusterSoak(bin string, n int, duration time.Duration, seed uint64, plan string, clients, textSize int, serverFlags string) {
	cacheRoot, err := os.MkdirTemp("", "chaossoak-cluster-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheRoot)

	// Fixed addresses and a shared peer table: a restarted node must come
	// back where the table says it lives.
	nodes := make([]*soakNode, n)
	var table []string
	for i := range nodes {
		addr := freeAddr()
		name := fmt.Sprintf("n%d", i+1)
		nodes[i] = &soakNode{name: name, addr: addr, base: "http://" + addr}
		table = append(table, name+"=http://"+addr)
	}
	peerTable := strings.Join(table, ",")
	for _, nd := range nodes {
		nd.args = []string{
			"-addr", nd.addr, "-procs", "2",
			"-cluster-self", nd.name, "-cluster-peers", peerTable,
			"-replicas", "2", "-hedge-after", "20ms",
			"-cache-dir", filepath.Join(cacheRoot, nd.name),
		}
		if plan != "" {
			nd.args = append(nd.args, "-chaos-seed", fmt.Sprint(seed), "-chaos-plan", plan)
		}
		nd.args = append(nd.args, strings.Fields(serverFlags)...)
	}

	fail := func(format string, args ...any) {
		for _, nd := range nodes {
			nd.mu.Lock()
			if nd.cmd != nil && nd.cmd.Process != nil {
				_ = nd.cmd.Process.Kill()
			}
			nd.mu.Unlock()
			if nd.cmd != nil {
				_ = nd.cmd.Wait()
			}
			log.Printf("--- %s log ---\n%s", nd.name, nd.log())
		}
		log.Fatalf(format, args...)
	}
	for _, nd := range nodes {
		if err := nd.start(bin); err != nil {
			fail("starting %s: %v", nd.name, err)
		}
		waitHealthy(nd.base, nd.cmd, fail)
	}

	// Same workload as the single-node soak: planted dictionary, oracle,
	// LZ payloads, a compressed container of the planted text.
	gen := textgen.New(seed)
	text, patterns := gen.PlantedDictionary(textSize, 24, 8, 101, 4)
	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if wantHits == 0 {
		fail("degenerate workload: planted text has no oracle matches")
	}
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	id := createDict(nodes[0].base, patStrs, fail)
	lzPayloads := make([][]byte, 16)
	for i := range lzPayloads {
		lzPayloads[i] = gen.Repetitive(2048+128*i, 64, 0.02)
	}
	var enc bytes.Buffer
	m := pram.NewSequential()
	if err := lz.EncodeStream(&enc, lz.Compress(m, text)); err != nil {
		fail("compressing planted text: %v", err)
	}
	m.Close()
	container := enc.Bytes()

	// Warm every node before traffic so the replica owner pulls the bundle
	// now — the kill must not catch a cold replica.
	warm := base64.StdEncoding.EncodeToString(text[:256])
	for _, nd := range nodes {
		status, body, err := postJSON(nd.base+"/v1/dicts/"+id+"/match", map[string]any{"textB64": warm})
		if err != nil || status != http.StatusOK {
			fail("warming %s: status %d err %v: %s", nd.name, status, err, body)
		}
	}

	// Kill an owner — the primary, so the soak proves replicas serve, not
	// just that a bystander can die.
	victim := nodes[pickVictim(nodes, id, fail)]
	log.Printf("cluster: %d nodes up, dictionary %s..., victim %s", n, id[:12], victim.name)

	var (
		ok, shed, retried atomic.Int64
		streamErrTrailer  atomic.Int64
		mismatches        atomic.Int64
	)
	firstMismatch := make(chan string, 1)
	mismatch := func(format string, args ...any) {
		mismatches.Add(1)
		select {
		case firstMismatch <- fmt.Sprintf(format, args...):
		default:
		}
	}

	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				base := nodes[(c+i)%n].base
				switch (c + i) % 4 {
				case 0:
					doMatch(base, id, text, oracle, ac, &ok, &shed, &retried, mismatch)
				case 1:
					doLZRoundTrip(base, lzPayloads[(c*31+i)%len(lzPayloads)], &ok, &shed, &retried, mismatch)
				case 2:
					doStream(base, id, text, oracle, ac, wantHits, &ok, &shed, &streamErrTrailer, mismatch)
				case 3:
					doCompressedMatch(base, id, container, len(text), oracle, ac, wantHits, &ok, &shed, mismatch)
				}
			}
		}(c)
	}

	// The kill/restart schedule runs beside the traffic: SIGKILL (not a
	// drain — a crash) a third in, restart on the same address and cache
	// directory two thirds in.
	killAt := duration / 3
	restartAt := 2 * duration / 3
	scheduleDone := make(chan error, 1)
	go func() {
		time.Sleep(killAt)
		victim.mu.Lock()
		proc := victim.cmd.Process
		victim.mu.Unlock()
		log.Printf("cluster: SIGKILL %s at t=%v", victim.name, killAt.Round(time.Millisecond))
		if err := proc.Kill(); err != nil {
			scheduleDone <- fmt.Errorf("killing %s: %v", victim.name, err)
			return
		}
		_ = victim.cmd.Wait()
		time.Sleep(restartAt - killAt)
		log.Printf("cluster: restarting %s at t=%v", victim.name, restartAt.Round(time.Millisecond))
		if err := victim.start(bin); err != nil {
			scheduleDone <- fmt.Errorf("restarting %s: %v", victim.name, err)
			return
		}
		scheduleDone <- nil
	}()
	wg.Wait()
	if err := <-scheduleDone; err != nil {
		fail("kill/restart schedule: %v", err)
	}
	waitHealthy(victim.base, victim.cmd, fail)

	// Post-soak verification: the dictionary must be servable, oracle-exact,
	// through every node — including the restarted victim.
	full := base64.StdEncoding.EncodeToString(text)
	for _, nd := range nodes {
		status, body, err := postJSON(nd.base+"/v1/dicts/"+id+"/match", map[string]any{"textB64": full})
		if err != nil || status != http.StatusOK {
			fail("post-soak match via %s: status %d err %v: %s", nd.name, status, err, body)
		}
		var mr struct {
			Matched int `json:"matched"`
		}
		if err := json.Unmarshal(body, &mr); err != nil || mr.Matched != wantHits {
			fail("post-soak match via %s: %d hits, oracle says %d (err %v)", nd.name, mr.Matched, wantHits, err)
		}
	}

	// Replication must have actually moved bytes: at least one pull across
	// the cluster, and zero §3 re-preprocessing beyond the original create.
	var pulls, prepOps int64
	for _, nd := range nodes {
		var ms struct {
			Cluster struct {
				ReplicationPulls int64 `json:"replicationPulls"`
			} `json:"cluster"`
			PRAM map[string]struct {
				Ops int64 `json:"ops"`
			} `json:"pram"`
		}
		status, body, err := postGet(nd.base + "/metrics")
		if err != nil || status != http.StatusOK {
			fail("metrics via %s: status %d err %v", nd.name, status, err)
		}
		if err := json.Unmarshal(body, &ms); err != nil {
			fail("metrics via %s: %v", nd.name, err)
		}
		pulls += ms.Cluster.ReplicationPulls
		prepOps += ms.PRAM["preprocess"].Ops
	}
	// A killed node takes its counters with it, but the harness keeps its
	// log across incarnations — count logged pulls as well, so a pull that
	// happened in the victim's first life still proves replication moved.
	for _, nd := range nodes {
		pulls += int64(strings.Count(nd.log(), "cluster: pulled "))
	}
	if pulls == 0 {
		fail("no replication pulls anywhere — replicas never shipped a snapshot")
	}
	if prepOps > 1 {
		fail("preprocess ran %d times across the cluster; replication must restore, not recompute", prepOps)
	}

	// Drain: every node (the victim in its second incarnation) must exit 0
	// on SIGTERM with a clean-shutdown log line.
	for _, nd := range nodes {
		nd.mu.Lock()
		proc := nd.cmd.Process
		nd.mu.Unlock()
		if err := proc.Signal(syscall.SIGTERM); err != nil {
			fail("SIGTERM %s: %v", nd.name, err)
		}
	}
	for _, nd := range nodes {
		waited := make(chan error, 1)
		go func() { waited <- nd.cmd.Wait() }()
		select {
		case err := <-waited:
			if err != nil {
				fail("%s exited uncleanly after SIGTERM: %v", nd.name, err)
			}
		case <-time.After(30 * time.Second):
			fail("%s did not exit within 30s of SIGTERM", nd.name)
		}
		if !strings.Contains(nd.log(), "clean shutdown") {
			fail("%s exited 0 but never logged a clean shutdown", nd.name)
		}
	}

	log.Printf("%v cluster soak (%d nodes, victim %s): %d ok (%d after retries), %d shed, %d streams error-trailed, %d mismatches, %d replication pulls",
		duration, n, victim.name, ok.Load(), retried.Load(), shed.Load(), streamErrTrailer.Load(), mismatches.Load(), pulls)
	if mm := mismatches.Load(); mm > 0 {
		log.Fatalf("FAIL: %d oracle mismatches; first: %s", mm, <-firstMismatch)
	}
	if ok.Load() == 0 {
		log.Fatal("FAIL: no request ever succeeded — the soak measured nothing")
	}
	if shed.Load() == 0 {
		log.Fatal("FAIL: a node was SIGKILLed mid-traffic yet nothing shed — the kill never bit")
	}
	log.Print("PASS")
}

// pickVictim asks the cluster where the dictionary lives and returns the
// index of its primary owner.
func pickVictim(nodes []*soakNode, id string, fail func(string, ...any)) int {
	status, body, err := postGet(nodes[0].base + "/v1/cluster")
	if err != nil || status != http.StatusOK {
		fail("cluster info: status %d err %v", status, err)
	}
	var info struct {
		Resident []struct {
			ID     string   `json:"id"`
			Owners []string `json:"owners"` // primary first
		} `json:"resident"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		fail("cluster info: %v", err)
	}
	primary := ""
	for _, res := range info.Resident {
		if res.ID == id && len(res.Owners) > 0 {
			primary = res.Owners[0]
		}
	}
	if primary == "" {
		// Node 0 does not hold it (it proxied the create); any owner works —
		// ask the ring via another node. Fall back to a warm owner scan.
		for _, nd := range nodes[1:] {
			status, body, err := postGet(nd.base + "/v1/cluster")
			if err != nil || status != http.StatusOK {
				continue
			}
			if err := json.Unmarshal(body, &info); err != nil {
				continue
			}
			for _, res := range info.Resident {
				if res.ID == id && len(res.Owners) > 0 {
					primary = res.Owners[0]
				}
			}
			if primary != "" {
				break
			}
		}
	}
	for i, nd := range nodes {
		if nd.name == primary {
			return i
		}
	}
	fail("no node reports dictionary %s resident — cannot pick a victim", id)
	return 0
}

func postGet(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
