// Command streedump builds the suffix tree of a text and reports its
// structure: node/depth statistics, optional per-node listing, optional
// Graphviz DOT output, and pattern locate queries — a debugging and
// teaching companion for the library.
//
// Usage:
//
//	streedump [-text file] [-stats] [-dot] [-nodes] [-locate pat]
//	echo -n banana | streedump -dot | dot -Tsvg > tree.svg
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/pram"
	"repro/internal/suffixtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streedump: ")
	textPath := flag.String("text", "", "text file (default stdin)")
	stats := flag.Bool("stats", true, "print summary statistics")
	dot := flag.Bool("dot", false, "emit Graphviz DOT to stdout")
	nodes := flag.Bool("nodes", false, "list every node")
	locate := flag.String("locate", "", "report occurrences of this pattern")
	procs := flag.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	var text []byte
	var err error
	if *textPath == "" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(*textPath)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(text) == 0 {
		log.Fatal("empty text")
	}

	m := pram.New(*procs)
	defer m.Close()
	tr := suffixtree.Build(m, text)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *stats && !*dot {
		internal := tr.NumNodes - tr.NumLeaves()
		var maxDepth, sumDepth int64
		deepest := tr.Root
		for v := 0; v < tr.NumNodes; v++ {
			if tr.IsLeaf(v) {
				continue
			}
			d := int64(tr.StrDepth[v])
			sumDepth += d
			if d > maxDepth {
				maxDepth = d
				deepest = v
			}
		}
		w, dp := m.Counters()
		fmt.Fprintf(out, "text: %d bytes; leaves: %d; internal nodes: %d (%.2f per char)\n",
			len(text), tr.NumLeaves(), internal, float64(internal)/float64(len(text)))
		fmt.Fprintf(out, "deepest internal node: depth %d (longest repeated substring %q)\n",
			maxDepth, clip(label(tr, deepest)))
		if internal > 0 {
			fmt.Fprintf(out, "mean internal string depth: %.2f\n", float64(sumDepth)/float64(internal))
		}
		fmt.Fprintf(out, "construction ledger: work=%d depth=%d\n", w, dp)
	}
	if *locate != "" {
		occ := tr.Locate([]byte(*locate))
		fmt.Fprintf(out, "%q occurs %d times:", *locate, len(occ))
		for _, p := range occ {
			fmt.Fprintf(out, " %d", p)
		}
		fmt.Fprintln(out)
	}
	if *nodes && !*dot {
		for v := 0; v < tr.NumNodes; v++ {
			kind := "node"
			if tr.IsLeaf(v) {
				kind = fmt.Sprintf("leaf@%d", tr.LeafOf[v])
			}
			fmt.Fprintf(out, "%5d %-9s depth=%-4d parent=%-5d sa=[%d,%d] label=%q\n",
				v, kind, tr.StrDepth[v], tr.Parent[v], tr.Lo[v], tr.Hi[v], clip(label(tr, v)))
		}
	}
	if *dot {
		fmt.Fprintln(out, "digraph suffixtree {")
		fmt.Fprintln(out, "  node [shape=circle, fontsize=10];")
		for v := 0; v < tr.NumNodes; v++ {
			if tr.IsLeaf(v) {
				fmt.Fprintf(out, "  n%d [shape=box, label=\"%d\"];\n", v, tr.LeafOf[v])
			} else {
				fmt.Fprintf(out, "  n%d [label=\"\"];\n", v)
			}
			if p := tr.Parent[v]; p >= 0 {
				edge := label(tr, v)[tr.StrDepth[p]:]
				fmt.Fprintf(out, "  n%d -> n%d [label=%q];\n", p, v, clip(edge))
			}
		}
		fmt.Fprintln(out, "}")
	}
}

// label returns the full path label of node v in printable form (the
// sentinel renders as $, separators as #).
func label(tr *suffixtree.Tree, v int) string {
	var b strings.Builder
	wit := tr.Witness(v)
	for k := int32(0); k < tr.StrDepth[v]; k++ {
		switch c := tr.AugAt(wit + k); {
		case c == 0:
			b.WriteByte('$')
		case c > 256:
			b.WriteByte('#')
		default:
			b.WriteByte(byte(c - 1))
		}
	}
	return b.String()
}

func clip(s string) string {
	if len(s) > 32 {
		return s[:29] + "..."
	}
	return s
}
