// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table (or table pair) per claim of the paper.
//
// Usage:
//
//	benchtab [-quick] [-run E7] [-list]
//
// With no flags it runs every experiment at full scale, which takes a few
// minutes on one core; -quick shrinks the inputs for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use small inputs (seconds instead of minutes)")
	runID := flag.String("run", "", "comma-separated experiment ids to run (e.g. E1,E7); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	wanted := map[string]bool{}
	for _, id := range strings.Split(*runID, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToUpper(id)] = true
		}
	}
	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		ran++
		fmt.Printf("## %s — %s\n\nPaper claim: %s\n\n", e.ID, e.Title, e.Claim)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("\n(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%s\n", *runID)
		os.Exit(1)
	}
}
