// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table (or table pair) per claim of the paper.
//
// Usage:
//
//	benchtab [-quick] [-run E7] [-list] [-json out.json]
//
// With no flags it runs every experiment at full scale, which takes a few
// minutes on one core; -quick shrinks the inputs for a fast smoke pass.
// With -json it instead runs the runtime benchmarks and writes
// machine-readable results to the given path: the P-series (legacy vs
// pooled execution engine — id, ns/op, allocs/op, PRAM work and depth)
// the S-series (one-shot vs streaming matching across a segment
// sweep — MB/s, peak resident window, segments, ledger), the
// D-series (cold preprocessing vs snapshot load across a dictionary
// sweep — ns, snapshot bytes vs d), the C-series (tree walk vs
// compiled dense automaton — MB/s per core, compile and restore cost), and
// the B-series (solo vs batched serving of concurrent small requests —
// req/s, dispatch occupancy, byte-identity check), and the Z-series
// (compressed-domain matching vs decompress-then-match on the same
// automaton — represented MB/s, bytes touched, memo hits), and the
// K-series (1-node vs sharded/replicated 3-node cluster serving —
// aggregate req/s, snapshot-reload thrash, hedged tail latency), and the
// R-series (the partition-tolerance layer: healthy-path overhead of
// breakers/budget/deadline stamping, and proxied tail latency against a
// black-holed peer with and without circuit breakers).
// This is what `make bench-json` uses to regenerate BENCH_PR10.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

// perfFile is the BENCH_PR*.json document shape.
type perfFile struct {
	GoMaxProcs int                          `json:"goMaxProcs"`
	GoVersion  string                       `json:"goVersion"`
	Scale      string                       `json:"scale"`
	Results    []bench.PerfResult           `json:"results"`
	Streaming  []bench.StreamPerfResult     `json:"streaming"`
	Persist    []bench.PersistPerfResult    `json:"persist"`
	Dense      []bench.DensePerfResult      `json:"dense"`
	Batch      []bench.BatchPerfResult      `json:"batch"`
	Cz         []bench.CzPerfResult         `json:"czsearch"`
	Cluster    []bench.ClusterPerfResult    `json:"cluster"`
	Resilience []bench.ResiliencePerfResult `json:"resilience"`
}

func main() {
	quick := flag.Bool("quick", false, "use small inputs (seconds instead of minutes)")
	runID := flag.String("run", "", "comma-separated experiment ids to run (e.g. E1,E7); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "run the P-series runtime benchmarks and write JSON results to this path")
	flag.Parse()

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	if *jsonOut != "" {
		writePerfJSON(*jsonOut, scale)
		return
	}
	wanted := map[string]bool{}
	for _, id := range strings.Split(*runID, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToUpper(id)] = true
		}
	}
	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		ran++
		fmt.Printf("## %s — %s\n\nPaper claim: %s\n\n", e.ID, e.Title, e.Claim)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("\n(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%s\n", *runID)
		os.Exit(1)
	}
}

func writePerfJSON(path string, scale bench.Scale) {
	scaleName := "full"
	if scale == bench.Quick {
		scaleName = "quick"
	}
	doc := perfFile{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Scale:      scaleName,
		Results:    bench.RunPerf(scale),
		Streaming:  bench.RunStreamPerf(scale),
		Persist:    bench.RunPersistPerf(scale),
		Dense:      bench.RunDensePerf(scale),
		Batch:      bench.RunBatchPerf(scale),
		Cz:         bench.RunCzPerf(scale),
		Cluster:    bench.RunClusterPerf(scale),
		Resilience: bench.RunResiliencePerf(scale),
	}
	// Also echo a human-readable summary so the run is not silent.
	for _, r := range doc.Results {
		fmt.Printf("%-4s %-22s %-7s n=%-8d %12d ns/op %8d allocs/op  work=%d depth=%d\n",
			r.ID, r.Name, r.Config, r.N, r.NsPerOp, r.AllocsPerOp, r.Work, r.Depth)
	}
	for _, r := range doc.Streaming {
		fmt.Printf("%-4s %-22s %-16s n=%-8d %12d ns/op %8.1f MB/s  resident=%d segments=%d work=%d depth=%d\n",
			r.ID, r.Name, r.Config, r.N, r.NsPerOp, r.MBPerSec, r.MaxResident, r.Segments, r.Work, r.Depth)
	}
	for _, r := range doc.Persist {
		fmt.Printf("%-4s %-22s %-16s d=%-8d prep=%dns load=%dns (%.1fx) snapshot=%dB (%.2f B/d)\n",
			r.ID, r.Name, r.Config, r.D, r.PreprocessNs, r.LoadNs, r.Speedup, r.SnapshotBytes, r.BytesPerD)
	}
	for _, r := range doc.Dense {
		fmt.Printf("%-4s %-22s %-7s n=%-8d %12d ns/op %8.1f MB/s", r.ID, r.Name, r.Config, r.TextLen, r.NsPerOp, r.MBPerSec)
		if r.Config == "dense" {
			fmt.Printf("  %.1fx compile=%dns table=%dB restore=%dns", r.Speedup, r.CompileNs, r.TableBytes, r.RestoreNs)
		}
		fmt.Println()
	}
	for _, r := range doc.Batch {
		fmt.Printf("%-4s %-22s %-6s clients=%-3d n=%-6d %12d ns/req %10.0f req/s", r.ID, r.Name, r.Config, r.Clients, r.Requests, r.NsPerReq, r.ReqPerSec)
		if r.Config == "batch" {
			fmt.Printf("  %.1fx batches=%d occupancy=%.1f identical=%v", r.Speedup, r.Batches, r.MeanOccupancy, r.Identical)
		}
		fmt.Println()
	}
	for _, r := range doc.Cz {
		fmt.Printf("%-4s %-22s %-16s n=%-8d ratio=%.4f %12d ns/op %8.1f MB/s(rep)", r.ID, r.Name, r.Config, r.TextLen, r.Ratio, r.NsPerOp, r.RepMBPerS)
		if r.Config == "czsearch" {
			fmt.Printf("  %.2fx touched=%dB (%.2f%%) memoHits=%d", r.Speedup, r.BytesTouched, r.TouchedPct, r.MemoHits)
		}
		fmt.Println()
	}
	for _, r := range doc.Cluster {
		fmt.Printf("%-4s %-22s %-9s nodes=%d R=%d clients=%-3d n=%-6d", r.ID, r.Name, r.Config, r.Nodes, r.Replicas, r.Clients, r.Requests)
		if r.ID == "K3" {
			fmt.Printf(" p50=%.2fms p99=%.2fms hedged=%d won=%d", r.P50Ms, r.P99Ms, r.Hedged, r.HedgeWon)
		} else {
			fmt.Printf(" dicts=%-3d %10.0f req/s reloads=%d", r.Dicts, r.ReqPerSec, r.SnapshotReloads)
		}
		if r.Speedup > 0 {
			fmt.Printf("  %.2fx", r.Speedup)
		}
		fmt.Println()
	}
	for _, r := range doc.Resilience {
		fmt.Printf("%-4s %-22s %-10s nodes=%d R=%d clients=%-3d n=%-6d", r.ID, r.Name, r.Config, r.Nodes, r.Replicas, r.Clients, r.Requests)
		if r.ID == "R2" {
			fmt.Printf(" p50=%.2fms p99=%.2fms strikes=%d fastFails=%d", r.P50Ms, r.P99Ms, r.SlowStrikes, r.FastFails)
		} else {
			fmt.Printf(" %12d ns/req %10.0f req/s", r.NsPerReq, r.ReqPerSec)
			if r.Config == "resilient" {
				fmt.Printf(" overhead=%+.1f%%", r.OverheadPct)
			}
		}
		if r.Speedup > 0 {
			fmt.Printf("  %.2fx", r.Speedup)
		}
		fmt.Println()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d results, %d streaming, %d persist, %d dense, %d batch, %d czsearch, %d cluster, %d resilience)\n",
		path, len(doc.Results), len(doc.Streaming), len(doc.Persist), len(doc.Dense), len(doc.Batch), len(doc.Cz), len(doc.Cluster), len(doc.Resilience))
}
