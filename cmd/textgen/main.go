// Command textgen emits the seeded synthetic workloads used throughout the
// experiments, so every table in EXPERIMENTS.md can be reproduced from
// shell pipelines as well as from Go.
//
// Usage:
//
//	textgen -kind dna -n 1000000 [-seed 42] > genome.txt
//	textgen -kind dict -count 100 -min 4 -max 24 -sigma 4 > patterns.txt
//
// Kinds: uniform, dna, markov, repetitive, fibonacci, thuemorse, dict,
// prefixdict.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/textgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("textgen: ")
	kind := flag.String("kind", "uniform", "uniform|dna|markov|repetitive|fibonacci|thuemorse|dict|prefixdict")
	n := flag.Int("n", 1_000_000, "output length in bytes (text kinds)")
	sigma := flag.Int("sigma", 4, "alphabet size")
	seed := flag.Uint64("seed", 42, "generator seed")
	count := flag.Int("count", 100, "number of patterns (dict kinds)")
	minLen := flag.Int("min", 4, "min pattern length (dict)")
	maxLen := flag.Int("max", 24, "max pattern length (dict; prefixdict uses it alone)")
	block := flag.Int("block", 64, "repeat block length (repetitive)")
	mutate := flag.Float64("mutate", 0.01, "mutation rate (repetitive)")
	conc := flag.Float64("conc", 0.3, "concentration (markov)")
	flag.Parse()

	gen := textgen.New(*seed)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch *kind {
	case "uniform":
		mustWrite(out, gen.Uniform(*n, *sigma))
	case "dna":
		mustWrite(out, gen.DNA(*n))
	case "markov":
		mustWrite(out, gen.Markov(*n, *sigma, *conc))
	case "repetitive":
		mustWrite(out, gen.Repetitive(*n, *block, *mutate))
	case "fibonacci":
		mustWrite(out, textgen.Fibonacci(*n))
	case "thuemorse":
		mustWrite(out, textgen.ThueMorse(*n))
	case "dict":
		for _, p := range gen.Dictionary(*count, *minLen, *maxLen, *sigma) {
			fmt.Fprintf(out, "%s\n", p)
		}
	case "prefixdict":
		for _, p := range gen.PrefixClosedDictionary(*count, *maxLen, *sigma) {
			fmt.Fprintf(out, "%s\n", p)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

func mustWrite(out *bufio.Writer, b []byte) {
	if _, err := out.Write(b); err != nil {
		log.Fatal(err)
	}
}
