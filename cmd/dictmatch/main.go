// Command dictmatch preprocesses a dictionary of patterns and reports, for
// each position of a text, the longest pattern that starts there — the
// paper's dictionary matching problem (§3).
//
// Usage:
//
//	dictmatch -dict patterns.txt [-text file] [-engine parallel|ac] \
//	          [-procs N] [-nca auto|naive|veb] [-stats] [-q]
//
// The dictionary file holds one pattern per line. The text is read from
// -text or stdin. Output lines are "offset<TAB>pattern". -engine=ac runs
// the sequential Aho–Corasick baseline instead; -stats prints the PRAM
// work/depth ledger.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/pram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dictmatch: ")
	dictPath := flag.String("dict", "", "file with one pattern per line (required)")
	textPath := flag.String("text", "", "text file (default stdin)")
	engine := flag.String("engine", "parallel", "parallel (the paper's algorithm, Las Vegas) or ac (Aho–Corasick baseline)")
	procs := flag.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
	ncaFlag := flag.String("nca", "auto", "nearest-colored-ancestor structure: auto, naive, veb")
	anchorFlag := flag.String("anchor", "separator", "Step 1A locate strategy: separator (the paper's) or sa")
	stats := flag.Bool("stats", false, "print PRAM work/depth counters to stderr")
	quiet := flag.Bool("q", false, "suppress per-match output (useful with -stats)")
	seed := flag.Uint64("seed", 1, "fingerprint seed")
	flag.Parse()

	if *dictPath == "" {
		log.Fatal("-dict is required")
	}
	patterns, err := readPatterns(*dictPath)
	if err != nil {
		log.Fatal(err)
	}
	text, err := readText(*textPath)
	if err != nil {
		log.Fatal(err)
	}

	var matches []core.Match
	start := time.Now()
	var m *pram.Machine
	switch *engine {
	case "ac":
		ac := ahocorasick.New(patterns)
		res := ac.Match(text)
		matches = make([]core.Match, len(res))
		for i, p := range res {
			if p < 0 {
				matches[i] = core.None
			} else {
				matches[i] = core.Match{PatternID: p, Length: ac.PatternLen(p)}
			}
		}
	case "parallel":
		m = pram.New(*procs)
		defer m.Close()
		var nca core.NCAVariant
		switch *ncaFlag {
		case "auto":
			nca = core.NCAAuto
		case "naive":
			nca = core.NCANaive
		case "veb":
			nca = core.NCAImproved
		default:
			log.Fatalf("unknown -nca %q", *ncaFlag)
		}
		var anchor core.AnchorStrategy
		switch *anchorFlag {
		case "separator":
			anchor = core.AnchorSeparator
		case "sa":
			anchor = core.AnchorSA
		default:
			log.Fatalf("unknown -anchor %q", *anchorFlag)
		}
		dict := core.Preprocess(m, patterns, core.Options{Seed: *seed, NCA: nca, Anchor: anchor})
		var attempts int
		matches, attempts = dict.MatchLasVegas(m, text)
		if attempts > 1 {
			fmt.Fprintf(os.Stderr, "note: %d Las Vegas attempts\n", attempts)
		}
	default:
		log.Fatalf("unknown -engine %q", *engine)
	}
	elapsed := time.Since(start)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	found := 0
	for i, mt := range matches {
		if mt.Length == 0 {
			continue
		}
		found++
		if !*quiet {
			fmt.Fprintf(out, "%d\t%s\n", i, patterns[mt.PatternID])
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "text=%dB dict=%d patterns matches=%d wall=%s\n",
			len(text), len(patterns), found, elapsed.Round(time.Microsecond))
		if m != nil {
			w, d := m.Counters()
			fmt.Fprintf(os.Stderr, "pram: work=%d (%.2f/char) depth=%d procs=%d\n",
				w, float64(w)/float64(len(text)), d, m.Procs())
		}
	}
}

func readPatterns(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var patterns [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > 0 {
			patterns = append(patterns, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no patterns in %s", path)
	}
	return patterns, nil
}

func readText(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
