// Command dictmatch preprocesses a dictionary of patterns and reports, for
// each position of a text, the longest pattern that starts there — the
// paper's dictionary matching problem (§3).
//
// Usage:
//
//	dictmatch -dict patterns.txt [-text file] [-engine parallel|ac] \
//	          [-procs N] [-nca auto|naive|veb] [-stream] [-segment BYTES] \
//	          [-stats] [-q]
//
// The dictionary file holds one pattern per line. The text is read from
// -text or stdin. Output lines are "offset<TAB>pattern". -engine=ac runs
// the sequential Aho–Corasick baseline instead; -stats prints the PRAM
// work/depth ledger.
//
// -stream matches the text through the bounded-memory segment pipeline
// (internal/stream) instead of loading it whole: resident memory is
// O(-segment + longest pattern) however large the input, and matches print
// incrementally. `cat big.txt | dictmatch -dict p.txt -stream` emits the
// same lines as the batch mode.
//
// -compressed treats the input as an LZ1R1 container (lzpack -c produces
// one) and matches it in the compressed domain (internal/czsearch): the
// output lines are identical to decompressing and matching, but the
// automaton touches only a fraction of the represented bytes. Anything that
// is not an LZ1R1 container is rejected with a non-zero exit.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/czsearch"
	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dictmatch: ")
	dictPath := flag.String("dict", "", "file with one pattern per line (required)")
	textPath := flag.String("text", "", "text file (default stdin)")
	engine := flag.String("engine", "parallel", "parallel (the paper's algorithm, Las Vegas) or ac (Aho–Corasick baseline)")
	procs := flag.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
	ncaFlag := flag.String("nca", "auto", "nearest-colored-ancestor structure: auto, naive, veb")
	anchorFlag := flag.String("anchor", "separator", "Step 1A locate strategy: separator (the paper's) or sa")
	stats := flag.Bool("stats", false, "print PRAM work/depth counters to stderr")
	quiet := flag.Bool("q", false, "suppress per-match output (useful with -stats)")
	seed := flag.Uint64("seed", 1, "fingerprint seed")
	streamMode := flag.Bool("stream", false, "stream the text through the bounded-memory segment pipeline")
	segment := flag.Int("segment", 1<<20, "segment size in bytes for -stream")
	compressed := flag.Bool("compressed", false, "treat the input as an LZ1R1 container and match it without decompressing")
	flag.Parse()

	if *dictPath == "" {
		log.Fatal("-dict is required")
	}
	patterns, err := readPatterns(*dictPath)
	if err != nil {
		log.Fatal(err)
	}
	if *compressed {
		if *streamMode {
			log.Fatal("-compressed and -stream are mutually exclusive (a compressed scan is already streaming)")
		}
		runCompressed(patterns, *textPath, *procs, *seed, *segment, *stats, *quiet)
		return
	}
	if *streamMode {
		if *engine != "parallel" {
			log.Fatal("-stream requires -engine parallel")
		}
		runStream(patterns, *textPath, *procs, *seed, *segment, *stats, *quiet)
		return
	}
	text, err := readText(*textPath)
	if err != nil {
		log.Fatal(err)
	}

	var matches []core.Match
	start := time.Now()
	var m *pram.Machine
	switch *engine {
	case "ac":
		ac := ahocorasick.New(patterns)
		res := ac.Match(text)
		matches = make([]core.Match, len(res))
		for i, p := range res {
			if p < 0 {
				matches[i] = core.None
			} else {
				matches[i] = core.Match{PatternID: p, Length: ac.PatternLen(p)}
			}
		}
	case "parallel":
		m = pram.New(*procs)
		defer m.Close()
		var nca core.NCAVariant
		switch *ncaFlag {
		case "auto":
			nca = core.NCAAuto
		case "naive":
			nca = core.NCANaive
		case "veb":
			nca = core.NCAImproved
		default:
			log.Fatalf("unknown -nca %q", *ncaFlag)
		}
		var anchor core.AnchorStrategy
		switch *anchorFlag {
		case "separator":
			anchor = core.AnchorSeparator
		case "sa":
			anchor = core.AnchorSA
		default:
			log.Fatalf("unknown -anchor %q", *anchorFlag)
		}
		dict := core.Preprocess(m, patterns, core.Options{Seed: *seed, NCA: nca, Anchor: anchor})
		var attempts int
		matches, attempts = dict.MatchLasVegas(m, text)
		if attempts > 1 {
			fmt.Fprintf(os.Stderr, "note: %d Las Vegas attempts\n", attempts)
		}
	default:
		log.Fatalf("unknown -engine %q", *engine)
	}
	elapsed := time.Since(start)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	found := 0
	for i, mt := range matches {
		if mt.Length == 0 {
			continue
		}
		found++
		if !*quiet {
			fmt.Fprintf(out, "%d\t%s\n", i, patterns[mt.PatternID])
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "text=%dB dict=%d patterns matches=%d wall=%s\n",
			len(text), len(patterns), found, elapsed.Round(time.Microsecond))
		if m != nil {
			w, d := m.Counters()
			fmt.Fprintf(os.Stderr, "pram: work=%d (%.2f/char) depth=%d procs=%d\n",
				w, float64(w)/float64(len(text)), d, m.Procs())
		}
	}
}

// lineSink prints one "offset<TAB>pattern" line per match event, exactly
// like the batch output path.
type lineSink struct {
	out      *bufio.Writer
	patterns [][]byte
	quiet    bool
	found    int64
}

func (s *lineSink) MatchEvent(e stream.MatchEvent) error {
	s.found++
	if s.quiet {
		return nil
	}
	_, err := fmt.Fprintf(s.out, "%d\t%s\n", e.Pos, s.patterns[e.PatternID])
	return err
}

// runStream is the -stream path: the text flows through internal/stream's
// segment pipeline, never resident beyond one window.
func runStream(patterns [][]byte, textPath string, procs int, seed uint64, segment int, stats, quiet bool) {
	var r io.Reader = os.Stdin
	if textPath != "" {
		f, err := os.Open(textPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	m := pram.New(procs)
	defer m.Close()
	dict := core.Preprocess(m, patterns, core.Options{Seed: seed})
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sink := &lineSink{out: out, patterns: patterns, quiet: quiet}
	start := time.Now()
	st, err := stream.Match(context.Background(), stream.DictMatcher{Dict: dict, M: m}, r, sink, stream.Config{SegmentBytes: segment})
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	if st.Rounds > int(st.Segments) {
		fmt.Fprintf(os.Stderr, "note: %d Las Vegas attempts over %d segments\n", st.Rounds, st.Segments)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "text=%dB dict=%d patterns matches=%d wall=%s\n",
			st.TextBytes, len(patterns), sink.found, elapsed.Round(time.Microsecond))
		fmt.Fprintf(os.Stderr, "stream: segments=%d window=%dB resident=%dB recompute=%.2f%%\n",
			st.Segments, segment, st.MaxResident,
			100*float64(st.WindowBytes-st.TextBytes)/float64(max(st.TextBytes, 1)))
		fmt.Fprintf(os.Stderr, "pram: work=%d (%.2f/char) depth=%d procs=%d\n",
			st.Work, float64(st.Work)/float64(max(st.TextBytes, 1)), st.Depth, m.Procs())
	}
}

// runCompressed is the -compressed path: the input is an LZ1R1 container,
// matched in the compressed domain. The dictionary is lowered to the dense
// automaton and scanned token by token (internal/czsearch); if the table is
// over budget the windowed uncompressor fused to the streaming matcher
// produces the same lines the slow way.
func runCompressed(patterns [][]byte, textPath string, procs int, seed uint64, segment int, stats, quiet bool) {
	var r io.Reader = os.Stdin
	if textPath != "" {
		f, err := os.Open(textPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	found := int64(0)
	sink := func(e czsearch.Event) error {
		found++
		if quiet {
			return nil
		}
		_, err := fmt.Fprintf(out, "%d\t%s\n", e.Pos, patterns[e.PatternID])
		return err
	}

	start := time.Now()
	var st czsearch.Stats
	aut, cerr := dense.Compile(patterns, dense.Options{})
	if cerr == nil {
		dec, err := lz.NewDecoder(r)
		if err != nil {
			fatalContainer(err)
		}
		st, cerr = czsearch.NewScanner(aut, czsearch.Config{}).Run(context.Background(), dec, sink)
		if cerr != nil {
			fatalContainer(cerr)
		}
	} else {
		fmt.Fprintf(os.Stderr, "note: dense table over budget (%v); decompressing to match\n", cerr)
		m := pram.New(procs)
		defer m.Close()
		dict := core.Preprocess(m, patterns, core.Options{Seed: seed})
		f, err := czsearch.NewFallback(r, czsearch.Config{})
		if err != nil {
			fatalContainer(err)
		}
		st, err = f.Run(context.Background(), stream.DictMatcher{Dict: dict, M: m}, stream.Config{SegmentBytes: segment}, sink)
		if err != nil {
			fatalContainer(err)
		}
	}
	elapsed := time.Since(start)
	if stats {
		fmt.Fprintf(os.Stderr, "represented=%dB tokens=%d dict=%d patterns matches=%d wall=%s\n",
			st.BytesRepresented, st.Tokens, len(patterns), found, elapsed.Round(time.Microsecond))
		fmt.Fprintf(os.Stderr, "czsearch: touched=%dB (%.1f%%) syncSkipped=%dB memo=%dB hits=%d resident=%dB\n",
			st.BytesTouched, 100*float64(st.BytesTouched)/float64(max(st.BytesRepresented, 1)),
			st.SyncSkipped, st.MemoBytes, st.MemoHits, st.MaxResident)
	}
}

// fatalContainer exits non-zero with a message that distinguishes "not an
// LZ1R1 container at all" from mid-stream corruption.
func fatalContainer(err error) {
	if errors.Is(err, lz.ErrNotLZ1R1) {
		log.Fatalf("input is not an LZ1R1 container (-compressed wants lzpack -c output): %v", err)
	}
	log.Fatal(err)
}

func readPatterns(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var patterns [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > 0 {
			patterns = append(patterns, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no patterns in %s", path)
	}
	return patterns, nil
}

func readText(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
