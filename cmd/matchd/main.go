// Command matchd serves the paper's algorithms over HTTP: dictionary
// matching (§3) against a registry of preprocessed dictionaries, LZ1
// compression/uncompression (§4), and optimal static parsing (§5).
//
// Usage:
//
//	matchd [-addr :8080] [-procs N] [-max-dicts N] [-max-inflight N] \
//	       [-timeout 30s] [-max-body BYTES] [-segment BYTES] [-stream-window BYTES] \
//	       [-cache-dir DIR] [-dense off|on|auto] [-dense-max-table BYTES] \
//	       [-chaos-seed N -chaos-plan SPEC]
//
// Endpoints (JSON bodies; binary payloads base64 in "textB64"/"dataB64"):
//
//	POST   /v1/dicts              preprocess {"patterns": [...]} once → {"id": "d1"}
//	GET    /v1/dicts              list resident dictionaries (MRU first)
//	GET    /v1/dicts/{id}         one dictionary's stats
//	DELETE /v1/dicts/{id}         drop a dictionary
//	POST   /v1/dicts/{id}/match   {"text": ...} → longest pattern per position
//	POST   /v1/dicts/{id}/parse   {"text": ...} → §5 optimal word references
//	POST   /v1/dicts/{id}/expand  {"refs": [...]} → original text
//	POST   /v1/compress           {"text": ...} → LZ1R1 container (base64)
//	POST   /v1/decompress         {"dataB64": ...} → original text
//	GET    /metrics               counters, latency histograms, PRAM ledger
//	GET    /healthz               liveness
//	GET    /readyz                readiness: pool, registry, store health
//
// Persistence (enabled by -cache-dir DIR): preprocessed dictionaries are
// written through to DIR as content-addressed snapshot files, a restart
// warm-loads them with zero re-preprocessing, and POST /v1/dicts with a
// pattern set already in the cache loads instead of preprocessing. Admin
// endpoints:
//
//	POST /v1/dicts/{id}/snapshot  serialize a resident dictionary → {"key": ...}
//	POST /v1/dicts/restore        {"key": ...} → load a snapshot into the registry
//
// Dense serving (-dense, default auto): each registered dictionary is
// compiled into a flat-table automaton (internal/dense) and
// /v1/dicts/{id}/match answers from it deterministically; until the
// background compile lands — or if the table would exceed -dense-max-table —
// requests fall back to the Las Vegas tree walk, which also cross-validates
// sampled dense results. Snapshots written with -cache-dir carry the
// compiled form (DENSE section), so a restart skips compilation too. The
// response's "engine" field and the /metrics "dense" section show which path
// served.
//
// Streaming endpoints (raw bodies, no -max-body cap, no request deadline —
// resident memory is bounded by -segment, not by the text):
//
//	POST /v1/dicts/{id}/match/stream   text bytes in → NDJSON events out,
//	                                   flushed per segment; "?segment=N"
//	                                   overrides the window size per request
//	POST /v1/decompress/stream         LZ1R1 container in → raw bytes out,
//	                                   retaining -stream-window history
//
// e.g.  curl -N --data-binary @big.txt :8080/v1/dicts/d1/match/stream
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
//
// Fault injection (soak testing): a binary built with -tags chaos accepts
// -chaos-seed and -chaos-plan, installing a deterministic fault schedule
// (internal/chaos) before serving, e.g.
//
//	go run -tags chaos ./cmd/matchd -chaos-seed 42 \
//	    -chaos-plan 'fp.collide:p=0.001;pool.delay:p=0.01,delay=1ms'
//
// Without the tag the flags still parse, but a non-empty -chaos-plan is a
// startup error rather than a silent no-op. Per-point fired/call counters
// are logged at shutdown.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matchd: ")
	addr := flag.String("addr", ":8080", "listen address")
	procs := flag.Int("procs", 0, "worker goroutines per request (0 = GOMAXPROCS)")
	maxDicts := flag.Int("max-dicts", 64, "resident preprocessed dictionaries before LRU eviction")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before shedding with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 32<<20, "request body limit in bytes (buffered endpoints only)")
	segment := flag.Int("segment", 1<<20, "streaming endpoints: fresh text bytes per window")
	streamWindow := flag.Int("stream-window", 0, "streaming decompress: retained history bytes (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "snapshot cache directory: warm start from it and write preprocessed dictionaries through ('' = off)")
	denseMode := flag.String("dense", "auto", "dense serving path: off (tree walk only), on (compile at registration), auto (background compile, tree walk until ready)")
	denseMaxTable := flag.Int64("dense-max-table", 0, "dense transition-table byte budget per dictionary (0 = 256 MiB); over-budget dictionaries stay on the tree walk")
	chaosSeed := flag.Uint64("chaos-seed", 0, "seed for the -chaos-plan fault schedule")
	chaosPlan := flag.String("chaos-plan", "", "deterministic fault-injection plan, e.g. 'fp.collide:p=0.001;pool.delay:p=0.01,delay=1ms' (requires a -tags chaos build)")
	flag.Parse()

	if *chaosPlan != "" {
		if !chaos.Compiled {
			log.Fatal("-chaos-plan set but this binary was built without -tags chaos; rebuild with `go build -tags chaos ./cmd/matchd`")
		}
		plan, err := chaos.ParsePlan(*chaosSeed, *chaosPlan)
		if err != nil {
			log.Fatal(err)
		}
		chaos.Install(plan)
		log.Printf("chaos: armed with seed %d: %s", *chaosSeed, plan)
	}

	srv, err := server.New(server.Config{
		Addr:           *addr,
		Procs:          *procs,
		MaxDicts:       *maxDicts,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		SegmentBytes:   *segment,
		StreamWindow:   *streamWindow,
		CacheDir:       *cacheDir,
		Log:            log.Default(),

		DenseMode:          *denseMode,
		DenseMaxTableBytes: *denseMaxTable,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Fatal(err)
	}
	if p := chaos.Active(); p != nil {
		for _, st := range p.Stats() {
			log.Printf("chaos: %s fired %d of %d calls", st.Point, st.Fired, st.Calls)
		}
	}
	log.Print("clean shutdown")
}
