// Command matchd serves the paper's algorithms over HTTP: dictionary
// matching (§3) against a registry of preprocessed dictionaries, LZ1
// compression/uncompression (§4), and optimal static parsing (§5).
//
// Usage:
//
//	matchd [-addr :8080] [-procs N] [-max-dicts N] [-max-inflight N] \
//	       [-timeout 30s] [-max-body BYTES] [-segment BYTES] [-stream-window BYTES] \
//	       [-cache-dir DIR] [-dense off|on|auto] [-dense-max-table BYTES] \
//	       [-batch off|on|auto] [-batch-max N] [-batch-bytes BYTES] [-batch-delay D] \
//	       [-pprof-addr ADDR] [-chaos-seed N -chaos-plan SPEC] \
//	       [-cluster-peers LIST -cluster-self NAME] [-replicas N] \
//	       [-hedge-after D] [-cluster-redirect] [-quota-per-tenant N] \
//	       [-breaker-failures N] [-breaker-cooldown D] [-retry-budget PCT] \
//	       [-hop-floor D] [-rpc-fault-admin] [-rpc-chaos-seed N -rpc-chaos-plan SPEC]
//
// Endpoints (JSON bodies; binary payloads base64 in "textB64"/"dataB64"):
//
//	POST   /v1/dicts              preprocess {"patterns": [...]} once → {"id": "d1"}
//	GET    /v1/dicts              list resident dictionaries (MRU first)
//	GET    /v1/dicts/{id}         one dictionary's stats
//	DELETE /v1/dicts/{id}         drop a dictionary
//	POST   /v1/dicts/{id}/match   {"text": ...} → longest pattern per position
//	POST   /v1/dicts/{id}/parse   {"text": ...} → §5 optimal word references
//	POST   /v1/dicts/{id}/expand  {"refs": [...]} → original text
//	POST   /v1/compress           {"text": ...} → LZ1R1 container (base64)
//	POST   /v1/decompress         {"dataB64": ...} → original text
//	GET    /metrics               counters, latency histograms, PRAM ledger
//	GET    /healthz               liveness
//	GET    /readyz                readiness: pool, registry, store health
//
// Persistence (enabled by -cache-dir DIR): preprocessed dictionaries are
// written through to DIR as content-addressed snapshot files, a restart
// warm-loads them with zero re-preprocessing, and POST /v1/dicts with a
// pattern set already in the cache loads instead of preprocessing. Admin
// endpoints:
//
//	POST /v1/dicts/{id}/snapshot  serialize a resident dictionary → {"key": ...}
//	POST /v1/dicts/restore        {"key": ...} → load a snapshot into the registry
//
// Dense serving (-dense, default auto): each registered dictionary is
// compiled into a flat-table automaton (internal/dense) and
// /v1/dicts/{id}/match answers from it deterministically; until the
// background compile lands — or if the table would exceed -dense-max-table —
// requests fall back to the Las Vegas tree walk, which also cross-validates
// sampled dense results. Snapshots written with -cache-dir carry the
// compiled form (DENSE section), so a restart skips compilation too. The
// response's "engine" field and the /metrics "dense" section show which path
// served.
//
// Batched execution (-batch, default auto): concurrent small match/parse
// requests against the same dictionary are coalesced into one machine
// dispatch over a separator-joined text and demultiplexed per request —
// results are byte-identical to solo serving, throughput on small-request
// load is several times higher. A batch dispatches at -batch-max requests,
// -batch-bytes coalesced payload, or -batch-delay after its first request,
// whichever comes first. Mode auto batches only texts below the solo-shard
// threshold (32 KiB); mode on batches everything; off disables coalescing.
// The /metrics "batch" section reports batches formed, occupancy, coalesced
// bytes, queue-delay histogram, and solo fallbacks.
//
// Profiling (-pprof-addr, off by default): when set, net/http/pprof is
// served on a SEPARATE listener at that address (e.g. localhost:6060) —
// never on the service port, so profiling is not exposed where the API is.
//
// Streaming endpoints (raw bodies, no -max-body cap, no request deadline —
// resident memory is bounded by -segment, not by the text):
//
//	POST /v1/dicts/{id}/match/stream   text bytes in → NDJSON events out,
//	                                   flushed per segment; "?segment=N"
//	                                   overrides the window size per request
//	POST /v1/decompress/stream         LZ1R1 container in → raw bytes out,
//	                                   retaining -stream-window history
//
// e.g.  curl -N --data-binary @big.txt :8080/v1/dicts/d1/match/stream
//
// Cluster mode (-cluster-peers + -cluster-self): N matchd processes with
// the same static peer table form a sharded, replicated cluster. Dictionary
// IDs become content addresses (the snapshot key of the pattern set), placed
// on -replicas owners by consistent hashing; any node answers any request —
// non-owners proxy (or 307-redirect with -cluster-redirect) to an owner,
// owners missing a dictionary pull its DMSNAP bundle from a peer's GET
// /v1/dicts/{id}/snapshot with zero re-preprocessing. Proxied requests hedge
// a second replica after -hedge-after; peers failing /readyz probes are
// skipped. GET /v1/cluster reports membership, health and placement, and
// /metrics gains a "cluster" section. -quota-per-tenant additionally caps
// concurrent requests per X-Tenant header value on every node, e.g.
//
//	matchd -addr :8081 -cluster-self n1 -cache-dir /var/a \
//	    -cluster-peers 'n1=http://10.0.0.1:8081,n2=http://10.0.0.2:8081,n3=http://10.0.0.3:8081' \
//	    -replicas 2 -hedge-after 20ms
//
// Partition tolerance (cluster mode, DESIGN.md §16): every outbound RPC —
// proxying, hedging, snapshot pulls, health probes — runs through a
// per-peer resilience layer. Circuit breakers open a peer after
// -breaker-failures consecutive failures (or a high error rate) and
// re-close via /readyz-probe-gated half-open trials after
// -breaker-cooldown; retries for idempotent GETs and snapshot pulls draw
// from a cluster-wide token budget (-retry-budget percent of request
// rate); deadlines propagate across hops via X-Deadline-Ms, and a hop
// whose remaining budget is below -hop-floor sheds immediately with 503.
// When every owner of a dictionary is unreachable but a local replica or
// cached bundle exists, the node serves it with X-Served-Stale: true
// rather than failing with 502. The /metrics "resilience.rpc" section
// reports breaker states, retries spent/denied, deadline sheds, stale
// serves, and injected faults. For chaos drills, -rpc-fault-admin mounts
// POST /v1/rpcfaults to inject wire faults (connection refusal,
// black-hole, delay, mid-body reset — per-peer, so partitions can be
// asymmetric) into the outbound pool at runtime; -rpc-chaos-plan installs
// such a plan at startup. Unlike -chaos-plan, rpc.* faults work in any
// build.
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
//
// Fault injection (soak testing): a binary built with -tags chaos accepts
// -chaos-seed and -chaos-plan, installing a deterministic fault schedule
// (internal/chaos) before serving, e.g.
//
//	go run -tags chaos ./cmd/matchd -chaos-seed 42 \
//	    -chaos-plan 'fp.collide:p=0.001;pool.delay:p=0.01,delay=1ms'
//
// Without the tag the flags still parse, but a non-empty -chaos-plan is a
// startup error rather than a silent no-op. Per-point fired/call counters
// are logged at shutdown.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers debug handlers on DefaultServeMux; served only via -pprof-addr
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matchd: ")
	addr := flag.String("addr", ":8080", "listen address")
	procs := flag.Int("procs", 0, "worker goroutines per request (0 = GOMAXPROCS)")
	maxDicts := flag.Int("max-dicts", 64, "resident preprocessed dictionaries before LRU eviction")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before shedding with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 32<<20, "request body limit in bytes (buffered endpoints only)")
	segment := flag.Int("segment", 1<<20, "streaming endpoints: fresh text bytes per window")
	streamWindow := flag.Int("stream-window", 0, "streaming decompress: retained history bytes (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "snapshot cache directory: warm start from it and write preprocessed dictionaries through ('' = off)")
	denseMode := flag.String("dense", "auto", "dense serving path: off (tree walk only), on (compile at registration), auto (background compile, tree walk until ready)")
	denseMaxTable := flag.Int64("dense-max-table", 0, "dense transition-table byte budget per dictionary (0 = 256 MiB); over-budget dictionaries stay on the tree walk")
	batchMode := flag.String("batch", "auto", "request coalescing: off (serve each request alone), on (coalesce all match/parse requests), auto (coalesce only small texts)")
	batchMax := flag.Int("batch-max", 0, "requests per batch before dispatch (0 = 32)")
	batchBytes := flag.Int("batch-bytes", 0, "coalesced payload bytes per batch before dispatch (0 = 1 MiB)")
	batchDelay := flag.Duration("batch-delay", 0, "max time a request waits for batch siblings (0 = 500µs)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 ('' = off)")
	clusterPeers := flag.String("cluster-peers", "", "static cluster membership as 'name=url,...' (or bare URLs); '' = single-node mode")
	clusterSelf := flag.String("cluster-self", "", "this node's name in -cluster-peers (required with -cluster-peers)")
	replicas := flag.Int("replicas", 2, "cluster: owners per dictionary (clamped to the peer count)")
	hedgeAfter := flag.Duration("hedge-after", 25*time.Millisecond, "cluster: latency budget before a proxied request hedges a second replica")
	clusterRedirect := flag.Bool("cluster-redirect", false, "cluster: answer non-owned buffered requests with 307 to an owner instead of proxying")
	quotaPerTenant := flag.Int("quota-per-tenant", 0, "concurrent requests allowed per X-Tenant value before shedding with 429 (0 = off)")
	breakerFailures := flag.Int("breaker-failures", 5, "cluster: consecutive outbound RPC failures before a peer's circuit breaker opens (0 = breakers off)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "cluster: open-breaker dwell before a half-open trial is admitted")
	retryBudget := flag.Int("retry-budget", 10, "cluster: retries allowed as a percent of outbound request rate (0 = retries off)")
	hopFloor := flag.Duration("hop-floor", 5*time.Millisecond, "cluster: minimum propagated deadline budget; requests arriving with less are shed with 503 (0 = off)")
	rpcFaultAdmin := flag.Bool("rpc-fault-admin", false, "cluster: mount POST/GET /v1/rpcfaults for wire-fault injection (chaos drills only; never expose in production)")
	rpcChaosPlan := flag.String("rpc-chaos-plan", "", "cluster: install an rpc.* wire-fault plan at startup, e.g. 'rpc.delay.n2:p=0.1,delay=5ms' (works in any build)")
	rpcChaosSeed := flag.Uint64("rpc-chaos-seed", 0, "seed for the -rpc-chaos-plan fault schedule")
	chaosSeed := flag.Uint64("chaos-seed", 0, "seed for the -chaos-plan fault schedule")
	chaosPlan := flag.String("chaos-plan", "", "deterministic fault-injection plan, e.g. 'fp.collide:p=0.001;pool.delay:p=0.01,delay=1ms' (requires a -tags chaos build)")
	flag.Parse()

	if *chaosPlan != "" {
		if !chaos.Compiled {
			log.Fatal("-chaos-plan set but this binary was built without -tags chaos; rebuild with `go build -tags chaos ./cmd/matchd`")
		}
		plan, err := chaos.ParsePlan(*chaosSeed, *chaosPlan)
		if err != nil {
			log.Fatal(err)
		}
		chaos.Install(plan)
		log.Printf("chaos: armed with seed %d: %s", *chaosSeed, plan)
	}

	var peers []cluster.Peer
	if *clusterPeers != "" {
		var err error
		if peers, err = cluster.ParsePeers(*clusterPeers); err != nil {
			log.Fatalf("-cluster-peers: %v", err)
		}
		if *clusterSelf == "" {
			log.Fatal("-cluster-peers requires -cluster-self")
		}
	} else if *clusterSelf != "" {
		log.Fatal("-cluster-self set without -cluster-peers")
	}

	srv, err := server.New(server.Config{
		Addr:           *addr,
		Procs:          *procs,
		MaxDicts:       *maxDicts,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		SegmentBytes:   *segment,
		StreamWindow:   *streamWindow,
		CacheDir:       *cacheDir,
		Log:            log.Default(),

		DenseMode:          *denseMode,
		DenseMaxTableBytes: *denseMaxTable,

		BatchMode:        *batchMode,
		BatchMaxRequests: *batchMax,
		BatchMaxBytes:    *batchBytes,
		BatchMaxDelay:    *batchDelay,

		ClusterSelf:       *clusterSelf,
		ClusterPeers:      peers,
		ClusterReplicas:   *replicas,
		ClusterHedgeAfter: *hedgeAfter,
		ClusterRedirect:   *clusterRedirect,
		QuotaPerTenant:    *quotaPerTenant,

		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		RetryBudgetPct:  *retryBudget,
		HopFloor:        *hopFloor,
		RPCFaultAdmin:   *rpcFaultAdmin,
		RPCChaosPlan:    *rpcChaosPlan,
		RPCChaosSeed:    *rpcChaosSeed,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAddr != "" {
		// pprof registers on http.DefaultServeMux at import; serve that mux on
		// its own listener so profiling never shares the API port.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err = srv.Run(ctx)
	srv.Close() // stop cluster health probes before reporting
	if err != nil {
		log.Fatal(err)
	}
	if p := chaos.Active(); p != nil {
		for _, st := range p.Stats() {
			log.Printf("chaos: %s fired %d of %d calls", st.Point, st.Fired, st.Calls)
		}
	}
	log.Print("clean shutdown")
}
