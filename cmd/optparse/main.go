// Command optparse parses a text optimally against a static dictionary with
// the prefix property (the paper's §5) and compares the result with the
// greedy longest-match heuristic.
//
// Usage:
//
//	optparse -dict words.txt [-text file] [-close] [-emit] [-stats] \
//	         [-stream] [-segment BYTES]
//
// The dictionary file holds one word per line. -close adds all prefixes of
// every word (establishing the prefix property the algorithm requires);
// without it the tool verifies the property and refuses if it fails.
// -emit prints the parse as "offset<TAB>word" lines.
//
// -stream parses through the bounded-memory segment pipeline
// (internal/stream): phrases print incrementally, resident memory is
// O(-segment + longest word), and the phrase count still matches the
// batch OptimalParse (the streaming frontier rule is count-optimal under
// the prefix property).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optparse: ")
	dictPath := flag.String("dict", "", "file with one word per line (required)")
	textPath := flag.String("text", "", "text file (default stdin)")
	closeDict := flag.Bool("close", false, "add all prefixes of every word")
	emit := flag.Bool("emit", false, "print the optimal parse")
	stats := flag.Bool("stats", false, "print PRAM counters")
	procs := flag.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
	streamMode := flag.Bool("stream", false, "parse through the bounded-memory segment pipeline")
	segment := flag.Int("segment", 1<<20, "segment size in bytes for -stream")
	flag.Parse()

	if *dictPath == "" {
		log.Fatal("-dict is required")
	}
	words, err := readWords(*dictPath, *closeDict)
	if err != nil {
		log.Fatal(err)
	}
	if *streamMode {
		runStream(words, *textPath, *procs, *segment, *emit, *stats)
		return
	}
	text, err := readText(*textPath)
	if err != nil {
		log.Fatal(err)
	}

	m := pram.New(*procs)
	defer m.Close()
	start := time.Now()
	dict := core.Preprocess(m, words, core.Options{Seed: 1})
	maxLen := dict.PrefixLengths(m, text)
	opt, err := staticdict.OptimalParse(m, len(text), maxLen)
	wall := time.Since(start)
	if err != nil {
		log.Fatalf("%v (is every text symbol a dictionary word? try -close)", err)
	}
	greedy, gerr := staticdict.GreedyParse(len(text), maxLen)

	if *emit {
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		for _, p := range opt {
			fmt.Fprintf(out, "%d\t%s\n", p.Pos, text[p.Pos:p.Pos+p.Len])
		}
	}
	fmt.Fprintf(os.Stderr, "optimal: %d phrases", len(opt))
	if gerr == nil {
		fmt.Fprintf(os.Stderr, "; greedy: %d phrases (%.3fx)", len(greedy),
			float64(len(greedy))/float64(len(opt)))
	} else {
		fmt.Fprintf(os.Stderr, "; greedy: fails (%v)", gerr)
	}
	fmt.Fprintf(os.Stderr, "; wall %s\n", wall.Round(time.Microsecond))
	if *stats {
		w, d := m.Counters()
		fmt.Fprintf(os.Stderr, "pram: work=%d depth=%d procs=%d\n", w, d, m.Procs())
	}
}

// phraseSink prints "offset<TAB>word" lines as phrases finalize.
type phraseSink struct {
	out   *bufio.Writer
	words [][]byte
	emit  bool
	n     int64
}

func (s *phraseSink) PhraseEvent(e stream.PhraseEvent) error {
	s.n++
	if !s.emit {
		return nil
	}
	if e.Word < 0 {
		return fmt.Errorf("phrase at %d has no dictionary word (prefix property violated)", e.Pos)
	}
	_, err := fmt.Fprintf(s.out, "%d\t%s\n", e.Pos, s.words[e.Word])
	return err
}

// runStream is the -stream path: §5 parsing via the streaming frontier
// rule, never holding more than one window of text.
func runStream(words [][]byte, textPath string, procs, segment int, emit, stats bool) {
	var r io.Reader = os.Stdin
	if textPath != "" {
		f, err := os.Open(textPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	m := pram.New(procs)
	defer m.Close()
	start := time.Now()
	dict := core.Preprocess(m, words, core.Options{Seed: 1})
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sink := &phraseSink{out: out, words: words, emit: emit}
	st, err := stream.Parse(context.Background(), dict, m, r, sink, stream.Config{SegmentBytes: segment})
	wall := time.Since(start)
	if err != nil {
		log.Fatalf("%v (is every text symbol a dictionary word? try -close)", err)
	}
	fmt.Fprintf(os.Stderr, "optimal: %d phrases; wall %s\n", sink.n, wall.Round(time.Microsecond))
	if stats {
		fmt.Fprintf(os.Stderr, "stream: text=%dB segments=%d resident=%dB recompute=%.2f%%\n",
			st.TextBytes, st.Segments, st.MaxResident,
			100*float64(st.WindowBytes-st.TextBytes)/float64(max(st.TextBytes, 1)))
		fmt.Fprintf(os.Stderr, "pram: work=%d depth=%d procs=%d\n", st.Work, st.Depth, m.Procs())
	}
}

func readWords(path string, close bool) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seen := map[string]bool{}
	var words [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		w := sc.Text()
		if w == "" {
			continue
		}
		if close {
			for p := 1; p <= len(w); p++ {
				if !seen[w[:p]] {
					seen[w[:p]] = true
					words = append(words, []byte(w[:p]))
				}
			}
		} else if !seen[w] {
			seen[w] = true
			words = append(words, []byte(w))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("no words in %s", path)
	}
	if !close {
		for _, w := range words {
			for p := 1; p < len(w); p++ {
				if !seen[string(w[:p])] {
					return nil, fmt.Errorf("dictionary lacks the prefix property: %q present but %q missing (use -close)", w, w[:p])
				}
			}
		}
	}
	return words, nil
}

func readText(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
