// Command dictpack manages dictionary snapshot files (internal/persist):
// preprocess a pattern set once into a portable .dmsnap, ship the file, and
// every later consumer (dictpack itself, matchd -cache-dir) loads the
// prepared tables with zero re-preprocessing.
//
// Usage:
//
//	dictpack pack    -dict patterns.txt [-o dict.dmsnap | -store DIR] [-dense] \
//	                 [-seed N] [-nca auto|naive|veb] [-anchor separator|sa] [-procs N]
//	dictpack unpack  -in dict.dmsnap [-o patterns.txt]
//	dictpack inspect -in dict.dmsnap [-json]
//	dictpack verify  -in dict.dmsnap
//	dictpack compile -in dict.dmsnap [-o out.dmsnap] [-max-table BYTES] [-force]
//
// pack preprocesses (§3) and writes the snapshot to -o, or into a
// content-addressed store directory with -store (the same layout matchd
// -cache-dir reads, so packing into a server's cache dir prewarms it); with
// -dense it also compiles the flat-table automaton so the DENSE section
// ships inside the file. unpack recovers the original pattern list from a
// snapshot. inspect prints the header and per-section byte layout after
// checksum validation only, including the dense automaton's shape when a
// DENSE section is present; verify additionally rebuilds the dictionary,
// checking every structural invariant, and runs the §3.4 fingerprint
// self-check.
//
// compile upgrades an existing snapshot in place: it loads the file, compiles
// the internal/dense automaton from the prepared dictionary, and atomically
// rewrites the snapshot with the DENSE section appended (write to a temp
// file, validate, rename — a crash mid-upgrade leaves the original intact).
// A snapshot that already carries a DENSE section is left untouched unless
// -force. A file that fails validation is moved aside to the same .quarantine
// directory matchd uses rather than overwritten.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/persist"
	"repro/internal/pram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dictpack: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "pack":
		cmdPack(os.Args[2:])
	case "unpack":
		cmdUnpack(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "compile":
		cmdCompile(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dictpack pack    -dict patterns.txt [-o dict.dmsnap | -store DIR] [-dense] [options]
  dictpack unpack  -in dict.dmsnap [-o patterns.txt]
  dictpack inspect -in dict.dmsnap [-json]
  dictpack verify  -in dict.dmsnap
  dictpack compile -in dict.dmsnap [-o out.dmsnap] [-max-table BYTES] [-force]`)
	os.Exit(2)
}

func cmdPack(args []string) {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	dictPath := fs.String("dict", "", "file with one pattern per line (required)")
	out := fs.String("o", "", "output snapshot file")
	storeDir := fs.String("store", "", "content-addressed store directory (matchd -cache-dir layout)")
	seed := fs.Uint64("seed", 1, "fingerprint seed")
	ncaFlag := fs.String("nca", "auto", "nearest-colored-ancestor structure: auto, naive, veb")
	anchorFlag := fs.String("anchor", "separator", "Step 1A locate strategy: separator or sa")
	procs := fs.Int("procs", 0, "preprocessing worker goroutines (0 = GOMAXPROCS)")
	withDense := fs.Bool("dense", false, "also compile the flat-table automaton into a DENSE section")
	fs.Parse(args)
	if *dictPath == "" {
		log.Fatal("pack: -dict is required")
	}
	if (*out == "") == (*storeDir == "") {
		log.Fatal("pack: exactly one of -o or -store is required")
	}
	patterns, err := readPatterns(*dictPath)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{Seed: *seed, NCA: parseNCA(*ncaFlag), Anchor: parseAnchor(*anchorFlag)}

	m := pram.New(*procs)
	defer m.Close()
	start := time.Now()
	dict := core.Preprocess(m, patterns, opts)
	prep := time.Since(start)
	work, depth := m.Counters()

	var aut *dense.Automaton
	if *withDense {
		var err error
		aut, err = dense.CompileDictionary(dict, dense.Options{})
		if err != nil {
			log.Fatalf("dense compile: %v", err)
		}
	}

	var (
		size int
		dest string
	)
	if *storeDir != "" {
		st, err := persist.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		key := persist.KeyFor(patterns, opts)
		size, err = st.PutBundle(key, dict, aut)
		if err != nil {
			log.Fatal(err)
		}
		dest = st.Path(key)
	} else {
		data := persist.EncodeBundle(dict, aut)
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		size, dest = len(data), *out
	}
	total := 0
	for _, p := range patterns {
		total += len(p)
	}
	fmt.Printf("packed %d patterns (%d bytes) -> %s (%d bytes, %.2fx)\n",
		len(patterns), total, dest, size, float64(size)/float64(max(total, 1)))
	fmt.Printf("preprocess: wall=%s pram work=%d depth=%d; loading this snapshot repays all of it\n",
		prep.Round(time.Microsecond), work, depth)
	if aut != nil {
		st := aut.Stats()
		fmt.Printf("dense: %d states x %d symbols, %d table bytes\n",
			st.States, st.Alphabet, st.TableBytes)
	}
}

// cmdCompile upgrades a snapshot in place (or to -o) by compiling the dense
// automaton from the prepared dictionary it already carries. The write path
// is the store's atomic temp+rename with post-write validation, so the
// original file survives a crash or a bad write; an input that fails
// validation is quarantined, not overwritten.
func cmdCompile(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	out := fs.String("o", "", "output file (default: rewrite -in atomically)")
	maxTable := fs.Int64("max-table", 0, "transition-table byte budget (0 = 256 MiB)")
	force := fs.Bool("force", false, "recompile even if a DENSE section is already present")
	fs.Parse(args)
	data := readSnapshot(*in)
	dest := *out
	if dest == "" {
		dest = *in
	}

	dict, existing, err := persist.LoadBundle(data)
	if err != nil {
		qpath, qerr := persist.QuarantineFile(*in, err)
		if qerr != nil {
			log.Fatalf("compile: snapshot invalid (%v); quarantine also failed: %v", err, qerr)
		}
		log.Fatalf("compile: snapshot invalid (%v); moved to %s", err, qpath)
	}
	if existing != nil && !*force {
		st := existing.Stats()
		fmt.Printf("already compiled: %d states x %d symbols, %d table bytes (use -force to recompile)\n",
			st.States, st.Alphabet, st.TableBytes)
		return
	}

	start := time.Now()
	aut, err := dense.CompileDictionary(dict, dense.Options{MaxTableBytes: *maxTable})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	elapsed := time.Since(start)
	upgraded := persist.EncodeBundle(dict, aut)
	if err := persist.WriteSnapshotFile(dest, upgraded); err != nil {
		log.Fatalf("compile: write %s: %v", dest, err)
	}
	st := aut.Stats()
	fmt.Printf("compiled %d patterns -> %d states x %d symbols, %d table bytes in %s\n",
		st.Patterns, st.States, st.Alphabet, st.TableBytes, elapsed.Round(time.Microsecond))
	fmt.Printf("%s: %d -> %d bytes (DENSE section added)\n", dest, len(data), len(upgraded))
}

func cmdUnpack(args []string) {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	out := fs.String("o", "", "pattern list output (default stdout)")
	fs.Parse(args)
	data := readSnapshot(*in)
	start := time.Now()
	dict, err := persist.Load(data)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, p := range dict.Patterns {
		bw.Write(p)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d patterns in %s (no preprocessing)\n",
		len(dict.Patterns), elapsed.Round(time.Microsecond))
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	asJSON := fs.Bool("json", false, "emit the Info struct as JSON")
	fs.Parse(args)
	data := readSnapshot(*in)
	info, err := persist.Inspect(data)
	if err != nil {
		log.Fatal(err)
	}
	printInfo(info, *asJSON)
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (required)")
	fs.Parse(args)
	data := readSnapshot(*in)
	start := time.Now()
	info, err := persist.Verify(data)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("ok: %d bytes, %d patterns, %d nodes, verified in %s\n",
		info.FileBytes, info.NumPatterns, info.NumNodes, time.Since(start).Round(time.Microsecond))
}

func printInfo(info *persist.Info, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(info); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("snapshot v%d, %d bytes\n", info.Version, info.FileBytes)
	fmt.Printf("  patterns: %d (%d bytes)\n", info.NumPatterns, info.PatternBytes)
	fmt.Printf("  tree:     %d nodes, %d leaves, %d weiner links\n",
		info.NumNodes, info.NumLeaves, info.WeinerCount)
	fmt.Printf("  options:  seed=%d windowL=%d anchor=%d naiveNCA=%v separator=%v\n",
		info.Seed, info.WindowL, info.Anchor, info.UseNaive, info.HasSeparator)
	fmt.Println("  sections:")
	for _, s := range info.Sections {
		fmt.Printf("    %-10s %8d bytes\n", s.Name, s.Bytes)
	}
	if info.Dense != nil {
		fmt.Printf("  dense:    %d states x %d symbols, %d patterns, %d table bytes\n",
			info.Dense.States, info.Dense.Alphabet, info.Dense.Patterns, info.Dense.TableBytes)
	}
}

func parseNCA(s string) core.NCAVariant {
	switch s {
	case "auto":
		return core.NCAAuto
	case "naive":
		return core.NCANaive
	case "veb":
		return core.NCAImproved
	}
	log.Fatalf("unknown -nca %q", s)
	panic("unreachable")
}

func parseAnchor(s string) core.AnchorStrategy {
	switch s {
	case "separator":
		return core.AnchorSeparator
	case "sa":
		return core.AnchorSA
	}
	log.Fatalf("unknown -anchor %q", s)
	panic("unreachable")
}

func readSnapshot(path string) []byte {
	if path == "" {
		log.Fatal("-in is required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return data
}

func readPatterns(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var patterns [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > 0 {
			patterns = append(patterns, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no patterns in %s", path)
	}
	return patterns, nil
}
