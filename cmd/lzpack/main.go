// Command lzpack compresses and uncompresses files with the paper's §4
// parallel LZ1 algorithm.
//
// Usage:
//
//	lzpack -c [-in file] [-out file] [-procs N] [-stats]    compress
//	lzpack -d [-in file] [-out file] [-mode jump|cc]        uncompress
//
// The container format is a small varint encoding of the token stream (see
// the encode/decode functions); it exists so the round trip is a real file
// round trip, not a claim about rivaling gzip's entropy coder.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/lz"
	"repro/internal/pram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lzpack: ")
	compress := flag.Bool("c", false, "compress")
	decompress := flag.Bool("d", false, "uncompress")
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	procs := flag.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
	mode := flag.String("mode", "jump", "uncompression forest resolution: jump or cc")
	stats := flag.Bool("stats", false, "print size/time/PRAM stats to stderr")
	flag.Parse()

	if *compress == *decompress {
		log.Fatal("exactly one of -c or -d is required")
	}
	in, err := readInput(*inPath)
	if err != nil {
		log.Fatal(err)
	}
	out, err := openOutput(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	w := bufio.NewWriter(out)
	defer w.Flush()

	m := pram.New(*procs)
	defer m.Close()
	start := time.Now()
	if *compress {
		c := lz.Compress(m, in)
		if err := lz.EncodeStream(w, c); err != nil {
			log.Fatal(err)
		}
		if *stats {
			wk, dp := m.Counters()
			fmt.Fprintf(os.Stderr, "in=%dB phrases=%d wall=%s work=%d depth=%d\n",
				len(in), len(c.Tokens), time.Since(start).Round(time.Microsecond), wk, dp)
		}
		return
	}
	c, err := lz.DecodeStream(in)
	if err != nil {
		log.Fatal(err)
	}
	um := lz.ByPointerJumping
	if *mode == "cc" {
		um = lz.ByConnectedComponents
	} else if *mode != "jump" {
		log.Fatalf("unknown -mode %q", *mode)
	}
	text, err := lz.Uncompress(m, c, um)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(text); err != nil {
		log.Fatal(err)
	}
	if *stats {
		wk, dp := m.Counters()
		fmt.Fprintf(os.Stderr, "out=%dB phrases=%d wall=%s work=%d depth=%d\n",
			len(text), len(c.Tokens), time.Since(start).Round(time.Microsecond), wk, dp)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func openOutput(path string) (io.WriteCloser, error) {
	if path == "" {
		return os.Stdout, nil
	}
	return os.Create(path)
}
