package repro

// One testing.B benchmark per experiment table of EXPERIMENTS.md. Each
// benchmark reports, beyond ns/op, the PRAM cost metrics the paper's
// theorems bound: pram_work/op and pram_depth (custom metrics). The full
// parameter sweeps live in cmd/benchtab; these benchmarks pin one
// representative configuration per claim so `go test -bench=.` regenerates
// every headline number.

import (
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/colorednca"
	"repro/internal/core"
	"repro/internal/eulertour"
	"repro/internal/fingerprint"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/suffixtree"
	"repro/internal/textgen"
)

const (
	benchTextN = 1 << 15
	benchDictK = 128
)

func benchDict(b *testing.B, variant core.NCAVariant) (*core.Dictionary, []byte) {
	b.Helper()
	gen := textgen.New(2024)
	patterns := gen.Dictionary(benchDictK, 4, 24, 4)
	dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1, NCA: variant})
	text := gen.Uniform(benchTextN, 4)
	return dict, text
}

func reportPRAM(b *testing.B, m *pram.Machine, unit int) {
	b.Helper()
	w, d := m.Counters()
	b.ReportMetric(float64(w)/float64(b.N)/float64(unit), "work/char")
	b.ReportMetric(float64(d)/float64(b.N), "depth/op")
}

// BenchmarkE1DictMatchText — Theorem 3.1 text processing: O(n) work.
func BenchmarkE1DictMatchText(b *testing.B) {
	dict, text := benchDict(b, core.NCAAuto)
	m := pram.NewSequential()
	b.SetBytes(benchTextN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.MatchText(m, text)
	}
	reportPRAM(b, m, benchTextN)
}

// BenchmarkE2DictPreprocess — Theorem 3.1 preprocessing: O(d) work.
func BenchmarkE2DictPreprocess(b *testing.B) {
	gen := textgen.New(2025)
	patterns := gen.Dictionary(benchDictK, 4, 24, 4)
	var d int
	for _, p := range patterns {
		d += len(p)
	}
	m := pram.NewSequential()
	b.SetBytes(int64(d))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Preprocess(m, patterns, core.Options{Seed: 1})
	}
	reportPRAM(b, m, d)
}

// BenchmarkE3Alphabet — Theorems 3.2/3.3: large-alphabet matching with the
// van Emde Boas colored-ancestor structure.
func BenchmarkE3Alphabet(b *testing.B) {
	gen := textgen.New(2026)
	patterns := gen.Dictionary(benchDictK, 4, 16, 64)
	dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1, NCA: core.NCAImproved})
	text := gen.Uniform(benchTextN, 64)
	m := pram.NewSequential()
	b.SetBytes(benchTextN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.MatchText(m, text)
	}
	reportPRAM(b, m, benchTextN)
}

// BenchmarkE4Baselines — §1.1 baseline: sequential Aho–Corasick on the same
// workload as E1 (compare wall clock and total ops with E1).
func BenchmarkE4Baselines(b *testing.B) {
	gen := textgen.New(2024)
	patterns := gen.Dictionary(benchDictK, 4, 24, 4)
	ac := ahocorasick.New(patterns)
	text := gen.Uniform(benchTextN, 4)
	b.SetBytes(benchTextN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Match(text)
	}
}

// BenchmarkE5Checker — §3.4: the Las Vegas checker on honest output.
func BenchmarkE5Checker(b *testing.B) {
	dict, text := benchDict(b, core.NCAAuto)
	matches := dict.MatchText(pram.NewSequential(), text)
	m := pram.NewSequential()
	b.SetBytes(benchTextN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !dict.Check(m, text, matches) {
			b.Fatal("checker rejected honest output")
		}
	}
	reportPRAM(b, m, benchTextN)
}

// BenchmarkE6NCA — §3.2: queries on the two nearest-colored-ancestor
// structures.
func BenchmarkE6NCA(b *testing.B) {
	m := pram.NewSequential()
	const n, colorsK = 1 << 14, 32
	parent := make([]int, n)
	parent[0] = -1
	gen := textgen.New(2027)
	noise := gen.Uniform(n, 250)
	for v := 1; v < n; v++ {
		parent[v] = int(noise[v]) % v
	}
	tree := eulertour.New(m, parent)
	tour := tree.Euler(m)
	var colors []colorednca.Colored
	for v := 0; v < n; v++ {
		colors = append(colors, colorednca.Colored{Node: v, Color: int32(v % colorsK)})
	}
	naive := colorednca.NewNaive(m, tree, colors)
	impr := colorednca.NewImproved(m, tree, tour, colors)
	b.Run("naive-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naive.Find(i%n, int32(i%colorsK))
		}
	})
	b.Run("veb-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			impr.Find(i%n, int32(i%colorsK))
		}
	})
}

// BenchmarkE7LZCompress — Theorem 4.2.
func BenchmarkE7LZCompress(b *testing.B) {
	text := textgen.New(2028).Repetitive(benchTextN, 64, 0.01)
	m := pram.NewSequential()
	b.SetBytes(benchTextN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lz.Compress(m, text)
	}
	reportPRAM(b, m, benchTextN)
}

// BenchmarkE8LZUncompress — Theorem 4.3, both forest-resolution modes.
func BenchmarkE8LZUncompress(b *testing.B) {
	text := textgen.New(2029).Repetitive(benchTextN, 64, 0.01)
	c := lz.Compress(pram.NewSequential(), text)
	for _, mode := range []struct {
		name string
		m    lz.UncompressMode
	}{{"jump", lz.ByPointerJumping}, {"conncomp", lz.ByConnectedComponents}} {
		b.Run(mode.name, func(b *testing.B) {
			m := pram.NewSequential()
			b.SetBytes(benchTextN)
			for i := 0; i < b.N; i++ {
				if _, err := lz.Uncompress(m, c, mode.m); err != nil {
					b.Fatal(err)
				}
			}
			reportPRAM(b, m, benchTextN)
		})
	}
}

// BenchmarkE9StaticParse — Theorem 5.3: optimal parse vs the BFS baseline.
func BenchmarkE9StaticParse(b *testing.B) {
	gen := textgen.New(2030)
	words := gen.PrefixClosedDictionary(120, 16, 4)
	dict := core.Preprocess(pram.NewSequential(), words, core.Options{Seed: 1})
	text := gen.DNA(benchTextN)
	maxLen := dict.PrefixLengths(pram.NewSequential(), text)
	for i := range maxLen {
		if maxLen[i] == 0 {
			maxLen[i] = 1
		}
	}
	b.Run("optimal", func(b *testing.B) {
		m := pram.NewSequential()
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			if _, err := staticdict.OptimalParse(m, benchTextN, maxLen); err != nil {
				b.Fatal(err)
			}
		}
		reportPRAM(b, m, benchTextN)
	})
	b.Run("bfs-baseline", func(b *testing.B) {
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			if _, err := staticdict.BFSParse(benchTextN, maxLen); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(staticdict.EdgeCount(maxLen))/benchTextN, "edges/char")
	})
}

// BenchmarkE10SuffixTree — Lemma 2.1 substitute.
func BenchmarkE10SuffixTree(b *testing.B) {
	text := textgen.New(2031).DNA(benchTextN)
	b.Run("sequential-dc3", func(b *testing.B) {
		m := pram.NewSequential()
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			suffixtree.Build(m, text)
		}
		reportPRAM(b, m, benchTextN)
	})
	b.Run("parallel-doubling", func(b *testing.B) {
		m := pram.New(2)
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			suffixtree.Build(m, text)
		}
		reportPRAM(b, m, benchTextN)
	})
}

// BenchmarkE11Fingerprint — Karp–Rabin table construction and substring
// comparisons.
func BenchmarkE11Fingerprint(b *testing.B) {
	text := textgen.Fibonacci(benchTextN)
	h := fingerprint.NewHasher(7, benchTextN)
	m := pram.NewSequential()
	tab := h.NewTable(m, text)
	b.Run("build", func(b *testing.B) {
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			h.NewTable(m, text)
		}
	})
	b.Run("compare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := 1 + i%64
			x := i % (benchTextN - 64)
			y := (i * 7) % (benchTextN - 64)
			_ = tab.Substring(x, x+l) == tab.Substring(y, y+l)
		}
	})
}

// BenchmarkE12PhraseCounts — §1.2: LZ1 vs LZ2 parse speed (phrase-count
// quality is in cmd/benchtab E12).
func BenchmarkE12PhraseCounts(b *testing.B) {
	text := textgen.New(2032).Markov(benchTextN, 8, 0.3)
	b.Run("lz1", func(b *testing.B) {
		m := pram.NewSequential()
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			lz.Compress(m, text)
		}
	})
	b.Run("lz2", func(b *testing.B) {
		b.SetBytes(benchTextN)
		for i := 0; i < b.N; i++ {
			lz.CompressLZ2(text)
		}
	})
}
