package suffixtree

import (
	"fmt"

	"repro/internal/eulertour"
	"repro/internal/lca"
)

// Snapshot is the serializable state of a Tree: the suffix array, LCP array
// and per-node topology tables. Everything else a Tree holds (the child CSR
// index, Euler tour, LCA index, rank array) is a deterministic function of
// these tables and is rebuilt by Restore with plain sequential loops — a
// snapshot load performs no PRAM work and charges nothing to any machine.
type Snapshot struct {
	NumNodes int32
	Root     int32
	SA       []int32
	LCP      []int32
	Parent   []int32
	StrDepth []int32
	Lo       []int32
	Hi       []int32
	LeafID   []int32
	LeafOf   []int32
	SufLink  []int32
}

// Export captures the tree's serializable state. The suffix-link array is
// included (computing it at restore time would need LCA queries anyway, and
// the dictionary preprocessing always materializes it); if it has not been
// built yet it is derived here with the same per-node rules SuffixLinks
// applies, sequentially.
func (t *Tree) Export() *Snapshot {
	sn := &Snapshot{
		NumNodes: int32(t.NumNodes),
		Root:     int32(t.Root),
		SA:       t.SA,
		LCP:      t.LCP,
		Parent:   make([]int32, t.NumNodes),
		StrDepth: t.StrDepth,
		Lo:       t.Lo,
		Hi:       t.Hi,
		LeafID:   t.LeafID,
		LeafOf:   t.LeafOf,
		SufLink:  t.sufLink,
	}
	for v, p := range t.Parent {
		sn.Parent[v] = int32(p)
	}
	if sn.SufLink == nil {
		sn.SufLink = t.sufLinksSequential()
	}
	return sn
}

// sufLinksSequential computes the suffix-link array with the same per-node
// rules as SuffixLinks, machine-free.
func (t *Tree) sufLinksSequential() []int32 {
	n1 := len(t.SA)
	links := make([]int32, t.NumNodes)
	for v := 0; v < t.NumNodes; v++ {
		switch {
		case v == t.Root:
			links[v] = -1
		case t.IsLeaf(v):
			i := t.LeafOf[v]
			if int(i) == n1-1 {
				links[v] = int32(t.Root)
			} else {
				links[v] = t.LeafID[i+1]
			}
		default:
			a := t.LeafID[t.SA[t.Lo[v]]+1]
			b := t.LeafID[t.SA[t.Hi[v]]+1]
			links[v] = int32(t.LCA.Query(int(a), int(b)))
		}
	}
	return links
}

// RestoreInts reconstructs a ready-to-query Tree from the original symbol
// string and a Snapshot, with zero PRAM work: every derived structure (rank,
// child CSR, Euler tour, LCA sparse table) is rebuilt by deterministic
// sequential loops that produce exactly what the parallel build produces.
//
// The snapshot is validated before any index-dependent structure is built:
// lengths must be mutually consistent, the suffix array must be a
// permutation, parents must form a single tree rooted at Root with strictly
// increasing string depth (which rules out cycles), and every stored node or
// position index must be in range. Invalid snapshots return an error and
// never panic — this is the backstop that makes the persist decoder safe on
// adversarial bytes.
func RestoreInts(syms []int32, sn *Snapshot) (*Tree, error) {
	if len(syms) == 0 {
		return nil, fmt.Errorf("suffixtree: restore: empty string")
	}
	n1 := len(syms) + 1
	numNodes := int(sn.NumNodes)
	if numNodes < 1 || numNodes > 2*n1 {
		return nil, fmt.Errorf("suffixtree: restore: node count %d out of range for %d leaves", numNodes, n1)
	}
	if len(sn.SA) != n1 || len(sn.LCP) != n1 || len(sn.LeafID) != n1 {
		return nil, fmt.Errorf("suffixtree: restore: leaf-array length mismatch")
	}
	if len(sn.Parent) != numNodes || len(sn.StrDepth) != numNodes || len(sn.Lo) != numNodes ||
		len(sn.Hi) != numNodes || len(sn.LeafOf) != numNodes || len(sn.SufLink) != numNodes {
		return nil, fmt.Errorf("suffixtree: restore: node-array length mismatch")
	}
	root := int(sn.Root)
	if root < 0 || root >= numNodes {
		return nil, fmt.Errorf("suffixtree: restore: root %d out of range", root)
	}

	t := &Tree{
		aug:      make([]int32, n1),
		SA:       sn.SA,
		LCP:      sn.LCP,
		NumNodes: numNodes,
		Root:     root,
		Parent:   make([]int, numNodes),
		StrDepth: sn.StrDepth,
		Lo:       sn.Lo,
		Hi:       sn.Hi,
		LeafID:   sn.LeafID,
		LeafOf:   sn.LeafOf,
		sufLink:  sn.SufLink,
	}
	for i, c := range syms {
		if c < 0 {
			return nil, fmt.Errorf("suffixtree: restore: negative symbol at %d", i)
		}
		t.aug[i] = c + 1
	}
	t.aug[n1-1] = 0

	// SA must be a permutation of [0, n1) — Rank and Witness index through it.
	t.Rank = make([]int32, n1)
	seen := make([]bool, n1)
	for r, p := range sn.SA {
		if p < 0 || int(p) >= n1 || seen[p] {
			return nil, fmt.Errorf("suffixtree: restore: SA is not a permutation (rank %d)", r)
		}
		seen[p] = true
		t.Rank[p] = int32(r)
	}
	roots := 0
	for v := 0; v < numNodes; v++ {
		p := int(sn.Parent[v])
		if p < -1 || p >= numNodes {
			return nil, fmt.Errorf("suffixtree: restore: parent of node %d out of range", v)
		}
		t.Parent[v] = p
		if p < 0 {
			roots++
			if v != root {
				return nil, fmt.Errorf("suffixtree: restore: parentless node %d is not the root", v)
			}
		} else if sn.StrDepth[p] >= sn.StrDepth[v] {
			// Strictly increasing depth along every root path is what makes
			// the parent pointers acyclic (and the DFS below terminate).
			return nil, fmt.Errorf("suffixtree: restore: string depth not increasing at node %d", v)
		}
		if sn.StrDepth[v] < 0 || int(sn.StrDepth[v]) > n1 {
			return nil, fmt.Errorf("suffixtree: restore: string depth of node %d out of range", v)
		}
		if sn.Lo[v] < 0 || sn.Lo[v] > sn.Hi[v] || int(sn.Hi[v]) >= n1 {
			return nil, fmt.Errorf("suffixtree: restore: SA interval of node %d invalid", v)
		}
		if sn.LeafOf[v] < -1 || int(sn.LeafOf[v]) >= n1 {
			return nil, fmt.Errorf("suffixtree: restore: leaf suffix of node %d out of range", v)
		}
		if sn.SufLink[v] < -1 || int(sn.SufLink[v]) >= numNodes {
			return nil, fmt.Errorf("suffixtree: restore: suffix link of node %d out of range", v)
		}
	}
	if roots != 1 {
		return nil, fmt.Errorf("suffixtree: restore: %d parentless nodes, want 1", roots)
	}
	for i, v := range sn.LeafID {
		if v < 0 || int(v) >= numNodes {
			return nil, fmt.Errorf("suffixtree: restore: leaf id of suffix %d out of range", i)
		}
	}

	t.Topo = eulertour.NewSequential(t.Parent)
	t.Tour = t.Topo.EulerSequential()
	t.LCA = lca.FromTourSequential(t.Tour)
	return t, nil
}
