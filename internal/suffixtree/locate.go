package suffixtree

// Pattern location queries over the suffix array — the classical
// application the tree exists for, used by the tools and examples.

// compareAt lexicographically compares pattern against the suffix starting
// at augmented position p: -1 if the suffix is smaller, 0 if the pattern is
// a prefix of the suffix, +1 if the suffix is larger.
func (t *Tree) compareAt(pattern []int32, p int32) int {
	n := int32(len(t.aug))
	for i := 0; i < len(pattern); i++ {
		if p+int32(i) >= n {
			return -1 // suffix exhausted: suffix < pattern
		}
		c := t.aug[p+int32(i)]
		pc := pattern[i] + 1 // pattern symbols are pre-shift
		if c < pc {
			return -1
		}
		if c > pc {
			return 1
		}
	}
	return 0
}

// SARange returns the suffix-array interval [lo, hi) of suffixes having
// the pattern (raw symbols, not augmented) as a prefix. O(m log n).
func (t *Tree) SARange(pattern []int32) (lo, hi int) {
	n1 := len(t.SA)
	lo, hi = 0, n1
	// Lower bound: first suffix >= pattern.
	l, r := 0, n1
	for l < r {
		mid := (l + r) / 2
		if t.compareAt(pattern, t.SA[mid]) < 0 {
			l = mid + 1
		} else {
			r = mid
		}
	}
	lo = l
	// Upper bound: first suffix that is > pattern and not prefixed by it.
	l, r = lo, n1
	for l < r {
		mid := (l + r) / 2
		if t.compareAt(pattern, t.SA[mid]) == 0 {
			l = mid + 1
		} else {
			r = mid
		}
	}
	return lo, l
}

// Locate returns the starting positions of all occurrences of the byte
// pattern in S, in increasing order. O(m log n + occ log occ).
func (t *Tree) Locate(pattern []byte) []int32 {
	if len(pattern) == 0 {
		return nil
	}
	syms := make([]int32, len(pattern))
	for i, c := range pattern {
		syms[i] = int32(c)
	}
	lo, hi := t.SARange(syms)
	out := make([]int32, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, t.SA[r])
	}
	// SA order is lexicographic; callers want text order.
	sortInt32(out)
	return out
}

// Count returns the number of occurrences of the byte pattern in S.
// O(m log n).
func (t *Tree) Count(pattern []byte) int {
	if len(pattern) == 0 {
		return 0
	}
	syms := make([]int32, len(pattern))
	for i, c := range pattern {
		syms[i] = int32(c)
	}
	lo, hi := t.SARange(syms)
	return hi - lo
}

// sortInt32 is an in-place pdq-free insertion/heap hybrid kept dependency-
// light (slices of occurrence lists are usually short).
func sortInt32(a []int32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	// Heapsort for larger lists.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
