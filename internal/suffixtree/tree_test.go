package suffixtree

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func augOf(s []byte) []int32 {
	a := make([]int32, len(s)+1)
	for i, c := range s {
		a[i] = int32(c) + 1
	}
	return a
}

func bruteLCPOf(a []int32, x, y int) int32 {
	var l int32
	for int(l)+x < len(a) && int(l)+y < len(a) && a[x+int(l)] == a[y+int(l)] {
		l++
	}
	return l
}

var testStrings = [][]byte{
	[]byte("a"),
	[]byte("aa"),
	[]byte("ab"),
	[]byte("aaaaaaaa"),
	[]byte("banana"),
	[]byte("mississippi"),
	[]byte("abcabcabcabc"),
	[]byte("abracadabra"),
	{0, 1, 0, 0, 1, 0, 1, 0},       // zero bytes are fine
	{255, 0, 255, 255, 0, 1, 2, 3}, // extreme byte values
}

func randomStrings(rng *rand.Rand) [][]byte {
	var out [][]byte
	for _, n := range []int{13, 50, 200, 700} {
		for _, sigma := range []int{1, 2, 4, 26} {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + rng.IntN(sigma))
			}
			out = append(out, s)
		}
	}
	return out
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)...)
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		m.SetGrain(41)
		for _, s := range all {
			a := augOf(s)
			want := naiveSA(a)
			got, _ := buildSA(m, a)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("procs=%d s=%q SA[%d]=%d want %d", procs, s, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLCPMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)...)
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, s := range all {
			a := augOf(s)
			sa, levels := buildSA(m, a)
			lcp := buildLCP(m, a, sa, levels)
			for r := 1; r < len(sa); r++ {
				want := bruteLCPOf(a, int(sa[r-1]), int(sa[r]))
				if lcp[r] != want {
					t.Fatalf("procs=%d s=%q lcp[%d]=%d want %d", procs, s, r, lcp[r], want)
				}
			}
		}
	}
}

// checkTree verifies the structural invariants of a suffix tree.
func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	n1 := tr.NumLeaves()
	if tr.StrDepth[tr.Root] != 0 || tr.Parent[tr.Root] != -1 {
		t.Fatal("bad root")
	}
	leafCount := 0
	for v := 0; v < tr.NumNodes; v++ {
		if tr.IsLeaf(v) {
			leafCount++
			if tr.Lo[v] != tr.Hi[v] {
				t.Fatalf("leaf %d has interval [%d,%d]", v, tr.Lo[v], tr.Hi[v])
			}
			if int(tr.StrDepth[v]) != n1-int(tr.LeafOf[v]) {
				t.Fatalf("leaf %d depth %d want %d", v, tr.StrDepth[v], n1-int(tr.LeafOf[v]))
			}
			if tr.LeafID[tr.LeafOf[v]] != int32(v) {
				t.Fatalf("LeafID inverse broken at %d", v)
			}
			continue
		}
		if v != tr.Root && tr.Topo.Degree(v) < 2 {
			t.Fatalf("internal node %d has %d children", v, tr.Topo.Degree(v))
		}
		// Interval = [min lcp boundary]: all pairs of adjacent suffixes
		// inside share >= StrDepth, boundaries share less.
		lo, hi, d := int(tr.Lo[v]), int(tr.Hi[v]), tr.StrDepth[v]
		minIn := int32(1 << 30)
		for r := lo + 1; r <= hi; r++ {
			if tr.LCP[r] < minIn {
				minIn = tr.LCP[r]
			}
		}
		if lo != hi && minIn != d {
			t.Fatalf("node %d: interval min LCP %d != depth %d", v, minIn, d)
		}
		if lo > 0 && tr.LCP[lo] >= d {
			t.Fatalf("node %d: left boundary LCP too large", v)
		}
		if hi+1 < n1 && tr.LCP[hi+1] >= d {
			t.Fatalf("node %d: right boundary LCP too large", v)
		}
	}
	if leafCount != n1 {
		t.Fatalf("leafCount = %d want %d", leafCount, n1)
	}
	// Parents: strictly smaller depth, enclosing interval.
	for v := 0; v < tr.NumNodes; v++ {
		if v == tr.Root {
			continue
		}
		p := tr.Parent[v]
		if tr.StrDepth[p] >= tr.StrDepth[v] {
			t.Fatalf("node %d depth %d parent %d depth %d", v, tr.StrDepth[v], p, tr.StrDepth[p])
		}
		if tr.Lo[p] > tr.Lo[v] || tr.Hi[p] < tr.Hi[v] {
			t.Fatalf("parent interval does not contain child")
		}
	}
	// Children of every node ordered by first character, all distinct.
	for v := 0; v < tr.NumNodes; v++ {
		ch := tr.Topo.Children(v)
		for i := 1; i < len(ch); i++ {
			if tr.FirstChar(int(ch[i-1])) >= tr.FirstChar(int(ch[i])) {
				t.Fatalf("node %d children not strictly ordered by first char", v)
			}
		}
	}
}

func TestTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)...)
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, s := range all {
			tr := Build(m, s)
			checkTree(t, tr)
		}
	}
}

func TestParallelAndSequentialTreesAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 98))
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)...)
	seq := pram.NewSequential()
	par := pram.New(4)
	for _, s := range all {
		a := Build(seq, s)
		b := Build(par, s)
		if a.NumNodes != b.NumNodes {
			t.Fatalf("s=%q node counts %d vs %d", s, a.NumNodes, b.NumNodes)
		}
		// Node identity is (Lo, Hi, StrDepth); both builds order nodes by
		// their representative position, so arrays must match exactly.
		for v := 0; v < a.NumNodes; v++ {
			if a.Lo[v] != b.Lo[v] || a.Hi[v] != b.Hi[v] || a.StrDepth[v] != b.StrDepth[v] ||
				a.Parent[v] != b.Parent[v] || a.LeafOf[v] != b.LeafOf[v] {
				t.Fatalf("s=%q node %d differs between builds", s, v)
			}
		}
	}
}

func TestLCPSuffixesAndEquality(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	m := pram.New(4)
	for _, s := range [][]byte{[]byte("banana"), []byte("abcabcabcabc"), randomStrings(rng)[5]} {
		tr := Build(m, s)
		a := augOf(s)
		n1 := len(a)
		for x := 0; x < n1; x++ {
			for y := 0; y < n1; y++ {
				want := bruteLCPOf(a, x, y)
				if got := tr.LCPSuffixes(int32(x), int32(y)); got != want {
					t.Fatalf("s=%q LCP(%d,%d)=%d want %d", s, x, y, got, want)
				}
				for _, l := range []int32{0, 1, want, want + 1} {
					if int(l) > n1-max(x, y) {
						continue
					}
					if got := tr.EqualSubstrings(int32(x), int32(y), l); got != (want >= l) {
						t.Fatalf("s=%q Equal(%d,%d,%d)=%v", s, x, y, l, got)
					}
				}
			}
		}
	}
}

func TestSuffixLinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	m := pram.New(4)
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)[:8]...)
	for _, s := range all {
		tr := Build(m, s)
		links := tr.SuffixLinks(m)
		for v := 0; v < tr.NumNodes; v++ {
			if v == tr.Root {
				if links[v] != -1 {
					t.Fatalf("root link = %d", links[v])
				}
				continue
			}
			w := int(links[v])
			// Label of v is aug[wit : wit+d]; link target label must be
			// aug[wit+1 : wit+d].
			wit, d := tr.Witness(v), tr.StrDepth[v]
			if tr.IsLeaf(v) && int(tr.LeafOf[v]) == tr.NumLeaves()-1 {
				if w != tr.Root {
					t.Fatalf("sentinel leaf link = %d", w)
				}
				continue
			}
			if tr.StrDepth[w] != d-1 {
				t.Fatalf("s=%q node %d (depth %d) links to %d (depth %d)",
					s, v, d, w, tr.StrDepth[w])
			}
			if d > 1 {
				lw := tr.Witness(w)
				if tr.LCPSuffixes(wit+1, lw) < d-1 {
					t.Fatalf("s=%q link label mismatch at node %d", s, v)
				}
			}
		}
	}
}

func TestChildByChar(t *testing.T) {
	m := pram.New(4)
	tr := Build(m, []byte("mississippi"))
	for v := 0; v < tr.NumNodes; v++ {
		ch := tr.Topo.Children(v)
		seen := map[int32]int{}
		for _, c := range ch {
			seen[tr.FirstChar(int(c))] = int(c)
		}
		for c := int32(0); c < 258; c++ {
			want, ok := seen[c]
			got := tr.ChildByChar(v, c)
			if ok && got != want {
				t.Fatalf("node %d char %d: got %d want %d", v, c, got, want)
			}
			if !ok && got != -1 {
				t.Fatalf("node %d char %d: got %d want -1", v, c, got)
			}
		}
	}
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build(empty) did not panic")
		}
	}()
	Build(pram.NewSequential(), nil)
}

func TestBananaKnownStructure(t *testing.T) {
	m := pram.NewSequential()
	tr := Build(m, []byte("banana"))
	// "banana$": 7 leaves; internal nodes: root, "a", "na", "ana", "anana"?
	// Known: suffix tree of banana$ has 4 internal nodes incl root:
	// root, "a", "ana", "na".
	if tr.NumLeaves() != 7 {
		t.Fatalf("leaves = %d", tr.NumLeaves())
	}
	internal := tr.NumNodes - tr.NumLeaves()
	if internal != 4 {
		t.Fatalf("internal nodes = %d want 4", internal)
	}
	// Check the depths of the internal nodes are {0,1,2,3}.
	var depths []int32
	for v := 0; v < tr.NumNodes; v++ {
		if !tr.IsLeaf(v) {
			depths = append(depths, tr.StrDepth[v])
		}
	}
	want := map[int32]bool{0: true, 1: true, 2: true, 3: true}
	for _, d := range depths {
		if !want[d] {
			t.Fatalf("unexpected internal depth %d", d)
		}
		delete(want, d)
	}
	if len(want) != 0 {
		t.Fatalf("missing internal depths: %v", want)
	}
}
