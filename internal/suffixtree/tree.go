package suffixtree

import (
	"repro/internal/ansv"
	"repro/internal/eulertour"
	"repro/internal/lca"
	"repro/internal/par"
	"repro/internal/pram"
)

// Tree is the suffix tree of S plus a unique terminal sentinel. Suffixes are
// indexed 0..len(S): index len(S) is the sentinel-only suffix. Symbols are
// remapped internally to 1..256 with 0 reserved for the sentinel, so every
// byte string (including ones containing 0x00) is handled.
type Tree struct {
	S   []byte
	aug []int32 // remapped string + sentinel, length len(S)+1

	SA   []int32 // suffix array of aug
	Rank []int32 // inverse of SA
	LCP  []int32 // LCP[r] = lcp(SA[r-1], SA[r]); LCP[0] = 0

	levels [][]int32 // doubling rank tables (parallel builds only)

	// Per-node arrays. Node ids are dense; Root is the id of the root.
	NumNodes int
	Root     int
	Parent   []int   // -1 at root
	StrDepth []int32 // length of the path label
	Lo, Hi   []int32 // SA interval covered by the node (inclusive)
	LeafID   []int32 // suffix start -> leaf node id
	LeafOf   []int32 // node id -> suffix start, or -1 for internal nodes

	Topo *eulertour.Tree
	Tour *eulertour.Tour
	LCA  *lca.Index

	sufLink []int32 // built on demand by SuffixLinks
}

// Build constructs the suffix tree of a byte string. s must be non-empty.
// See the package comment for the cost profile of the parallel vs sequential
// machine.
func Build(m *pram.Machine, s []byte) *Tree {
	if len(s) == 0 {
		panic("suffixtree: empty string")
	}
	syms := make([]int32, len(s))
	m.ParallelFor(len(s), func(i int) { syms[i] = int32(s[i]) })
	t := BuildInts(m, syms)
	t.S = s
	return t
}

// BuildInts constructs the suffix tree of an int32 symbol string (symbols
// must be >= 0). This is what the dictionary matcher uses: pattern bytes map
// to 0..255 and the inter-pattern separator is symbol 256, so separators can
// never collide with text bytes.
func BuildInts(m *pram.Machine, syms []int32) *Tree {
	if len(syms) == 0 {
		panic("suffixtree: empty string")
	}
	n1 := len(syms) + 1
	t := &Tree{aug: make([]int32, n1)}
	m.ParallelFor(len(syms), func(i int) {
		if syms[i] < 0 {
			panic("suffixtree: negative symbol")
		}
		t.aug[i] = syms[i] + 1
	})
	t.aug[n1-1] = 0
	t.SA, t.levels = buildSA(m, t.aug)
	defer func() { t.levels = nil }() // only buildLCP needs the rank tables; free Θ(n log n) ints
	t.Rank = make([]int32, n1)
	m.ParallelFor(n1, func(r int) { t.Rank[t.SA[r]] = int32(r) })
	t.LCP = buildLCP(m, t.aug, t.SA, t.levels)
	t.buildTopology(m)
	t.Topo = eulertour.New(m, t.Parent)
	t.Tour = t.Topo.Euler(m)
	t.LCA = lca.FromTour(m, t.Tour)
	return t
}

// buildTopology derives the multiway tree from SA+LCP with the Cartesian
// construction over the interleaved sequence
//
//	B = leafLen(SA[0]), LCP[1], leafLen(SA[1]), LCP[2], ..., leafLen(SA[n1-1])
//
// using all-nearest-smaller-values for binary parents and pointer jumping to
// contract runs of equal LCP values into single multiway nodes.
func (t *Tree) buildTopology(m *pram.Machine) {
	n1 := len(t.SA)
	L := 2*n1 - 1
	b := make([]int64, L)
	m.ParallelFor(L, func(p int) {
		if p%2 == 0 {
			b[p] = int64(n1 - int(t.SA[p/2])) // leaf: suffix length
		} else {
			b[p] = int64(t.LCP[(p+1)/2])
		}
	})
	leftLE := ansv.LeftSmallerOrEqual(m, b)
	leftS := ansv.LeftSmaller(m, b)
	rightS := ansv.RightSmaller(m, b)

	binParent := make([]int, L)
	mergeUp := make([]int, L)
	m.ParallelFor(L, func(p int) {
		l, r := leftLE[p], rightS[p]
		switch {
		case l == -1 && r == L:
			binParent[p] = -1
		case l == -1:
			binParent[p] = r
		case r == L:
			binParent[p] = l
		case b[l] > b[r]:
			// The candidate with the larger key (value, position) is the
			// nearer ancestor; on equal values the right one wins because
			// its position is larger.
			binParent[p] = l
		default:
			binParent[p] = r
		}
		if bp := binParent[p]; bp != -1 && b[bp] == b[p] {
			mergeUp[p] = bp // equal value: same multiway node
		} else {
			mergeUp[p] = p
		}
	})
	rep := par.PointerJumpRoots(m, mergeUp)

	reps := par.Pack(m, L, func(p int) bool { return rep[p] == p })
	numNodes := len(reps)
	posToID := make([]int32, L)
	m.ParallelFor(numNodes, func(i int) { posToID[reps[i]] = int32(i) })

	t.NumNodes = numNodes
	t.Parent = make([]int, numNodes)
	t.StrDepth = make([]int32, numNodes)
	t.Lo = make([]int32, numNodes)
	t.Hi = make([]int32, numNodes)
	t.LeafID = make([]int32, n1)
	t.LeafOf = make([]int32, numNodes)
	rootCell := pram.NewCellsFilled(1, -1)
	m.ParallelFor(numNodes, func(i int) {
		p := reps[i]
		t.StrDepth[i] = int32(b[p])
		if bp := binParent[p]; bp == -1 {
			t.Parent[i] = -1
			rootCell.Write(0, int64(i))
		} else {
			t.Parent[i] = int(posToID[rep[bp]])
		}
		lo, hi := leftS[p], rightS[p]
		t.Lo[i] = int32((lo + 1) / 2)
		t.Hi[i] = int32((hi - 1) / 2)
		if p%2 == 0 {
			t.LeafOf[i] = t.SA[p/2]
			t.LeafID[t.SA[p/2]] = int32(i)
		} else {
			t.LeafOf[i] = -1
		}
	})
	t.Root = int(rootCell.Read(0))
	if t.Root < 0 {
		panic("suffixtree: no root")
	}
}

// NumLeaves returns the number of leaves (len(S)+1, including the sentinel
// suffix).
func (t *Tree) NumLeaves() int { return len(t.SA) }

// IsLeaf reports whether node v is a leaf.
func (t *Tree) IsLeaf(v int) bool { return t.LeafOf[v] >= 0 }

// Witness returns a suffix start position whose path passes through v, i.e.
// the path label of v equals aug[Witness(v) : Witness(v)+StrDepth[v]].
func (t *Tree) Witness(v int) int32 { return t.SA[t.Lo[v]] }

// AugAt returns the remapped symbol at augmented-string position p (0 is
// the sentinel; bytes map to 1..256).
func (t *Tree) AugAt(p int32) int32 { return t.aug[p] }

// AugLen returns len(S)+1.
func (t *Tree) AugLen() int { return len(t.aug) }

// FirstChar returns the first symbol (remapped) of the edge entering v.
// v must not be the root.
func (t *Tree) FirstChar(v int) int32 {
	p := t.Parent[v]
	return t.aug[int(t.Witness(v))+int(t.StrDepth[p])]
}

// ChildByChar returns the child of v whose edge starts with the remapped
// symbol c, or -1. Children are stored in lexicographic order, so this is a
// binary search: O(log sigma).
func (t *Tree) ChildByChar(v int, c int32) int {
	ch := t.Topo.Children(v)
	lo, hi := 0, len(ch)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		fc := t.FirstChar(int(ch[mid]))
		switch {
		case fc < c:
			lo = mid + 1
		case fc > c:
			hi = mid - 1
		default:
			return int(ch[mid])
		}
	}
	return -1
}

// LCPSuffixes returns the length of the longest common prefix of the
// suffixes starting at x and y (augmented-string positions, sentinel
// included). O(1) via LCA — this is the paper's Lemma 2.6.
func (t *Tree) LCPSuffixes(x, y int32) int32 {
	if x == y {
		return int32(len(t.aug)) - x
	}
	l := t.LCA.Query(int(t.LeafID[x]), int(t.LeafID[y]))
	return t.StrDepth[l]
}

// EqualSubstrings reports whether aug[x:x+l] == aug[y:y+l] (Lemma 2.6's
// string equality query), deterministically and in O(1).
func (t *Tree) EqualSubstrings(x, y, l int32) bool {
	if x == y {
		return true
	}
	if int(x)+int(l) > len(t.aug) || int(y)+int(l) > len(t.aug) {
		return false
	}
	return t.LCPSuffixes(x, y) >= l
}

// SuffixLinks computes (once) and returns the suffix-link array: for a node
// v with path label c·w, sufLink[v] is the node with path label w. The root
// maps to -1; the sentinel leaf maps to the root. Internal links are found
// with two LCA queries (O(1) each); leaf links are LeafID[i+1].
func (t *Tree) SuffixLinks(m *pram.Machine) []int32 {
	if t.sufLink != nil {
		return t.sufLink
	}
	n1 := len(t.SA)
	links := make([]int32, t.NumNodes)
	m.ParallelFor(t.NumNodes, func(v int) {
		switch {
		case v == t.Root:
			links[v] = -1
		case t.IsLeaf(v):
			i := t.LeafOf[v]
			if int(i) == n1-1 {
				links[v] = int32(t.Root) // sentinel leaf: suffix link to empty
			} else {
				links[v] = t.LeafID[i+1]
			}
		default:
			a := t.LeafID[t.SA[t.Lo[v]]+1]
			b := t.LeafID[t.SA[t.Hi[v]]+1]
			links[v] = int32(t.LCA.Query(int(a), int(b)))
		}
	})
	t.sufLink = links
	return links
}
