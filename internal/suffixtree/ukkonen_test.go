package suffixtree

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// Ukkonen must agree with DC3 and prefix doubling on SA and LCP exactly.
func TestUkkonenAgainstOtherBuilders(t *testing.T) {
	rng := rand.New(rand.NewPCG(251, 252))
	all := append(append([][]byte{}, testStrings...), randomStrings(rng)...)
	m := pram.NewSequential()
	for _, s := range all {
		a := augOf(s)
		wantSA, _ := buildSA(m, a)
		wantLCP := buildLCP(m, a, wantSA, nil)
		gotSA, gotLCP := ukkonenSA(a)
		if len(gotSA) != len(wantSA) {
			t.Fatalf("s=%q SA length %d want %d", s, len(gotSA), len(wantSA))
		}
		for r := range wantSA {
			if gotSA[r] != wantSA[r] {
				t.Fatalf("s=%q SA[%d]=%d want %d", s, r, gotSA[r], wantSA[r])
			}
			if gotLCP[r] != wantLCP[r] {
				t.Fatalf("s=%q LCP[%d]=%d want %d", s, r, gotLCP[r], wantLCP[r])
			}
		}
	}
}

func TestUkkonenLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(253, 254))
	m := pram.NewSequential()
	for _, sigma := range []int{1, 2, 4, 200} {
		s := make([]byte, 5000)
		for i := range s {
			s[i] = byte(rng.IntN(sigma))
		}
		a := augOf(s)
		wantSA, _ := buildSA(m, a)
		gotSA, _ := ukkonenSA(a)
		for r := range wantSA {
			if gotSA[r] != wantSA[r] {
				t.Fatalf("sigma=%d SA[%d]=%d want %d", sigma, r, gotSA[r], wantSA[r])
			}
		}
	}
}

func BenchmarkBuilders(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 1 << 16
	s := make([]byte, n)
	for i := range s {
		s[i] = byte('a' + rng.IntN(4))
	}
	a := augOf(s)
	b.Run("dc3", func(b *testing.B) {
		m := pram.NewSequential()
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			dc3(m, a)
		}
	})
	b.Run("ukkonen", func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			ukkonenSA(a)
		}
	})
}
