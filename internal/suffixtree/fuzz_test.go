package suffixtree

import (
	"testing"

	"repro/internal/pram"
)

// FuzzBuildInvariants: any non-empty byte string must yield a suffix tree
// satisfying the structural invariants, on both machine kinds, with
// agreeing topologies.
func FuzzBuildInvariants(f *testing.F) {
	f.Add([]byte("banana"))
	f.Add([]byte("aaaa"))
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255})
	f.Add([]byte("abcabcabc"))
	seq := pram.NewSequential()
	par := pram.New(2)
	f.Fuzz(func(t *testing.T, s []byte) {
		if len(s) == 0 || len(s) > 1<<10 {
			return
		}
		a := Build(seq, s)
		b := Build(par, s)
		if a.NumNodes != b.NumNodes {
			t.Fatalf("node counts differ: %d vs %d", a.NumNodes, b.NumNodes)
		}
		n1 := a.NumLeaves()
		leaves := 0
		for v := 0; v < a.NumNodes; v++ {
			if a.Lo[v] != b.Lo[v] || a.Hi[v] != b.Hi[v] || a.StrDepth[v] != b.StrDepth[v] {
				t.Fatalf("node %d differs between machines", v)
			}
			if a.IsLeaf(v) {
				leaves++
				continue
			}
			if v != a.Root && a.Topo.Degree(v) < 2 {
				t.Fatalf("unary internal node %d", v)
			}
			if a.Parent[v] >= 0 && a.StrDepth[a.Parent[v]] >= a.StrDepth[v] {
				t.Fatalf("non-increasing depth at %d", v)
			}
		}
		if leaves != n1 {
			t.Fatalf("%d leaves, want %d", leaves, n1)
		}
		// Suffix links of the parallel build must verify against LCP.
		links := b.SuffixLinks(par)
		for v := 0; v < b.NumNodes; v++ {
			if v == b.Root || (b.IsLeaf(v) && int(b.LeafOf[v]) == n1-1) {
				continue
			}
			w := links[v]
			if w < 0 || b.StrDepth[w] != b.StrDepth[v]-1 {
				t.Fatalf("bad suffix link at %d", v)
			}
		}
	})
}
