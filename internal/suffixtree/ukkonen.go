package suffixtree

// Ukkonen's online suffix tree construction — a third, independent
// algorithm family (besides DC3 and prefix doubling) used to cross-
// validate the suffix array and LCP construction, and available as a fast
// sequential builder. It constructs the implicit suffix tree of the
// sentinel-terminated string with amortized O(n) node operations (hash-map
// children, so O(n) expected for unbounded alphabets), then reads the
// suffix array and LCP array off a lexicographic depth-first traversal.

type ukkNode struct {
	start, end int32 // edge label into this node: aug[start:end), end == -1 means "open"
	slink      int32
	children   map[int32]int32
}

type ukkonen struct {
	aug   []int32
	nodes []ukkNode
	// active point
	aNode   int32
	aEdge   int32 // index into aug of the active edge's first symbol
	aLen    int32
	remain  int32
	needSL  int32 // node awaiting a suffix link this phase
	leafEnd int32
}

func (u *ukkonen) edgeLen(v int32) int32 {
	if u.nodes[v].end == -1 {
		return u.leafEnd + 1 - u.nodes[v].start
	}
	return u.nodes[v].end - u.nodes[v].start
}

func (u *ukkonen) newNode(start, end int32) int32 {
	u.nodes = append(u.nodes, ukkNode{start: start, end: end, children: nil})
	return int32(len(u.nodes) - 1)
}

func (u *ukkonen) child(v, c int32) (int32, bool) {
	if u.nodes[v].children == nil {
		return 0, false
	}
	w, ok := u.nodes[v].children[c]
	return w, ok
}

func (u *ukkonen) setChild(v, c, w int32) {
	if u.nodes[v].children == nil {
		u.nodes[v].children = make(map[int32]int32, 2)
	}
	u.nodes[v].children[c] = w
}

func (u *ukkonen) addSuffixLink(v int32) {
	if u.needSL > 0 {
		u.nodes[u.needSL].slink = v
	}
	u.needSL = v
}

// extend runs one phase of Ukkonen's algorithm for position pos.
func (u *ukkonen) extend(pos int32) {
	u.leafEnd = pos
	u.remain++
	u.needSL = 0
	for u.remain > 0 {
		if u.aLen == 0 {
			u.aEdge = pos
		}
		c := u.aug[u.aEdge]
		next, ok := u.child(u.aNode, c)
		if !ok {
			// Rule 2: new leaf off the active node.
			leaf := u.newNode(pos, -1)
			u.setChild(u.aNode, c, leaf)
			u.addSuffixLink(u.aNode)
		} else {
			el := u.edgeLen(next)
			if u.aLen >= el {
				// Walk down (skip/count).
				u.aEdge += el
				u.aLen -= el
				u.aNode = next
				continue
			}
			if u.aug[u.nodes[next].start+u.aLen] == u.aug[pos] {
				// Rule 3: already present; stop this phase.
				u.aLen++
				u.addSuffixLink(u.aNode)
				break
			}
			// Rule 2 with split.
			split := u.newNode(u.nodes[next].start, u.nodes[next].start+u.aLen)
			u.setChild(u.aNode, c, split)
			leaf := u.newNode(pos, -1)
			u.setChild(split, u.aug[pos], leaf)
			u.nodes[next].start += u.aLen
			u.setChild(split, u.aug[u.nodes[next].start], next)
			u.addSuffixLink(split)
		}
		u.remain--
		if u.aNode == 0 && u.aLen > 0 {
			u.aLen--
			u.aEdge = pos - u.remain + 1
		} else if u.aNode != 0 {
			u.aNode = u.nodes[u.aNode].slink
		}
	}
}

// ukkonenSA builds the suffix array and LCP array of aug (which must end
// with a unique smallest sentinel) via Ukkonen's construction plus a
// lexicographic DFS.
func ukkonenSA(aug []int32) (sa, lcp []int32) {
	u := &ukkonen{aug: aug}
	u.newNode(0, 0) // root
	for pos := range aug {
		u.extend(int32(pos))
	}
	n := int32(len(aug))
	sa = make([]int32, 0, n)
	lcp = make([]int32, 0, n)
	// Iterative DFS with children in symbol order; track string depth and
	// the pending LCP value (depth of the node where the previous branch
	// happened).
	type frame struct {
		node  int32
		depth int32 // string depth of node
		kidIx int
		kids  []int32 // child symbols, sorted
	}
	sortedKids := func(v int32) []int32 {
		ch := u.nodes[v].children
		out := make([]int32, 0, len(ch))
		for c := range ch {
			out = append(out, c)
		}
		sortInt32(out)
		return out
	}
	stack := []frame{{node: 0, depth: 0, kids: sortedKids(0)}}
	pending := int32(0)
	first := true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.kidIx >= len(f.kids) {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				if pending > top.depth {
					pending = top.depth
				}
			}
			continue
		}
		c := f.kids[f.kidIx]
		f.kidIx++
		v := u.nodes[f.node].children[c]
		d := f.depth + u.edgeLen(v)
		if u.nodes[v].children == nil {
			// Leaf: suffix start = n - d.
			sa = append(sa, n-d)
			if first {
				lcp = append(lcp, 0)
				first = false
			} else {
				lcp = append(lcp, pending)
			}
			pending = f.depth
			continue
		}
		// Internal node: the next leaf's LCP is bounded by this depth only
		// through the stack bookkeeping above; descending does not raise
		// pending beyond the branch point already recorded.
		stack = append(stack, frame{node: v, depth: d, kids: sortedKids(v)})
	}
	return sa, lcp
}
