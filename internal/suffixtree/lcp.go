package suffixtree

import "repro/internal/pram"

// buildLCP returns the LCP array: lcp[r] = |longest common prefix of the
// suffixes SA[r-1] and SA[r]|, with lcp[0] = 0.
//
// Parallel machines compute every entry independently from the doubling
// rank tables (deterministic, O(log n) per entry, so O(n log n) work at
// O(log n) depth). A sequential machine uses Kasai's O(n) algorithm. The
// two paths agree exactly; tests assert it.
func buildLCP(m *pram.Machine, a []int32, sa []int32, levels [][]int32) []int32 {
	n := len(sa)
	lcp := make([]int32, n)
	if n <= 1 {
		return lcp
	}
	if levels == nil {
		m.Account(int64(2*n), int64(2*n))
		kasai(a, sa, lcp)
		return lcp
	}
	m.ParallelForCost(n-1, int64(len(levels)), func(idx int) {
		r := idx + 1
		lcp[r] = lcpByLevels(a, levels, int(sa[r-1]), int(sa[r]))
	})
	return lcp
}

// lcpByLevels computes the LCP of the suffixes at positions x and y using
// the doubling rank tables: equal ranks at level k certify 2^k equal
// leading characters (the unique terminal sentinel guarantees no false
// certificates near the string end).
func lcpByLevels(a []int32, levels [][]int32, x, y int) int32 {
	if x == y {
		return int32(len(a) - x)
	}
	n := len(a)
	var l int32
	for k := len(levels) - 1; k >= 0; k-- {
		xi, yi := x+int(l), y+int(l)
		if xi < n && yi < n && levels[k][xi] == levels[k][yi] {
			l += 1 << k
		}
	}
	return l
}

// kasai is the classical linear-time LCP construction.
func kasai(a []int32, sa []int32, lcp []int32) {
	n := len(sa)
	rank := make([]int32, n)
	for r, p := range sa {
		rank[p] = int32(r)
	}
	var h int32
	for i := 0; i < n; i++ {
		r := rank[i]
		if r == 0 {
			h = 0
			continue
		}
		j := int(sa[r-1])
		for i+int(h) < n && j+int(h) < n && a[i+int(h)] == a[j+int(h)] {
			h++
		}
		lcp[r] = h
		if h > 0 {
			h--
		}
	}
}
