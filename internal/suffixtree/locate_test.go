package suffixtree

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func bruteLocate(text, pattern []byte) []int32 {
	var out []int32
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestLocateAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	m := pram.New(4)
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.IntN(300)
		sigma := 2 + rng.IntN(3)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.IntN(sigma))
		}
		tr := Build(m, text)
		for q := 0; q < 50; q++ {
			// Mix of planted substrings and random patterns.
			var pattern []byte
			if q%2 == 0 && n > 4 {
				s := rng.IntN(n - 3)
				pattern = text[s : s+1+rng.IntN(3)]
			} else {
				pattern = make([]byte, 1+rng.IntN(5))
				for i := range pattern {
					pattern[i] = byte('a' + rng.IntN(sigma))
				}
			}
			want := bruteLocate(text, pattern)
			got := tr.Locate(pattern)
			if len(got) != len(want) {
				t.Fatalf("trial %d pattern %q: %d occurrences want %d", trial, pattern, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d pattern %q: occ[%d]=%d want %d", trial, pattern, i, got[i], want[i])
				}
			}
			if tr.Count(pattern) != len(want) {
				t.Fatalf("count mismatch for %q", pattern)
			}
		}
	}
}

func TestLocateEdgeCases(t *testing.T) {
	m := pram.New(4)
	tr := Build(m, []byte("banana"))
	if got := tr.Locate(nil); got != nil {
		t.Fatal("empty pattern")
	}
	if tr.Count([]byte("z")) != 0 {
		t.Fatal("absent pattern counted")
	}
	if tr.Count([]byte("banana")) != 1 {
		t.Fatal("full-text pattern")
	}
	if tr.Count([]byte("bananas")) != 0 {
		t.Fatal("overlong pattern")
	}
	got := tr.Locate([]byte("ana"))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ana at %v", got)
	}
	if tr.Count([]byte("a")) != 3 {
		t.Fatalf("a count = %d", tr.Count([]byte("a")))
	}
}

func TestLocateManyOccurrences(t *testing.T) {
	m := pram.New(4)
	text := bytes.Repeat([]byte("ab"), 200)
	tr := Build(m, text)
	got := tr.Locate([]byte("ab"))
	if len(got) != 200 {
		t.Fatalf("%d occurrences", len(got))
	}
	for i, p := range got {
		if p != int32(2*i) {
			t.Fatalf("occ[%d]=%d (sorted order broken)", i, p)
		}
	}
}
