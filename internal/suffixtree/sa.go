// Package suffixtree builds suffix trees and answers the string queries the
// paper relies on (Lemmas 2.1 and 2.6): suffix links, O(1)
// longest-common-prefix queries between arbitrary suffixes, and descent by
// character.
//
// The paper's Lemma 2.1 is the Farach–Muthukrishnan randomized O(n)-work,
// O(log n)-time suffix tree construction [11]. As documented in DESIGN.md §4
// we substitute the pipeline
//
//	suffix array (parallel prefix doubling / sequential DC3)
//	→ LCP array (deterministic doubling ranks / sequential Kasai)
//	→ tree topology (Cartesian construction via all-nearest-smaller-values)
//	→ suffix links (O(1) each, via LCA)
//
// which exposes the identical abstract interface. On a parallel machine the
// construction costs O(n log n) work at O(log^2 n) depth; on a sequential
// machine it is the classic linear-time route (DC3 + Kasai + stack).
package suffixtree

import (
	"sort"

	"repro/internal/par"
	"repro/internal/pram"
)

// buildSA returns the suffix array of the int32 string a (values >= 0; the
// caller appends a unique smallest sentinel 0 at the end) and, on the
// parallel path, the doubling rank tables used for deterministic LCP
// computation. rankLevels[k][i] is the rank of suffix i by its first 2^k
// characters (ties share ranks).
func buildSA(m *pram.Machine, a []int32) (sa []int32, rankLevels [][]int32) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	if m.Sequential() {
		return dc3(m, a), nil
	}
	return doublingSA(m, a)
}

// doublingSA is Manber–Myers prefix doubling with parallel radix sorts:
// O(log n) rounds, each a stable two-key sort plus a rank pass. Work
// O(n log n), depth O(log^2 n).
func doublingSA(m *pram.Machine, a []int32) ([]int32, [][]int32) {
	n := len(a)
	rank := make([]int32, n)
	maxSym := int64(0)
	for _, c := range a { // cheap sequential max; charged below
		if int64(c) > maxSym {
			maxSym = int64(c)
		}
	}
	m.Account(int64(n), 1)
	// Round 0: rank by single symbol.
	k1 := make([]int64, n)
	m.ParallelFor(n, func(i int) { k1[i] = int64(a[i]) })
	perm := par.SortPerm(m, k1, maxSym)
	assignRanks(m, perm, rank, func(x, y int) bool { return a[x] == a[y] })
	levels := [][]int32{append([]int32(nil), rank...)}

	k2 := make([]int64, n)
	for width := 1; width < n; width *= 2 {
		w := width
		m.ParallelFor(n, func(i int) {
			k1[i] = int64(rank[i])
			if i+w < n {
				k2[i] = int64(rank[i+w]) + 1
			} else {
				k2[i] = 0
			}
		})
		perm = par.SortByPair(m, k1, k2, int64(n))
		newRank := make([]int32, n)
		assignRanks(m, perm, newRank, func(x, y int) bool {
			return k1[x] == k1[y] && k2[x] == k2[y]
		})
		copy(rank, newRank)
		levels = append(levels, append([]int32(nil), rank...))
		if int(rank[perm[n-1]]) == n-1 {
			break // all ranks distinct
		}
	}
	sa := make([]int32, n)
	m.ParallelFor(n, func(i int) { sa[rank[i]] = int32(i) })
	return sa, levels
}

// assignRanks writes dense ranks into rank given the sorted order perm;
// same reports whether two suffix indices compare equal at this round.
func assignRanks(m *pram.Machine, perm []int, rank []int32, same func(x, y int) bool) {
	n := len(perm)
	isNew := make([]int64, n)
	m.ParallelFor(n, func(j int) {
		if j == 0 || !same(perm[j-1], perm[j]) {
			isNew[j] = 1
		}
	})
	par.InclusiveScan(m, isNew)
	m.ParallelFor(n, func(j int) { rank[perm[j]] = int32(isNew[j] - 1) })
}

// dc3 is the Kärkkäinen–Sanders skew algorithm: linear-time suffix array
// construction by recursion on the suffixes at positions i mod 3 != 0. This
// sequential path serves the one-processor machine and the test oracles.
func dc3(m *pram.Machine, a []int32) []int32 {
	n := len(a)
	m.Account(int64(n), int64(n)) // linear work per level; geometric total
	if n == 1 {
		return []int32{0}
	}
	if n == 2 {
		if less(a, 0, 1) {
			return []int32{0, 1}
		}
		return []int32{1, 0}
	}
	// Remap symbols to 1..K (0 reserved for padding).
	maxSym := int32(0)
	for _, c := range a {
		if c > maxSym {
			maxSym = c
		}
	}
	s := make([]int32, n+3)
	for i, c := range a {
		s[i] = c + 1
	}
	k := int(maxSym) + 1
	sa := make([]int32, n)
	skew(s, sa, n, k, m)
	return sa
}

func less(a []int32, i, j int) bool {
	for i < len(a) && j < len(a) {
		if a[i] != a[j] {
			return a[i] < a[j]
		}
		i++
		j++
	}
	return i == len(a)
}

// skew fills sa with the suffix array of s[0:n]; s must have 3 zero-padding
// entries past n and symbols in 1..k.
func skew(s, sa []int32, n, k int, m *pram.Machine) {
	n0, n1, n2 := (n+2)/3, (n+1)/3, n/3
	n02 := n0 + n2
	s12 := make([]int32, n02+3)
	sa12 := make([]int32, n02+3)
	// Positions i mod 3 != 0 (with one fake n1-position when n0 > n1).
	j := 0
	for i := 0; i < n+(n0-n1); i++ {
		if i%3 != 0 {
			s12[j] = int32(i)
			j++
		}
	}
	radixPass := func(from, to []int32, key func(int32) int32, cnt, bound int) {
		c := make([]int32, bound+1)
		for i := 0; i < cnt; i++ {
			c[key(from[i])]++
		}
		var sum int32
		for i := 0; i <= bound; i++ {
			t := c[i]
			c[i] = sum
			sum += t
		}
		for i := 0; i < cnt; i++ {
			to[c[key(from[i])]] = from[i]
			c[key(from[i])]++
		}
	}
	// Stable LSB radix sort of mod-1/2 triples.
	radixPass(s12, sa12, func(p int32) int32 { return s[p+2] }, n02, k)
	radixPass(sa12, s12, func(p int32) int32 { return s[p+1] }, n02, k)
	radixPass(s12, sa12, func(p int32) int32 { return s[p] }, n02, k)
	// Name triples.
	name := 0
	var c0, c1, c2 int32 = -1, -1, -1
	for i := 0; i < n02; i++ {
		p := sa12[i]
		if s[p] != c0 || s[p+1] != c1 || s[p+2] != c2 {
			name++
			c0, c1, c2 = s[p], s[p+1], s[p+2]
		}
		if p%3 == 1 {
			s12[p/3] = int32(name)
		} else {
			s12[p/3+int32(n0)] = int32(name)
		}
	}
	if name < n02 {
		skew(s12, sa12, n02, name, m)
		for i := 0; i < n02; i++ {
			s12[sa12[i]] = int32(i) + 1
		}
	} else {
		for i := 0; i < n02; i++ {
			sa12[s12[i]-1] = int32(i)
		}
	}
	// Sort mod-0 suffixes by (char, rank of following mod-1 suffix).
	s0 := make([]int32, n0)
	sa0 := make([]int32, n0)
	j = 0
	for i := 0; i < n02; i++ {
		if sa12[i] < int32(n0) {
			s0[j] = 3 * sa12[i]
			j++
		}
	}
	radixPass(s0, sa0, func(p int32) int32 { return s[p] }, n0, k)
	// Merge.
	getI := func(t int) int32 {
		if sa12[t] < int32(n0) {
			return sa12[t]*3 + 1
		}
		return (sa12[t]-int32(n0))*3 + 2
	}
	rank12 := func(p int32) int32 {
		if p%3 == 1 {
			return s12[p/3]
		}
		return s12[p/3+int32(n0)]
	}
	p, t, idx := 0, n0-n1, 0
	for ; t < n02; idx++ {
		i := getI(t)
		jj := sa0[p]
		var smaller bool
		if i%3 == 1 {
			smaller = leq2(s[i], rank12(i+1), s[jj], rank12(jj+1))
		} else {
			smaller = leq3(s[i], s[i+1], rank12(i+2), s[jj], s[jj+1], rank12(jj+2))
		}
		if smaller {
			sa[idx] = i
			t++
			if t == n02 {
				idx++
				for ; p < n0; p, idx = p+1, idx+1 {
					sa[idx] = sa0[p]
				}
			}
		} else {
			sa[idx] = jj
			p++
			if p == n0 {
				idx++
				for ; t < n02; t, idx = t+1, idx+1 {
					sa[idx] = getI(t)
				}
			}
		}
	}
}

func leq2(a1, a2, b1, b2 int32) bool {
	return a1 < b1 || (a1 == b1 && a2 <= b2)
}

func leq3(a1, a2, a3, b1, b2, b3 int32) bool {
	return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3))
}

// naiveSA is a comparison-sort oracle used by the tests only.
func naiveSA(a []int32) []int32 {
	n := len(a)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(x, y int) bool { return less(a, int(sa[x]), int(sa[y])) })
	return sa
}
