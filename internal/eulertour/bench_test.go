package eulertour

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func BenchmarkEuler(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 1 << 15
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.IntN(v)
	}
	for _, procs := range []int{1, 2} {
		name := "seq-dfs"
		if procs > 1 {
			name = "par-listrank"
		}
		b.Run(name, func(b *testing.B) {
			m := pram.New(procs)
			tr := New(m, parent)
			b.SetBytes(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Euler(m)
			}
		})
	}
}
