// Package eulertour computes Euler tours of rooted trees and the standard
// quantities derived from them: depth, first/last visit positions, preorder
// numbers and subtree sizes. The parallel construction follows the classic
// recipe — orient the tree edges, link each directed edge to its tour
// successor, and list-rank the resulting linked list — which is exactly the
// "Euler tour technique" the paper invokes throughout (§2, §4.1).
package eulertour

import (
	"repro/internal/par"
	"repro/internal/pram"
)

// Tree is a rooted tree over nodes [0, n) given by parent pointers, with a
// child adjacency index in CSR form (children of a node appear in increasing
// node order).
type Tree struct {
	N      int
	Root   int
	Parent []int
	cstart []int32 // cstart[v]..cstart[v+1] indexes into childs
	childs []int32
}

// New builds the child index from parent pointers. parent[root] must be -1
// and there must be exactly one root. Work O(n) plus one radix sort.
func New(m *pram.Machine, parent []int) *Tree {
	n := len(parent)
	t := &Tree{N: n, Root: -1, Parent: parent}
	if n == 0 {
		return t
	}
	keys := make([]int64, n)
	root := pram.NewCellsFilled(1, -1)
	m.ParallelFor(n, func(v int) {
		if parent[v] < 0 {
			root.Write(0, int64(v))
			keys[v] = int64(n) // sort roots last, they are not children
		} else {
			keys[v] = int64(parent[v])
		}
	})
	t.Root = int(root.Read(0))
	if t.Root < 0 {
		panic("eulertour: no root")
	}
	perm := par.SortPerm(m, keys, int64(n))
	// perm lists nodes grouped by parent (stable → increasing node order
	// within a group); build CSR offsets.
	t.childs = make([]int32, n-1)
	t.cstart = make([]int32, n+1)
	cnt := make([]int64, n)
	// Count children per node with combining writes.
	ccells := pram.NewCells(n)
	m.ParallelFor(n, func(v int) {
		if parent[v] >= 0 {
			ccells.Add(parent[v], 1)
		}
	})
	m.ParallelFor(n, func(v int) { cnt[v] = ccells.Read(v) })
	par.ExclusiveScan(m, cnt)
	m.ParallelFor(n+1, func(v int) {
		if v < n {
			t.cstart[v] = int32(cnt[v])
		} else {
			t.cstart[v] = int32(n - 1)
		}
	})
	m.ParallelFor(n-1, func(j int) { t.childs[j] = int32(perm[j]) })
	return t
}

// NewSequential builds the child index with plain loops and no machine —
// the same CSR layout New produces (children grouped by parent, increasing
// node order within a group), with zero PRAM work charged. Snapshot decoding
// (internal/persist) uses it so restoring a dictionary is a pure table load.
func NewSequential(parent []int) *Tree {
	n := len(parent)
	t := &Tree{N: n, Root: -1, Parent: parent}
	if n == 0 {
		return t
	}
	cnt := make([]int32, n+1)
	for v, p := range parent {
		if p < 0 {
			t.Root = v
		} else {
			cnt[p+1]++
		}
	}
	if t.Root < 0 {
		panic("eulertour: no root")
	}
	t.cstart = make([]int32, n+1)
	for v := 0; v < n; v++ {
		t.cstart[v+1] = t.cstart[v] + cnt[v+1]
	}
	t.childs = make([]int32, n-1)
	next := make([]int32, n)
	copy(next, t.cstart[:n])
	for v := 0; v < n; v++ { // ascending v → increasing order within a group
		if p := parent[v]; p >= 0 {
			t.childs[next[p]] = int32(v)
			next[p]++
		}
	}
	return t
}

// Children returns the children of v in increasing node order. The returned
// slice aliases internal storage; do not modify.
func (t *Tree) Children(v int) []int32 {
	return t.childs[t.cstart[v]:t.cstart[v+1]]
}

// Degree returns the number of children of v.
func (t *Tree) Degree(v int) int { return int(t.cstart[v+1] - t.cstart[v]) }

// Tour holds an Euler tour and its derived arrays. All positions refer to
// the node-visit sequence Order, which has length 2n-1.
type Tour struct {
	Order      []int32 // node at each visit
	First      []int32 // first visit position of each node
	Last       []int32 // last visit position of each node
	Depth      []int32 // edge depth of each node (root = 0)
	VisitDepth []int64 // Depth[Order[i]] for RMQ-based LCA
	Pre        []int32 // preorder number of each node
	Size       []int32 // subtree size of each node
}

// Euler computes the tour. Parallel machines use edge-successor linking plus
// list ranking (O(n log n) work, O(log n) depth); a sequential machine uses
// an explicit-stack DFS (O(n) work) — the outputs are identical, which the
// tests assert.
func (t *Tree) Euler(m *pram.Machine) *Tour {
	if t.N == 0 {
		return &Tour{}
	}
	if t.N == 1 {
		return &Tour{
			Order:      []int32{int32(t.Root)},
			First:      []int32{0},
			Last:       []int32{0},
			Depth:      []int32{0},
			VisitDepth: []int64{0},
			Pre:        []int32{0},
			Size:       []int32{1},
		}
	}
	if m.Sequential() {
		return t.eulerSeq(m)
	}
	return t.eulerPar(m)
}

func (t *Tree) eulerSeq(m *pram.Machine) *Tour {
	m.Account(int64(4*t.N), int64(2*t.N)) // DFS: linear work, linear depth
	tour := t.eulerDFS()
	t.finishTour(m, tour)
	return tour
}

// EulerSequential computes the tour with the explicit-stack DFS and no
// machine: identical output to Euler on any machine (the tests assert the
// parallel and sequential constructions agree), zero PRAM work charged.
// Snapshot decoding (internal/persist) uses it.
func (t *Tree) EulerSequential() *Tour {
	if t.N == 0 {
		return &Tour{}
	}
	tour := t.eulerDFS()
	for i, v := range tour.Order {
		tour.VisitDepth[i] = int64(tour.Depth[v])
	}
	for v := 0; v < t.N; v++ {
		tour.Size[v] = (tour.Last[v]-tour.First[v])/2 + 1
	}
	return tour
}

// eulerDFS is the machine-free DFS core shared by eulerSeq and
// EulerSequential. It fills everything except VisitDepth and Size.
func (t *Tree) eulerDFS() *Tour {
	n := t.N
	tour := newTour(n)
	type frame struct {
		v    int
		next int // index into children
	}
	stack := []frame{{t.Root, 0}}
	tour.Order[0] = int32(t.Root)
	tour.First[t.Root] = 0
	pos := int32(0)
	pre := int32(0)
	tour.Pre[t.Root] = pre
	pre++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.Children(f.v)
		if f.next < len(ch) {
			c := int(ch[f.next])
			f.next++
			tour.Depth[c] = tour.Depth[f.v] + 1
			pos++
			tour.Order[pos] = int32(c)
			tour.First[c] = pos
			tour.Pre[c] = pre
			pre++
			stack = append(stack, frame{c, 0})
		} else {
			tour.Last[f.v] = pos
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pos++
				tour.Order[pos] = int32(stack[len(stack)-1].v)
			}
		}
	}
	return tour
}

// eulerPar builds the tour with edge linking + list ranking.
func (t *Tree) eulerPar(m *pram.Machine) *Tour {
	n := t.N
	// Directed edge ids: down(v) = v (edge parent(v)->v), up(v) = n+v, for
	// v != root. Ids for the root are unused.
	total := 2 * n
	succ := make([]int, total)
	// childIndex[v] = position of v among its siblings; next sibling lookup.
	m.ParallelFor(n, func(v int) {
		down, up := v, n+v
		if v == t.Root {
			succ[down], succ[up] = down, up // unused self-loops
			return
		}
		ch := t.Children(v)
		if len(ch) > 0 {
			succ[down] = int(ch[0]) // down(first child of v)
		} else {
			succ[down] = up
		}
		p := t.Parent[v]
		sib := t.Children(p)
		// Find v's position among siblings by binary search (children are
		// sorted by node index).
		lo, hi := 0, len(sib)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int(sib[mid]) < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo+1 < len(sib) {
			succ[up] = int(sib[lo+1]) // down(next sibling)
		} else if p == t.Root {
			succ[up] = up // tour terminal candidate
		} else {
			succ[up] = n + p // up(parent)
		}
	})
	// The tour ends at up(last child of root), which was made a self-loop
	// above; list-rank the edge chain to get tour positions.
	rank := par.ListRank(m, succ)
	tourLen := 2 * (n - 1) // number of directed edges
	// Position of edge e = tourLen-1-rank[e] for edges on the path from
	// start; edges of other root children chains... every edge is on the
	// single tour path from start, except unused root self-loops.
	tour := newTour(n)
	edgeAt := make([]int32, tourLen) // edge occupying each tour position
	m.ParallelFor(n, func(v int) {
		if v == t.Root {
			return
		}
		posDown := tourLen - 1 - int(rank[v])
		posUp := tourLen - 1 - int(rank[n+v])
		edgeAt[posDown] = int32(v)
		edgeAt[posUp] = int32(n + v)
	})
	// Node-visit sequence: Order[0] = root; Order[i+1] = head of edge i.
	tour.Order[0] = int32(t.Root)
	m.ParallelFor(tourLen, func(i int) {
		e := int(edgeAt[i])
		if e < n {
			tour.Order[i+1] = int32(e)
		} else {
			tour.Order[i+1] = int32(t.Parent[e-n])
		}
	})
	// Depth via +1/-1 prefix sums over edges.
	w := make([]int64, tourLen)
	m.ParallelFor(tourLen, func(i int) {
		if int(edgeAt[i]) < n {
			w[i] = 1
		} else {
			w[i] = -1
		}
	})
	par.InclusiveScan(m, w)
	m.ParallelFor(n, func(v int) {
		if v == t.Root {
			tour.First[t.Root] = 0
			tour.Last[t.Root] = int32(2*n - 2)
			tour.Depth[t.Root] = 0
			tour.Pre[t.Root] = 0
			return
		}
		posDown := tourLen - 1 - int(rank[v])
		posUp := tourLen - 1 - int(rank[n+v])
		tour.First[v] = int32(posDown + 1)
		tour.Last[v] = int32(posUp)
		tour.Depth[v] = int32(w[posDown])
		// Preorder: number of down-edges at positions <= posDown.
		tour.Pre[v] = int32((int64(posDown) + 1 + w[posDown]) / 2)
	})
	t.finishTour(m, tour)
	return tour
}

func newTour(n int) *Tour {
	return &Tour{
		Order:      make([]int32, 2*n-1),
		First:      make([]int32, n),
		Last:       make([]int32, n),
		Depth:      make([]int32, n),
		VisitDepth: make([]int64, 2*n-1),
		Pre:        make([]int32, n),
		Size:       make([]int32, n),
	}
}

func (t *Tree) finishTour(m *pram.Machine, tour *Tour) {
	n := t.N
	m.ParallelFor(len(tour.Order), func(i int) {
		tour.VisitDepth[i] = int64(tour.Depth[tour.Order[i]])
	})
	m.ParallelFor(n, func(v int) {
		tour.Size[v] = (tour.Last[v]-tour.First[v])/2 + 1
	})
}

// InSubtree reports whether node u lies in the subtree rooted at v.
func (tr *Tour) InSubtree(u, v int) bool {
	return tr.First[v] <= tr.First[u] && tr.First[u] <= tr.Last[v]
}
