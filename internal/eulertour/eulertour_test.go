package eulertour

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// randomTree returns parent pointers of a random tree where parents have
// smaller indices (node 0 is the root).
func randomTree(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	p[0] = -1
	for v := 1; v < n; v++ {
		p[v] = rng.IntN(v)
	}
	return p
}

func TestChildrenCSR(t *testing.T) {
	m := pram.New(4)
	parent := []int{-1, 0, 0, 1, 1, 2, 0}
	tr := New(m, parent)
	if tr.Root != 0 {
		t.Fatalf("root = %d", tr.Root)
	}
	wantKids := map[int][]int32{
		0: {1, 2, 6}, 1: {3, 4}, 2: {5}, 3: {}, 4: {}, 5: {}, 6: {},
	}
	for v, want := range wantKids {
		got := tr.Children(v)
		if len(got) != len(want) {
			t.Fatalf("children(%d) = %v want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("children(%d) = %v want %v", v, got, want)
			}
		}
		if tr.Degree(v) != len(want) {
			t.Fatalf("degree(%d) = %d", v, tr.Degree(v))
		}
	}
}

func checkTour(t *testing.T, parent []int, tour *Tour) {
	t.Helper()
	n := len(parent)
	if len(tour.Order) != 2*n-1 {
		t.Fatalf("tour length %d want %d", len(tour.Order), 2*n-1)
	}
	// Consecutive tour nodes must be tree neighbors.
	for i := 1; i < len(tour.Order); i++ {
		a, b := int(tour.Order[i-1]), int(tour.Order[i])
		if parent[a] != b && parent[b] != a {
			t.Fatalf("tour positions %d,%d: %d and %d not adjacent", i-1, i, a, b)
		}
	}
	// Reference arrays by sequential DFS.
	depth := make([]int32, n)
	for v := 1; v < n; v++ {
		// parents have smaller indices in our test trees
		depth[v] = depth[parent[v]] + 1
	}
	size := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		size[v]++
		if parent[v] >= 0 {
			size[parent[v]] += size[v]
		}
	}
	for v := 0; v < n; v++ {
		if tour.Depth[v] != depth[v] {
			t.Fatalf("depth[%d] = %d want %d", v, tour.Depth[v], depth[v])
		}
		if tour.Size[v] != size[v] {
			t.Fatalf("size[%d] = %d want %d", v, tour.Size[v], size[v])
		}
		if tour.Order[tour.First[v]] != int32(v) || tour.Order[tour.Last[v]] != int32(v) {
			t.Fatalf("first/last of %d do not point at %d", v, v)
		}
		for i := int32(0); i < tour.First[v]; i++ {
			if tour.Order[i] == int32(v) {
				t.Fatalf("node %d appears before First", v)
			}
		}
		for i := tour.Last[v] + 1; i < int32(len(tour.Order)); i++ {
			if tour.Order[i] == int32(v) {
				t.Fatalf("node %d appears after Last", v)
			}
		}
	}
	// Preorder must be a permutation consistent with First order.
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		p := int(tour.Pre[v])
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("preorder not a permutation at node %d", v)
		}
		seen[p] = true
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if tour.First[u] < tour.First[v] != (tour.Pre[u] < tour.Pre[v]) {
				t.Fatalf("preorder inconsistent with first visits (%d,%d)", u, v)
			}
		}
	}
	// VisitDepth mirrors Depth.
	for i, nd := range tour.Order {
		if tour.VisitDepth[i] != int64(tour.Depth[nd]) {
			t.Fatalf("visitdepth[%d]", i)
		}
	}
}

func TestEulerTourSequentialAndParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	seq := pram.NewSequential()
	par4 := pram.New(4)
	par4.SetGrain(9)
	for _, n := range []int{2, 3, 4, 10, 100, 500} {
		for trial := 0; trial < 5; trial++ {
			parent := randomTree(rng, n)
			trSeq := New(seq, parent)
			trPar := New(par4, parent)
			a := trSeq.Euler(seq)
			b := trPar.Euler(par4)
			checkTour(t, parent, a)
			checkTour(t, parent, b)
			for i := range a.Order {
				if a.Order[i] != b.Order[i] {
					t.Fatalf("n=%d order differs at %d: %d vs %d", n, i, a.Order[i], b.Order[i])
				}
			}
		}
	}
}

func TestEulerPathTree(t *testing.T) {
	m := pram.New(4)
	const n = 50
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	tr := New(m, parent)
	tour := tr.Euler(m)
	checkTour(t, parent, tour)
	if tour.Depth[n-1] != n-1 {
		t.Fatalf("path depth = %d", tour.Depth[n-1])
	}
}

func TestEulerStarTree(t *testing.T) {
	m := pram.New(4)
	const n = 60
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	tr := New(m, parent)
	tour := tr.Euler(m)
	checkTour(t, parent, tour)
	if tour.Size[0] != n {
		t.Fatalf("star root size = %d", tour.Size[0])
	}
}

func TestEulerSingleNode(t *testing.T) {
	m := pram.New(4)
	tr := New(m, []int{-1})
	tour := tr.Euler(m)
	if len(tour.Order) != 1 || tour.Order[0] != 0 || tour.Size[0] != 1 {
		t.Fatalf("single node tour: %+v", tour)
	}
}

func TestInSubtree(t *testing.T) {
	m := pram.New(4)
	parent := []int{-1, 0, 0, 1, 1, 2}
	tr := New(m, parent)
	tour := tr.Euler(m)
	cases := []struct {
		u, v int
		want bool
	}{
		{3, 1, true}, {4, 1, true}, {5, 2, true}, {3, 2, false},
		{1, 1, true}, {0, 1, false}, {5, 0, true},
	}
	for _, c := range cases {
		if got := tour.InSubtree(c.u, c.v); got != c.want {
			t.Errorf("InSubtree(%d,%d) = %v want %v", c.u, c.v, got, c.want)
		}
	}
}
