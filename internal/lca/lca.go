// Package lca answers lowest-common-ancestor queries in O(1) after
// Euler-tour + range-minimum preprocessing, and ancestor-at-depth queries by
// binary lifting. The paper uses LCA both inside the nearest-colored-
// ancestors structure (§3.2, LCAs inside skeleton trees) and for the O(1)
// longest-common-prefix queries of Lemma 2.6 (LCP of two suffixes = string
// depth of the LCA of their leaves).
package lca

import (
	"repro/internal/eulertour"
	"repro/internal/pram"
	"repro/internal/rmq"
)

// Index answers LCA queries over a fixed rooted tree.
type Index struct {
	Tour *eulertour.Tour
	rmq  *rmq.Table
}

// New preprocesses the tree. Work O(n log n) (sparse table), depth O(log n).
func New(m *pram.Machine, tree *eulertour.Tree) *Index {
	tour := tree.Euler(m)
	return FromTour(m, tour)
}

// FromTour builds the index from an existing Euler tour.
func FromTour(m *pram.Machine, tour *eulertour.Tour) *Index {
	return &Index{Tour: tour, rmq: rmq.NewMin(m, tour.VisitDepth)}
}

// FromTourSequential is FromTour with plain loops and no machine: identical
// tables, zero PRAM work. Snapshot decoding (internal/persist) uses it so a
// loaded dictionary performs no re-preprocessing on the cost ledger.
func FromTourSequential(tour *eulertour.Tour) *Index {
	return &Index{Tour: tour, rmq: rmq.NewMinSequential(tour.VisitDepth)}
}

// Query returns the lowest common ancestor of u and v.
func (x *Index) Query(u, v int) int {
	a, b := x.Tour.First[u], x.Tour.First[v]
	if a > b {
		a, b = b, a
	}
	return int(x.Tour.Order[x.rmq.QueryIndex(int(a), int(b))])
}

// Depth returns the edge depth of v.
func (x *Index) Depth(v int) int32 { return x.Tour.Depth[v] }

// Lifting provides ancestor-at-depth ("level ancestor") queries via binary
// lifting: O(n log n) preprocessing, O(log n) per query. It optionally
// carries a monotone weight per node (for suffix trees: string depth), and
// can then find the shallowest ancestor whose weight is >= a threshold.
type Lifting struct {
	up     [][]int32
	parent []int
	weight []int64 // weight[v] strictly increasing from parent to child
}

// NewLifting builds the jump table. weight may be nil; if given, it must be
// strictly increasing along every root-to-leaf path (weight[parent] <
// weight[child]).
func NewLifting(m *pram.Machine, parent []int, weight []int64) *Lifting {
	n := len(parent)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	up := make([][]int32, levels)
	up[0] = make([]int32, n)
	m.ParallelFor(n, func(v int) {
		if parent[v] < 0 {
			up[0][v] = int32(v)
		} else {
			up[0][v] = int32(parent[v])
		}
	})
	for k := 1; k < levels; k++ {
		up[k] = make([]int32, n)
		prev, cur := up[k-1], up[k]
		m.ParallelFor(n, func(v int) { cur[v] = prev[prev[v]] })
	}
	return &Lifting{up: up, parent: parent, weight: weight}
}

// NewLiftingSequential is NewLifting with plain loops and no machine: the
// jump tables are identical (the recurrence is deterministic), and no PRAM
// work is charged. Used by snapshot decoding (internal/persist).
func NewLiftingSequential(parent []int, weight []int64) *Lifting {
	n := len(parent)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	up := make([][]int32, levels)
	up[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		if parent[v] < 0 {
			up[0][v] = int32(v)
		} else {
			up[0][v] = int32(parent[v])
		}
	}
	for k := 1; k < levels; k++ {
		up[k] = make([]int32, n)
		prev, cur := up[k-1], up[k]
		for v := 0; v < n; v++ {
			cur[v] = prev[prev[v]]
		}
	}
	return &Lifting{up: up, parent: parent, weight: weight}
}

// Ancestor returns the hops-th ancestor of v (saturating at the root).
func (l *Lifting) Ancestor(v int, hops int) int {
	if max := len(l.up[0]) - 1; hops > max {
		hops = max // paths have at most n-1 edges; the root self-loops
	}
	for k := 0; hops > 0 && k < len(l.up); k++ {
		if hops&1 == 1 {
			v = int(l.up[k][v])
		}
		hops >>= 1
	}
	return v
}

// ShallowestWithWeightAtLeast returns the highest ancestor a of v (possibly
// v itself) with weight[a] >= w. If even v fails the predicate it returns
// -1. Requires a weight slice.
func (l *Lifting) ShallowestWithWeightAtLeast(v int, w int64) int {
	if l.weight[v] < w {
		return -1
	}
	// Climb as long as the parent still satisfies weight >= w.
	for k := len(l.up) - 1; k >= 0; k-- {
		a := int(l.up[k][v])
		if l.weight[a] >= w {
			v = a
		}
	}
	// v now satisfies the predicate and its parent does not (or v is root).
	if p := l.parent[v]; p >= 0 && l.weight[p] >= w {
		v = p // root self-loop edge case
	}
	return v
}

// DeepestWithWeightLess returns the deepest ancestor a of v (possibly v)
// with weight[a] < w, or -1 if none (i.e. weight[root] >= w).
func (l *Lifting) DeepestWithWeightLess(v int, w int64) int {
	if l.weight[v] < w {
		return v
	}
	for k := len(l.up) - 1; k >= 0; k-- {
		a := int(l.up[k][v])
		if l.weight[a] >= w {
			v = a
		}
	}
	// v is the shallowest node with weight >= w; its parent is the answer.
	p := l.parent[v]
	if p < 0 {
		return -1
	}
	return p
}
