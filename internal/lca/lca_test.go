package lca

import (
	"math/rand/v2"
	"testing"

	"repro/internal/eulertour"
	"repro/internal/pram"
)

func randomTree(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	p[0] = -1
	for v := 1; v < n; v++ {
		p[v] = rng.IntN(v)
	}
	return p
}

func bruteLCA(parent []int, u, v int) int {
	anc := map[int]bool{}
	for x := u; x != -1; x = parent[x] {
		anc[x] = true
	}
	for x := v; ; x = parent[x] {
		if anc[x] {
			return x
		}
	}
}

func TestLCAAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{1, 2, 5, 50, 400} {
			parent := randomTree(rng, n)
			idx := New(m, eulertour.New(m, parent))
			for q := 0; q < 300; q++ {
				u, v := rng.IntN(n), rng.IntN(n)
				if got, want := idx.Query(u, v), bruteLCA(parent, u, v); got != want {
					t.Fatalf("procs=%d n=%d lca(%d,%d)=%d want %d", procs, n, u, v, got, want)
				}
			}
			for v := 0; v < n; v++ {
				if idx.Query(v, v) != v {
					t.Fatalf("lca(v,v) != v")
				}
			}
		}
	}
}

func TestLiftingAncestor(t *testing.T) {
	m := pram.New(4)
	// Path 0-1-2-...-63.
	const n = 64
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	l := NewLifting(m, parent, nil)
	for v := 0; v < n; v++ {
		for hops := 0; hops < n+3; hops++ {
			want := v - hops
			if want < 0 {
				want = 0
			}
			if got := l.Ancestor(v, hops); got != want {
				t.Fatalf("Ancestor(%d,%d)=%d want %d", v, hops, got, want)
			}
		}
	}
}

func TestLiftingWeightQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	m := pram.New(4)
	const n = 300
	parent := randomTree(rng, n)
	weight := make([]int64, n)
	for v := 1; v < n; v++ {
		weight[v] = weight[parent[v]] + 1 + rng.Int64N(5)
	}
	l := NewLifting(m, parent, weight)
	for trial := 0; trial < 2000; trial++ {
		v := rng.IntN(n)
		w := rng.Int64N(weight[v] + 3)
		// Brute-force shallowest ancestor with weight >= w.
		want := -1
		for x := v; x != -1; x = parent[x] {
			if weight[x] >= w {
				want = x
			} else {
				break
			}
		}
		if got := l.ShallowestWithWeightAtLeast(v, w); got != want {
			t.Fatalf("ShallowestWithWeightAtLeast(%d,%d)=%d want %d", v, w, got, want)
		}
		// Brute-force deepest ancestor with weight < w.
		want = -1
		for x := v; x != -1; x = parent[x] {
			if weight[x] < w {
				want = x
				break
			}
		}
		if got := l.DeepestWithWeightLess(v, w); got != want {
			t.Fatalf("DeepestWithWeightLess(%d,%d)=%d want %d", v, w, got, want)
		}
	}
}

func TestLiftingSingleNode(t *testing.T) {
	m := pram.NewSequential()
	l := NewLifting(m, []int{-1}, []int64{0})
	if l.Ancestor(0, 5) != 0 {
		t.Fatal("root ancestor")
	}
	if l.ShallowestWithWeightAtLeast(0, 0) != 0 {
		t.Fatal("root weight>=0")
	}
	if l.ShallowestWithWeightAtLeast(0, 1) != -1 {
		t.Fatal("root weight>=1")
	}
	if l.DeepestWithWeightLess(0, 1) != 0 {
		t.Fatal("root weight<1")
	}
	if l.DeepestWithWeightLess(0, 0) != -1 {
		t.Fatal("root weight<0")
	}
}
