// Package fingerprint implements Karp–Rabin polynomial fingerprints (the
// paper's citation [17]) over the Mersenne prime 2^61-1. Fingerprints are
// what make the paper's algorithms randomized: string comparisons in the
// suffix-tree descent (Step 1A) and the ExtendLeft procedure compare
// fingerprints in O(1), and are correct unless a fingerprint collision
// occurs — an event of probability <= len/(2^61-1) per comparison, which the
// Las Vegas checker (§3.4) catches and retries.
package fingerprint

import (
	"math/bits"
	"math/rand/v2"

	"repro/internal/chaos"
	"repro/internal/pram"
)

// Prime is the fingerprint field modulus, the Mersenne prime 2^61 - 1.
const Prime uint64 = 1<<61 - 1

// Hasher fixes a random base. All tables built from one Hasher are mutually
// comparable (text vs dictionary comparisons need a shared base).
type Hasher struct {
	base uint64
	pow  []uint64 // pow[i] = base^i, grown on demand at construction time
}

// NewHasher draws a uniformly random base from the seeded stream. maxLen
// bounds the longest string that will be fingerprinted.
func NewHasher(seed uint64, maxLen int) *Hasher {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	base := rng.Uint64N(Prime-3) + 2 // uniform in [2, Prime-2]
	return newHasherWithBase(base, maxLen)
}

func newHasherWithBase(base uint64, maxLen int) *Hasher {
	h := &Hasher{base: base, pow: make([]uint64, maxLen+1)}
	h.pow[0] = 1
	for i := 1; i <= maxLen; i++ {
		h.pow[i] = mulmod(h.pow[i-1], base)
	}
	return h
}

// WithCapacity returns a hasher with the same base whose power table covers
// strings up to maxLen (the receiver itself if it is already large enough).
// Tables built from the two hashers are mutually comparable, which is how a
// per-query text table joins a preprocessed dictionary table.
func (h *Hasher) WithCapacity(maxLen int) *Hasher {
	if maxLen <= h.MaxLen() {
		return h
	}
	return newHasherWithBase(h.base, maxLen)
}

// Base returns the random base (exported for experiment logging).
func (h *Hasher) Base() uint64 { return h.base }

// MaxLen returns the longest supported string length.
func (h *Hasher) MaxLen() int { return len(h.pow) - 1 }

// mulmod returns a*b mod 2^61-1 using the Mersenne reduction.
func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo; fold twice.
	sum := (lo & Prime) + (lo >> 61) + hi<<3
	sum = (sum & Prime) + (sum >> 61)
	if sum >= Prime {
		sum -= Prime
	}
	return sum
}

func addmod(a, b uint64) uint64 {
	s := a + b
	if s >= Prime {
		s -= Prime
	}
	return s
}

func submod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + Prime - b
}

// Table holds prefix fingerprints of one string, answering substring
// fingerprints in O(1).
type Table struct {
	h *Hasher
	// pre[i] = fingerprint of s[0:i]
	pre []uint64
	n   int
}

// NewTable builds prefix fingerprints of s in parallel: per-block local
// hashes followed by a doubling combine over blocks (work O(n), depth
// O(log n)).
func (h *Hasher) NewTable(m *pram.Machine, s []byte) *Table {
	n := len(s)
	if n > h.MaxLen() {
		panic("fingerprint: string longer than hasher maxLen")
	}
	t := &Table{h: h, pre: make([]uint64, n+1), n: n}
	if n == 0 {
		return t
	}
	const block = 256
	nb := (n + block - 1) / block
	// Local prefix hashes within each block.
	m.ParallelForCost(nb, block, func(b int) {
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		var acc uint64
		for i := lo; i < hi; i++ {
			acc = addmod(mulmod(acc, h.base), uint64(s[i])+1)
			t.pre[i+1] = acc
		}
	})
	combineBlocks(m, h, t.pre, n, nb, block)
	return t
}

// combineBlocks turns per-block local prefix hashes into global ones with a
// Hillis–Steele scan over block summaries (associative combine:
// concat(h1, h2, len2) = h1*base^len2 + h2).
func combineBlocks(m *pram.Machine, h *Hasher, pre []uint64, n, nb, block int) {
	type seg struct {
		fp  uint64
		len int
	}
	cur := make([]seg, nb)
	m.ParallelFor(nb, func(b int) {
		hi := (b + 1) * block
		if hi > n {
			hi = n
		}
		cur[b] = seg{pre[hi], hi - b*block}
	})
	next := make([]seg, nb)
	for stride := 1; stride < nb; stride *= 2 {
		st := stride
		m.ParallelFor(nb, func(b int) {
			if b >= st {
				l := cur[b-st]
				r := cur[b]
				next[b] = seg{addmod(mulmod(l.fp, h.pow[r.len]), r.fp), l.len + r.len}
			} else {
				next[b] = cur[b]
			}
		})
		cur, next = next, cur
	}
	// cur[b] is now the hash of s[0 : end of block b]; rewrite each block's
	// entries onto the global prefix.
	m.ParallelForCost(nb, int64(block), func(b int) {
		if b == 0 {
			return
		}
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		carry := cur[b-1].fp
		for i := lo; i < hi; i++ {
			local := pre[i+1]
			pre[i+1] = addmod(mulmod(carry, h.pow[i+1-lo]), local)
		}
	})
}

// NewTableSequential builds the table with the plain linear recurrence.
func (h *Hasher) NewTableSequential(s []byte) *Table {
	n := len(s)
	if n > h.MaxLen() {
		panic("fingerprint: string longer than hasher maxLen")
	}
	t := &Table{h: h, pre: make([]uint64, n+1), n: n}
	for i := 0; i < n; i++ {
		t.pre[i+1] = addmod(mulmod(t.pre[i], h.base), uint64(s[i])+1)
	}
	return t
}

// NewTableInts builds prefix fingerprints over an int32 symbol string
// (symbols >= 0). A symbol x hashes exactly like the byte value x, so a
// table over text bytes is directly comparable with a table over a
// dictionary that uses symbols 256+ for separators.
func (h *Hasher) NewTableInts(m *pram.Machine, s []int32) *Table {
	n := len(s)
	if n > h.MaxLen() {
		panic("fingerprint: string longer than hasher maxLen")
	}
	t := &Table{h: h, pre: make([]uint64, n+1), n: n}
	if n == 0 {
		return t
	}
	const block = 256
	nb := (n + block - 1) / block
	m.ParallelForCost(nb, block, func(b int) {
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		var acc uint64
		for i := lo; i < hi; i++ {
			acc = addmod(mulmod(acc, h.base), uint64(s[i])+1)
			t.pre[i+1] = acc
		}
	})
	combineBlocks(m, h, t.pre, n, nb, block)
	return t
}

// NewTableIntsSequential is NewTableInts with the plain linear recurrence
// and no machine. The prefix hashes are identical to the parallel build's
// (the block combine is exact modular arithmetic, not an approximation), so
// tables from either constructor are interchangeable; zero PRAM work is
// charged. Snapshot decoding (internal/persist) rebuilds the dictionary
// table this way instead of storing 8 bytes per symbol.
func (h *Hasher) NewTableIntsSequential(s []int32) *Table {
	n := len(s)
	if n > h.MaxLen() {
		panic("fingerprint: string longer than hasher maxLen")
	}
	t := &Table{h: h, pre: make([]uint64, n+1), n: n}
	for i := 0; i < n; i++ {
		t.pre[i+1] = addmod(mulmod(t.pre[i], h.base), uint64(s[i])+1)
	}
	return t
}

// Len returns the length of the fingerprinted string.
func (t *Table) Len() int { return t.n }

// Substring returns the fingerprint of s[i:j] (half-open). i <= j required.
func (t *Table) Substring(i, j int) uint64 {
	if i > j || i < 0 || j > t.n {
		panic("fingerprint: bad substring range")
	}
	return submod(t.pre[j], mulmod(t.pre[i], t.h.pow[j-i]))
}

// Equal reports whether s[i:i+l] and the other table's string at [j:j+l]
// have equal fingerprints (Monte Carlo equality; both tables must use the
// same base, i.e. come from the same hasher or WithCapacity extensions of
// it).
func (t *Table) Equal(i int, other *Table, j, l int) bool {
	if t.h.base != other.h.base {
		panic("fingerprint: tables from different hashers")
	}
	eq := t.Substring(i, i+l) == other.Substring(j, j+l)
	if !eq && chaos.Fire(chaos.FPCollide) {
		// Forced fingerprint collision (chaos builds only; in production
		// builds the hook is a constant false and this branch is compiled
		// out). Lying "equal" here is exactly what a natural 61-bit
		// collision would do: the Monte Carlo matcher goes wrong and the
		// deterministic §3.4 checker must catch it and trigger a reseed.
		return true
	}
	return eq
}

// Concat returns the fingerprint of the concatenation xy given fp(x), fp(y)
// and len(y).
func (h *Hasher) Concat(fpX, fpY uint64, lenY int) uint64 {
	return addmod(mulmod(fpX, h.pow[lenY]), fpY)
}

// Char returns the fingerprint of the single byte c, so ExtendLeft can form
// fp(c · S) = Concat(Char(c), fp(S), |S|).
func (h *Hasher) Char(c byte) uint64 { return uint64(c) + 1 }

// CollisionBound returns an upper bound on the probability that two distinct
// strings of length <= l collide under a random base: l / (Prime - 1).
func CollisionBound(l int) float64 {
	return float64(l) / float64(Prime-1)
}
