package fingerprint

import (
	"bytes"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/pram"
)

func TestMulmodSmallValues(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 5, 0}, {1, 7, 7}, {3, 4, 12},
		{Prime - 1, 1, Prime - 1},
		{Prime, 5, 0},             // Prime ≡ 0
		{Prime + 1, 5, 5},         // Prime+1 ≡ 1
		{Prime - 1, 2, Prime - 2}, // -1 * 2 = -2
	}
	for _, c := range cases {
		if got := mulmod(c.a, c.b); got != c.want {
			t.Errorf("mulmod(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulmodMatchesBigIntSemantics(t *testing.T) {
	// Verify a*b mod p against arbitrary-precision arithmetic.
	rng := rand.New(rand.NewPCG(81, 82))
	p := new(big.Int).SetUint64(Prime)
	for i := 0; i < 10000; i++ {
		a := rng.Uint64N(Prime)
		b := rng.Uint64N(Prime)
		got := mulmod(a, b)
		ref := new(big.Int).SetUint64(a)
		ref.Mul(ref, new(big.Int).SetUint64(b)).Mod(ref, p)
		if want := ref.Uint64(); got != want {
			t.Fatalf("mulmod(%d,%d)=%d want %d", a, b, got, want)
		}
	}
}

func TestParallelTableMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 84))
	h := NewHasher(1, 5000)
	m := pram.New(4)
	m.SetGrain(33)
	for _, n := range []int{0, 1, 255, 256, 257, 1000, 5000} {
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.IntN(256))
		}
		a := h.NewTable(m, s)
		b := h.NewTableSequential(s)
		for i := 0; i <= n; i++ {
			if a.pre[i] != b.pre[i] {
				t.Fatalf("n=%d pre[%d] %d vs %d", n, i, a.pre[i], b.pre[i])
			}
		}
	}
}

func TestSubstringEqualityMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 86))
	h := NewHasher(2, 2000)
	m := pram.New(4)
	s := make([]byte, 1000)
	for i := range s {
		s[i] = byte('a' + rng.IntN(3)) // small alphabet → many real repeats
	}
	tab := h.NewTable(m, s)
	for trial := 0; trial < 5000; trial++ {
		i := rng.IntN(len(s))
		j := rng.IntN(len(s))
		l := rng.IntN(len(s) - max(i, j) + 1)
		fpEq := tab.Substring(i, i+l) == tab.Substring(j, j+l)
		realEq := bytes.Equal(s[i:i+l], s[j:j+l])
		if realEq && !fpEq {
			t.Fatalf("equal strings with different fingerprints at i=%d j=%d l=%d", i, j, l)
		}
		if fpEq != realEq {
			// A collision: astronomically unlikely with p = 2^61-1.
			t.Fatalf("fingerprint collision at i=%d j=%d l=%d", i, j, l)
		}
	}
}

func TestConcatIdentity(t *testing.T) {
	h := NewHasher(3, 100)
	s := []byte("the quick brown fox jumps over")
	tab := h.NewTableSequential(s)
	for i := 0; i <= len(s); i++ {
		for j := i; j <= len(s); j++ {
			for k := j; k <= len(s); k++ {
				got := h.Concat(tab.Substring(i, j), tab.Substring(j, k), k-j)
				if got != tab.Substring(i, k) {
					t.Fatalf("concat (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestCharConcat(t *testing.T) {
	h := NewHasher(4, 100)
	s := []byte("abcabc")
	tab := h.NewTableSequential(s)
	// fp('a' + "bcabc") must equal fp("abcabc")
	got := h.Concat(h.Char('a'), tab.Substring(1, 6), 5)
	if got != tab.Substring(0, 6) {
		t.Fatal("Char+Concat does not reproduce prefix fingerprint")
	}
}

func TestDifferentSeedsDifferentBases(t *testing.T) {
	a := NewHasher(10, 10)
	b := NewHasher(11, 10)
	if a.Base() == b.Base() {
		t.Fatal("different seeds produced identical bases")
	}
	c := NewHasher(10, 10)
	if a.Base() != c.Base() {
		t.Fatal("same seed produced different bases (not reproducible)")
	}
}

func TestTableCrossStringEqual(t *testing.T) {
	h := NewHasher(5, 100)
	m := pram.NewSequential()
	t1 := h.NewTable(m, []byte("xxabcdyy"))
	t2 := h.NewTable(m, []byte("ppabcdqq"))
	if !t1.Equal(2, t2, 2, 4) {
		t.Fatal("matching substrings reported unequal")
	}
	if t1.Equal(0, t2, 0, 4) {
		t.Fatal("distinct substrings reported equal")
	}
}

func TestBadRangePanics(t *testing.T) {
	h := NewHasher(6, 10)
	tab := h.NewTableSequential([]byte("abc"))
	defer func() {
		if recover() == nil {
			t.Fatal("bad range did not panic")
		}
	}()
	tab.Substring(2, 5)
}

func TestCollisionBoundMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return CollisionBound(x) <= CollisionBound(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
