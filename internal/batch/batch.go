// Package batch is an admission-side request coalescer: it groups
// concurrent small requests against one resource (here: one resident
// dictionary) into a single unit of work, so the per-dispatch costs the
// P-series measured — machine setup, super-step barriers, per-request halo
// plumbing — are paid once per batch instead of once per request.
//
// The paper's regime is preprocess-once/match-many with one large text per
// machine invocation (§3); production traffic is many small texts. The
// batcher restores the paper's regime by turning the traffic back into few,
// large dispatches. How the work is actually joined and split is the
// caller's business (internal/server joins texts with the core separator
// symbol and demultiplexes results by offset range); this package only owns
// the admission mechanics:
//
//   - a batch dispatches when it reaches MaxRequests pending requests, or
//     MaxBytes of coalesced payload, or MaxDelay after its first admission
//     (a time.AfterFunc timer armed by the first request), whichever first;
//   - size- and byte-triggered flushes run on the admitting goroutine (the
//     request that filled the batch executes it — no handoff latency);
//     delay-triggered flushes run on the timer goroutine;
//   - a waiter whose context expires abandons its request: the request is
//     marked dropped, the waiter returns ctx.Err() immediately (so the
//     server can answer 503 + Retry-After on its own deadline), and the
//     batch executes without it — a cancelled request never poisons its
//     siblings;
//   - a panic anywhere in the executor is contained: every request not yet
//     completed is failed with a *PanicError and the batcher stays usable.
//
// The type is generic in the per-request result R so match and parse
// batching share one implementation.
package batch

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxRequests = 32
	DefaultMaxBytes    = 1 << 20
	DefaultMaxDelay    = 500 * time.Microsecond
)

// Options bound one batch. Zero fields take the defaults above.
type Options struct {
	MaxRequests int           // dispatch at this many pending requests
	MaxBytes    int           // dispatch at this much coalesced payload
	MaxDelay    time.Duration // dispatch this long after the first admission
}

func (o Options) withDefaults() Options {
	if o.MaxRequests <= 0 {
		o.MaxRequests = DefaultMaxRequests
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	return o
}

// Request is one admitted request. The executor reads Text and Admitted,
// must skip requests whose Dropped reports true, and completes the rest
// with Complete. Complete may be called at most once per request, and only
// from the executor's goroutine.
//
// Requests are allocated from a per-batch slab and share one completion
// channel, so admission costs zero allocations per request (one slab plus
// one channel per batch) — on the coalesced path these were the last
// per-request heap objects left.
type Request[R any] struct {
	Text     []byte
	Admitted time.Time // when Do admitted the request (for delay accounting)

	res       R
	err       error
	done      chan struct{} // the group's channel; closed after the executor returns
	completed bool
	dropped   atomic.Bool
}

// Dropped reports whether the waiter abandoned this request (its context
// expired while queued). The executor must not spend work on it.
func (r *Request[R]) Dropped() bool { return r.dropped.Load() }

// Complete records the request's result (or error). Its waiter wakes when
// the whole group has executed — the batcher closes the group's shared
// completion channel after the executor returns, one wake point instead of
// one channel close per request.
func (r *Request[R]) Complete(res R, err error) {
	if r.completed {
		return
	}
	r.res, r.err = res, err
	r.completed = true
}

// Group is one dispatched batch: the admitted requests (dropped ones
// included, so the executor sees true occupancy) plus how many requests
// were already dropped when the batch was taken.
type Group[R any] struct {
	Reqs    []*Request[R]
	Dropped int

	done chan struct{} // shared by every request; closed by run
}

// Live returns the requests the executor must serve (not dropped).
func (g *Group[R]) Live() []*Request[R] {
	live := g.Reqs[:0:0]
	for _, r := range g.Reqs {
		if !r.Dropped() {
			live = append(live, r)
		}
	}
	return live
}

// PanicError is how an executor panic reaches the waiters of a batch: every
// request not completed when the panic unwound is failed with one. The
// server maps it to a 500, exactly like a panic on the solo path.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: executor panicked: %v", e.Value)
}

// Batcher coalesces Do calls into Groups and hands them to exec. Safe for
// concurrent use; one Batcher per (resource, operation) pair.
type Batcher[R any] struct {
	opts Options
	exec func(*Group[R])

	mu      sync.Mutex
	pending []*Request[R]
	bytes   int
	slab    []Request[R]  // bump allocator: admissions carve requests off here
	done    chan struct{} // pending batch's completion channel (nil iff no pending)
	gen     uint64        // bumped on every take; invalidates stale timers
	timer   *time.Timer
}

// New returns a batcher dispatching to exec under opts. exec runs on
// whichever goroutine triggered the flush and must complete every live
// request of its group.
func New[R any](opts Options, exec func(*Group[R])) *Batcher[R] {
	return &Batcher[R]{opts: opts.withDefaults(), exec: exec}
}

// Do admits text, waits for the batch executor to complete it, and returns
// the result. If ctx expires first — while queued or while the batch is
// executing — Do returns ctx.Err() immediately and the request's slice of
// the batch output is discarded.
func (b *Batcher[R]) Do(ctx context.Context, text []byte) (R, error) {
	var zero R
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	admitted := time.Now()
	b.mu.Lock()
	// Carve the request off the current slab (entries are used once, so the
	// zero fields need no reset) and join the pending batch's shared
	// completion channel — admission allocates nothing per request.
	if len(b.slab) == 0 {
		b.slab = make([]Request[R], b.opts.MaxRequests)
	}
	r := &b.slab[0]
	b.slab = b.slab[1:]
	if b.done == nil {
		b.done = make(chan struct{})
	}
	r.Text, r.Admitted, r.done = text, admitted, b.done
	b.pending = append(b.pending, r)
	b.bytes += len(text)
	var g *Group[R]
	if len(b.pending) >= b.opts.MaxRequests || b.bytes >= b.opts.MaxBytes {
		g = b.takeLocked()
	} else if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.opts.MaxDelay, func() { b.flushTimer(gen) })
	}
	b.mu.Unlock()
	if g != nil {
		b.run(g)
	}
	if ctx.Done() == nil {
		// Uncancellable context: skip the select machinery.
		<-r.done
		return r.res, r.err
	}
	select {
	case <-r.done:
		return r.res, r.err
	case <-ctx.Done():
		r.dropped.Store(true)
		return zero, ctx.Err()
	}
}

// takeLocked removes the pending batch (caller holds b.mu), invalidating
// any armed delay timer. Returns nil when nothing is pending or every
// pending request was already dropped.
func (b *Batcher[R]) takeLocked() *Group[R] {
	if len(b.pending) == 0 {
		return nil
	}
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	g := &Group[R]{Reqs: b.pending, done: b.done}
	b.pending = nil
	b.bytes = 0
	b.done = nil
	live := 0
	for _, r := range g.Reqs {
		if !r.Dropped() {
			live++
		}
	}
	g.Dropped = len(g.Reqs) - live
	if live == 0 {
		return nil
	}
	return g
}

// flushTimer is the MaxDelay path: dispatch whatever is pending, unless a
// size-triggered flush got there first (generation mismatch).
func (b *Batcher[R]) flushTimer(gen uint64) {
	chaos.Sleep(chaos.BatchStall)
	b.mu.Lock()
	if b.gen != gen {
		b.mu.Unlock()
		return
	}
	g := b.takeLocked()
	b.mu.Unlock()
	if g != nil {
		b.run(g)
	}
}

// run executes one group with panic containment. The timer goroutine has no
// HTTP middleware recover above it, so an executor panic escaping here
// would kill the process; instead it fails the group's incomplete requests
// and is swallowed.
func (b *Batcher[R]) run(g *Group[R]) {
	defer close(g.done) // wakes every waiter; runs after the recover below
	defer func() {
		if p := recover(); p != nil {
			err := &PanicError{Value: p, Stack: debug.Stack()}
			b.failIncomplete(g, err)
		} else {
			b.failIncomplete(g, fmt.Errorf("batch: executor left request incomplete"))
		}
	}()
	b.exec(g)
}

// failIncomplete completes every not-yet-completed request with err.
func (b *Batcher[R]) failIncomplete(g *Group[R], err error) {
	var zero R
	for _, r := range g.Reqs {
		if !r.completed {
			r.Complete(zero, err)
		}
	}
}
