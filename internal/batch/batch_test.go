package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoExec completes every live request with its own text length.
func echoExec(g *Group[int]) {
	for _, r := range g.Live() {
		r.Complete(len(r.Text), nil)
	}
}

func TestSizeTriggeredFlush(t *testing.T) {
	var batches atomic.Int64
	b := New(Options{MaxRequests: 4, MaxDelay: time.Hour}, func(g *Group[int]) {
		batches.Add(1)
		if len(g.Reqs) != 4 {
			t.Errorf("batch carried %d requests, want 4", len(g.Reqs))
		}
		echoExec(g)
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := b.Do(context.Background(), make([]byte, i+1))
			if err != nil || n != i+1 {
				t.Errorf("Do: got (%d, %v), want (%d, nil)", n, err, i+1)
			}
		}(i)
	}
	wg.Wait()
	if got := batches.Load(); got != 2 {
		t.Fatalf("%d batches, want 2", got)
	}
}

func TestBytesTriggeredFlush(t *testing.T) {
	var occupancy atomic.Int64
	b := New(Options{MaxRequests: 100, MaxBytes: 100, MaxDelay: time.Hour}, func(g *Group[int]) {
		occupancy.Store(int64(len(g.Reqs)))
		echoExec(g)
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := b.Do(context.Background(), make([]byte, 60)); err != nil {
			t.Errorf("first Do: %v", err)
		}
	}()
	// Wait until the first request is pending, then push it over MaxBytes.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Do(context.Background(), make([]byte, 60)); err != nil {
		t.Fatalf("second Do: %v", err)
	}
	<-done
	if occupancy.Load() != 2 {
		t.Fatalf("occupancy %d, want 2", occupancy.Load())
	}
}

func TestDelayTriggeredFlush(t *testing.T) {
	b := New(Options{MaxRequests: 100, MaxDelay: 5 * time.Millisecond}, echoExec)
	start := time.Now()
	n, err := b.Do(context.Background(), []byte("xyz"))
	if err != nil || n != 3 {
		t.Fatalf("Do: got (%d, %v)", n, err)
	}
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("delay flush took %v", wait)
	}
}

func TestContextCancelDropsRequestOnly(t *testing.T) {
	release := make(chan struct{})
	var sawLive atomic.Int64
	b := New(Options{MaxRequests: 2, MaxDelay: time.Hour}, func(g *Group[int]) {
		<-release
		sawLive.Store(int64(len(g.Live())))
		echoExec(g)
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := b.Do(ctx, []byte("doomed"))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled Do returned %v", err)
		}
	}()
	// Wait until the doomed request is pending (and its waiter parked in
	// the select), then let the sibling fill the batch and become the
	// executor; it blocks on release, during which the waiter is cancelled.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var sibErr error
	var sibN int
	wg.Add(1)
	go func() {
		defer wg.Done()
		sibN, sibErr = b.Do(context.Background(), []byte("ok"))
	}()
	time.Sleep(10 * time.Millisecond) // sibling admitted; executor blocked
	cancel()
	time.Sleep(5 * time.Millisecond) // waiter observes cancellation
	close(release)
	wg.Wait()
	if sibErr != nil || sibN != 2 {
		t.Fatalf("sibling got (%d, %v), want (2, nil)", sibN, sibErr)
	}
	if sawLive.Load() != 1 {
		t.Fatalf("executor saw %d live requests, want 1", sawLive.Load())
	}
}

func TestExpiredContextNeverAdmits(t *testing.T) {
	b := New(Options{}, func(g *Group[int]) {
		t.Error("executor ran for an expired context")
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Do(ctx, []byte("late")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do: %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	calls := 0
	b := New(Options{MaxRequests: 1}, func(g *Group[int]) {
		calls++
		if calls == 1 {
			panic("executor bug")
		}
		echoExec(g)
	})
	_, err := b.Do(context.Background(), []byte("a"))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("first Do: %v, want *PanicError", err)
	}
	if pe.Value != "executor bug" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError carries %v / %d stack bytes", pe.Value, len(pe.Stack))
	}
	// The batcher survives and serves the next request.
	if n, err := b.Do(context.Background(), []byte("bb")); err != nil || n != 2 {
		t.Fatalf("second Do: (%d, %v)", n, err)
	}
}

func TestIncompleteRequestsAreFailed(t *testing.T) {
	b := New(Options{MaxRequests: 1}, func(g *Group[int]) {
		// Executor forgets to complete anything.
	})
	if _, err := b.Do(context.Background(), []byte("a")); err == nil {
		t.Fatal("incomplete request returned nil error")
	}
}

func TestStaleTimerDoesNotDoubleDispatch(t *testing.T) {
	var batches atomic.Int64
	b := New(Options{MaxRequests: 2, MaxDelay: 2 * time.Millisecond}, func(g *Group[int]) {
		batches.Add(1)
		echoExec(g)
	})
	// Two requests fill the batch by size before (or racing) the timer; the
	// generation check must keep the timer from dispatching a second time.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Do(context.Background(), []byte("x")); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	time.Sleep(10 * time.Millisecond) // let any stale timer fire
	if got := batches.Load(); got != 1 {
		t.Fatalf("%d batches, want 1", got)
	}
}

func TestConcurrentStress(t *testing.T) {
	b := New(Options{MaxRequests: 7, MaxBytes: 1 << 12, MaxDelay: 200 * time.Microsecond}, echoExec)
	var wg sync.WaitGroup
	errs := make(chan error, 512)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				size := (c*31+i)%97 + 1
				n, err := b.Do(context.Background(), make([]byte, size))
				if err != nil {
					errs <- err
					return
				}
				if n != size {
					errs <- fmt.Errorf("got %d want %d", n, size)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
