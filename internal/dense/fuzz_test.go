package dense

import (
	"bytes"
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/pram"
)

// FuzzDenseEquivalence checks, for fuzzer-chosen dictionaries and texts —
// overlapping and nested patterns very much included, since the dictionary
// is carved from the text's own alphabet — that the compiled dense automaton
// agrees bit-for-bit with both oracles:
//
//   - the naive map-based Aho–Corasick baseline (internal/ahocorasick), and
//   - the paper's Las Vegas-checked tree-walk matcher (internal/core),
//
// on the full M[i] output, and that Scan's occurrence stream is internally
// consistent (every reported range spells its pattern). The dense snapshot
// payload must also round-trip through Encode/Restore to identical output.
func FuzzDenseEquivalence(f *testing.F) {
	f.Add([]byte("ushers her hers"), []byte("he\nshe\nhers\nhis"), uint8(3))
	f.Add([]byte("aaaaaaaa"), []byte("a\naa\naaa"), uint8(2))
	f.Add(bytes.Repeat([]byte("abcab"), 40), []byte("ab\nbca\ncabc\nabcab"), uint8(3))
	f.Add([]byte("xyxyxyx"), []byte("xyx\nyxy"), uint8(4))

	f.Fuzz(func(t *testing.T, rawText, rawDict []byte, sigma uint8) {
		if len(rawText) > 2048 || len(rawDict) > 256 {
			return
		}
		// Fold both streams onto a small alphabet so patterns actually occur,
		// overlap and nest; newline splits the dictionary into patterns.
		s := int(sigma)%8 + 2
		text := make([]byte, len(rawText))
		for i, v := range rawText {
			text[i] = 'a' + v%byte(s)
		}
		var patterns [][]byte
		for _, part := range bytes.Split(rawDict, []byte("\n")) {
			if len(part) == 0 || len(patterns) >= 24 {
				continue
			}
			p := make([]byte, len(part))
			for i, v := range part {
				p[i] = 'a' + v%byte(s)
			}
			patterns = append(patterns, p)
		}
		if len(patterns) == 0 {
			return
		}

		a, err := Compile(patterns, Options{})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		got := a.Match(text)

		// Oracle 1: naive Aho–Corasick.
		ac := ahocorasick.New(patterns)
		ids := ac.Match(text)
		for i := range got {
			wantID, wantLen := int32(-1), int32(0)
			if ids[i] >= 0 {
				wantID, wantLen = ids[i], ac.PatternLen(ids[i])
			}
			if got[i].PatternID != wantID || got[i].Length != wantLen {
				t.Fatalf("vs ahocorasick at %d: got (%d,%d), want (%d,%d)",
					i, got[i].PatternID, got[i].Length, wantID, wantLen)
			}
		}

		// Oracle 2: the paper's matcher (checked: MatchLasVegas would loop on
		// fingerprint collisions; sequential Monte Carlo + Check is enough
		// here because Check failing would fail the run loudly).
		m := pram.NewSequential()
		d := core.Preprocess(m, patterns, core.Options{Seed: 99})
		want := d.MatchText(m, text)
		if !d.Check(m, text, want) {
			t.Skip("fingerprint collision — astronomically rare, not a dense bug")
		}
		for i := range got {
			if got[i].Length != want[i].Length {
				t.Fatalf("vs core at %d: got %+v, want %+v", i, got[i], want[i])
			}
			// Duplicate patterns may carry different ids across
			// implementations; the spelled bytes must agree.
			if got[i].PatternID != want[i].PatternID &&
				!bytes.Equal(patterns[got[i].PatternID], patterns[want[i].PatternID]) {
				t.Fatalf("vs core at %d: got %+v, want %+v", i, got[i], want[i])
			}
		}

		// Occurrence stream: every reported range must spell its pattern.
		if err := a.Scan(text, func(pat int32, from, to int) error {
			if from < 0 || to > len(text) || !bytes.Equal(text[from:to], patterns[pat]) {
				t.Fatalf("Scan emitted (%d,%d,%d) which does not spell pattern %d", pat, from, to, pat)
			}
			return nil
		}); err != nil {
			t.Fatalf("Scan: %v", err)
		}

		// Snapshot round trip.
		b, err := Restore(a.Encode(), patterns)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		restored := b.Match(text)
		for i := range got {
			if restored[i] != got[i] {
				t.Fatalf("restored automaton diverges at %d", i)
			}
		}
	})
}
