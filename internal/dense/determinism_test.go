package dense

import (
	"math/rand/v2"
	"testing"

	"repro/internal/textgen"
)

// TestCompileDeterministicStateIDs pins the property czsearch's memo cache
// rests on: compiled state ids are a pure function of the pattern list.
// czsearch keys memoized transitions by (entry state, token) and persists
// nothing, but a recompile of the same dictionary (entry eviction + re-add,
// warm restart without a DENSE section) must land every state at the same
// id, or a cache carried across automata would silently mix state spaces.
// The construction is deterministic by design — byte-ordered alphabet
// compression, pattern-order trie insertion, BFS queue order — and this test
// is the tripwire for anyone introducing map-iteration order into it.
func TestCompileDeterministicStateIDs(t *testing.T) {
	gen := textgen.New(99)
	random := gen.Dictionary(64, 1, 12, 8)
	cases := []struct {
		name     string
		patterns [][]byte
	}{
		{"classic", toBytes("he", "she", "his", "hers")},
		{"nested", toBytes("a", "aa", "aaa", "aaaa", "ab", "aab")},
		{"duplicates", toBytes("abc", "abc", "bc", "abc")},
		{"single", toBytes("xyzzy")},
		{"binary", [][]byte{{0x00, 0x01}, {0xff, 0x00}, {0x01, 0x01, 0x00}}},
		{"random64", random},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mustCompile(t, tc.patterns)
			for trial := 0; trial < 3; trial++ {
				b := mustCompile(t, tc.patterns)
				if a.numStates != b.numStates || a.width != b.width || a.maxPatLen != b.maxPatLen {
					t.Fatalf("trial %d: shape differs: (%d,%d,%d) vs (%d,%d,%d)",
						trial, a.numStates, a.width, a.maxPatLen, b.numStates, b.width, b.maxPatLen)
				}
				if a.symClass != b.symClass {
					t.Fatalf("trial %d: symClass differs", trial)
				}
				for i := range a.next {
					if a.next[i] != b.next[i] {
						t.Fatalf("trial %d: next[%d] = %d vs %d", trial, i, a.next[i], b.next[i])
					}
				}
				for i := range a.outOff {
					if a.outOff[i] != b.outOff[i] {
						t.Fatalf("trial %d: outOff[%d] = %d vs %d", trial, i, a.outOff[i], b.outOff[i])
					}
				}
				for i := range a.outPat {
					if a.outPat[i] != b.outPat[i] {
						t.Fatalf("trial %d: outPat[%d] = %d vs %d", trial, i, a.outPat[i], b.outPat[i])
					}
				}
				for i := range a.patLen {
					if a.patLen[i] != b.patLen[i] {
						t.Fatalf("trial %d: patLen[%d] = %d vs %d", trial, i, a.patLen[i], b.patLen[i])
					}
				}
			}
		})
	}
}

// TestStepMatchesScan pins that the incremental surface (Step + Outputs) is
// the same machine Scan runs: replaying a text byte by byte visits states
// whose output lists reproduce Scan's emissions exactly, in order.
func TestStepMatchesScan(t *testing.T) {
	a := mustCompile(t, toBytes("he", "she", "his", "hers", "ers"))
	rng := rand.New(rand.NewPCG(3, 5))
	text := make([]byte, 500)
	letters := []byte("hers i")
	for i := range text {
		text[i] = letters[rng.IntN(len(letters))]
	}

	var want []Hit
	if err := a.Scan(text, func(pat int32, from, to int) error {
		want = append(want, Hit{Pat: pat, From: from, To: to})
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}

	var got []Hit
	q := int32(0)
	for i, b := range text {
		q = a.Step(q, b)
		if a.HasOutputs(q) != (len(a.Outputs(q)) > 0) {
			t.Fatalf("HasOutputs(%d) disagrees with Outputs length", q)
		}
		for _, p := range a.Outputs(q) {
			got = append(got, Hit{Pat: p, From: i + 1 - int(a.PatternLen(p)), To: i + 1})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("step replay found %d occurrences, Scan found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: step %+v, Scan %+v", i, got[i], want[i])
		}
	}
}
