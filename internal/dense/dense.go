// Package dense is the serving-time fast path for dictionary matching: a
// post-preprocessing compile stage that lowers a prepared pattern set into a
// branch-free flat transition table, in the style of the Ken Steele dense-DFA
// Aho–Corasick variant (SNIPPETS.md #1).
//
// The paper's regime is preprocess-once/match-many; its §3 matcher is
// work-optimal on a PRAM but walks suffix-tree/NCA structures per text
// position at serving time. This package trades memory for raw per-byte
// speed: the goto and failure functions are pre-resolved into one
// next[state][class] array, so every text byte costs exactly one table load
// — no branches on miss, no failure chain, no hashing. The alphabet is
// compressed to the byte classes that actually occur in the dictionary (plus
// one shared "absent" class that always leads back to the root), which keeps
// the table at states × (σ+1) entries instead of states × 256.
//
// Matching here is deterministic — no fingerprints, no Las Vegas loop. The
// existing checked matcher remains the correctness oracle: the serving layer
// cross-validates sampled dense results against it (internal/server), the
// fuzz target FuzzDenseEquivalence compares all three implementations, and
// the greedy-parsing-optimality literature (arXiv:1211.5350) is the standing
// reminder that a fast path earns trust by agreeing with a slow one, not by
// replacing it.
//
// The API is allocation-free on the hot path: Scan reports every occurrence
// through a callback without allocating, MatchInto fills a caller-provided
// buffer with the paper's M[i] output (longest pattern starting at each
// position), and FindAll is the convenience batch form built on Scan.
package dense

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// DefaultMaxTableBytes bounds the transition table a Compile may build when
// Options.MaxTableBytes is zero. Dense tables are the classic space-for-time
// trade: states × alphabet × 4 bytes. 256 MiB covers every realistic rule
// set (a 16 MiB dictionary over a full byte alphabet) while refusing to turn
// a pathological compile into an allocation bomb; callers that want bigger
// tables opt in explicitly.
const DefaultMaxTableBytes = 256 << 20

// ErrTableTooLarge reports that the dense table would exceed the configured
// byte budget; the caller should keep serving from the tree-walk matcher.
var ErrTableTooLarge = errors.New("dense: transition table exceeds byte budget")

// Options configure compilation.
type Options struct {
	// MaxTableBytes caps the size of next[][] in bytes (0 = DefaultMaxTableBytes).
	MaxTableBytes int64
}

// Automaton is a compiled dense dictionary automaton. It is immutable after
// Compile/Restore and safe for concurrent readers.
type Automaton struct {
	numStates int32
	width     int32       // compressed alphabet size including the absent class
	symClass  [256]uint16 // byte -> column index; 0 = byte absent from dictionary
	next      []int32     // numStates × width, goto ∪ failure pre-resolved
	outOff    []int32     // numStates+1 prefix offsets into outPat
	outPat    []int32     // per-state pattern ids ending there, longest first
	patLen    []int32     // pattern lengths by pattern id
	maxPatLen int32
}

// Stats describes a compiled automaton's shape and memory footprint.
type Stats struct {
	States     int   `json:"states"`
	Alphabet   int   `json:"alphabet"` // compressed classes incl. the absent class
	Patterns   int   `json:"patterns"`
	OutEntries int   `json:"outEntries"` // total per-state output-list length
	TableBytes int64 `json:"tableBytes"` // next[][] only, the dominant cost
	TotalBytes int64 `json:"totalBytes"` // all automaton arrays
}

// Stats returns the automaton's shape counters.
func (a *Automaton) Stats() Stats {
	return Stats{
		States:     int(a.numStates),
		Alphabet:   int(a.width),
		Patterns:   len(a.patLen),
		OutEntries: len(a.outPat),
		TableBytes: int64(len(a.next)) * 4,
		TotalBytes: int64(len(a.next)+len(a.outOff)+len(a.outPat)+len(a.patLen))*4 + 512,
	}
}

// NumStates returns the number of DFA states.
func (a *Automaton) NumStates() int { return int(a.numStates) }

// MaxPatternLen returns the longest pattern length — the halo bound sharded
// scans need.
func (a *Automaton) MaxPatternLen() int { return int(a.maxPatLen) }

// SeparatorByte returns the smallest byte value absent from every pattern,
// and whether one exists (it does unless the dictionary uses all 256 byte
// values). An absent byte maps to the shared class 0, whose transition row
// leads to the root from every state: scanning it resets the automaton
// exactly as if a fresh scan started. Request batching joins texts with it,
// so one Scan over the joined buffer yields per-slice output identical to
// scanning each slice alone — no pattern contains the byte, so no match can
// span a boundary.
func (a *Automaton) SeparatorByte() (byte, bool) {
	for c := 0; c < 256; c++ {
		if a.symClass[c] == 0 {
			return byte(c), true
		}
	}
	return 0, false
}

// PatternLen returns the length of pattern id.
func (a *Automaton) PatternLen(id int32) int32 { return a.patLen[id] }

// Compile lowers a pattern set into a dense automaton. Patterns must be
// non-empty; duplicate patterns collapse onto the first id, matching the
// convention of both oracles (internal/ahocorasick and internal/core).
// Construction is O(states × σ) time and memory — the deliberate trade
// against the O(d) tree-walk structures it accelerates.
func Compile(patterns [][]byte, opts Options) (*Automaton, error) {
	if len(patterns) == 0 {
		return nil, errors.New("dense: empty dictionary")
	}
	maxTable := opts.MaxTableBytes
	if maxTable <= 0 {
		maxTable = DefaultMaxTableBytes
	}

	a := &Automaton{patLen: make([]int32, len(patterns))}
	// Alphabet compression: column 0 is the shared "absent" class (always
	// transitions to the root), columns 1.. are the bytes the dictionary
	// uses, in byte order so compilation is deterministic.
	for _, p := range patterns {
		if len(p) == 0 {
			return nil, errors.New("dense: empty pattern")
		}
		for _, c := range p {
			a.symClass[c] = 1
		}
	}
	width := int32(1)
	for c := 0; c < 256; c++ {
		if a.symClass[c] != 0 {
			a.symClass[c] = uint16(width)
			width++
		}
	}
	a.width = width

	// Trie pass: states keyed by (parent, class) in a per-state sparse map,
	// so the dense table is allocated once at its final size.
	type stateRef struct{ next map[int32]int32 }
	trie := []stateRef{{next: map[int32]int32{}}}
	ownOut := []int32{-1}
	for id, p := range patterns {
		a.patLen[id] = int32(len(p))
		if a.patLen[id] > a.maxPatLen {
			a.maxPatLen = a.patLen[id]
		}
		s := int32(0)
		for _, c := range p {
			cls := int32(a.symClass[c])
			t, ok := trie[s].next[cls]
			if !ok {
				t = int32(len(trie))
				trie = append(trie, stateRef{next: map[int32]int32{}})
				ownOut = append(ownOut, -1)
				trie[s].next[cls] = t
			}
			s = t
		}
		if ownOut[s] == -1 {
			ownOut[s] = int32(id) // duplicates keep the first id
		}
	}
	numStates := int32(len(trie))
	a.numStates = numStates
	if bytes := int64(numStates) * int64(width) * 4; bytes > maxTable {
		return nil, fmt.Errorf("%w: %d states × %d classes = %d bytes (budget %d)",
			ErrTableTooLarge, numStates, width, bytes, maxTable)
	}

	// BFS pass: pre-resolve goto ∪ failure into the dense table. Processing
	// states in BFS order means fail[s]'s row is complete before s's row is
	// built, so a missing transition is a single copy from the failure row —
	// the standard dense-DFA construction.
	a.next = make([]int32, int(numStates)*int(width))
	fail := make([]int32, numStates)
	outLen := make([]int32, numStates)
	queue := make([]int32, 0, numStates)
	for cls, t := range trie[0].next {
		a.next[cls] = t
		queue = append(queue, t)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		row := a.next[int(s)*int(width) : (int(s)+1)*int(width)]
		failRow := a.next[int(fail[s])*int(width) : (int(fail[s])+1)*int(width)]
		for cls := int32(0); cls < width; cls++ {
			if t, ok := trie[s].next[cls]; ok {
				fail[t] = failRow[cls]
				row[cls] = t
				queue = append(queue, t)
			} else {
				row[cls] = failRow[cls]
			}
		}
		if ownOut[s] != -1 {
			outLen[s] = outLen[fail[s]] + 1
		} else {
			outLen[s] = outLen[fail[s]]
		}
	}

	// Packed output lists: state s reports every pattern that is a suffix of
	// its path label, longest first (own pattern, then the failure chain's).
	a.outOff = make([]int32, numStates+1)
	total := int32(0)
	for s := int32(0); s < numStates; s++ {
		a.outOff[s] = total
		total += outLen[s]
	}
	a.outOff[numStates] = total
	a.outPat = make([]int32, total)
	for _, s := range queue { // BFS order: fail[s]'s list is already filled
		off := a.outOff[s]
		if ownOut[s] != -1 {
			a.outPat[off] = ownOut[s]
			off++
		}
		f := fail[s]
		copy(a.outPat[off:a.outOff[s+1]], a.outPat[a.outOff[f]:a.outOff[f+1]])
	}
	return a, nil
}

// CompileDictionary compiles the dense automaton for a prepared dictionary —
// the post-preprocessing "compile" stage of the serving pipeline.
func CompileDictionary(d *core.Dictionary, opts Options) (*Automaton, error) {
	return Compile(d.Patterns, opts)
}

// Scan runs the automaton over text and calls emit once per pattern
// occurrence, with the pattern id and the half-open byte range [from, to).
// Occurrences at the same end position are emitted longest first. Scan
// performs zero allocations; returning a non-nil error from emit aborts the
// scan and returns that error.
func (a *Automaton) Scan(text []byte, emit func(pat int32, from, to int) error) error {
	s := int32(0)
	w := int(a.width)
	next := a.next
	for i := 0; i < len(text); i++ {
		s = next[int(s)*w+int(a.symClass[text[i]])]
		if off, end := a.outOff[s], a.outOff[s+1]; off != end {
			for _, p := range a.outPat[off:end] {
				if err := emit(p, i+1-int(a.patLen[p]), i+1); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Hit is one pattern occurrence reported by FindAll.
type Hit struct {
	Pat  int32 // pattern id
	From int   // start offset, inclusive
	To   int   // end offset, exclusive
}

// FindAll returns every pattern occurrence in text, ordered by end position
// (longest first among same-end occurrences). It is the batch form of Scan.
func (a *Automaton) FindAll(text []byte) []Hit {
	var hits []Hit
	_ = a.Scan(text, func(pat int32, from, to int) error {
		hits = append(hits, Hit{Pat: pat, From: from, To: to})
		return nil
	})
	return hits
}

// MatchInto fills out (which must have len(text) entries) with the paper's
// dictionary-matching output: out[i] is the longest pattern starting at i, or
// core.None. It allocates nothing, so halo-sharded callers can reuse
// per-shard buffers. The loop is Scan inlined — the emit indirection costs
// ~20% on match-dense texts.
func (a *Automaton) MatchInto(text []byte, out []core.Match) {
	for i := range out {
		out[i] = core.None
	}
	s := int32(0)
	w := int(a.width)
	next := a.next
	for i := 0; i < len(text); i++ {
		s = next[int(s)*w+int(a.symClass[text[i]])]
		if off, end := a.outOff[s], a.outOff[s+1]; off != end {
			for _, p := range a.outPat[off:end] {
				l := a.patLen[p]
				start := i + 1 - int(l)
				if out[start].Length < l {
					out[start] = core.Match{PatternID: p, Length: l}
				}
			}
		}
	}
}

// Match is the allocating convenience form of MatchInto.
func (a *Automaton) Match(text []byte) []core.Match {
	out := make([]core.Match, len(text))
	a.MatchInto(text, out)
	return out
}
