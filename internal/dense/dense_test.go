package dense

import (
	"errors"
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// oracleMatch computes the reference M[i] output (longest pattern starting
// at each position) with the naive map-based Aho–Corasick baseline.
func oracleMatch(patterns [][]byte, text []byte) []core.Match {
	ac := ahocorasick.New(patterns)
	ids := ac.Match(text)
	out := make([]core.Match, len(text))
	for i, id := range ids {
		if id < 0 {
			out[i] = core.None
		} else {
			out[i] = core.Match{PatternID: id, Length: ac.PatternLen(id)}
		}
	}
	return out
}

func mustCompile(t *testing.T, patterns [][]byte) *Automaton {
	t.Helper()
	a, err := Compile(patterns, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return a
}

func assertSameMatches(t *testing.T, want, got []core.Match, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: position %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestEquivalence pins the acceptance-criterion property: dense matching is
// bit-identical to both the naive Aho–Corasick oracle and the paper's
// tree-walk matcher across dictionary/text shapes, including overlapping and
// nested patterns.
func TestEquivalence(t *testing.T) {
	cases := []struct {
		name     string
		patterns [][]byte
		text     []byte
	}{
		{"classic", toBytes("he", "she", "his", "hers"), []byte("ushers say hershel is his")},
		{"nested", toBytes("a", "aa", "aaa", "aaaa"), []byte("aaaaaabaaaa")},
		{"overlapping", toBytes("abab", "baba", "ab", "ba"), []byte("abababababa")},
		{"suffix-chain", toBytes("x", "yx", "zyx", "wzyx"), []byte("wzyxwzyxzyx")},
		{"no-match", toBytes("qqq", "zzz"), []byte("abcdefgh")},
		{"full-alphabet", [][]byte{allBytes(), []byte{0}, []byte{255}}, append(allBytes(), allBytes()...)},
		{"single-byte-dict", toBytes("k"), []byte("kkkkkk")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mustCompile(t, tc.patterns)
			got := a.Match(tc.text)
			assertSameMatches(t, oracleMatch(tc.patterns, tc.text), got, "vs ahocorasick")

			m := pram.NewSequential()
			d := core.Preprocess(m, tc.patterns, core.Options{Seed: 3})
			assertSameMatches(t, d.MatchText(m, tc.text), got, "vs core")
		})
	}
}

// TestEquivalenceRandom sweeps random dictionaries and texts across alphabet
// sizes, including the sigma the NCA auto-threshold treats as small.
func TestEquivalenceRandom(t *testing.T) {
	gen := textgen.New(1789)
	for _, sigma := range []int{2, 4, 26} {
		for trial := 0; trial < 8; trial++ {
			patterns := gen.Dictionary(12, 1, 9, sigma)
			text := gen.Uniform(700, sigma)
			a := mustCompile(t, patterns)
			got := a.Match(text)
			assertSameMatches(t, oracleMatch(patterns, text), got, "vs ahocorasick")
		}
	}
}

// TestDuplicatePatterns: duplicates collapse onto the first id in every
// implementation.
func TestDuplicatePatterns(t *testing.T) {
	patterns := toBytes("dup", "x", "dup", "dupdup")
	text := []byte("adupdupb")
	a := mustCompile(t, patterns)
	assertSameMatches(t, oracleMatch(patterns, text), a.Match(text), "duplicates")
}

// TestScanOccurrences checks the occurrence-level API: every overlapping
// occurrence is reported exactly once, at its end position, longest first.
func TestScanOccurrences(t *testing.T) {
	patterns := toBytes("aa", "a")
	a := mustCompile(t, patterns)
	hits := a.FindAll([]byte("aaa"))
	want := []Hit{
		{Pat: 1, From: 0, To: 1},
		{Pat: 0, From: 0, To: 2}, // longest first at end position 2
		{Pat: 1, From: 1, To: 2},
		{Pat: 0, From: 1, To: 3},
		{Pat: 1, From: 2, To: 3},
	}
	if len(hits) != len(want) {
		t.Fatalf("got %d hits %v, want %d", len(hits), hits, len(want))
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hit %d: got %+v, want %+v", i, hits[i], want[i])
		}
	}
}

// TestScanZeroAlloc pins the zero-allocation contract of the hot path.
func TestScanZeroAlloc(t *testing.T) {
	gen := textgen.New(7)
	patterns := gen.Dictionary(16, 2, 6, 4)
	text := gen.Uniform(4096, 4)
	a := mustCompile(t, patterns)
	var sink int64
	allocs := testing.AllocsPerRun(10, func() {
		_ = a.Scan(text, func(pat int32, from, to int) error {
			sink += int64(pat) + int64(from) + int64(to)
			return nil
		})
	})
	if allocs != 0 {
		t.Fatalf("Scan allocated %.1f times per run, want 0", allocs)
	}
	out := make([]core.Match, len(text))
	allocs = testing.AllocsPerRun(10, func() { a.MatchInto(text, out) })
	if allocs != 0 {
		t.Fatalf("MatchInto allocated %.1f times per run, want 0", allocs)
	}
}

// TestScanAbort: an emit error stops the scan and is returned unchanged.
func TestScanAbort(t *testing.T) {
	a := mustCompile(t, toBytes("a"))
	stop := errors.New("stop")
	calls := 0
	err := a.Scan([]byte("aaaa"), func(pat int32, from, to int) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want stop after 1 call", err, calls)
	}
}

// TestTableBudget: a compile whose table would blow the byte budget is
// refused with the typed error, so serving falls back to the tree walk.
func TestTableBudget(t *testing.T) {
	gen := textgen.New(11)
	patterns := gen.Dictionary(64, 8, 16, 26)
	if _, err := Compile(patterns, Options{MaxTableBytes: 64}); !errors.Is(err, ErrTableTooLarge) {
		t.Fatalf("err=%v, want ErrTableTooLarge", err)
	}
	if _, err := Compile(patterns, Options{}); err != nil {
		t.Fatalf("default budget refused a tiny dictionary: %v", err)
	}
}

// TestSnapshotRoundTrip: Encode → Restore preserves matching behavior
// bit-for-bit, and the encoding is deterministic.
func TestSnapshotRoundTrip(t *testing.T) {
	gen := textgen.New(23)
	patterns := gen.Dictionary(20, 1, 10, 6)
	text := gen.Uniform(2000, 6)
	a := mustCompile(t, patterns)
	payload := a.Encode()
	if again := mustCompile(t, patterns).Encode(); string(again) != string(payload) {
		t.Fatal("Encode is not deterministic across compiles")
	}
	b, err := Restore(payload, patterns)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	assertSameMatches(t, a.Match(text), b.Match(text), "restored")
	st, err := PayloadStats(payload)
	if err != nil {
		t.Fatalf("PayloadStats: %v", err)
	}
	if st != a.Stats() {
		t.Fatalf("payload stats %+v != automaton stats %+v", st, a.Stats())
	}
}

// TestRestoreRejectsCorruption: every byte-level corruption of a valid
// payload either restores to an automaton that still matches correctly (a
// benign flip — impossible here given full validation plus exact-length
// framing, but the property we actually need is weaker) or returns an error;
// it never panics or builds an automaton that indexes out of bounds.
func TestRestoreRejectsCorruption(t *testing.T) {
	patterns := toBytes("abc", "bc", "cab")
	a := mustCompile(t, patterns)
	payload := a.Encode()
	text := []byte("abcabcab")

	if _, err := Restore(payload[:len(payload)-1], patterns); err == nil {
		t.Fatal("truncated payload restored")
	}
	if _, err := Restore(payload, patterns[:2]); err == nil {
		t.Fatal("pattern-count mismatch restored")
	}
	for i := 0; i < len(payload); i++ {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0x41
		b, err := Restore(mut, patterns)
		if err != nil {
			continue
		}
		// Structurally valid mutant: must still be safe to run.
		_ = b.Match(text)
	}
}

// TestSeparatorByte pins the batching contract: the separator byte resets
// the automaton to the root from every state, scanning a separator-joined
// buffer matches each slice independently, and a full-alphabet dictionary
// reports that no separator exists.
func TestSeparatorByte(t *testing.T) {
	patterns := toBytes("he", "she", "his", "hers")
	a := mustCompile(t, patterns)
	sep, ok := a.SeparatorByte()
	if !ok {
		t.Fatal("no separator byte for a 9-letter alphabet")
	}
	for _, p := range patterns {
		for _, c := range p {
			if c == sep {
				t.Fatalf("separator %q occurs in pattern %q", sep, p)
			}
		}
	}
	texts := [][]byte{[]byte("ushers"), []byte("he"), []byte(""), []byte("hishe")}
	joined := []byte{}
	bounds := make([][2]int, len(texts))
	for i, txt := range texts {
		bounds[i] = [2]int{len(joined), len(joined) + len(txt)}
		joined = append(joined, txt...)
		joined = append(joined, sep)
	}
	got := a.Match(joined)
	for i, txt := range texts {
		solo := a.Match(txt)
		assertSameMatches(t, solo, got[bounds[i][0]:bounds[i][1]], "joined slice")
		if got[bounds[i][1]] != core.None {
			t.Fatalf("separator position %d matched %+v", bounds[i][1], got[bounds[i][1]])
		}
		_ = txt
	}

	full := [][]byte{allBytes()}
	b := mustCompile(t, full)
	if _, ok := b.SeparatorByte(); ok {
		t.Fatal("full-alphabet dictionary reported a separator byte")
	}
}

func toBytes(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func allBytes() []byte {
	out := make([]byte, 256)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

func BenchmarkScan(b *testing.B) {
	gen := textgen.New(5)
	patterns := gen.Dictionary(64, 4, 12, 26)
	text := gen.Uniform(1<<20, 26)
	a, err := Compile(patterns, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		_ = a.Scan(text, func(pat int32, from, to int) error {
			sink++
			return nil
		})
	}
	_ = sink
}

func BenchmarkMatchInto(b *testing.B) {
	gen := textgen.New(5)
	patterns := gen.Dictionary(64, 4, 12, 26)
	text := gen.Uniform(1<<20, 26)
	a, err := Compile(patterns, Options{})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]core.Match, len(text))
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatchInto(text, out)
	}
}
