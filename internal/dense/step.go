package dense

// Incremental stepping surface for compressed-domain matching
// (internal/czsearch). Scan and MatchInto own the batch loops; a
// token-stream consumer instead advances the automaton byte by byte,
// interleaving transitions with its own history bookkeeping, and relies on
// the DFA invariant that the state after consuming text w is determined by
// the last MaxPatternLen() bytes of w alone. All three methods are
// allocation-free; Outputs returns a view into the packed output table.

// Step returns the state reached from q on input byte b — one pre-resolved
// goto∪failure table load, exactly the transition Scan performs per byte.
func (a *Automaton) Step(q int32, b byte) int32 {
	return a.next[int(q)*int(a.width)+int(a.symClass[b])]
}

// Outputs returns the pattern ids ending at state q, longest first — the
// same list, in the same order, that Scan emits when it enters q. The
// returned slice aliases the automaton's packed table and must not be
// modified.
func (a *Automaton) Outputs(q int32) []int32 {
	return a.outPat[a.outOff[q]:a.outOff[q+1]]
}

// HasOutputs reports whether any pattern ends at state q, without touching
// the output table — the per-byte fast-path check.
func (a *Automaton) HasOutputs(q int32) bool {
	return a.outOff[q] != a.outOff[q+1]
}
