package dense

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot payload codec. The compiled automaton is the one structure in the
// system whose load path must be near-instant — the whole point of persisting
// it is skipping recompilation — so unlike the varint-coded core sections,
// the big arrays here are stored as raw little-endian 32-bit words: decoding
// is a bounds check plus a byte-order copy, no per-element branching.
//
// Layout (all little-endian):
//
//	u32 numStates
//	u32 width
//	u32 numPatterns
//	u32 outLen          (len of outPat)
//	512 bytes           symClass, 256 × u16
//	numStates*width*4   next
//	(numStates+1)*4     outOff
//	outLen*4            outPat
//
// Pattern lengths are not stored: they are re-derived from the patterns
// section of the enclosing snapshot, which also cross-validates numPatterns.

// payloadHeaderBytes is the fixed prefix before the arrays.
const payloadHeaderBytes = 16 + 512

// ErrBadPayload reports a malformed or internally inconsistent dense
// section payload.
var ErrBadPayload = errors.New("dense: bad snapshot payload")

// Encode serializes the automaton into a dense-section payload.
func (a *Automaton) Encode() []byte {
	n := int(a.numStates)
	b := make([]byte, 0, payloadHeaderBytes+4*(len(a.next)+len(a.outOff)+len(a.outPat)))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.numStates))
	b = binary.LittleEndian.AppendUint32(b, uint32(a.width))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(a.patLen)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(a.outPat)))
	for _, c := range a.symClass {
		b = binary.LittleEndian.AppendUint16(b, c)
	}
	b = appendRaw32(b, a.next)
	b = appendRaw32(b, a.outOff[:n+1])
	b = appendRaw32(b, a.outPat)
	return b
}

func appendRaw32(b []byte, vals []int32) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b
}

// PayloadStats reads the shape counters out of an encoded payload without
// restoring the automaton — what `dictpack inspect` prints. Only the fixed
// header and total length are validated.
func PayloadStats(payload []byte) (Stats, error) {
	var st Stats
	if len(payload) < payloadHeaderBytes {
		return st, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadPayload, len(payload), payloadHeaderBytes)
	}
	numStates := int64(binary.LittleEndian.Uint32(payload))
	width := int64(binary.LittleEndian.Uint32(payload[4:]))
	numPatterns := int64(binary.LittleEndian.Uint32(payload[8:]))
	outLen := int64(binary.LittleEndian.Uint32(payload[12:]))
	want := int64(payloadHeaderBytes) + 4*(numStates*width+numStates+1+outLen)
	if numStates < 1 || width < 1 || width > 257 || int64(len(payload)) != want {
		return st, fmt.Errorf("%w: header claims %d states × %d classes, %d out entries (payload %d bytes, want %d)",
			ErrBadPayload, numStates, width, outLen, len(payload), want)
	}
	st.States = int(numStates)
	st.Alphabet = int(width)
	st.Patterns = int(numPatterns)
	st.OutEntries = int(outLen)
	st.TableBytes = numStates * width * 4
	// In-memory footprint of the restored automaton (matches Stats()): the
	// payload itself is 64 bytes off — no patLen array, 16-byte header.
	st.TotalBytes = 4*(numStates*width+numStates+1+outLen+numPatterns) + 512
	return st, nil
}

// Restore rebuilds an automaton from an encoded payload and the pattern set
// of the enclosing snapshot. Every structural invariant is validated —
// transition targets, output offsets and pattern ids in range, symbol
// classes under width, pattern count matching — so a corrupted or
// adversarial payload yields an error, never a panic or an automaton that
// can index out of bounds.
func Restore(payload []byte, patterns [][]byte) (*Automaton, error) {
	st, err := PayloadStats(payload)
	if err != nil {
		return nil, err
	}
	if st.Patterns != len(patterns) {
		return nil, fmt.Errorf("%w: payload built for %d patterns, snapshot has %d",
			ErrBadPayload, st.Patterns, len(patterns))
	}
	a := &Automaton{
		numStates: int32(st.States),
		width:     int32(st.Alphabet),
		patLen:    make([]int32, len(patterns)),
	}
	for id, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: empty pattern %d", ErrBadPayload, id)
		}
		a.patLen[id] = int32(len(p))
		if a.patLen[id] > a.maxPatLen {
			a.maxPatLen = a.patLen[id]
		}
	}
	off := 16
	for i := range a.symClass {
		a.symClass[i] = binary.LittleEndian.Uint16(payload[off:])
		if int32(a.symClass[i]) >= a.width {
			return nil, fmt.Errorf("%w: symbol class %d out of range for byte %d", ErrBadPayload, a.symClass[i], i)
		}
		off += 2
	}
	a.next, off = readRaw32(payload, off, st.States*st.Alphabet)
	a.outOff, off = readRaw32(payload, off, st.States+1)
	a.outPat, _ = readRaw32(payload, off, st.OutEntries)
	for _, t := range a.next {
		if t < 0 || t >= a.numStates {
			return nil, fmt.Errorf("%w: transition target %d out of range", ErrBadPayload, t)
		}
	}
	if a.outOff[0] != 0 || int(a.outOff[st.States]) != st.OutEntries {
		return nil, fmt.Errorf("%w: output offsets do not span the output list", ErrBadPayload)
	}
	for s := 0; s < st.States; s++ {
		if a.outOff[s] > a.outOff[s+1] {
			return nil, fmt.Errorf("%w: output offsets not monotone at state %d", ErrBadPayload, s)
		}
	}
	for _, p := range a.outPat {
		if p < 0 || int(p) >= len(patterns) {
			return nil, fmt.Errorf("%w: output pattern id %d out of range", ErrBadPayload, p)
		}
	}
	return a, nil
}

// readRaw32 copies n little-endian u32s starting at off. Bounds were
// established by PayloadStats' exact-length check.
func readRaw32(b []byte, off, n int) ([]int32, int) {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	return out, off
}
