// Package ahocorasick implements the classical Aho–Corasick automaton (the
// paper's citation [3]): linear-time sequential dictionary matching. It is
// the baseline the parallel algorithm is measured against, and the oracle
// the tests compare the parallel matcher's output to.
package ahocorasick

// Automaton is a goto/fail/output automaton over byte strings.
type Automaton struct {
	next    []map[byte]int32 // goto function per state
	fail    []int32
	ownOut  []int32 // pattern ending exactly at this state, -1 if none
	longest []int32 // longest pattern ending at this state via fail chain, -1
	outLink []int32 // nearest fail-ancestor (inclusive) with ownOut != -1, -1
	patLens []int32 // pattern lengths by pattern index
	depth   []int32
}

// New builds the automaton for the given patterns. Empty patterns are
// rejected. Construction is O(d) for dictionary size d (with hash-map
// transitions, so the alphabet stays unbounded as in the paper's comparison
// model).
func New(patterns [][]byte) *Automaton {
	a := &Automaton{}
	a.addState(0)
	for idx, p := range patterns {
		if len(p) == 0 {
			panic("ahocorasick: empty pattern")
		}
		a.patLens = append(a.patLens, int32(len(p)))
		s := int32(0)
		for _, c := range p {
			t, ok := a.next[s][c]
			if !ok {
				t = int32(len(a.next))
				a.addState(a.depth[s] + 1)
				a.next[s][c] = t
			}
			s = t
		}
		if a.ownOut[s] == -1 {
			a.ownOut[s] = int32(idx) // duplicates keep the first index
		}
	}
	a.buildFailures()
	return a
}

func (a *Automaton) addState(depth int32) {
	a.next = append(a.next, make(map[byte]int32))
	a.fail = append(a.fail, 0)
	a.ownOut = append(a.ownOut, -1)
	a.longest = append(a.longest, -1)
	a.outLink = append(a.outLink, -1)
	a.depth = append(a.depth, depth)
}

func (a *Automaton) buildFailures() {
	finish := func(t int32) {
		f := a.fail[t]
		if a.ownOut[t] != -1 {
			a.longest[t] = a.ownOut[t] // deepest pattern here is itself
			a.outLink[t] = t
		} else {
			a.longest[t] = a.longest[f]
			a.outLink[t] = a.outLink[f]
		}
	}
	queue := make([]int32, 0, len(a.next))
	for _, t := range a.next[0] {
		a.fail[t] = 0
		queue = append(queue, t)
	}
	for _, t := range queue { // depth-1 states
		finish(t)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for c, t := range a.next[s] {
			queue = append(queue, t)
			f := a.fail[s]
			for {
				if nt, ok := a.next[f][c]; ok && nt != t {
					a.fail[t] = nt
					break
				}
				if f == 0 {
					a.fail[t] = 0
					break
				}
				f = a.fail[f]
			}
			finish(t)
		}
	}
}

// NumStates returns the number of automaton states.
func (a *Automaton) NumStates() int { return len(a.next) }

func (a *Automaton) step(s int32, c byte) int32 {
	for {
		if t, ok := a.next[s][c]; ok {
			return t
		}
		if s == 0 {
			return 0
		}
		s = a.fail[s]
	}
}

// Match returns, for each text position i, the index of the longest pattern
// that occurs starting at i, or -1 — the paper's dictionary-matching output
// M. Runs in O(n + occ) where occ is the total number of pattern
// occurrences (output links are walked once per occurrence).
func (a *Automaton) Match(text []byte) []int32 {
	res := make([]int32, len(text))
	for i := range res {
		res[i] = -1
	}
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = a.step(s, text[i])
		for st := a.outLink[s]; st != -1; st = a.outLink[a.fail[st]] {
			p := a.ownOut[st]
			start := i - int(a.patLens[p]) + 1
			if res[start] == -1 || a.patLens[res[start]] < a.patLens[p] {
				res[start] = p
			}
		}
	}
	return res
}

// MatchEnds returns, for each text position i, the index of the longest
// pattern that ends at position i (inclusive), or -1. Runs in O(n).
func (a *Automaton) MatchEnds(text []byte) []int32 {
	res := make([]int32, len(text))
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = a.step(s, text[i])
		res[i] = a.longest[s]
	}
	return res
}

// PatternLen returns the length of pattern idx.
func (a *Automaton) PatternLen(idx int32) int32 { return a.patLens[idx] }
