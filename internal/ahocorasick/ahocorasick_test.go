package ahocorasick

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// bruteMatch computes M[i] = longest pattern starting at i by direct
// comparison.
func bruteMatch(patterns [][]byte, text []byte) []int32 {
	res := make([]int32, len(text))
	for i := range res {
		res[i] = -1
	}
	for idx, p := range patterns {
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(p)], p) {
				if res[i] == -1 || len(patterns[res[i]]) < len(p) {
					res[i] = int32(idx)
				}
			}
		}
	}
	return res
}

func bruteMatchEnds(patterns [][]byte, text []byte) []int32 {
	res := make([]int32, len(text))
	for i := range res {
		res[i] = -1
	}
	for idx, p := range patterns {
		for i := 0; i+len(p) <= len(text); i++ {
			e := i + len(p) - 1
			if bytes.Equal(text[i:i+len(p)], p) {
				if res[e] == -1 || len(patterns[res[e]]) < len(p) {
					res[e] = int32(idx)
				}
			}
		}
	}
	return res
}

func checkSame(t *testing.T, tag string, patterns [][]byte, got, want []int32) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if (g == -1) != (w == -1) {
			t.Fatalf("%s pos %d: got %d want %d", tag, i, g, w)
		}
		if g != -1 && !bytes.Equal(patterns[g], patterns[w]) {
			t.Fatalf("%s pos %d: got pattern %q want %q", tag, i, patterns[g], patterns[w])
		}
	}
}

func TestMatchKnownCases(t *testing.T) {
	cases := []struct {
		patterns []string
		text     string
	}{
		{[]string{"he", "she", "his", "hers"}, "ushers"},
		{[]string{"a", "ab", "abc", "bc", "c"}, "abcabc"},
		{[]string{"bc", "abc"}, "abc"}, // shadowed occurrence regression
		{[]string{"aa", "aaa", "aaaa"}, "aaaaaaa"},
		{[]string{"x"}, "yyy"},
		{[]string{"ab"}, "ab"},
		{[]string{"ab", "ab"}, "abab"}, // duplicate patterns
	}
	for _, c := range cases {
		var ps [][]byte
		for _, p := range c.patterns {
			ps = append(ps, []byte(p))
		}
		a := New(ps)
		text := []byte(c.text)
		checkSame(t, "match", ps, a.Match(text), bruteMatch(ps, text))
		checkSame(t, "ends", ps, a.MatchEnds(text), bruteMatchEnds(ps, text))
	}
}

func TestMatchRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	for trial := 0; trial < 60; trial++ {
		sigma := 2 + rng.IntN(3)
		numPat := 1 + rng.IntN(8)
		patterns := make([][]byte, numPat)
		for i := range patterns {
			l := 1 + rng.IntN(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.IntN(sigma))
			}
			patterns[i] = p
		}
		text := make([]byte, 50+rng.IntN(200))
		for j := range text {
			text[j] = byte('a' + rng.IntN(sigma))
		}
		a := New(patterns)
		checkSame(t, "match", patterns, a.Match(text), bruteMatch(patterns, text))
		checkSame(t, "ends", patterns, a.MatchEnds(text), bruteMatchEnds(patterns, text))
	}
}

func TestEmptyTextAndStates(t *testing.T) {
	a := New([][]byte{[]byte("abc")})
	if got := a.Match(nil); len(got) != 0 {
		t.Fatal("match on empty text")
	}
	if a.NumStates() != 4 {
		t.Fatalf("states = %d want 4", a.NumStates())
	}
	if a.PatternLen(0) != 3 {
		t.Fatalf("patternLen = %d", a.PatternLen(0))
	}
}

func TestEmptyPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty pattern did not panic")
		}
	}()
	New([][]byte{{}})
}

func TestBinaryAlphabetDense(t *testing.T) {
	// All binary strings of length <= 4 as the dictionary.
	var patterns [][]byte
	for l := 1; l <= 4; l++ {
		for v := 0; v < 1<<l; v++ {
			p := make([]byte, l)
			for j := 0; j < l; j++ {
				p[j] = byte('0' + (v>>j)&1)
			}
			patterns = append(patterns, p)
		}
	}
	a := New(patterns)
	text := []byte("0110100110010110")
	got := a.Match(text)
	// Every position except the last 3 must match a length-4 pattern.
	for i := 0; i < len(text); i++ {
		wantLen := min(4, len(text)-i)
		if int(a.PatternLen(got[i])) != wantLen {
			t.Fatalf("pos %d matched length %d want %d", i, a.PatternLen(got[i]), wantLen)
		}
	}
}
