package cluster

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestHealthCloseNoGoroutineLeak cycles the background prober 50 times
// and asserts the goroutine count settles back to where it started: a
// prober whose loop survives Close would accumulate one goroutine per
// server start/stop cycle.
func TestHealthCloseNoGoroutineLeak(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	defer ts.Close()
	// A private transport so idle keep-alive connections can be torn
	// down deterministically; the shared DefaultTransport would pool
	// connection goroutines across iterations and muddy the count.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Timeout: time.Second, Transport: tr}
	peers := []Peer{{Name: "p1", URL: ts.URL}, {Name: "p2", URL: ts.URL}}

	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		h := NewHealth(peers, client, 5*time.Millisecond)
		h.Start()
		if i%3 == 0 {
			time.Sleep(2 * time.Millisecond) // let some probes actually run
		}
		h.Close()
	}
	tr.CloseIdleConnections()

	// Settle: probe goroutines mid-flight at Close time may take a
	// moment to observe cancellation and exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 50 start/stop cycles — prober leak",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHealthCloseIdempotent guards the shutdown path Server.Close relies
// on: Close before Start, double Close, and Close-then-Start must all be
// safe.
func TestHealthCloseIdempotent(t *testing.T) {
	h := NewHealth([]Peer{{Name: "p", URL: "http://127.0.0.1:1"}}, nil, time.Hour)
	h.Close()
	h.Close()
	h.Start() // startOnce already burned by Close; must not spawn a loop
	h.Close()
}
