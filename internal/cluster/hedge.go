package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Hedged request execution. A proxied request has several equally good
// answers — every replica of the dictionary — so tail latency is a choice:
// send to one replica and inherit its worst case, or hedge. The Hedger
// sends to the first candidate, arms a timer for After, and if no verdict
// arrived in time fires the same request at the next candidate; the first
// acceptable response wins and every other in-flight copy is cancelled.
// A transport error or 5xx fails over to the next candidate immediately —
// the timer only governs the silent-slowness case. Requests routed this way
// are reads (match/parse queries), so duplicating them is safe.

// Hedger executes one request against an ordered candidate list with
// hedging and failover.
type Hedger struct {
	Client *http.Client
	// After is the latency budget before a second copy is sent to the next
	// candidate (and a third after twice the budget, and so on). Zero
	// disables hedging: candidates are then tried strictly one at a time,
	// advancing only on error.
	After time.Duration
	// OnError, if set, is called once per attempt that dies of a transport
	// error (never for HTTP responses, even 5xx). The router hooks it to
	// Health.MarkDown so the next request already avoids the dead peer.
	OnError func(p Peer, err error)
	// OnSlow, if set, is called when the hedge timer fires against a
	// candidate that was launched but has produced neither headers nor an
	// error — an affirmative silence signal, recorded before the eventual
	// cancellation. It is the only evidence a black-holed peer ever
	// produces from serving traffic: its hedged losers die of
	// context.Canceled, which deliberately counts as nothing. A peer that
	// later answers (and merely loses the race) is credited at header
	// receipt, so sustained strikes single out the truly silent.
	OnSlow func(p Peer)
}

// Result is a won hedged exchange. The caller must consume Resp.Body and
// then call Release, which cancels the per-attempt contexts (including any
// straggling losers).
type Result struct {
	Resp     *http.Response
	Peer     Peer // who answered
	Index    int  // candidate position of the winner (0 = primary)
	Attempts int  // copies actually sent
	Hedged   bool // a timer-triggered extra copy was sent
	release  func()
}

// Release cancels every per-attempt context. Call after Resp.Body is
// consumed.
func (r *Result) Release() {
	if r.release != nil {
		r.release()
	}
}

type attemptOutcome struct {
	index int
	resp  *http.Response
	err   error
}

// acceptable reports whether a response settles the exchange: anything
// below 500 is the resource's answer (including 4xx — another replica would
// say the same); 5xx means this replica is in trouble and a sibling may
// well be fine.
func acceptable(resp *http.Response) bool { return resp.StatusCode < 500 }

// Do executes the exchange. build constructs a fresh request per candidate
// (bodies cannot be shared between copies) against the candidate's base
// URL, using the context it is given. On success the returned Result holds
// the winning response; on total failure the error wraps the last attempt's.
func (h *Hedger) Do(ctx context.Context, candidates []Peer, build func(ctx context.Context, p Peer) (*http.Request, error)) (*Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("cluster: no candidates")
	}
	results := make(chan attemptOutcome, len(candidates))
	cancels := make([]context.CancelFunc, len(candidates))
	releaseAll := func() {
		for _, c := range cancels {
			if c != nil {
				c()
			}
		}
	}

	launched := 0
	launch := func() {
		i := launched
		launched++
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		go func() {
			req, err := build(actx, candidates[i])
			if err != nil {
				results <- attemptOutcome{index: i, err: err}
				return
			}
			resp, err := h.Client.Do(req)
			results <- attemptOutcome{index: i, resp: resp, err: err}
		}()
	}
	launch()

	// The timer channel is nil (never fires) when hedging is off.
	var timerC <-chan time.Time
	var timer *time.Timer
	if h.After > 0 {
		timer = time.NewTimer(h.After)
		timerC = timer.C
		defer timer.Stop()
	}

	hedged := false
	settled := 0
	settledIdx := make([]bool, len(candidates))
	var lastLoser *http.Response
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			releaseAll()
			drain(results, launched-settled)
			if lastLoser != nil {
				closeBody(lastLoser)
			}
			return nil, ctx.Err()
		case <-timerC:
			if h.OnSlow != nil && ctx.Err() == nil {
				for i := 0; i < launched; i++ {
					if !settledIdx[i] {
						h.OnSlow(candidates[i])
					}
				}
			}
			if launched < len(candidates) {
				hedged = true
				launch()
				timer.Reset(h.After)
			}
		case out := <-results:
			settled++
			settledIdx[out.index] = true
			if out.err == nil && acceptable(out.resp) {
				if lastLoser != nil {
					closeBody(lastLoser)
				}
				// Reap stragglers in the background, then cancel their
				// contexts; the winner's context stays live until Release.
				win := out.index
				remaining := launched - settled
				release := func() {
					go func() {
						drain(results, remaining)
						releaseAll()
					}()
				}
				return &Result{
					Resp:     out.resp,
					Peer:     candidates[win],
					Index:    win,
					Attempts: launched,
					Hedged:   hedged,
					release:  release,
				}, nil
			}
			// Failed attempt: remember it, fail over to the next candidate
			// immediately if one is left.
			if out.err != nil {
				lastErr = out.err
				if h.OnError != nil && ctx.Err() == nil {
					h.OnError(candidates[out.index], out.err)
				}
			} else {
				if lastLoser != nil {
					closeBody(lastLoser)
				}
				lastLoser = out.resp
			}
			if launched < len(candidates) {
				launch()
				if timer != nil {
					timer.Reset(h.After)
				}
				continue
			}
			if settled == launched {
				// Everyone failed. A concrete 5xx response beats a transport
				// error — the client then sees the replica's real answer.
				if lastLoser != nil {
					releaseStraggler := func() { releaseAll() }
					return &Result{
						Resp:     lastLoser,
						Peer:     candidates[len(candidates)-1],
						Index:    len(candidates) - 1,
						Attempts: launched,
						Hedged:   hedged,
						release:  releaseStraggler,
					}, nil
				}
				releaseAll()
				return nil, fmt.Errorf("cluster: all %d candidates failed: %w", launched, lastErr)
			}
		}
	}
}

// drain consumes n straggler outcomes, closing their response bodies.
func drain(results <-chan attemptOutcome, n int) {
	for i := 0; i < n; i++ {
		out := <-results
		if out.resp != nil {
			closeBody(out.resp)
		}
	}
}

func closeBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}
