package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Peer health states. The router prefers Ready peers, falls back to
// Degraded ones (a degraded matchd still answers — its breaker 503s are
// per-dictionary), and skips Down peers except as a last resort.
type State int32

const (
	StateUnknown  State = iota // never probed
	StateReady                 // /readyz answered 200
	StateDegraded              // /readyz answered 503 (breaker open, store rot, ...)
	StateDown                  // transport error or non-readyz status
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// DefaultProbeInterval is how often the background prober re-checks each
// peer. One second bounds the window in which the router keeps trying a
// dead peer (hedging covers requests inside that window).
const DefaultProbeInterval = time.Second

// peerHealth is one peer's mutable probe state.
type peerHealth struct {
	state     atomic.Int32 // State
	lastProbe atomic.Int64 // unix nanos of the last completed probe
}

// Health probes peers' /readyz endpoints and serves the freshest known
// state. Probing is lazy-started: the first Start (or ProbeAll) call spins
// the background loop; Close stops it. All methods are safe for concurrent
// use.
type Health struct {
	client   *http.Client
	interval time.Duration
	peers    map[string]*peerHealth // keyed by peer name; immutable map
	urls     map[string]string

	transitions atomic.Int64 // state changes observed across all peers

	startOnce sync.Once
	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
}

// NewHealth builds a tracker over the given peers (usually
// Membership.Others — a node does not probe itself). client == nil uses a
// dedicated client with a probe-scale timeout; interval <= 0 selects
// DefaultProbeInterval.
func NewHealth(peers []Peer, client *http.Client, interval time.Duration) *Health {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	h := &Health{
		client:   client,
		interval: interval,
		peers:    make(map[string]*peerHealth, len(peers)),
		urls:     make(map[string]string, len(peers)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range peers {
		h.peers[p.Name] = &peerHealth{}
		h.urls[p.Name] = p.URL
	}
	return h
}

// Start launches the background probe loop (idempotent). An immediate full
// probe runs first so routing decisions right after startup see real states
// instead of Unknown.
func (h *Health) Start() {
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			h.ProbeAll()
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					h.ProbeAll()
				}
			}
		}()
	})
}

// Close stops the probe loop and waits for it to exit. Safe to call even if
// Start never ran, and more than once.
func (h *Health) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // loop never started: unblock the wait
	<-h.done
}

// ProbeAll probes every peer once, concurrently, and returns when all
// probes complete.
func (h *Health) ProbeAll() {
	var wg sync.WaitGroup
	for name := range h.peers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			h.Probe(name)
		}(name)
	}
	wg.Wait()
}

// Probe checks one peer's /readyz now and returns the new state.
func (h *Health) Probe(name string) State {
	ph, ok := h.peers[name]
	if !ok {
		return StateUnknown
	}
	st := h.probeURL(h.urls[name])
	old := State(ph.state.Swap(int32(st)))
	ph.lastProbe.Store(time.Now().UnixNano())
	if old != st {
		h.transitions.Add(1)
	}
	return st
}

func (h *Health) probeURL(base string) State {
	ctx, cancel := context.WithTimeout(context.Background(), h.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return StateDown
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return StateDown
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return StateReady
	case http.StatusServiceUnavailable:
		return StateDegraded
	default:
		return StateDown
	}
}

// State returns the last probed state for a peer (StateUnknown for an
// unprobed or unknown peer).
func (h *Health) State(name string) State {
	ph, ok := h.peers[name]
	if !ok {
		return StateUnknown
	}
	return State(ph.state.Load())
}

// MarkDown force-sets a peer Down without a probe — the router calls it on
// a transport error so the very next request already avoids the peer
// instead of waiting out the probe interval.
func (h *Health) MarkDown(name string) {
	ph, ok := h.peers[name]
	if !ok {
		return
	}
	if State(ph.state.Swap(int32(StateDown))) != StateDown {
		h.transitions.Add(1)
	}
}

// Transitions returns how many peer state changes the tracker has observed.
func (h *Health) Transitions() int64 { return h.transitions.Load() }

// PeerStatus is one row of the /v1/cluster peers table.
type PeerStatus struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	State       string `json:"state"`
	LastProbeMs int64  `json:"lastProbeMs"` // ms since the last probe; -1 = never
}

// Status reports every tracked peer's current state, sorted by name.
func (h *Health) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(h.peers))
	for name, ph := range h.peers {
		ps := PeerStatus{
			Name:  name,
			URL:   h.urls[name],
			State: State(ph.state.Load()).String(),
		}
		if t := ph.lastProbe.Load(); t == 0 {
			ps.LastProbeMs = -1
		} else {
			ps.LastProbeMs = time.Since(time.Unix(0, t)).Milliseconds()
		}
		out = append(out, ps)
	}
	sortPeerStatus(out)
	return out
}

func sortPeerStatus(s []PeerStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
