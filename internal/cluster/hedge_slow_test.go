package cluster

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// slowRecorder collects OnSlow strikes by peer name.
type slowRecorder struct {
	mu      sync.Mutex
	strikes map[string]int
}

func (r *slowRecorder) onSlow(p Peer) {
	r.mu.Lock()
	r.strikes[p.Name]++
	r.mu.Unlock()
}

func (r *slowRecorder) get(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.strikes[name]
}

func TestHedgerOnSlowStrikesSilentPrimary(t *testing.T) {
	// The primary never answers within the exchange; the hedged
	// secondary wins. OnSlow must fire for the silent primary — that
	// strike is the only breaker signal a black-holed peer produces —
	// and never for the peer that answered.
	s1 := hedgeServer(t, "silent", 10*time.Second, 200, nil)
	defer s1.Close()
	s2 := hedgeServer(t, "fast", 0, 200, nil)
	defer s2.Close()
	rec := &slowRecorder{strikes: map[string]int{}}
	h := &Hedger{Client: http.DefaultClient, After: 15 * time.Millisecond, OnSlow: rec.onSlow}
	res, err := h.Do(context.Background(), []Peer{{Name: "silent", URL: s1.URL}, {Name: "fast", URL: s2.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	res.Resp.Body.Close()
	res.Release()
	if res.Peer.Name != "fast" {
		t.Fatalf("winner %s, want fast", res.Peer.Name)
	}
	if got := rec.get("silent"); got < 1 {
		t.Fatal("no OnSlow strike against the silent primary")
	}
	if got := rec.get("fast"); got != 0 {
		t.Fatalf("%d OnSlow strikes against the winning peer, want 0", got)
	}
}

func TestHedgerOnSlowNotCalledForFastPrimary(t *testing.T) {
	s1 := hedgeServer(t, "fast", 0, 200, nil)
	defer s1.Close()
	rec := &slowRecorder{strikes: map[string]int{}}
	h := &Hedger{Client: http.DefaultClient, After: 100 * time.Millisecond, OnSlow: rec.onSlow}
	for i := 0; i < 3; i++ {
		res, err := h.Do(context.Background(), []Peer{{Name: "fast", URL: s1.URL}}, buildGet(""))
		if err != nil {
			t.Fatal(err)
		}
		res.Resp.Body.Close()
		res.Release()
	}
	if got := rec.get("fast"); got != 0 {
		t.Fatalf("%d strikes against a peer that always answered in time", got)
	}
}

func TestHedgerOnSlowNotCalledWhenHedgingDisabled(t *testing.T) {
	// After == 0 means no timer, so no strike source: candidates are
	// tried one at a time and slowness is indistinguishable from work.
	s1 := hedgeServer(t, "slowish", 30*time.Millisecond, 200, nil)
	defer s1.Close()
	rec := &slowRecorder{strikes: map[string]int{}}
	h := &Hedger{Client: http.DefaultClient, After: 0, OnSlow: rec.onSlow}
	res, err := h.Do(context.Background(), []Peer{{Name: "slowish", URL: s1.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	res.Resp.Body.Close()
	res.Release()
	if got := rec.get("slowish"); got != 0 {
		t.Fatalf("%d strikes with hedging disabled", got)
	}
}
