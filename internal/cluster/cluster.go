package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Peer is one static-membership cluster member: a stable name (the identity
// hashed onto the ring) and the base URL its matchd API listens on.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParsePeers parses the -cluster-peers flag syntax: a comma-separated list
// of name=url entries, e.g.
//
//	n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080,n3=http://10.0.0.3:8080
//
// Names must be unique; URLs must be absolute http(s) URLs. The bare-URL
// shorthand (no "name=") derives the name from the URL's host:port.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, raw, ok := strings.Cut(ent, "=")
		if !ok {
			raw = ent
			name = ""
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme != "http" && u.Scheme != "https" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: want name=http://host:port", ent)
		}
		if name == "" {
			name = u.Host
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		seen[name] = true
		peers = append(peers, Peer{Name: name, URL: strings.TrimRight(u.String(), "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
	return peers, nil
}

// Membership is the static view one node holds of the cluster: the full
// peer table, its own identity, and the placement ring built from both.
type Membership struct {
	Self  string
	peers map[string]Peer // by name
	ring  *Ring
}

// NewMembership validates the peer table (which must include self) and
// builds the placement ring. replicas is the owner count per dictionary,
// clamped to the cluster size; vnodes <= 0 selects DefaultVirtualNodes.
func NewMembership(peers []Peer, self string, vnodes, replicas int) (*Membership, error) {
	byName := make(map[string]Peer, len(peers))
	names := make([]string, 0, len(peers))
	for _, p := range peers {
		if _, dup := byName[p.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		byName[p.Name] = p
		names = append(names, p.Name)
	}
	if _, ok := byName[self]; !ok {
		return nil, fmt.Errorf("cluster: self %q is not in the peer table", self)
	}
	ring, err := NewRing(names, vnodes, replicas)
	if err != nil {
		return nil, err
	}
	return &Membership{Self: self, peers: byName, ring: ring}, nil
}

// Ring returns the placement ring.
func (m *Membership) Ring() *Ring { return m.ring }

// Peer returns the peer record for name.
func (m *Membership) Peer(name string) (Peer, bool) {
	p, ok := m.peers[name]
	return p, ok
}

// Peers returns all peers sorted by name.
func (m *Membership) Peers() []Peer {
	out := make([]Peer, 0, len(m.peers))
	for _, name := range m.ring.Peers() {
		out = append(out, m.peers[name])
	}
	return out
}

// Others returns all peers except self, sorted by name.
func (m *Membership) Others() []Peer {
	out := make([]Peer, 0, len(m.peers)-1)
	for _, p := range m.Peers() {
		if p.Name != m.Self {
			out = append(out, p)
		}
	}
	return out
}

// Owners returns the owner peers for a dictionary id, primary first.
func (m *Membership) Owners(id string) []Peer {
	names := m.ring.Owners(id)
	out := make([]Peer, len(names))
	for i, n := range names {
		out[i] = m.peers[n]
	}
	return out
}

// OwnsSelf reports whether this node is among the owners of id.
func (m *Membership) OwnsSelf(id string) bool { return m.ring.IsOwner(id, m.Self) }
