package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	peers := []string{"n1", "n2", "n3", "n4", "n5"}
	r1, err := NewRing(peers, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n5", "n3", "n1", "n4", "n2"}, 0, 3) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("dict-%d", i)
		o1, o2 := r1.Owners(key), r2.Owners(key)
		if len(o1) != 3 {
			t.Fatalf("key %s: %d owners, want 3", key, len(o1))
		}
		seen := map[string]bool{}
		for j, o := range o1 {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", key, o)
			}
			seen[o] = true
			if o != o2[j] {
				t.Fatalf("key %s: owner list depends on peer-table order: %v vs %v", key, o1, o2)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"n1", "n2", "n3"}
	r, err := NewRing(peers, DefaultVirtualNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("%064x", i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("peer %s primary share %.2f badly unbalanced (counts %v)", p, share, counts)
		}
	}
}

func TestRingReplicasClamped(t *testing.T) {
	r, err := NewRing([]string{"a", "b"}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Owners("x")); got != 2 {
		t.Fatalf("owners = %d, want clamped 2", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n2=http://h2:8080, n1=http://h1:8080,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "n1" || peers[1].URL != "http://h2:8080" {
		t.Fatalf("parsed %+v", peers)
	}
	if _, err := ParsePeers("n1=http://h:1,n1=http://h:2"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := ParsePeers("bogus"); err == nil {
		t.Fatal("non-URL accepted")
	}
	if _, err := ParsePeers(""); err == nil {
		t.Fatal("empty list accepted")
	}
	// Bare-URL shorthand names the peer after host:port.
	peers, err = ParsePeers("http://h3:9090")
	if err != nil || peers[0].Name != "h3:9090" {
		t.Fatalf("shorthand: %+v err %v", peers, err)
	}
}

func TestMembershipSelfMustBeMember(t *testing.T) {
	peers := []Peer{{Name: "a", URL: "http://a:1"}, {Name: "b", URL: "http://b:1"}}
	if _, err := NewMembership(peers, "zz", 8, 2); err == nil {
		t.Fatal("foreign self accepted")
	}
	m, err := NewMembership(peers, "a", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Others(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("others = %+v", got)
	}
	owners := m.Owners("some-dict")
	if len(owners) != 2 {
		t.Fatalf("owners = %+v", owners)
	}
}

func TestHealthStatesAndTransitions(t *testing.T) {
	var mode atomic.Int32 // 0 ready, 1 degraded, 2 down(404)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		switch mode.Load() {
		case 0:
			w.WriteHeader(http.StatusOK)
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	h := NewHealth([]Peer{{Name: "p", URL: ts.URL}}, nil, time.Hour)
	defer h.Close()
	if st := h.State("p"); st != StateUnknown {
		t.Fatalf("initial state %v", st)
	}
	if st := h.Probe("p"); st != StateReady {
		t.Fatalf("ready probe → %v", st)
	}
	mode.Store(1)
	if st := h.Probe("p"); st != StateDegraded {
		t.Fatalf("degraded probe → %v", st)
	}
	mode.Store(2)
	if st := h.Probe("p"); st != StateDown {
		t.Fatalf("404 probe → %v", st)
	}
	if got := h.Transitions(); got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
	h.MarkDown("p") // already down: no transition
	if got := h.Transitions(); got != 3 {
		t.Fatalf("transitions after redundant MarkDown = %d, want 3", got)
	}
	st := h.Status()
	if len(st) != 1 || st[0].State != "down" || st[0].LastProbeMs < 0 {
		t.Fatalf("status %+v", st)
	}
}

func TestHealthDownOnTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens now
	h := NewHealth([]Peer{{Name: "gone", URL: url}}, nil, time.Hour)
	defer h.Close()
	if st := h.Probe("gone"); st != StateDown {
		t.Fatalf("probe of closed server → %v", st)
	}
}

// hedgeServer answers after delay with its own name.
func hedgeServer(t *testing.T, name string, delay time.Duration, status int, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(status)
		fmt.Fprint(w, name)
	}))
}

func buildGet(url string) func(ctx context.Context, p Peer) (*http.Request, error) {
	_ = url
	return func(ctx context.Context, p Peer) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/x", nil)
	}
}

func TestHedgerFastPrimaryWinsWithoutHedge(t *testing.T) {
	var hits2 atomic.Int64
	s1 := hedgeServer(t, "one", 0, 200, nil)
	defer s1.Close()
	s2 := hedgeServer(t, "two", 0, 200, &hits2)
	defer s2.Close()
	h := &Hedger{Client: http.DefaultClient, After: 200 * time.Millisecond}
	res, err := h.Do(context.Background(), []Peer{{Name: "one", URL: s1.URL}, {Name: "two", URL: s2.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	res.Resp.Body.Close()
	if res.Peer.Name != "one" || res.Hedged || res.Attempts != 1 {
		t.Fatalf("result %+v", res)
	}
	if hits2.Load() != 0 {
		t.Fatal("secondary was contacted although primary answered fast")
	}
}

func TestHedgerSlowPrimaryHedgeWins(t *testing.T) {
	s1 := hedgeServer(t, "slow", 2*time.Second, 200, nil)
	defer s1.Close()
	s2 := hedgeServer(t, "fast", 0, 200, nil)
	defer s2.Close()
	h := &Hedger{Client: http.DefaultClient, After: 20 * time.Millisecond}
	t0 := time.Now()
	res, err := h.Do(context.Background(), []Peer{{Name: "slow", URL: s1.URL}, {Name: "fast", URL: s2.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	res.Resp.Body.Close()
	if res.Peer.Name != "fast" || !res.Hedged || res.Attempts != 2 || res.Index != 1 {
		t.Fatalf("result %+v", res)
	}
	if wall := time.Since(t0); wall > time.Second {
		t.Fatalf("hedged exchange took %v — waited for the slow primary", wall)
	}
}

func TestHedgerImmediateFailoverOn5xx(t *testing.T) {
	s1 := hedgeServer(t, "sick", 0, 503, nil)
	defer s1.Close()
	s2 := hedgeServer(t, "ok", 0, 200, nil)
	defer s2.Close()
	// Hedging disabled (After=0): failover must still advance on a 5xx.
	h := &Hedger{Client: http.DefaultClient, After: 0}
	res, err := h.Do(context.Background(), []Peer{{Name: "sick", URL: s1.URL}, {Name: "ok", URL: s2.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	res.Resp.Body.Close()
	if res.Peer.Name != "ok" || res.Resp.StatusCode != 200 || res.Hedged {
		t.Fatalf("result %+v status %d", res, res.Resp.StatusCode)
	}
}

func TestHedgerAllFailedReturnsLast5xx(t *testing.T) {
	s1 := hedgeServer(t, "a", 0, 503, nil)
	defer s1.Close()
	s2 := hedgeServer(t, "b", 0, 500, nil)
	defer s2.Close()
	h := &Hedger{Client: http.DefaultClient, After: 10 * time.Millisecond}
	res, err := h.Do(context.Background(), []Peer{{Name: "a", URL: s1.URL}, {Name: "b", URL: s2.URL}}, buildGet(""))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	res.Resp.Body.Close()
	if res.Resp.StatusCode < 500 {
		t.Fatalf("want a 5xx surfaced, got %d", res.Resp.StatusCode)
	}
}

func TestHedgerAllTransportErrors(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close()
	h := &Hedger{Client: http.DefaultClient, After: time.Millisecond}
	_, err := h.Do(context.Background(), []Peer{{Name: "x", URL: url}, {Name: "y", URL: url}}, buildGet(""))
	if err == nil {
		t.Fatal("want error when every candidate is unreachable")
	}
}

func TestHedgerContextCancel(t *testing.T) {
	s1 := hedgeServer(t, "slow", 2*time.Second, 200, nil)
	defer s1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	h := &Hedger{Client: http.DefaultClient, After: time.Second}
	if _, err := h.Do(ctx, []Peer{{Name: "slow", URL: s1.URL}}, buildGet("")); err == nil {
		t.Fatal("want context error")
	}
}
