// Package cluster is the membership and placement layer for running matchd
// as a sharded, replicated cluster (DESIGN.md §15). It answers three
// questions the serving layer (internal/server) asks per request:
//
//   - Placement: which nodes own dictionary id X? A consistent-hash ring
//     with virtual nodes (ring.go) maps every id to an ordered list of R
//     distinct owners, identically on every node — membership is static, so
//     no coordination protocol is needed to agree on it.
//   - Health: which peers are worth sending a request to right now? A
//     background prober (health.go) polls each peer's /readyz and exposes
//     ready/degraded/down states with transition counters.
//   - Hedging: how do we hide a slow or freshly dead replica? A hedged
//     executor (hedge.go) fires the request at the first candidate, arms a
//     timer, fires a second copy at the next candidate if the first has not
//     answered within the latency budget, and cancels the losers.
//
// The economics mirror the paper's: §3 preprocessing is paid once, on one
// owner, and the resulting snapshot bundle (internal/persist DMSNAP) is what
// ships between nodes — replicas restore tables, they never re-preprocess,
// which is the same preprocess-once/match-many invariant the single-node
// warm start already pins.
//
// Only the standard library is used.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per peer. 128 keeps the
// expected per-node share within a few percent of uniform for small
// clusters while the full ring (N×128 points) still sorts in microseconds.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a static peer set. Every
// node builds the same ring from the same peer table, so placement decisions
// agree cluster-wide with zero coordination.
type Ring struct {
	peers    []string // distinct peer names, sorted (for introspection)
	points   []ringPoint
	replicas int // owners per key (clamped to len(peers))
}

type ringPoint struct {
	hash uint64
	peer int32 // index into peers
}

// NewRing builds a ring placing each named peer at vnodes points. replicas
// is the owner-list length Owners returns; it is clamped to the peer count.
func NewRing(peers []string, vnodes, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", sorted[i])
		}
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(sorted) {
		replicas = len(sorted)
	}
	r := &Ring{
		peers:    sorted,
		points:   make([]ringPoint, 0, len(sorted)*vnodes),
		replicas: replicas,
	}
	for pi, name := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: mix64(hashString(fmt.Sprintf("%s#%d", name, v))),
				peer: int32(pi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hashString is FNV-1a 64 — stable across processes and Go versions, which
// is the property placement needs (maphash would differ per process).
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer. FNV-1a alone distributes the short,
// highly similar "name#vnode" strings unevenly around the ring (adjacent
// vnode numbers land near each other); the finalizer's avalanche fixes the
// per-peer share without giving up cross-process stability.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Peers returns the sorted peer names on the ring.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Replicas returns the configured owner-list length.
func (r *Ring) Replicas() int { return r.replicas }

// VirtualNodes returns the ring points per peer.
func (r *Ring) VirtualNodes() int { return len(r.points) / len(r.peers) }

// Owners returns the replicas distinct peers owning key, primary first:
// the ring is walked clockwise from hash(key) and each new peer encountered
// joins the list. Every node computes the same list for the same key.
func (r *Ring) Owners(key string) []string {
	owners := make([]string, 0, r.replicas)
	r.ownersAppend(key, &owners)
	return owners
}

func (r *Ring) ownersAppend(key string, owners *[]string) {
	h := mix64(hashString(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(*owners) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.peer] {
			continue
		}
		seen[p.peer] = true
		*owners = append(*owners, r.peers[p.peer])
	}
}

// IsOwner reports whether peer is among the owners of key.
func (r *Ring) IsOwner(key, peer string) bool {
	for _, o := range r.Owners(key) {
		if o == peer {
			return true
		}
	}
	return false
}

// Primary returns the first owner of key.
func (r *Ring) Primary(key string) string { return r.Owners(key)[0] }
