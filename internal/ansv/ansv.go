// Package ansv solves the all-nearest-smaller-values problem (the paper's
// Lemma 2.4, Berkman–Breslauer–Galil–Schieber–Vishkin): for every position i
// of an array, find the nearest j < i with A[j] < A[i] (and symmetrically to
// the right).
//
// The parallel implementation answers each position independently by binary
// searching with O(1) range-minimum probes: the predicate
// "min(A[j..i-1]) < A[i]" is monotone in j, so the nearest smaller value sits
// at the boundary. That is O(log n) depth and O(n log n) work — a documented
// substitution (DESIGN.md §4) for the O(n)-work merging algorithm, which
// changes no downstream interface. A linear sequential stack version is
// provided as the oracle and as the fast path on one processor.
package ansv

import (
	"repro/internal/pram"
	"repro/internal/rmq"
)

// LeftSmaller returns, for each i, the largest j < i with a[j] < a[i], or -1
// if none exists.
func LeftSmaller(m *pram.Machine, a []int64) []int {
	n := len(a)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if m.Sequential() {
		m.Account(int64(n), int64(n)) // stack pass: linear work, linear depth
		leftSeq(a, out)
		return out
	}
	t := rmq.NewMin(m, a)
	logn := int64(1)
	for 1<<logn < n {
		logn++
	}
	m.ParallelForCost(n, logn, func(i int) {
		out[i] = -1
		if i == 0 || t.Query(0, i-1) >= a[i] {
			return
		}
		// Largest j in [0, i-1] with a[j] < a[i]: binary search the boundary
		// of the monotone predicate min(a[j..i-1]) < a[i].
		lo, hi := 0, i-1 // invariant: predicate true at lo, answer in [lo,hi]
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if t.Query(mid, i-1) < a[i] {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		// a[lo..i-1] has min < a[i] and a[lo+1..i-1] does not, so the
		// nearest smaller element is at position lo.
		out[i] = lo
	})
	return out
}

// RightSmaller returns, for each i, the smallest j > i with a[j] < a[i], or
// n if none exists.
func RightSmaller(m *pram.Machine, a []int64) []int {
	n := len(a)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if m.Sequential() {
		m.Account(int64(n), int64(n))
		rightSeq(a, out)
		return out
	}
	t := rmq.NewMin(m, a)
	logn := int64(1)
	for 1<<logn < n {
		logn++
	}
	m.ParallelForCost(n, logn, func(i int) {
		out[i] = n
		if i == n-1 || t.Query(i+1, n-1) >= a[i] {
			return
		}
		lo, hi := i+1, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if t.Query(i+1, mid) < a[i] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i] = lo
	})
	return out
}

// LeftSmallerOrEqual returns, for each i, the largest j < i with
// a[j] <= a[i], or -1 if none. Together with the strict variants this is
// what the Cartesian-tree construction of the suffix tree needs to break
// ties among equal LCP values consistently.
func LeftSmallerOrEqual(m *pram.Machine, a []int64) []int {
	n := len(a)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if m.Sequential() {
		m.Account(int64(n), int64(n))
		var stack []int
		for i := range a {
			for len(stack) > 0 && a[stack[len(stack)-1]] > a[i] {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				out[i] = -1
			} else {
				out[i] = stack[len(stack)-1]
			}
			stack = append(stack, i)
		}
		return out
	}
	t := rmq.NewMin(m, a)
	logn := int64(1)
	for 1<<logn < n {
		logn++
	}
	m.ParallelForCost(n, logn, func(i int) {
		out[i] = -1
		if i == 0 || t.Query(0, i-1) > a[i] {
			return
		}
		lo, hi := 0, i-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if t.Query(mid, i-1) <= a[i] {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		out[i] = lo
	})
	return out
}

// leftSeq is the classical O(n) stack algorithm.
func leftSeq(a []int64, out []int) {
	var stack []int
	for i := range a {
		for len(stack) > 0 && a[stack[len(stack)-1]] >= a[i] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			out[i] = -1
		} else {
			out[i] = stack[len(stack)-1]
		}
		stack = append(stack, i)
	}
}

func rightSeq(a []int64, out []int) {
	n := len(a)
	var stack []int
	for i := n - 1; i >= 0; i-- {
		for len(stack) > 0 && a[stack[len(stack)-1]] >= a[i] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			out[i] = n
		} else {
			out[i] = stack[len(stack)-1]
		}
		stack = append(stack, i)
	}
}
