package ansv

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/pram"
)

func bruteLeft(a []int64) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = -1
		for j := i - 1; j >= 0; j-- {
			if a[j] < a[i] {
				out[i] = j
				break
			}
		}
	}
	return out
}

func bruteRight(a []int64) []int {
	n := len(a)
	out := make([]int, n)
	for i := range a {
		out[i] = n
		for j := i + 1; j < n; j++ {
			if a[j] < a[i] {
				out[i] = j
				break
			}
		}
	}
	return out
}

func TestANSVAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{0, 1, 2, 3, 10, 100, 1000} {
			for _, valRange := range []int64{2, 5, 1000} {
				a := make([]int64, n)
				for i := range a {
					a[i] = rng.Int64N(valRange)
				}
				wantL, wantR := bruteLeft(a), bruteRight(a)
				gotL := LeftSmaller(m, a)
				gotR := RightSmaller(m, a)
				for i := 0; i < n; i++ {
					if gotL[i] != wantL[i] {
						t.Fatalf("procs=%d n=%d range=%d left[%d]=%d want %d (a=%v)",
							procs, n, valRange, i, gotL[i], wantL[i], a)
					}
					if gotR[i] != wantR[i] {
						t.Fatalf("procs=%d n=%d range=%d right[%d]=%d want %d (a=%v)",
							procs, n, valRange, i, gotR[i], wantR[i], a)
					}
				}
			}
		}
	}
}

func TestANSVMonotoneArrays(t *testing.T) {
	m := pram.New(4)
	inc := []int64{1, 2, 3, 4, 5}
	left := LeftSmaller(m, inc)
	for i, v := range left {
		if v != i-1 {
			t.Fatalf("increasing left[%d]=%d", i, v)
		}
	}
	right := RightSmaller(m, inc)
	for i, v := range right {
		if v != len(inc) {
			t.Fatalf("increasing right[%d]=%d", i, v)
		}
	}
	dec := []int64{5, 4, 3, 2, 1}
	left = LeftSmaller(m, dec)
	for i, v := range left {
		if v != -1 {
			t.Fatalf("decreasing left[%d]=%d", i, v)
		}
	}
}

func TestANSVAllEqual(t *testing.T) {
	m := pram.New(4)
	a := []int64{7, 7, 7, 7}
	for i, v := range LeftSmaller(m, a) {
		if v != -1 {
			t.Fatalf("equal left[%d]=%d", i, v)
		}
	}
	for i, v := range RightSmaller(m, a) {
		if v != len(a) {
			t.Fatalf("equal right[%d]=%d", i, v)
		}
	}
}

func TestANSVQuickProperty(t *testing.T) {
	m := pram.New(4)
	f := func(raw []uint8) bool {
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v % 8)
		}
		wantL := bruteLeft(a)
		gotL := LeftSmaller(m, a)
		for i := range a {
			if wantL[i] != gotL[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func bruteLeftOrEqual(a []int64) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = -1
		for j := i - 1; j >= 0; j-- {
			if a[j] <= a[i] {
				out[i] = j
				break
			}
		}
	}
	return out
}

func TestLeftSmallerOrEqual(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{0, 1, 2, 10, 100, 500} {
			for _, valRange := range []int64{2, 4, 100} {
				a := make([]int64, n)
				for i := range a {
					a[i] = rng.Int64N(valRange)
				}
				want := bruteLeftOrEqual(a)
				got := LeftSmallerOrEqual(m, a)
				for i := 0; i < n; i++ {
					if got[i] != want[i] {
						t.Fatalf("procs=%d n=%d leq[%d]=%d want %d (a=%v)", procs, n, i, got[i], want[i], a)
					}
				}
			}
		}
	}
}
