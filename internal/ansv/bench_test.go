package ansv

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func BenchmarkLeftSmaller(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 1 << 16
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int64N(1000)
	}
	for _, procs := range []int{1, 2} {
		name := "seq"
		if procs > 1 {
			name = "par"
		}
		b.Run(name, func(b *testing.B) {
			m := pram.New(procs)
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				LeftSmaller(m, a)
			}
		})
	}
}
