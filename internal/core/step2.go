package core

import "repro/internal/pram"

// Match is the dictionary-matching output at one text position: the longest
// pattern starting there (the paper's M[i]). PatternID == -1 and Length == 0
// mean no pattern matches.
type Match struct {
	PatternID int32
	Length    int32
}

// None is the empty match.
var None = Match{PatternID: -1, Length: 0}

// MatchText runs the full matching pipeline (Steps 1 and 2) and returns
// M[i] for every position. The output is Monte Carlo correct (fingerprint
// collisions in Step 1A can corrupt it with probability O(n·log d / 2^61));
// use MatchLasVegas for checked output.
func (d *Dictionary) MatchText(m *pram.Machine, text []byte) []Match {
	loci := d.substringMatch(m, text)
	return d.extractMatches(m, loci)
}

// SubstringLengths returns S[i], the length of the longest substring of D̂
// (not necessarily a pattern) starting at each text position — the paper's
// "dictionary substring problem" output, the intermediate result of Step 1.
func (d *Dictionary) SubstringLengths(m *pram.Machine, text []byte) []int32 {
	loci := d.substringMatch(m, text)
	out := make([]int32, len(loci))
	m.ParallelFor(len(loci), func(i int) { out[i] = loci[i].l })
	return out
}

// PrefixLengths returns B[i], the length of the longest pattern prefix that
// starts at each text position (the paper's Step 2A output). This is the
// quantity the optimal static compressor of §5 consumes.
func (d *Dictionary) PrefixLengths(m *pram.Machine, text []byte) []int32 {
	loci := d.substringMatch(m, text)
	out := make([]int32, len(loci))
	m.ParallelFor(len(loci), func(i int) {
		b, _, _ := d.prefixAt(loci[i])
		out[i] = b
	})
	return out
}

// extractMatches is Step 2: convert each locus S[i] into M[i] with O(1)
// table lookups (Steps 2A and 2B).
func (d *Dictionary) extractMatches(m *pram.Machine, loci []locus) []Match {
	out := make([]Match, len(loci))
	m.ParallelFor(len(loci), func(i int) {
		out[i] = d.matchAt(loci[i])
	})
	return out
}

// prefixAt computes B = the longest pattern prefix that is a prefix of the
// locus string X, together with how the answer was derived:
// onEdge reports the in-subtree case (B > depth(u), X' lies on X's edge);
// u is the deepest explicit node strictly above the locus (or the locus
// node itself when X ends exactly at it).
func (d *Dictionary) prefixAt(lc locus) (b int32, u int, onEdge bool) {
	st := d.st
	z, l := int(lc.z), lc.l
	u = z
	if l < st.StrDepth[z] {
		u = st.Parent[z]
	}
	if u < 0 { // root locus with l == 0
		u = st.Root
	}
	// In-subtree candidate: patterns whose start leaf lies under z reach
	// min(max length, |X|). Ancestor candidate: precomputed H.
	b1 := min32(d.m1[z], l)
	b2 := d.h[u]
	if b1 > b2 {
		return b1, u, true
	}
	return b2, u, false
}

// matchAt computes M for one locus: the longest full pattern that is a
// prefix of the locus string (equivalently, of its longest pattern prefix).
func (d *Dictionary) matchAt(lc locus) Match {
	b, u, onEdge := d.prefixAt(lc)
	if b == 0 {
		return None
	}
	var packed int64 = -1
	if onEdge {
		// X' (length b) lies on the edge entering z: proper-prefix patterns
		// are marked nodes on u's root path; the exact-length pattern, if
		// any, must be the minimum pattern under z.
		z := int(lc.z)
		packed = d.rpe[u]
		if d.minPat[z] == b {
			if cand := packLenPat(b, d.minPatID[z]); cand > packed {
				packed = cand
			}
		}
	} else {
		// X' is the length-H[u] prefix of σ(u): precomputed at
		// preprocessing time.
		packed = d.fullAtH[u]
	}
	if packed < 0 {
		return None
	}
	length, pat := unpackLenPat(packed)
	if length == 0 {
		return None
	}
	return Match{PatternID: pat, Length: length}
}

// WordID resolves the dictionary word equal to the length-wordLen prefix of
// the locus string, or -1 if no such word exists. Used by the static
// compressor to emit word references; O(log d) via one level-ancestor
// query.
func (d *Dictionary) WordID(lc locus, wordLen int32) int32 {
	if wordLen <= 0 || wordLen > lc.l {
		return -1
	}
	z := d.lift.ShallowestWithWeightAtLeast(int(lc.z), int64(wordLen))
	if z < 0 {
		return -1
	}
	// Patterns whose start leaf lies under z are at least wordLen long (the
	// locus string has no separators), so a word of exactly that length
	// exists iff it is the minimum.
	if d.minPat[z] == wordLen {
		return d.minPatID[z]
	}
	return -1
}
