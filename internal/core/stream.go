package core

import "repro/internal/pram"

// Streaming support (internal/stream). The segment pipeline needs three
// things the batch API keeps in method-local state:
//
//   - the halo bound: no per-position output (S[i], B[i] or M[i]) depends
//     on more than MaxPatternLen() bytes of lookahead, so a segment prefixed
//     with a carry of MaxPatternLen()-1 bytes finalizes every position whose
//     full lookahead it contains;
//   - B[i] per window position (the §5 parse input), and
//   - a durable handle to each position's locus, so phrase → word-ID
//     resolution can happen after the window's slices were recycled.

// MaxPatternLen returns the length of the longest dictionary pattern.
func (d *Dictionary) MaxPatternLen() int { return int(d.maxPatLen) }

// LocusRef is an opaque, copyable handle to the suffix-tree locus of one
// text position (the Step 1 output S[i]). Unlike the window slices it was
// derived from, it stays valid for the lifetime of the Dictionary — a
// streaming parser can hold the handles of the last few positions and
// resolve word IDs for phrases that start before the current segment.
type LocusRef struct {
	z int32
	l int32
}

// PrefixStream runs Step 1 + Step 2A over window and returns B[i] — the
// longest pattern-prefix length starting at each window position — together
// with each position's locus handle. It is PrefixLengths plus the handles
// at the cost of one extra O(n)-work pass.
func (d *Dictionary) PrefixStream(m *pram.Machine, window []byte) ([]int32, []LocusRef) {
	loci := d.substringMatch(m, window)
	b := make([]int32, len(loci))
	refs := make([]LocusRef, len(loci))
	m.ParallelFor(len(loci), func(i int) {
		pb, _, _ := d.prefixAt(loci[i])
		b[i] = pb
		refs[i] = LocusRef{z: loci[i].z, l: loci[i].l}
	})
	return b, refs
}

// ResolveWord returns the dictionary word equal to the length-wordLen prefix
// of the locus string, or -1 — WordID over a durable handle.
func (d *Dictionary) ResolveWord(ref LocusRef, wordLen int32) int32 {
	return d.WordID(locus{z: ref.z, l: ref.l}, wordLen)
}
