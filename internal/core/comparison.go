package core

import (
	"repro/internal/pram"
)

// Theorem 3.3: dictionary matching over an unbounded alphabet (the
// comparison model). The paper first applies the randomized renaming
// procedure of [11], mapping the symbols that occur into the range
// 1..|Σ|, then replaces each symbol by its ceil(log2 |Σ|)-bit binary code
// and invokes the constant-alphabet algorithm (Theorem 3.1) on a string of
// length O(n log |Σ|). Both the time and the work pick up exactly a
// log |Σ| factor.
//
// SymbolDictionary realizes that reduction for arbitrary int64 symbols.
// Renaming uses Go's map (a hash table — the moral equivalent of the
// randomized renaming, since the comparison model's obstacle is the lack
// of a bounded integer key space, which hashing supplies).

// SymbolDictionary is a dictionary over an unbounded int64 alphabet.
type SymbolDictionary struct {
	inner *Dictionary
	code  map[int64]int32 // dictionary symbol -> dense code
	bits  int             // code width in binary symbols
	// foreign is the dense code used for text symbols absent from the
	// dictionary; it matches nothing.
	foreign int32
}

// Sigma returns the number of distinct symbols in the dictionary.
func (sd *SymbolDictionary) Sigma() int { return len(sd.code) }

// Bits returns the binary-code width (the log |Σ| of Theorem 3.3).
func (sd *SymbolDictionary) Bits() int { return sd.bits }

// PreprocessSymbols builds the Theorem 3.3 dictionary: rename, binary-
// encode, and preprocess with the constant-alphabet algorithm.
func PreprocessSymbols(m *pram.Machine, patterns [][]int64, opts Options) *SymbolDictionary {
	if len(patterns) == 0 {
		panic("core: empty dictionary")
	}
	sd := &SymbolDictionary{code: make(map[int64]int32)}
	total := 0
	for _, p := range patterns {
		if len(p) == 0 {
			panic("core: empty pattern")
		}
		total += len(p)
		for _, s := range p {
			if _, ok := sd.code[s]; !ok {
				sd.code[s] = int32(len(sd.code))
			}
		}
	}
	m.Account(int64(total), 1) // renaming pass
	sd.foreign = int32(len(sd.code))
	sd.bits = 1
	for 1<<sd.bits < len(sd.code)+1 {
		sd.bits++
	}
	enc := make([][]byte, len(patterns))
	for i, p := range patterns {
		enc[i] = sd.encodeSyms(p, nil)
	}
	sd.inner = Preprocess(m, enc, opts)
	return sd
}

// encodeSyms appends the fixed-width binary code of each symbol to dst.
// Unknown symbols (text side) get the foreign code.
func (sd *SymbolDictionary) encodeSyms(syms []int64, dst []byte) []byte {
	for _, s := range syms {
		c, ok := sd.code[s]
		if !ok {
			c = sd.foreign
		}
		for b := sd.bits - 1; b >= 0; b-- {
			dst = append(dst, byte((c>>b)&1))
		}
	}
	return dst
}

// MatchText returns M[i] for a text over the unbounded alphabet: the
// longest pattern starting at each symbol position. Work and time are the
// Theorem 3.1 bounds on the (n·bits)-length encoding — the log |Σ| factor
// of Theorem 3.3.
func (sd *SymbolDictionary) MatchText(m *pram.Machine, text []int64) []Match {
	encoded := make([]byte, 0, len(text)*sd.bits)
	encoded = sd.encodeSyms(text, encoded)
	m.Account(int64(len(encoded)), 1)
	encMatches := sd.inner.MatchText(m, encoded)
	out := make([]Match, len(text))
	bits := sd.bits
	m.ParallelFor(len(text), func(i int) {
		em := encMatches[i*bits]
		if em.Length == 0 || int(em.Length)%bits != 0 {
			out[i] = None
			return
		}
		out[i] = Match{PatternID: em.PatternID, Length: em.Length / int32(bits)}
	})
	return out
}

// MatchLasVegas is the checked variant (the §3.4 checker runs on the
// encoded strings, where it is exact).
func (sd *SymbolDictionary) MatchLasVegas(m *pram.Machine, text []int64) ([]Match, int) {
	encoded := make([]byte, 0, len(text)*sd.bits)
	encoded = sd.encodeSyms(text, encoded)
	m.Account(int64(len(encoded)), 1)
	encMatches, attempts := sd.inner.MatchLasVegas(m, encoded)
	out := make([]Match, len(text))
	bits := sd.bits
	m.ParallelFor(len(text), func(i int) {
		em := encMatches[i*bits]
		if em.Length == 0 || int(em.Length)%bits != 0 {
			out[i] = None
			return
		}
		out[i] = Match{PatternID: em.PatternID, Length: em.Length / int32(bits)}
	})
	return out, attempts
}
