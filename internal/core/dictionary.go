// Package core implements the paper's primary contribution (§3): the first
// work-optimal parallel dictionary matching algorithm.
//
// Preprocessing (O(d)-work up to documented log factors, DESIGN.md §4)
// builds the suffix tree of D̂ — the concatenation of all patterns with a
// separator symbol after each — plus:
//
//   - Weiner-link colors for the nearest-colored-ancestors structure that
//     drives the ExtendLeft procedure (Step 1B),
//   - the pattern-prefix tables (M1, H) behind Step 2A's B[i] = longest
//     pattern prefix at each position, and
//   - the pattern-end marks (PE, RPE, minPat) behind Step 2B's
//     M[i] = longest full pattern at each position.
//
// Text matching runs in three steps exactly as in the paper: Step 1A finds
// the dictionary-substring match S[i] at one anchor per window by a
// fingerprint-guided separator-tree descent (separator.go; a suffix-array
// binary search is the AnchorSA ablation); Step 1B extends it to every
// position of the window right-to-left via nearest colored ancestors
// (ExtendLeft); Step 2 converts S[i] into B[i] and M[i] by O(1) table
// lookups. The output is Monte Carlo; the §3.4 checker (checker.go) makes
// the whole pipeline Las Vegas.
package core

import (
	"repro/internal/colorednca"
	"repro/internal/fingerprint"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/rmq"
	"repro/internal/suffixtree"
)

// Sep is the dictionary separator symbol; it is outside the byte alphabet so
// no text can ever match across pattern boundaries.
const Sep int32 = 256

// NCAVariant selects the nearest-colored-ancestors structure used by
// ExtendLeft.
type NCAVariant int

const (
	// NCAAuto uses the naive O(1)-query tables when the alphabet observed
	// in the dictionary is small (the paper's constant-alphabet Theorem
	// 3.1 regime) and the van Emde Boas variant otherwise (Theorem 3.2).
	NCAAuto NCAVariant = iota
	// NCANaive forces the O(n·|C|)-preprocessing O(1)-query structure.
	NCANaive
	// NCAImproved forces the O(n+C)-size O(log log n)-query structure.
	NCAImproved
)

// autoNaiveThreshold is the alphabet size up to which NCAAuto picks the
// naive tables (the paper's "constant-sized alphabet" regime).
const autoNaiveThreshold = 8

// Options configure preprocessing.
type Options struct {
	Seed    uint64         // fingerprint seed; 0 means 1
	NCA     NCAVariant     // nearest-colored-ancestor structure choice
	Anchor  AnchorStrategy // Step 1A locate mechanism (default: separator tree)
	WindowL int            // Step 1 window length; 0 = auto, see step1.go
}

// Dictionary is a preprocessed pattern dictionary.
type Dictionary struct {
	Patterns [][]byte
	D        int // total pattern length (the paper's d)

	dhat      []int32 // P_0 · Sep · P_1 · Sep · ... · P_{k-1} · Sep
	starts    []int32 // start offset of each pattern in dhat
	patLen    []int32
	maxPatLen int32 // longest pattern length (the streaming halo bound)

	st       *suffixtree.Tree
	lift     *lca.Lifting // ancestor-at-string-depth queries
	weiner   map[int64]int32
	ncaImpr  *colorednca.Improved
	ncaNaiv  *colorednca.Naive
	useNaive bool

	// Step 2A tables (see step2.go for the exact invariants).
	m1 []int32 // m1[v] = max pattern length with start-leaf in subtree(v)
	h  []int32 // h[v]  = max over ancestors w (incl v) of min(m1[w], depth(w))

	// Step 2B tables.
	minPat   []int32 // min pattern length with start-leaf in subtree(v); -1 if none
	minPatID []int32 // a pattern achieving minPat[v]
	rpe      []int64 // root-path max of packed (marked depth, pattern id)
	fullAtH  []int64 // per node u: longest full pattern that is a prefix of
	// the length-H[u] prefix of σ(u), packed (len, pat); -1 if none

	anchor  AnchorStrategy
	sep     *sepTree // separator tree (nil when AnchorSA)
	sigma   int      // number of distinct byte values in the dictionary
	seed    uint64
	hasher  *fingerprint.Hasher
	fpDict  *fingerprint.Table
	windowL int
}

const packShift = 31

func packLenPat(length int32, pat int32) int64 {
	return int64(length)<<packShift | int64(pat)
}

func unpackLenPat(v int64) (length, pat int32) {
	return int32(v >> packShift), int32(v & (1<<packShift - 1))
}

// Preprocess builds the dictionary structures. Every pattern must be
// non-empty.
func Preprocess(m *pram.Machine, patterns [][]byte, opts Options) *Dictionary {
	if len(patterns) == 0 {
		panic("core: empty dictionary")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	d := &Dictionary{Patterns: patterns, seed: opts.Seed}
	total := 0
	seen := [256]bool{}
	for _, p := range patterns {
		if len(p) == 0 {
			panic("core: empty pattern")
		}
		total += len(p)
		for _, c := range p {
			seen[c] = true
		}
	}
	for _, s := range seen {
		if s {
			d.sigma++
		}
	}
	d.D = total
	d.dhat = make([]int32, 0, total+len(patterns))
	d.starts = make([]int32, len(patterns))
	d.patLen = make([]int32, len(patterns))
	for k, p := range patterns {
		d.starts[k] = int32(len(d.dhat))
		d.patLen[k] = int32(len(p))
		if d.patLen[k] > d.maxPatLen {
			d.maxPatLen = d.patLen[k]
		}
		for _, c := range p {
			d.dhat = append(d.dhat, int32(c))
		}
		d.dhat = append(d.dhat, Sep)
	}
	m.Account(int64(len(d.dhat)), 1)

	d.st = suffixtree.BuildInts(m, d.dhat)
	d.buildLifting(m)
	d.buildWeiner(m, opts.NCA)
	d.buildStep2Tables(m)
	d.anchor = opts.Anchor
	if d.anchor == AnchorSeparator {
		d.sep = d.buildSeparator(m)
	}

	d.hasher = fingerprint.NewHasher(opts.Seed, d.st.AugLen())
	d.fpDict = d.hasher.NewTableInts(m, augSlice(d.st))

	d.windowL = opts.WindowL
	if d.windowL <= 0 {
		lg := 1
		for 1<<lg < len(d.dhat) {
			lg++
		}
		d.windowL = lg * lg
	}
	return d
}

// augSlice materializes the augmented symbol string of the tree (dhat plus
// sentinel) for fingerprinting. Symbol values: bytes+1, Sep+1, sentinel 0 —
// the same shift the text side applies, so cross tables compare correctly.
func augSlice(st *suffixtree.Tree) []int32 {
	n := st.AugLen()
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = st.AugAt(int32(i))
	}
	return out
}

func (d *Dictionary) buildLifting(m *pram.Machine) {
	st := d.st
	weights := make([]int64, st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) { weights[v] = int64(st.StrDepth[v]) })
	d.lift = lca.NewLifting(m, st.Parent, weights)
}

// buildWeiner colors each node w with every symbol a such that an explicit
// node with path label a·σ(w) exists, and records that node as the Weiner
// target. Suffix links provide the map: v with first label symbol a links
// to w, which is precisely "w has an incoming Weiner link by a".
func (d *Dictionary) buildWeiner(m *pram.Machine, variant NCAVariant) {
	st := d.st
	links := st.SuffixLinks(m)
	type entry struct {
		w int32
		a int32
		v int32
	}
	entries := make([]entry, st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) {
		entries[v] = entry{-1, -1, -1}
		if v == st.Root {
			return
		}
		w := links[v]
		if w < 0 {
			return
		}
		a := st.AugAt(st.Witness(v)) // first symbol of σ(v), aug space
		entries[v] = entry{w, a, int32(v)}
	})
	d.weiner = make(map[int64]int32, st.NumNodes)
	colors := make([]colorednca.Colored, 0, st.NumNodes)
	m.Account(int64(st.NumNodes), 1) // sequential map fill, linear work
	for _, e := range entries {
		if e.w < 0 {
			continue
		}
		key := int64(e.w)<<9 | int64(e.a)
		if old, ok := d.weiner[key]; ok {
			// Two explicit nodes with label a·σ(w) cannot exist; keep the
			// first deterministically (they would be identical anyway).
			_ = old
			continue
		}
		d.weiner[key] = e.v
		colors = append(colors, colorednca.Colored{Node: int(e.w), Color: e.a})
	}
	d.useNaive = variant == NCANaive || (variant == NCAAuto && d.sigma <= autoNaiveThreshold)
	if d.useNaive {
		d.ncaNaiv = colorednca.NewNaive(m, st.Topo, colors)
	} else {
		d.ncaImpr = colorednca.NewImproved(m, st.Topo, st.Tour, colors)
	}
}

// ncaQueryCost is the PRAM cost charged per nearest-colored-ancestor query:
// 1 for the naive tables, ceil(log2 log2 d) for the van Emde Boas variant.
func (d *Dictionary) ncaQueryCost() int64 {
	if d.useNaive {
		return 1
	}
	lg := 1
	for 1<<lg < d.st.AugLen() {
		lg++
	}
	llg := int64(1)
	for 1<<llg < lg {
		llg++
	}
	return llg
}

// findColored returns the nearest ancestor of v (inclusive) colored a.
func (d *Dictionary) findColored(v int, a int32) int {
	if d.useNaive {
		return d.ncaNaiv.Find(v, a)
	}
	return d.ncaImpr.Find(v, a)
}

// weinerTarget returns the node with path label a·σ(w), which exists
// whenever w carries color a.
func (d *Dictionary) weinerTarget(w int, a int32) int32 {
	return d.weiner[int64(w)<<9|int64(a)]
}

// buildStep2Tables precomputes M1/H (pattern-prefix queries) and
// minPat/RPE (pattern-end queries). See step2.go for how queries use them.
func (d *Dictionary) buildStep2Tables(m *pram.Machine) {
	st := d.st
	n1 := st.NumLeaves()
	// Per SA rank: pattern length if that suffix is a pattern start.
	isStart := make([]int64, n1) // max-rmq source: -1 or pattern length
	minSrc := make([]int64, n1)  // min-rmq source: +inf or packed (len,pat)
	const inf = int64(1) << 62
	m.ParallelFor(n1, func(r int) {
		isStart[r] = -1
		minSrc[r] = inf
	})
	m.ParallelFor(len(d.starts), func(k int) {
		r := st.Rank[d.starts[k]]
		isStart[r] = int64(d.patLen[k])
		minSrc[r] = packLenPat(d.patLen[k], int32(k))
	})
	maxT := rmq.NewMax(m, isStart)
	minT := rmq.NewMin(m, minSrc)

	d.m1 = make([]int32, st.NumNodes)
	d.minPat = make([]int32, st.NumNodes)
	d.minPatID = make([]int32, st.NumNodes)
	pe := make([]int64, st.NumNodes) // packed (depth, pat) of pattern-end marks
	m.ParallelFor(st.NumNodes, func(v int) {
		lo, hi := int(st.Lo[v]), int(st.Hi[v])
		if mx := maxT.Query(lo, hi); mx >= 0 {
			d.m1[v] = int32(mx)
		} else {
			d.m1[v] = 0
		}
		if mn := minT.Query(lo, hi); mn < inf {
			l, p := unpackLenPat(mn)
			d.minPat[v] = l
			d.minPatID[v] = p
		} else {
			d.minPat[v] = -1
			d.minPatID[v] = -1
		}
		pe[v] = -1
	})
	// Pattern-end marks: for each pattern, the ancestor of its start leaf
	// at string depth exactly |P_k| (if explicit).
	peCells := pram.NewCellsFilled(st.NumNodes, -1)
	logd := int64(1)
	for 1<<logd < st.NumNodes {
		logd++
	}
	m.ParallelForCost(len(d.starts), logd, func(k int) {
		leaf := int(st.LeafID[d.starts[k]])
		z := d.lift.ShallowestWithWeightAtLeast(leaf, int64(d.patLen[k]))
		if z >= 0 && st.StrDepth[z] == d.patLen[k] {
			peCells.WriteMax(z, packLenPat(d.patLen[k], int32(k)))
		}
	})
	m.ParallelFor(st.NumNodes, func(v int) { pe[v] = peCells.Read(v) })

	// H = root-path max of g(v) = min(m1[v], depth(v));
	// RPE = root-path max of pe. Both via parent-pointer doubling.
	g := make([]int64, st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) {
		g[v] = int64(min32(d.m1[v], st.StrDepth[v]))
	})
	hh := rootPathMax(m, st.Parent, g)
	d.h = make([]int32, st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) { d.h[v] = int32(hh[v]) })
	d.rpe = rootPathMax(m, st.Parent, pe)

	// fullAtH[u]: resolve, once per node, the longest full pattern inside
	// the length-H[u] prefix of σ(u), so text queries in the ancestor case
	// are O(1). One O(log d) level-ancestor query per node (preprocessing
	// only).
	d.fullAtH = make([]int64, st.NumNodes)
	m.ParallelForCost(st.NumNodes, logd, func(u int) {
		h := d.h[u]
		if h == 0 {
			d.fullAtH[u] = -1
			return
		}
		z2 := d.lift.ShallowestWithWeightAtLeast(u, int64(h))
		packed := int64(-1)
		if u2 := st.Parent[z2]; u2 >= 0 {
			packed = d.rpe[u2]
		}
		if d.minPat[z2] == h {
			if cand := packLenPat(h, d.minPatID[z2]); cand > packed {
				packed = cand
			}
		}
		d.fullAtH[u] = packed
	})
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// rootPathMax returns, for every node, the maximum of val over the node's
// ancestors including itself. Parent-pointer doubling: O(log n) rounds,
// O(n log n) work (documented preprocessing log factor, DESIGN.md §4).
func rootPathMax(m *pram.Machine, parent []int, val []int64) []int64 {
	n := len(parent)
	cur := make([]int64, n)
	anc := make([]int, n)
	m.ParallelFor(n, func(v int) {
		cur[v] = val[v]
		if parent[v] < 0 {
			anc[v] = v
		} else {
			anc[v] = parent[v]
		}
	})
	nxt := make([]int64, n)
	anc2 := make([]int, n)
	for {
		changed := pram.NewCells(1)
		m.ParallelFor(n, func(v int) {
			nxt[v] = cur[v]
			if a := anc[v]; a != v {
				if cur[a] > nxt[v] {
					nxt[v] = cur[a]
				}
			}
			anc2[v] = anc[anc[v]]
			if anc2[v] != anc[v] {
				changed.Write(0, 1)
			}
		})
		cur, nxt = nxt, cur
		anc, anc2 = anc2, anc
		if changed.Read(0) == 0 {
			return cur
		}
	}
}
