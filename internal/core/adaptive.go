package core

import (
	"bytes"

	"repro/internal/pram"
)

// Adaptive dictionary matching — the problem of the paper's citation [4]
// (Amir–Farach, FOCS 1991): support pattern insertions and deletions
// between queries. This implementation uses the logarithmic method on top
// of the static matcher: patterns live in O(log k) buckets of roughly
// doubling sizes, each preprocessed as an ordinary Dictionary; an
// insertion merges the smallest buckets (amortized O(|P| log k)
// preprocessing per insertion); a deletion tombstones its pattern and
// triggers a rebuild when tombstones reach half a bucket. A query runs
// every bucket and keeps the longest match per position, costing an
// O(log k) factor over Theorem 3.1 — the classic static-to-dynamic
// transformation.

// Adaptive is a dictionary supporting Insert, Delete and MatchText.
type Adaptive struct {
	opts    Options
	buckets []*adaptiveBucket
	nextID  int64
}

type adaptiveBucket struct {
	dict    *Dictionary
	ids     []int64 // external handle per pattern (parallel to dict.Patterns)
	dead    []bool
	nDead   int
	rebuild bool
}

// Handle identifies an inserted pattern for later deletion.
type Handle int64

// NewAdaptive returns an empty adaptive dictionary.
func NewAdaptive(opts Options) *Adaptive {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Adaptive{opts: opts}
}

// Len returns the number of live patterns.
func (a *Adaptive) Len() int {
	n := 0
	for _, b := range a.buckets {
		n += len(b.ids) - b.nDead
	}
	return n
}

// Buckets returns the current bucket count (for tests and diagnostics).
func (a *Adaptive) Buckets() int { return len(a.buckets) }

// Insert adds a pattern and returns its handle. Amortized cost: the
// pattern is re-preprocessed O(log k) times over its lifetime.
func (a *Adaptive) Insert(m *pram.Machine, pattern []byte) Handle {
	if len(pattern) == 0 {
		panic("core: empty pattern")
	}
	a.nextID++
	id := a.nextID
	patterns := [][]byte{append([]byte(nil), pattern...)}
	ids := []int64{id}
	// Merge while an existing bucket is not larger than the accumulated
	// batch (the binomial-counter merge rule, sized by live patterns).
	for {
		idx := -1
		for i, b := range a.buckets {
			if len(b.ids)-b.nDead <= len(patterns) {
				idx = i
				break
			}
		}
		if idx == -1 {
			break
		}
		b := a.buckets[idx]
		for j := range b.ids {
			if !b.dead[j] {
				patterns = append(patterns, b.dict.Patterns[j])
				ids = append(ids, b.ids[j])
			}
		}
		a.buckets = append(a.buckets[:idx], a.buckets[idx+1:]...)
	}
	a.buckets = append(a.buckets, &adaptiveBucket{
		dict: Preprocess(m, patterns, a.opts),
		ids:  ids,
		dead: make([]bool, len(ids)),
	})
	return Handle(id)
}

// Delete removes the pattern with the given handle. Returns false if the
// handle is unknown or already deleted. Deletion tombstones the pattern
// (its matches are filtered from queries) and rebuilds the bucket when
// half of it is dead.
func (a *Adaptive) Delete(m *pram.Machine, h Handle) bool {
	for bi, b := range a.buckets {
		for j, id := range b.ids {
			if id != int64(h) || b.dead[j] {
				continue
			}
			b.dead[j] = true
			b.nDead++
			if b.nDead*2 >= len(b.ids) {
				a.rebuildBucket(m, bi)
			}
			return true
		}
	}
	return false
}

func (a *Adaptive) rebuildBucket(m *pram.Machine, bi int) {
	b := a.buckets[bi]
	var patterns [][]byte
	var ids []int64
	for j := range b.ids {
		if !b.dead[j] {
			patterns = append(patterns, b.dict.Patterns[j])
			ids = append(ids, b.ids[j])
		}
	}
	if len(patterns) == 0 {
		a.buckets = append(a.buckets[:bi], a.buckets[bi+1:]...)
		return
	}
	a.buckets[bi] = &adaptiveBucket{
		dict: Preprocess(m, patterns, a.opts),
		ids:  ids,
		dead: make([]bool, len(ids)),
	}
}

// AdaptiveMatch is a per-position result: the longest live pattern
// starting there, identified by handle.
type AdaptiveMatch struct {
	Pattern Handle // 0 when no match
	Length  int32
}

// MatchText returns the longest live pattern starting at every position —
// the union semantics of the static matcher, over all buckets.
func (a *Adaptive) MatchText(m *pram.Machine, text []byte) []AdaptiveMatch {
	out := make([]AdaptiveMatch, len(text))
	for _, b := range a.buckets {
		bm := b.dict.MatchText(m, text)
		bb := b
		m.ParallelFor(len(text), func(i int) {
			mt := bm[i]
			if mt.Length == 0 {
				return
			}
			// Tombstoned pattern: fall back to scanning shorter live
			// candidates in this bucket is not possible through M alone;
			// instead re-query the bucket's prefix structure is overkill —
			// we keep correctness by checking liveness and, if dead,
			// trying the other buckets' results only. A dead longest
			// pattern may hide a shorter live one in the same bucket; the
			// rebuild threshold bounds how long that can last, and
			// liveFallback recovers it exactly.
			if bb.dead[mt.PatternID] {
				mt = bb.liveFallback(text, i)
				if mt.Length == 0 {
					return
				}
			}
			if mt.Length > out[i].Length {
				out[i] = AdaptiveMatch{Pattern: Handle(bb.ids[mt.PatternID]), Length: mt.Length}
			}
		})
	}
	return out
}

// liveFallback finds the longest *live* pattern of this bucket matching at
// text[i:] by direct comparison — only invoked at positions whose longest
// bucket match is tombstoned, which the rebuild policy keeps rare.
func (b *adaptiveBucket) liveFallback(text []byte, i int) Match {
	best := Match{PatternID: -1}
	for j, p := range b.dict.Patterns {
		if b.dead[j] || int32(len(p)) <= best.Length || i+len(p) > len(text) {
			continue
		}
		if bytes.Equal(text[i:i+len(p)], p) {
			best = Match{PatternID: int32(j), Length: int32(len(p))}
		}
	}
	if best.PatternID == -1 {
		return None
	}
	return best
}
