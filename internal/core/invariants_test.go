package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// The output chain invariant of §3: for every position,
// M[i] <= B[i] <= S[i]; S is a substring of D̂, B a pattern prefix, M an
// exact pattern — checked by content on random instances.
func TestOutputChainInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(231, 232))
	m := pram.New(4)
	for trial := 0; trial < 60; trial++ {
		sigma := 2 + rng.IntN(4)
		numPat := 1 + rng.IntN(8)
		patterns := make([][]byte, numPat)
		for i := range patterns {
			l := 1 + rng.IntN(9)
			patterns[i] = make([]byte, l)
			for j := range patterns[i] {
				patterns[i][j] = byte('a' + rng.IntN(sigma))
			}
		}
		text := make([]byte, 30+rng.IntN(120))
		for j := range text {
			text[j] = byte('a' + rng.IntN(sigma))
		}
		d := Preprocess(m, patterns, Options{Seed: uint64(trial + 1)})
		S := d.SubstringLengths(m, text)
		B := d.PrefixLengths(m, text)
		M := d.MatchText(m, text)
		for i := range text {
			if M[i].Length > B[i] || B[i] > S[i] {
				t.Fatalf("trial %d pos %d: chain violated M=%d B=%d S=%d",
					trial, i, M[i].Length, B[i], S[i])
			}
			if S[i] > 0 && !containsSub(d.dhat, text[i:i+int(S[i])]) {
				t.Fatalf("trial %d pos %d: S=%d not a dictionary substring", trial, i, S[i])
			}
			if B[i] > 0 && !somePatternHasPrefix(patterns, text[i:i+int(B[i])]) {
				t.Fatalf("trial %d pos %d: B=%d not a pattern prefix", trial, i, B[i])
			}
			if M[i].Length > 0 &&
				string(patterns[M[i].PatternID]) != string(text[i:i+int(M[i].Length)]) {
				t.Fatalf("trial %d pos %d: M mismatch", trial, i)
			}
		}
	}
}

func containsSub(dhat []int32, sub []byte) bool {
	for p := 0; p+len(sub) <= len(dhat); p++ {
		ok := true
		for j := range sub {
			if dhat[p+j] != int32(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func somePatternHasPrefix(patterns [][]byte, prefix []byte) bool {
	for _, p := range patterns {
		if len(p) >= len(prefix) && string(p[:len(prefix)]) == string(prefix) {
			return true
		}
	}
	return false
}
