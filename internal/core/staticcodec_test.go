package core

import (
	"bytes"
	"testing"

	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/textgen"
)

func prefixClose(words [][]byte) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for _, w := range words {
		for p := 1; p <= len(w); p++ {
			if k := string(w[:p]); !seen[k] {
				seen[k] = true
				out = append(out, []byte(k))
			}
		}
	}
	return out
}

func TestStaticCodecRoundTrip(t *testing.T) {
	gen := textgen.New(301)
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		words := prefixClose([][]byte{
			[]byte("abba"), []byte("bab"), []byte("caca"), []byte("c"),
		})
		d := Preprocess(m, words, Options{Seed: 4})
		for trial := 0; trial < 10; trial++ {
			text := gen.Uniform(200, 3) // over a,b,c — all single letters are words
			refs, err := d.CompressStatic(m, text)
			if err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
			got, err := d.DecompressStatic(m, refs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, text) {
				t.Fatalf("procs=%d roundtrip failed", procs)
			}
			// Reference count must equal the optimal phrase count.
			maxLen := d.PrefixLengths(m, text)
			opt, err := staticdict.OptimalParse(m, len(text), maxLen)
			if err != nil {
				t.Fatal(err)
			}
			if len(refs) != len(opt) {
				t.Fatalf("refs %d != optimal phrases %d", len(refs), len(opt))
			}
		}
	}
}

func TestStaticCodecEmptyAndErrors(t *testing.T) {
	m := pram.New(4)
	words := prefixClose([][]byte{[]byte("ab")})
	d := Preprocess(m, words, Options{Seed: 4})
	if refs, err := d.CompressStatic(m, nil); err != nil || refs != nil {
		t.Fatal("empty text")
	}
	if out, err := d.DecompressStatic(m, nil); err != nil || out != nil {
		t.Fatal("empty refs")
	}
	// Unparseable text: 'z' is not in the dictionary.
	if _, err := d.CompressStatic(m, []byte("abz")); err == nil {
		t.Fatal("unparseable text accepted")
	}
	// Bad reference.
	if _, err := d.DecompressStatic(m, []int32{0, 99}); err == nil {
		t.Fatal("bad reference accepted")
	}
}

func TestStaticCodecBeatsGreedyOnAdversarial(t *testing.T) {
	m := pram.New(4)
	text, dict := textgen.GreedyAdversarialDictionary(4, 20)
	d := Preprocess(m, dict, Options{Seed: 4})
	refs, err := d.CompressStatic(m, text)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := d.PrefixLengths(m, text)
	greedy, err := staticdict.GreedyParse(len(text), maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) >= len(greedy) {
		t.Fatalf("optimal refs %d not fewer than greedy %d", len(refs), len(greedy))
	}
	got, err := d.DecompressStatic(m, refs)
	if err != nil || !bytes.Equal(got, text) {
		t.Fatal("adversarial roundtrip failed")
	}
}

func TestStaticCodecWordsAreExact(t *testing.T) {
	// Every emitted reference must expand to exactly the phrase it covers.
	m := pram.New(4)
	gen := textgen.New(302)
	words := prefixClose(gen.Dictionary(30, 1, 10, 3))
	// Guarantee single letters exist so parses always succeed.
	words = append(words, prefixClose([][]byte{{'a'}, {'b'}, {'c'}})...)
	d := Preprocess(m, words, Options{Seed: 4})
	text := gen.Uniform(500, 3)
	refs, err := d.CompressStatic(m, text)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, r := range refs {
		w := d.Patterns[r]
		if !bytes.Equal(text[pos:pos+len(w)], w) {
			t.Fatalf("ref %d at %d expands to %q, text has %q", r, pos, w, text[pos:pos+len(w)])
		}
		pos += len(w)
	}
	if pos != len(text) {
		t.Fatalf("refs cover %d of %d", pos, len(text))
	}
}
