package core

import (
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// TestSnapshotRoundTripMatches proves the tentpole property at the core
// layer: Export → FromSnapshot yields a dictionary whose MatchText,
// SubstringLengths and PrefixLengths outputs are byte-identical to the
// original's, across anchor strategies and NCA variants, and the restore
// path charges zero PRAM work.
func TestSnapshotRoundTripMatches(t *testing.T) {
	gen := textgen.New(4242)
	configs := []Options{
		{},
		{NCA: NCAImproved},
		{Anchor: AnchorSA},
		{Seed: 12345, WindowL: 16},
	}
	for ci, opts := range configs {
		patterns := gen.Dictionary(12, 1, 20, 4)
		text := gen.Uniform(800, 4)
		m := pram.New(4)
		d := Preprocess(m, patterns, opts)
		want := d.MatchText(m, text)
		wantS := d.SubstringLengths(m, text)
		wantB := d.PrefixLengths(m, text)

		m2 := pram.New(4)
		before := m2.Snapshot()
		d2, err := FromSnapshot(d.Export())
		if err != nil {
			t.Fatalf("config %d: FromSnapshot: %v", ci, err)
		}
		after := m2.Snapshot()
		if after.Work != before.Work || after.Depth != before.Depth {
			t.Fatalf("config %d: restore charged PRAM work (%+v -> %+v)", ci, before, after)
		}

		got := d2.MatchText(m2, text)
		gotS := d2.SubstringLengths(m2, text)
		gotB := d2.PrefixLengths(m2, text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("config %d pos %d: match %+v != %+v", ci, i, got[i], want[i])
			}
			if gotS[i] != wantS[i] || gotB[i] != wantB[i] {
				t.Fatalf("config %d pos %d: S/B mismatch", ci, i)
			}
		}
		if !d2.Check(m2, text, got) {
			t.Fatalf("config %d: restored dictionary fails its own checker", ci)
		}
	}
}

// TestSnapshotRoundTripCompression checks the §5 static codec agrees across
// a snapshot round trip, including decompression of the original's output by
// the restored dictionary (shared fingerprint seed ⇒ shared parse).
func TestSnapshotRoundTripCompression(t *testing.T) {
	gen := textgen.New(99)
	patterns := gen.PrefixClosedDictionary(6, 12, 3)
	text := gen.Markov(600, 3, 0.7)
	m := pram.New(4)
	d := Preprocess(m, patterns, Options{})
	refs, err := d.CompressStatic(m, text)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}

	d2, err := FromSnapshot(d.Export())
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	m2 := pram.New(4)
	refs2, err := d2.CompressStatic(m2, text)
	if err != nil {
		t.Fatalf("restored compress: %v", err)
	}
	if len(refs) != len(refs2) {
		t.Fatalf("parse length diverged: %d != %d", len(refs), len(refs2))
	}
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("ref %d: %d != %d", i, refs[i], refs2[i])
		}
	}
	back, err := d2.DecompressStatic(m2, refs)
	if err != nil {
		t.Fatalf("restored decompress: %v", err)
	}
	if string(back) != string(text) {
		t.Fatalf("decompressed text diverged")
	}
}

// TestSnapshotValidation exercises the reject paths: a snapshot mutated into
// an inconsistent state must return an error, never panic.
func TestSnapshotValidation(t *testing.T) {
	gen := textgen.New(7)
	patterns := gen.Dictionary(5, 1, 8, 4)
	m := pram.New(1)
	d := Preprocess(m, patterns, Options{})

	fresh := func() *Snapshot { return d.Export() }
	cases := []struct {
		name string
		mut  func(s *Snapshot)
	}{
		{"no patterns", func(s *Snapshot) { s.Patterns = nil }},
		{"empty pattern", func(s *Snapshot) { s.Patterns = [][]byte{{}} }},
		{"nil tree", func(s *Snapshot) { s.Tree = nil }},
		{"bad window", func(s *Snapshot) { s.WindowL = 0 }},
		{"bad anchor", func(s *Snapshot) { s.Anchor = 99 }},
		{"tree root out of range", func(s *Snapshot) { s.Tree.Root = s.Tree.NumNodes }},
		{"tree SA not a permutation", func(s *Snapshot) {
			sa := append([]int32(nil), s.Tree.SA...)
			sa[0] = sa[1]
			s.Tree.SA = sa
		}},
		{"tree parent cycle", func(s *Snapshot) {
			depth := append([]int32(nil), s.Tree.StrDepth...)
			// Give a non-root node the same depth as its parent.
			for v, p := range s.Tree.Parent {
				if p >= 0 {
					depth[v] = depth[p]
					break
				}
			}
			s.Tree.StrDepth = depth
		}},
		{"weiner unsorted", func(s *Snapshot) {
			if len(s.WeinerKeys) < 2 {
				t.Skip("dictionary too small")
			}
			keys := append([]int64(nil), s.WeinerKeys...)
			keys[0], keys[1] = keys[1], keys[0]
			s.WeinerKeys = keys
		}},
		{"weiner target out of range", func(s *Snapshot) {
			vals := append([]int32(nil), s.WeinerVals...)
			vals[0] = s.Tree.NumNodes
			s.WeinerVals = vals
		}},
		{"step2 truncated", func(s *Snapshot) { s.M1 = s.M1[:len(s.M1)-1] }},
		{"minPatID out of range", func(s *Snapshot) {
			ids := append([]int32(nil), s.MinPatID...)
			ids[0] = int32(len(s.Patterns))
			s.MinPatID = ids
		}},
		{"packed pattern out of range", func(s *Snapshot) {
			rpe := append([]int64(nil), s.RPE...)
			rpe[0] = packLenPat(1, int32(len(s.Patterns)))
			s.RPE = rpe
		}},
		{"sep chain truncated", func(s *Snapshot) { s.SepChainData = s.SepChainData[:1] }},
		{"sep chain wrong tail", func(s *Snapshot) {
			data := append([]int32(nil), s.SepChainData...)
			data[int(s.SepChainLen[0])-1]++
			s.SepChainData = data
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fresh()
			tc.mut(s)
			if _, err := FromSnapshot(s); err == nil {
				t.Fatalf("mutated snapshot accepted")
			}
		})
	}
}
