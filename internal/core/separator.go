package core

import (
	"repro/internal/fingerprint"
	"repro/internal/pram"
)

// Step 1A via a separator tree — the technique of [5] (Amir–Farach–Matias)
// that the paper invokes: "We first construct a separator decomposition of
// the suffix tree of D̂. Then we trace down from the root starting from each
// of the desired text locations independently. The key is that string
// comparison along the edges and separators are done using fingerprints."
//
// The separator tree here is the centroid decomposition of the suffix
// tree. Locating the longest prefix of a text suffix Q works on the
// predicate T(v) := "Q[0:depth(v)] == σ(v)" (one O(1) fingerprint
// comparison): the nodes with T true form exactly the explicit-node chain
// of Q's path, so the search maintains
//
//	best — the deepest node with T confirmed true (initially the root), and
//	nb   — the only possible next explicit path node: best's child along
//	       Q's next symbol,
//
// and walks down nb's centroid-ancestor chain one level per step. Every
// visited centroid c is tested; T(c) true and deeper than best advances
// best (and re-derives nb); T(nb) false ends the explicit search. Because
// candidates always lie in the current centroid component and component
// sizes halve, the walk takes O(log d) probes. The final mid-edge
// extension below best is one fingerprint binary search on the edge.
//
// Compared to the suffix-array anchor descent (anchorDescent, O(log^2 d)
// probes), this restores the paper's Step 1A cost; both strategies are
// kept and compared in experiment E1b.

// AnchorStrategy selects the Step 1A locate mechanism.
type AnchorStrategy int

const (
	// AnchorSeparator uses the separator-tree descent (the paper's [5]
	// technique): O(log d) fingerprint probes per anchor.
	AnchorSeparator AnchorStrategy = iota
	// AnchorSA uses plain suffix-array binary search with fingerprint-
	// accelerated comparisons: O(log^2 d) probes, no extra structure.
	AnchorSA
)

// sepTree holds, for every suffix-tree node, its centroid-decomposition
// ancestor chain (root of the decomposition first, the node itself last).
type sepTree struct {
	danc  [][]int32
	depth int // maximum chain length
}

// buildSeparator computes the centroid decomposition of the suffix tree.
// Sequential recursion over components: O(n log n) work, charged to the
// machine ledger.
func (d *Dictionary) buildSeparator(m *pram.Machine) *sepTree {
	st := d.st
	n := st.NumNodes
	s := &sepTree{danc: make([][]int32, n)}
	removed := make([]bool, n)
	size := make([]int32, n)

	// neighbors yields the tree neighbors of v (parent + children) that
	// are not removed.
	neighbors := func(v int, yield func(int) bool) {
		if p := st.Parent[v]; p >= 0 && !removed[p] {
			if !yield(p) {
				return
			}
		}
		for _, c := range st.Topo.Children(v) {
			if !removed[c] {
				if !yield(int(c)) {
					return
				}
			}
		}
	}

	// compSize computes subtree sizes of the component containing start,
	// rooted at start, via an explicit-stack DFS, filling size[] and the
	// rooted orientation in rootedParent (epoch-stamped arrays: each
	// component walk bumps the epoch instead of clearing).
	var stack []int32
	var order []int32
	rootedParentArr := make([]int32, n)
	epochOf := make([]int32, n)
	epoch := int32(0)
	rootedParent := func(u int32) int32 {
		if epochOf[u] != epoch {
			return -2 // not visited this walk
		}
		return rootedParentArr[u]
	}
	compSize := func(start int) int32 {
		epoch++
		stack = append(stack[:0], int32(start))
		order = order[:0]
		epochOf[start] = epoch
		rootedParentArr[start] = -1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			neighbors(int(v), func(u int) bool {
				if epochOf[u] != epoch {
					epochOf[u] = epoch
					rootedParentArr[u] = v
					stack = append(stack, int32(u))
				}
				return true
			})
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			size[v] = 1
			neighbors(int(v), func(u int) bool {
				if rootedParent(int32(u)) == v {
					size[v] += size[u]
				}
				return true
			})
		}
		return size[start]
	}

	var total int64
	var build func(start int, chain []int32)
	build = func(start int, chain []int32) {
		csize := compSize(start)
		total += int64(csize)
		// Centroid: walk downward (in the rooted orientation) into any
		// child side heavier than csize/2; when none exists, the parent
		// side cannot exceed csize/2 either (classic argument).
		c := start
		for {
			descend := -1
			neighbors(c, func(u int) bool {
				if rootedParent(int32(u)) == int32(c) && size[u] > csize/2 {
					descend = u
					return false
				}
				return true
			})
			if descend == -1 {
				break
			}
			c = descend
		}
		chain = append(chain, int32(c))
		s.danc[c] = append([]int32(nil), chain...)
		if len(chain) > s.depth {
			s.depth = len(chain)
		}
		removed[c] = true
		neighbors(c, func(u int) bool {
			build(u, chain)
			return true
		})
	}
	build(st.Root, nil)

	lg := int64(1)
	for 1<<lg < n {
		lg++
	}
	m.Account(total, lg*lg)
	return s
}

// testT reports whether Q (the text suffix at i, with nQ symbols left)
// fully matches σ(c): one fingerprint comparison.
func (d *Dictionary) testT(fpText *fingerprint.Table, i, nQ, c int) bool {
	h := int(d.st.StrDepth[c])
	if h > nQ {
		return false
	}
	if h == 0 {
		return true
	}
	return fpText.Equal(i, d.fpDict, int(d.st.Witness(c)), h)
}

// anchorSeparator locates the longest prefix of text[i:] present in D̂ via
// the separator tree. O(log d) fingerprint probes plus one edge binary
// search.
func (d *Dictionary) anchorSeparator(tsym []int32, fpText *fingerprint.Table, i int) locus {
	st := d.st
	nQ := len(tsym) - i
	best := st.Root
	nextNB := func() int {
		h := int(st.StrDepth[best])
		if h >= nQ {
			return -1
		}
		return st.ChildByChar(best, tsym[i+h])
	}
	nb := nextNB()
	for level := 0; nb != -1; level++ {
		chain := d.sep.danc[nb]
		if level >= len(chain) {
			break // nb itself was tested at the last level
		}
		c := int(chain[level])
		if d.testT(fpText, i, nQ, c) {
			if st.StrDepth[c] > st.StrDepth[best] {
				best = c
				nb = nextNB()
			}
			continue
		}
		if c == nb {
			break // the only possible next explicit node fails: mid-edge end
		}
	}
	// Mid-edge extension below best toward nb.
	h := int32(st.StrDepth[best])
	if nb == -1 {
		return locus{int32(best), h}
	}
	cap := min32(int32(nQ)-h, st.StrDepth[nb]-h)
	ext := int32(d.fpLCP(fpText, i+int(h), int(st.Witness(nb))+int(h), int(cap)))
	if ext == 0 {
		// nb is best's child on Q's next symbol, so at least one symbol
		// matches; a zero here can only mean a fingerprint anomaly. Fall
		// back to the node locus (the checker will catch real corruption).
		return locus{int32(best), h}
	}
	return locus{int32(nb), h + ext}
}
