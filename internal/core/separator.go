package core

import (
	"repro/internal/fingerprint"
	"repro/internal/pram"
)

// Step 1A via a separator tree — the technique of [5] (Amir–Farach–Matias)
// that the paper invokes: "We first construct a separator decomposition of
// the suffix tree of D̂. Then we trace down from the root starting from each
// of the desired text locations independently. The key is that string
// comparison along the edges and separators are done using fingerprints."
//
// The separator tree here is the centroid decomposition of the suffix
// tree. Locating the longest prefix of a text suffix Q works on the
// predicate T(v) := "Q[0:depth(v)] == σ(v)" (one O(1) fingerprint
// comparison): the nodes with T true form exactly the explicit-node chain
// of Q's path, so the search maintains
//
//	best — the deepest node with T confirmed true (initially the root), and
//	nb   — the only possible next explicit path node: best's child along
//	       Q's next symbol,
//
// and walks down nb's centroid-ancestor chain one level per step. Every
// visited centroid c is tested; T(c) true and deeper than best advances
// best (and re-derives nb); T(nb) false ends the explicit search. Because
// candidates always lie in the current centroid component and component
// sizes halve, the walk takes O(log d) probes. The final mid-edge
// extension below best is one fingerprint binary search on the edge.
//
// Compared to the suffix-array anchor descent (anchorDescent, O(log^2 d)
// probes), this restores the paper's Step 1A cost; both strategies are
// kept and compared in experiment E1b.

// AnchorStrategy selects the Step 1A locate mechanism.
type AnchorStrategy int

const (
	// AnchorSeparator uses the separator-tree descent (the paper's [5]
	// technique): O(log d) fingerprint probes per anchor.
	AnchorSeparator AnchorStrategy = iota
	// AnchorSA uses plain suffix-array binary search with fingerprint-
	// accelerated comparisons: O(log^2 d) probes, no extra structure.
	AnchorSA
)

// sepTree holds, for every suffix-tree node, its centroid-decomposition
// ancestor chain (root of the decomposition first, the node itself last).
type sepTree struct {
	danc  [][]int32
	depth int // maximum chain length
}

// buildSeparator computes the centroid decomposition of the suffix tree.
// Sequential recursion over components: O(n log n) work, charged to the
// machine ledger.
func (d *Dictionary) buildSeparator(m *pram.Machine) *sepTree {
	st := d.st
	n := st.NumNodes
	s := &sepTree{danc: make([][]int32, n)}
	removed := make([]bool, n)
	size := make([]int32, n)

	// neighbors yields the tree neighbors of v (parent + children) that
	// are not removed.
	neighbors := func(v int, yield func(int) bool) {
		if p := st.Parent[v]; p >= 0 && !removed[p] {
			if !yield(p) {
				return
			}
		}
		for _, c := range st.Topo.Children(v) {
			if !removed[c] {
				if !yield(int(c)) {
					return
				}
			}
		}
	}

	// compSize computes subtree sizes of the component containing start,
	// rooted at start, via an explicit-stack DFS, filling size[] and the
	// rooted orientation in rootedParent (epoch-stamped arrays: each
	// component walk bumps the epoch instead of clearing).
	var stack []int32
	var order []int32
	rootedParentArr := make([]int32, n)
	epochOf := make([]int32, n)
	epoch := int32(0)
	rootedParent := func(u int32) int32 {
		if epochOf[u] != epoch {
			return -2 // not visited this walk
		}
		return rootedParentArr[u]
	}
	compSize := func(start int) int32 {
		epoch++
		stack = append(stack[:0], int32(start))
		order = order[:0]
		epochOf[start] = epoch
		rootedParentArr[start] = -1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			neighbors(int(v), func(u int) bool {
				if epochOf[u] != epoch {
					epochOf[u] = epoch
					rootedParentArr[u] = v
					stack = append(stack, int32(u))
				}
				return true
			})
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			size[v] = 1
			neighbors(int(v), func(u int) bool {
				if rootedParent(int32(u)) == v {
					size[v] += size[u]
				}
				return true
			})
		}
		return size[start]
	}

	var total int64
	var build func(start int, chain []int32)
	build = func(start int, chain []int32) {
		csize := compSize(start)
		total += int64(csize)
		// Centroid: walk downward (in the rooted orientation) into any
		// child side heavier than csize/2; when none exists, the parent
		// side cannot exceed csize/2 either (classic argument).
		c := start
		for {
			descend := -1
			neighbors(c, func(u int) bool {
				if rootedParent(int32(u)) == int32(c) && size[u] > csize/2 {
					descend = u
					return false
				}
				return true
			})
			if descend == -1 {
				break
			}
			c = descend
		}
		chain = append(chain, int32(c))
		s.danc[c] = append([]int32(nil), chain...)
		if len(chain) > s.depth {
			s.depth = len(chain)
		}
		removed[c] = true
		neighbors(c, func(u int) bool {
			build(u, chain)
			return true
		})
	}
	build(st.Root, nil)

	lg := int64(1)
	for 1<<lg < n {
		lg++
	}
	m.Account(total, lg*lg)
	return s
}

// testT reports whether Q (the text suffix at i, with nQ symbols left)
// fully matches σ(c): one fingerprint comparison.
func (d *Dictionary) testT(fpText *fingerprint.Table, i, nQ, c int) bool {
	h := int(d.st.StrDepth[c])
	if h > nQ {
		return false
	}
	if h == 0 {
		return true
	}
	return fpText.Equal(i, d.fpDict, int(d.st.Witness(c)), h)
}

// anchorSeparator locates the longest prefix of text[i:] present in D̂ via
// the separator tree. O(log d) fingerprint probes plus one edge binary
// search.
func (d *Dictionary) anchorSeparator(tsym []int32, fpText *fingerprint.Table, i int) locus {
	st := d.st
	nQ := len(tsym) - i
	best := st.Root
	nextNB := func() int {
		h := int(st.StrDepth[best])
		if h >= nQ {
			return -1
		}
		return st.ChildByChar(best, tsym[i+h])
	}
	nb := nextNB()
	for level := 0; nb != -1; level++ {
		chain := d.sep.danc[nb]
		if level >= len(chain) {
			break // nb itself was tested at the last level
		}
		c := int(chain[level])
		if d.testT(fpText, i, nQ, c) {
			if st.StrDepth[c] > st.StrDepth[best] {
				best = c
				nb = nextNB()
			}
			continue
		}
		if c == nb {
			break // the only possible next explicit node fails: mid-edge end
		}
	}
	// Mid-edge extension below best toward nb.
	h := int32(st.StrDepth[best])
	if nb == -1 {
		return locus{int32(best), h}
	}
	cap := min32(int32(nQ)-h, st.StrDepth[nb]-h)
	ext := int32(d.fpLCP(fpText, i+int(h), int(st.Witness(nb))+int(h), int(cap)))
	if ext == 0 {
		// nb is best's child on Q's next symbol, so at least one symbol
		// matches; a zero here can only mean a fingerprint anomaly. Fall
		// back to the node locus (the checker will catch real corruption).
		return locus{int32(best), h}
	}
	return locus{int32(nb), h + ext}
}

// Request coalescing over the separator symbol ------------------------------
//
// The preprocessing already joins the patterns into D̂ = p1·Sep·p2·Sep·…, with
// Sep outside the byte alphabet, precisely so that no structure built on D̂
// can confuse material from two different patterns. The same trick works on
// the text side: many small request texts joined as t1·Sep·t2·Sep·… can be
// matched (and parsed) in ONE machine dispatch, and the per-request answers
// are read back by offset range — byte-identical to running each text alone.
//
// Safety argument. All per-position outputs the serving layer consumes —
// B[i] (longest pattern prefix at i), M[i] (longest full pattern at i), and
// the §5 parse built on B — are bounded by the distance from i to the next
// text-side separator:
//
//   - No pattern contains Sep (patterns are byte strings; Sep = 256). So a
//     pattern prefix of length L starting at i spells text symbols
//     i..i+L-1, none of which may be Sep: L never reaches past the
//     separator, hence B[i] and M[i] are capped at the slice boundary.
//   - The dictionary-substring locus S[i] MAY span a separator (D̂ itself
//     contains Sep, so Sep-crossing substrings of D̂ exist) — but then every
//     pattern whose start leaf lies below that Sep-spanning node ends
//     exactly at the separator offset, so the Step 2 tables (m1, H) still
//     yield the boundary-capped value. Within the slice, S[i] truncated to
//     the slice is the same string the solo run computes, so B/M agree
//     symbol for symbol with the solo answers.
//   - At a separator position itself no pattern starts (none begins with
//     Sep): M = None, B = 0, and the position is skipped by the demux.
//   - The §5 parse consumes only B values, which never cross a separator,
//     so no phrase spans a request boundary; parsing each slice's B range
//     independently is exactly the solo parse (staticcodec.go).
//
// The equivalence is pinned empirically by TestJoinedEquivalence (core),
// the server-level batched-vs-solo suite, and FuzzBatchEquivalence.

// Joined is a set of request texts concatenated with Sep in raw symbol
// space: Syms holds byte values (0..255) with one Sep (256) after every
// slice, including the last, so every slice is uniformly Sep-terminated.
type Joined struct {
	Syms   []int32 // t1·Sep·t2·Sep·…·tk·Sep
	Starts []int   // len k+1; slice j spans Syms[Starts[j] : Starts[j+1]-1]
}

// JoinTexts builds the joined symbol string for a batch of texts.
func JoinTexts(texts [][]byte) *Joined {
	total := 0
	for _, t := range texts {
		total += len(t) + 1
	}
	j := &Joined{Syms: make([]int32, 0, total), Starts: make([]int, len(texts)+1)}
	for k, t := range texts {
		j.Starts[k] = len(j.Syms)
		for _, b := range t {
			j.Syms = append(j.Syms, int32(b))
		}
		j.Syms = append(j.Syms, Sep)
	}
	j.Starts[len(texts)] = len(j.Syms)
	return j
}

// NumTexts returns how many slices the join carries.
func (j *Joined) NumTexts() int { return len(j.Starts) - 1 }

// Bounds returns the half-open range of slice k in Syms (separator
// excluded).
func (j *Joined) Bounds(k int) (start, end int) {
	return j.Starts[k], j.Starts[k+1] - 1
}

// MatchJoined runs the full matching pipeline over a joined text in one
// dispatch. The output has one entry per joined symbol; entry i for a
// separator position is always None, and out[start:end] for each slice's
// Bounds is byte-identical to MatchText on that slice alone (safety
// argument above). Monte Carlo like MatchText; verify with CheckJoined.
func (d *Dictionary) MatchJoined(m *pram.Machine, j *Joined) []Match {
	loci := d.substringMatchSyms(m, j.Syms)
	return d.extractMatches(m, loci)
}
