package core

import (
	"bytes"
	"testing"

	"repro/internal/pram"
)

// Edge-case batteries for the matcher: degenerate dictionaries, extreme
// byte values, window-boundary interactions, self-similar inputs.

func TestSinglePatternSingleChar(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{{'a'}}, Options{Seed: 1})
	got := d.MatchText(m, []byte("aba"))
	want := []int32{1, 0, 1}
	for i, w := range want {
		if got[i].Length != w {
			t.Fatalf("pos %d: %d want %d", i, got[i].Length, w)
		}
	}
}

func TestPatternLongerThanText(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{[]byte("abcdefgh")}, Options{Seed: 1})
	for _, text := range [][]byte{[]byte("abc"), []byte("abcdefg"), []byte("x")} {
		got := d.MatchText(m, text)
		for i := range got {
			if got[i].Length != 0 {
				t.Fatalf("text %q pos %d matched length %d", text, i, got[i].Length)
			}
		}
		if !d.Check(m, text, got) {
			t.Fatalf("checker rejected all-empty output for %q", text)
		}
	}
}

func TestTextIsExactlyOnePattern(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{[]byte("hello"), []byte("he")}, Options{Seed: 1})
	got := d.MatchText(m, []byte("hello"))
	if got[0].Length != 5 {
		t.Fatalf("pos 0 length %d", got[0].Length)
	}
}

func TestEmptyText(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{[]byte("x")}, Options{Seed: 1})
	if got := d.MatchText(m, nil); len(got) != 0 {
		t.Fatal("empty text")
	}
	if !d.Check(m, nil, nil) {
		t.Fatal("checker on empty")
	}
	if got, attempts := d.MatchLasVegas(m, nil); len(got) != 0 || attempts != 1 {
		t.Fatal("las vegas on empty")
	}
}

func TestExtremeByteValues(t *testing.T) {
	m := pram.New(4)
	patterns := [][]byte{{0}, {255}, {0, 255}, {255, 255, 255}, {0, 0}}
	d := Preprocess(m, patterns, Options{Seed: 1})
	text := []byte{0, 255, 255, 255, 0, 0, 255}
	got := d.MatchText(m, text)
	// pos 0: {0,255} len 2; pos 1: {255,255,255} len 3; pos 4: {0,0} len 2;
	// pos 5: {0,255} len 2; pos 6: {255} len 1.
	want := []int32{2, 3, 1, 1, 2, 2, 1}
	for i, w := range want {
		if got[i].Length != w {
			t.Fatalf("pos %d: %d want %d (all %v)", i, got[i].Length, w, got)
		}
	}
	if !d.Check(m, text, got) {
		t.Fatal("checker rejected extreme-byte output")
	}
}

func TestAllSuffixesAsDictionary(t *testing.T) {
	// Maximal-overlap stress: every suffix of a string is a pattern.
	m := pram.New(4)
	base := []byte("abaababaab")
	var patterns [][]byte
	for i := range base {
		patterns = append(patterns, base[i:])
	}
	d := Preprocess(m, patterns, Options{Seed: 1})
	text := append(append([]byte{}, base...), base...)
	got := d.MatchText(m, text)
	// At each position of the first copy, the match must reach at least to
	// the end of the first copy (a suffix pattern matches there).
	for i := 0; i < len(base); i++ {
		minLen := int32(len(base) - i)
		if got[i].Length < minLen {
			t.Fatalf("pos %d: length %d < %d", i, got[i].Length, minLen)
		}
		if !bytes.Equal(text[i:i+int(got[i].Length)], patterns[got[i].PatternID]) {
			t.Fatalf("pos %d claims wrong pattern", i)
		}
	}
}

func TestAllPrefixesAsDictionary(t *testing.T) {
	// Prefix-heavy: every prefix of a string is a pattern; forces deep
	// pattern-end mark chains (the RPE machinery).
	m := pram.New(4)
	base := []byte("mississippi")
	var patterns [][]byte
	for i := 1; i <= len(base); i++ {
		patterns = append(patterns, base[:i])
	}
	d := Preprocess(m, patterns, Options{Seed: 1})
	text := append(append([]byte{}, base...), []byte("missi")...)
	got := d.MatchText(m, text)
	if got[0].Length != int32(len(base)) {
		t.Fatalf("pos 0 length %d", got[0].Length)
	}
	if got[len(base)].Length != 5 { // "missi"
		t.Fatalf("second copy start length %d", got[len(base)].Length)
	}
}

func TestDuplicatePatterns(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{[]byte("ab"), []byte("ab"), []byte("ab")}, Options{Seed: 1})
	text := []byte("abab")
	got := d.MatchText(m, text)
	if got[0].Length != 2 || got[2].Length != 2 {
		t.Fatalf("matches %v", got)
	}
	if !d.Check(m, text, got) {
		t.Fatal("checker rejected duplicate-pattern output")
	}
}

func TestPeriodicTextFibonacci(t *testing.T) {
	// Fibonacci words maximize repetition structure in the suffix tree —
	// the worst case for the ExtendLeft Weiner-link chains.
	m := pram.New(4)
	fib := []byte("abaababaabaababaababaabaababaabaab")
	patterns := [][]byte{fib[:3], fib[:5], fib[:8], fib[2:7], []byte("aa"), []byte("b")}
	d := Preprocess(m, patterns, Options{Seed: 1, WindowL: 3})
	got := d.MatchText(m, fib)
	// Cross-check against brute force.
	for i := range fib {
		want := int32(0)
		for _, p := range patterns {
			if i+len(p) <= len(fib) && bytes.Equal(fib[i:i+len(p)], p) && int32(len(p)) > want {
				want = int32(len(p))
			}
		}
		if got[i].Length != want {
			t.Fatalf("pos %d: %d want %d", i, got[i].Length, want)
		}
	}
}

func TestWindowExactMultiples(t *testing.T) {
	// Text lengths that are exact multiples and off-by-one of the window.
	m := pram.New(4)
	patterns := [][]byte{[]byte("ab"), []byte("ba"), []byte("aab")}
	for _, L := range []int{2, 4, 8} {
		d := Preprocess(m, patterns, Options{Seed: 1, WindowL: L})
		for _, n := range []int{L - 1, L, L + 1, 2 * L, 2*L + 1, 3*L - 1} {
			if n <= 0 {
				continue
			}
			text := bytes.Repeat([]byte("ab"), (n+1)/2)[:n]
			got := d.MatchText(m, text)
			for i := 0; i+2 <= n; i += 2 {
				if got[i].Length != 2 {
					t.Fatalf("L=%d n=%d pos %d: %d", L, n, i, got[i].Length)
				}
			}
			if !d.Check(m, text, got) {
				t.Fatalf("L=%d n=%d checker rejected", L, n)
			}
		}
	}
}

func TestSeparatorValueNeverMatches(t *testing.T) {
	// Byte 0 and byte 255 in text must not match separator positions.
	m := pram.New(4)
	d := Preprocess(m, [][]byte{{1, 2}, {3}}, Options{Seed: 1})
	text := []byte{1, 2, 0, 255, 3, 0}
	got := d.MatchText(m, text)
	want := []int32{2, 0, 0, 0, 1, 0}
	for i, w := range want {
		if got[i].Length != w {
			t.Fatalf("pos %d: %d want %d", i, got[i].Length, w)
		}
	}
}

func TestManySmallWindows(t *testing.T) {
	// WindowL = 1: every position is an anchor (pure Step 1A path).
	m := pram.New(4)
	patterns := [][]byte{[]byte("aa"), []byte("ab"), []byte("abc")}
	d := Preprocess(m, patterns, Options{Seed: 1, WindowL: 1})
	text := []byte("aabcabcaab")
	got := d.MatchText(m, text)
	for i := range text {
		want := int32(0)
		for _, p := range patterns {
			if i+len(p) <= len(text) && bytes.Equal(text[i:i+len(p)], p) && int32(len(p)) > want {
				want = int32(len(p))
			}
		}
		if got[i].Length != want {
			t.Fatalf("pos %d: %d want %d", i, got[i].Length, want)
		}
	}
}

func TestSubstringLengths(t *testing.T) {
	m := pram.New(4)
	d := Preprocess(m, [][]byte{[]byte("abc"), []byte("cab")}, Options{Seed: 1})
	// D̂ = abc$cab$: substrings include "bc", "ca", "abc", "cab", "bca"? no.
	text := []byte("abcab")
	got := d.SubstringLengths(m, text)
	// pos0 "abc"=3 (abca not in D̂), pos1 "bc"=2, pos2 "cab"=3, pos3 "ab"=2, pos4 "b"=1.
	want := []int32{3, 2, 3, 2, 1}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("S[%d]=%d want %d (all %v)", i, got[i], w, got)
		}
	}
}
