package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pram"
)

// Preprocess a dictionary once, then match texts with checked (Las Vegas)
// output.
func ExampleDictionary_MatchLasVegas() {
	m := pram.New(0)
	dict := core.Preprocess(m, [][]byte{
		[]byte("he"), []byte("she"), []byte("hers"),
	}, core.Options{Seed: 42})
	matches, attempts := dict.MatchLasVegas(m, []byte("ushers"))
	fmt.Println("attempts:", attempts)
	for i, mt := range matches {
		if mt.Length > 0 {
			fmt.Printf("%d: %s\n", i, dict.Patterns[mt.PatternID])
		}
	}
	// Output:
	// attempts: 1
	// 1: she
	// 2: hers
}

// Step 2A's B[i] — longest dictionary-word prefix per position — feeds the
// §5 optimal parser.
func ExampleDictionary_PrefixLengths() {
	m := pram.New(0)
	dict := core.Preprocess(m, [][]byte{[]byte("a"), []byte("ab"), []byte("abc")}, core.Options{Seed: 1})
	fmt.Println(dict.PrefixLengths(m, []byte("abx")))
	// Output: [2 0 0]
}

// End-to-end §5 static compression: optimal word references.
func ExampleDictionary_CompressStatic() {
	m := pram.New(0)
	// Prefix-closed dictionary on which greedy parsing is suboptimal.
	dict := core.Preprocess(m, [][]byte{
		[]byte("a"), []byte("aa"), []byte("aab"), []byte("b"),
	}, core.Options{Seed: 1})
	refs, err := dict.CompressStatic(m, []byte("aaab"))
	if err != nil {
		panic(err)
	}
	for _, r := range refs {
		fmt.Printf("%s ", dict.Patterns[r])
	}
	restored, _ := dict.DecompressStatic(m, refs)
	fmt.Printf("-> %s\n", restored)
	// Output: a aab -> aaab
}

// Adaptive dictionaries: insert and delete patterns between queries.
func ExampleAdaptive() {
	m := pram.New(0)
	a := core.NewAdaptive(core.Options{Seed: 1})
	hAna := a.Insert(m, []byte("ana"))
	a.Insert(m, []byte("ban"))
	out := a.MatchText(m, []byte("banana"))
	fmt.Println(out[0].Length, out[1].Length)
	a.Delete(m, hAna)
	out = a.MatchText(m, []byte("banana"))
	fmt.Println(out[0].Length, out[1].Length)
	// Output:
	// 3 3
	// 3 0
}
