package core

import (
	"fmt"
	"sort"

	"repro/internal/colorednca"
	"repro/internal/fingerprint"
	"repro/internal/lca"
	"repro/internal/suffixtree"
)

// Snapshot is the serializable state of a preprocessed Dictionary: the
// pattern bytes plus every table that is expensive to recompute (the suffix
// tree, Weiner links, Step 2 tables, separator-tree chains). Structures that
// are cheap, deterministic functions of these tables — D̂, the NCA
// structures, binary lifting, fingerprint tables — are rebuilt by
// FromSnapshot with plain sequential loops, so loading a snapshot charges
// zero PRAM work and answers every query byte-identically to the original.
type Snapshot struct {
	Seed     uint64
	Anchor   int32 // AnchorStrategy
	UseNaive bool
	WindowL  int32

	Patterns [][]byte
	Tree     *suffixtree.Snapshot

	// Weiner links as parallel slices, sorted by key. Key layout is the
	// in-memory map's: node<<9 | symbol. The NCA color set is exactly
	// {(key>>9, key&511)}, so it is not stored separately.
	WeinerKeys []int64
	WeinerVals []int32

	// Step 2A/2B tables, indexed by suffix-tree node.
	M1       []int32
	H        []int32
	MinPat   []int32
	MinPatID []int32
	RPE      []int64
	FullAtH  []int64

	// Separator-tree centroid chains, flattened: node v's chain is
	// SepChainData[sum(SepChainLen[:v]) : +SepChainLen[v]]. Nil when the
	// snapshot was taken with AnchorSA.
	SepChainLen  []int32
	SepChainData []int32
}

// Seed returns the current fingerprint seed (after any reseeds).
func (d *Dictionary) Seed() uint64 { return d.seed }

// WindowLen returns the Step 1 window length the dictionary matches with.
func (d *Dictionary) WindowLen() int { return d.windowL }

// Anchor returns the Step 1A locate strategy the dictionary was built with.
func (d *Dictionary) Anchor() AnchorStrategy { return d.anchor }

// UseNaiveNCA reports whether the naive nearest-colored-ancestor tables are
// in use (as opposed to the van Emde Boas variant).
func (d *Dictionary) UseNaiveNCA() bool { return d.useNaive }

// Export captures the dictionary's serializable state. The returned snapshot
// aliases the dictionary's tables; treat it as read-only.
func (d *Dictionary) Export() *Snapshot {
	s := &Snapshot{
		Seed:     d.seed,
		Anchor:   int32(d.anchor),
		UseNaive: d.useNaive,
		WindowL:  int32(d.windowL),
		Patterns: d.Patterns,
		Tree:     d.st.Export(),
		M1:       d.m1,
		H:        d.h,
		MinPat:   d.minPat,
		MinPatID: d.minPatID,
		RPE:      d.rpe,
		FullAtH:  d.fullAtH,
	}
	s.WeinerKeys = make([]int64, 0, len(d.weiner))
	for k := range d.weiner {
		s.WeinerKeys = append(s.WeinerKeys, k)
	}
	sort.Slice(s.WeinerKeys, func(i, j int) bool { return s.WeinerKeys[i] < s.WeinerKeys[j] })
	s.WeinerVals = make([]int32, len(s.WeinerKeys))
	for i, k := range s.WeinerKeys {
		s.WeinerVals[i] = d.weiner[k]
	}
	if d.sep != nil {
		s.SepChainLen = make([]int32, len(d.sep.danc))
		total := 0
		for _, chain := range d.sep.danc {
			total += len(chain)
		}
		s.SepChainData = make([]int32, 0, total)
		for v, chain := range d.sep.danc {
			s.SepChainLen[v] = int32(len(chain))
			s.SepChainData = append(s.SepChainData, chain...)
		}
	}
	return s
}

// FromSnapshot reconstructs a ready-to-match Dictionary with zero PRAM work:
// no machine is involved anywhere on this path, so a process that serves
// queries from snapshots never charges preprocessing to its cost ledger.
// Determinism of every rebuild (the same arithmetic the parallel
// constructors run, in sequential loops) makes the restored dictionary's
// output byte-identical to the original's.
//
// All cross-table invariants are validated before use; a snapshot that
// violates any of them (truncated, corrupted, adversarial) returns an error
// and never panics.
func FromSnapshot(s *Snapshot) (*Dictionary, error) {
	if len(s.Patterns) == 0 {
		return nil, fmt.Errorf("core: snapshot has no patterns")
	}
	if s.Tree == nil {
		return nil, fmt.Errorf("core: snapshot has no suffix tree")
	}
	if s.WindowL < 1 {
		return nil, fmt.Errorf("core: snapshot window length %d invalid", s.WindowL)
	}
	if s.Anchor != int32(AnchorSeparator) && s.Anchor != int32(AnchorSA) {
		return nil, fmt.Errorf("core: snapshot anchor strategy %d unknown", s.Anchor)
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	d := &Dictionary{
		Patterns: s.Patterns,
		seed:     seed,
		anchor:   AnchorStrategy(s.Anchor),
		useNaive: s.UseNaive,
		windowL:  int(s.WindowL),
	}

	// Rebuild D̂ and the per-pattern tables from the pattern bytes.
	seen := [256]bool{}
	for k, p := range s.Patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("core: snapshot pattern %d is empty", k)
		}
		d.D += len(p)
		for _, c := range p {
			seen[c] = true
		}
	}
	for _, ok := range seen {
		if ok {
			d.sigma++
		}
	}
	d.dhat = make([]int32, 0, d.D+len(s.Patterns))
	d.starts = make([]int32, len(s.Patterns))
	d.patLen = make([]int32, len(s.Patterns))
	for k, p := range s.Patterns {
		d.starts[k] = int32(len(d.dhat))
		d.patLen[k] = int32(len(p))
		if d.patLen[k] > d.maxPatLen {
			d.maxPatLen = d.patLen[k]
		}
		for _, c := range p {
			d.dhat = append(d.dhat, int32(c))
		}
		d.dhat = append(d.dhat, Sep)
	}

	st, err := suffixtree.RestoreInts(d.dhat, s.Tree)
	if err != nil {
		return nil, err
	}
	d.st = st
	numNodes := st.NumNodes
	n1 := st.AugLen()
	k := int32(len(s.Patterns))

	// Weiner links and the NCA color set they induce.
	if len(s.WeinerKeys) != len(s.WeinerVals) {
		return nil, fmt.Errorf("core: snapshot weiner key/value length mismatch")
	}
	d.weiner = make(map[int64]int32, len(s.WeinerKeys))
	colors := make([]colorednca.Colored, len(s.WeinerKeys))
	for i, key := range s.WeinerKeys {
		if i > 0 && key <= s.WeinerKeys[i-1] {
			return nil, fmt.Errorf("core: snapshot weiner keys not strictly increasing at %d", i)
		}
		w, a := key>>9, key&511
		if w < 0 || w >= int64(numNodes) || a >= 512 {
			return nil, fmt.Errorf("core: snapshot weiner key %d out of range", i)
		}
		v := s.WeinerVals[i]
		if v < 0 || int(v) >= numNodes {
			return nil, fmt.Errorf("core: snapshot weiner target %d out of range", i)
		}
		d.weiner[key] = v
		colors[i] = colorednca.Colored{Node: int(w), Color: int32(a)}
	}
	if d.useNaive {
		d.ncaNaiv = colorednca.RestoreNaive(st.Topo, colors)
	} else {
		d.ncaImpr = colorednca.RestoreImproved(st.Tour, colors)
	}

	weights := make([]int64, numNodes)
	for v := 0; v < numNodes; v++ {
		weights[v] = int64(st.StrDepth[v])
	}
	d.lift = lca.NewLiftingSequential(st.Parent, weights)

	// Step 2 tables: per-node lengths and packed (length, pattern id) values;
	// pattern ids index Patterns downstream, so they must be in range.
	if len(s.M1) != numNodes || len(s.H) != numNodes || len(s.MinPat) != numNodes ||
		len(s.MinPatID) != numNodes || len(s.RPE) != numNodes || len(s.FullAtH) != numNodes {
		return nil, fmt.Errorf("core: snapshot step-2 table length mismatch")
	}
	checkPacked := func(name string, v int64, node int) error {
		if v < 0 {
			return nil
		}
		length, pat := unpackLenPat(v)
		if length < 0 || int(length) > n1 || pat < 0 || pat >= k {
			return fmt.Errorf("core: snapshot %s at node %d out of range", name, node)
		}
		return nil
	}
	for v := 0; v < numNodes; v++ {
		if s.M1[v] < 0 || int(s.M1[v]) > n1 || s.H[v] < 0 || int(s.H[v]) > n1 {
			return nil, fmt.Errorf("core: snapshot M1/H at node %d out of range", v)
		}
		if s.MinPat[v] < -1 || int(s.MinPat[v]) > n1 || s.MinPatID[v] < -1 || s.MinPatID[v] >= k {
			return nil, fmt.Errorf("core: snapshot minPat at node %d out of range", v)
		}
		if err := checkPacked("RPE", s.RPE[v], v); err != nil {
			return nil, err
		}
		if err := checkPacked("fullAtH", s.FullAtH[v], v); err != nil {
			return nil, err
		}
	}
	d.m1 = s.M1
	d.h = s.H
	d.minPat = s.MinPat
	d.minPatID = s.MinPatID
	d.rpe = s.RPE
	d.fullAtH = s.FullAtH

	if d.anchor == AnchorSeparator {
		if len(s.SepChainLen) != numNodes {
			return nil, fmt.Errorf("core: snapshot separator chain count mismatch")
		}
		sep := &sepTree{danc: make([][]int32, numNodes)}
		off := 0
		for v, l := range s.SepChainLen {
			if l < 1 || off+int(l) > len(s.SepChainData) {
				return nil, fmt.Errorf("core: snapshot separator chain of node %d invalid", v)
			}
			chain := s.SepChainData[off : off+int(l) : off+int(l)]
			off += int(l)
			for _, u := range chain {
				if u < 0 || int(u) >= numNodes {
					return nil, fmt.Errorf("core: snapshot separator chain of node %d out of range", v)
				}
			}
			// Each node's chain ends at the node itself (it is the centroid
			// that removed it from the decomposition).
			if int(chain[l-1]) != v {
				return nil, fmt.Errorf("core: snapshot separator chain of node %d does not end at it", v)
			}
			sep.danc[v] = chain
			if int(l) > sep.depth {
				sep.depth = int(l)
			}
		}
		if off != len(s.SepChainData) {
			return nil, fmt.Errorf("core: snapshot separator chain data has %d trailing entries", len(s.SepChainData)-off)
		}
		d.sep = sep
	}

	// Fingerprint randomness is a pure function of the seed.
	d.hasher = fingerprint.NewHasher(seed, n1)
	d.fpDict = d.hasher.NewTableIntsSequential(augSlice(d.st))
	return d, nil
}
