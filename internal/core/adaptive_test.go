package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// bruteAdaptive computes the longest live pattern per position directly.
func bruteAdaptive(patterns map[Handle][]byte, text []byte) []AdaptiveMatch {
	out := make([]AdaptiveMatch, len(text))
	for h, p := range patterns {
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(p)], p) && int32(len(p)) > out[i].Length {
				out[i] = AdaptiveMatch{Pattern: h, Length: int32(len(p))}
			}
		}
	}
	return out
}

func checkAdaptive(t *testing.T, tag string, live map[Handle][]byte, got, want []AdaptiveMatch) {
	t.Helper()
	for i := range want {
		if got[i].Length != want[i].Length {
			t.Fatalf("%s pos %d: length %d want %d", tag, i, got[i].Length, want[i].Length)
		}
		if want[i].Length > 0 {
			// Handles may differ when equal-length patterns exist; the
			// matched strings must agree.
			if !bytes.Equal(live[got[i].Pattern], live[want[i].Pattern]) {
				t.Fatalf("%s pos %d: pattern %q want %q",
					tag, i, live[got[i].Pattern], live[want[i].Pattern])
			}
		}
	}
}

func TestAdaptiveInsertDeleteAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(241, 242))
	m := pram.New(4)
	a := NewAdaptive(Options{Seed: 5})
	live := map[Handle][]byte{}
	text := make([]byte, 300)
	for j := range text {
		text[j] = byte('a' + rng.IntN(3))
	}
	var handles []Handle
	for op := 0; op < 120; op++ {
		switch {
		case len(live) == 0 || rng.IntN(3) > 0: // insert-biased
			l := 1 + rng.IntN(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.IntN(3))
			}
			h := a.Insert(m, p)
			live[h] = p
			handles = append(handles, h)
		default:
			k := rng.IntN(len(handles))
			h := handles[k]
			want := live[h] != nil
			if got := a.Delete(m, h); got != want {
				t.Fatalf("Delete(%d) = %v want %v", h, got, want)
			}
			delete(live, h)
		}
		if a.Len() != len(live) {
			t.Fatalf("op %d: Len=%d want %d", op, a.Len(), len(live))
		}
		if op%10 == 0 {
			got := a.MatchText(m, text)
			want := bruteAdaptive(live, text)
			checkAdaptive(t, "mixed", live, got, want)
		}
	}
	got := a.MatchText(m, text)
	checkAdaptive(t, "final", live, got, bruteAdaptive(live, text))
}

func TestAdaptiveBucketCountLogarithmic(t *testing.T) {
	m := pram.New(4)
	a := NewAdaptive(Options{Seed: 5})
	gen := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		p := make([]byte, 1+gen.IntN(5))
		for j := range p {
			p[j] = byte('a' + gen.IntN(4))
		}
		a.Insert(m, p)
	}
	if a.Buckets() > 10 {
		t.Fatalf("buckets = %d for 200 inserts (want O(log))", a.Buckets())
	}
	if a.Len() != 200 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestAdaptiveDeleteAllThenReuse(t *testing.T) {
	m := pram.New(4)
	a := NewAdaptive(Options{Seed: 5})
	h1 := a.Insert(m, []byte("abc"))
	h2 := a.Insert(m, []byte("ab"))
	if !a.Delete(m, h1) || !a.Delete(m, h2) {
		t.Fatal("delete failed")
	}
	if a.Delete(m, h1) {
		t.Fatal("double delete succeeded")
	}
	if a.Len() != 0 {
		t.Fatalf("len = %d", a.Len())
	}
	got := a.MatchText(m, []byte("abcabc"))
	for i := range got {
		if got[i].Length != 0 {
			t.Fatalf("empty adaptive matched at %d", i)
		}
	}
	h3 := a.Insert(m, []byte("bc"))
	got = a.MatchText(m, []byte("abc"))
	if got[1].Length != 2 || got[1].Pattern != h3 {
		t.Fatalf("after reuse: %v", got)
	}
}

func TestAdaptiveTombstoneShadowing(t *testing.T) {
	// A deleted long pattern must not hide a live shorter one from the
	// same bucket.
	m := pram.New(4)
	a := NewAdaptive(Options{Seed: 5})
	hLong := a.Insert(m, []byte("abcd"))
	hShort := a.Insert(m, []byte("ab"))
	// Force both into one bucket (the merge rule does this on the second
	// insert). Now delete the long one; if the bucket was not rebuilt the
	// tombstone path must still surface "ab".
	if !a.Delete(m, hLong) {
		t.Fatal("delete")
	}
	got := a.MatchText(m, []byte("abcd"))
	if got[0].Length != 2 || got[0].Pattern != hShort {
		t.Fatalf("tombstone shadowing: %+v", got[0])
	}
}
