package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// TestJoinedEquivalence pins the separator safety argument (separator.go):
// matching and parsing a Sep-joined batch, then demultiplexing by offset
// range, is byte-identical to running every text alone. Exercised across
// batch shapes (1, 2, 7, 64 texts), mixed text sizes including empty, and
// both anchor strategies via the default preprocessing.
func TestJoinedEquivalence(t *testing.T) {
	gen := textgen.New(7701)
	text, patterns := gen.PlantedDictionary(1<<12, 24, 9, 97, 4)
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		d := Preprocess(m, patterns, Options{Seed: 11})
		for _, k := range []int{1, 2, 7, 64} {
			texts := make([][]byte, k)
			for i := range texts {
				// Mixed sizes: tiny, medium, and a few larger windows cut
				// from the planted text so match density is realistic.
				size := []int{0, 1, 17, 130, 512, 60}[i%6]
				off := (i * 131) % (len(text) - 600)
				texts[i] = text[off : off+size]
			}
			j := JoinTexts(texts)
			joined := d.MatchJoined(m, j)
			if !d.CheckJoined(m, j, joined) {
				t.Fatalf("procs=%d k=%d: CheckJoined rejected MatchJoined output", procs, k)
			}
			for i, txt := range texts {
				solo := d.MatchText(m, txt)
				start, end := j.Bounds(i)
				if end-start != len(txt) {
					t.Fatalf("k=%d slice %d: bounds [%d,%d) want len %d", k, i, start, end, len(txt))
				}
				slice := joined[start:end]
				for p := range solo {
					if slice[p].Length != solo[p].Length {
						t.Fatalf("procs=%d k=%d slice %d pos %d: joined len %d, solo len %d",
							procs, k, i, p, slice[p].Length, solo[p].Length)
					}
					if slice[p].Length > 0 && !bytes.Equal(patterns[slice[p].PatternID], patterns[solo[p].PatternID]) {
						t.Fatalf("procs=%d k=%d slice %d pos %d: joined pattern %d, solo pattern %d",
							procs, k, i, p, slice[p].PatternID, solo[p].PatternID)
					}
				}
			}
			// Separator positions carry no match.
			for i := 0; i < k; i++ {
				_, end := j.Bounds(i)
				if joined[end] != None {
					t.Fatalf("k=%d: separator position %d matched %+v", k, end, joined[end])
				}
			}
		}
		m.Close()
	}
}

// TestJoinedCheckRejectsCrossBoundary verifies the checker side of the
// safety argument: a claim whose length crosses a request boundary is
// rejected by CheckJoined (the Sep singleton fails the consistency test).
func TestJoinedCheckRejectsCrossBoundary(t *testing.T) {
	m := pram.New(2)
	defer m.Close()
	patterns := [][]byte{[]byte("abab"), []byte("ba")}
	d := Preprocess(m, patterns, Options{Seed: 3})
	j := JoinTexts([][]byte{[]byte("ab"), []byte("ab")})
	matches := d.MatchJoined(m, j)
	if !d.CheckJoined(m, j, matches) {
		t.Fatal("honest joined output rejected")
	}
	// Forge a claim of "abab" at position 0: it would span the separator.
	forged := append([]Match(nil), matches...)
	forged[0] = Match{PatternID: 0, Length: 4}
	if d.CheckJoined(m, j, forged) {
		t.Fatal("cross-boundary claim accepted")
	}
}

// TestJoinedParseEquivalence pins CompressStaticJoined against per-text
// CompressStatic: identical references per slice, and per-slice errors that
// do not poison siblings.
func TestJoinedParseEquivalence(t *testing.T) {
	gen := textgen.New(7702)
	words := prefixClose([][]byte{
		[]byte("abba"), []byte("bab"), []byte("caca"), []byte("c"),
	})
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		d := Preprocess(m, words, Options{Seed: 5})
		for _, k := range []int{1, 2, 7, 64} {
			texts := make([][]byte, k)
			for i := range texts {
				size := []int{0, 3, 40, 200, 17, 1}[i%6]
				texts[i] = gen.Uniform(size, 3)
			}
			// One deliberately unparseable slice in the larger batches.
			if k >= 7 {
				texts[3] = []byte("abz")
			}
			j := JoinTexts(texts)
			gotRefs, gotErrs := d.CompressStaticJoined(m, j)
			if len(gotRefs) != k || len(gotErrs) != k {
				t.Fatalf("k=%d: got %d refs, %d errs", k, len(gotRefs), len(gotErrs))
			}
			for i, txt := range texts {
				wantRefs, wantErr := d.CompressStatic(m, txt)
				if (gotErrs[i] == nil) != (wantErr == nil) {
					t.Fatalf("procs=%d k=%d slice %d: joined err %v, solo err %v", procs, k, i, gotErrs[i], wantErr)
				}
				if wantErr != nil {
					continue
				}
				if fmt.Sprint(gotRefs[i]) != fmt.Sprint(wantRefs) {
					t.Fatalf("procs=%d k=%d slice %d: joined refs %v, solo refs %v", procs, k, i, gotRefs[i], wantRefs)
				}
				if len(txt) > 0 {
					back, err := d.DecompressStatic(m, gotRefs[i])
					if err != nil || !bytes.Equal(back, txt) {
						t.Fatalf("procs=%d k=%d slice %d: roundtrip failed (%v)", procs, k, i, err)
					}
				}
			}
		}
		m.Close()
	}
}
