package core

import (
	"repro/internal/fingerprint"
	"repro/internal/pram"
)

// locus is a position in the suffix tree of D̂: the string aug[wit(z) :
// wit(z)+l], which lies on the edge entering node z (or at z itself when
// l == StrDepth[z]). l == 0 means the root.
type locus struct {
	z int32
	l int32
}

// substringMatch is the paper's Step 1 (dictionary substring matching): for
// every text position i it returns the locus of S[i], the longest substring
// of D̂ that starts at T[i].
//
// Step 1A computes S at one anchor per window of length L by binary search
// in the suffix array with fingerprint-accelerated comparisons (O(log^2 d)
// per anchor — the documented substitute for the separator-tree descent of
// [5], DESIGN.md §4). Step 1B extends the anchor leftwards across its
// window with the ExtendLeft procedure: one nearest-colored-ancestor query
// plus O(1) exact LCP queries per position, no fingerprints.
func (d *Dictionary) substringMatch(m *pram.Machine, text []byte) []locus {
	n := len(text)
	out := make([]locus, n)
	if n == 0 {
		return out
	}
	tsym := m.GetInt32s(n)
	defer m.PutInt32s(tsym) // fpText hashes tsym up front and does not retain it
	m.ParallelFor(n, func(i int) { tsym[i] = int32(text[i]) + 1 })
	d.substringMatchInto(m, tsym, out)
	return out
}

// substringMatchSyms is substringMatch over a raw-symbol text (byte values
// plus Sep), the form the request-coalescing path produces (separator.go).
// Every symbol must lie in [0, Sep].
func (d *Dictionary) substringMatchSyms(m *pram.Machine, syms []int32) []locus {
	n := len(syms)
	out := make([]locus, n)
	if n == 0 {
		return out
	}
	tsym := m.GetInt32s(n)
	defer m.PutInt32s(tsym)
	m.ParallelFor(n, func(i int) { tsym[i] = syms[i] + 1 })
	d.substringMatchInto(m, tsym, out)
	return out
}

// substringMatchInto is the shared Step 1 body: tsym is the text in
// augmented symbol space (symbol+1; the sentinel 0 never occurs in a text).
func (d *Dictionary) substringMatchInto(m *pram.Machine, tsym []int32, out []locus) {
	n := len(tsym)
	hasher := d.hasher.WithCapacity(n)
	fpText := hasher.NewTableInts(m, tsym)

	L := d.windowL
	windows := (n + L - 1) / L
	lg := int64(2)
	for 1<<lg < d.st.AugLen() {
		lg++
	}
	// Per-window cost: one anchor locate plus up to L-1 ExtendLefts, each
	// costing one nearest-colored-ancestor query — O(1) on the naive
	// structure (Theorem 3.1's constant-alphabet regime), O(log log d) on
	// the van Emde Boas structure (Theorem 3.2). The anchor costs O(log d)
	// probes via the separator tree (the paper's Step 1A) or O(log^2 d)
	// via suffix-array binary search.
	anchorCost := lg
	if d.anchor == AnchorSA {
		anchorCost = lg * lg
	}
	m.ParallelForCost(windows, anchorCost+int64(L)*d.ncaQueryCost(), func(w int) {
		anchor := (w+1)*L - 1
		if anchor >= n {
			anchor = n - 1
		}
		if d.anchor == AnchorSeparator {
			out[anchor] = d.anchorSeparator(tsym, fpText, anchor)
		} else {
			out[anchor] = d.anchorDescent(tsym, fpText, anchor)
		}
		for i := anchor; i > w*L; i-- {
			out[i-1] = d.extendLeft(tsym[i-1], out[i])
		}
	})
}

// anchorDescent returns the locus of the longest prefix of text[i:] that
// occurs in D̂, by binary search over the suffix array.
func (d *Dictionary) anchorDescent(tsym []int32, fpText *fingerprint.Table, i int) locus {
	st := d.st
	n, n1 := len(tsym), st.NumLeaves()
	// Insertion point: first rank r with dictSuffix(SA[r]) >= textSuffix(i).
	lo, hi := 0, n1
	for lo < hi {
		mid := (lo + hi) / 2
		p := int(st.SA[mid])
		l := d.fpLCP(fpText, i, p, min(n-i, n1-1-p))
		dictLess := false
		if i+l >= n {
			dictLess = false // text exhausted: text is a prefix, dict >= text
		} else {
			cd := st.AugAt(int32(p + l)) // in range: dict suffixes end at the sentinel
			ct := tsym[i+l]
			dictLess = cd < ct
		}
		if dictLess {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, bestRank := 0, -1
	for _, r := range [2]int{lo - 1, lo} {
		if r < 0 || r >= n1 {
			continue
		}
		p := int(st.SA[r])
		l := d.fpLCP(fpText, i, p, min(n-i, n1-1-p))
		if l > best || bestRank == -1 {
			best, bestRank = l, r
		}
	}
	if best == 0 {
		return locus{int32(st.Root), 0}
	}
	leaf := int(st.LeafID[st.SA[bestRank]])
	z := d.lift.ShallowestWithWeightAtLeast(leaf, int64(best))
	return locus{int32(z), int32(best)}
}

// fpLCP returns the longest l <= maxl with text[i:i+l] == aug[p:p+l], by
// binary search over fingerprint equality (Monte Carlo).
func (d *Dictionary) fpLCP(fpText *fingerprint.Table, i, p, maxl int) int {
	if maxl <= 0 {
		return 0
	}
	if !fpText.Equal(i, d.fpDict, p, 1) {
		return 0
	}
	lo, hi := 1, maxl // invariant: equal at lo
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fpText.Equal(i, d.fpDict, p, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// extendLeft implements the paper's ExtendLeft (Observations 1 and 2 plus
// Steps 1B.1 and 1B.2): given the locus of S = S[i] and the preceding text
// symbol a (augmented space), return the locus of S[i-1], the longest
// prefix of a·S present in D̂. Deterministic: one colored-ancestor query and
// O(1) exact LCP/child lookups.
func (d *Dictionary) extendLeft(a int32, cur locus) locus {
	st := d.st
	z, l := int(cur.z), cur.l
	u := z
	if l < st.StrDepth[z] {
		u = st.Parent[z]
	}
	wx := st.Witness(z) // S = aug[wx : wx+l]
	ua := d.findColored(u, a)
	if ua < 0 {
		// No explicit node labeled a·(prefix of S): the match, if any, lies
		// within the root's a-edge.
		r := st.ChildByChar(st.Root, a)
		if r < 0 {
			return locus{int32(st.Root), 0}
		}
		ext := int32(0)
		if l > 0 {
			cap := min32(l, st.StrDepth[r]-1)
			if cap > 0 {
				lcp := st.LCPSuffixes(wx, st.Witness(r)+1)
				ext = min32(lcp, cap)
			}
		}
		return locus{int32(r), ext + 1} // a matched on r's edge plus ext more
	}
	w := int(d.weinerTarget(ua, a)) // σ(w) = a·σ(ua)
	dua := st.StrDepth[ua]
	if dua == l {
		// S == σ(ua): the whole of a·S is matched by w.
		return locus{int32(w), st.StrDepth[w]}
	}
	q := st.AugAt(wx + dua) // next symbol of S after σ(ua)
	r := st.ChildByChar(w, q)
	if r < 0 {
		return locus{int32(w), st.StrDepth[w]}
	}
	cap := min32(l-dua, st.StrDepth[r]-st.StrDepth[w])
	lcp := st.LCPSuffixes(wx+dua, st.Witness(r)+st.StrDepth[w])
	ext := min32(lcp, cap)
	if ext == 0 {
		// q matched by construction (r is the q-child), so ext >= 1 unless
		// the LCP query is asked with zero remaining — defensive only.
		return locus{int32(w), st.StrDepth[w]}
	}
	return locus{int32(r), st.StrDepth[w] + ext}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
