package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// bruteSymMatch computes M[i] for int64-symbol strings directly.
func bruteSymMatch(patterns [][]int64, text []int64) []Match {
	out := make([]Match, len(text))
	for i := range out {
		out[i] = None
	}
	for idx, p := range patterns {
		for i := 0; i+len(p) <= len(text); i++ {
			ok := true
			for j := range p {
				if text[i+j] != p[j] {
					ok = false
					break
				}
			}
			if ok && int(out[i].Length) < len(p) {
				out[i] = Match{PatternID: int32(idx), Length: int32(len(p))}
			}
		}
	}
	return out
}

func TestSymbolDictionaryAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(161, 162))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 20; trial++ {
			// Unbounded alphabet: huge sparse symbol values.
			sigma := 2 + rng.IntN(10)
			alphabet := make([]int64, sigma)
			for i := range alphabet {
				alphabet[i] = rng.Int64() - (1 << 62)
			}
			numPat := 1 + rng.IntN(6)
			patterns := make([][]int64, numPat)
			for i := range patterns {
				l := 1 + rng.IntN(6)
				patterns[i] = make([]int64, l)
				for j := range patterns[i] {
					patterns[i][j] = alphabet[rng.IntN(sigma)]
				}
			}
			sd := PreprocessSymbols(m, patterns, Options{Seed: uint64(trial + 1)})
			text := make([]int64, 40+rng.IntN(150))
			for j := range text {
				if rng.IntN(10) == 0 {
					text[j] = rng.Int64() // foreign symbol
				} else {
					text[j] = alphabet[rng.IntN(sigma)]
				}
			}
			want := bruteSymMatch(patterns, text)
			got := sd.MatchText(m, text)
			for i := range text {
				if got[i].Length != want[i].Length {
					t.Fatalf("procs=%d trial=%d pos %d: len %d want %d",
						procs, trial, i, got[i].Length, want[i].Length)
				}
				if got[i].Length > 0 {
					gp := patterns[got[i].PatternID]
					wp := patterns[want[i].PatternID]
					if len(gp) != len(wp) {
						t.Fatalf("pattern mismatch at %d", i)
					}
				}
			}
		}
	}
}

func TestSymbolDictionaryLasVegas(t *testing.T) {
	m := pram.New(4)
	patterns := [][]int64{{1 << 40, 2 << 40}, {2 << 40}, {1 << 40, 2 << 40, 3 << 40}}
	sd := PreprocessSymbols(m, patterns, Options{Seed: 9})
	text := []int64{1 << 40, 2 << 40, 3 << 40, 2 << 40, 99}
	got, attempts := sd.MatchLasVegas(m, text)
	if attempts != 1 {
		t.Fatalf("attempts = %d", attempts)
	}
	// pos 0: {1,2,3}<<40 len 3; pos 1: {2}<<40 len 1; pos 3: len 1.
	wantLens := []int32{3, 1, 0, 1, 0}
	for i, w := range wantLens {
		if got[i].Length != w {
			t.Fatalf("pos %d len %d want %d", i, got[i].Length, w)
		}
	}
	if sd.Sigma() != 3 {
		t.Fatalf("sigma = %d", sd.Sigma())
	}
	if sd.Bits() != 2 {
		t.Fatalf("bits = %d", sd.Bits())
	}
}

func TestSymbolDictionaryWorkScalesWithLogSigma(t *testing.T) {
	// Theorem 3.3: the log sigma factor. Compare text work for sigma=4
	// (2 bits) vs sigma=256 (9 bits with the foreign code): ratio ~4.5.
	work := func(sigma int) int64 {
		rng := rand.New(rand.NewPCG(163, uint64(sigma)))
		alphabet := make([]int64, sigma)
		for i := range alphabet {
			alphabet[i] = int64(i) * 1000003
		}
		patterns := make([][]int64, 16)
		for i := range patterns {
			patterns[i] = make([]int64, 4)
			for j := range patterns[i] {
				patterns[i][j] = alphabet[rng.IntN(sigma)]
			}
		}
		m := pram.NewSequential()
		sd := PreprocessSymbols(m, patterns, Options{Seed: 5})
		text := make([]int64, 4096)
		for j := range text {
			text[j] = alphabet[rng.IntN(sigma)]
		}
		m.ResetCounters()
		sd.MatchText(m, text)
		w, _ := m.Counters()
		return w
	}
	w4, w256 := work(4), work(256)
	ratio := float64(w256) / float64(w4)
	// The encoded-string costs scale by bits(257)/bits(5) = 3; per-symbol
	// costs (decode pass, renaming) are sigma-independent and dilute the
	// total. Assert clear growth bounded by the pure encoding ratio.
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("work ratio sigma 256/4 = %.2f, want in [1.5, 3.5] (log-sigma scaling)", ratio)
	}
}

func TestPreprocessSymbolsPanics(t *testing.T) {
	m := pram.NewSequential()
	for _, bad := range [][][]int64{nil, {{}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PreprocessSymbols(%v) did not panic", bad)
				}
			}()
			PreprocessSymbols(m, bad, Options{})
		}()
	}
}
