package core

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/par"
	"repro/internal/pram"
)

// Check implements the paper's §3.4 output checker. It verifies that every
// claimed match in matches is a genuine occurrence of its pattern in the
// text, using only O(n) work and O(log n) time: per-position O(1) character
// checks, a prefix-maximum to find dominating matches, and O(1) exact
// (suffix-tree) LCP queries between dictionary substrings for the pairwise
// consistency of overlapping dominating matches. Lemma 3.4: if all tests
// pass, the claimed matches equal the text wherever they claim to.
//
// The checker is deterministic — it never touches fingerprints — which is
// what turns the Monte Carlo matcher into a Las Vegas algorithm.
func (d *Dictionary) Check(m *pram.Machine, text []byte, matches []Match) bool {
	return checkSeq(d, m, text, matches)
}

// CheckJoined is Check over a joined request batch (separator.go): the same
// deterministic §3.4 verification, run once over the whole joined symbol
// string. Claims are checked against the raw symbols — a (buggy or
// fingerprint-corrupted) claim spanning a request boundary fails the
// character/LCP tests because no pattern contains Sep, so a passing check
// certifies every per-slice answer exactly as a solo Check would.
func (d *Dictionary) CheckJoined(m *pram.Machine, j *Joined, matches []Match) bool {
	return checkSeq(d, m, j.Syms, matches)
}

// checkSeq is the checker body, generic over the text representation:
// []byte for plain texts, []int32 (raw symbol space, Sep included) for
// joined batches.
func checkSeq[T byte | int32](d *Dictionary, m *pram.Machine, text []T, matches []Match) bool {
	n := len(text)
	if len(matches) != n {
		return false
	}
	if n == 0 {
		return true
	}
	ok := pram.NewCellsFilled(1, 1)
	// Effective match length: undefined positions become length-1
	// singletons T[i], exactly as the paper prescribes.
	lenAt := m.GetInt64s(n)
	defer m.PutInt64s(lenAt)
	m.ParallelFor(n, func(i int) {
		mt := matches[i]
		switch {
		case mt.Length < 0 || (mt.Length == 0) != (mt.PatternID < 0):
			ok.Write(0, 0)
			lenAt[i] = 1
		case mt.Length == 0:
			lenAt[i] = 1
		default:
			if int(mt.PatternID) >= len(d.Patterns) ||
				int(mt.Length) != len(d.Patterns[mt.PatternID]) ||
				i+int(mt.Length) > n {
				ok.Write(0, 0)
				lenAt[i] = 1
				return
			}
			lenAt[i] = int64(mt.Length)
			// First-character test.
			if int32(d.Patterns[mt.PatternID][0]) != int32(text[i]) {
				ok.Write(0, 0)
			}
		}
	})
	if ok.Read(0) == 0 {
		return false
	}
	// reach[i] = i + lenAt[i]; prefix maxima identify dominating positions
	// and a dominator for each dominated one.
	pmax := m.GetInt64s(n)
	defer m.PutInt64s(pmax)
	m.ParallelFor(n, func(i int) { pmax[i] = packLenPat(int32(int64(i)+lenAt[i]), int32(i)) })
	par.PrefixMaxLinear(m, pmax)
	dominated := m.GetBools(n)
	defer m.PutBools(dominated)
	m.ParallelFor(n, func(j int) {
		if j == 0 {
			return
		}
		bestReach, bestPos := unpackLenPat(pmax[j-1])
		if int64(bestReach) >= int64(j)+lenAt[j] {
			dominated[j] = true
			// Consistency with the dominator i = bestPos: the claim at j
			// must agree with the overlapping content of the claim at i.
			i := int(bestPos)
			if !claimsAgree(d, text, matches, i, j, int(lenAt[j])) {
				ok.Write(0, 0)
			}
		}
	})
	if ok.Read(0) == 0 {
		return false
	}
	// Pairwise consistency of consecutive dominating matches.
	doms := par.Pack(m, n, func(i int) bool { return !dominated[i] })
	m.ParallelFor(max(0, len(doms)-1), func(k int) {
		i, j := doms[k], doms[k+1]
		overlap := int(int64(i) + lenAt[i] - int64(j))
		if overlap <= 0 {
			return
		}
		if !claimsAgree(d, text, matches, i, j, overlap) {
			ok.Write(0, 0)
		}
	})
	return ok.Read(0) == 1
}

// claimsAgree verifies that the claim at position j agrees with the claim
// at position i (i < j) over length overlap: claim_i[j-i : j-i+overlap] ==
// claim_j[0 : overlap]. Dictionary-vs-dictionary comparisons use exact
// suffix-tree LCP queries; singletons compare one character. The character
// comparisons run in raw symbol space, so on a joined batch a claim that
// (wrongly) spans a text-side separator fails against the Sep singleton.
func claimsAgree[T byte | int32](d *Dictionary, text []T, matches []Match, i, j, overlap int) bool {
	off := int32(j - i)
	mi := matches[i]
	if mi.Length == 0 {
		// A singleton can only dominate the position itself; overlap beyond
		// it is impossible.
		return overlap <= 1 && i == j
	}
	pi := d.starts[mi.PatternID]
	mj := matches[j]
	if mj.Length == 0 {
		// claim_j is the singleton T[j].
		return byteAt(d, pi+off) == int32(text[j])
	}
	pj := d.starts[mj.PatternID]
	return d.st.LCPSuffixes(pi+off, pj) >= int32(overlap)
}

// byteAt reads D̂ at position p (original symbol space).
func byteAt(d *Dictionary, p int32) int32 { return d.dhat[p] }

// MatchLasVegas runs MatchText and verifies the output with Check,
// re-running with fresh fingerprint seeds until the check passes (the Las
// Vegas loop). It returns the verified matches and the number of attempts
// used. With 61-bit fingerprints a retry is essentially impossible; the
// loop exists for fidelity to the paper and is exercised in tests through
// fault injection.
func (d *Dictionary) MatchLasVegas(m *pram.Machine, text []byte) ([]Match, int) {
	const maxAttempts = 8
	for attempt := 1; ; attempt++ {
		matches := d.MatchText(m, text)
		if d.Check(m, text, matches) {
			return matches, attempt
		}
		if attempt == maxAttempts {
			panic(fmt.Sprintf("core: %d consecutive fingerprint failures — input adversarial beyond design margin", maxAttempts))
		}
		d.Reseed(m, d.seed+uint64(attempt)*0x9e3779b9)
	}
}

// Reseed replaces the fingerprint randomness (hasher and dictionary table)
// without rebuilding any deterministic structure.
func (d *Dictionary) Reseed(m *pram.Machine, seed uint64) {
	d.seed = seed
	d.hasher = fingerprint.NewHasher(seed, d.st.AugLen())
	d.fpDict = d.hasher.NewTableInts(m, augSlice(d.st))
}
