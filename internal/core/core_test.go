package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// bruteSubstring returns the length of the longest prefix of text[i:] that
// occurs somewhere in dhat.
func bruteSubstring(dhat []int32, text []byte, i int) int32 {
	best := 0
	for p := 0; p < len(dhat); p++ {
		l := 0
		for p+l < len(dhat) && i+l < len(text) && dhat[p+l] == int32(text[i+l]) {
			l++
		}
		if l > best {
			best = l
		}
	}
	return int32(best)
}

func matchesEqualAC(t *testing.T, patterns [][]byte, text []byte, got []Match) {
	t.Helper()
	ac := ahocorasick.New(patterns)
	want := ac.Match(text)
	for i := range text {
		wantLen := int32(0)
		if want[i] != -1 {
			wantLen = int32(len(patterns[want[i]]))
		}
		if got[i].Length != wantLen {
			t.Fatalf("pos %d: got len %d want %d (text=%q)", i, got[i].Length, wantLen, clip(text))
		}
		if wantLen > 0 {
			// The pattern id may differ if duplicate patterns exist; the
			// matched string must be identical.
			if !bytes.Equal(patterns[got[i].PatternID], patterns[want[i]]) {
				t.Fatalf("pos %d: got pattern %q want %q", i, patterns[got[i].PatternID], patterns[want[i]])
			}
			if !bytes.Equal(text[i:i+int(wantLen)], patterns[got[i].PatternID]) {
				t.Fatalf("pos %d: claimed pattern does not occur", i)
			}
		}
	}
}

func clip(b []byte) []byte {
	if len(b) > 64 {
		return b[:64]
	}
	return b
}

func TestSubstringMatchAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(131, 132))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 30; trial++ {
			sigma := 2 + rng.IntN(3)
			numPat := 1 + rng.IntN(6)
			patterns := make([][]byte, numPat)
			for i := range patterns {
				l := 1 + rng.IntN(8)
				patterns[i] = make([]byte, l)
				for j := range patterns[i] {
					patterns[i][j] = byte('a' + rng.IntN(sigma))
				}
			}
			d := Preprocess(m, patterns, Options{Seed: uint64(trial + 1)})
			text := make([]byte, 30+rng.IntN(100))
			for j := range text {
				text[j] = byte('a' + rng.IntN(sigma))
			}
			loci := d.substringMatch(m, text)
			for i := range text {
				want := bruteSubstring(d.dhat, text, i)
				if loci[i].l != want {
					t.Fatalf("procs=%d trial=%d S[%d]=%d want %d (text=%q, dict=%q)",
						procs, trial, i, loci[i].l, want, text, patterns)
				}
				// Locus consistency: the locus string must equal the text.
				z, l := int(loci[i].z), int(loci[i].l)
				if l > 0 {
					wit := int(d.st.Witness(z))
					for k := 0; k < l; k++ {
						if d.dhat[wit+k] != int32(text[i+k]) {
							t.Fatalf("locus string mismatch at pos %d offset %d", i, k)
						}
					}
					if int(d.st.StrDepth[z]) < l {
						t.Fatalf("locus below node depth at %d", i)
					}
				}
			}
		}
	}
}

func TestMatchAgainstAhoCorasickRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(133, 134))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 40; trial++ {
			sigma := 2 + rng.IntN(4)
			numPat := 1 + rng.IntN(10)
			patterns := make([][]byte, numPat)
			for i := range patterns {
				l := 1 + rng.IntN(10)
				patterns[i] = make([]byte, l)
				for j := range patterns[i] {
					patterns[i][j] = byte('a' + rng.IntN(sigma))
				}
			}
			variant := NCAAuto
			if trial%3 == 1 {
				variant = NCANaive
			} else if trial%3 == 2 {
				variant = NCAImproved
			}
			d := Preprocess(m, patterns, Options{Seed: uint64(trial + 1), NCA: variant})
			text := make([]byte, 50+rng.IntN(300))
			for j := range text {
				text[j] = byte('a' + rng.IntN(sigma))
			}
			got := d.MatchText(m, text)
			matchesEqualAC(t, patterns, text, got)
		}
	}
}

func TestMatchKnownCases(t *testing.T) {
	m := pram.New(4)
	cases := []struct {
		patterns []string
		text     string
	}{
		{[]string{"he", "she", "his", "hers"}, "ushers"},
		{[]string{"a", "ab", "abc", "bc", "c"}, "abcabcx"},
		{[]string{"bc", "abc"}, "abc"},
		{[]string{"aa", "aaa"}, "aaaaaa"},
		{[]string{"banana", "ana", "nan"}, "bananabanana"},
		{[]string{"x"}, "yyyy"},
		{[]string{"ab"}, "ab"},
		{[]string{"ab"}, "ba"},
		{[]string{"abab", "ba"}, "ababab"},
	}
	for _, c := range cases {
		var ps [][]byte
		for _, p := range c.patterns {
			ps = append(ps, []byte(p))
		}
		d := Preprocess(m, ps, Options{Seed: 7})
		got := d.MatchText(m, []byte(c.text))
		matchesEqualAC(t, ps, []byte(c.text), got)
	}
}

func TestMatchWindowBoundaries(t *testing.T) {
	// Force tiny windows so every ExtendLeft path and anchor path is hit.
	m := pram.New(4)
	patterns := [][]byte{[]byte("abca"), []byte("bc"), []byte("ca"), []byte("a")}
	for _, L := range []int{1, 2, 3, 5, 100} {
		d := Preprocess(m, patterns, Options{Seed: 3, WindowL: L})
		text := []byte("abcabcaabcxcabca")
		got := d.MatchText(m, text)
		matchesEqualAC(t, patterns, text, got)
	}
}

func TestPrefixLengths(t *testing.T) {
	m := pram.New(4)
	patterns := [][]byte{[]byte("a"), []byte("ab"), []byte("abc"), []byte("x"), []byte("xy")}
	d := Preprocess(m, patterns, Options{Seed: 5})
	text := []byte("abcxyzabq")
	got := d.PrefixLengths(m, text)
	// Longest pattern prefix at each position, by hand:
	// abcxyzabq: pos0 "abc"(3), pos1 "b"? no pattern starts with b -> 0,
	// pos2 "c"->0, pos3 "xy"(2), pos4 "y"->0, pos5 "z"->0, pos6 "ab"(2),
	// pos7 "b"->0, pos8 "q"->0.
	want := []int32{3, 0, 0, 2, 0, 0, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("B[%d]=%d want %d (all=%v)", i, got[i], want[i], got)
		}
	}
}

func TestPrefixLengthsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(135, 136))
	m := pram.New(4)
	for trial := 0; trial < 25; trial++ {
		sigma := 2 + rng.IntN(2)
		gen := textgen.New(uint64(trial + 500))
		patterns := gen.Dictionary(1+rng.IntN(8), 1, 7, sigma)
		d := Preprocess(m, patterns, Options{Seed: uint64(trial + 1)})
		text := gen.Uniform(80, sigma)
		got := d.PrefixLengths(m, text)
		for i := range text {
			want := int32(0)
			for _, p := range patterns {
				l := 0
				for l < len(p) && i+l < len(text) && p[l] == text[i+l] {
					l++
				}
				if int32(l) > want {
					want = int32(l)
				}
			}
			if got[i] != want {
				t.Fatalf("trial %d B[%d]=%d want %d", trial, i, got[i], want)
			}
		}
	}
}

func TestWordID(t *testing.T) {
	m := pram.New(4)
	patterns := [][]byte{[]byte("a"), []byte("ab"), []byte("abc"), []byte("b")}
	d := Preprocess(m, patterns, Options{Seed: 11})
	text := []byte("abc")
	loci := d.substringMatch(m, text)
	for wordLen := int32(1); wordLen <= 3; wordLen++ {
		id := d.WordID(loci[0], wordLen)
		if id < 0 || !bytes.Equal(patterns[id], text[:wordLen]) {
			t.Fatalf("WordID(len=%d) = %d", wordLen, id)
		}
	}
	if id := d.WordID(loci[0], 4); id != -1 {
		t.Fatalf("WordID beyond locus = %d", id)
	}
	// At position 1 ("bc"): word "b" exists, word "bc" does not.
	if id := d.WordID(loci[1], 1); id != 3 {
		t.Fatalf("WordID(b) = %d", id)
	}
	if id := d.WordID(loci[1], 2); id != -1 {
		t.Fatalf("WordID(bc) = %d want -1", id)
	}
}

func TestCheckerAcceptsCorrectOutput(t *testing.T) {
	rng := rand.New(rand.NewPCG(137, 138))
	m := pram.New(4)
	for trial := 0; trial < 20; trial++ {
		gen := textgen.New(uint64(trial + 900))
		patterns := gen.Dictionary(1+rng.IntN(8), 1, 6, 3)
		d := Preprocess(m, patterns, Options{Seed: uint64(trial + 1)})
		text := gen.Uniform(200, 3)
		matches := d.MatchText(m, text)
		if !d.Check(m, text, matches) {
			t.Fatalf("trial %d: checker rejected correct output", trial)
		}
	}
}

func TestCheckerRejectsCorruptedOutput(t *testing.T) {
	rng := rand.New(rand.NewPCG(139, 140))
	m := pram.New(4)
	gen := textgen.New(77)
	patterns := gen.Dictionary(6, 2, 6, 2)
	d := Preprocess(m, patterns, Options{Seed: 13})
	text := gen.Uniform(300, 2)
	matches := d.MatchText(m, text)

	rejected := 0
	trials := 0
	for f := 0; f < 200; f++ {
		bad := append([]Match(nil), matches...)
		i := rng.IntN(len(bad))
		k := int32(rng.IntN(len(patterns)))
		// Claim pattern k matches at i; skip corruptions that are
		// accidentally true.
		if i+len(patterns[k]) <= len(text) && bytes.Equal(text[i:i+len(patterns[k])], patterns[k]) {
			continue
		}
		bad[i] = Match{PatternID: k, Length: int32(len(patterns[k]))}
		trials++
		if !d.Check(m, text, bad) {
			rejected++
		}
	}
	if trials == 0 {
		t.Skip("all corruptions were accidentally valid")
	}
	if rejected != trials {
		t.Fatalf("checker rejected %d of %d genuinely false claims", rejected, trials)
	}
}

func TestCheckerRejectsMalformed(t *testing.T) {
	m := pram.New(4)
	patterns := [][]byte{[]byte("ab")}
	d := Preprocess(m, patterns, Options{Seed: 1})
	text := []byte("abab")
	good := d.MatchText(m, text)
	if !d.Check(m, text, good) {
		t.Fatal("good output rejected")
	}
	for _, bad := range [][]Match{
		{{0, 2}, None, None},          // wrong length slice
		{{0, 2}, None, {0, 3}, None},  // length != pattern length
		{{0, 2}, None, {5, 2}, None},  // pattern id out of range
		{{0, 2}, None, None, {0, 2}},  // claim overruns the text
		{{0, 2}, {-1, 1}, None, None}, // inconsistent sentinel
		{{0, 2}, None, {-1, 2}, None}, // negative id with length
	} {
		if d.Check(m, text, bad) {
			t.Fatalf("malformed output accepted: %v", bad)
		}
	}
}

func TestMatchLasVegas(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(88)
	patterns := gen.Dictionary(8, 1, 8, 4)
	d := Preprocess(m, patterns, Options{Seed: 21})
	text := gen.Uniform(500, 4)
	matches, attempts := d.MatchLasVegas(m, text)
	if attempts != 1 {
		t.Fatalf("attempts = %d", attempts)
	}
	matchesEqualAC(t, patterns, text, matches)
}

func TestReseedChangesFingerprintsButNotOutput(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(99)
	patterns := gen.Dictionary(5, 1, 6, 3)
	d := Preprocess(m, patterns, Options{Seed: 1})
	text := gen.Uniform(200, 3)
	a := d.MatchText(m, text)
	d.Reseed(m, 999)
	b := d.MatchText(m, text)
	for i := range a {
		if a[i].Length != b[i].Length {
			t.Fatalf("output depends on seed at %d", i)
		}
	}
}

func TestDNAWorkload(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(1234)
	text, patterns := gen.PlantedDictionary(2000, 12, 10, 37, 4)
	d := Preprocess(m, patterns, Options{Seed: 3})
	got, attempts := d.MatchLasVegas(m, text)
	if attempts != 1 {
		t.Fatalf("attempts=%d", attempts)
	}
	matchesEqualAC(t, patterns, text, got)
	// Planted patterns must actually be found.
	found := 0
	for i := range got {
		if got[i].Length > 0 {
			found++
		}
	}
	if found < 10 {
		t.Fatalf("only %d matches found on planted workload", found)
	}
}

func TestPreprocessPanics(t *testing.T) {
	m := pram.NewSequential()
	for _, bad := range [][][]byte{nil, {{}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Preprocess(%v) did not panic", bad)
				}
			}()
			Preprocess(m, bad, Options{})
		}()
	}
}

func TestSequentialAndParallelMatchAgree(t *testing.T) {
	gen := textgen.New(555)
	patterns := gen.Dictionary(10, 1, 9, 3)
	text := gen.Uniform(400, 3)
	seq := pram.NewSequential()
	par := pram.New(4)
	ds := Preprocess(seq, patterns, Options{Seed: 2})
	dp := Preprocess(par, patterns, Options{Seed: 2})
	a := ds.MatchText(seq, text)
	b := dp.MatchText(par, text)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pos %d: %v vs %v", i, a[i], b[i])
		}
	}
}
