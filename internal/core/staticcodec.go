package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/staticdict"
)

// End-to-end static dictionary compression (§5): parse the text into the
// fewest dictionary words and emit one word reference per phrase. This is
// the "optimal compression with a static dictionary" of the title — the
// compressed form is the reference sequence, and decompression is plain
// concatenation.

// CompressStatic returns the optimal (fewest-references) encoding of text
// as dictionary word indices. The dictionary must have the prefix property
// and contain every symbol of the text as (a prefix of) some word;
// otherwise ErrNoParse or a resolution error is returned.
func (d *Dictionary) CompressStatic(m *pram.Machine, text []byte) ([]int32, error) {
	if len(text) == 0 {
		return nil, nil
	}
	loci := d.substringMatch(m, text)
	maxLen := make([]int32, len(text))
	m.ParallelFor(len(text), func(i int) {
		b, _, _ := d.prefixAt(loci[i])
		maxLen[i] = b
	})
	phrases, err := staticdict.OptimalParse(m, len(text), maxLen)
	if err != nil {
		return nil, err
	}
	refs := make([]int32, len(phrases))
	bad := pram.NewCells(1)
	m.ParallelForCost(len(phrases), d.liftCost(), func(k int) {
		p := phrases[k]
		id := d.WordID(loci[p.Pos], p.Len)
		if id < 0 {
			bad.Write(0, 1)
			return
		}
		refs[k] = id
	})
	if bad.Read(0) != 0 {
		return nil, fmt.Errorf("core: parse produced a non-word phrase — dictionary lacks the prefix property")
	}
	return refs, nil
}

// CompressStaticJoined is CompressStatic over a joined request batch
// (separator.go): Step 1 runs ONCE over the whole joined symbol string, and
// the §5 parse then runs per slice over that shared locus table. Because no
// B value crosses a text-side separator (the safety argument in
// separator.go), each slice's phrase sequence — and therefore its reference
// sequence — is byte-identical to CompressStatic on that slice alone.
// Errors are per slice: one slice the dictionary cannot express does not
// poison its batch siblings.
func (d *Dictionary) CompressStaticJoined(m *pram.Machine, j *Joined) ([][]int32, []error) {
	k := j.NumTexts()
	allRefs := make([][]int32, k)
	errs := make([]error, k)
	if len(j.Syms) == 0 {
		return allRefs, errs
	}
	loci := d.substringMatchSyms(m, j.Syms)
	maxLen := make([]int32, len(j.Syms))
	m.ParallelFor(len(j.Syms), func(i int) {
		b, _, _ := d.prefixAt(loci[i])
		maxLen[i] = b
	})
	for t := 0; t < k; t++ {
		start, end := j.Bounds(t)
		if start == end {
			continue
		}
		phrases, err := staticdict.OptimalParse(m, end-start, maxLen[start:end])
		if err != nil {
			errs[t] = err
			continue
		}
		refs := make([]int32, len(phrases))
		bad := pram.NewCells(1)
		m.ParallelForCost(len(phrases), d.liftCost(), func(p int) {
			ph := phrases[p]
			id := d.WordID(loci[start+int(ph.Pos)], ph.Len)
			if id < 0 {
				bad.Write(0, 1)
				return
			}
			refs[p] = id
		})
		if bad.Read(0) != 0 {
			errs[t] = fmt.Errorf("core: parse produced a non-word phrase — dictionary lacks the prefix property")
			continue
		}
		allRefs[t] = refs
	}
	return allRefs, errs
}

// DecompressStatic expands a reference sequence produced by CompressStatic.
func (d *Dictionary) DecompressStatic(m *pram.Machine, refs []int32) ([]byte, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	// Offsets by prefix sums over word lengths.
	lens := make([]int64, len(refs))
	bad := pram.NewCells(1)
	m.ParallelFor(len(refs), func(k int) {
		r := refs[k]
		if r < 0 || int(r) >= len(d.Patterns) {
			bad.Write(0, 1)
			return
		}
		lens[k] = int64(len(d.Patterns[r]))
	})
	if bad.Read(0) != 0 {
		return nil, fmt.Errorf("core: word reference out of range")
	}
	total := par.ExclusiveScan(m, lens) // lens[k] becomes the output offset
	out := make([]byte, total)
	maxWord := int64(1)
	for _, p := range d.Patterns {
		if int64(len(p)) > maxWord {
			maxWord = int64(len(p))
		}
	}
	m.ParallelForCost(len(refs), maxWord, func(k int) {
		copy(out[lens[k]:], d.Patterns[refs[k]])
	})
	return out, nil
}

// liftCost is the charged cost of one level-ancestor resolution.
func (d *Dictionary) liftCost() int64 {
	lg := int64(1)
	for 1<<lg < d.st.NumNodes {
		lg++
	}
	return lg
}
