package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// Both Step 1A strategies must produce identical loci on every input.
func TestAnchorStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(221, 222))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 25; trial++ {
			sigma := 2 + rng.IntN(3)
			gen := textgen.New(uint64(trial + 700))
			patterns := gen.Dictionary(1+rng.IntN(10), 1, 9, sigma)
			text := gen.Uniform(60+rng.IntN(200), sigma)
			// WindowL = 1 makes every position an anchor, maximizing
			// coverage of the locate code.
			dSep := Preprocess(m, patterns, Options{Seed: uint64(trial + 1), Anchor: AnchorSeparator, WindowL: 1})
			dSA := Preprocess(m, patterns, Options{Seed: uint64(trial + 1), Anchor: AnchorSA, WindowL: 1})
			a := dSep.substringMatch(m, text)
			b := dSA.substringMatch(m, text)
			for i := range text {
				if a[i] != b[i] {
					t.Fatalf("procs=%d trial=%d pos %d: separator %+v vs SA %+v",
						procs, trial, i, a[i], b[i])
				}
			}
		}
	}
}

// The separator tree must be a valid centroid decomposition: every node
// has a chain, chains share prefixes with their components, and chain
// lengths are logarithmic.
func TestSeparatorTreeShape(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(223)
	patterns := gen.Dictionary(64, 2, 16, 4)
	d := Preprocess(m, patterns, Options{Seed: 1})
	if d.sep == nil {
		t.Fatal("separator tree not built")
	}
	n := d.st.NumNodes
	maxChain := 0
	for v := 0; v < n; v++ {
		chain := d.sep.danc[v]
		if len(chain) == 0 {
			t.Fatalf("node %d has no centroid chain", v)
		}
		if int(chain[len(chain)-1]) != v {
			t.Fatalf("node %d chain does not end at itself", v)
		}
		if len(chain) > maxChain {
			maxChain = len(chain)
		}
	}
	// Centroid decomposition depth <= log2(n) + 2.
	lg := 1
	for 1<<lg < n {
		lg++
	}
	if maxChain > lg+2 {
		t.Fatalf("chain length %d exceeds log bound %d (n=%d)", maxChain, lg+2, n)
	}
	// The decomposition root is shared by every chain.
	root := d.sep.danc[0][0]
	for v := 0; v < n; v++ {
		if d.sep.danc[v][0] != root {
			t.Fatalf("node %d chain starts at %d, want %d", v, d.sep.danc[v][0], root)
		}
	}
}

// Worst-case tree shapes for centroid decomposition: paths (from unary
// strings) and stars (from uniform random single chars).
func TestSeparatorDegenerateShapes(t *testing.T) {
	m := pram.New(4)
	// Path-like suffix tree: a^k patterns.
	d := Preprocess(m, [][]byte{[]byte("aaaaaaaaaaaaaaaa")}, Options{Seed: 1})
	text := []byte("aaaaaaaaaaaaaaaaaaaaaaaa")
	got := d.MatchText(m, text)
	for i := 0; i+16 <= len(text); i++ {
		if got[i].Length != 16 {
			t.Fatalf("pos %d: %d", i, got[i].Length)
		}
	}
	// Star-like: many single-char patterns.
	var pats [][]byte
	for c := byte('a'); c <= 'z'; c++ {
		pats = append(pats, []byte{c})
	}
	d2 := Preprocess(m, pats, Options{Seed: 1})
	got2 := d2.MatchText(m, []byte("hello world"))
	for i, c := range []byte("hello world") {
		want := int32(1)
		if c == ' ' {
			want = 0
		}
		if got2[i].Length != want {
			t.Fatalf("star pos %d: %d want %d", i, got2[i].Length, want)
		}
	}
}

// The separator anchor must also hold up under the Las Vegas pipeline on a
// larger mixed workload.
func TestSeparatorLasVegasLarge(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(224)
	text, patterns := gen.PlantedDictionary(20_000, 30, 10, 101, 4)
	d := Preprocess(m, patterns, Options{Seed: 7, Anchor: AnchorSeparator})
	matches, attempts := d.MatchLasVegas(m, text)
	if attempts != 1 {
		t.Fatalf("attempts = %d", attempts)
	}
	matchesEqualAC(t, patterns, text, matches)
}
