package conncomp

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func sameLabeling(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComponentsAgainstUnionFind(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, tc := range []struct{ n, mEdges int }{
			{1, 0}, {2, 0}, {2, 1}, {10, 5}, {100, 50}, {100, 300}, {1000, 800}, {1000, 5000},
		} {
			edges := make([]Edge, tc.mEdges)
			for i := range edges {
				edges[i] = Edge{int32(rng.IntN(tc.n)), int32(rng.IntN(tc.n))}
			}
			want := ComponentsSequential(tc.n, edges)
			got := Components(m, tc.n, edges)
			if !sameLabeling(got, want) {
				t.Fatalf("procs=%d n=%d m=%d labeling mismatch", procs, tc.n, tc.mEdges)
			}
		}
	}
}

func TestComponentsPathAndCycle(t *testing.T) {
	m := pram.New(4)
	const n = 500
	edges := make([]Edge, 0, n)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)})
	}
	labels := Components(m, n, edges)
	for v := 0; v < n; v++ {
		if labels[v] != 0 {
			t.Fatalf("path: label[%d]=%d", v, labels[v])
		}
	}
	// Two disjoint cycles.
	edges = edges[:0]
	for i := 0; i < 250; i++ {
		edges = append(edges, Edge{int32(i), int32((i + 1) % 250)})
	}
	for i := 250; i < 500; i++ {
		j := i + 1
		if j == 500 {
			j = 250
		}
		edges = append(edges, Edge{int32(i), int32(j)})
	}
	labels = Components(m, n, edges)
	for v := 0; v < 250; v++ {
		if labels[v] != 0 {
			t.Fatalf("cycle1 label[%d]=%d", v, labels[v])
		}
	}
	for v := 250; v < 500; v++ {
		if labels[v] != 250 {
			t.Fatalf("cycle2 label[%d]=%d", v, labels[v])
		}
	}
}

func TestComponentsIsolatedAndSelfLoops(t *testing.T) {
	m := pram.New(4)
	labels := Components(m, 5, []Edge{{1, 1}, {3, 4}})
	want := []int{0, 1, 2, 3, 3}
	if !sameLabeling(labels, want) {
		t.Fatalf("labels = %v want %v", labels, want)
	}
}

func TestComponentsStarAndComplete(t *testing.T) {
	m := pram.New(4)
	const n = 200
	star := make([]Edge, n-1)
	for i := 1; i < n; i++ {
		star[i-1] = Edge{0, int32(i)}
	}
	for _, l := range Components(m, n, star) {
		if l != 0 {
			t.Fatal("star not one component")
		}
	}
	var complete []Edge
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			complete = append(complete, Edge{int32(i), int32(j)})
		}
	}
	for _, l := range Components(m, 60, complete) {
		if l != 0 {
			t.Fatal("complete graph not one component")
		}
	}
}
