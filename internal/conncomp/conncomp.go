// Package conncomp computes connected components of an undirected graph in
// parallel (the paper's Lemma 2.2, Gazit). The implementation is
// Shiloach–Vishkin-style min-label hooking interleaved with pointer
// jumping: O(log n) hook/jump rounds, O((n+m) log n) work — a documented
// substitution (DESIGN.md §4) for Gazit's O(m)-work randomized algorithm.
// The paper needs components only to resolve the copy-forest during LZ1
// uncompression (§4.2), where an O(n)-work pointer-jumping alternative is
// also available and benchmarked as an ablation.
package conncomp

import (
	"repro/internal/pram"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct{ U, V int32 }

// Components returns a label for each of the n vertices such that two
// vertices get equal labels iff they are connected. Labels are the smallest
// vertex index in each component.
func Components(m *pram.Machine, n int, edges []Edge) []int {
	d := pram.NewCells(n)
	m.ParallelFor(n, func(v int) { d.Write(v, int64(v)) })
	for {
		changed := pram.NewCells(1)
		// Hooking: every edge proposes the smaller endpoint-label as the new
		// parent of the larger label's root. WriteMin makes labels strictly
		// decrease along parent pointers, keeping the forest acyclic under
		// concurrent hooks (arbitrary CRCW is enough; combining-min makes
		// the result deterministic given the schedule of rounds).
		m.ParallelFor(len(edges), func(i int) {
			du, dv := d.Read(int(edges[i].U)), d.Read(int(edges[i].V))
			if du == dv {
				return
			}
			if du > dv {
				du, dv = dv, du
			}
			// du < dv: hook the root of the larger label toward the smaller.
			if d.WriteMin(int(dv), du) {
				changed.Write(0, 1)
			}
		})
		// One pointer-jumping step.
		m.ParallelFor(n, func(v int) {
			dv := d.Read(v)
			ddv := d.Read(int(dv))
			if ddv != dv {
				d.Write(v, ddv)
				changed.Write(0, 1)
			}
		})
		if changed.Read(0) == 0 {
			break
		}
	}
	out := make([]int, n)
	m.ParallelFor(n, func(v int) { out[v] = int(d.Read(v)) })
	return out
}

// ComponentsSequential is the union-find reference implementation used by
// tests and as the one-processor baseline.
func ComponentsSequential(n int, edges []Edge) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(int(e.U)), find(int(e.V))
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	out := make([]int, n)
	// Two passes so every label is the component minimum.
	for v := 0; v < n; v++ {
		out[v] = find(v)
	}
	min := make([]int, n)
	for i := range min {
		min[i] = i
	}
	for v := 0; v < n; v++ {
		if v < min[out[v]] {
			min[out[v]] = v
		}
	}
	for v := 0; v < n; v++ {
		out[v] = min[out[v]]
	}
	return out
}
