package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// drive calls fire n times and returns how many fired.
func drive(p *Plan, pt Point, n int) int {
	fired := 0
	for i := 0; i < n; i++ {
		if f, _, _ := p.fire(pt); f {
			fired++
		}
	}
	return fired
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "fp.collide:p=0.25,n=10;pool.panic:every=97;stream.stall:p=0.5,delay=2ms"
	p, err := ParsePlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
	p2, err := ParsePlan(7, p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != spec {
		t.Errorf("re-parse drifted: %q", p2.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"noseparator",
		"pt:p=1.5",
		"pt:p=-0.1",
		"pt:every=0",
		"pt:n=-1",
		"pt:delay=-1s",
		"pt:bogus=1",
		"pt:p",
		":p=0.5",
	}
	for _, spec := range bad {
		if _, err := ParsePlan(1, spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
	if p, err := ParsePlan(1, "  "); err != nil || len(p.Stats()) != 0 {
		t.Errorf("empty spec: plan %v err %v", p.Stats(), err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	const n = 10000
	mk := func(seed uint64) []bool {
		p := NewPlan(seed).Set(FPCollide, Rule{P: 0.1})
		out := make([]bool, n)
		for i := range out {
			out[i], _, _ = p.fire(FPCollide)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := mk(43)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical schedules")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	// p=0.1 over 10k calls: expect ~1000; accept a generous window.
	if fired < 700 || fired > 1300 {
		t.Errorf("p=0.1 fired %d/%d times, far from expectation", fired, n)
	}
}

func TestEveryAndCap(t *testing.T) {
	p := NewPlan(1).Set(PoolPanic, Rule{Every: 10})
	if got := drive(p, PoolPanic, 100); got != 10 {
		t.Errorf("every=10 over 100 calls fired %d, want 10", got)
	}
	p = NewPlan(1).Set(PoolPanic, Rule{Every: 1, N: 3})
	if got := drive(p, PoolPanic, 100); got != 3 {
		t.Errorf("n=3 cap fired %d, want 3", got)
	}
	st := p.Stats()
	if len(st) != 1 || st[0].Calls != 100 || st[0].Fired != 3 {
		t.Errorf("stats = %+v, want calls=100 fired=3", st)
	}
}

func TestNilAndUnknownPoints(t *testing.T) {
	var nilPlan *Plan
	if f, _, _ := nilPlan.fire(FPCollide); f {
		t.Error("nil plan fired")
	}
	if nilPlan.Stats() != nil || nilPlan.String() != "" {
		t.Error("nil plan has state")
	}
	p := NewPlan(1).Set(FPCollide, Rule{P: 1})
	if f, _, _ := p.fire(PoolPanic); f {
		t.Error("unconfigured point fired")
	}
}

func TestConcurrentFireCountsAreExact(t *testing.T) {
	// Under concurrency the assignment of firings to callers varies, but
	// the total over k calls must match the sequential schedule exactly for
	// every=, and the counters must not lose updates.
	const goroutines, per = 8, 1000
	p := NewPlan(9).Set(PoolDelay, Rule{Every: 7})
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := drive(p, PoolDelay, per)
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	want := goroutines * per / 7
	if total != want {
		t.Errorf("every=7 over %d concurrent calls fired %d, want %d", goroutines*per, total, want)
	}
}

func TestInjectedError(t *testing.T) {
	err := &InjectedError{Point: PersistWrite, Op: "write"}
	if !IsInjected(err) {
		t.Error("IsInjected(InjectedError) = false")
	}
	wrapped := errors.Join(errors.New("outer"), err)
	if !IsInjected(wrapped) {
		t.Error("IsInjected(wrapped) = false")
	}
	if IsInjected(errors.New("plain")) {
		t.Error("IsInjected(plain) = true")
	}
	if err.Error() == "" {
		t.Error("empty error string")
	}
}

func TestRuleDelayParsed(t *testing.T) {
	p, err := ParsePlan(3, "stream.stall:every=1,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	f, _, d := p.fire(StreamStall)
	if !f || d != time.Millisecond {
		t.Errorf("fire = %v delay = %v, want true 1ms", f, d)
	}
}
