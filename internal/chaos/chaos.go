// Package chaos is a deterministic fault-injection layer for the repo's
// Las Vegas recovery machinery.
//
// The paper's headline algorithms are Las Vegas: a Monte Carlo fingerprint
// phase followed by a deterministic checker, with detect-and-retry as the
// correctness argument (§3.4). With 61-bit fingerprints a natural collision
// has probability ~n/2^61 per comparison, so the recovery paths built around
// that argument — the reseed loop in internal/server, panic containment in
// internal/pram, snapshot quarantine in internal/persist — essentially never
// execute in production. This package makes them executable on demand: a
// seeded Plan decides, deterministically and reproducibly, when each named
// injection point "fires", and hook call sites threaded through the stack's
// natural seams (fingerprint equality, PRAM super-steps, persist I/O, the
// streaming producer, LZ1 token emission) consult it.
//
// Zero overhead when disabled: the hook functions (Fire, Err, Sleep,
// CorruptByte) live behind the `chaos` build tag. Without the tag
// (hooks_off.go) they are constant-returning leaf functions that the
// compiler inlines and dead-code-eliminates, so production binaries carry
// no branch, no atomic, and no plan lookup at any injection point. With
// `-tags chaos` (hooks_on.go) they consult the globally installed Plan.
//
// Determinism: every decision is a pure function of (plan seed, point name,
// per-point call ordinal). The ordinal is an atomic counter, so under
// concurrency the *assignment* of firings to goroutines varies run to run,
// but the multiset of decisions — how many of the first k calls fire — is
// exactly reproducible from the seed, which is what soak tests and bug
// reproductions need.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names one injection site. The convention is "layer.effect".
type Point string

// The injection points wired through the repo. A Plan may name any Point —
// unknown points are legal (they just never get consulted) — but these are
// the ones with live call sites.
const (
	// FPCollide makes fingerprint.Table.Equal report equality for strings
	// whose fingerprints differ — a forced fingerprint collision. This is
	// the fault the paper's Las Vegas argument exists for: the §3.4 checker
	// rejects the resulting output and the caller reseeds and retries.
	FPCollide Point = "fp.collide"

	// PoolPanic panics inside a pram super-step chunk on a worker (or the
	// publishing caller). Exercises the pool's per-step panic containment.
	PoolPanic Point = "pool.panic"

	// PoolDelay sleeps inside a pram super-step chunk, simulating a
	// straggler worker (scheduling jitter, page fault, cgroup throttle).
	PoolDelay Point = "pool.delay"

	// PersistWrite fails the data write of an atomic snapshot put.
	PersistWrite Point = "persist.write"

	// PersistSync fails the fsync before the atomic rename.
	PersistSync Point = "persist.sync"

	// PersistRename fails the final rename of an atomic snapshot put.
	PersistRename Point = "persist.rename"

	// PersistWriteFlip flips one bit of the payload actually written to the
	// temp file (the in-memory copy stays intact) — silent media corruption
	// at write time, caught by the store's post-write read-back verify.
	PersistWriteFlip Point = "persist.writeflip"

	// PersistBitflip flips one bit of snapshot bytes just read from disk,
	// before CRC validation — bit rot at read time, caught by the codec and
	// routed to quarantine.
	PersistBitflip Point = "persist.bitflip"

	// PersistQuarantine fails the quarantine rename itself, exercising the
	// surfaced quarantine-failure path (logged and counted, never silent).
	PersistQuarantine Point = "persist.quarantine"

	// StreamStall sleeps in the streaming producer between segment reads —
	// a slow client or a congested link.
	StreamStall Point = "stream.stall"

	// StreamTruncate fails the streaming producer's read mid-stream — an
	// aborted upload. The pipeline must surface an explicit error (NDJSON
	// trailer), never a silently short output.
	StreamTruncate Point = "stream.truncate"

	// LZCorrupt corrupts one token of an LZ1 parse before verification —
	// the LZ1 analogue of a fingerprint collision, caught by the
	// deterministic parse verifier and retried.
	LZCorrupt Point = "lz.corrupt"

	// BatchDemux panics while demultiplexing one request's slice out of a
	// coalesced batch (internal/server). The per-request containment must
	// fail only that request; its batch siblings complete with verified
	// output.
	BatchDemux Point = "batch.demux"

	// BatchStall sleeps in the batcher's delay-timer flush path
	// (internal/batch) before the pending batch is taken — a stalled
	// dispatcher. Queued requests must still honor their own deadlines.
	BatchStall Point = "batch.stall"

	// CzCache corrupts a memoized token transition in the compressed-domain
	// scanner (internal/czsearch): the cached exit state is perturbed when
	// the entry is stored, so every later hit on that key replays from the
	// wrong automaton state. A poisoned memo is the cache-consistency fault
	// the serving layer's sampled decompress-then-match oracle exists to
	// catch — the request must fail loudly, never serve divergent matches.
	CzCache Point = "czsearch.cache"

	// CzTruncate fails the compressed scanner's token read mid-stream — an
	// aborted upload or a corrupt container tail. The scanner must surface a
	// typed error (NDJSON trailer / non-zero CLI exit), never a silently
	// short match set.
	CzTruncate Point = "czsearch.truncate"

	// The rpc.* family is consulted by the cluster RPC transport
	// (internal/resilience), not through the build-tag hooks: the transport
	// holds its own Plan (installed via matchd -rpc-chaos-plan or POST
	// /v1/rpcfaults) and calls Decide directly, so wire faults are available
	// in any build — they never touch the hot single-node paths the hooks
	// guard. Each point also matches with a ".<peerName>" suffix
	// (e.g. "rpc.refuse.n2"), scoping the fault to one destination; rules
	// installed on only one side of a link produce an asymmetric partition
	// (A→B dead, B→A alive).

	// RPCRefuse fails an outbound request before dialing — connection
	// refused, the dead-process failure mode.
	RPCRefuse Point = "rpc.refuse"

	// RPCBlackhole accepts the request and then never answers: the attempt
	// blocks until its context is canceled — the partitioned-link failure
	// mode, the one a fast error never simulates.
	RPCBlackhole Point = "rpc.blackhole"

	// RPCDelay sleeps the rule's delay before forwarding — a slow or
	// congested link.
	RPCDelay Point = "rpc.delay"

	// RPCReset returns response headers normally and then fails the body
	// mid-read — a connection reset after partial transfer.
	RPCReset Point = "rpc.reset"
)

// Rule says when one point fires. Exactly one trigger applies: Every > 0
// fires on every Every-th call; otherwise P is the per-call probability
// (derived deterministically from the seed and the call ordinal). N > 0
// caps the total number of firings; Delay is how long Sleep-style points
// sleep when they fire.
type Rule struct {
	P     float64
	Every int64
	N     int64
	Delay time.Duration
}

// pointState is a Rule plus its live counters.
type pointState struct {
	Rule
	calls atomic.Int64
	fired atomic.Int64
}

// Plan is a seeded fault schedule: a rule per point. A nil *Plan never
// fires. Plans are safe for concurrent use.
type Plan struct {
	seed   uint64
	points map[Point]*pointState
}

// NewPlan returns an empty plan with the given seed. Points are added with
// Set.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, points: make(map[Point]*pointState)}
}

// Set installs (or replaces) the rule for a point, resetting its counters.
// It returns the plan for chaining. Not safe concurrently with decisions —
// configure the plan fully before installing it.
func (p *Plan) Set(pt Point, r Rule) *Plan {
	p.points[pt] = &pointState{Rule: r}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// splitmix64 is the SplitMix64 finalizer — a full-avalanche mix used to
// turn (seed, point, ordinal) into an i.i.d.-looking uniform 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint folds a point name into 64 bits (FNV-1a).
func hashPoint(pt Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(pt); i++ {
		h ^= uint64(pt[i])
		h *= 1099511628211
	}
	return h
}

// decide is the deterministic core: should the c-th call (1-based) of pt
// fire under rule r and seed s?
func decide(s uint64, pt Point, c int64, r *pointState) bool {
	if r.Every > 0 {
		return c%r.Every == 0
	}
	if r.P <= 0 {
		return false
	}
	if r.P >= 1 {
		return true
	}
	u := splitmix64(s ^ hashPoint(pt) ^ uint64(c))
	return float64(u>>11)/(1<<53) < r.P
}

// fire records one call to pt and reports whether it fires, together with
// the firing ordinal (1-based among firings; 0 when not firing) — corrupt
// points use the ordinal to pick a deterministic bit — and the rule's
// delay.
// Decide consults the plan for one named point and returns whether the
// fault fires, the ordinal of the call, and the rule's delay. It is the
// exported form of the hook-side decision for callers that hold their own
// Plan rather than the process-global hook — the cluster RPC transport
// (internal/resilience) uses it so wire faults work in any build.
func (p *Plan) Decide(pt Point) (fire bool, ordinal int64, delay time.Duration) {
	return p.fire(pt)
}

func (p *Plan) fire(pt Point) (bool, int64, time.Duration) {
	if p == nil {
		return false, 0, 0
	}
	st, ok := p.points[pt]
	if !ok {
		return false, 0, 0
	}
	c := st.calls.Add(1)
	if !decide(p.seed, pt, c, st) {
		return false, 0, 0
	}
	f := st.fired.Add(1)
	if st.N > 0 && f > st.N {
		return false, 0, 0
	}
	return true, f, st.Delay
}

// PointStats reports one point's call/fire counters.
type PointStats struct {
	Point Point `json:"point"`
	Calls int64 `json:"calls"`
	Fired int64 `json:"fired"`
}

// Stats returns per-point counters in point-name order. Fired never exceeds
// the rule's N cap.
func (p *Plan) Stats() []PointStats {
	if p == nil {
		return nil
	}
	out := make([]PointStats, 0, len(p.points))
	for pt, st := range p.points {
		f := st.fired.Load()
		if st.N > 0 && f > st.N {
			f = st.N
		}
		out = append(out, PointStats{Point: pt, Calls: st.calls.Load(), Fired: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// String renders the plan in the ParsePlan grammar (counters excluded).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	pts := make([]Point, 0, len(p.points))
	for pt := range p.points {
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	var b strings.Builder
	for i, pt := range pts {
		if i > 0 {
			b.WriteByte(';')
		}
		st := p.points[pt]
		b.WriteString(string(pt))
		sep := ':'
		put := func(k, v string) {
			b.WriteRune(sep)
			sep = ','
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
		if st.Every > 0 {
			put("every", strconv.FormatInt(st.Every, 10))
		} else {
			put("p", strconv.FormatFloat(st.P, 'g', -1, 64))
		}
		if st.N > 0 {
			put("n", strconv.FormatInt(st.N, 10))
		}
		if st.Delay > 0 {
			put("delay", st.Delay.String())
		}
	}
	return b.String()
}

// ParsePlan builds a plan from a seed and a spec string. Grammar:
//
//	spec  := entry (';' entry)*
//	entry := point ':' kv (',' kv)*
//	kv    := 'p' '=' float            per-call probability in [0, 1]
//	       | 'every' '=' int          fire every k-th call (overrides p)
//	       | 'n' '=' int              cap total firings
//	       | 'delay' '=' duration     sleep length for stall/delay points
//
// Example: "fp.collide:p=0.01,n=50;pool.panic:every=997;stream.stall:p=0.05,delay=5ms"
//
// Whitespace around tokens is ignored. An empty spec yields an empty plan.
func ParsePlan(seed uint64, spec string) (*Plan, error) {
	p := NewPlan(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, kvs, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("chaos: entry %q: want point:key=val[,key=val]", entry)
		}
		pt := Point(strings.TrimSpace(name))
		if pt == "" {
			return nil, fmt.Errorf("chaos: entry %q: empty point name", entry)
		}
		var r Rule
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: %s: %q is not key=val", pt, kv)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			var err error
			switch k {
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.P < 0 || r.P > 1) {
					err = fmt.Errorf("probability %v outside [0, 1]", r.P)
				}
			case "every":
				r.Every, err = strconv.ParseInt(v, 10, 64)
				if err == nil && r.Every < 1 {
					err = fmt.Errorf("every=%d must be >= 1", r.Every)
				}
			case "n":
				r.N, err = strconv.ParseInt(v, 10, 64)
				if err == nil && r.N < 0 {
					err = fmt.Errorf("n=%d must be >= 0", r.N)
				}
			case "delay":
				r.Delay, err = time.ParseDuration(v)
				if err == nil && r.Delay < 0 {
					err = fmt.Errorf("delay %v must be >= 0", r.Delay)
				}
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: %s: %v", pt, err)
			}
		}
		p.Set(pt, r)
	}
	return p, nil
}

// InjectedError is the error produced by error-returning injection points.
// It is defined unconditionally (not behind the build tag) so recovery code
// and tests can errors.As against it in any build.
type InjectedError struct {
	Point Point
	Op    string // the operation the fault replaced, e.g. "write", "read"
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault at %s", e.Op, e.Point)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}
