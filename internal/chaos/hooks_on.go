//go:build chaos

package chaos

import (
	"sync/atomic"
	"time"
)

// This file is the live half of the injection API, compiled only under
// -tags chaos. Hooks consult the process-wide installed plan; a nil plan
// (nothing installed) never fires, so a chaos-built binary with no plan
// behaves like production, just a pointer load slower per hook.

// Compiled reports whether fault injection is compiled into this binary.
const Compiled = true

var active atomic.Pointer[Plan]

// Install sets the process-wide active plan (nil disarms every point).
// Counters live on the plan, so re-installing the same plan preserves its
// history and installing a fresh plan resets it.
func Install(p *Plan) { active.Store(p) }

// Active returns the installed plan, or nil.
func Active() *Plan { return active.Load() }

// Fire reports whether the point fires on this call.
func Fire(pt Point) bool {
	f, _, _ := active.Load().fire(pt)
	return f
}

// Err returns an *InjectedError when the point fires, else nil.
func Err(pt Point, op string) error {
	if Fire(pt) {
		return &InjectedError{Point: pt, Op: op}
	}
	return nil
}

// Sleep blocks for the point's configured delay when it fires.
func Sleep(pt Point) {
	if f, _, d := active.Load().fire(pt); f && d > 0 {
		time.Sleep(d)
	}
}

// CorruptByte, when the point fires, returns a deterministic (index, mask)
// to XOR into a buffer of length n, and true. The index and bit follow the
// firing ordinal, so a fixed seed damages the same offsets run after run.
func CorruptByte(pt Point, n int) (int, byte, bool) {
	f, ord, _ := active.Load().fire(pt)
	if !f || n <= 0 {
		return 0, 0, false
	}
	p := active.Load()
	u := splitmix64(p.seed ^ hashPoint(pt) ^ uint64(ord)*0x9e3779b97f4a7c15)
	return int(u % uint64(n)), 1 << ((u >> 32) % 8), true
}
