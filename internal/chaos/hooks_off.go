//go:build !chaos

package chaos

// This file is the production half of the injection API: every hook is a
// constant-returning leaf function. The compiler inlines them at every call
// site and dead-code-eliminates the guarded branch, so a binary built
// without -tags chaos carries no fault-injection overhead at all — no
// branch, no atomic, no map lookup. hooks_on.go is the live half.

// Compiled reports whether fault injection is compiled into this binary.
const Compiled = false

// Install sets the process-wide active plan. Without the chaos tag it is a
// no-op; callers that require injection should check Compiled first.
func Install(*Plan) {}

// Active returns the installed plan (always nil without the chaos tag).
func Active() *Plan { return nil }

// Fire reports whether the point fires on this call.
func Fire(Point) bool { return false }

// Err returns an *InjectedError when the point fires, else nil.
func Err(Point, string) error { return nil }

// Sleep blocks for the point's configured delay when it fires.
func Sleep(Point) {}

// CorruptByte, when the point fires, returns a deterministic (index, mask)
// to XOR into a buffer of length n, and true. Callers apply the flip
// themselves so they control which copy of the data is damaged.
func CorruptByte(Point, int) (int, byte, bool) { return 0, 0, false }
