package stream

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
)

// FuzzStreamEquivalence checks, for random texts and random segmentations —
// including segments smaller than the longest pattern — that every
// streaming codec is byte-identical to its one-shot counterpart:
//
//   - Match emits exactly the batch MatchLasVegas events,
//   - Parse emits exactly the batch FrontierParse phrases (count-equal to
//     OptimalParse), with word IDs that spell their phrases,
//   - Uncompress reproduces the text from an lz.Compress container.
func FuzzStreamEquivalence(f *testing.F) {
	f.Add([]byte("abcabracadabra"), uint16(3))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaa"), uint16(1))
	f.Add([]byte("cabcabcabbbabcaabca"), uint16(7))
	f.Add(bytes.Repeat([]byte("abca"), 300), uint16(64))

	m := pram.NewSequential()
	d := core.Preprocess(m, prefixClosed, core.Options{Seed: 2})
	maxPat := d.MaxPatternLen()

	f.Fuzz(func(t *testing.T, data []byte, seg uint16) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		text := make([]byte, len(data))
		for i, v := range data {
			text[i] = 'a' + v%3
		}
		// Segment sizes 1..96 cover both the degenerate (< maxPat, so the
		// carry spans several segments) and the generous regime.
		segSize := int(seg)%96 + 1
		cfg := Config{SegmentBytes: segSize}
		ctx := context.Background()

		// Matching.
		wantM := oneShotMatches(m, d, text)
		var gotM matchCollector
		if _, err := Match(ctx, DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &gotM, cfg); err != nil {
			t.Fatalf("Match(seg=%d): %v", segSize, err)
		}
		if !matchEventsEqual(gotM.events, wantM) {
			t.Fatalf("Match(seg=%d): %d events, batch %d", segSize, len(gotM.events), len(wantM))
		}

		// Parsing. The dictionary is prefix-closed with all single letters,
		// so every text over {a,b,c} parses.
		if len(text) > 0 {
			b := d.PrefixLengths(m, text)
			wantP, err := staticdict.FrontierParse(len(text), b)
			if err != nil {
				t.Fatalf("FrontierParse: %v", err)
			}
			opt, err := staticdict.OptimalParse(m, len(text), b)
			if err != nil {
				t.Fatalf("OptimalParse: %v", err)
			}
			if len(wantP) != len(opt) {
				t.Fatalf("frontier %d phrases, optimal %d", len(wantP), len(opt))
			}
			var gotP phraseCollector
			if _, err := Parse(ctx, d, m, bytes.NewReader(text), &gotP, cfg); err != nil {
				t.Fatalf("Parse(seg=%d): %v", segSize, err)
			}
			if len(gotP.events) != len(wantP) {
				t.Fatalf("Parse(seg=%d): %d phrases, want %d", segSize, len(gotP.events), len(wantP))
			}
			var covered int64
			for k, e := range gotP.events {
				if e.Pos != int64(wantP[k].Pos) || e.Len != wantP[k].Len {
					t.Fatalf("Parse(seg=%d): phrase %d = (%d,%d), want (%d,%d)",
						segSize, k, e.Pos, e.Len, wantP[k].Pos, wantP[k].Len)
				}
				if e.Len > int32(maxPat) {
					t.Fatalf("phrase longer than longest pattern: %d", e.Len)
				}
				if e.Word < 0 || !bytes.Equal(d.Patterns[e.Word], text[e.Pos:e.Pos+int64(e.Len)]) {
					t.Fatalf("Parse(seg=%d): phrase %d word %d does not spell the phrase", segSize, k, e.Word)
				}
				covered += int64(e.Len)
			}
			if covered != int64(len(text)) {
				t.Fatalf("phrases cover %d of %d bytes", covered, len(text))
			}
		}

		// Decompression.
		c := lz.Compress(m, text)
		var enc bytes.Buffer
		if err := lz.EncodeStream(&enc, c); err != nil {
			t.Fatalf("EncodeStream: %v", err)
		}
		u, err := NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{})
		if err != nil {
			t.Fatalf("NewUncompressor: %v", err)
		}
		var out bytes.Buffer
		if _, err := u.Run(ctx, &out); err != nil {
			t.Fatalf("Uncompress: %v", err)
		}
		if !bytes.Equal(out.Bytes(), text) {
			t.Fatalf("Uncompress: output diverges at %d bytes", out.Len())
		}
		// A window at least the text length never trims, so it must also
		// round-trip (spills allowed, errors not).
		if len(text) > 0 {
			u, err = NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{Window: len(text)})
			if err != nil {
				t.Fatalf("NewUncompressor(windowed): %v", err)
			}
			out.Reset()
			if _, err := u.Run(ctx, &out); err != nil && !errors.Is(err, ErrWindowExceeded) {
				t.Fatalf("windowed Uncompress: %v", err)
			} else if err == nil && !bytes.Equal(out.Bytes(), text) {
				t.Fatalf("windowed Uncompress diverges")
			}
		}
	})
}
