package stream

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pram"
)

// MatchEvent is one dictionary match in the stream: the longest pattern
// starting at absolute text position Pos (the paper's M[i], restricted to
// positions where a pattern matches at all).
type MatchEvent struct {
	Pos       int64
	PatternID int32
	Length    int32
}

// MatchSink receives match events in position order, each exactly once.
type MatchSink interface {
	MatchEvent(MatchEvent) error
}

// TextMatcher runs the batch matcher on one window. It abstracts who owns
// the dictionary and the machine: the CLI wraps a Dictionary directly
// (DictMatcher); the server wraps a registry entry, whose MatchWindow also
// takes the read lock and charges the service metrics.
type TextMatcher interface {
	// MaxPatternLen bounds the lookahead of any per-position output — the
	// halo the pipeline must carry between windows.
	MaxPatternLen() int
	// MatchWindow returns per-position longest matches for the window
	// (len(result) == len(window)), the Las Vegas round count, and the
	// PRAM ledger delta the call charged.
	MatchWindow(ctx context.Context, window []byte) ([]core.Match, int, pram.Counters, error)
}

// DictMatcher is the direct TextMatcher over a preprocessed dictionary and
// a caller-owned machine: checked (Las Vegas) matching per window.
type DictMatcher struct {
	Dict *core.Dictionary
	M    *pram.Machine
}

// MaxPatternLen implements TextMatcher.
func (dm DictMatcher) MaxPatternLen() int { return dm.Dict.MaxPatternLen() }

// MatchWindow implements TextMatcher with MatchLasVegas and a ledger delta
// read off the machine's counters.
func (dm DictMatcher) MatchWindow(_ context.Context, window []byte) ([]core.Match, int, pram.Counters, error) {
	before := dm.M.Snapshot()
	matches, rounds := dm.Dict.MatchLasVegas(dm.M, window)
	after := dm.M.Snapshot()
	return matches, rounds, pram.Counters{Work: after.Work - before.Work, Depth: after.Depth - before.Depth}, nil
}

// Match streams text from r through tm and emits every position's longest
// match to sink, in absolute position order, each position exactly once.
// The emitted events are identical to running the batch matcher on the
// whole text: a finalized position i has its full MaxPatternLen() lookahead
// inside the window, so every candidate occurrence fits and the
// window-local M[i] equals the full-text M[i]; non-finalized tail positions
// are suppressed here and re-emitted authoritatively by the next window.
func Match(ctx context.Context, tm TextMatcher, r io.Reader, sink MatchSink, cfg Config) (Stats, error) {
	var st Stats
	halo := tm.MaxPatternLen() - 1
	if halo < 0 {
		halo = 0
	}
	obs, _ := sink.(SegmentObserver)
	err := runWindows(ctx, r, cfg.segmentSize(), halo, &st, func(window []byte, base int64, final int, last bool) error {
		var rounds int
		var cost pram.Counters
		if len(window) > 0 {
			matches, rnds, c, err := tm.MatchWindow(ctx, window)
			if err != nil {
				return err
			}
			if len(matches) != len(window) {
				return fmt.Errorf("stream: matcher returned %d positions for a %d-byte window", len(matches), len(window))
			}
			rounds, cost = rnds, c
			for i := 0; i < final; i++ {
				if matches[i].Length > 0 {
					st.Events++
					e := MatchEvent{Pos: base + int64(i), PatternID: matches[i].PatternID, Length: matches[i].Length}
					if err := sink.MatchEvent(e); err != nil {
						return err
					}
				}
			}
			st.Rounds += rounds
			st.Work += cost.Work
			st.Depth += cost.Depth
		}
		if obs != nil {
			return obs.SegmentDone(SegmentInfo{
				Index: st.Segments - 1, Base: base, WindowLen: len(window),
				Finalized: final, Last: last, Rounds: rounds,
				Work: cost.Work, Depth: cost.Depth,
			})
		}
		return nil
	})
	return st, err
}
