//go:build chaos

package stream

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func withPlan(t *testing.T, seed uint64, spec string) {
	t.Helper()
	plan, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	chaos.Install(plan)
	t.Cleanup(func() { chaos.Install(nil) })
}

// TestChaosStreamTruncation: an injected mid-stream reader death must end
// the run with the typed injected error, and everything emitted before the
// cut must be a correct prefix of the batch oracle.
func TestChaosStreamTruncation(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aba", "ab", "bb"), core.Options{Seed: 7})
	text := textgen.New(60).Uniform(4096, 2) // alphabet {a,b}
	want := oneShotMatches(m, d, text)

	withPlan(t, 11, "stream.truncate:p=1,every=3,n=1") // die on the 3rd read
	var sink matchCollector
	_, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &sink, Config{SegmentBytes: 512})
	if !chaos.IsInjected(err) {
		t.Fatalf("Match under truncation: %v, want injected error", err)
	}
	if len(sink.events) == 0 {
		t.Fatal("expected some events before the cut")
	}
	if len(sink.events) >= len(want) {
		t.Fatalf("truncated run emitted %d events, oracle has %d", len(sink.events), len(want))
	}
	for i, e := range sink.events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, oracle %+v — truncation tore the prefix", i, e, want[i])
		}
	}
}

// TestChaosStreamStallHarmless: injected producer stalls slow the run but
// must not change its output.
func TestChaosStreamStallHarmless(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aba", "bb"), core.Options{Seed: 8})
	text := textgen.New(61).Uniform(2048, 2)
	want := oneShotMatches(m, d, text)

	withPlan(t, 12, "stream.stall:p=1,delay=2ms")
	var sink matchCollector
	st, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &sink, Config{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Match under stalls: %v", err)
	}
	if !matchEventsEqual(sink.events, want) {
		t.Fatalf("stalled run emitted %d events, oracle %d", len(sink.events), len(want))
	}
	if st.TextBytes != int64(len(text)) {
		t.Fatalf("TextBytes = %d, want %d", st.TextBytes, len(text))
	}
}

// TestChaosCollisionReseedInStream: forced fingerprint collisions inside a
// window must be caught by the §3.4 checker and healed by reseed rounds;
// the streamed output stays oracle-identical and Stats.Rounds records the
// extra Las Vegas rounds.
func TestChaosCollisionReseedInStream(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aba", "ab", "bb", "baab"), core.Options{Seed: 9})
	text := textgen.New(62).Uniform(3000, 2)
	want := oneShotMatches(m, d, text) // oracle computed before arming chaos

	withPlan(t, 13, "fp.collide:p=0.05,n=4")
	var sink matchCollector
	st, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &sink, Config{SegmentBytes: 600})
	if err != nil {
		t.Fatalf("Match under collisions: %v", err)
	}
	if !matchEventsEqual(sink.events, want) {
		t.Fatal("collision-injected stream diverged from oracle")
	}
	if int64(st.Rounds) <= st.Segments {
		t.Fatalf("Rounds = %d with %d segments — no reseed happened; tune the plan", st.Rounds, st.Segments)
	}
}
