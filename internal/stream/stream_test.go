package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"testing"
	"testing/iotest"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
)

type matchCollector struct{ events []MatchEvent }

func (c *matchCollector) MatchEvent(e MatchEvent) error {
	c.events = append(c.events, e)
	return nil
}

type phraseCollector struct{ events []PhraseEvent }

func (c *phraseCollector) PhraseEvent(e PhraseEvent) error {
	c.events = append(c.events, e)
	return nil
}

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// oneShotMatches is the batch reference: every position with a match.
func oneShotMatches(m *pram.Machine, d *core.Dictionary, text []byte) []MatchEvent {
	if len(text) == 0 {
		return nil
	}
	matches, _ := d.MatchLasVegas(m, text)
	var out []MatchEvent
	for i, mt := range matches {
		if mt.Length > 0 {
			out = append(out, MatchEvent{Pos: int64(i), PatternID: mt.PatternID, Length: mt.Length})
		}
	}
	return out
}

func TestMatchEquivalence(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aba", "ab", "bcb", "aabb", "b", "cccc"), core.Options{Seed: 3})
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 30; trial++ {
		n := rng.IntN(3000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.IntN(3))
		}
		want := oneShotMatches(m, d, text)
		for _, seg := range []int{1, 2, 3, 5, 16, 257, 1024, n + 10} {
			var sink matchCollector
			st, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &sink, Config{SegmentBytes: seg})
			if err != nil {
				t.Fatalf("trial %d seg %d: %v", trial, seg, err)
			}
			if !matchEventsEqual(sink.events, want) {
				t.Fatalf("trial %d seg %d: %d events, want %d (n=%d)", trial, seg, len(sink.events), len(want), n)
			}
			if st.TextBytes != int64(n) {
				t.Fatalf("trial %d seg %d: TextBytes %d, want %d", trial, seg, st.TextBytes, n)
			}
			if maxW := seg + d.MaxPatternLen() - 1; st.MaxResident > maxW {
				t.Fatalf("trial %d seg %d: MaxResident %d exceeds segment+halo %d", trial, seg, st.MaxResident, maxW)
			}
			if st.Events != int64(len(want)) {
				t.Fatalf("trial %d seg %d: Events %d, want %d", trial, seg, st.Events, len(want))
			}
		}
	}
}

func matchEventsEqual(a, b []MatchEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchEquivalenceParallelMachine(t *testing.T) {
	m := pram.New(3)
	defer m.Close()
	d := core.Preprocess(m, pats("abab", "ba", "aaa"), core.Options{Seed: 9})
	rng := rand.New(rand.NewPCG(5, 6))
	text := make([]byte, 20000)
	for i := range text {
		text[i] = byte('a' + rng.IntN(2))
	}
	want := oneShotMatches(m, d, text)
	var sink matchCollector
	_, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, iotest.OneByteReader(bytes.NewReader(text)), &sink, Config{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !matchEventsEqual(sink.events, want) {
		t.Fatalf("streamed events diverge from batch: %d vs %d", len(sink.events), len(want))
	}
}

func TestMatchEmptyText(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("ab"), core.Options{})
	var sink matchCollector
	st, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(nil), &sink, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 0 || st.TextBytes != 0 {
		t.Fatalf("empty text produced events %v, stats %+v", sink.events, st)
	}
}

// prefixClosed is a dictionary with the prefix property: every prefix of
// every pattern is itself a pattern, and all single letters are present so
// every text over {a,b,c} is parseable.
var prefixClosed = pats("a", "b", "c", "ab", "abc", "abca", "ca", "cab", "bb")

func TestParseEquivalence(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, prefixClosed, core.Options{Seed: 4})
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(2500)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.IntN(3))
		}
		b := d.PrefixLengths(m, text)
		want, werr := staticdict.FrontierParse(n, b)
		opt, oerr := staticdict.OptimalParse(m, n, b)
		if werr != nil || oerr != nil {
			t.Fatalf("trial %d: reference parse failed: %v / %v", trial, werr, oerr)
		}
		if len(want) != len(opt) {
			t.Fatalf("trial %d: frontier %d phrases, optimal %d", trial, len(want), len(opt))
		}
		for _, seg := range []int{1, 2, 3, 7, 64, 999, n + 5} {
			var sink phraseCollector
			st, err := Parse(context.Background(), d, m, bytes.NewReader(text), &sink, Config{SegmentBytes: seg})
			if err != nil {
				t.Fatalf("trial %d seg %d: %v", trial, seg, err)
			}
			if len(sink.events) != len(want) {
				t.Fatalf("trial %d seg %d: %d phrases, want %d", trial, seg, len(sink.events), len(want))
			}
			for k, e := range sink.events {
				if e.Pos != int64(want[k].Pos) || e.Len != want[k].Len {
					t.Fatalf("trial %d seg %d: phrase %d = (%d,%d), want (%d,%d)",
						trial, seg, k, e.Pos, e.Len, want[k].Pos, want[k].Len)
				}
				if e.Word < 0 || !bytes.Equal(d.Patterns[e.Word], text[e.Pos:e.Pos+int64(e.Len)]) {
					t.Fatalf("trial %d seg %d: phrase %d word %d does not spell the phrase", trial, seg, k, e.Word)
				}
			}
			if st.Events != int64(len(want)) {
				t.Fatalf("trial %d seg %d: Events %d, want %d", trial, seg, st.Events, len(want))
			}
		}
	}
}

func TestParseNoParse(t *testing.T) {
	m := pram.NewSequential()
	// No "c" in the dictionary: any text containing c is unparseable.
	d := core.Preprocess(m, pats("a", "b", "ab"), core.Options{})
	var sink phraseCollector
	_, err := Parse(context.Background(), d, m, bytes.NewReader([]byte("abcab")), &sink, Config{SegmentBytes: 2})
	if !errors.Is(err, staticdict.ErrNoParse) {
		t.Fatalf("err = %v, want ErrNoParse", err)
	}
}

func TestUncompressEquivalence(t *testing.T) {
	m := pram.NewSequential()
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 20; trial++ {
		n := rng.IntN(4000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.IntN(3))
		}
		c := lz.Compress(m, text)
		var enc bytes.Buffer
		if err := lz.EncodeStream(&enc, c); err != nil {
			t.Fatal(err)
		}
		for _, win := range []int{0, n + 1} {
			u, err := NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{Window: win})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			var out bytes.Buffer
			st, err := u.Run(context.Background(), &out)
			if err != nil {
				t.Fatalf("trial %d win %d: %v", trial, win, err)
			}
			if !bytes.Equal(out.Bytes(), text) {
				t.Fatalf("trial %d win %d: output diverges (%d vs %d bytes)", trial, win, out.Len(), n)
			}
			if st.TextBytes != int64(n) {
				t.Fatalf("trial %d win %d: TextBytes %d, want %d", trial, win, st.TextBytes, n)
			}
		}
	}
}

func TestUncompressWindowed(t *testing.T) {
	// Hand-built parse: 10 literals then 50 copies of the first 10 bytes.
	// Every copy references offset 0, so any finite window must eventually
	// be exceeded; an unbounded one reproduces lz.Decode exactly.
	c := lz.Compressed{N: 510}
	for i := 0; i < 10; i++ {
		c.Tokens = append(c.Tokens, lz.Token{Len: 0, Lit: byte('0' + i)})
	}
	for i := 0; i < 50; i++ {
		c.Tokens = append(c.Tokens, lz.Token{Src: 0, Len: 10})
	}
	want, err := lz.Decode(c)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := lz.EncodeStream(&enc, c); err != nil {
		t.Fatal(err)
	}

	u, err := NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	st, err := u.Run(context.Background(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("unbounded window output diverges from lz.Decode")
	}
	if st.FarthestBack != 500 {
		t.Fatalf("FarthestBack = %d, want 500", st.FarthestBack)
	}

	u, err = NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	_, err = u.Run(context.Background(), &out)
	if !errors.Is(err, ErrWindowExceeded) {
		t.Fatalf("err = %v, want ErrWindowExceeded", err)
	}

	u, err = NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{MaxOutput: 100})
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if _, err = u.Run(context.Background(), &out); err == nil {
		t.Fatal("MaxOutput cap not enforced")
	}
}

func TestUncompressRejectsBadSource(t *testing.T) {
	c := lz.Compressed{N: 5, Tokens: []lz.Token{{Len: 0, Lit: 'x'}, {Src: 3, Len: 4}}}
	var enc bytes.Buffer
	if err := lz.EncodeStream(&enc, c); err != nil {
		t.Fatal(err)
	}
	u, err := NewUncompressor(bytes.NewReader(enc.Bytes()), UncompressConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Run(context.Background(), io.Discard); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// cancelSink cancels the context after the first event.
type cancelSink struct {
	cancel context.CancelFunc
	n      int
}

func (s *cancelSink) MatchEvent(MatchEvent) error {
	s.n++
	if s.n == 1 {
		s.cancel()
	}
	return nil
}

// endlessReader yields 'a' forever.
type endlessReader struct{}

func (endlessReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}

func TestMatchCancellation(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aa"), core.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelSink{cancel: cancel}
	_, err := Match(ctx, DictMatcher{Dict: d, M: m}, endlessReader{}, sink, Config{SegmentBytes: 1 << 12})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type failingSink struct{ after int }

func (s *failingSink) MatchEvent(MatchEvent) error {
	s.after--
	if s.after < 0 {
		return fmt.Errorf("sink full")
	}
	return nil
}

func TestMatchSinkErrorAborts(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aa"), core.Options{})
	text := bytes.Repeat([]byte("a"), 5000)
	_, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &failingSink{after: 3}, Config{SegmentBytes: 512})
	if err == nil || err.Error() != "sink full" {
		t.Fatalf("err = %v, want sink full", err)
	}
}

type readErrReader struct{ n int }

func (r *readErrReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, fmt.Errorf("disk on fire")
	}
	k := min(len(p), r.n)
	for i := 0; i < k; i++ {
		p[i] = 'a'
	}
	r.n -= k
	return k, nil
}

func TestMatchReaderErrorPropagates(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aa"), core.Options{})
	var sink matchCollector
	_, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, &readErrReader{n: 3000}, &sink, Config{SegmentBytes: 1024})
	if err == nil || err.Error() != "disk on fire" {
		t.Fatalf("err = %v, want reader error", err)
	}
}

// segObserver records SegmentDone calls alongside events.
type segObserver struct {
	matchCollector
	infos []SegmentInfo
}

func (s *segObserver) SegmentDone(info SegmentInfo) error {
	s.infos = append(s.infos, info)
	return nil
}

func TestSegmentObserver(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("ab", "ba"), core.Options{})
	text := bytes.Repeat([]byte("ab"), 1000) // 2000 bytes
	var sink segObserver
	st, err := Match(context.Background(), DictMatcher{Dict: d, M: m}, bytes.NewReader(text), &sink, Config{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(sink.infos)) != st.Segments {
		t.Fatalf("%d SegmentDone calls, %d segments", len(sink.infos), st.Segments)
	}
	var finalized int64
	for i, info := range sink.infos {
		if info.Index != int64(i) {
			t.Fatalf("segment %d has index %d", i, info.Index)
		}
		finalized += int64(info.Finalized)
		if info.Last != (i == len(sink.infos)-1) {
			t.Fatalf("segment %d last=%v", i, info.Last)
		}
	}
	if finalized != int64(len(text)) {
		t.Fatalf("finalized %d positions, want %d", finalized, len(text))
	}
	if st.Work <= 0 || st.Depth <= 0 {
		t.Fatalf("ledger not aggregated: %+v", st)
	}
}
