package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/lz"
)

// ErrWindowExceeded reports a copy token that reaches back beyond the
// retained history of a windowed uncompression.
var ErrWindowExceeded = errors.New("stream: copy reference outside retained window")

// UncompressConfig controls streaming decompression.
type UncompressConfig struct {
	// Window is the number of trailing output bytes retained for copy
	// tokens to reference. Zero retains everything (output still streams
	// incrementally, but memory grows with the text). LZ1 parses produced
	// by lz.Compress may reference arbitrarily far back, so a finite
	// Window is only sound for inputs known to be produced with bounded
	// back-references; violations surface as ErrWindowExceeded.
	Window int
	// MaxOutput, if positive, aborts once the output would exceed it —
	// zip-bomb protection for the service endpoint.
	MaxOutput int64
}

// Uncompressor incrementally decodes an LZ1R1 container: O(1) tokens plus
// the retained history resident, versus the batch path (DecodeStream +
// lz.Uncompress) which holds the full token slice and output. Sequential
// by construction — the stream trades §4.2's O(log n) depth for
// bounded memory.
type Uncompressor struct {
	dec *lz.Decoder
	cfg UncompressConfig
}

// NewUncompressor validates the container header on r. Header errors are
// returned here — before the caller commits to a response status — while
// token-level corruption surfaces from Run.
func NewUncompressor(r io.Reader, cfg UncompressConfig) (*Uncompressor, error) {
	dec, err := lz.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &Uncompressor{dec: dec, cfg: cfg}, nil
}

// N returns the header's original length.
func (u *Uncompressor) N() int { return u.dec.N() }

// Run decodes every token, writing output to w as it is produced. The
// history is trimmed lazily: only when it exceeds twice the window is it
// cut back to exactly the window, so copies up to 2·Window back may still
// be served (counted as Spills when beyond the nominal Window).
func (u *Uncompressor) Run(ctx context.Context, w io.Writer) (Stats, error) {
	var st Stats
	bw := bufio.NewWriterSize(w, 64<<10)
	win := u.cfg.Window
	hist := make([]byte, 0, 64<<10)
	var histStart int64 // absolute offset of hist[0]
	for tok := 0; ; tok++ {
		if tok&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		t, err := u.dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.Events++
		produced := 1
		if !t.IsLiteral() {
			produced = int(t.Len)
		}
		if u.cfg.MaxOutput > 0 && st.TextBytes+int64(produced) > u.cfg.MaxOutput {
			return st, fmt.Errorf("stream: output exceeds cap %d", u.cfg.MaxOutput)
		}
		if t.IsLiteral() {
			hist = append(hist, t.Lit)
		} else {
			total := histStart + int64(len(hist))
			src := int64(t.Src)
			if src < 0 || src >= total {
				return st, fmt.Errorf("lz: token source %d out of range (have %d bytes)", t.Src, total)
			}
			if back := total - src; back > st.FarthestBack {
				st.FarthestBack = back
			}
			if src < histStart {
				return st, fmt.Errorf("%w: source %d precedes retained offset %d", ErrWindowExceeded, src, histStart)
			}
			if win > 0 && total-src > int64(win) {
				st.Spills++
			}
			off := int(src - histStart)
			// Self-referencing copies (Src+Len past the current end) are
			// legal LZ1 and must be materialized byte by byte.
			for k := 0; k < produced; k++ {
				hist = append(hist, hist[off+k])
			}
		}
		if _, err := bw.Write(hist[len(hist)-produced:]); err != nil {
			return st, err
		}
		st.TextBytes += int64(produced)
		if len(hist) > st.MaxResident {
			st.MaxResident = len(hist)
		}
		if win > 0 && len(hist) > 2*win {
			cut := len(hist) - win
			histStart += int64(cut)
			copy(hist, hist[cut:])
			hist = hist[:win]
		}
	}
	if st.TextBytes != int64(u.dec.N()) {
		return st, fmt.Errorf("lz: decoded %d bytes, header says %d", st.TextBytes, u.dec.N())
	}
	// Ledger: the stream is a sequential scan — work and depth both linear
	// in the output, versus the batch path's O(n) work / polylog depth.
	st.Work += st.TextBytes
	st.Depth += st.TextBytes
	return st, bw.Flush()
}
