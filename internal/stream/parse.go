package stream

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/staticdict"
)

// PhraseEvent is one phrase of the streaming parse: text[Pos : Pos+Len] is
// dictionary word Word. Word is -1 only if the dictionary lacks the prefix
// property (then no word of length Len starts at the phrase's locus).
type PhraseEvent struct {
	Pos  int64
	Len  int32
	Word int32
}

// PhraseSink receives phrases left to right, each exactly once.
type PhraseSink interface {
	PhraseEvent(PhraseEvent) error
}

// Parse streams text from r and emits a fewest-phrases parse against the
// dictionary, assuming the prefix property (§5). It evaluates
// staticdict.FrontierParse's recurrence online: windows supply B[i] (via
// Step 1 + Step 2A on carry+segment, so finalized B values equal the
// full-text ones) and the frontier FSM carries only (p, end, far, argfar)
// plus two durable locus handles across window boundaries — O(1) parser
// state on top of the O(segment+halo) resident text. The emitted phrase
// sequence is byte-identical to FrontierParse on the whole text, hence
// count-equal to OptimalParse.
//
// Note the parser is intentionally NOT GreedyParse run per segment: greedy
// is not count-optimal under the prefix property alone (see the
// greedy-optimality tests in staticdict), and the frontier rule needs the
// same bounded lookahead while being exact.
func Parse(ctx context.Context, d *core.Dictionary, m *pram.Machine, r io.Reader, sink PhraseSink, cfg Config) (Stats, error) {
	var st Stats
	halo := d.MaxPatternLen() - 1
	if halo < 0 {
		halo = 0
	}
	obs, _ := sink.(SegmentObserver)

	// Frontier FSM over absolute positions (see staticdict.FrontierParse).
	var (
		p      int64      // start of the phrase being decided
		end    int64      // furthest boundary reachable from committed phrases
		far    int64 = -1 // best candidate boundary in (p, end] ...
		argfar int64 = -1 // ... and the position that realizes it
		pRef   core.LocusRef
		argRef core.LocusRef
		n      int64 // text length seen so far
	)
	emit := func(pos, length int64, ref core.LocusRef) error {
		st.Events++
		return sink.PhraseEvent(PhraseEvent{Pos: pos, Len: int32(length), Word: d.ResolveWord(ref, int32(length))})
	}
	commit := func() error {
		if argfar < 0 || far <= end {
			return staticdict.ErrNoParse
		}
		if err := emit(p, argfar-p, pRef); err != nil {
			return err
		}
		p, end, pRef = argfar, far, argRef
		far, argfar = -1, -1
		return nil
	}

	err := runWindows(ctx, r, cfg.segmentSize(), halo, &st, func(window []byte, base int64, final int, last bool) error {
		var cost pram.Counters
		if len(window) > 0 && final > 0 {
			before := m.Snapshot()
			b, refs := d.PrefixStream(m, window)
			after := m.Snapshot()
			cost = pram.Counters{Work: after.Work - before.Work, Depth: after.Depth - before.Depth}
			st.Work += cost.Work
			st.Depth += cost.Depth
			for i := 0; i < final; i++ {
				a := base + int64(i)
				if a == 0 {
					if b[0] < 1 {
						return staticdict.ErrNoParse
					}
					p, end, pRef = 0, int64(b[0]), refs[0]
					continue
				}
				if a > end {
					if err := commit(); err != nil {
						return err
					}
				}
				if reach := a + int64(b[i]); reach > far {
					far, argfar, argRef = reach, a, refs[i]
				}
			}
		}
		n = base + int64(final)
		if last && n > 0 {
			for end < n {
				if err := commit(); err != nil {
					return err
				}
			}
			if err := emit(p, n-p, pRef); err != nil {
				return err
			}
		}
		if obs != nil {
			return obs.SegmentDone(SegmentInfo{
				Index: st.Segments - 1, Base: base, WindowLen: len(window),
				Finalized: final, Last: last, Work: cost.Work, Depth: cost.Depth,
			})
		}
		return nil
	})
	return st, err
}
