// Package stream is the bounded-memory streaming pipeline over the paper's
// batch algorithms: dictionary matching (§3), static-dictionary parsing
// (§5), and LZ1 decompression (§4.2) on texts that never fit in memory.
//
// The batch algorithms are window-local in a precise sense: every
// per-position output — S[i], B[i], M[i] — depends on at most
// MaxPatternLen() bytes of lookahead from i. The pipeline exploits that by
// cutting the input into segments of Config.SegmentBytes and prefixing each
// with a carry ("halo") of MaxPatternLen()-1 bytes from the previous
// window. Positions whose full lookahead fits inside the window are
// *finalized*: their window-local outputs provably equal the full-text
// outputs, so they are emitted exactly once, rebased to absolute offsets.
// The trailing halo positions are recomputed — and emitted — by the next
// window, where they are authoritative; this is the dedup of halo
// duplicates. Resident text is O(SegmentBytes + MaxPatternLen) regardless
// of input length.
//
// Reading and computing are double-buffered: a producer goroutine reads
// segment i+1 from the io.Reader while the consumer runs the PRAM
// algorithms on window i, with backpressure through a bounded channel (two
// segment buffers in flight, total). Per-window PRAM work/depth ledger
// deltas are aggregated into Stats — the streamed run charges the same
// work as the batch run on the same text (plus the halo recompute) but
// sequential-composes the windows, trading depth for memory.
package stream

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"

	"repro/internal/chaos"
)

// DefaultSegment is the segment size used when Config.SegmentBytes is zero.
const DefaultSegment = 1 << 20

// Config controls the segment pipeline.
type Config struct {
	// SegmentBytes is the number of fresh text bytes per window (the halo
	// is carried on top of it). Zero means DefaultSegment. Values smaller
	// than the longest pattern are legal: the carry then grows across
	// windows until it spans a full halo, and finalization lags
	// accordingly.
	SegmentBytes int
}

func (c Config) segmentSize() int {
	if c.SegmentBytes < 1 {
		return DefaultSegment
	}
	return c.SegmentBytes
}

// Stats is the aggregated ledger of one streaming run.
type Stats struct {
	Segments    int64 // windows processed
	TextBytes   int64 // match/parse: input text bytes; uncompress: output bytes
	WindowBytes int64 // total bytes presented to the algorithms (includes halo recompute)
	MaxResident int   // peak resident window (or history) bytes — the memory bound
	Events      int64 // match events, phrases, or tokens emitted
	Rounds      int   // Las Vegas verification rounds across all windows (match only)
	Work        int64 // aggregated PRAM work over all windows
	Depth       int64 // aggregated PRAM depth (windows compose sequentially)

	// Uncompress only.
	FarthestBack int64 // longest back-reference distance seen
	Spills       int64 // copies beyond the nominal window served from retained slack
}

// SegmentInfo describes one completed window; sinks that also implement
// SegmentObserver receive it after the window's events (a natural flush
// point).
type SegmentInfo struct {
	Index     int64 // 0-based window index
	Base      int64 // absolute offset of the window's first byte
	WindowLen int   // carry + fresh bytes
	Finalized int   // positions emitted by this window
	Last      bool
	Rounds    int   // Las Vegas rounds for this window (match only)
	Work      int64 // PRAM work charged by this window
	Depth     int64 // PRAM depth charged by this window
}

// SegmentObserver is optionally implemented by sinks that want per-window
// notification — the streaming server uses it to flush NDJSON per segment
// and to tick its per-stream metrics.
type SegmentObserver interface {
	SegmentDone(SegmentInfo) error
}

// segment is one producer→consumer hand-off.
type segment struct {
	buf  []byte
	last bool
	err  error
}

// WindowPanicError is the typed error a streaming run returns when the
// per-window computation panicked (a pram.StepPanic surfacing from a worker,
// or any other body panic). The pipeline converts the panic to an error at
// the window boundary so a service can end the stream with an error trailer
// — and a CLI with a diagnostic — instead of dying: upstream of this
// conversion nothing has been half-emitted, because events for a window are
// only sent after its computation returns.
type WindowPanicError struct {
	Value any
	Stack []byte
}

func (e *WindowPanicError) Error() string {
	return fmt.Sprintf("stream: window computation panicked: %v", e.Value)
}

// Unwrap exposes error-typed panic values (e.g. a *pram.StepPanic) to
// errors.Is/As.
func (e *WindowPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// runWindows drives the double-buffered read loop. fn sees each window
// (carry + fresh segment), the absolute offset of its first byte, and the
// count of finalized positions; it must not retain the window slice.
// Cancellation is observed at window granularity; a blocked Read is only
// abandoned when the underlying reader fails (e.g. the request body closes).
func runWindows(ctx context.Context, r io.Reader, segSize, halo int, st *Stats, fn func(window []byte, base int64, final int, last bool) error) error {
	segs := make(chan segment, 1)
	free := make(chan []byte, 2)
	done := make(chan struct{})
	defer close(done)
	free <- make([]byte, segSize)
	free <- make([]byte, segSize)

	go func() {
		defer close(segs)
		for {
			var buf []byte
			select {
			case buf = <-free:
			case <-done:
				return
			}
			chaos.Sleep(chaos.StreamStall) // injected producer stall (chaos builds)
			n, err := io.ReadFull(r, buf[:segSize])
			s := segment{buf: buf[:n]}
			switch err {
			case nil:
			case io.EOF, io.ErrUnexpectedEOF:
				s.last = true
			default:
				s.err = err
			}
			if s.err == nil && chaos.Fire(chaos.StreamTruncate) {
				// Injected mid-stream truncation: the reader dies with half a
				// segment delivered, like a dropped connection.
				s.buf = s.buf[:n/2]
				s.err = &chaos.InjectedError{Point: chaos.StreamTruncate, Op: "read"}
				s.last = false
			}
			select {
			case segs <- s:
			case <-done:
				return
			}
			if s.last || s.err != nil {
				return
			}
		}
	}()

	return consumeWindows(ctx, segs, free, segSize, halo, st, fn)
}

// callWindow runs one window computation with panic containment (see
// WindowPanicError).
func callWindow(fn func([]byte, int64, int, bool) error, window []byte, base int64, final int, last bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WindowPanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(window, base, final, last)
}

// consumeWindows is the consumer half of runWindows.
func consumeWindows(ctx context.Context, segs <-chan segment, free chan<- []byte, segSize, halo int, st *Stats, fn func(window []byte, base int64, final int, last bool) error) error {
	window := make([]byte, 0, segSize+halo)
	var base int64
	carry := 0
	for s := range segs {
		if s.err != nil {
			return s.err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		window = append(window[:carry], s.buf...)
		if !s.last {
			// Hand the buffer back before computing: the producer reads
			// the next segment while fn runs on this window.
			free <- s.buf[:segSize]
		}
		st.Segments++
		st.TextBytes += int64(len(s.buf))
		st.WindowBytes += int64(len(window))
		if len(window) > st.MaxResident {
			st.MaxResident = len(window)
		}
		final := len(window)
		if !s.last {
			final = len(window) - halo
			if final < 0 {
				final = 0
			}
		}
		if err := callWindow(fn, window, base, final, s.last); err != nil {
			return err
		}
		carry = len(window) - final
		copy(window, window[final:])
		base += int64(final)
		if s.last {
			return nil
		}
	}
	return ctx.Err()
}
