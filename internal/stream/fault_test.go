package stream

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
)

// panicMatcher panics on the given window index.
type panicMatcher struct {
	inner   TextMatcher
	windows int
	panicOn int
	value   any
}

func (pm *panicMatcher) MaxPatternLen() int { return pm.inner.MaxPatternLen() }

func (pm *panicMatcher) MatchWindow(ctx context.Context, window []byte) ([]core.Match, int, pram.Counters, error) {
	w := pm.windows
	pm.windows++
	if w == pm.panicOn {
		panic(pm.value)
	}
	return pm.inner.MatchWindow(ctx, window)
}

// TestWindowPanicContained: a panic inside the per-window computation —
// whether a raw value or a *pram.StepPanic escaping a worker — must come
// back as a typed *WindowPanicError, never kill the caller, and events from
// the panicked window must not have been emitted (no torn output).
func TestWindowPanicContained(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("aba", "bb"), core.Options{Seed: 5})
	text := bytes.Repeat([]byte("ab"), 400)
	boom := errors.New("window boom")
	pm := &panicMatcher{inner: DictMatcher{Dict: d, M: m}, panicOn: 1, value: boom}

	var sink matchCollector
	_, err := Match(context.Background(), pm, bytes.NewReader(text), &sink, Config{SegmentBytes: 128})
	var wp *WindowPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Match returned %v, want *WindowPanicError", err)
	}
	if wp.Value != boom {
		t.Errorf("panic value = %v, want %v", wp.Value, boom)
	}
	if len(wp.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !errors.Is(err, boom) {
		t.Error("errors.Is through WindowPanicError failed")
	}
	if !strings.Contains(err.Error(), "window computation panicked") {
		t.Errorf("error text %q", err)
	}
	// Only window 0's finalized events were emitted; every event precedes
	// the failed window's base.
	for _, e := range sink.events {
		if e.Pos >= 128 {
			t.Fatalf("event at %d emitted after the panicked window's base", e.Pos)
		}
	}
}

// TestWindowPanicFirstWindow: a panic on the very first window yields the
// typed error with zero events.
func TestWindowPanicFirstWindow(t *testing.T) {
	m := pram.NewSequential()
	d := core.Preprocess(m, pats("xy"), core.Options{Seed: 6})
	pm := &panicMatcher{inner: DictMatcher{Dict: d, M: m}, panicOn: 0, value: "str panic"}
	var sink matchCollector
	_, err := Match(context.Background(), pm, strings.NewReader("xyxyxy"), &sink, Config{SegmentBytes: 4})
	var wp *WindowPanicError
	if !errors.As(err, &wp) || wp.Value != "str panic" {
		t.Fatalf("err = %v", err)
	}
	if len(sink.events) != 0 {
		t.Fatalf("%d events emitted before first-window panic", len(sink.events))
	}
}
