package veb

import "testing"

func BenchmarkInsertDelete(b *testing.B) {
	t := New(1 << 20)
	for i := 0; i < b.N; i++ {
		x := (i * 2654435761) & (1<<20 - 1)
		t.Insert(x)
		if i%2 == 1 {
			t.Delete((x + 7) & (1<<20 - 1))
		}
	}
}

func BenchmarkPredecessor(b *testing.B) {
	t := New(1 << 20)
	for i := 0; i < 1<<16; i++ {
		t.Insert((i * 31) & (1<<20 - 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Predecessor((i * 2654435761) & (1<<20 - 1))
	}
}
