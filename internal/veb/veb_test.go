package veb

import (
	"math/rand/v2"
	"testing"
)

// mirror is a brute-force reference set.
type mirror struct{ in []bool }

func (s *mirror) insert(x int)        { s.in[x] = true }
func (s *mirror) delete(x int)        { s.in[x] = false }
func (s *mirror) contains(x int) bool { return x >= 0 && x < len(s.in) && s.in[x] }
func (s *mirror) min() int {
	for i, v := range s.in {
		if v {
			return i
		}
	}
	return None
}
func (s *mirror) max() int {
	for i := len(s.in) - 1; i >= 0; i-- {
		if s.in[i] {
			return i
		}
	}
	return None
}
func (s *mirror) succ(x int) int {
	for i := x + 1; i < len(s.in); i++ {
		if s.in[i] {
			return i
		}
	}
	return None
}
func (s *mirror) pred(x int) int {
	if x > len(s.in) {
		x = len(s.in)
	}
	for i := x - 1; i >= 0; i-- {
		if s.in[i] {
			return i
		}
	}
	return None
}

func TestVEBRandomOpsAgainstMirror(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for _, universe := range []int{2, 3, 16, 100, 1024, 5000} {
		tree := New(universe)
		ref := &mirror{in: make([]bool, universe)}
		size := 0
		for op := 0; op < 20000; op++ {
			x := rng.IntN(universe)
			switch rng.IntN(3) {
			case 0:
				if !ref.contains(x) {
					size++
				}
				tree.Insert(x)
				ref.insert(x)
			case 1:
				if ref.contains(x) {
					size--
				}
				tree.Delete(x)
				ref.delete(x)
			case 2:
				if tree.Contains(x) != ref.contains(x) {
					t.Fatalf("u=%d Contains(%d) mismatch", universe, x)
				}
				if got, want := tree.Successor(x), ref.succ(x); got != want {
					t.Fatalf("u=%d Successor(%d)=%d want %d", universe, x, got, want)
				}
				if got, want := tree.Predecessor(x), ref.pred(x); got != want {
					t.Fatalf("u=%d Predecessor(%d)=%d want %d", universe, x, got, want)
				}
			}
			if tree.Min() != ref.min() || tree.Max() != ref.max() {
				t.Fatalf("u=%d min/max mismatch: (%d,%d) want (%d,%d)",
					universe, tree.Min(), tree.Max(), ref.min(), ref.max())
			}
			if tree.Len() != size {
				t.Fatalf("u=%d Len=%d want %d", universe, tree.Len(), size)
			}
		}
	}
}

func TestVEBEdgeCases(t *testing.T) {
	tr := New(16)
	if !tr.Empty() || tr.Min() != None || tr.Max() != None {
		t.Fatal("fresh tree not empty")
	}
	if tr.Successor(5) != None || tr.Predecessor(5) != None {
		t.Fatal("queries on empty tree")
	}
	tr.Insert(7)
	tr.Insert(7) // duplicate
	if tr.Len() != 1 {
		t.Fatalf("Len after duplicate insert = %d", tr.Len())
	}
	if tr.Successor(-10) != 7 {
		t.Fatalf("Successor(-10) = %d", tr.Successor(-10))
	}
	if tr.Predecessor(1000) != 7 {
		t.Fatalf("Predecessor(1000) = %d", tr.Predecessor(1000))
	}
	if tr.Successor(1000) != None || tr.Predecessor(-5) != None {
		t.Fatal("out-of-range queries")
	}
	tr.Delete(3) // absent
	if tr.Len() != 1 {
		t.Fatal("delete of absent key changed size")
	}
	tr.Delete(7)
	if !tr.Empty() {
		t.Fatal("tree not empty after deleting only key")
	}
}

func TestVEBSweep(t *testing.T) {
	const u = 512
	tr := New(u)
	for i := 0; i < u; i += 3 {
		tr.Insert(i)
	}
	for x := 0; x < u; x++ {
		wantSucc := ((x / 3) + 1) * 3
		if x < 0 {
			wantSucc = 0
		}
		if wantSucc >= u {
			wantSucc = None
		}
		if got := tr.Successor(x); got != wantSucc {
			t.Fatalf("Successor(%d)=%d want %d", x, got, wantSucc)
		}
	}
}

func TestVEBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestVEBInsertOutOfRangePanics(t *testing.T) {
	tr := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(100) did not panic")
		}
	}()
	tr.Insert(100)
}
