// Package veb implements a van Emde Boas tree (the paper's Lemma 2.5,
// van Emde Boas–Kaas–Zijlstra): a set over the universe [0, N) supporting
// Insert, Delete, Min, Max, Predecessor and Successor in O(log log N) time.
//
// Clusters are allocated lazily through a map, so space is O(s log log N)
// for s stored keys — the space-efficient variant the paper cites. The
// improved nearest-colored-ancestors structure (§3.2) keys one of these per
// color over Euler-tour positions.
package veb

import "math/bits"

// None is returned by queries that have no answer.
const None = -1

// Tree is a van Emde Boas set over [0, universe).
type Tree struct {
	u       int // universe size, a power of two, >= 2
	lowBits uint
	min     int // None when empty
	max     int
	summary *Tree
	cluster map[int]*Tree
	size    int // number of stored keys (maintained at the root only)
}

// New returns an empty tree over the universe [0, n). n must be positive.
func New(n int) *Tree {
	if n < 1 {
		panic("veb: universe must be positive")
	}
	u := 2
	for u < n {
		u *= 2
	}
	return newNode(u)
}

func newNode(u int) *Tree {
	t := &Tree{u: u, min: None, max: None}
	if u > 2 {
		t.lowBits = uint(bits.Len(uint(u))-1) / 2
	}
	return t
}

func (t *Tree) high(x int) int { return x >> t.lowBits }
func (t *Tree) low(x int) int  { return x & ((1 << t.lowBits) - 1) }
func (t *Tree) index(h, l int) int {
	return h<<t.lowBits | l
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Empty reports whether the set is empty.
func (t *Tree) Empty() bool { return t.min == None }

// Min returns the smallest key, or None.
func (t *Tree) Min() int { return t.min }

// Max returns the largest key, or None.
func (t *Tree) Max() int { return t.max }

// Contains reports whether x is in the set.
func (t *Tree) Contains(x int) bool {
	if x < 0 || x >= t.u {
		return false
	}
	for {
		if x == t.min || x == t.max {
			return true
		}
		if t.u == 2 {
			return false
		}
		c := t.cluster[t.high(x)]
		if c == nil {
			return false
		}
		x, t = t.low(x), c
	}
}

// Insert adds x to the set. Inserting a present key is a no-op. x must lie
// in [0, universe).
func (t *Tree) Insert(x int) {
	if x < 0 || x >= t.u {
		panic("veb: key out of universe")
	}
	if t.Contains(x) {
		return
	}
	t.size++
	t.insert(x)
}

func (t *Tree) insert(x int) {
	if t.min == None {
		t.min, t.max = x, x
		return
	}
	if x < t.min {
		x, t.min = t.min, x
	}
	if t.u > 2 {
		h, l := t.high(x), t.low(x)
		c := t.cluster[h]
		if c == nil {
			c = newNode(1 << t.lowBits)
			if t.cluster == nil {
				t.cluster = make(map[int]*Tree)
			}
			t.cluster[h] = c
		}
		if c.min == None {
			if t.summary == nil {
				t.summary = newNode(t.u >> t.lowBits)
			}
			t.summary.insert(h)
			c.min, c.max = l, l
		} else {
			c.insert(l)
		}
	}
	if x > t.max {
		t.max = x
	}
}

// Delete removes x from the set. Removing an absent key is a no-op.
func (t *Tree) Delete(x int) {
	if !t.Contains(x) {
		return
	}
	t.size--
	t.delete(x)
}

func (t *Tree) delete(x int) {
	if t.min == t.max {
		t.min, t.max = None, None
		return
	}
	if t.u == 2 {
		if x == 0 {
			t.min = 1
		} else {
			t.min = 0
		}
		t.max = t.min
		return
	}
	if x == t.min {
		h := t.summary.min
		x = t.index(h, t.cluster[h].min)
		t.min = x
	}
	h, l := t.high(x), t.low(x)
	c := t.cluster[h]
	c.delete(l)
	if c.min == None {
		delete(t.cluster, h)
		t.summary.delete(h)
		if x == t.max {
			if t.summary.min == None {
				t.max = t.min
			} else {
				sh := t.summary.max
				t.max = t.index(sh, t.cluster[sh].max)
			}
		}
	} else if x == t.max {
		t.max = t.index(h, c.max)
	}
}

// Successor returns the smallest stored key > x, or None. x may be any int.
func (t *Tree) Successor(x int) int {
	if x < 0 {
		return t.min
	}
	if x >= t.u {
		return None
	}
	return t.successor(x)
}

func (t *Tree) successor(x int) int {
	if t.u == 2 {
		if x == 0 && t.max == 1 {
			return 1
		}
		return None
	}
	if t.min != None && x < t.min {
		return t.min
	}
	h, l := t.high(x), t.low(x)
	c := t.cluster[h]
	if c != nil && c.max != None && l < c.max {
		return t.index(h, c.successor(l))
	}
	if t.summary == nil {
		return None
	}
	nh := t.summary.successor(h)
	if nh == None {
		return None
	}
	return t.index(nh, t.cluster[nh].min)
}

// Predecessor returns the largest stored key < x, or None.
func (t *Tree) Predecessor(x int) int {
	if x >= t.u {
		return t.max
	}
	if x <= 0 {
		return None
	}
	return t.predecessor(x)
}

func (t *Tree) predecessor(x int) int {
	if t.u == 2 {
		if x == 1 && t.min == 0 {
			return 0
		}
		return None
	}
	if t.max != None && x > t.max {
		return t.max
	}
	h, l := t.high(x), t.low(x)
	c := t.cluster[h]
	if c != nil && c.min != None && l > c.min {
		p := c.predecessor(l)
		if p == None {
			// l > c.min guarantees a predecessor within the cluster unless
			// the only smaller element is the cluster min itself.
			p = c.min
		}
		return t.index(h, p)
	}
	var ph int
	if t.summary == nil {
		ph = None
	} else {
		ph = t.summary.predecessor(h)
	}
	if ph == None {
		if t.min != None && x > t.min {
			return t.min
		}
		return None
	}
	return t.index(ph, t.cluster[ph].max)
}
