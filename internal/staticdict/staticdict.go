// Package staticdict implements the paper's §5: work-optimal optimal
// parsing of a text against a static dictionary with the prefix property
// (Theorem 5.3).
//
// The input is B[i] — the longest dictionary-word prefix starting at each
// text position, produced by the dictionary matcher's Step 2A
// (core.PrefixLengths). A parse is a partition of the text into words of
// the dictionary; it exists iff every maximal-match length is >= 1 wherever
// a phrase must start. The paper's insight is that the shortest-path
// instance on the graph with edges (i, i+k), k <= B[i]+... has the interval
// structure that makes *dominating edges* sufficient (Lemma 5.1): the edge
// (i, j) is dominated if some (i', j') with i' < i, j' >= j exists, the
// dominating edges form a tree with one incoming edge per node (Lemma 5.2,
// via prefix maxima and ranks), and the unique tree path from 0 to n is an
// optimal parse.
package staticdict

import (
	"errors"

	"repro/internal/par"
	"repro/internal/pram"
)

// ErrNoParse is returned when the text cannot be partitioned into
// dictionary words (some position has no word, not even length 1).
var ErrNoParse = errors.New("staticdict: text has no parse against this dictionary")

// Phrase is one parsed word: text[Pos : Pos+Len].
type Phrase struct {
	Pos int32
	Len int32
}

// OptimalParse returns a fewest-phrases parse of a text of length n, given
// maxLen[i] = B[i], the longest dictionary word starting at i (0 if none).
// The dictionary must have the prefix property, so any length 1..maxLen[i]
// is a valid word at i. Work O(n), depth O(log n) (Theorem 5.3): prefix
// maxima, a rank computation, and one parallel path extraction.
func OptimalParse(m *pram.Machine, n int, maxLen []int32) ([]Phrase, error) {
	if n == 0 {
		return nil, nil
	}
	if len(maxLen) != n {
		return nil, errors.New("staticdict: maxLen length mismatch")
	}
	// reach[i] = i + maxLen[i] = the furthest node reachable from i.
	// Positions with maxLen == 0 have no outgoing edge (no parse through
	// them); detect unreachability below rather than failing eagerly.
	reach := make([]int64, n)
	m.ParallelFor(n, func(i int) { reach[i] = int64(i) + int64(maxLen[i]) })
	// Dominating edges: edge (i, j) is undominated iff no i' < i reaches
	// >= j. After prefix-maximizing reach, node j's unique dominating
	// predecessor is L[j] = min{ i : reachMax[i] >= j } (Lemma 5.2's rank
	// construction): reachMax is non-decreasing, so L[j] is a rank and the
	// dominating edges form a forest with edges pointing left.
	reachMax := append([]int64(nil), reach...)
	par.PrefixMaxLinear(m, reachMax)
	// pred[j] for j in 1..n: smallest i with reachMax[i] >= j, or -1.
	// Batch-computable by merging the sorted sequences (reachMax is
	// non-decreasing, targets 1..n are increasing): binary search per j
	// keeps it simple at O(n log n) work; the sequential machine does the
	// linear merge.
	pred := make([]int, n+1)
	if m.Sequential() {
		m.Account(int64(n), int64(n))
		i := 0
		for j := 1; j <= n; j++ {
			for i < n && reachMax[i] < int64(j) {
				i++
			}
			if i == n {
				pred[j] = -1
			} else {
				pred[j] = i
			}
		}
	} else {
		logn := int64(1)
		for 1<<logn < n {
			logn++
		}
		m.ParallelForCost(n, logn, func(idx int) {
			j := idx + 1
			lo, hi := 0, n-1
			if reachMax[n-1] < int64(j) {
				pred[j] = -1
				return
			}
			for lo < hi {
				mid := (lo + hi) / 2
				if reachMax[mid] >= int64(j) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			pred[j] = lo
		})
	}
	pred[0] = 0 // root convention handled below
	// Walk the unique dominating path from n back to 0 — in parallel via
	// path extraction over next[j] = pred[j] (self-loop at 0).
	next := make([]int, n+1)
	bad := pram.NewCells(1)
	m.ParallelFor(n+1, func(j int) {
		switch {
		case j == 0:
			next[j] = 0
		case pred[j] < 0:
			next[j] = j // unreachable node: self-loop keeps the forest sane
			if j == n {
				bad.Write(0, 1)
			}
		default:
			next[j] = pred[j]
		}
	})
	if bad.Read(0) != 0 {
		return nil, ErrNoParse
	}
	path := par.ParallelPathToRoot(m, next, n)
	if path[len(path)-1] != 0 {
		return nil, ErrNoParse
	}
	phrases := make([]Phrase, len(path)-1)
	m.ParallelFor(len(phrases), func(k int) {
		to, from := path[k], path[k+1]
		phrases[len(phrases)-1-k] = Phrase{Pos: int32(from), Len: int32(to - from)}
	})
	// Every phrase must be a genuine word: length <= maxLen at its start
	// (the domination construction guarantees it; verify as a cheap
	// invariant).
	m.ParallelFor(len(phrases), func(k int) {
		p := phrases[k]
		if p.Len < 1 || p.Len > maxLen[p.Pos] {
			bad.Write(0, 1)
		}
	})
	if bad.Read(0) != 0 {
		return nil, ErrNoParse
	}
	return phrases, nil
}

// FrontierParse returns a fewest-phrases parse computed by the left-to-right
// frontier rule: maintain the furthest phrase boundary `end` reachable with
// the phrases committed so far, and the best candidate boundary
// far = max{i + maxLen[i]} over scanned positions i <= end; when the scan
// passes `end`, commit the candidate as the next phrase boundary. Under the
// prefix property (any length 1..maxLen[i] is a word at i) the positions
// reachable with k phrases form the interval [1, F(k)] with
// F(k) = max{i + maxLen[i] : i <= F(k-1)}, so the rule is exact — it yields
// a parse with the minimum number of phrases, matching OptimalParse's count
// (phrase boundaries may differ; both are optimal).
//
// Unlike GreedyParse — longest-match-first, which is only optimal for
// suffix-closed dictionaries (see the greedy-optimality tests and
// DESIGN.md §9) — FrontierParse is optimal for any prefix-property
// dictionary, and it only ever looks max(maxLen) positions ahead of the
// last committed boundary. That bounded lookahead is why the streaming
// segment parser (internal/stream) runs this rule, not the dominating-edge
// construction: it is the same recurrence evaluated with O(maxPatternLen)
// carried state. Sequential, O(n).
func FrontierParse(n int, maxLen []int32) ([]Phrase, error) {
	if n == 0 {
		return nil, nil
	}
	if len(maxLen) != n {
		return nil, errors.New("staticdict: maxLen length mismatch")
	}
	if maxLen[0] < 1 {
		return nil, ErrNoParse
	}
	var phrases []Phrase
	p := 0                // start of the phrase being decided
	end := int(maxLen[0]) // furthest boundary reachable from committed phrases
	far, argfar := -1, -1 // best candidate boundary in (p, end] and its reach
	commit := func() error {
		if argfar < 0 || far <= end {
			return ErrNoParse // cannot advance past end: text has no parse
		}
		phrases = append(phrases, Phrase{Pos: int32(p), Len: int32(argfar - p)})
		p, end = argfar, far // far == argfar + maxLen[argfar], the new reach
		far, argfar = -1, -1
		return nil
	}
	for i := 1; i < n; i++ {
		if i > end {
			if err := commit(); err != nil {
				return nil, err
			}
		}
		if r := i + int(maxLen[i]); r > far {
			far, argfar = r, i
		}
	}
	for end < n {
		if err := commit(); err != nil {
			return nil, err
		}
	}
	phrases = append(phrases, Phrase{Pos: int32(p), Len: int32(n - p)})
	return phrases, nil
}

// GreedyParse is the longest-match-first heuristic the paper contrasts with
// (§1, "the greedy heuristic of always choosing the longest match need not
// give optimal compression"). Sequential, O(#phrases).
func GreedyParse(n int, maxLen []int32) ([]Phrase, error) {
	var phrases []Phrase
	for i := 0; i < n; {
		l := int(maxLen[i])
		if l < 1 {
			return nil, ErrNoParse
		}
		phrases = append(phrases, Phrase{Pos: int32(i), Len: int32(l)})
		i += l
	}
	return phrases, nil
}

// BFSParse is the general shortest-path baseline (the approach of [2] that
// the paper improves on): breadth-first search over ALL edges (i, i+k),
// k = 1..maxLen[i]. O(n + total edge count) work — Θ(n·m) on texts with
// long matches — versus the dominating-edge construction's O(n).
func BFSParse(n int, maxLen []int32) ([]Phrase, error) {
	if n == 0 {
		return nil, nil
	}
	const unset = -1
	prev := make([]int32, n+1)
	dist := make([]int32, n+1)
	for i := range prev {
		prev[i], dist[i] = unset, unset
	}
	dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if i == int32(n) {
			break
		}
		for k := int32(1); k <= maxLen[i]; k++ {
			j := i + k
			if j > int32(n) {
				break
			}
			if dist[j] == unset {
				dist[j] = dist[i] + 1
				prev[j] = i
				queue = append(queue, j)
			}
		}
	}
	if dist[n] == unset {
		return nil, ErrNoParse
	}
	var phrases []Phrase
	for j := int32(n); j != 0; j = prev[j] {
		phrases = append(phrases, Phrase{Pos: prev[j], Len: j - prev[j]})
	}
	for l, r := 0, len(phrases)-1; l < r; l, r = l+1, r-1 {
		phrases[l], phrases[r] = phrases[r], phrases[l]
	}
	return phrases, nil
}

// EdgeCount returns the number of edges the BFS baseline must consider —
// the work-blowup quantity reported in experiment E9.
func EdgeCount(maxLen []int32) int64 {
	var total int64
	for _, l := range maxLen {
		total += int64(l)
	}
	return total
}
