package staticdict

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func phraseCountOK(t *testing.T, phrases []Phrase, n int, maxLen []int32) {
	t.Helper()
	pos := int32(0)
	for _, p := range phrases {
		if p.Pos != pos {
			t.Fatalf("phrase at %d, expected %d", p.Pos, pos)
		}
		if p.Len < 1 || p.Len > maxLen[p.Pos] {
			t.Fatalf("phrase length %d at %d exceeds maxLen %d", p.Len, p.Pos, maxLen[p.Pos])
		}
		pos += p.Len
	}
	if pos != int32(n) {
		t.Fatalf("parse covers %d of %d", pos, n)
	}
}

func TestOptimalMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(151, 152))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.IntN(120)
			maxLen := make([]int32, n)
			for i := range maxLen {
				// Ensure parseability most of the time but test failures too.
				if rng.IntN(20) == 0 {
					maxLen[i] = 0
				} else {
					maxLen[i] = 1 + int32(rng.IntN(8))
				}
				if int(maxLen[i]) > n-i {
					maxLen[i] = int32(n - i)
				}
			}
			want, errWant := BFSParse(n, maxLen)
			got, errGot := OptimalParse(m, n, maxLen)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("procs=%d trial=%d: error mismatch %v vs %v (maxLen=%v)",
					procs, trial, errGot, errWant, maxLen)
			}
			if errWant != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("procs=%d trial=%d: %d phrases, BFS found %d (maxLen=%v)",
					procs, trial, len(got), len(want), maxLen)
			}
			phraseCountOK(t, got, n, maxLen)
		}
	}
}

func TestGreedySuboptimal(t *testing.T) {
	// Dictionary = prefix closure of {a^k, a^k·b} plus {b}; text = a^(k+1)b.
	// Greedy: a^k | a | b = 3 phrases; optimal: a | a^k·b = 2.
	m := pram.New(4)
	k := 5
	n := k + 2 // k+1 a's and one b
	maxLen := make([]int32, n)
	for i := 0; i <= k+1; i++ {
		switch {
		case i == 1:
			maxLen[i] = int32(k + 1) // a^k·b
		case i <= k:
			asLeft := k + 1 - i
			maxLen[i] = int32(min(asLeft, k)) // a-run words only
		default:
			maxLen[i] = 1 // b
		}
	}
	greedy, err := GreedyParse(n, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalParse(m, n, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) >= len(greedy) {
		t.Fatalf("optimal (%d) not better than greedy (%d)", len(opt), len(greedy))
	}
	if len(opt) != 2 || len(greedy) != 3 {
		t.Fatalf("expected 2 vs 3, got %d vs %d", len(opt), len(greedy))
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewPCG(153, 154))
	m := pram.New(4)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(150)
		maxLen := make([]int32, n)
		for i := range maxLen {
			maxLen[i] = 1 + int32(rng.IntN(6))
			if int(maxLen[i]) > n-i {
				maxLen[i] = int32(n - i)
			}
		}
		greedy, err := GreedyParse(n, maxLen)
		if err != nil {
			continue
		}
		opt, err := OptimalParse(m, n, maxLen)
		if err != nil {
			t.Fatalf("greedy parses but optimal fails: %v", err)
		}
		if len(opt) > len(greedy) {
			t.Fatalf("optimal %d > greedy %d", len(opt), len(greedy))
		}
	}
}

func TestNoParse(t *testing.T) {
	m := pram.New(4)
	// Position 2 has no word and must be crossed... but maxLen[0]=1,
	// maxLen[1]=1 can't jump it.
	maxLen := []int32{1, 1, 0, 1}
	if _, err := OptimalParse(m, 4, maxLen); err != ErrNoParse {
		t.Fatalf("err = %v", err)
	}
	if _, err := BFSParse(4, maxLen); err != ErrNoParse {
		t.Fatalf("bfs err = %v", err)
	}
	if _, err := GreedyParse(4, maxLen); err != ErrNoParse {
		t.Fatalf("greedy err = %v", err)
	}
	// A long word can jump the hole.
	maxLen = []int32{3, 1, 0, 1}
	opt, err := OptimalParse(m, 4, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	phraseCountOK(t, opt, 4, maxLen)
	if len(opt) != 2 {
		t.Fatalf("phrases = %v", opt)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	m := pram.New(4)
	if got, err := OptimalParse(m, 0, nil); err != nil || got != nil {
		t.Fatal("empty parse")
	}
	got, err := OptimalParse(m, 1, []int32{1})
	if err != nil || len(got) != 1 || got[0] != (Phrase{0, 1}) {
		t.Fatalf("single: %v %v", got, err)
	}
	if _, err := OptimalParse(m, 1, []int32{0}); err != ErrNoParse {
		t.Fatal("unparseable single accepted")
	}
	if _, err := OptimalParse(m, 2, []int32{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEdgeCount(t *testing.T) {
	if EdgeCount([]int32{3, 0, 2}) != 5 {
		t.Fatal("edge count")
	}
}

func TestOptimalWorkLinearVsBFSQuadratic(t *testing.T) {
	// With maxLen ~ n/2 everywhere, BFS considers Θ(n²) edges while the
	// dominating-edge parse does O(n) work (sequential machine).
	n := 4000
	maxLen := make([]int32, n)
	for i := range maxLen {
		l := n / 2
		if l > n-i {
			l = n - i
		}
		maxLen[i] = int32(l)
	}
	if ec := EdgeCount(maxLen); ec < int64(n)*int64(n)/8 {
		t.Fatalf("edge count %d unexpectedly small", ec)
	}
	m := pram.NewSequential()
	m.ResetCounters()
	if _, err := OptimalParse(m, n, maxLen); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Counters()
	if w > int64(n)*64 {
		t.Fatalf("optimal parse work %d not near-linear for n=%d", w, n)
	}
}
