package staticdict

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func phraseCountOK(t *testing.T, phrases []Phrase, n int, maxLen []int32) {
	t.Helper()
	pos := int32(0)
	for _, p := range phrases {
		if p.Pos != pos {
			t.Fatalf("phrase at %d, expected %d", p.Pos, pos)
		}
		if p.Len < 1 || p.Len > maxLen[p.Pos] {
			t.Fatalf("phrase length %d at %d exceeds maxLen %d", p.Len, p.Pos, maxLen[p.Pos])
		}
		pos += p.Len
	}
	if pos != int32(n) {
		t.Fatalf("parse covers %d of %d", pos, n)
	}
}

func TestOptimalMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(151, 152))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.IntN(120)
			maxLen := make([]int32, n)
			for i := range maxLen {
				// Ensure parseability most of the time but test failures too.
				if rng.IntN(20) == 0 {
					maxLen[i] = 0
				} else {
					maxLen[i] = 1 + int32(rng.IntN(8))
				}
				if int(maxLen[i]) > n-i {
					maxLen[i] = int32(n - i)
				}
			}
			want, errWant := BFSParse(n, maxLen)
			got, errGot := OptimalParse(m, n, maxLen)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("procs=%d trial=%d: error mismatch %v vs %v (maxLen=%v)",
					procs, trial, errGot, errWant, maxLen)
			}
			if errWant != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("procs=%d trial=%d: %d phrases, BFS found %d (maxLen=%v)",
					procs, trial, len(got), len(want), maxLen)
			}
			phraseCountOK(t, got, n, maxLen)
		}
	}
}

func TestGreedySuboptimal(t *testing.T) {
	// Dictionary = prefix closure of {a^k, a^k·b} plus {b}; text = a^(k+1)b.
	// Greedy: a^k | a | b = 3 phrases; optimal: a | a^k·b = 2.
	m := pram.New(4)
	k := 5
	n := k + 2 // k+1 a's and one b
	maxLen := make([]int32, n)
	for i := 0; i <= k+1; i++ {
		switch {
		case i == 1:
			maxLen[i] = int32(k + 1) // a^k·b
		case i <= k:
			asLeft := k + 1 - i
			maxLen[i] = int32(min(asLeft, k)) // a-run words only
		default:
			maxLen[i] = 1 // b
		}
	}
	greedy, err := GreedyParse(n, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalParse(m, n, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) >= len(greedy) {
		t.Fatalf("optimal (%d) not better than greedy (%d)", len(opt), len(greedy))
	}
	if len(opt) != 2 || len(greedy) != 3 {
		t.Fatalf("expected 2 vs 3, got %d vs %d", len(opt), len(greedy))
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewPCG(153, 154))
	m := pram.New(4)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(150)
		maxLen := make([]int32, n)
		for i := range maxLen {
			maxLen[i] = 1 + int32(rng.IntN(6))
			if int(maxLen[i]) > n-i {
				maxLen[i] = int32(n - i)
			}
		}
		greedy, err := GreedyParse(n, maxLen)
		if err != nil {
			continue
		}
		opt, err := OptimalParse(m, n, maxLen)
		if err != nil {
			t.Fatalf("greedy parses but optimal fails: %v", err)
		}
		if len(opt) > len(greedy) {
			t.Fatalf("optimal %d > greedy %d", len(opt), len(greedy))
		}
	}
}

func TestNoParse(t *testing.T) {
	m := pram.New(4)
	// Position 2 has no word and must be crossed... but maxLen[0]=1,
	// maxLen[1]=1 can't jump it.
	maxLen := []int32{1, 1, 0, 1}
	if _, err := OptimalParse(m, 4, maxLen); err != ErrNoParse {
		t.Fatalf("err = %v", err)
	}
	if _, err := BFSParse(4, maxLen); err != ErrNoParse {
		t.Fatalf("bfs err = %v", err)
	}
	if _, err := GreedyParse(4, maxLen); err != ErrNoParse {
		t.Fatalf("greedy err = %v", err)
	}
	// A long word can jump the hole.
	maxLen = []int32{3, 1, 0, 1}
	opt, err := OptimalParse(m, 4, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	phraseCountOK(t, opt, 4, maxLen)
	if len(opt) != 2 {
		t.Fatalf("phrases = %v", opt)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	m := pram.New(4)
	if got, err := OptimalParse(m, 0, nil); err != nil || got != nil {
		t.Fatal("empty parse")
	}
	got, err := OptimalParse(m, 1, []int32{1})
	if err != nil || len(got) != 1 || got[0] != (Phrase{0, 1}) {
		t.Fatalf("single: %v %v", got, err)
	}
	if _, err := OptimalParse(m, 1, []int32{0}); err != ErrNoParse {
		t.Fatal("unparseable single accepted")
	}
	if _, err := OptimalParse(m, 2, []int32{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestFrontierMatchesOptimalCount cross-checks the streaming frontier rule
// against both the dominating-edge construction and the BFS ground truth:
// same parse/no-parse outcome, same (minimal) phrase count, valid phrases.
// This is the equivalence the streaming segment parser (internal/stream)
// rests on.
func TestFrontierMatchesOptimalCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(157, 158))
	m := pram.New(4)
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.IntN(150)
		maxLen := make([]int32, n)
		for i := range maxLen {
			if rng.IntN(15) == 0 {
				maxLen[i] = 0
			} else {
				maxLen[i] = 1 + int32(rng.IntN(9))
			}
			if int(maxLen[i]) > n-i {
				maxLen[i] = int32(n - i)
			}
		}
		opt, errOpt := OptimalParse(m, n, maxLen)
		got, errGot := FrontierParse(n, maxLen)
		if (errOpt == nil) != (errGot == nil) {
			t.Fatalf("trial=%d: error mismatch frontier=%v optimal=%v (maxLen=%v)",
				trial, errGot, errOpt, maxLen)
		}
		if errOpt != nil {
			continue
		}
		if len(got) != len(opt) {
			t.Fatalf("trial=%d: frontier %d phrases, optimal %d (maxLen=%v)",
				trial, len(got), len(opt), maxLen)
		}
		phraseCountOK(t, got, n, maxLen)
	}
}

// TestGreedyOptimalityPrecondition pins the exact hypothesis under which
// longest-match greedy parsing is optimal — and the one under which it is
// NOT. The streaming parser must not rely on greedy under the §5 prefix
// property alone.
//
// Greedy is optimal for *suffix-closed* dictionaries: every suffix of a
// word is a word, equivalently maxLen[i+1] >= maxLen[i]-1, which makes the
// reach i+maxLen[i] non-decreasing, so taking the longest match never
// forfeits reach (Cohn & Khazan, "Parsing with prefix and suffix
// dictionaries"; Crochemore, Langiu & Mignosi, "A note on the greedy
// parsing optimality for dictionary-based text compression" — the note's
// optimality argument needs exactly this reach monotonicity, which
// LZ78/LZW-style dynamic dictionaries provide and a static prefix-closed
// dictionary does not). Under the prefix property alone greedy can lose:
// the prefix-closed dictionary {a, ab, b, bc, bcd, c, d} on text "abcd"
// gives greedy ab|c|d = 3 phrases versus optimal a|bcd = 2. FrontierParse
// stays optimal in both regimes, which is why internal/stream uses it.
func TestGreedyOptimalityPrecondition(t *testing.T) {
	// Part 1: suffix-closed maxLen (maxLen[i+1] >= maxLen[i]-1) ⇒ greedy
	// phrase count equals the optimum.
	rng := rand.New(rand.NewPCG(159, 160))
	m := pram.New(4)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(150)
		maxLen := make([]int32, n)
		prev := int32(1)
		for i := range maxLen {
			lo := prev - 1
			if lo < 1 {
				lo = 1 // keep the instance parseable: every position has a word
			}
			maxLen[i] = lo + int32(rng.IntN(5))
			if int(maxLen[i]) > n-i {
				maxLen[i] = int32(n - i)
			}
			prev = maxLen[i]
		}
		greedy, err := GreedyParse(n, maxLen)
		if err != nil {
			t.Fatalf("trial=%d: greedy failed on suffix-closed input: %v", trial, err)
		}
		opt, err := OptimalParse(m, n, maxLen)
		if err != nil {
			t.Fatalf("trial=%d: optimal failed: %v", trial, err)
		}
		if len(greedy) != len(opt) {
			t.Fatalf("trial=%d: suffix-closed input but greedy %d != optimal %d (maxLen=%v)",
				trial, len(greedy), len(opt), maxLen)
		}
	}

	// Part 2: the prefix-property-only counterexample. Dictionary
	// {a, ab, b, bc, bcd, c, d} is prefix-closed; text "abcd" has
	// maxLen = [2, 3, 1, 1].
	maxLen := []int32{2, 3, 1, 1}
	greedy, err := GreedyParse(4, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalParse(m, 4, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := FrontierParse(4, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy) != 3 || len(opt) != 2 || len(frontier) != 2 {
		t.Fatalf("counterexample: greedy=%d optimal=%d frontier=%d, want 3/2/2",
			len(greedy), len(opt), len(frontier))
	}
}

func TestFrontierEdgeCases(t *testing.T) {
	if got, err := FrontierParse(0, nil); err != nil || got != nil {
		t.Fatal("empty parse")
	}
	if _, err := FrontierParse(1, []int32{0}); err != ErrNoParse {
		t.Fatal("unparseable single accepted")
	}
	if _, err := FrontierParse(2, []int32{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	got, err := FrontierParse(1, []int32{1})
	if err != nil || len(got) != 1 || got[0] != (Phrase{0, 1}) {
		t.Fatalf("single: %v %v", got, err)
	}
	// Unreachable hole.
	if _, err := FrontierParse(4, []int32{1, 1, 0, 1}); err != ErrNoParse {
		t.Fatal("hole not detected")
	}
	// Jumpable hole.
	got, err = FrontierParse(4, []int32{3, 1, 0, 1})
	if err != nil || len(got) != 2 {
		t.Fatalf("jumpable hole: %v %v", got, err)
	}
}

func TestEdgeCount(t *testing.T) {
	if EdgeCount([]int32{3, 0, 2}) != 5 {
		t.Fatal("edge count")
	}
}

func TestOptimalWorkLinearVsBFSQuadratic(t *testing.T) {
	// With maxLen ~ n/2 everywhere, BFS considers Θ(n²) edges while the
	// dominating-edge parse does O(n) work (sequential machine).
	n := 4000
	maxLen := make([]int32, n)
	for i := range maxLen {
		l := n / 2
		if l > n-i {
			l = n - i
		}
		maxLen[i] = int32(l)
	}
	if ec := EdgeCount(maxLen); ec < int64(n)*int64(n)/8 {
		t.Fatalf("edge count %d unexpectedly small", ec)
	}
	m := pram.NewSequential()
	m.ResetCounters()
	if _, err := OptimalParse(m, n, maxLen); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Counters()
	if w > int64(n)*64 {
		t.Fatalf("optimal parse work %d not near-linear for n=%d", w, n)
	}
}
