package rmq

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func bruteIndex(a []int64, lo, hi int, min bool) int {
	best := lo
	for i := lo + 1; i <= hi; i++ {
		if min && a[i] < a[best] || !min && a[i] > a[best] {
			best = i
		}
	}
	return best
}

func TestRMQAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{1, 2, 3, 17, 64, 257, 1000} {
			a := make([]int64, n)
			for i := range a {
				a[i] = rng.Int64N(50) // small range forces ties
			}
			tmin := NewMin(m, a)
			tmax := NewMax(m, a)
			for q := 0; q < 500; q++ {
				lo := rng.IntN(n)
				hi := lo + rng.IntN(n-lo)
				if got, want := tmin.QueryIndex(lo, hi), bruteIndex(a, lo, hi, true); got != want {
					t.Fatalf("n=%d min [%d,%d] = %d want %d", n, lo, hi, got, want)
				}
				if got, want := tmax.QueryIndex(lo, hi), bruteIndex(a, lo, hi, false); got != want {
					t.Fatalf("n=%d max [%d,%d] = %d want %d", n, lo, hi, got, want)
				}
				if tmin.Query(lo, hi) != a[bruteIndex(a, lo, hi, true)] {
					t.Fatalf("value mismatch")
				}
			}
		}
	}
}

func TestRMQSingleElementAndFullRange(t *testing.T) {
	m := pram.NewSequential()
	a := []int64{5, 3, 8, 3, 9}
	tb := NewMin(m, a)
	if tb.QueryIndex(2, 2) != 2 {
		t.Fatal("single-element query")
	}
	if tb.QueryIndex(0, 4) != 1 {
		t.Fatalf("full-range min index = %d", tb.QueryIndex(0, 4))
	}
	// Tie at value 3: indices 1 and 3; lowest index wins.
	if tb.QueryIndex(1, 3) != 1 {
		t.Fatalf("tie break = %d, want 1", tb.QueryIndex(1, 3))
	}
	if tb.Len() != 5 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestRMQBadRangePanics(t *testing.T) {
	m := pram.NewSequential()
	tb := NewMax(m, []int64{1, 2})
	for _, rg := range [][2]int{{1, 0}, {-1, 1}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", rg)
				}
			}()
			tb.QueryIndex(rg[0], rg[1])
		}()
	}
}

func TestRMQEmpty(t *testing.T) {
	m := pram.NewSequential()
	tb := NewMin(m, nil)
	if tb.Len() != 0 {
		t.Fatal("empty table")
	}
}
