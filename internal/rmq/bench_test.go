package rmq

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func benchArray(n int) []int64 {
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int64N(1 << 30)
	}
	return a
}

func BenchmarkBuild(b *testing.B) {
	a := benchArray(1 << 16)
	m := pram.NewSequential()
	b.SetBytes(1 << 16)
	for i := 0; i < b.N; i++ {
		NewMin(m, a)
	}
}

func BenchmarkQuery(b *testing.B) {
	a := benchArray(1 << 16)
	t := NewMin(pram.NewSequential(), a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := i % (1 << 15)
		t.QueryIndex(lo, lo+(i%(1<<15)))
	}
}
