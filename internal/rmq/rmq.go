// Package rmq implements range-minimum/maximum queries (the paper's
// Lemma 2.3, Berkman–Vishkin): preprocess an array so that any
// range-extremum query is answered in O(1) time.
//
// We use the sparse-table method: O(n log n) preprocessing work at O(log n)
// depth, O(1) query. The paper's recursive *-tree achieves O(n)
// preprocessing work; the substitution is recorded in DESIGN.md §4 and only
// affects the constant/log factor of *preprocessing*, never query time.
package rmq

import (
	"math/bits"

	"repro/internal/pram"
)

// Table answers range-extremum queries over a fixed array in O(1).
type Table struct {
	a   []int64
	sp  [][]int32 // sp[k][i] = index of extremum in a[i : i+2^k]
	min bool      // true: minima, false: maxima
}

// NewMin builds a range-minimum table. The array is retained by reference
// and must not be mutated afterwards.
func NewMin(m *pram.Machine, a []int64) *Table { return build(m, a, true) }

// NewMax builds a range-maximum table.
func NewMax(m *pram.Machine, a []int64) *Table { return build(m, a, false) }

func build(m *pram.Machine, a []int64, min bool) *Table {
	n := len(a)
	t := &Table{a: a, min: min}
	if n == 0 {
		return t
	}
	levels := bits.Len(uint(n)) // 2^(levels-1) <= n
	t.sp = make([][]int32, levels)
	t.sp[0] = make([]int32, n)
	m.ParallelFor(n, func(i int) { t.sp[0][i] = int32(i) })
	for k := 1; k < levels; k++ {
		width := 1 << k
		cnt := n - width + 1
		if cnt <= 0 {
			t.sp = t.sp[:k]
			break
		}
		t.sp[k] = make([]int32, cnt)
		prev, cur := t.sp[k-1], t.sp[k]
		half := width / 2
		m.ParallelFor(cnt, func(i int) {
			x, y := prev[i], prev[i+half]
			if t.better(int(x), int(y)) {
				cur[i] = x
			} else {
				cur[i] = y
			}
		})
	}
	return t
}

// NewMinSequential builds a range-minimum table with plain loops and no
// machine: same tables, same answers, zero PRAM work charged. Snapshot
// decoding (internal/persist) uses this so a loaded dictionary performs no
// re-preprocessing on the cost ledger.
func NewMinSequential(a []int64) *Table { return buildSequential(a, true) }

// NewMaxSequential is NewMax without a machine.
func NewMaxSequential(a []int64) *Table { return buildSequential(a, false) }

func buildSequential(a []int64, min bool) *Table {
	n := len(a)
	t := &Table{a: a, min: min}
	if n == 0 {
		return t
	}
	levels := bits.Len(uint(n))
	t.sp = make([][]int32, levels)
	t.sp[0] = make([]int32, n)
	for i := 0; i < n; i++ {
		t.sp[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		width := 1 << k
		cnt := n - width + 1
		if cnt <= 0 {
			t.sp = t.sp[:k]
			break
		}
		t.sp[k] = make([]int32, cnt)
		prev, cur := t.sp[k-1], t.sp[k]
		half := width / 2
		for i := 0; i < cnt; i++ {
			x, y := prev[i], prev[i+half]
			if t.better(int(x), int(y)) {
				cur[i] = x
			} else {
				cur[i] = y
			}
		}
	}
	return t
}

// better reports whether index x beats index y under this table's order,
// breaking ties toward the lower index.
func (t *Table) better(x, y int) bool {
	if t.min {
		if t.a[x] != t.a[y] {
			return t.a[x] < t.a[y]
		}
	} else {
		if t.a[x] != t.a[y] {
			return t.a[x] > t.a[y]
		}
	}
	return x <= y
}

// QueryIndex returns the index of the extremum of a[lo..hi] (inclusive),
// lowest index among ties. Panics if the range is empty or out of bounds.
func (t *Table) QueryIndex(lo, hi int) int {
	if lo > hi || lo < 0 || hi >= len(t.a) {
		panic("rmq: bad range")
	}
	k := bits.Len(uint(hi-lo+1)) - 1
	x := int(t.sp[k][lo])
	y := int(t.sp[k][hi-(1<<k)+1])
	if t.better(x, y) {
		return x
	}
	return y
}

// Query returns the extremum value of a[lo..hi] (inclusive).
func (t *Table) Query(lo, hi int) int64 { return t.a[t.QueryIndex(lo, hi)] }

// Len returns the length of the underlying array.
func (t *Table) Len() int { return len(t.a) }
