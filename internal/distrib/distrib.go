// Package distrib simulates the distributed implementation the paper
// sketches in §1.2: "Versions of our algorithms seem suitable for
// distributed implementation on a network of workstations [24]. In fact,
// in this setting, we can conclude from Communication Complexity that even
// checking equality of strings requires randomization for efficiency [29]."
//
// The cluster is simulated with one goroutine per workstation and counted
// channel messages standing in for the network:
//
//   - Dictionary matching is distributed by sharding the text. The
//     dictionary (size d) is broadcast once; each worker receives its shard
//     plus a halo of maxPatternLen-1 bytes from the right neighbour's
//     region — M[i] depends on at most that much lookahead — and returns
//     its shard's matches. Communication: O(d·W + n + W·m) bytes total,
//     independent of the number of matches.
//   - EqualExchange demonstrates the Yao [29] point: two workstations
//     decide equality of remote strings by exchanging an O(1)-word random
//     fingerprint instead of n bytes, correct with probability
//     1 - n/2^61; the deterministic alternative is the full transfer.
package distrib

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/pram"
)

// Stats counts simulated network traffic.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Cluster is a simulated network of workstations.
type Cluster struct {
	workers int
	msgs    atomic.Int64
	bytes   atomic.Int64
}

// NewCluster returns a cluster of w workstations (w >= 1).
func NewCluster(w int) *Cluster {
	if w < 1 {
		w = 1
	}
	return &Cluster{workers: w}
}

// Workers returns the workstation count.
func (c *Cluster) Workers() int { return c.workers }

// Stats returns the accumulated message/byte counters.
func (c *Cluster) Stats() Stats {
	return Stats{Messages: c.msgs.Load(), Bytes: c.bytes.Load()}
}

// send accounts one message of the given payload size.
func (c *Cluster) send(bytes int) {
	c.msgs.Add(1)
	c.bytes.Add(int64(bytes))
}

// shardResult carries one worker's output back to the coordinator.
type shardResult struct {
	worker  int
	start   int
	matches []core.Match
}

// Match runs distributed dictionary matching: broadcast the dictionary,
// shard the text with halos, match shards concurrently (each workstation
// is one goroutine running the paper's §3 algorithm on a sequential PRAM),
// and gather. The output is identical to a single-machine run; tests
// assert it.
func (c *Cluster) Match(patterns [][]byte, text []byte, seed uint64) []core.Match {
	n := len(text)
	out := make([]core.Match, n)
	if n == 0 {
		return out
	}
	maxPat := 0
	d := 0
	for _, p := range patterns {
		d += len(p)
		if len(p) > maxPat {
			maxPat = len(p)
		}
	}
	// Broadcast the dictionary: one message of d bytes per workstation.
	for w := 0; w < c.workers; w++ {
		c.send(d)
	}
	results := make(chan shardResult, c.workers)
	var wg sync.WaitGroup
	per := (n + c.workers - 1) / c.workers
	active := 0
	for w := 0; w < c.workers; w++ {
		start := w * per
		if start >= n {
			break
		}
		end := start + per
		if end > n {
			end = n
		}
		halo := end + maxPat - 1
		if halo > n {
			halo = n
		}
		// Shard + halo shipped to the workstation.
		c.send(halo - start)
		active++
		wg.Add(1)
		go func(w, start, end, halo int) {
			defer wg.Done()
			m := pram.NewSequential()
			dict := core.Preprocess(m, patterns, core.Options{Seed: seed})
			local := dict.MatchText(m, text[start:halo])
			// Only positions within the shard proper are this worker's
			// responsibility; halo positions belong to the neighbour.
			res := make([]core.Match, end-start)
			copy(res, local[:end-start])
			// Matches that would overrun the halo cannot exist (length is
			// bounded by maxPat), but clamp defensively.
			for i := range res {
				if res[i].Length > 0 && start+i+int(res[i].Length) > halo {
					res[i] = core.None
				}
			}
			results <- shardResult{worker: w, start: start, matches: res}
		}(w, start, end, halo)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		// Result gather: one message carrying the shard's matches.
		c.send(8 * len(r.matches))
		copy(out[r.start:], r.matches)
	}
	return out
}

// EqualExchange decides whether two remote strings are equal by exchanging
// fingerprints (the randomized protocol [29] makes efficient): each side
// sends one 8-byte fingerprint plus an 8-byte length. Returns the verdict
// and the bytes exchanged; deterministicBytes reports what a deterministic
// protocol would have shipped (the whole string).
func (c *Cluster) EqualExchange(a, b []byte, seed uint64) (equal bool, exchanged, deterministicBytes int64) {
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	if maxLen == 0 {
		return true, 0, 0
	}
	h := fingerprint.NewHasher(seed, maxLen)
	m := pram.NewSequential()
	fa := h.NewTable(m, a).Substring(0, len(a))
	fb := h.NewTable(m, b).Substring(0, len(b))
	c.send(16) // (len, fp) from A to B
	c.send(16) // (len, fp) from B to A
	return len(a) == len(b) && fa == fb, 32, int64(len(a))
}
