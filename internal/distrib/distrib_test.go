package distrib

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func TestDistributedMatchEqualsSingleMachine(t *testing.T) {
	gen := textgen.New(171)
	patterns := gen.Dictionary(12, 2, 9, 3)
	text := gen.Uniform(2000, 3)
	single := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 5})
	want := single.MatchText(pram.NewSequential(), text)

	for _, workers := range []int{1, 2, 3, 8, 17} {
		c := NewCluster(workers)
		got := c.Match(patterns, text, 5)
		if len(got) != len(want) {
			t.Fatalf("w=%d length mismatch", workers)
		}
		for i := range want {
			if got[i].Length != want[i].Length {
				t.Fatalf("w=%d pos %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedMatchBoundarySpanningMatches(t *testing.T) {
	// A long pattern straddling every shard boundary must still be found.
	pattern := []byte("abcdefghij")
	text := make([]byte, 0, 40*11)
	for i := 0; i < 40; i++ {
		text = append(text, pattern...)
		text = append(text, 'x')
	}
	c := NewCluster(7) // shard size not aligned with the period
	got := c.Match([][]byte{pattern}, text, 3)
	found := 0
	for i := 0; i+len(pattern) <= len(text); i++ {
		if got[i].Length == int32(len(pattern)) {
			found++
		}
	}
	if found != 40 {
		t.Fatalf("found %d of 40 straddling occurrences", found)
	}
}

func TestClusterStats(t *testing.T) {
	gen := textgen.New(172)
	patterns := gen.Dictionary(5, 2, 5, 3)
	text := gen.Uniform(1000, 3)
	c := NewCluster(4)
	c.Match(patterns, text, 1)
	s := c.Stats()
	if s.Messages == 0 || s.Bytes == 0 {
		t.Fatal("no traffic recorded")
	}
	// Broadcast (4 msgs) + shards (4) + gathers (4).
	if s.Messages != 12 {
		t.Fatalf("messages = %d want 12", s.Messages)
	}
	var d int64
	for _, p := range patterns {
		d += int64(len(p))
	}
	// Bytes: 4 dictionary replicas + ~n text + halos + 8n results.
	min := 4*d + int64(len(text))
	if s.Bytes < min {
		t.Fatalf("bytes = %d, want >= %d", s.Bytes, min)
	}
}

func TestClusterDegenerate(t *testing.T) {
	c := NewCluster(0) // clamps to 1
	if c.Workers() != 1 {
		t.Fatalf("workers = %d", c.Workers())
	}
	got := c.Match([][]byte{[]byte("ab")}, nil, 1)
	if len(got) != 0 {
		t.Fatal("empty text")
	}
	// More workers than bytes.
	c = NewCluster(50)
	got = c.Match([][]byte{[]byte("ab")}, []byte("abab"), 1)
	if got[0].Length != 2 || got[2].Length != 2 {
		t.Fatalf("matches = %v", got)
	}
}

func TestEqualExchange(t *testing.T) {
	c := NewCluster(2)
	gen := textgen.New(173)
	a := gen.Uniform(100_000, 4)
	b := append([]byte(nil), a...)
	eq, exchanged, det := c.EqualExchange(a, b, 1)
	if !eq {
		t.Fatal("equal strings reported unequal")
	}
	if exchanged != 32 {
		t.Fatalf("exchanged = %d", exchanged)
	}
	if det != int64(len(a)) {
		t.Fatalf("deterministic bytes = %d", det)
	}
	b[50_000] ^= 1
	eq, _, _ = c.EqualExchange(a, b, 1)
	if eq {
		t.Fatal("unequal strings reported equal")
	}
	// Different lengths.
	eq, _, _ = c.EqualExchange(a, a[:99_999], 1)
	if eq {
		t.Fatal("different lengths reported equal")
	}
	// Empty strings.
	eq, exchanged, _ = c.EqualExchange(nil, nil, 1)
	if !eq || exchanged != 0 {
		t.Fatal("empty equality")
	}
}
