// Package lz implements the paper's §4: work-optimal parallel LZ1
// (Lempel–Ziv 76) compression and uncompression.
//
// Compression (Theorem 4.2) follows the paper exactly:
//
//  1. Build the suffix tree of the text (Lemma 2.1 substitute, see
//     package suffixtree).
//  2. For every internal node v compute L[v], the minimum leaf (suffix
//     start) in its subtree; for every position i find A[i], the deepest
//     ancestor of leaf i with L[A[i]] < i, via the nearest-marked-ancestor
//     primitive (Lemma 2.7): mark v where L[v] differs from L[parent].
//     Then M[i] = (L[A[i]], strdepth(A[i])) is the longest earlier match
//     (Lemma 4.1).
//  3. The parse graph with parent(i) = i + max(1, len(M[i])) is a tree
//     rooted at n; the LZ1 phrases are the path 1 → n, extracted in
//     parallel by list ranking.
//
// Uncompression (Theorem 4.3) builds the copy forest — every position
// points at the position it was copied from, literals are roots — and
// resolves it either by pointer jumping or by connected components
// (Lemma 2.2), both provided for the E8 ablation.
package lz

import (
	"fmt"

	"repro/internal/colorednca"
	"repro/internal/conncomp"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/rmq"
	"repro/internal/suffixtree"
)

// Token is one LZ1 phrase: either a literal (Len == 0, Lit holds the byte)
// or a copy of Len bytes from absolute source position Src.
type Token struct {
	Src int32
	Len int32
	Lit byte
}

// IsLiteral reports whether the token is a literal character.
func (t Token) IsLiteral() bool { return t.Len == 0 }

// Compressed is an LZ1 parse together with the original length, which the
// paper assumes is transmitted ([23]).
type Compressed struct {
	N      int
	Tokens []Token
}

// Compress computes the LZ1 parse of text. Work O(n) beyond the suffix
// tree, depth O(log n).
func Compress(m *pram.Machine, text []byte) Compressed {
	n := len(text)
	if n == 0 {
		return Compressed{}
	}
	match := matchStatistics(m, text)
	parseSnap := m.Snapshot()
	defer func() { m.RecordPhase("lz/parse", parseSnap) }()
	// Parse tree: parent(i) = i + max(1, matchLen(i)); node n is the root.
	next := m.GetInts(n + 1)
	m.ParallelFor(n+1, func(i int) {
		if i == n {
			next[i] = i
			return
		}
		step := int(match[i].Len)
		if step < 1 {
			step = 1
		}
		next[i] = i + step
		if next[i] > n {
			next[i] = n
		}
	})
	path := par.ParallelPathToRoot(m, next, 0)
	m.PutInts(next)
	tokens := make([]Token, len(path)-1)
	m.ParallelFor(len(tokens), func(k int) {
		i := path[k]
		if match[i].Len < 1 {
			tokens[k] = Token{Len: 0, Lit: text[i]}
		} else {
			l := match[i].Len
			if i+int(l) > n {
				l = int32(n - i)
			}
			tokens[k] = Token{Src: match[i].Src, Len: l}
		}
	})
	return Compressed{N: n, Tokens: tokens}
}

// prevMatch is M[i] of §4.1: the longest match starting at i whose other
// occurrence starts strictly earlier.
type prevMatch struct {
	Src int32
	Len int32
}

// matchStatistics computes M[i] for every position via Lemma 4.1. The
// ledger segments are recorded as phases ("lz/suffixtree" for the Lemma
// 2.1 substrate, "lz/matchstats" for the paper's own §4.1 steps) so
// experiments can attribute costs.
func matchStatistics(m *pram.Machine, text []byte) []prevMatch {
	n := len(text)
	snap := m.Snapshot()
	st := suffixtree.Build(m, text)
	m.RecordPhase("lz/suffixtree", snap)
	snap = m.Snapshot()
	defer func() { m.RecordPhase("lz/matchstats", snap) }()
	// L[v] = min suffix start under v.
	lmin := minLeafLabels(m, st)
	// Mark v where L[v] != L[parent(v)]; then for leaf i the nearest marked
	// ancestor v* is the top of the chain with L == i... — precisely, the
	// paper's marking: A[i] is the parent of the nearest marked ancestor of
	// leaf i (leaf included).
	marked := m.GetBools(st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) {
		p := st.Parent[v]
		marked[v] = p >= 0 && lmin[v] != lmin[p]
	})
	nma := colorednca.NearestMarkedAll(m, st.Parent, marked)
	m.PutBools(marked)
	out := make([]prevMatch, n)
	m.ParallelFor(n, func(i int) {
		leaf := int(st.LeafID[i])
		vstar := nma[leaf]
		a := -1
		if vstar >= 0 {
			a = st.Parent[vstar]
		}
		// Walking up zero marked nodes means even the leaf's own chain
		// reaches the root with constant L — the root always has L = min
		// overall < i for i > 0.
		if a < 0 {
			a = st.Root
		}
		if i == 0 || lmin[a] >= int32(i) || st.StrDepth[a] == 0 {
			out[i] = prevMatch{Src: -1, Len: 0}
			return
		}
		out[i] = prevMatch{Src: lmin[a], Len: st.StrDepth[a]}
	})
	return out
}

// minLeafLabels computes, for every node, the minimum suffix start among
// the leaves of its subtree. Leaves are contiguous SA ranges, so this is a
// range-minimum over SA (Lemma 2.3): O(1) per node after the table.
func minLeafLabels(m *pram.Machine, st *suffixtree.Tree) []int32 {
	n1 := st.NumLeaves()
	sa64 := m.GetInt64s(n1)
	m.ParallelFor(n1, func(r int) { sa64[r] = int64(st.SA[r]) })
	t := rmq.NewMin(m, sa64)
	out := make([]int32, st.NumNodes)
	m.ParallelFor(st.NumNodes, func(v int) {
		out[v] = int32(t.Query(int(st.Lo[v]), int(st.Hi[v])))
	})
	m.PutInt64s(sa64) // t retains sa64, but t dies with this frame
	return out
}

// Decode reconstructs the text from an LZ1 parse sequentially; it is the
// reference implementation and the oracle for the parallel uncompressor.
func Decode(c Compressed) ([]byte, error) {
	out := make([]byte, 0, c.N)
	for _, t := range c.Tokens {
		if t.IsLiteral() {
			out = append(out, t.Lit)
			continue
		}
		if t.Src < 0 || int(t.Src) >= len(out) {
			return nil, fmt.Errorf("lz: token source %d out of range (have %d bytes)", t.Src, len(out))
		}
		// Self-referencing copies (Src+Len > len(out)) are legal in LZ1 and
		// must be copied byte-by-byte.
		for k := int32(0); k < t.Len; k++ {
			out = append(out, out[int(t.Src)+int(k)])
		}
	}
	if len(out) != c.N {
		return nil, fmt.Errorf("lz: decoded %d bytes, header says %d", len(out), c.N)
	}
	return out, nil
}

// UncompressMode selects the §4.2 forest-resolution strategy.
type UncompressMode int

const (
	// ByPointerJumping resolves the copy forest with pointer doubling.
	ByPointerJumping UncompressMode = iota
	// ByConnectedComponents resolves it with Lemma 2.2, as written in the
	// paper.
	ByConnectedComponents
)

// Uncompress reconstructs the text in parallel (Theorem 4.3): O(log n)
// time, O(n) work (up to the documented log factors of the substituted
// primitives).
func Uncompress(m *pram.Machine, c Compressed, mode UncompressMode) ([]byte, error) {
	n := c.N
	if n == 0 {
		return nil, nil
	}
	// Block starts by prefix sums over token lengths.
	lens := m.GetInt64s(len(c.Tokens))
	defer m.PutInt64s(lens)
	m.ParallelFor(len(c.Tokens), func(k int) {
		if c.Tokens[k].IsLiteral() {
			lens[k] = 1
		} else {
			lens[k] = int64(c.Tokens[k].Len)
		}
	})
	// The block-scatter below does variable work per token; charge the
	// total and the longest block as the step cost.
	maxLen := par.Reduce(m, lens, 1, func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	})
	m.Account(int64(n), maxLen)
	total := par.ExclusiveScan(m, lens) // lens[k] becomes the start of block k
	if int(total) != n {
		return nil, fmt.Errorf("lz: token lengths sum to %d, header says %d", total, n)
	}
	// Copy forest: src[i] = position i was copied from; literals are roots.
	src := m.GetInts(n)
	defer m.PutInts(src)
	lit := m.GetBytes(n)
	defer m.PutBytes(lit)
	bad := pram.NewCells(1)
	m.ParallelFor(len(c.Tokens), func(k int) {
		start := int(lens[k])
		t := c.Tokens[k]
		if t.IsLiteral() {
			src[start] = start
			lit[start] = t.Lit
			return
		}
		if t.Src < 0 || int(t.Src) >= start {
			bad.Write(0, 1)
			return
		}
		for off := 0; off < int(t.Len); off++ {
			src[start+off] = int(t.Src) + off
		}
	})
	if bad.Read(0) != 0 {
		return nil, fmt.Errorf("lz: copy source out of range")
	}
	out := make([]byte, n)
	switch mode {
	case ByConnectedComponents:
		// Every position contributes one edge to its copy source (roots
		// contribute self-loops, which the component algorithm ignores).
		// Sources are strictly smaller than their targets, so each
		// component's minimum — its label — is its literal root.
		edges := make([]conncomp.Edge, n)
		m.ParallelFor(n, func(i int) {
			edges[i] = conncomp.Edge{U: int32(i), V: int32(src[i])}
		})
		labels := conncomp.Components(m, n, edges)
		m.ParallelFor(n, func(i int) { out[i] = lit[labels[i]] })
	default:
		roots := par.PointerJumpRoots(m, src)
		m.ParallelFor(n, func(i int) { out[i] = lit[roots[i]] })
		m.PutInts(roots)
	}
	return out, nil
}

// CompressSequential is the classical sequential LZ1 compressor (greedy
// longest previous match at each step), the baseline of [23]'s O(n log n)
// and the oracle for the parallel parse. It runs in O(n) plus suffix-tree
// construction on the sequential machine.
func CompressSequential(m *pram.Machine, text []byte) Compressed {
	n := len(text)
	if n == 0 {
		return Compressed{}
	}
	match := matchStatistics(m, text)
	var tokens []Token
	for i := 0; i < n; {
		if match[i].Len < 1 {
			tokens = append(tokens, Token{Len: 0, Lit: text[i]})
			i++
			continue
		}
		l := int(match[i].Len)
		if i+l > n {
			l = n - i
		}
		tokens = append(tokens, Token{Src: match[i].Src, Len: int32(l)})
		i += l
	}
	m.Account(int64(n), int64(n))
	return Compressed{N: n, Tokens: tokens}
}
