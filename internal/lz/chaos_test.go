//go:build chaos

package lz

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func withPlan(t *testing.T, seed uint64, spec string) {
	t.Helper()
	plan, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	chaos.Install(plan)
	t.Cleanup(func() { chaos.Install(nil) })
}

// TestChaosCorruptTokenRetried: an injected token corruption must be caught
// by the deterministic verifier and healed by one retry — the compression
// analog of a fingerprint-collision reseed.
func TestChaosCorruptTokenRetried(t *testing.T) {
	text := textgen.New(50).Repetitive(1500, 60, 0.1)
	m := pram.New(2)
	defer m.Close()
	withPlan(t, 17, "lz.corrupt:p=1,n=1")
	c, attempts, err := CompressVerified(m, text)
	if err != nil {
		t.Fatalf("CompressVerified: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one corrupted, one clean)", attempts)
	}
	dec, err := Decode(c)
	if err != nil || !bytes.Equal(dec, text) {
		t.Fatalf("round trip after recovery failed: %v", err)
	}
	// And the parallel uncompressor agrees on the healed parse.
	out, err := Uncompress(m, c, ByPointerJumping)
	if err != nil || !bytes.Equal(out, text) {
		t.Fatalf("parallel uncompress after recovery failed: %v", err)
	}
}

// TestChaosPersistentCorruptionExhausts: a fault that fires on every attempt
// must exhaust the retry budget and surface a typed error, not spin.
func TestChaosPersistentCorruptionExhausts(t *testing.T) {
	text := textgen.New(51).Repetitive(800, 40, 0.1)
	m := pram.NewSequential()
	withPlan(t, 23, "lz.corrupt:p=1")
	_, attempts, err := CompressVerified(m, text)
	if err == nil {
		t.Fatal("CompressVerified succeeded under a persistent fault")
	}
	if attempts != compressAttempts {
		t.Errorf("attempts = %d, want %d", attempts, compressAttempts)
	}
	stats := chaos.Active().Stats()
	var fired int64
	for _, s := range stats {
		if s.Point == chaos.LZCorrupt {
			fired = s.Fired
		}
	}
	if fired != int64(compressAttempts) {
		t.Errorf("lz.corrupt fired %d times, want %d", fired, compressAttempts)
	}
}
