package lz

import (
	"bytes"
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// bruteTriples is the direct sequential LZ77 triple parser.
func bruteTriples(text []byte) TripleCompressed {
	n := len(text)
	var out []Triple
	for i := 0; i < n; {
		bestLen, bestSrc := 0, -1
		for j := 0; j < i; j++ {
			l := 0
			for i+l < n && text[j+l] == text[i+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestSrc = l, j
			}
		}
		t := Triple{Len: int32(bestLen)}
		if bestLen > 0 {
			t.Src = int32(bestSrc)
		}
		if i+bestLen < n {
			t.Lit = text[i+bestLen]
			i += bestLen + 1
		} else {
			t.Last = true
			i += bestLen
		}
		out = append(out, t)
	}
	return TripleCompressed{N: n, Triples: out}
}

func TestTriplesMatchBrute(t *testing.T) {
	gen := textgen.New(14)
	cases := append([][]byte{}, lzCases...)
	cases = append(cases, gen.Uniform(300, 3), gen.Repetitive(300, 20, 0.05))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, text := range cases {
			got := CompressTriples(m, text)
			want := bruteTriples(text)
			if len(got.Triples) != len(want.Triples) {
				t.Fatalf("procs=%d %q: %d triples want %d", procs, clip(text), len(got.Triples), len(want.Triples))
			}
			for k := range want.Triples {
				g, w := got.Triples[k], want.Triples[k]
				if g.Len != w.Len || g.Last != w.Last || (!g.Last && g.Lit != w.Lit) {
					t.Fatalf("procs=%d %q triple %d: %+v want %+v", procs, clip(text), k, g, w)
				}
			}
			dec, err := DecodeTriples(got)
			if err != nil || !bytes.Equal(dec, text) {
				t.Fatalf("decode: %v", err)
			}
		}
	}
}

func TestUncompressTriples(t *testing.T) {
	gen := textgen.New(15)
	m := pram.New(4)
	for _, text := range [][]byte{
		gen.Repetitive(2000, 64, 0.01),
		gen.Uniform(1000, 4),
		[]byte("aaaaaaaa"), // ends in a copy (Last triple)
		[]byte("x"),
	} {
		c := CompressTriples(m, text)
		for _, mode := range []UncompressMode{ByPointerJumping, ByConnectedComponents} {
			got, err := UncompressTriples(m, c, mode)
			if err != nil || !bytes.Equal(got, text) {
				t.Fatalf("mode=%d roundtrip %q: %v", mode, clip(text), err)
			}
		}
	}
}

func TestTriplesVsTokensPhraseRelation(t *testing.T) {
	// The triple parse advances len+1 per phrase, so it can never use more
	// phrases than the token parse uses tokens.
	m := pram.New(4)
	text := textgen.New(16).Repetitive(4000, 50, 0.02)
	tok := Compress(m, text)
	tri := CompressTriples(m, text)
	if len(tri.Triples) > len(tok.Tokens) {
		t.Fatalf("triples %d > tokens %d", len(tri.Triples), len(tok.Tokens))
	}
}

func TestDecodeTriplesRejectsCorrupt(t *testing.T) {
	c := TripleCompressed{N: 5, Triples: []Triple{{Len: 3, Src: 9, Lit: 'x'}}}
	if _, err := DecodeTriples(c); err == nil {
		t.Fatal("bad source accepted")
	}
	c = TripleCompressed{N: 9, Triples: []Triple{{Len: 0, Lit: 'a'}}}
	if _, err := DecodeTriples(c); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
