package lz

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// decodeAll drains a Decoder into a Compressed, failing on any error.
func decodeAll(t *testing.T, data []byte) Compressed {
	t.Helper()
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	c := Compressed{N: d.N()}
	for {
		tok, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		c.Tokens = append(c.Tokens, tok)
	}
	return c
}

func TestDecoderMatchesDecodeStream(t *testing.T) {
	m := pram.NewSequential()
	rng := rand.New(rand.NewPCG(11, 7))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(2000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.IntN(3))
		}
		c := Compress(m, text)
		var buf bytes.Buffer
		if err := EncodeStream(&buf, c); err != nil {
			t.Fatalf("EncodeStream: %v", err)
		}
		want, err := DecodeStream(buf.Bytes())
		if err != nil {
			t.Fatalf("DecodeStream: %v", err)
		}
		got := decodeAll(t, buf.Bytes())
		if got.N != want.N {
			t.Fatalf("trial %d: N = %d, want %d", trial, got.N, want.N)
		}
		if len(got.Tokens) != len(want.Tokens) {
			t.Fatalf("trial %d: %d tokens, want %d", trial, len(got.Tokens), len(want.Tokens))
		}
		for i := range got.Tokens {
			if got.Tokens[i] != want.Tokens[i] {
				t.Fatalf("trial %d: token %d = %+v, want %+v", trial, i, got.Tokens[i], want.Tokens[i])
			}
		}
	}
}

// TestDecoderTokenIteration pins the token-iteration surface czsearch
// consumes: NextToken yields exactly the encoded tokens (identically to
// Next), TokenCount reports the header count, and a non-container input
// fails with the typed ErrNotLZ1R1.
func TestDecoderTokenIteration(t *testing.T) {
	c := Compressed{N: 7, Tokens: []Token{
		{Lit: 'a'}, {Lit: 'b'}, {Src: 0, Len: 5}, // self-referential run
	}}
	var buf bytes.Buffer
	if err := EncodeStream(&buf, c); err != nil {
		t.Fatalf("EncodeStream: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.TokenCount() != uint64(len(c.Tokens)) {
		t.Fatalf("TokenCount = %d, want %d", d.TokenCount(), len(c.Tokens))
	}
	for i, want := range c.Tokens {
		tok, err := d.NextToken()
		if err != nil {
			t.Fatalf("NextToken %d: %v", i, err)
		}
		if tok != want {
			t.Fatalf("NextToken %d = %+v, want %+v", i, tok, want)
		}
	}
	if _, err := d.NextToken(); err != io.EOF {
		t.Fatalf("NextToken after last = %v, want io.EOF", err)
	}

	if _, err := NewDecoder(bytes.NewReader([]byte("plain text, not a container"))); !errors.Is(err, ErrNotLZ1R1) {
		t.Fatalf("non-container error = %v, want ErrNotLZ1R1", err)
	}
	if _, err := DecodeStream([]byte("plain text, not a container")); !errors.Is(err, ErrNotLZ1R1) {
		t.Fatalf("DecodeStream non-container error = %v, want ErrNotLZ1R1", err)
	}
}

func TestDecoderRejectsCorruptStreams(t *testing.T) {
	m := pram.NewSequential()
	c := Compress(m, []byte("abracadabra abracadabra"))
	var buf bytes.Buffer
	if err := EncodeStream(&buf, c); err != nil {
		t.Fatalf("EncodeStream: %v", err)
	}
	good := buf.Bytes()

	if _, err := NewDecoder(bytes.NewReader([]byte("NOTLZ1"))); err == nil {
		t.Fatalf("bad magic accepted")
	}
	if _, err := NewDecoder(bytes.NewReader(good[:len(Magic)])); err == nil {
		t.Fatalf("truncated header accepted")
	}

	// Truncated mid-token: the structural error must surface, not io.EOF.
	d, err := NewDecoder(bytes.NewReader(good[:len(good)-1]))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	sawErr := false
	for {
		_, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatalf("truncated stream decoded without error")
	}

	// Trailing garbage after the last token.
	d, err = NewDecoder(bytes.NewReader(append(append([]byte(nil), good...), 0xff)))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	sawErr = false
	for {
		_, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatalf("trailing bytes decoded without error")
	}
}
