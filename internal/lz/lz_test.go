package lz

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// bruteLZ1 computes the LZ1 parse by direct search: at each position take
// the longest substring that also starts earlier.
func bruteLZ1(text []byte) Compressed {
	n := len(text)
	var tokens []Token
	for i := 0; i < n; {
		bestLen, bestSrc := 0, -1
		for j := 0; j < i; j++ {
			l := 0
			for i+l < n && text[j+l] == text[i+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestSrc = l, j
			}
		}
		if bestLen < 1 {
			tokens = append(tokens, Token{Len: 0, Lit: text[i]})
			i++
		} else {
			tokens = append(tokens, Token{Src: int32(bestSrc), Len: int32(bestLen)})
			i += bestLen
		}
	}
	return Compressed{N: n, Tokens: tokens}
}

func sameParsePhrases(a, b Compressed) bool {
	if a.N != b.N || len(a.Tokens) != len(b.Tokens) {
		return false
	}
	// Phrase boundaries and literal/copy kinds must match; copy sources may
	// legitimately differ (any earlier occurrence is valid).
	for k := range a.Tokens {
		x, y := a.Tokens[k], b.Tokens[k]
		if x.IsLiteral() != y.IsLiteral() {
			return false
		}
		if x.IsLiteral() {
			if x.Lit != y.Lit {
				return false
			}
		} else if x.Len != y.Len {
			return false
		}
	}
	return true
}

var lzCases = [][]byte{
	[]byte("a"),
	[]byte("aa"),
	[]byte("ab"),
	[]byte("aaaaaaaaaaaaaaaa"),
	[]byte("abababababab"),
	[]byte("abcabcabcabcx"),
	[]byte("mississippi"),
	[]byte("banana"),
	textgen.Fibonacci(200),
	textgen.ThueMorse(200),
}

func TestCompressMatchesBruteParse(t *testing.T) {
	rng := rand.New(rand.NewPCG(141, 142))
	all := append([][]byte{}, lzCases...)
	for i := 0; i < 10; i++ {
		n := 20 + rng.IntN(150)
		s := make([]byte, n)
		for j := range s {
			s[j] = byte('a' + rng.IntN(2+rng.IntN(3)))
		}
		all = append(all, s)
	}
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, text := range all {
			got := Compress(m, text)
			want := bruteLZ1(text)
			if !sameParsePhrases(got, want) {
				t.Fatalf("procs=%d text=%q: parse differs\n got=%v\nwant=%v",
					procs, clip(text), got.Tokens, want.Tokens)
			}
			// Sources must point at genuine earlier occurrences.
			dec, err := Decode(got)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(dec, text) {
				t.Fatalf("roundtrip failed for %q", clip(text))
			}
		}
	}
}

func clip(b []byte) []byte {
	if len(b) > 40 {
		return b[:40]
	}
	return b
}

func TestCompressSequentialAgreesWithParallel(t *testing.T) {
	gen := textgen.New(7)
	seq := pram.NewSequential()
	par4 := pram.New(4)
	for _, text := range [][]byte{
		gen.Uniform(500, 3),
		gen.Repetitive(800, 50, 0.01),
		gen.DNA(600),
	} {
		a := Compress(par4, text)
		b := CompressSequential(seq, text)
		if !sameParsePhrases(a, b) {
			t.Fatalf("parallel and sequential parses differ on %q", clip(text))
		}
	}
}

func TestUncompressBothModes(t *testing.T) {
	gen := textgen.New(8)
	m := pram.New(4)
	texts := [][]byte{
		gen.Uniform(400, 4),
		gen.Repetitive(1000, 32, 0.02),
		textgen.Fibonacci(500),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaa"), // heavy self-reference
		[]byte("x"),
	}
	for _, text := range texts {
		c := Compress(m, text)
		for _, mode := range []UncompressMode{ByPointerJumping, ByConnectedComponents} {
			got, err := Uncompress(m, c, mode)
			if err != nil {
				t.Fatalf("mode=%d: %v", mode, err)
			}
			if !bytes.Equal(got, text) {
				t.Fatalf("mode=%d roundtrip failed for %q", mode, clip(text))
			}
		}
	}
}

func TestUncompressEmpty(t *testing.T) {
	m := pram.New(4)
	got, err := Uncompress(m, Compressed{}, ByPointerJumping)
	if err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if c := Compress(m, nil); c.N != 0 || len(c.Tokens) != 0 {
		t.Fatal("compress empty")
	}
}

func TestUncompressRejectsCorrupt(t *testing.T) {
	m := pram.New(4)
	// Token pointing forward.
	c := Compressed{N: 3, Tokens: []Token{{Len: 0, Lit: 'a'}, {Src: 5, Len: 2}}}
	if _, err := Uncompress(m, c, ByPointerJumping); err == nil {
		t.Fatal("forward source accepted")
	}
	// Length mismatch with header.
	c = Compressed{N: 5, Tokens: []Token{{Len: 0, Lit: 'a'}}}
	if _, err := Uncompress(m, c, ByPointerJumping); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Decode(c); err == nil {
		t.Fatal("Decode accepted length mismatch")
	}
}

func TestSelfReferencingCopy(t *testing.T) {
	// "aaaa...": parse is literal 'a' then one self-referencing copy.
	m := pram.New(4)
	text := bytes.Repeat([]byte{'a'}, 64)
	c := Compress(m, text)
	if len(c.Tokens) != 2 {
		t.Fatalf("tokens = %v", c.Tokens)
	}
	if !c.Tokens[0].IsLiteral() || c.Tokens[1].Len != 63 || c.Tokens[1].Src != 0 {
		t.Fatalf("unexpected parse %v", c.Tokens)
	}
	for _, mode := range []UncompressMode{ByPointerJumping, ByConnectedComponents} {
		got, err := Uncompress(m, c, mode)
		if err != nil || !bytes.Equal(got, text) {
			t.Fatalf("self-ref roundtrip mode=%d: %v", mode, err)
		}
	}
}

func TestPhraseCountDecreasesWithRepetitiveness(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(9)
	random := Compress(m, gen.Uniform(4096, 26))
	repet := Compress(m, gen.Repetitive(4096, 64, 0.001))
	if len(repet.Tokens) >= len(random.Tokens) {
		t.Fatalf("repetitive text (%d phrases) should compress better than random (%d)",
			len(repet.Tokens), len(random.Tokens))
	}
}

func TestCompressionWorkIsNearLinear(t *testing.T) {
	// On the sequential machine (linear-time DC3 path), work/n must be
	// bounded; ratio for doubled input stays near 2.
	work := func(n int) int64 {
		m := pram.NewSequential()
		text := textgen.New(10).Repetitive(n, 100, 0.05)
		m.ResetCounters()
		Compress(m, text)
		w, _ := m.Counters()
		return w
	}
	w1, w2 := work(1<<13), work(1<<14)
	if ratio := float64(w2) / float64(w1); ratio > 2.6 {
		t.Errorf("sequential compression work ratio %.2f for doubled n", ratio)
	}
}

func TestLZ2RoundTrip(t *testing.T) {
	gen := textgen.New(11)
	cases := append([][]byte{}, lzCases...)
	cases = append(cases, gen.Uniform(1000, 4), gen.Repetitive(1000, 40, 0.01), nil)
	for _, text := range cases {
		c := CompressLZ2(text)
		got := DecodeLZ2(c)
		if !bytes.Equal(got, text) {
			t.Fatalf("lz2 roundtrip failed for %q: got %q", clip(text), clip(got))
		}
	}
}

func TestLZ2KnownParse(t *testing.T) {
	// "aaaa": phrases a, aa, a(partial) -> tokens (0,a)(1,a) then partial 1.
	c := CompressLZ2([]byte("aaaa"))
	if len(c.Tokens) != 3 || !c.Partial {
		t.Fatalf("tokens=%v partial=%v", c.Tokens, c.Partial)
	}
	if c.Tokens[0] != (LZ2Token{0, 'a'}) || c.Tokens[1] != (LZ2Token{1, 'a'}) || c.Tokens[2].Prev != 1 {
		t.Fatalf("tokens=%v", c.Tokens)
	}
}

func TestLZ1BeatsLZ2OnRepetitive(t *testing.T) {
	// §1.2: LZ1 gives better compression in practice. On periodic text LZ1
	// uses O(1) phrases; LZ2 needs Θ(sqrt n).
	m := pram.New(4)
	text := textgen.New(12).Repetitive(8192, 64, 0)
	lz1 := Compress(m, text)
	lz2 := CompressLZ2(text)
	if len(lz1.Tokens)*4 > len(lz2.Tokens) {
		t.Fatalf("LZ1 %d phrases vs LZ2 %d: expected clear LZ1 win", len(lz1.Tokens), len(lz2.Tokens))
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	m := pram.New(4)
	gen := textgen.New(13)
	for _, text := range [][]byte{
		nil,
		[]byte("x"),
		gen.Uniform(500, 4),
		gen.Repetitive(2000, 64, 0.01),
	} {
		c := Compress(m, text)
		var buf bytes.Buffer
		if err := EncodeStream(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeStream(buf.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.N != c.N || len(got.Tokens) != len(c.Tokens) {
			t.Fatalf("stream roundtrip sizes: %d/%d vs %d/%d", got.N, len(got.Tokens), c.N, len(c.Tokens))
		}
		for i := range c.Tokens {
			if got.Tokens[i] != c.Tokens[i] {
				t.Fatalf("token %d: %v vs %v", i, got.Tokens[i], c.Tokens[i])
			}
		}
		dec, err := Decode(got)
		if err != nil || !bytes.Equal(dec, text) {
			t.Fatalf("full roundtrip failed: %v", err)
		}
	}
}

func TestDecodeStreamRejectsCorrupt(t *testing.T) {
	m := pram.New(4)
	c := Compress(m, []byte("abcabcabc"))
	var buf bytes.Buffer
	if err := EncodeStream(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := [][]byte{
		nil,
		[]byte("GZIP"),
		good[:3],                                // truncated magic
		good[:len(good)-1],                      // truncated last token
		append(append([]byte{}, good...), 0xFF), // trailing garbage
	}
	for i, bad := range cases {
		if _, err := DecodeStream(bad); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
	// Bad token kind.
	bad := append([]byte{}, good...)
	bad[len(Magic)+2] = 0x7F
	if _, err := DecodeStream(bad); err == nil {
		t.Error("bad token kind accepted")
	}
}
