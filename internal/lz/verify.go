package lz

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/pram"
)

// compressAttempts bounds the CompressVerified retry loop. The parallel
// parse is deterministic, so a second attempt only helps against transient
// faults (a flipped bit in the token buffer, a scheduling bug surfaced by
// a race) — two retries is already generous, and the bound turns an
// undiagnosed persistent fault into a typed error instead of a spin.
const compressAttempts = 3

// ErrVerifyFailed is wrapped by CompressVerified when every attempt
// produced a parse that failed verification.
var ErrVerifyFailed = errors.New("lz: parse failed verification")

// VerifyParse deterministically checks that c is a correct LZ1 parse of
// text, in O(n) sequential time and zero PRAM charge. It is the compression
// analog of the §3.4 matcher checker: the parallel compressor is trusted
// only after its output is re-derived from first principles.
//
// Soundness: a nil return implies Decode(c) == text. By induction over
// tokens — a literal appends its byte, checked against text[pos]; a copy
// with src < pos appends out[src+k] byte by byte, and out[0:pos] == text
// [0:pos] by hypothesis, so the appended bytes equal text[src+k], checked
// equal to text[pos+k]. Self-referencing copies (src+Len > pos) are covered
// because the check compares within text, where the induction has already
// pinned every byte the copy can reach.
func VerifyParse(c Compressed, text []byte) error {
	if c.N != len(text) {
		return fmt.Errorf("%w: header length %d, text length %d", ErrVerifyFailed, c.N, len(text))
	}
	pos := 0
	for k, tok := range c.Tokens {
		if tok.IsLiteral() {
			if pos >= len(text) {
				return fmt.Errorf("%w: token %d overruns text at %d", ErrVerifyFailed, k, pos)
			}
			if tok.Lit != text[pos] {
				return fmt.Errorf("%w: token %d literal %q, text has %q at %d", ErrVerifyFailed, k, tok.Lit, text[pos], pos)
			}
			pos++
			continue
		}
		if tok.Len < 0 || tok.Src < 0 || int(tok.Src) >= pos {
			return fmt.Errorf("%w: token %d copy (src=%d len=%d) invalid at %d", ErrVerifyFailed, k, tok.Src, tok.Len, pos)
		}
		if pos+int(tok.Len) > len(text) {
			return fmt.Errorf("%w: token %d overruns text at %d", ErrVerifyFailed, k, pos)
		}
		for off := 0; off < int(tok.Len); off++ {
			if text[int(tok.Src)+off] != text[pos+off] {
				return fmt.Errorf("%w: token %d copies %q from %d, text has %q at %d",
					ErrVerifyFailed, k, text[int(tok.Src)+off], int(tok.Src)+off, text[pos+off], pos+off)
			}
		}
		pos += int(tok.Len)
	}
	if pos != len(text) {
		return fmt.Errorf("%w: tokens cover %d of %d bytes", ErrVerifyFailed, pos, len(text))
	}
	return nil
}

// CompressVerified is Compress followed by VerifyParse, with retry — the
// Las Vegas wrapper of the compression pipeline. Compress itself is
// deterministic (suffix-tree based, no fingerprints), so unlike the
// matcher's reseed loop the retry does not re-randomize; it defends against
// transient corruption of the token stream between parse and use, which is
// exactly what the chaos layer injects ("lz.corrupt"). It returns the
// verified parse and the number of attempts consumed (1 on the fault-free
// path).
//
// Verification is charged nothing on the Work/Depth ledger: it is a host-
// side audit, not part of the simulated PRAM algorithm, so the fault-free
// ledger is bit-identical to plain Compress.
func CompressVerified(m *pram.Machine, text []byte) (Compressed, int, error) {
	var lastErr error
	for attempt := 1; attempt <= compressAttempts; attempt++ {
		c := Compress(m, text)
		if i, mask, ok := chaos.CorruptByte(chaos.LZCorrupt, len(c.Tokens)); ok {
			// Damage one token's length (chaos builds only). Any nonzero XOR
			// changes the token-length sum, so the verifier always detects it
			// — the injected fault tests the recovery loop, not the verifier's
			// blind spots.
			c.Tokens[i].Len ^= int32(mask)
		}
		if err := VerifyParse(c, text); err != nil {
			lastErr = err
			continue
		}
		return c, attempt, nil
	}
	return Compressed{}, compressAttempts, fmt.Errorf("lz: %d attempts exhausted: %w", compressAttempts, lastErr)
}
