package lz

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrNotLZ1R1 reports input that does not begin with the LZ1R1 container
// magic. Callers that accept arbitrary files (cmd/dictmatch -compressed, the
// compressed-matching endpoint) test for it with errors.Is to distinguish
// "wrong format" from mid-stream corruption.
var ErrNotLZ1R1 = errors.New("lz: not an LZ1R1 stream")

// Decoder reads an LZ1R1 container incrementally: header first, then one
// token per Next call. Unlike DecodeStream it never materializes the token
// slice, so a consumer (internal/stream's windowed uncompressor) can hold
// O(1) tokens while emitting output — the container side of the
// bounded-memory pipeline.
type Decoder struct {
	br        *bufio.Reader
	n         int    // header N (original length)
	count     uint64 // header token count
	remaining uint64 // tokens not yet returned
	err       error  // sticky
}

// NewDecoder validates the magic and header of the container on r and
// returns a token decoder. Reads are buffered; r is consumed exactly up to
// the end of the container (plus buffering).
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != Magic {
		return nil, ErrNotLZ1R1
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("lz: truncated stream")
	}
	if n > math.MaxInt64/2 {
		return nil, fmt.Errorf("lz: implausible original length %d", n)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("lz: truncated stream")
	}
	// Each token is at least one byte on the wire; an absurd count is
	// rejected up front rather than discovered token by token.
	if count > n+1 && count > 1<<40 {
		return nil, fmt.Errorf("lz: implausible token count %d", count)
	}
	return &Decoder{br: br, n: int(n), count: count, remaining: count}, nil
}

// N returns the header's original (decompressed) length.
func (d *Decoder) N() int { return d.n }

// TokenCount returns the header's token count.
func (d *Decoder) TokenCount() uint64 { return d.count }

// NextToken yields the next decoded token without expanding it into text —
// the iteration API compressed-domain consumers (internal/czsearch) build
// on, so the container is parsed exactly once. It is Next under the name
// that says what it returns; both share the sticky-error state.
func (d *Decoder) NextToken() (Token, error) { return d.Next() }

// Next returns the next token, or io.EOF after the last one. After EOF the
// container must end; trailing bytes are reported as an error instead of
// EOF. Errors are sticky.
func (d *Decoder) Next() (Token, error) {
	if d.err != nil {
		return Token{}, d.err
	}
	if d.remaining == 0 {
		if _, err := d.br.ReadByte(); err != io.EOF {
			d.err = fmt.Errorf("lz: trailing bytes after %d tokens", d.count)
			return Token{}, d.err
		}
		d.err = io.EOF
		return Token{}, io.EOF
	}
	d.remaining--
	kind, err := d.br.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("lz: truncated stream")
		return Token{}, d.err
	}
	switch kind {
	case 0:
		lit, err := d.br.ReadByte()
		if err != nil {
			d.err = fmt.Errorf("lz: truncated literal")
			return Token{}, d.err
		}
		return Token{Len: 0, Lit: lit}, nil
	case 1:
		src, err := binary.ReadUvarint(d.br)
		if err != nil {
			d.err = fmt.Errorf("lz: truncated stream")
			return Token{}, d.err
		}
		l, err := binary.ReadUvarint(d.br)
		if err != nil {
			d.err = fmt.Errorf("lz: truncated stream")
			return Token{}, d.err
		}
		if l == 0 {
			d.err = fmt.Errorf("lz: zero-length copy token")
			return Token{}, d.err
		}
		if src > math.MaxInt32 || l > math.MaxInt32 {
			d.err = fmt.Errorf("lz: token (src=%d, len=%d) overflows", src, l)
			return Token{}, d.err
		}
		return Token{Src: int32(src), Len: int32(l)}, nil
	default:
		d.err = fmt.Errorf("lz: bad token kind %d", kind)
		return Token{}, d.err
	}
}
