package lz

// LZ2 (LZ78) support. The paper (§1.2) contrasts LZ1 with LZ2: LZ1
// compresses better in practice, LZ2 is popular because its sequential
// implementation is simple — and, curiously, LZ2 is P-complete [1] while
// LZ1 admits the paper's optimal RNC algorithm. We implement the sequential
// LZ2 parser as the comparison baseline for experiment E12 (phrase counts).

// LZ2Token is one LZ78 phrase: the longest previously-seen phrase (by
// index, 0 = empty) extended with one literal byte.
type LZ2Token struct {
	Prev int32 // index into the phrase list; 0 is the empty phrase
	Lit  byte
}

// LZ2Compressed is an LZ78 parse. The final phrase may be a bare prefix
// (Partial true: no literal extension).
type LZ2Compressed struct {
	N       int
	Tokens  []LZ2Token
	Partial bool
}

type lz2node struct {
	next map[byte]int32
}

// CompressLZ2 computes the LZ78 parse sequentially (a trie walk; this is
// the algorithm whose inherently sequential nature [1] the paper
// contrasts with LZ1's parallelizability).
func CompressLZ2(text []byte) LZ2Compressed {
	trie := []lz2node{{next: map[byte]int32{}}}
	out := LZ2Compressed{N: len(text)}
	cur := int32(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		if nxt, ok := trie[cur].next[c]; ok {
			cur = nxt
			if i == len(text)-1 {
				out.Tokens = append(out.Tokens, LZ2Token{Prev: cur})
				out.Partial = true
			}
			continue
		}
		id := int32(len(trie))
		trie[cur].next[c] = id
		trie = append(trie, lz2node{next: map[byte]int32{}})
		out.Tokens = append(out.Tokens, LZ2Token{Prev: cur, Lit: c})
		cur = 0
	}
	return out
}

// DecodeLZ2 reconstructs the text from an LZ78 parse.
func DecodeLZ2(c LZ2Compressed) []byte {
	// phrase strings by index; rebuilt incrementally.
	phrases := [][]byte{nil}
	out := make([]byte, 0, c.N)
	for k, t := range c.Tokens {
		p := phrases[t.Prev]
		if c.Partial && k == len(c.Tokens)-1 {
			out = append(out, p...)
			break
		}
		ph := make([]byte, 0, len(p)+1)
		ph = append(append(ph, p...), t.Lit)
		phrases = append(phrases, ph)
		out = append(out, ph...)
	}
	return out
}
