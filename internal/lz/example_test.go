package lz_test

import (
	"fmt"

	"repro/internal/lz"
	"repro/internal/pram"
)

// Compress a string and read its phrase structure.
func ExampleCompress() {
	m := pram.New(0)
	c := lz.Compress(m, []byte("abababab"))
	for _, t := range c.Tokens {
		if t.IsLiteral() {
			fmt.Printf("lit %c\n", t.Lit)
		} else {
			fmt.Printf("copy %d bytes from %d\n", t.Len, t.Src)
		}
	}
	// Output:
	// lit a
	// lit b
	// copy 6 bytes from 0
}

// Round-trip through the parallel uncompressor.
func ExampleUncompress() {
	m := pram.New(0)
	c := lz.Compress(m, []byte("la la la land"))
	text, err := lz.Uncompress(m, c, lz.ByPointerJumping)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(text))
	// Output: la la la land
}

// The LZ77 triple variant of the paper's footnote 3.
func ExampleCompressTriples() {
	m := pram.New(0)
	c := lz.CompressTriples(m, []byte("aaaa"))
	for _, t := range c.Triples {
		if t.Last {
			fmt.Printf("copy %d from %d\n", t.Len, t.Src)
		} else {
			fmt.Printf("copy %d from %d, then %c\n", t.Len, t.Src, t.Lit)
		}
	}
	// Output:
	// copy 0 from 0, then a
	// copy 3 from 0
}
