package lz

import (
	"bytes"
	"testing"

	"repro/internal/pram"
)

// FuzzRoundTrip: compress/uncompress must reproduce any byte string, in
// all three variants.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("abracadabra abracadabra"))
	f.Add([]byte("aaaaaaaaaaaaaaaa"))
	f.Add([]byte{0, 255, 0, 255, 1})
	f.Add([]byte("x"))
	m := pram.NewSequential()
	f.Fuzz(func(t *testing.T, text []byte) {
		if len(text) > 1<<12 {
			text = text[:1<<12]
		}
		c := Compress(m, text)
		got, err := Uncompress(m, c, ByPointerJumping)
		if err != nil || !bytes.Equal(got, text) {
			t.Fatalf("token roundtrip: %v", err)
		}
		tri := CompressTriples(m, text)
		got2, err := DecodeTriples(tri)
		if err != nil || !bytes.Equal(got2, text) {
			t.Fatalf("triple roundtrip: %v", err)
		}
		if got3 := DecodeLZ2(CompressLZ2(text)); !bytes.Equal(got3, text) {
			t.Fatal("lz2 roundtrip")
		}
	})
}

// FuzzDecodeStream: arbitrary bytes must never panic the container parser,
// and valid streams must survive re-encoding.
func FuzzDecodeStream(f *testing.F) {
	m := pram.NewSequential()
	c := Compress(m, []byte("abcabcabc"))
	var buf bytes.Buffer
	if err := EncodeStream(&buf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeStream(data)
		if err != nil {
			return
		}
		// A structurally valid stream must re-encode to an equivalent one.
		var out bytes.Buffer
		if err := EncodeStream(&out, got); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		again, err := DecodeStream(out.Bytes())
		if err != nil || again.N != got.N || len(again.Tokens) != len(got.Tokens) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
	})
}
