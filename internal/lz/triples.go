package lz

// The paper's footnote 3: "There are several variants on how new
// characters are handled, but they are easily convertible, and the
// algorithms in this section serve to compress and uncompress according to
// any of the standard LZ1 variants." This file implements the classic
// LZ77 triple variant — every phrase is (source, copy length, next
// literal) — on the same machinery: the match statistics M[i] define a
// parse tree with parent(i) = i + len(M[i]) + 1, whose 0→n path is the
// parse, extracted in parallel exactly as in §4.1.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/pram"
)

// Triple is one LZ77 phrase: copy Len bytes from Src, then append Lit.
// The final phrase may have no trailing literal (Last true) when the copy
// reaches the end of the text exactly.
type Triple struct {
	Src  int32
	Len  int32
	Lit  byte
	Last bool
}

// TripleCompressed is an LZ77-triple parse.
type TripleCompressed struct {
	N       int
	Triples []Triple
}

// CompressTriples computes the triple parse in the same bounds as Compress
// (Theorem 4.2 plus the documented substrate factors).
func CompressTriples(m *pram.Machine, text []byte) TripleCompressed {
	n := len(text)
	if n == 0 {
		return TripleCompressed{}
	}
	match := matchStatistics(m, text)
	next := make([]int, n+1)
	m.ParallelFor(n+1, func(i int) {
		if i == n {
			next[i] = i
			return
		}
		step := int(match[i].Len) + 1 // copy plus literal; capped at the end
		if i+step > n {
			step = n - i
		}
		next[i] = i + step
	})
	path := par.ParallelPathToRoot(m, next, 0)
	triples := make([]Triple, len(path)-1)
	m.ParallelFor(len(triples), func(k int) {
		i := path[k]
		ml := int(match[i].Len)
		if ml > n-i {
			ml = n - i
		}
		t := Triple{Len: int32(ml)}
		if ml > 0 {
			t.Src = match[i].Src
		}
		if i+ml < n {
			t.Lit = text[i+ml]
		} else {
			t.Last = true // copy reaches the text end; no literal
		}
		triples[k] = t
	})
	return TripleCompressed{N: n, Triples: triples}
}

// DecodeTriples reconstructs the text sequentially.
func DecodeTriples(c TripleCompressed) ([]byte, error) {
	out := make([]byte, 0, c.N)
	for k, t := range c.Triples {
		if t.Len > 0 {
			if t.Src < 0 || int(t.Src) >= len(out) {
				return nil, fmt.Errorf("lz: triple %d source out of range", k)
			}
			for i := int32(0); i < t.Len; i++ {
				out = append(out, out[int(t.Src)+int(i)])
			}
		}
		if !t.Last {
			out = append(out, t.Lit)
		}
	}
	if len(out) != c.N {
		return nil, fmt.Errorf("lz: decoded %d bytes, header says %d", len(out), c.N)
	}
	return out, nil
}

// UncompressTriples reconstructs the text in parallel by converting the
// triple stream to the token form and reusing the §4.2 copy-forest
// resolution — the paper's "easily convertible" remark made literal.
func UncompressTriples(m *pram.Machine, c TripleCompressed, mode UncompressMode) ([]byte, error) {
	tokens := make([]Token, 0, 2*len(c.Triples))
	for _, t := range c.Triples {
		if t.Len > 0 {
			tokens = append(tokens, Token{Src: t.Src, Len: t.Len})
		}
		if !t.Last {
			tokens = append(tokens, Token{Len: 0, Lit: t.Lit})
		}
	}
	m.Account(int64(len(c.Triples)), 1)
	return Uncompress(m, Compressed{N: c.N, Tokens: tokens}, mode)
}
