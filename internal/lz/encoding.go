package lz

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Container format for LZ1 parses (used by cmd/lzpack and the examples):
//
//	magic "LZ1R1\n"
//	uvarint N (original length)
//	uvarint number of tokens
//	per token: 0x00 <literal byte>  |  0x01 uvarint(src) uvarint(len)
//
// The format exists so round trips are real file round trips; it makes no
// claim of rivaling entropy-coded containers.

// Magic identifies the stream format.
const Magic = "LZ1R1\n"

// EncodeStream writes c to w in the container format.
func EncodeStream(w io.Writer, c Compressed) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(c.N)); err != nil {
		return err
	}
	if err := put(uint64(len(c.Tokens))); err != nil {
		return err
	}
	for _, t := range c.Tokens {
		if t.IsLiteral() {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			if err := bw.WriteByte(t.Lit); err != nil {
				return err
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		if err := put(uint64(t.Src)); err != nil {
			return err
		}
		if err := put(uint64(t.Len)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeStream parses a container produced by EncodeStream. It validates
// structure only; semantic validation (source ranges) happens in
// Uncompress/Decode.
func DecodeStream(data []byte) (Compressed, error) {
	var c Compressed
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return c, ErrNotLZ1R1
	}
	data = data[len(Magic):]
	get := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("lz: truncated stream")
		}
		data = data[n:]
		return v, nil
	}
	n, err := get()
	if err != nil {
		return c, err
	}
	count, err := get()
	if err != nil {
		return c, err
	}
	if count > uint64(len(data)) {
		return c, fmt.Errorf("lz: token count %d exceeds remaining bytes", count)
	}
	c.N = int(n)
	c.Tokens = make([]Token, 0, count)
	for k := uint64(0); k < count; k++ {
		if len(data) == 0 {
			return c, fmt.Errorf("lz: truncated stream")
		}
		kind := data[0]
		data = data[1:]
		switch kind {
		case 0:
			if len(data) == 0 {
				return c, fmt.Errorf("lz: truncated literal")
			}
			c.Tokens = append(c.Tokens, Token{Len: 0, Lit: data[0]})
			data = data[1:]
		case 1:
			src, err := get()
			if err != nil {
				return c, err
			}
			l, err := get()
			if err != nil {
				return c, err
			}
			if l == 0 {
				return c, fmt.Errorf("lz: zero-length copy token")
			}
			c.Tokens = append(c.Tokens, Token{Src: int32(src), Len: int32(l)})
		default:
			return c, fmt.Errorf("lz: bad token kind %d", kind)
		}
	}
	if len(data) != 0 {
		return c, fmt.Errorf("lz: %d trailing bytes", len(data))
	}
	return c, nil
}
