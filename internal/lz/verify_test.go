package lz

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pram"
	"repro/internal/textgen"
)

// TestVerifyParseAcceptsCompressOutput: the verifier must accept every
// parse the compressor produces, across text families.
func TestVerifyParseAcceptsCompressOutput(t *testing.T) {
	gen := textgen.New(41)
	m := pram.New(2)
	defer m.Close()
	for _, text := range [][]byte{
		nil,
		[]byte("a"),
		[]byte("aaaaaaaaaaaaaaaa"),
		gen.Uniform(500, 4),
		gen.Repetitive(1000, 50, 0.1),
		textgen.Fibonacci(300),
		textgen.ThueMorse(256),
	} {
		c := Compress(m, text)
		if err := VerifyParse(c, text); err != nil {
			t.Errorf("verifier rejected a correct parse of %d bytes: %v", len(text), err)
		}
	}
}

// TestVerifyParseRejectsDamage: every way a token can be wrong must be
// detected.
func TestVerifyParseRejectsDamage(t *testing.T) {
	text := textgen.New(42).Repetitive(600, 30, 0.15)
	c := Compress(pram.NewSequential(), text)
	if len(c.Tokens) < 3 {
		t.Fatalf("test text too compressible: %d tokens", len(c.Tokens))
	}
	damage := []struct {
		name string
		mut  func(c *Compressed)
	}{
		{"wrong literal", func(c *Compressed) {
			for k := range c.Tokens {
				if c.Tokens[k].IsLiteral() {
					c.Tokens[k].Lit ^= 0xFF
					return
				}
			}
		}},
		{"short copy", func(c *Compressed) {
			for k := range c.Tokens {
				if c.Tokens[k].Len > 1 {
					c.Tokens[k].Len--
					return
				}
			}
		}},
		{"long copy", func(c *Compressed) {
			for k := range c.Tokens {
				if !c.Tokens[k].IsLiteral() {
					c.Tokens[k].Len++
					return
				}
			}
		}},
		{"future source", func(c *Compressed) {
			c.Tokens[0] = Token{Src: int32(c.N), Len: 2}
		}},
		{"negative source", func(c *Compressed) {
			for k := range c.Tokens {
				if !c.Tokens[k].IsLiteral() {
					c.Tokens[k].Src = -2
					return
				}
			}
		}},
		{"dropped token", func(c *Compressed) {
			c.Tokens = c.Tokens[:len(c.Tokens)-1]
		}},
		{"wrong header length", func(c *Compressed) {
			c.N++
		}},
	}
	for _, d := range damage {
		bad := Compressed{N: c.N, Tokens: append([]Token(nil), c.Tokens...)}
		d.mut(&bad)
		if err := VerifyParse(bad, text); !errors.Is(err, ErrVerifyFailed) {
			t.Errorf("%s: verifier returned %v, want ErrVerifyFailed", d.name, err)
		}
	}
}

// TestCompressVerifiedFaultFree: without faults CompressVerified succeeds on
// the first attempt and its ledger is bit-identical to plain Compress —
// verification is a host-side audit, not charged PRAM work.
func TestCompressVerifiedFaultFree(t *testing.T) {
	text := textgen.New(43).Repetitive(2000, 80, 0.1)

	ref := pram.New(4)
	defer ref.Close()
	want := Compress(ref, text)
	refWork, refDepth := ref.Counters()

	m := pram.New(4)
	defer m.Close()
	got, attempts, err := CompressVerified(m, text)
	if err != nil {
		t.Fatalf("CompressVerified: %v", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
	if gw, gd := m.Counters(); gw != refWork || gd != refDepth {
		t.Errorf("ledger = (%d, %d), plain Compress = (%d, %d); verification must charge nothing",
			gw, gd, refWork, refDepth)
	}
	if len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("parse differs from plain Compress: %d vs %d tokens", len(got.Tokens), len(want.Tokens))
	}
	dec, err := Decode(got)
	if err != nil || !bytes.Equal(dec, text) {
		t.Fatalf("round trip failed: %v", err)
	}
}
