// Package resilience is the failure-domain-aware outbound RPC layer for
// cluster traffic (DESIGN.md §16).
//
// Every inter-peer call — proxying and hedging (internal/server/cluster.go,
// internal/cluster/hedge.go), snapshot pulls (internal/persist/fetch.go),
// and /readyz health probes (internal/cluster/health.go) — is routed
// through one Pool, an http.RoundTripper that layers, in order:
//
//   - deadline propagation: the remaining request budget travels as an
//     X-Deadline-Ms header; a hop with less than the configured floor is
//     refused locally (a typed DeadlineError) instead of doing doomed work;
//   - per-peer circuit breakers: closed → open on consecutive failures or
//     an error-rate window, half-open trials after a cooldown, probe-gated
//     recovery (the /readyz prober is never blocked, so a healed peer is
//     always rediscovered);
//   - chaos-injectable wire faults: a chaos.Plan over the rpc.* point
//     family (refusal, black-hole, delay, mid-body reset), installable at
//     runtime so partitions are reproducible in any build;
//   - outcome accounting: successes reset breakers at header receipt,
//     transport failures count against the destination peer, and
//     context.Canceled counts as nothing at all — a hedged loser canceled
//     mid-body is the caller's choice, not the peer's failure.
//
// The Pool also owns the cluster-wide retry Budget (a token bucket earning
// ~RetryBudgetPct tokens per 100 outbound requests) so idempotent retries
// cannot amplify a partition into a retry storm.
package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// DeadlineHeader carries the remaining request budget, in integer
// milliseconds, from hop to hop. Each receiver re-derives its own context
// deadline from it; each sender re-stamps it from the live context, so the
// time a hop spent is subtracted implicitly.
const DeadlineHeader = "X-Deadline-Ms"

// Peer is one outbound destination, identified by the cluster peer name
// used in metrics and breaker state.
type Peer struct {
	Name string
	URL  string
}

// Config tunes the pool. The zero value disables every policy (no
// breakers, no retries, no hop floor) and the pool degrades to a plain
// transport, which is what single-node and pre-existing cluster tests get.
type Config struct {
	// BreakerFailures is the consecutive-failure count that opens a
	// peer's breaker. 0 disables breakers entirely.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open trial. Defaults to 1s when breakers are enabled.
	BreakerCooldown time.Duration
	// RetryBudgetPct is the number of retry tokens earned per 100
	// outbound requests. 0 disables budget-gated retries.
	RetryBudgetPct int
	// HopFloor is the minimum remaining deadline worth sending a request
	// with; below it the send is refused locally. 0 disables the floor.
	HopFloor time.Duration
	// Base is the underlying transport; nil means a private clone of
	// http.DefaultTransport.
	Base http.RoundTripper
}

// Pool is the shared outbound transport for a node's peer set. It
// implements http.RoundTripper; requests to hosts that are not registered
// peers pass through to the base transport untouched.
type Pool struct {
	cfg    Config
	base   http.RoundTripper
	budget *Budget

	byName map[string]*peerState
	byHost map[string]*peerState

	plan atomic.Pointer[faultPlan]

	slowStrikes   atomic.Int64
	fastFails     atomic.Int64
	deadlineSkips atomic.Int64
	injected      atomic.Int64
}

type peerState struct {
	name    string
	breaker *Breaker
}

// NewPool builds a pool over the given peer set (normally everyone but
// self). Peer URLs must be parseable; unparseable ones are skipped and
// their traffic falls through to the base transport unobserved.
func NewPool(cfg Config, peers []Peer) *Pool {
	if cfg.BreakerFailures > 0 && cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	base := cfg.Base
	if base == nil {
		if t, ok := http.DefaultTransport.(*http.Transport); ok {
			base = t.Clone()
		} else {
			base = http.DefaultTransport
		}
	}
	p := &Pool{
		cfg:    cfg,
		base:   base,
		budget: NewBudget(cfg.RetryBudgetPct),
		byName: make(map[string]*peerState, len(peers)),
		byHost: make(map[string]*peerState, len(peers)),
	}
	for _, pe := range peers {
		ps := &peerState{name: pe.Name, breaker: NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)}
		p.byName[pe.Name] = ps
		if u, err := url.Parse(pe.URL); err == nil && u.Host != "" {
			p.byHost[u.Host] = ps
		}
	}
	return p
}

// Client wraps the pool in an http.Client with no client-level timeout
// (callers bound requests with contexts).
func (p *Pool) Client() *http.Client { return &http.Client{Transport: p} }

// RecordSlow charges a failure strike against a peer that was launched
// and produced neither headers nor an error by the time the hedge timer
// fired — the affirmative silence signal that identifies black-holed
// peers. A peer that later answers (and merely loses the hedge race)
// resets its breaker at header receipt, so slow strikes only accumulate
// against peers that stay silent.
func (p *Pool) RecordSlow(name string) {
	if ps := p.byName[name]; ps != nil {
		p.slowStrikes.Add(1)
		ps.breaker.RecordFailure()
	}
}

// PeerOpen reports whether the peer's breaker is currently open, for
// routing layers that want to skip known-bad destinations up front.
func (p *Pool) PeerOpen(name string) bool {
	ps := p.byName[name]
	return ps != nil && ps.breaker.State() == BreakerOpen
}

// RetryAllowed spends one retry token if the budget has any.
func (p *Pool) RetryAllowed() bool { return p.budget.Allow() }

// BreakerOpenError is returned without touching the network when the
// destination peer's breaker is open.
type BreakerOpenError struct{ Peer string }

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: breaker open for peer %s", e.Peer)
}

// DeadlineError is returned without touching the network when the
// remaining context deadline is below the configured hop floor.
type DeadlineError struct {
	Peer      string
	Remaining time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("resilience: %s of deadline left for peer %s, below hop floor", e.Remaining, e.Peer)
}

// IsLocal reports whether err was manufactured by this layer without
// touching the network — breaker fast-fails and hop-floor refusals. Local
// errors say nothing about the peer's actual health, so callers must not
// mark the peer down for them.
func IsLocal(err error) bool {
	var b *BreakerOpenError
	var d *DeadlineError
	return errors.As(err, &b) || errors.As(err, &d)
}

// PeerSnapshot is one peer's breaker accounting for /metrics.
type PeerSnapshot struct {
	State     string `json:"state"`
	Failures  int64  `json:"failures"`
	Successes int64  `json:"successes"`
	Opens     int64  `json:"opens"`
	HalfOpens int64  `json:"halfOpens"`
	Closes    int64  `json:"closes"`
}

// Snapshot is the pool's /metrics section.
type Snapshot struct {
	Peers            map[string]PeerSnapshot `json:"peers,omitempty"`
	RetriesSpent     int64                   `json:"retriesSpent"`
	RetriesDenied    int64                   `json:"retriesDenied"`
	SlowStrikes      int64                   `json:"slowStrikes"`
	BreakerFastFails int64                   `json:"breakerFastFails"`
	DeadlineSkips    int64                   `json:"deadlineSkips"`
	InjectedFaults   int64                   `json:"injectedFaults"`
	FaultPlan        string                  `json:"faultPlan,omitempty"`
}

// Snapshot returns a point-in-time copy of the pool's counters.
func (p *Pool) Snapshot() Snapshot {
	s := Snapshot{
		Peers:            make(map[string]PeerSnapshot, len(p.byName)),
		RetriesSpent:     p.budget.spent.Load(),
		RetriesDenied:    p.budget.denied.Load(),
		SlowStrikes:      p.slowStrikes.Load(),
		BreakerFastFails: p.fastFails.Load(),
		DeadlineSkips:    p.deadlineSkips.Load(),
		InjectedFaults:   p.injected.Load(),
		FaultPlan:        p.FaultPlan(),
	}
	for name, ps := range p.byName {
		s.Peers[name] = ps.breaker.Snapshot()
	}
	return s
}
