package resilience

import (
	"testing"
	"time"
)

func TestBudgetSeedAndExhaustion(t *testing.T) {
	b := NewBudget(10)
	granted := 0
	for i := 0; i < 100; i++ {
		if b.Allow() {
			granted++
		}
	}
	if granted != budgetSeed/milli {
		t.Fatalf("cold budget granted %d retries, want the %d seed tokens", granted, budgetSeed/milli)
	}
	if b.denied.Load() != int64(100-granted) {
		t.Fatalf("denied = %d, want %d", b.denied.Load(), 100-granted)
	}
	// 10 observed requests at 10% earn one more token.
	for i := 0; i < 10; i++ {
		b.Observe()
	}
	if !b.Allow() {
		t.Fatal("earned token not spendable")
	}
	if b.Allow() {
		t.Fatal("budget granted more than earned")
	}
}

func TestBudgetCap(t *testing.T) {
	b := NewBudget(10)
	for i := 0; i < 100000; i++ {
		b.Observe()
	}
	granted := 0
	for b.Allow() {
		granted++
	}
	if granted != budgetCap/milli {
		t.Fatalf("calm period pooled %d tokens, want cap %d", granted, budgetCap/milli)
	}
}

func TestBudgetDisabled(t *testing.T) {
	b := NewBudget(0)
	b.Observe()
	if b.Allow() {
		t.Fatal("disabled budget granted a retry")
	}
}

func TestBackoff(t *testing.T) {
	base, max := 25*time.Millisecond, time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		d := Backoff(attempt, base, max, 42)
		if d2 := Backoff(attempt, base, max, 42); d2 != d {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, d, d2)
		}
		// Doubling with ±25% jitter, capped.
		nominal := base
		for i := 1; i < attempt && nominal < max; i++ {
			nominal *= 2
		}
		if nominal > max {
			nominal = max
		}
		if d < nominal-nominal/4 || d > nominal+nominal/4 {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", attempt, d, nominal-nominal/4, nominal+nominal/4)
		}
	}
	if a, b := Backoff(3, base, max, 1), Backoff(3, base, max, 2); a == b {
		t.Fatalf("different seeds produced identical jitter %v", a)
	}
}
