package resilience

import (
	"testing"
	"time"
)

// fakeClock lets breaker tests step time explicitly.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(maxFailures int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(maxFailures, cooldown)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerConsecutiveTrip(t *testing.T) {
	b, c := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.RecordFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// Cooldown elapses: one half-open trial is admitted, concurrent
	// requests are not.
	c.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open trial after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after trial grant = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while trial in flight")
	}
	// Trial succeeds: closed, counters reflect the full lifecycle.
	b.RecordSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after trial success = %v, want closed", b.State())
	}
	s := b.Snapshot()
	if s.Opens != 1 || s.HalfOpens != 1 || s.Closes != 1 {
		t.Fatalf("lifecycle counters = opens %d halfOpens %d closes %d, want 1/1/1", s.Opens, s.HalfOpens, s.Closes)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, c := newTestBreaker(2, time.Second)
	b.RecordFailure()
	b.RecordFailure()
	c.advance(time.Second)
	if !b.Allow() {
		t.Fatal("trial refused")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", b.State())
	}
	if got := b.Snapshot().Opens; got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	// The hedging pattern: strike, then success at header receipt. The
	// consecutive counter must never accumulate across such pairs.
	b, _ := newTestBreaker(2, time.Second)
	for i := 0; i < 20; i++ {
		b.RecordFailure()
		b.RecordSuccess()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after alternating outcomes, want closed", b.State())
	}
}

func TestBreakerWindowTrip(t *testing.T) {
	// Failures interleaved with successes below the consecutive
	// threshold still trip once the error-rate window fills: pattern
	// fail,fail,fail,success repeated is a 75% failure rate while
	// consecutive never reaches 5.
	b, _ := newTestBreaker(5, time.Second)
	for i := 0; b.State() == BreakerClosed && i < 100; i++ {
		b.RecordFailure()
		b.RecordFailure()
		b.RecordFailure()
		b.RecordSuccess()
	}
	if b.State() != BreakerOpen {
		t.Fatal("error-rate window never tripped the breaker")
	}
}

func TestBreakerProbeArm(t *testing.T) {
	b, c := newTestBreaker(1, time.Second)
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	// Probe before cooldown: no state change, outcome still counted.
	b.ProbeArm()
	if b.State() != BreakerOpen {
		t.Fatalf("probe before cooldown moved state to %v", b.State())
	}
	b.RecordFailure()
	// Probe after cooldown becomes the trial; success closes.
	c.advance(time.Second)
	b.ProbeArm()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("probe after cooldown left state %v, want half-open", b.State())
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

func TestBreakerAbandonedTrialRecovers(t *testing.T) {
	b, c := newTestBreaker(1, time.Second)
	b.RecordFailure()
	c.advance(time.Second)
	if !b.Allow() {
		t.Fatal("trial refused")
	}
	// The trial is abandoned (canceled: no outcome recorded). After a
	// cooldown of silence a new trial must be admitted, or the breaker
	// would stay half-open forever.
	if b.Allow() {
		t.Fatal("second trial admitted immediately")
	}
	c.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker deadlocked in half-open after abandoned trial")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := newTestBreaker(0, 0)
	for i := 0; i < 50; i++ {
		b.RecordFailure()
	}
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("disabled breaker tripped")
	}
	if got := b.Snapshot().Failures; got != 50 {
		t.Fatalf("disabled breaker lost counters: failures = %d", got)
	}
}
