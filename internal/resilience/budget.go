package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Token accounting is integer, in millitokens, so fractional earnings
// (pct% of each request) accumulate exactly: 10 requests at 10% are one
// whole token, never 0.9999….
const (
	milli = 1000
	// budgetCap bounds how many retry tokens can pool up during calm
	// periods, so a long quiet stretch cannot bankroll a burst of
	// retries at the start of a partition.
	budgetCap = 32 * milli
	// budgetSeed is the initial balance: cold-start snapshot pulls must
	// be retryable before any request traffic has earned tokens.
	budgetSeed = 8 * milli
)

// Budget is the cluster-wide retry token bucket: every observed outbound
// request earns pct/100 tokens, every retry spends one. When the bucket is
// empty retries are denied, bounding retry amplification to ~pct% of the
// request rate no matter how bad the network gets.
type Budget struct {
	earn int64 // millitokens earned per observed request; 0 = disabled

	mu     sync.Mutex
	tokens int64 // millitokens

	spent  atomic.Int64
	denied atomic.Int64
}

// NewBudget builds a budget earning pct tokens per 100 requests.
// pct <= 0 disables retries entirely (Allow always false).
func NewBudget(pct int) *Budget {
	b := &Budget{}
	if pct > 0 {
		b.earn = int64(pct) * milli / 100
		b.tokens = budgetSeed
	}
	return b
}

// Observe credits the budget for one outbound request.
func (b *Budget) Observe() {
	if b.earn == 0 {
		return
	}
	b.mu.Lock()
	if b.tokens += b.earn; b.tokens > budgetCap {
		b.tokens = budgetCap
	}
	b.mu.Unlock()
}

// Allow spends one token if available.
func (b *Budget) Allow() bool {
	if b.earn == 0 {
		return false
	}
	b.mu.Lock()
	ok := b.tokens >= milli
	if ok {
		b.tokens -= milli
	}
	b.mu.Unlock()
	if ok {
		b.spent.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Backoff returns the pause before retry attempt (1-based): base doubled
// per attempt, capped at max, with deterministic jitter of ±25% derived
// from seed so concurrent retriers neither stampede in lockstep nor make
// soak runs irreproducible.
func Backoff(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if span := uint64(d / 2); span > 0 {
		u := mix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
		d += time.Duration(u%span) - d/4
	}
	return d
}

// mix64 is the splitmix64 finalizer, the same mixing the chaos planner
// uses for deterministic per-ordinal decisions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
