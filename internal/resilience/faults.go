package resilience

import (
	"strings"
	"time"

	"repro/internal/chaos"
)

// faultPlan pairs a parsed chaos plan with the spec it came from, so
// /metrics and GET /v1/rpcfaults can echo the installed grammar.
type faultPlan struct {
	plan *chaos.Plan
	spec string
}

// SetFaults installs a wire-fault plan over the rpc.* point family, or
// clears it when spec is empty. Unlike the build-tag chaos hooks this is
// dynamic — soak harnesses flip partitions on and off mid-run — and
// deterministic under the given seed.
func (p *Pool) SetFaults(seed uint64, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		p.plan.Store(nil)
		return nil
	}
	pl, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		return err
	}
	p.plan.Store(&faultPlan{plan: pl, spec: spec})
	return nil
}

// FaultPlan returns the installed plan's spec, or "" when none.
func (p *Pool) FaultPlan() string {
	if fp := p.plan.Load(); fp != nil {
		return fp.spec
	}
	return ""
}

// FaultStats returns per-point fire counters of the installed plan.
func (p *Pool) FaultStats() []chaos.PointStats {
	if fp := p.plan.Load(); fp != nil {
		return fp.plan.Stats()
	}
	return nil
}

// decideFault consults the installed plan for a point, trying the
// peer-scoped variant ("rpc.refuse.n2") before the cluster-wide one.
func (p *Pool) decideFault(pt chaos.Point, peer string) (bool, time.Duration) {
	fp := p.plan.Load()
	if fp == nil {
		return false, 0
	}
	if fire, _, d := fp.plan.Decide(chaos.Point(string(pt) + "." + peer)); fire {
		return true, d
	}
	if fire, _, d := fp.plan.Decide(pt); fire {
		return true, d
	}
	return false, 0
}
