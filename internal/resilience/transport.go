package resilience

import (
	"context"
	"errors"
	"io"
	"strconv"
	"strings"
	"time"

	"net/http"

	"repro/internal/chaos"
)

// rpcDelayDefault is the injected latency when an rpc.delay rule carries
// no explicit delay.
const rpcDelayDefault = 5 * time.Millisecond

// RoundTrip implements http.RoundTripper. Requests to registered peers
// pass through deadline gating, the peer's breaker, the installed fault
// plan, and outcome accounting; everything else goes straight to the base
// transport.
func (p *Pool) RoundTrip(req *http.Request) (*http.Response, error) {
	ps := p.byHost[req.URL.Host]
	if ps == nil {
		return p.base.RoundTrip(req)
	}
	ctx := req.Context()
	isProbe := strings.HasSuffix(req.URL.Path, "/readyz")

	// Deadline propagation: stamp the live remaining budget (the header a
	// proxy copied in from its own inbound request is deleted upstream, so
	// the stamp here is always fresh) and refuse sends that cannot finish.
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if !isProbe && p.cfg.HopFloor > 0 && rem < p.cfg.HopFloor {
			p.deadlineSkips.Add(1)
			return nil, &DeadlineError{Peer: ps.name, Remaining: rem}
		}
		ms := rem.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req = req.Clone(ctx)
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}

	if isProbe {
		// Probes are never blocked — they are the recovery path — but an
		// open breaker past its cooldown promotes this probe to the
		// half-open trial, and the outcome below is recorded either way.
		ps.breaker.ProbeArm()
	} else {
		if !ps.breaker.Allow() {
			p.fastFails.Add(1)
			return nil, &BreakerOpenError{Peer: ps.name}
		}
		p.budget.Observe()
	}

	// Injected wire faults, evaluated in failure-mode order: refusal
	// (dead process) before black-hole (partitioned link) before delay
	// (congestion); mid-body reset arms the body wrapper below.
	if fire, _ := p.decideFault(chaos.RPCRefuse, ps.name); fire {
		p.injected.Add(1)
		err := error(&chaos.InjectedError{Point: chaos.RPCRefuse, Op: "dial"})
		ps.observe(err)
		return nil, err
	}
	if fire, _ := p.decideFault(chaos.RPCBlackhole, ps.name); fire {
		p.injected.Add(1)
		<-ctx.Done()
		err := errors.Join(&chaos.InjectedError{Point: chaos.RPCBlackhole, Op: "await"}, ctx.Err())
		ps.observe(err)
		return nil, err
	}
	if fire, d := p.decideFault(chaos.RPCDelay, ps.name); fire {
		p.injected.Add(1)
		if d <= 0 {
			d = rpcDelayDefault
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			ps.observe(ctx.Err())
			return nil, ctx.Err()
		}
	}
	resetAt := int64(-1)
	if fire, _ := p.decideFault(chaos.RPCReset, ps.name); fire {
		p.injected.Add(1)
		resetAt = 1 << 10
	}

	resp, err := p.base.RoundTrip(req)
	if err != nil {
		ps.observe(err)
		return nil, err
	}
	ps.breaker.RecordSuccess()
	if resp.Body != nil {
		resp.Body = &observedBody{rc: resp.Body, ps: ps, resetAt: resetAt}
	}
	return resp, nil
}

// observe charges a transport failure to the peer — unless the error is
// the caller's own cancellation, which says nothing about the peer (a
// hedged loser canceled mid-body must not trip breakers).
func (ps *peerState) observe(err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	ps.breaker.RecordFailure()
}

// observedBody watches the response body so mid-body failures (real or
// injected resets) count against the peer, while EOF and caller
// cancellation do not.
type observedBody struct {
	rc      io.ReadCloser
	ps      *peerState
	resetAt int64 // byte offset at which an injected reset fires; <0 = off
	n       int64
	failed  bool
}

func (b *observedBody) Read(out []byte) (int, error) {
	if b.resetAt >= 0 && b.n >= b.resetAt {
		b.fail()
		return 0, errors.Join(&chaos.InjectedError{Point: chaos.RPCReset, Op: "read"}, io.ErrUnexpectedEOF)
	}
	if b.resetAt >= 0 && int64(len(out)) > b.resetAt-b.n {
		out = out[:b.resetAt-b.n]
	}
	n, err := b.rc.Read(out)
	b.n += int64(n)
	if err != nil && err != io.EOF && !errors.Is(err, context.Canceled) {
		b.fail()
	}
	return n, err
}

func (b *observedBody) Close() error { return b.rc.Close() }

func (b *observedBody) fail() {
	if !b.failed {
		b.failed = true
		b.ps.breaker.RecordFailure()
	}
}
