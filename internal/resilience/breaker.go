package resilience

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

const (
	// breakerWindow is how many recent outcomes the error-rate trip
	// remembers; breakerWindowTrip failures among them open the breaker
	// even when successes keep interrupting the consecutive counter. The
	// threshold sits above 50% because the hedge-slowness pattern
	// (strike, then success at header receipt) legitimately alternates
	// 1:1 against a slow-but-alive peer and must never trip.
	breakerWindow     = 16
	breakerWindowTrip = 12
)

// Breaker is one peer's circuit breaker. Closed admits everything; Open
// admits nothing until the cooldown elapses; Half-Open admits a single
// trial whose outcome decides between re-opening and closing. A
// maxFailures of 0 disables the breaker (always closed, outcomes still
// counted).
type Breaker struct {
	maxFailures int
	cooldown    time.Duration
	now         func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	window      uint16
	windowN     int
	openedAt    time.Time
	trial       bool
	trialAt     time.Time

	failures  atomic.Int64
	successes atomic.Int64
	opens     atomic.Int64
	halfOpens atomic.Int64
	closes    atomic.Int64
}

// NewBreaker builds a breaker tripping after maxFailures consecutive
// failures (or breakerWindowTrip of the last breakerWindow outcomes),
// with half-open trials admitted every cooldown.
func NewBreaker(maxFailures int, cooldown time.Duration) *Breaker {
	return &Breaker{maxFailures: maxFailures, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a regular (non-probe) request may be sent now.
// The transition Open→Half-Open happens here when the cooldown has
// elapsed, and the granted request becomes the half-open trial.
func (b *Breaker) Allow() bool {
	if b.maxFailures <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.toHalfOpen()
			b.grantTrial()
			return true
		}
		return false
	default: // BreakerHalfOpen
		// One trial at a time; if a trial was abandoned without a
		// recorded outcome (e.g. canceled), admit a new one after a
		// cooldown's worth of silence.
		if !b.trial || b.now().Sub(b.trialAt) >= b.cooldown {
			b.grantTrial()
			return true
		}
		return false
	}
}

// ProbeArm prepares the breaker for a health probe. Probes are never
// blocked — the prober is the recovery path — but a probe sent after the
// cooldown is promoted to the half-open trial so its outcome gates
// recovery exactly like a trial request would.
func (b *Breaker) ProbeArm() {
	if b.maxFailures <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.toHalfOpen()
		b.grantTrial()
	}
}

// RecordSuccess notes a successful exchange (response headers received).
func (b *Breaker) RecordSuccess() {
	b.successes.Add(1)
	if b.maxFailures <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.push(false)
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.closes.Add(1)
		b.trial = false
		b.window, b.windowN = 0, 0
	}
	// A success while still Open (cooldown not yet elapsed) leaves the
	// breaker open: the cooldown enforces a minimum dwell and the next
	// armed probe or trial closes it.
}

// RecordFailure notes a failed exchange attributable to the peer.
func (b *Breaker) RecordFailure() {
	b.failures.Add(1)
	if b.maxFailures <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	b.push(true)
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		if b.consecutive >= b.maxFailures ||
			(b.windowN >= breakerWindow && bits.OnesCount16(b.window) >= breakerWindowTrip) {
			b.trip()
		}
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	if b.maxFailures <= 0 {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the breaker's counters for /metrics.
func (b *Breaker) Snapshot() PeerSnapshot {
	return PeerSnapshot{
		State:     b.State().String(),
		Failures:  b.failures.Load(),
		Successes: b.successes.Load(),
		Opens:     b.opens.Load(),
		HalfOpens: b.halfOpens.Load(),
		Closes:    b.closes.Load(),
	}
}

func (b *Breaker) toHalfOpen() {
	b.state = BreakerHalfOpen
	b.halfOpens.Add(1)
	b.trial = false
}

func (b *Breaker) grantTrial() {
	b.trial = true
	b.trialAt = b.now()
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens.Add(1)
	b.trial = false
	b.consecutive = 0
	b.window, b.windowN = 0, 0
}

func (b *Breaker) push(fail bool) {
	b.window <<= 1
	if fail {
		b.window |= 1
	}
	if b.windowN < breakerWindow {
		b.windowN++
	}
}
