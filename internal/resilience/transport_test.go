package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// newPeerServer returns an httptest server and its Peer row.
func newPeerServer(t *testing.T, name string, h http.HandlerFunc) (*httptest.Server, Peer) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, Peer{Name: name, URL: ts.URL}
}

func TestTransportDeadlineStampAndFloor(t *testing.T) {
	var gotMs int64
	ts, peer := newPeerServer(t, "n2", func(w http.ResponseWriter, r *http.Request) {
		gotMs, _ = strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64)
	})
	_ = ts
	p := NewPool(Config{HopFloor: 5 * time.Millisecond}, []Peer{peer})
	cl := p.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", peer.URL+"/x", nil)
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	resp.Body.Close()
	if gotMs <= 0 || gotMs > 2000 {
		t.Fatalf("stamped deadline %dms, want (0, 2000]", gotMs)
	}

	// Under the floor: refused locally with a typed, IsLocal error.
	tight, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	req2, _ := http.NewRequestWithContext(tight, "GET", peer.URL+"/x", nil)
	_, err = cl.Do(req2)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("under-floor send error = %v, want DeadlineError", err)
	}
	if !IsLocal(err) {
		t.Fatal("DeadlineError not classified as local")
	}
	if got := p.Snapshot().DeadlineSkips; got != 1 {
		t.Fatalf("deadlineSkips = %d, want 1", got)
	}
}

func TestTransportBreakerTripAndFastFail(t *testing.T) {
	// A refused-connection peer (closed listener) trips the breaker after
	// the configured consecutive failures, after which sends fail fast
	// without touching the network.
	ts, peer := newPeerServer(t, "n2", func(w http.ResponseWriter, r *http.Request) {})
	ts.Close() // connection refused from now on
	p := NewPool(Config{BreakerFailures: 3, BreakerCooldown: time.Hour}, []Peer{peer})
	cl := p.Client()
	for i := 0; i < 3; i++ {
		if _, err := cl.Do(mustReq(t, peer.URL)); err == nil {
			t.Fatal("send to closed listener succeeded")
		}
	}
	if !p.PeerOpen("n2") {
		t.Fatal("breaker not open after consecutive refusals")
	}
	_, err := cl.Do(mustReq(t, peer.URL))
	var bo *BreakerOpenError
	if !errors.As(err, &bo) {
		t.Fatalf("post-trip error = %v, want BreakerOpenError", err)
	}
	if !IsLocal(err) {
		t.Fatal("BreakerOpenError not classified as local")
	}
	s := p.Snapshot()
	if s.BreakerFastFails != 1 || s.Peers["n2"].Opens != 1 {
		t.Fatalf("fastFails=%d opens=%d, want 1/1", s.BreakerFastFails, s.Peers["n2"].Opens)
	}
}

func TestTransportCancellationIsNotPeerFailure(t *testing.T) {
	// Satellite invariant: a request canceled by its own caller — before
	// headers or mid-body, the hedged-loser pattern — records nothing
	// against the peer.
	release := make(chan struct{})
	ts, peer := newPeerServer(t, "n2", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write(make([]byte, 4096))
		w.(http.Flusher).Flush()
		<-release // hold the body open until the client cancels
	})
	defer close(release)
	_ = ts
	p := NewPool(Config{BreakerFailures: 1, BreakerCooldown: time.Hour}, []Peer{peer})
	cl := p.Client()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", peer.URL+"/x", nil)
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	buf := make([]byte, 1024)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first body read: %v", err)
	}
	cancel() // mid-body cancellation
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	resp.Body.Close()
	snap := p.Snapshot().Peers["n2"]
	if snap.State != "closed" || snap.Opens != 0 {
		t.Fatalf("mid-body cancellation tripped breaker: state=%s opens=%d", snap.State, snap.Opens)
	}
	// Pre-header cancellation likewise records nothing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	req2, _ := http.NewRequestWithContext(ctx2, "GET", peer.URL+"/x", nil)
	if _, err := cl.Do(req2); err == nil {
		t.Fatal("canceled request succeeded")
	}
	if snap := p.Snapshot().Peers["n2"]; snap.Opens != 0 {
		t.Fatalf("pre-header cancellation tripped breaker: opens=%d", snap.Opens)
	}
}

func TestTransportInjectedFaults(t *testing.T) {
	ts, peer := newPeerServer(t, "n2", func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 8192))
	})
	other := Peer{Name: "n3", URL: ts.URL} // same host alias, different name — unused
	_ = other
	p := NewPool(Config{BreakerFailures: 10}, []Peer{peer})
	cl := p.Client()

	// Refusal, scoped to the peer by name.
	if err := p.SetFaults(1, "rpc.refuse.n2:p=1"); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Do(mustReq(t, peer.URL))
	if !chaos.IsInjected(err) {
		t.Fatalf("refuse fault produced %v, want injected error", err)
	}

	// Black-hole: blocks until the context gives up; the error carries
	// the deadline cause so it counts as a peer failure, not cancellation.
	if err := p.SetFaults(1, "rpc.blackhole:p=1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	start := time.Now()
	req, _ := http.NewRequestWithContext(ctx, "GET", peer.URL+"/x", nil)
	_, err = cl.Do(req)
	cancel()
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole error = %v, want deadline cause", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("blackhole returned before context expiry")
	}

	// Delay: succeeds, but not before the rule's delay.
	if err := p.SetFaults(1, "rpc.delay:p=1,delay=20ms"); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	resp, err := cl.Do(mustReq(t, peer.URL))
	if err != nil {
		t.Fatalf("delayed send: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay fault did not delay")
	}

	// Mid-body reset: headers arrive, the body fails partway.
	if err := p.SetFaults(1, "rpc.reset:p=1"); err != nil {
		t.Fatal(err)
	}
	failsBefore := p.Snapshot().Peers["n2"].Failures
	resp, err = cl.Do(mustReq(t, peer.URL))
	if err != nil {
		t.Fatalf("reset send: %v", err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err == nil || n == 0 || n >= 8192 {
		t.Fatalf("reset fault: copied %d bytes with err %v, want partial body and error", n, err)
	}
	if got := p.Snapshot().Peers["n2"].Failures; got != failsBefore+1 {
		t.Fatalf("mid-body reset not charged to peer: failures %d -> %d", failsBefore, got)
	}

	// Clearing restores clean service.
	if err := p.SetFaults(0, ""); err != nil {
		t.Fatal(err)
	}
	resp, err = cl.Do(mustReq(t, peer.URL))
	if err != nil {
		t.Fatalf("post-clear send: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if p.FaultPlan() != "" {
		t.Fatal("cleared plan still reported")
	}
	if got := p.Snapshot().InjectedFaults; got < 4 {
		t.Fatalf("injectedFaults = %d, want >= 4", got)
	}
}

func TestTransportProbeBypassesOpenBreaker(t *testing.T) {
	var healthy atomic.Bool
	ts, peer := newPeerServer(t, "n2", func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			panic(http.ErrAbortHandler) // connection dies: transport error
		}
		w.WriteHeader(200)
	})
	_ = ts
	p := NewPool(Config{BreakerFailures: 2, BreakerCooldown: 50 * time.Millisecond}, []Peer{peer})
	cl := p.Client()
	for i := 0; i < 2; i++ {
		if resp, err := cl.Do(mustReq(t, peer.URL)); err == nil {
			resp.Body.Close()
			t.Fatal("aborted response did not error")
		}
	}
	if !p.PeerOpen("n2") {
		t.Fatal("breaker not open")
	}
	// Peer heals; regular traffic is still fast-failed, but a probe past
	// the cooldown goes through and closes the breaker.
	healthy.Store(true)
	if _, err := cl.Do(mustReq(t, peer.URL)); !IsLocal(err) {
		t.Fatalf("open breaker let traffic through: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	resp, err := cl.Do(mustReq(t, peer.URL+"/readyz"))
	if err != nil {
		t.Fatalf("probe through open breaker: %v", err)
	}
	resp.Body.Close()
	if p.PeerOpen("n2") {
		t.Fatal("successful probe did not close the breaker")
	}
	snap := p.Snapshot().Peers["n2"]
	if snap.Opens < 1 || snap.HalfOpens < 1 || snap.Closes < 1 {
		t.Fatalf("lifecycle counters %+v, want full open/half-open/close cycle", snap)
	}
}

func TestTransportPassthroughNonPeer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(DeadlineHeader) != "" {
			t.Error("non-peer request stamped with deadline header")
		}
	}))
	defer ts.Close()
	p := NewPool(Config{HopFloor: time.Hour}, nil) // floor would refuse any peer send
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL, nil)
	resp, err := p.Client().Do(req)
	if err != nil {
		t.Fatalf("passthrough: %v", err)
	}
	resp.Body.Close()
}

func mustReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestPoolSnapshotFaultSpecRoundTrip(t *testing.T) {
	p := NewPool(Config{}, []Peer{{Name: "a", URL: "http://127.0.0.1:1"}})
	if err := p.SetFaults(7, "rpc.refuse.a:p=1;rpc.delay:p=0.5,delay=2ms"); err != nil {
		t.Fatal(err)
	}
	got := p.Snapshot().FaultPlan
	if !strings.Contains(got, "rpc.refuse.a") || !strings.Contains(got, "rpc.delay") {
		t.Fatalf("snapshot fault plan %q lost the installed spec", got)
	}
	if err := p.SetFaults(7, "rpc.bogus:p=notanumber"); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
