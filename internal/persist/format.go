// Package persist is a versioned, self-describing binary codec and
// content-addressed disk store for preprocessed dictionaries.
//
// The paper's regime is preprocess-once/match-many: preprocessing costs O(d)
// parallel work (§3.1), matching O(n) per text. This package makes the
// expensive half durable. A snapshot file serializes the fundamental tables
// of a core.Dictionary (patterns, suffix-tree topology, Weiner links,
// Step 2 tables, separator chains); decoding is a sequential table load plus
// deterministic sequential rebuilds of the derived structures — no PRAM
// machine is touched anywhere on the load path, so a process serving from
// snapshots charges zero preprocessing to its cost ledger and answers every
// query byte-identically to the dictionary it was saved from.
//
// File layout (all integers little-endian; §10 of DESIGN.md documents the
// exact byte layout):
//
//	magic   "DMSNAP" (6 bytes)
//	version uint32
//	sections, in fixed order: header, patterns, tree, weiner, step2,
//	        [separator]. Each section is: id byte, uvarint payload length,
//	        payload, CRC32-C of the payload (uint32).
//	footer  CRC32-C of every preceding byte (uint32)
//
// Multi-valued payload fields are varint-coded (unsigned LEB128; signed
// fields zigzag). Decoding validates everything before allocating: header
// counts are bounded by the file size (every array element costs at least
// one payload byte), section CRCs and the whole-file CRC must match, and the
// structural invariants of the dictionary are re-checked by
// core.FromSnapshot. Corrupted, truncated or adversarial inputs yield typed
// errors — never a panic or an unbounded allocation.
package persist

import "errors"

// Version is the current snapshot format version. Readers reject files with
// any other version (no forward or backward decoding across versions).
const Version uint32 = 1

// magic identifies snapshot files.
var magic = [6]byte{'D', 'M', 'S', 'N', 'A', 'P'}

// Section ids, in their required file order. New section kinds are appended
// with fresh ids; readers skip ids they do not know (after verifying the
// section CRC), so adding a section is a forward-compatible change that does
// not bump Version.
const (
	secHeader byte = iota + 1
	secPatterns
	secTree
	secWeiner
	secStep2
	secSeparator
	secDense // compiled dense automaton (internal/dense payload)
)

var sectionNames = map[byte]string{
	secHeader:    "header",
	secPatterns:  "patterns",
	secTree:      "tree",
	secWeiner:    "weiner",
	secStep2:     "step2",
	secSeparator: "separator",
	secDense:     "dense",
}

// Header flag bits.
const (
	flagUseNaive = 1 << iota
	flagHasSeparator
)

// Typed errors. Decoding failures wrap exactly one of these, so callers can
// distinguish "not a snapshot" (ErrBadMagic), "snapshot from another format
// era" (ErrVersion), "bytes missing" (ErrTruncated) and "bytes present but
// wrong" (ErrCorrupt) with errors.Is.
var (
	ErrBadMagic  = errors.New("persist: not a dictionary snapshot")
	ErrVersion   = errors.New("persist: unsupported snapshot version")
	ErrTruncated = errors.New("persist: truncated snapshot")
	ErrCorrupt   = errors.New("persist: corrupt snapshot")
	ErrNotFound  = errors.New("persist: snapshot not found")
)
