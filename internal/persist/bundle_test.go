package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func bundleDict(t testing.TB) (*core.Dictionary, [][]byte) {
	t.Helper()
	gen := textgen.New(404)
	patterns := gen.Dictionary(10, 1, 8, 5)
	return core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 7}), patterns
}

// appendUnknownSection splices a synthetic section with an unassigned id in
// front of the footer, re-sealing the file CRC — what a future writer that
// appends a new section kind would produce.
func appendUnknownSection(data []byte, id byte, payload []byte) []byte {
	body := append([]byte(nil), data[:len(data)-4]...)
	body = appendSection(body, id, payload)
	return binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
}

// TestUnknownSectionSkipped is the forward-compat regression test: a
// snapshot carrying a section id this reader has never heard of must load
// cleanly, with all known sections intact.
func TestUnknownSectionSkipped(t *testing.T) {
	d, _ := bundleDict(t)
	data := appendUnknownSection(Encode(d), 200, []byte("from the future"))

	got, err := Load(data)
	if err != nil {
		t.Fatalf("Load with unknown section: %v", err)
	}
	m := pram.NewSequential()
	text := textgen.New(9).Uniform(500, 5)
	want := d.MatchText(m, text)
	for i, mt := range got.MatchText(m, text) {
		if mt != want[i] {
			t.Fatalf("match %d differs after unknown-section round trip", i)
		}
	}
	if _, err := Inspect(data); err != nil {
		t.Fatalf("Inspect with unknown section: %v", err)
	}

	// The skip is not a free pass: the unknown payload is still CRC-checked.
	bad := append([]byte(nil), data...)
	bad[len(bad)-10] ^= 0x01 // inside the unknown payload
	// Re-seal the file CRC so only the section CRC catches it.
	bad = bad[:len(bad)-4]
	bad = binary.LittleEndian.AppendUint32(bad, crc32.Checksum(bad, castagnoli))
	if _, err := Load(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted unknown section: err=%v, want ErrCorrupt", err)
	}
}

// TestEncodeBundleDenseLess pins the golden invariant: a bundle without an
// automaton is byte-identical to the pre-DENSE encoding.
func TestEncodeBundleDenseLess(t *testing.T) {
	d, _ := bundleDict(t)
	if string(EncodeBundle(d, nil)) != string(Encode(d)) {
		t.Fatal("EncodeBundle(d, nil) differs from Encode(d)")
	}
	dict, aut, err := LoadBundle(Encode(d))
	if err != nil || dict == nil {
		t.Fatalf("LoadBundle on dense-less snapshot: %v", err)
	}
	if aut != nil {
		t.Fatal("dense-less snapshot produced an automaton")
	}
}

// TestBundleRoundTrip: a DENSE-bearing snapshot restores an automaton with
// zero recompilation (the load path never touches a PRAM machine and the
// restored automaton matches the compiled one bit for bit).
func TestBundleRoundTrip(t *testing.T) {
	d, _ := bundleDict(t)
	a, err := dense.CompileDictionary(d, dense.Options{})
	if err != nil {
		t.Fatalf("CompileDictionary: %v", err)
	}
	data := EncodeBundle(d, a)

	has, err := HasDense(data)
	if err != nil || !has {
		t.Fatalf("HasDense = %v, %v", has, err)
	}
	dict, aut, err := LoadBundle(data)
	if err != nil {
		t.Fatalf("LoadBundle: %v", err)
	}
	if aut == nil {
		t.Fatal("DENSE section did not restore an automaton")
	}
	if aut.Stats() != a.Stats() {
		t.Fatalf("restored stats %+v != compiled stats %+v", aut.Stats(), a.Stats())
	}
	text := textgen.New(31).Uniform(800, 5)
	want := a.Match(text)
	for i, mt := range aut.Match(text) {
		if mt != want[i] {
			t.Fatalf("restored automaton diverges at %d", i)
		}
	}
	want2 := dict.MatchText(pram.NewSequential(), text)
	for i := range want {
		if want[i] != want2[i] {
			t.Fatalf("dense and tree-walk disagree at %d after round trip", i)
		}
	}

	info, err := Inspect(data)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Dense == nil || info.Dense.States != a.Stats().States {
		t.Fatalf("Inspect dense info = %+v, want states %d", info.Dense, a.Stats().States)
	}

	// A structurally corrupt DENSE payload with valid CRCs (a well-formed
	// file describing an impossible automaton) is ErrCorrupt even though the
	// core sections are fine — no silently serving a half-valid bundle.
	pay := a.Encode()
	pay[len(pay)-1] ^= 0x7f // last outPat entry: pattern id out of range
	bad := sealSnapshot(appendSection(encodeSections(d.Export()), secDense, pay))
	if _, _, err := LoadBundle(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt dense payload: err=%v, want ErrCorrupt", err)
	}
}

// TestStoreBundle covers the store round trip and that plain Get still works
// on a DENSE-bearing file.
func TestStoreBundle(t *testing.T) {
	d, patterns := bundleDict(t)
	a, err := dense.CompileDictionary(d, dense.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor(patterns, core.Options{Seed: 7})
	if _, err := st.PutBundle(k, d, a); err != nil {
		t.Fatalf("PutBundle: %v", err)
	}
	dict, aut, n, err := st.GetBundle(k)
	if err != nil || dict == nil || aut == nil || n == 0 {
		t.Fatalf("GetBundle: dict=%v aut=%v n=%d err=%v", dict != nil, aut != nil, n, err)
	}
	if _, _, err := st.Get(k); err != nil {
		t.Fatalf("Get on bundle file: %v", err)
	}
	if _, _, _, err := st.GetBundle(KeyForSnapshot([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}

	// Sweep must treat bundle files as valid.
	rep, err := st.Sweep()
	if err != nil || rep.Valid != 1 || rep.Quarantined != 0 {
		t.Fatalf("Sweep: %+v, %v", rep, err)
	}

	// WriteSnapshotFile upgrades in place atomically.
	path := st.Path(k)
	if err := WriteSnapshotFile(path, EncodeBundle(d, a)); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	if err := WriteSnapshotFile(path, []byte("garbage")); err == nil {
		t.Fatal("WriteSnapshotFile accepted garbage")
	}

	// QuarantineFile renames aside like the store's internal quarantine.
	qpath, err := QuarantineFile(path, errors.New("synthetic"))
	if err != nil {
		t.Fatalf("QuarantineFile: %v", err)
	}
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if st.Has(k) {
		t.Fatal("quarantined file still visible under its key")
	}
}
