package persist

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/stream"
	"repro/internal/textgen"
)

type matchCollector struct{ events []stream.MatchEvent }

func (c *matchCollector) MatchEvent(e stream.MatchEvent) error {
	c.events = append(c.events, e)
	return nil
}

// TestRoundTripEquivalence is the tentpole acceptance test: for dictionaries
// across alphabets, sizes and options, Preprocess → Encode → Decode → Load
// yields a dictionary whose batch matching, streaming matching and §5 parse
// output are byte-identical to the original's, with zero PRAM work charged
// by the load.
func TestRoundTripEquivalence(t *testing.T) {
	gen := textgen.New(2024)
	type tc struct {
		name     string
		patterns [][]byte
		text     []byte
		opts     core.Options
	}
	cases := []tc{
		{"binary", gen.Dictionary(8, 1, 10, 2), gen.Uniform(600, 2), core.Options{}},
		{"dna", gen.Dictionary(20, 2, 30, 4), gen.DNA(1500), core.Options{}},
		{"bytes-veb", gen.Dictionary(30, 1, 40, 200), gen.Uniform(1200, 200), core.Options{NCA: core.NCAImproved}},
		{"anchor-sa", gen.Dictionary(10, 1, 15, 8), gen.Markov(900, 8, 0.5), core.Options{Anchor: core.AnchorSA}},
		{"prefix-closed", gen.PrefixClosedDictionary(5, 16, 3), gen.Repetitive(1000, 20, 0.05), core.Options{Seed: 777, WindowL: 25}},
		{"single-pattern", [][]byte{[]byte("abracadabra")}, []byte(strings.Repeat("abracadabrab", 20)), core.Options{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := pram.New(4)
			d := core.Preprocess(m, c.patterns, c.opts)
			data := Encode(d)

			m2 := pram.New(4)
			before := m2.Snapshot()
			d2, err := Load(data)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if after := m2.Snapshot(); after.Work != before.Work {
				t.Fatalf("load charged PRAM work")
			}

			want := d.MatchText(m, c.text)
			got := d2.MatchText(m2, c.text)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("pos %d: %+v != %+v", i, got[i], want[i])
				}
			}

			// Streaming matching over small windows must agree event for event.
			var wantEv, gotEv matchCollector
			cfg := stream.Config{SegmentBytes: 256}
			if _, err := stream.Match(context.Background(), stream.DictMatcher{Dict: d, M: m},
				bytes.NewReader(c.text), &wantEv, cfg); err != nil {
				t.Fatalf("stream original: %v", err)
			}
			if _, err := stream.Match(context.Background(), stream.DictMatcher{Dict: d2, M: m2},
				bytes.NewReader(c.text), &gotEv, cfg); err != nil {
				t.Fatalf("stream restored: %v", err)
			}
			if len(wantEv.events) != len(gotEv.events) {
				t.Fatalf("stream events: %d != %d", len(gotEv.events), len(wantEv.events))
			}
			for i := range wantEv.events {
				if wantEv.events[i] != gotEv.events[i] {
					t.Fatalf("stream event %d: %+v != %+v", i, gotEv.events[i], wantEv.events[i])
				}
			}

			// §5 static parse: same refs, and cross-decompression works.
			refs, err1 := d.CompressStatic(m, c.text)
			refs2, err2 := d2.CompressStatic(m2, c.text)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("compress error divergence: %v vs %v", err1, err2)
			}
			if err1 == nil {
				if len(refs) != len(refs2) {
					t.Fatalf("parse lengths: %d != %d", len(refs2), len(refs))
				}
				for i := range refs {
					if refs[i] != refs2[i] {
						t.Fatalf("ref %d: %d != %d", i, refs2[i], refs[i])
					}
				}
				back, err := d2.DecompressStatic(m2, refs)
				if err != nil || !bytes.Equal(back, c.text) {
					t.Fatalf("cross decompression failed: %v", err)
				}
			}
		})
	}
}

// TestEncodeDeterministic: the same dictionary must always serialize to the
// same bytes (content addressing and the golden test depend on it).
func TestEncodeDeterministic(t *testing.T) {
	gen := textgen.New(5)
	patterns := gen.Dictionary(15, 1, 25, 30)
	d := core.Preprocess(pram.New(4), patterns, core.Options{})
	a := Encode(d)
	b := Encode(d)
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of one dictionary differ")
	}
	d2 := core.Preprocess(pram.New(1), patterns, core.Options{})
	c := Encode(d2)
	if !bytes.Equal(a, c) {
		t.Fatalf("encoding depends on machine parallelism")
	}
}

// TestConcurrentLoads exercises decode under -race: many goroutines loading
// and matching from the same byte slice concurrently.
func TestConcurrentLoads(t *testing.T) {
	gen := textgen.New(31)
	patterns := gen.Dictionary(10, 1, 12, 4)
	text := gen.Uniform(400, 4)
	m := pram.New(2)
	d := core.Preprocess(m, patterns, core.Options{})
	want := d.MatchText(m, text)
	data := Encode(d)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dl, err := Load(data)
			if err != nil {
				t.Errorf("Load: %v", err)
				return
			}
			got := dl.MatchText(pram.New(1), text)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("pos %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDecodeRejectsCorruption: every sampled single-byte flip anywhere in
// the file must be rejected with a typed error (the whole-file CRC makes
// this certain, the section CRCs localize it).
func TestDecodeRejectsCorruption(t *testing.T) {
	gen := textgen.New(77)
	d := core.Preprocess(pram.New(1), gen.Dictionary(6, 1, 10, 4), core.Options{})
	data := Encode(d)
	for off := 0; off < len(data); off += 3 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x41
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
	for _, cut := range []int{0, 1, 5, 9, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
	// Version bump with a fixed-up CRC must fail as ErrVersion, not ErrCorrupt.
	mut := append([]byte(nil), data...)
	mut[6]++
	if _, err := Decode(mut); !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v", err)
	}
}

// TestStore covers the content-addressed cache: hit/miss, atomic write,
// quarantine of corrupt entries, and key sensitivity to inputs.
func TestStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gen := textgen.New(123)
	patterns := gen.Dictionary(8, 1, 12, 4)
	opts := core.Options{}
	key := KeyFor(patterns, opts)

	if _, _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: got %v, want ErrNotFound", err)
	}

	m := pram.New(2)
	d := core.Preprocess(m, patterns, opts)
	n, err := st.Put(key, d)
	if err != nil || n <= 0 {
		t.Fatalf("Put: n=%d err=%v", n, err)
	}
	if !st.Has(key) {
		t.Fatalf("Has after Put is false")
	}
	d2, size, err := st.Get(key)
	if err != nil || size != n {
		t.Fatalf("Get: size=%d err=%v", size, err)
	}
	text := gen.Uniform(300, 4)
	want := d.MatchText(m, text)
	got := d2.MatchText(pram.New(1), text)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("cached dictionary diverges at %d", i)
		}
	}

	keys, err := st.Keys()
	if err != nil || len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys: %v %v", keys, err)
	}

	// Different inputs → different keys.
	if KeyFor(patterns, core.Options{Seed: 9}) == key {
		t.Fatalf("seed not in key")
	}
	if KeyFor(patterns[:len(patterns)-1], opts) == key {
		t.Fatalf("patterns not in key")
	}
	if KeyFor(patterns, core.Options{Anchor: core.AnchorSA}) == key {
		t.Fatalf("anchor not in key")
	}
	// Seed 0 and seed 1 canonicalize identically (core resolves 0 to 1).
	if KeyFor(patterns, core.Options{Seed: 1}) != key {
		t.Fatalf("seed 0 and 1 should share a key")
	}

	// Corrupt the entry on disk: Get must quarantine it and the store must
	// then miss; the quarantined bytes must still exist for post-mortems.
	path := st.Path(key)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt Get: %v", err)
	}
	if _, err := os.Stat(path + quarantineExt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: %v, want ErrNotFound", err)
	}
	// Re-put repopulates under the same name.
	if _, err := st.Put(key, d); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if _, _, err := st.Get(key); err != nil {
		t.Fatalf("Get after re-Put: %v", err)
	}

	// PutBytes refuses bytes that do not load.
	if _, err := st.PutBytes(key, []byte("junk")); err == nil {
		t.Fatalf("PutBytes accepted junk")
	}
}

// TestInspectVerify sanity-checks the reporting path cmd/dictpack uses.
func TestInspectVerify(t *testing.T) {
	gen := textgen.New(55)
	patterns := gen.Dictionary(7, 2, 9, 4)
	d := core.Preprocess(pram.New(1), patterns, core.Options{})
	data := Encode(d)
	info, err := Verify(data)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if info.Version != Version || info.NumPatterns != len(patterns) || info.FileBytes != len(data) {
		t.Fatalf("info mismatch: %+v", info)
	}
	if !info.HasSeparator || len(info.Sections) != 6 {
		t.Fatalf("expected all six sections: %+v", info.Sections)
	}
	var total int
	for _, s := range info.Sections {
		total += s.Bytes
	}
	if total >= len(data) {
		t.Fatalf("section payloads exceed file size")
	}
}
