package persist

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/core"
)

// castagnoli is the CRC32-C table (same polynomial iSCSI and ext4 use; it
// has better error-detection properties than IEEE for short bursts).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes a preprocessed dictionary into the versioned snapshot
// format. The output is deterministic: the same dictionary state always
// yields the same bytes (Weiner links are sorted by key at export).
func Encode(d *core.Dictionary) []byte {
	return EncodeSnapshot(d.Export())
}

// EncodeSnapshot serializes an exported snapshot.
func EncodeSnapshot(s *core.Snapshot) []byte {
	return sealSnapshot(encodeSections(s))
}

// encodeSections emits magic, version and the core sections — everything but
// the footer — so bundle encoders can append extra sections before sealing.
func encodeSections(s *core.Snapshot) []byte {
	out := make([]byte, 0, 1<<16)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)

	out = appendSection(out, secHeader, encodeHeader(s))
	out = appendSection(out, secPatterns, encodePatterns(s.Patterns))
	out = appendSection(out, secTree, encodeTree(s))
	out = appendSection(out, secWeiner, encodeWeiner(s))
	out = appendSection(out, secStep2, encodeStep2(s))
	if s.SepChainLen != nil {
		out = appendSection(out, secSeparator, encodeSeparator(s))
	}
	return out
}

// sealSnapshot appends the whole-file CRC footer.
func sealSnapshot(out []byte) []byte {
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

func appendSection(out []byte, id byte, payload []byte) []byte {
	out = append(out, id)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
}

func encodeHeader(s *core.Snapshot) []byte {
	var flags uint64
	if s.UseNaive {
		flags |= flagUseNaive
	}
	if s.SepChainLen != nil {
		flags |= flagHasSeparator
	}
	patBytes := 0
	for _, p := range s.Patterns {
		patBytes += len(p)
	}
	b := binary.AppendUvarint(nil, s.Seed)
	b = binary.AppendUvarint(b, uint64(s.Anchor))
	b = binary.AppendUvarint(b, uint64(s.WindowL))
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(len(s.Patterns)))
	b = binary.AppendUvarint(b, uint64(patBytes))
	b = binary.AppendUvarint(b, uint64(s.Tree.NumNodes))
	b = binary.AppendUvarint(b, uint64(len(s.Tree.SA)))
	b = binary.AppendUvarint(b, uint64(len(s.WeinerKeys)))
	b = binary.AppendUvarint(b, uint64(len(s.SepChainData)))
	return b
}

func encodePatterns(patterns [][]byte) []byte {
	var b []byte
	for _, p := range patterns {
		b = binary.AppendUvarint(b, uint64(len(p)))
	}
	for _, p := range patterns {
		b = append(b, p...)
	}
	return b
}

func encodeTree(s *core.Snapshot) []byte {
	t := s.Tree
	b := binary.AppendUvarint(nil, uint64(t.Root))
	b = appendU32s(b, t.SA)
	b = appendU32s(b, t.LCP)
	b = appendS32s(b, t.Parent)
	b = appendU32s(b, t.StrDepth)
	b = appendU32s(b, t.Lo)
	b = appendU32s(b, t.Hi)
	b = appendU32s(b, t.LeafID)
	b = appendS32s(b, t.LeafOf)
	b = appendS32s(b, t.SufLink)
	return b
}

func encodeWeiner(s *core.Snapshot) []byte {
	var b []byte
	// Keys are sorted and strictly increasing; delta-code them.
	prev := int64(0)
	for _, k := range s.WeinerKeys {
		b = binary.AppendUvarint(b, uint64(k-prev))
		prev = k
	}
	for _, v := range s.WeinerVals {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return b
}

func encodeStep2(s *core.Snapshot) []byte {
	b := appendU32s(nil, s.M1)
	b = appendU32s(b, s.H)
	b = appendS32s(b, s.MinPat)
	b = appendS32s(b, s.MinPatID)
	b = appendS64s(b, s.RPE)
	b = appendS64s(b, s.FullAtH)
	return b
}

func encodeSeparator(s *core.Snapshot) []byte {
	b := appendU32s(nil, s.SepChainLen)
	return appendU32s(b, s.SepChainData)
}

// appendU32s varint-codes a non-negative int32 slice.
func appendU32s(b []byte, vals []int32) []byte {
	for _, v := range vals {
		b = binary.AppendUvarint(b, uint64(uint32(v)))
	}
	return b
}

// appendS32s zigzag-codes an int32 slice (values may be -1).
func appendS32s(b []byte, vals []int32) []byte {
	for _, v := range vals {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// appendS64s zigzag-codes an int64 slice.
func appendS64s(b []byte, vals []int64) []byte {
	for _, v := range vals {
		b = binary.AppendVarint(b, v)
	}
	return b
}
