package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
)

// goldenPatterns is a fixed dictionary covering the format's moving parts:
// repeated substrings (shared suffix-tree structure), a single byte, and a
// long pattern.
func goldenPatterns() [][]byte {
	return [][]byte{
		[]byte("banana"),
		[]byte("ana"),
		[]byte("nab"),
		[]byte("b"),
		[]byte("abracadabra"),
		[]byte("cad"),
	}
}

// TestGoldenSnapshot pins format v1: the committed golden file must decode,
// match correctly, and byte-for-byte equal a fresh encoding of the same
// dictionary. Any codec change that alters the wire format breaks this test,
// which is the signal to bump Version (and regenerate with
// UPDATE_GOLDEN=1 go test ./internal/persist -run Golden).
func TestGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.dmsnap")
	d := core.Preprocess(pram.New(1), goldenPatterns(), core.Options{Seed: 42})
	fresh := Encode(d)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(fresh))
	}

	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(golden, fresh) {
		t.Fatalf("encoding drifted from committed v1 golden (%d vs %d bytes): bump Version and regenerate", len(fresh), len(golden))
	}

	d2, err := Load(golden)
	if err != nil {
		t.Fatalf("golden does not load: %v", err)
	}
	m := pram.New(1)
	text := []byte("xxbananabracadabranabx")
	want := d.MatchText(pram.New(1), text)
	got := d2.MatchText(m, text)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("golden dictionary diverges at %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
