package persist

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
)

// TestConcurrentPutSameKey is the same-key write race regression test: 16
// writers hammer one key concurrently, half writing the plain bundle and
// half the dense-bearing one (the two legitimate states of a KeyFor entry —
// the dense upgrade rewrites the same key with a DENSE section added).
// Every Put must succeed, and once the dust settles the file must decode
// cleanly as one of the two written states, never a torn mix. Run under
// -race this also proves the striped lock covers the write path.
func TestConcurrentPutSameKey(t *testing.T) {
	d, patterns := bundleDict(t)
	aut, err := dense.CompileDictionary(d, dense.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := EncodeBundle(d, nil)
	withDense := EncodeBundle(d, aut)

	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(patterns, core.Options{Seed: 7}) // matches bundleDict's options

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := plain
			if i%2 == 1 {
				data = withDense
			}
			_, errs[i] = store.PutBytes(key, data)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	got, gotAut, _, err := store.GetBundle(key)
	if err != nil {
		t.Fatalf("bundle unreadable after concurrent writes: %v", err)
	}
	if store.Quarantined() != 0 {
		t.Fatalf("%d quarantines — a torn write reached disk", store.Quarantined())
	}
	if len(got.Patterns) != len(d.Patterns) {
		t.Fatalf("restored %d patterns, want %d", len(got.Patterns), len(d.Patterns))
	}
	// Whichever writer finished last, the automaton is either absent (plain
	// bundle) or structurally identical to the compiled one.
	if gotAut != nil && gotAut.NumStates() != aut.NumStates() {
		t.Fatalf("restored automaton has %d states, want %d", gotAut.NumStates(), aut.NumStates())
	}
}
