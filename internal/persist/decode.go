package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/suffixtree"
)

// Decode parses snapshot bytes into a core.Snapshot without rebuilding any
// dictionary structure. All counts are validated against the actual payload
// sizes before any count-sized allocation is made (every array element costs
// at least one payload byte), so adversarial headers cannot force
// out-of-memory; all CRCs are checked before field parsing, so random
// corruption is rejected up front.
func Decode(data []byte) (*core.Snapshot, error) {
	sections, err := splitSections(data)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(sections, len(data))
}

// decodeSnapshot parses the core sections of an already-split file.
func decodeSnapshot(sections map[byte][]byte, fileLen int) (*core.Snapshot, error) {
	hdr, err := parseHeader(sections[secHeader], fileLen)
	if err != nil {
		return nil, err
	}
	s := &core.Snapshot{
		Seed:     hdr.seed,
		Anchor:   int32(hdr.anchor),
		UseNaive: hdr.flags&flagUseNaive != 0,
		WindowL:  int32(hdr.windowL),
	}

	if s.Patterns, err = parsePatterns(sections[secPatterns], hdr); err != nil {
		return nil, err
	}
	if s.Tree, err = parseTree(sections[secTree], hdr); err != nil {
		return nil, err
	}
	if err := parseWeiner(sections[secWeiner], hdr, s); err != nil {
		return nil, err
	}
	if err := parseStep2(sections[secStep2], hdr, s); err != nil {
		return nil, err
	}
	if hdr.flags&flagHasSeparator != 0 {
		if err := parseSeparator(sections[secSeparator], hdr, s); err != nil {
			return nil, err
		}
	} else if _, ok := sections[secSeparator]; ok {
		return nil, fmt.Errorf("%w: separator section present but not flagged", ErrCorrupt)
	}
	return s, nil
}

// Load decodes snapshot bytes into a ready-to-match dictionary. The restore
// performs zero PRAM work; structural invariant violations that survive the
// CRCs (i.e. a well-formed file describing an impossible dictionary) are
// reported as ErrCorrupt.
func Load(data []byte) (*core.Dictionary, error) {
	s, err := Decode(data)
	if err != nil {
		return nil, err
	}
	d, err := core.FromSnapshot(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return d, nil
}

// header carries the validated section counts.
type header struct {
	seed                 uint64
	anchor, windowL      int
	flags                uint64
	numPatterns          int
	patternBytes         int
	numNodes, numLeaves  int
	weinerCount, sepData int
}

// splitSections verifies magic, version, the whole-file CRC and each
// section's CRC, returning the payload of each section. Sections must appear
// in their defined order, each at most once.
func splitSections(data []byte) (map[byte][]byte, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader version %d", ErrVersion, v, Version)
	}
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("%w: missing file checksum", ErrTruncated)
	}
	body, file := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != file {
		return nil, fmt.Errorf("%w: file checksum mismatch", ErrCorrupt)
	}

	sections := make(map[byte][]byte, 8)
	rest := body[len(magic)+4:]
	lastID := byte(0)
	for len(rest) > 0 {
		id := rest[0]
		name := sectionNames[id]
		if name == "" {
			// A section kind from a future writer. Its framing and CRC are
			// still verified — same layout for every section — and the
			// payload is then skipped, so adding sections never strands old
			// readers.
			name = fmt.Sprintf("unknown(%d)", id)
		}
		if id <= lastID {
			return nil, fmt.Errorf("%w: section %s out of order", ErrCorrupt, name)
		}
		lastID = id
		plen, n := binary.Uvarint(rest[1:])
		if n <= 0 || plen > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: section %s length", ErrTruncated, name)
		}
		rest = rest[1+n:]
		if uint64(len(rest)) < plen+4 {
			return nil, fmt.Errorf("%w: section %s payload", ErrTruncated, name)
		}
		payload := rest[:plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[plen:]) {
			return nil, fmt.Errorf("%w: section %s checksum mismatch", ErrCorrupt, name)
		}
		if sectionNames[id] != "" {
			sections[id] = payload
		}
		rest = rest[plen+4:]
	}
	for _, id := range []byte{secHeader, secPatterns, secTree, secWeiner, secStep2} {
		if _, ok := sections[id]; !ok {
			return nil, fmt.Errorf("%w: missing section %s", ErrTruncated, sectionNames[id])
		}
	}
	return sections, nil
}

// parseHeader decodes and bounds the counts. fileLen is the global
// allocation bound: every count refers to data that costs at least one byte
// per element somewhere in the file, so any count beyond fileLen is
// impossible and is rejected before anything is allocated from it.
func parseHeader(b []byte, fileLen int) (*header, error) {
	r := &creader{b: b}
	h := &header{}
	h.seed = r.uvarint()
	h.anchor = r.count(fileLen)
	h.windowL = r.count(math.MaxInt32)
	h.flags = r.uvarint()
	h.numPatterns = r.count(fileLen)
	h.patternBytes = r.count(fileLen)
	h.numNodes = r.count(fileLen)
	h.numLeaves = r.count(fileLen)
	h.weinerCount = r.count(fileLen)
	h.sepData = r.count(fileLen)
	if r.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, r.err)
	}
	if h.numLeaves != h.patternBytes+h.numPatterns+1 {
		return nil, fmt.Errorf("%w: header: leaf count %d inconsistent with pattern bytes", ErrCorrupt, h.numLeaves)
	}
	if h.numNodes < 1 || h.numNodes > 2*h.numLeaves {
		return nil, fmt.Errorf("%w: header: node count %d out of range", ErrCorrupt, h.numNodes)
	}
	return h, nil
}

func parsePatterns(b []byte, h *header) ([][]byte, error) {
	r := &creader{b: b}
	lens := make([]int, h.numPatterns)
	total := 0
	for i := range lens {
		lens[i] = r.count(h.patternBytes)
		total += lens[i]
	}
	if r.err != nil || total != h.patternBytes {
		return nil, fmt.Errorf("%w: patterns: length table", ErrCorrupt)
	}
	patterns := make([][]byte, h.numPatterns)
	for i, l := range lens {
		p := r.bytes(l)
		if r.err != nil {
			return nil, fmt.Errorf("%w: patterns: bytes", ErrTruncated)
		}
		patterns[i] = p
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: patterns: trailing bytes", ErrCorrupt)
	}
	return patterns, nil
}

func parseTree(b []byte, h *header) (*suffixtree.Snapshot, error) {
	r := &creader{b: b}
	t := &suffixtree.Snapshot{
		NumNodes: int32(h.numNodes),
		Root:     int32(r.count(h.numNodes)),
	}
	t.SA = r.u32s(h.numLeaves)
	t.LCP = r.u32s(h.numLeaves)
	t.Parent = r.s32s(h.numNodes)
	t.StrDepth = r.u32s(h.numNodes)
	t.Lo = r.u32s(h.numNodes)
	t.Hi = r.u32s(h.numNodes)
	t.LeafID = r.u32s(h.numLeaves)
	t.LeafOf = r.s32s(h.numNodes)
	t.SufLink = r.s32s(h.numNodes)
	if r.err != nil {
		return nil, fmt.Errorf("%w: tree: %v", ErrCorrupt, r.err)
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: tree: trailing bytes", ErrCorrupt)
	}
	return t, nil
}

func parseWeiner(b []byte, h *header, s *core.Snapshot) error {
	r := &creader{b: b}
	s.WeinerKeys = make([]int64, h.weinerCount)
	prev := int64(0)
	for i := range s.WeinerKeys {
		d := r.uvarint()
		if d > math.MaxInt64-uint64(prev) {
			return fmt.Errorf("%w: weiner: key overflow", ErrCorrupt)
		}
		prev += int64(d)
		s.WeinerKeys[i] = prev
	}
	s.WeinerVals = r.u32s(h.weinerCount)
	if r.err != nil {
		return fmt.Errorf("%w: weiner: %v", ErrCorrupt, r.err)
	}
	if r.rem() != 0 {
		return fmt.Errorf("%w: weiner: trailing bytes", ErrCorrupt)
	}
	return nil
}

func parseStep2(b []byte, h *header, s *core.Snapshot) error {
	r := &creader{b: b}
	s.M1 = r.u32s(h.numNodes)
	s.H = r.u32s(h.numNodes)
	s.MinPat = r.s32s(h.numNodes)
	s.MinPatID = r.s32s(h.numNodes)
	s.RPE = r.s64s(h.numNodes)
	s.FullAtH = r.s64s(h.numNodes)
	if r.err != nil {
		return fmt.Errorf("%w: step2: %v", ErrCorrupt, r.err)
	}
	if r.rem() != 0 {
		return fmt.Errorf("%w: step2: trailing bytes", ErrCorrupt)
	}
	return nil
}

func parseSeparator(b []byte, h *header, s *core.Snapshot) error {
	r := &creader{b: b}
	s.SepChainLen = r.u32s(h.numNodes)
	s.SepChainData = r.u32s(h.sepData)
	if r.err != nil {
		return fmt.Errorf("%w: separator: %v", ErrCorrupt, r.err)
	}
	if r.rem() != 0 {
		return fmt.Errorf("%w: separator: trailing bytes", ErrCorrupt)
	}
	return nil
}

// creader is a cursor over one section payload with sticky errors, so parse
// functions read fields unconditionally and check once.
type creader struct {
	b   []byte
	off int
	err error
}

func (r *creader) rem() int { return len(r.b) - r.off }

func (r *creader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *creader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint bounded by max, for values used as counts or
// indexes; anything larger is impossible for a valid file.
func (r *creader) count(max int) int {
	v := r.uvarint()
	if r.err == nil && v > uint64(max) {
		r.err = fmt.Errorf("count %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

func (r *creader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.rem() < n {
		r.err = fmt.Errorf("need %d bytes, have %d", n, r.rem())
		return nil
	}
	out := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// u32s reads n uvarints into int32s. n has been bounded by the header
// against the file size; each element also costs at least one payload byte,
// which rem() enforces before the allocation.
func (r *creader) u32s(n int) []int32 {
	if r.err != nil {
		return nil
	}
	if n > r.rem() {
		r.err = fmt.Errorf("array of %d exceeds %d payload bytes", n, r.rem())
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := r.uvarint()
		if r.err != nil {
			return nil
		}
		if v > math.MaxUint32 {
			r.err = fmt.Errorf("value %d overflows 32 bits", v)
			return nil
		}
		out[i] = int32(uint32(v))
	}
	return out
}

func (r *creader) s32s(n int) []int32 {
	if r.err != nil {
		return nil
	}
	if n > r.rem() {
		r.err = fmt.Errorf("array of %d exceeds %d payload bytes", n, r.rem())
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := r.varint()
		if r.err != nil {
			return nil
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			r.err = fmt.Errorf("value %d overflows int32", v)
			return nil
		}
		out[i] = int32(v)
	}
	return out
}

func (r *creader) s64s(n int) []int64 {
	if r.err != nil {
		return nil
	}
	if n > r.rem() {
		r.err = fmt.Errorf("array of %d exceeds %d payload bytes", n, r.rem())
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.varint()
		if r.err != nil {
			return nil
		}
	}
	return out
}
