package persist

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// FuzzSnapshotDecode drives adversarial bytes through the full decode path
// (framing, checksums, varint parsing, structural restore). The contract
// under fuzz: never panic, never allocate unboundedly (all counts are
// validated against the input size before allocation), and either return a
// working dictionary or exactly one of the typed errors.
func FuzzSnapshotDecode(f *testing.F) {
	gen := textgen.New(9000)
	seeds := [][][]byte{
		{[]byte("a")},
		{[]byte("ab"), []byte("ba"), []byte("abab")},
		gen.Dictionary(6, 1, 8, 4),
		gen.Dictionary(12, 1, 16, 100),
	}
	optVariants := []core.Options{{}, {Anchor: core.AnchorSA}, {NCA: core.NCAImproved}}
	for i, patterns := range seeds {
		opts := optVariants[i%len(optVariants)]
		d := core.Preprocess(pram.New(1), patterns, opts)
		f.Add(Encode(d))
	}
	f.Add([]byte("DMSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: the dictionary must actually work (match a text
		// and satisfy its own checker) — acceptance of broken structures
		// would be worse than rejection.
		m := pram.New(1)
		text := []byte("the quick brown fox jumps over the lazy dog")
		matches := d.MatchText(m, text)
		if len(matches) != len(text) {
			t.Fatalf("accepted snapshot returns %d matches for %d positions", len(matches), len(text))
		}
		if !d.Check(m, text, matches) {
			t.Fatalf("accepted snapshot fails the Las Vegas checker")
		}
	})
}
