package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dense"
)

// Bundle support: a snapshot may carry, after the core sections, a DENSE
// section holding the compiled serving automaton (internal/dense). The
// section is strictly additive — Encode's output for a dense-less dictionary
// is byte-identical to the pre-DENSE format, pre-DENSE files load unchanged,
// and readers from before the DENSE era skip the section via the
// unknown-section rule in splitSections. A DENSE-bearing snapshot restores
// its automaton with a bounds-checked byte-order copy: zero compilation, and
// zero PRAM work charged to the ledger, on the load path.

// EncodeBundle serializes a preprocessed dictionary together with its
// compiled dense automaton. A nil automaton yields exactly Encode(d).
func EncodeBundle(d *core.Dictionary, a *dense.Automaton) []byte {
	out := encodeSections(d.Export())
	if a != nil {
		out = appendSection(out, secDense, a.Encode())
	}
	return sealSnapshot(out)
}

// LoadBundle decodes snapshot bytes into a ready-to-match dictionary plus
// the compiled dense automaton if the file carries one (nil otherwise). A
// DENSE section that survives its CRC but fails structural validation is
// reported as ErrCorrupt, like any other section.
func LoadBundle(data []byte) (*core.Dictionary, *dense.Automaton, error) {
	sections, err := splitSections(data)
	if err != nil {
		return nil, nil, err
	}
	s, err := decodeSnapshot(sections, len(data))
	if err != nil {
		return nil, nil, err
	}
	d, err := core.FromSnapshot(s)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	payload, ok := sections[secDense]
	if !ok {
		return d, nil, nil
	}
	a, err := dense.Restore(payload, d.Patterns)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: dense section: %v", ErrCorrupt, err)
	}
	return d, a, nil
}

// PutBundle encodes the dictionary and its dense automaton (nil for none)
// and writes the snapshot under its key atomically, returning the size in
// bytes.
func (s *Store) PutBundle(k Key, d *core.Dictionary, a *dense.Automaton) (int, error) {
	data := EncodeBundle(d, a)
	unlock := s.lockKey(k)
	defer unlock()
	if err := s.writeAtomic(s.Path(k), data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// GetBundle loads the snapshot stored under k plus its compiled dense
// automaton, if present (nil otherwise). Error and quarantine behavior match
// Get.
func (s *Store) GetBundle(k Key) (*core.Dictionary, *dense.Automaton, int, error) {
	path := s.Path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, 0, ErrNotFound
		}
		return nil, nil, 0, fmt.Errorf("persist: get: %w", err)
	}
	if i, mask, ok := chaos.CorruptByte(chaos.PersistBitflip, len(data)); ok {
		data[i] ^= mask
	}
	d, a, err := LoadBundle(data)
	if err != nil {
		s.quarantine(path, err)
		return nil, nil, 0, err
	}
	return d, a, len(data), nil
}

// WriteSnapshotFile writes snapshot bytes to an arbitrary path with the
// store's atomic write discipline — temp file in the destination directory,
// fsync, byte-for-byte read-back validation, rename — after checking the
// bytes load. cmd/dictpack uses it to upgrade snapshots in place.
func WriteSnapshotFile(path string, data []byte) error {
	if _, _, err := LoadBundle(data); err != nil {
		return err
	}
	s := &Store{dir: filepath.Dir(path), logf: func(string, ...any) {}}
	return s.writeAtomic(path, data)
}

// QuarantineFile renames a failed-validation snapshot aside exactly as the
// store's internal quarantine does, returning the quarantine path. Callers
// operating on loose files (cmd/dictpack) use it so a corrupt input cannot
// be mistaken for a live snapshot twice.
func QuarantineFile(path string, cause error) (string, error) {
	qpath := path + quarantineExt
	rerr := chaos.Err(chaos.PersistQuarantine, "rename")
	if rerr == nil {
		rerr = os.Rename(path, qpath)
	}
	if rerr != nil {
		return "", fmt.Errorf("persist: quarantine of %s failed (%v; cause: %w)", path, rerr, cause)
	}
	return qpath, nil
}

// HasDense reports whether snapshot bytes carry a DENSE section, without
// restoring anything beyond the framing walk.
func HasDense(data []byte) (bool, error) {
	sections, err := splitSections(data)
	if err != nil {
		return false, err
	}
	_, ok := sections[secDense]
	return ok, nil
}
