package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// fileExt is the snapshot file extension; quarantined files get
// fileExt+quarantineExt so they are never picked up by lookups again but
// remain on disk for post-mortems.
const (
	fileExt       = ".dmsnap"
	quarantineExt = ".quarantined"
)

// Key is the content address of a preprocessed dictionary: a SHA-256 over
// the preprocessing inputs (pattern set and options) and the snapshot format
// version. Two servers given the same patterns and options derive the same
// key, and a format bump orphans old cache entries instead of misreading
// them.
type Key [sha256.Size]byte

// String returns the hex form used in file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor computes the content address of a dictionary built from patterns
// with opts. The hash covers: format version, the resolved seed (0 means 1,
// matching core.Preprocess), NCA variant, anchor strategy, window length,
// and the length-prefixed pattern bytes in order. Pattern order matters —
// pattern ids are positional in match output.
func KeyFor(patterns [][]byte, opts core.Options) Key {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(Version))
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	word(seed)
	word(uint64(opts.NCA))
	word(uint64(opts.Anchor))
	word(uint64(opts.WindowL))
	word(uint64(len(patterns)))
	for _, p := range patterns {
		word(uint64(len(p)))
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyForSnapshot addresses already-encoded snapshot bytes by their own
// content (SHA-256 of the file). Explicit snapshot/restore round trips use
// it: unlike KeyFor, it needs no knowledge of the original preprocessing
// options, and any state the dictionary has absorbed since (a Las Vegas
// reseed) is part of the address.
func KeyForSnapshot(data []byte) Key { return sha256.Sum256(data) }

// Store is a content-addressed snapshot cache rooted at a directory. Writes
// are atomic (temp file + rename), so a crashed writer never leaves a
// half-written snapshot under a valid name; reads that fail validation
// quarantine the file so one corrupt entry cannot wedge every future boot.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a key maps to.
func (s *Store) Path(k Key) string { return filepath.Join(s.dir, k.String()+fileExt) }

// Has reports whether a snapshot for k is present on disk.
func (s *Store) Has(k Key) bool {
	_, err := os.Stat(s.Path(k))
	return err == nil
}

// Put encodes the dictionary and writes it under its key atomically,
// returning the snapshot size in bytes.
func (s *Store) Put(k Key, d *core.Dictionary) (int, error) {
	data := Encode(d)
	if err := s.writeAtomic(s.Path(k), data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// PutBytes writes pre-encoded snapshot bytes under a key atomically, after
// re-validating them (a store never persists bytes it could not load back).
func (s *Store) PutBytes(k Key, data []byte) (int, error) {
	if _, err := Load(data); err != nil {
		return 0, err
	}
	if err := s.writeAtomic(s.Path(k), data); err != nil {
		return 0, err
	}
	return len(data), nil
}

func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: put: %w", err)
	}
	return nil
}

// Get loads the snapshot stored under k into a ready-to-match dictionary and
// reports its on-disk size. A missing entry returns ErrNotFound. An entry
// that fails any validation (truncation, checksum, structural invariants) is
// quarantined — renamed so future lookups miss — and the typed decode error
// is returned; the caller falls back to preprocessing and may overwrite the
// entry with a good snapshot.
func (s *Store) Get(k Key) (*core.Dictionary, int, error) {
	path := s.Path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrNotFound
		}
		return nil, 0, fmt.Errorf("persist: get: %w", err)
	}
	d, err := Load(data)
	if err != nil {
		// Quarantine best-effort: a rename failure must not mask the
		// decode error, which the caller dispatches on.
		_ = os.Rename(path, path+quarantineExt)
		return nil, 0, err
	}
	return d, len(data), nil
}

// Keys lists the keys of all well-named snapshot files currently in the
// store (quarantined files are excluded). Contents are not validated.
func (s *Store) Keys() ([]Key, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list: %w", err)
	}
	var keys []Key
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != fileExt {
			continue
		}
		raw, err := hex.DecodeString(name[:len(name)-len(fileExt)])
		if err != nil || len(raw) != sha256.Size {
			continue
		}
		var k Key
		copy(k[:], raw)
		keys = append(keys, k)
	}
	return keys, nil
}
