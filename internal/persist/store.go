package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/core"
)

// fileExt is the snapshot file extension; quarantined files get
// fileExt+quarantineExt so they are never picked up by lookups again but
// remain on disk for post-mortems.
const (
	fileExt       = ".dmsnap"
	quarantineExt = ".quarantined"
)

// Key is the content address of a preprocessed dictionary: a SHA-256 over
// the preprocessing inputs (pattern set and options) and the snapshot format
// version. Two servers given the same patterns and options derive the same
// key, and a format bump orphans old cache entries instead of misreading
// them.
type Key [sha256.Size]byte

// String returns the hex form used in file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor computes the content address of a dictionary built from patterns
// with opts. The hash covers: format version, the resolved seed (0 means 1,
// matching core.Preprocess), NCA variant, anchor strategy, window length,
// and the length-prefixed pattern bytes in order. Pattern order matters —
// pattern ids are positional in match output.
func KeyFor(patterns [][]byte, opts core.Options) Key {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(Version))
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	word(seed)
	word(uint64(opts.NCA))
	word(uint64(opts.Anchor))
	word(uint64(opts.WindowL))
	word(uint64(len(patterns)))
	for _, p := range patterns {
		word(uint64(len(p)))
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyForSnapshot addresses already-encoded snapshot bytes by their own
// content (SHA-256 of the file). Explicit snapshot/restore round trips use
// it: unlike KeyFor, it needs no knowledge of the original preprocessing
// options, and any state the dictionary has absorbed since (a Las Vegas
// reseed) is part of the address.
func KeyForSnapshot(data []byte) Key { return sha256.Sum256(data) }

// Store is a content-addressed snapshot cache rooted at a directory. Writes
// are atomic (temp file + rename) and read back and re-validated before the
// rename, so a crashed writer never leaves a half-written snapshot under a
// valid name and a silently-corrupting disk is caught while the in-memory
// dictionary is still available to retry or fall back from. Reads that fail
// validation quarantine the file so one corrupt entry cannot wedge every
// future boot; a quarantine that itself fails (rename error) is logged and
// counted, never swallowed.
type Store struct {
	dir  string
	logf func(format string, args ...any) // never nil; defaults to a no-op

	// putLocks serializes writers of the same key (striped by the key's
	// first byte). Same-key Puts are legitimate — the dense upgrade rewrites
	// a dictionary's KeyFor entry with a DENSE section added — and without
	// serialization two interleaved write→verify→rename sequences can
	// publish the older bytes last. With the stripe held, whichever Put
	// completes second is the state the file ends in, whole.
	putLocks [64]sync.Mutex

	quarantined     atomic.Int64 // files renamed aside after failed validation
	quarantineFails atomic.Int64 // quarantine renames that themselves failed
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir, logf: func(string, ...any) {}}, nil
}

// SetLogf installs a printf-style logger for store-internal events that
// have no error-return path to the caller (quarantines and quarantine
// failures). nil restores the no-op default.
func (s *Store) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Quarantined returns how many snapshot files this store has renamed aside
// after failed validation.
func (s *Store) Quarantined() int64 { return s.quarantined.Load() }

// QuarantineFails returns how many quarantine renames failed — each one is
// a corrupt file still sitting under its valid name, worth an operator's
// attention (the next Get will re-detect and retry the quarantine).
func (s *Store) QuarantineFails() int64 { return s.quarantineFails.Load() }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a key maps to.
func (s *Store) Path(k Key) string { return filepath.Join(s.dir, k.String()+fileExt) }

// Has reports whether a snapshot for k is present on disk.
func (s *Store) Has(k Key) bool {
	_, err := os.Stat(s.Path(k))
	return err == nil
}

// Put encodes the dictionary and writes it under its key atomically,
// returning the snapshot size in bytes.
func (s *Store) Put(k Key, d *core.Dictionary) (int, error) {
	return s.PutBundle(k, d, nil)
}

// PutBytes writes pre-encoded snapshot bytes under a key atomically, after
// re-validating them (a store never persists bytes it could not load back).
// A DENSE section, if present, is validated along with the rest.
func (s *Store) PutBytes(k Key, data []byte) (int, error) {
	if _, _, err := LoadBundle(data); err != nil {
		return 0, err
	}
	unlock := s.lockKey(k)
	defer unlock()
	if err := s.writeAtomic(s.Path(k), data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// lockKey takes the write stripe for k and returns its unlock.
func (s *Store) lockKey(k Key) func() {
	mu := &s.putLocks[int(k[0])%len(s.putLocks)]
	mu.Lock()
	return mu.Unlock
}

// writeAtomic writes data to a temp file, fsyncs, reads the file back and
// re-validates it byte-for-byte and through the codec, and only then
// renames it into place. The read-back turns silent write-time corruption
// (a lying disk, a bit flip between buffer and platter) into a loud error
// while the caller still holds the in-memory dictionary, instead of a
// quarantine — or worse, a wrong match — on some future boot.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: put: %w", err)
	}
	defer os.Remove(tmp.Name())
	wdata := data
	if i, mask, ok := chaos.CorruptByte(chaos.PersistWriteFlip, len(data)); ok {
		// Damage only the bytes that hit the disk; the caller's copy stays
		// intact, exactly like real write-path corruption.
		wdata = append([]byte(nil), data...)
		wdata[i] ^= mask
	}
	werr := chaos.Err(chaos.PersistWrite, "write")
	if werr == nil {
		_, werr = tmp.Write(wdata)
	} else {
		// Short write: commit a prefix before failing, like a full disk.
		_, _ = tmp.Write(wdata[:len(wdata)/2])
	}
	if werr != nil {
		tmp.Close()
		return fmt.Errorf("persist: put: %w", werr)
	}
	serr := chaos.Err(chaos.PersistSync, "fsync")
	if serr == nil {
		serr = tmp.Sync()
	}
	if serr != nil {
		tmp.Close()
		return fmt.Errorf("persist: put: %w", serr)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: put: %w", err)
	}
	if err := s.verifyWritten(tmp.Name(), data); err != nil {
		return err
	}
	rerr := chaos.Err(chaos.PersistRename, "rename")
	if rerr == nil {
		rerr = os.Rename(tmp.Name(), path)
	}
	if rerr != nil {
		return fmt.Errorf("persist: put: %w", rerr)
	}
	return nil
}

// verifyWritten is the post-write read-back check of writeAtomic.
func (s *Store) verifyWritten(tmpPath string, want []byte) error {
	got, err := os.ReadFile(tmpPath)
	if err != nil {
		return fmt.Errorf("persist: put read-back: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("persist: put read-back: %w: file differs from written bytes", ErrCorrupt)
	}
	if _, _, err := LoadBundle(got); err != nil {
		return fmt.Errorf("persist: put read-back: %w", err)
	}
	return nil
}

// Get loads the snapshot stored under k into a ready-to-match dictionary and
// reports its on-disk size. A missing entry returns ErrNotFound. An entry
// that fails any validation (truncation, checksum, structural invariants) is
// quarantined — renamed so future lookups miss — and the typed decode error
// is returned; the caller falls back to preprocessing and may overwrite the
// entry with a good snapshot.
func (s *Store) Get(k Key) (*core.Dictionary, int, error) {
	d, _, n, err := s.GetBundle(k)
	return d, n, err
}

// quarantine renames a failed-validation file aside. The rename is
// best-effort in the sense that its failure must not mask the decode error
// the caller dispatches on — but it is never silent: both outcomes are
// logged and counted, and QuarantineFails exposes the failure to /metrics.
func (s *Store) quarantine(path string, cause error) {
	rerr := chaos.Err(chaos.PersistQuarantine, "rename")
	if rerr == nil {
		rerr = os.Rename(path, path+quarantineExt)
	}
	if rerr != nil {
		s.quarantineFails.Add(1)
		s.logf("persist: quarantine of %s FAILED (%v); corrupt file still in place (cause: %v)", path, rerr, cause)
		return
	}
	s.quarantined.Add(1)
	s.logf("persist: quarantined %s: %v", path, cause)
}

// Keys lists the keys of all well-named snapshot files currently in the
// store (quarantined files are excluded). Contents are not validated.
func (s *Store) Keys() ([]Key, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list: %w", err)
	}
	var keys []Key
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != fileExt {
			continue
		}
		raw, err := hex.DecodeString(name[:len(name)-len(fileExt)])
		if err != nil || len(raw) != sha256.Size {
			continue
		}
		var k Key
		copy(k[:], raw)
		keys = append(keys, k)
	}
	return keys, nil
}

// SweepReport summarizes a startup sweep of the store.
type SweepReport struct {
	Valid           int // snapshots that decoded cleanly
	Quarantined     int // snapshots quarantined by this sweep
	QuarantineFails int // sweep quarantines that failed to rename
	PreQuarantined  int // *.quarantined files left by earlier runs
}

// Sweep re-validates every snapshot in the store: each well-named file is
// read and decoded, corrupt ones are quarantined (and counted), and
// leftover quarantine files from earlier runs are tallied. Servers run it
// at startup so a boot reports the store's health up front instead of
// discovering rot lazily, one failed Get at a time.
func (s *Store) Sweep() (SweepReport, error) {
	var rep SweepReport
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("persist: sweep: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, quarantineExt) {
			rep.PreQuarantined++
			continue
		}
		if filepath.Ext(name) != fileExt {
			continue
		}
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue // raced with a concurrent writer/remover; not our problem
		}
		before := s.quarantineFails.Load()
		if _, err := Load(data); err != nil {
			s.quarantine(path, err)
			if s.quarantineFails.Load() > before {
				rep.QuarantineFails++
			} else {
				rep.Quarantined++
			}
			continue
		}
		rep.Valid++
	}
	return rep, nil
}
