package persist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dense"
)

// SectionInfo describes one section of a snapshot file.
type SectionInfo struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// Info summarizes a snapshot file: what it holds and how the bytes divide
// among sections. Produced by Inspect (and cmd/dictpack inspect); all
// checksums have been verified by the time an Info is returned.
type Info struct {
	Version      uint32        `json:"version"`
	FileBytes    int           `json:"file_bytes"`
	Seed         uint64        `json:"seed"`
	Anchor       int           `json:"anchor"`
	WindowL      int           `json:"window_l"`
	UseNaive     bool          `json:"use_naive_nca"`
	HasSeparator bool          `json:"has_separator"`
	NumPatterns  int           `json:"num_patterns"`
	PatternBytes int           `json:"pattern_bytes"`
	NumNodes     int           `json:"num_nodes"`
	NumLeaves    int           `json:"num_leaves"`
	WeinerCount  int           `json:"weiner_count"`
	Sections     []SectionInfo `json:"sections"`
	Dense        *dense.Stats  `json:"dense,omitempty"` // nil when no DENSE section
}

// Inspect validates a snapshot's framing and checksums and reports its
// header and section layout without reconstructing the dictionary.
func Inspect(data []byte) (*Info, error) {
	sections, err := splitSections(data)
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(sections[secHeader], len(data))
	if err != nil {
		return nil, err
	}
	info := &Info{
		Version:      binary.LittleEndian.Uint32(data[len(magic):]),
		FileBytes:    len(data),
		Seed:         h.seed,
		Anchor:       h.anchor,
		WindowL:      h.windowL,
		UseNaive:     h.flags&flagUseNaive != 0,
		HasSeparator: h.flags&flagHasSeparator != 0,
		NumPatterns:  h.numPatterns,
		PatternBytes: h.patternBytes,
		NumNodes:     h.numNodes,
		NumLeaves:    h.numLeaves,
		WeinerCount:  h.weinerCount,
	}
	for _, id := range []byte{secHeader, secPatterns, secTree, secWeiner, secStep2, secSeparator, secDense} {
		if payload, ok := sections[id]; ok {
			info.Sections = append(info.Sections, SectionInfo{Name: sectionNames[id], Bytes: len(payload)})
		}
	}
	if payload, ok := sections[secDense]; ok {
		st, err := dense.PayloadStats(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: dense section: %v", ErrCorrupt, err)
		}
		info.Dense = &st
	}
	return info, nil
}

// Verify fully validates a snapshot: framing, checksums, and every
// structural invariant (it performs a complete load). It returns the Info on
// success.
func Verify(data []byte) (*Info, error) {
	info, err := Inspect(data)
	if err != nil {
		return nil, err
	}
	if _, err := Load(data); err != nil {
		return nil, fmt.Errorf("structural check failed: %w", err)
	}
	return info, nil
}
