package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// putTestEntry preprocesses a small dictionary and stores it, returning the
// key and the machine used (for matching in assertions).
func putTestEntry(t *testing.T, st *Store, seed uint64) (Key, *core.Dictionary) {
	t.Helper()
	gen := textgen.New(seed)
	patterns := gen.Dictionary(6, 1, 10, 4)
	opts := core.Options{}
	key := KeyFor(patterns, opts)
	d := core.Preprocess(pram.NewSequential(), patterns, opts)
	if _, err := st.Put(key, d); err != nil {
		t.Fatalf("Put: %v", err)
	}
	return key, d
}

// TestQuarantineSurfaced: a failed-validation Get must log the quarantine
// and count it — never silently rename (or silently fail to rename).
func TestQuarantineSurfaced(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	st.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	key, _ := putTestEntry(t, st, 1)

	path := st.Path(key)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry: %v, want ErrCorrupt", err)
	}
	if got := st.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	if got := st.QuarantineFails(); got != 0 {
		t.Errorf("QuarantineFails() = %d, want 0", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "quarantined") {
		t.Errorf("quarantine not logged: %q", logged)
	}
}

// TestQuarantineRenameFailureCounted: when the quarantine rename itself
// fails, the store must count and log the failure while still returning the
// decode error to the caller.
func TestQuarantineRenameFailureCounted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	st.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	key, _ := putTestEntry(t, st, 2)
	path := st.Path(key)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the rename target unreachable: occupy path+quarantineExt with a
	// non-empty *directory*, which rename(2) cannot replace.
	if err := os.MkdirAll(filepath.Join(path+quarantineExt, "block"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry: %v, want ErrCorrupt", err)
	}
	if got := st.QuarantineFails(); got != 1 {
		t.Errorf("QuarantineFails() = %d, want 1", got)
	}
	if got := st.Quarantined(); got != 0 {
		t.Errorf("Quarantined() = %d, want 0", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "FAILED") {
		t.Errorf("quarantine failure not logged: %q", logged)
	}
	// The corrupt file is still in place under its valid name; a later Get
	// re-detects it rather than serving garbage.
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("second Get: %v, want ErrCorrupt", err)
	}
}

// TestSweep: the startup sweep validates every entry, quarantines rot, and
// tallies leftovers from previous runs.
func TestSweep(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	goodKey, _ := putTestEntry(t, st, 3)
	badKey, _ := putTestEntry(t, st, 4)
	if badKey == goodKey {
		t.Fatal("test needs two distinct entries")
	}
	// Rot the second entry in place.
	path := st.Path(badKey)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A quarantine file left over from a previous run.
	pre := filepath.Join(st.Dir(), "deadbeef"+fileExt+quarantineExt)
	if err := os.WriteFile(pre, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrelated file the sweep must ignore.
	if err := os.WriteFile(filepath.Join(st.Dir(), "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Sweep()
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	want := SweepReport{Valid: 1, Quarantined: 1, QuarantineFails: 0, PreQuarantined: 1}
	if rep != want {
		t.Fatalf("Sweep report = %+v, want %+v", rep, want)
	}
	if st.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d after sweep, want 1", st.Quarantined())
	}
	// The good entry survived, the bad one now misses.
	if _, _, err := st.Get(goodKey); err != nil {
		t.Errorf("good entry lost by sweep: %v", err)
	}
	if _, _, err := st.Get(badKey); !errors.Is(err, ErrNotFound) {
		t.Errorf("bad entry after sweep: %v, want ErrNotFound", err)
	}
	// Idempotent: a second sweep finds one valid entry and two leftovers.
	rep2, err := st.Sweep()
	if err != nil {
		t.Fatalf("second Sweep: %v", err)
	}
	want2 := SweepReport{Valid: 1, PreQuarantined: 2}
	if rep2 != want2 {
		t.Fatalf("second Sweep report = %+v, want %+v", rep2, want2)
	}
}

// TestPutReadBackCatchesTruncation: writeAtomic re-reads and re-validates
// the temp file before renaming it into place, so a snapshot that did not
// survive the trip to disk never lands under a valid name. Simulated here by
// the cheapest honest proxy available without fault injection: verifyWritten
// called on a truncated file must fail with a typed error. (The chaos build
// injects the faults into the live write path; see chaos_test.go.)
func TestPutReadBackCatchesTruncation(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, d := putTestEntry(t, st, 5)
	data := Encode(d)
	tmp := filepath.Join(st.Dir(), "manual.tmp")
	if err := os.WriteFile(tmp, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.verifyWritten(tmp, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verifyWritten on truncated file: %v, want ErrCorrupt", err)
	}
	// And on matching bytes it passes.
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.verifyWritten(tmp, data); err != nil {
		t.Fatalf("verifyWritten on intact file: %v", err)
	}
	_ = key
}
