//go:build chaos

package persist

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// withPlan installs a chaos plan for one test and removes it afterwards.
func withPlan(t *testing.T, seed uint64, spec string) {
	t.Helper()
	plan, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	chaos.Install(plan)
	t.Cleanup(func() { chaos.Install(nil) })
}

func freshEntry(t *testing.T, seed uint64) (Key, *core.Dictionary) {
	t.Helper()
	gen := textgen.New(seed)
	patterns := gen.Dictionary(6, 1, 10, 4)
	opts := core.Options{}
	return KeyFor(patterns, opts), core.Preprocess(pram.NewSequential(), patterns, opts)
}

// TestChaosShortWrite: an injected write error fails the Put with a typed
// injected error, leaves no snapshot under the key, and leaves no temp
// litter behind.
func TestChaosShortWrite(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, d := freshEntry(t, 10)
	withPlan(t, 42, "persist.write:p=1,n=1")
	if _, err := st.Put(key, d); !chaos.IsInjected(err) {
		t.Fatalf("Put under write fault: %v, want injected error", err)
	}
	if st.Has(key) {
		t.Fatal("short write left a snapshot under a valid name")
	}
	assertNoTempLitter(t, st)
	// The plan's n=1 cap has been consumed; the retry succeeds.
	if _, err := st.Put(key, d); err != nil {
		t.Fatalf("Put after fault window: %v", err)
	}
	if _, _, err := st.Get(key); err != nil {
		t.Fatalf("Get after recovered Put: %v", err)
	}
}

// TestChaosFsyncAndRenameFaults: injected fsync and rename errors fail the
// Put without leaving partial state.
func TestChaosFsyncAndRenameFaults(t *testing.T) {
	for _, point := range []chaos.Point{chaos.PersistSync, chaos.PersistRename} {
		t.Run(string(point), func(t *testing.T) {
			st, err := Open(filepath.Join(t.TempDir(), "cache"))
			if err != nil {
				t.Fatal(err)
			}
			key, d := freshEntry(t, 11)
			withPlan(t, 7, string(point)+":p=1,n=1")
			if _, err := st.Put(key, d); !chaos.IsInjected(err) {
				t.Fatalf("Put under %s fault: %v, want injected error", point, err)
			}
			if st.Has(key) {
				t.Fatalf("%s fault left a snapshot in place", point)
			}
			assertNoTempLitter(t, st)
			if _, err := st.Put(key, d); err != nil {
				t.Fatalf("Put after fault window: %v", err)
			}
		})
	}
}

// TestChaosWriteBitflipCaughtByReadBack: a bit flipped on the way to disk is
// caught by the post-write read-back — the Put fails loudly while the caller
// still holds the good in-memory dictionary, and nothing corrupt is
// published under the key.
func TestChaosWriteBitflipCaughtByReadBack(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, d := freshEntry(t, 12)
	withPlan(t, 99, "persist.writeflip:p=1,n=1")
	_, err = st.Put(key, d)
	if err == nil {
		t.Fatal("Put with flipped byte succeeded; read-back missed it")
	}
	if !strings.Contains(err.Error(), "read-back") {
		t.Fatalf("Put error %v does not come from the read-back check", err)
	}
	if st.Has(key) {
		t.Fatal("corrupt snapshot published under a valid name")
	}
	if _, err := st.Put(key, d); err != nil {
		t.Fatalf("Put after fault window: %v", err)
	}
}

// TestChaosReadBitflipQuarantined: a bit flipped between disk and decoder
// trips the CRC, quarantines the file, and counts it; the caller sees the
// typed corruption error and can rebuild.
func TestChaosReadBitflipQuarantined(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, d := freshEntry(t, 13)
	if _, err := st.Put(key, d); err != nil {
		t.Fatal(err)
	}
	withPlan(t, 5, "persist.bitflip:p=1,n=1")
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under bitflip: %v, want ErrCorrupt", err)
	}
	if st.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", st.Quarantined())
	}
	// The on-disk file was corrupted in memory only after ReadFile; the
	// quarantined bytes are the *original* good bytes, but the entry is gone
	// either way — the conservative outcome for a read-path flake.
	if _, _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine: %v, want ErrNotFound", err)
	}
	// Rebuild and re-put restores service.
	if _, err := st.Put(key, d); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if _, _, err := st.Get(key); err != nil {
		t.Fatalf("Get after re-Put: %v", err)
	}
}

// TestChaosQuarantineRenameFault: when the quarantine rename is itself
// injected to fail, the failure is counted — not silent — and the decode
// error still reaches the caller.
func TestChaosQuarantineRenameFault(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, d := freshEntry(t, 14)
	if _, err := st.Put(key, d); err != nil {
		t.Fatal(err)
	}
	withPlan(t, 3, "persist.bitflip:p=1,n=1;persist.quarantine:p=1,n=1")
	if _, _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get: %v, want ErrCorrupt", err)
	}
	if st.QuarantineFails() != 1 {
		t.Fatalf("QuarantineFails() = %d, want 1", st.QuarantineFails())
	}
	if st.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d, want 0", st.Quarantined())
	}
	// The file never moved (the injected rename failed before the real one
	// ran) and its on-disk bytes are intact, so the next Get succeeds.
	if _, _, err := st.Get(key); err != nil {
		t.Fatalf("Get after failed quarantine of a read-flake: %v", err)
	}
}

func assertNoTempLitter(t *testing.T, st *Store) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(st.Dir(), "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}
