package persist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/core"
	"repro/internal/dense"
)

// HTTP bundle fetch: the replication pull of cluster mode (DESIGN.md §15).
// A node that needs a dictionary it does not hold fetches the owner's DMSNAP
// bundle from GET /v1/dicts/{id}/snapshot and validates it through the same
// codec the local store trusts — a peer is no more trusted than a disk. The
// returned raw bytes let the caller persist exactly what was validated.

// DefaultFetchLimit caps how many snapshot bytes one fetch will read. It
// comfortably exceeds any bundle a default-config server can serve (pattern
// bytes are bounded by MaxDictBytes=16 MiB, tables are linear in them).
const DefaultFetchLimit = 256 << 20

// StatusError is a fetch that reached the peer and got a non-200 answer.
// The code lets retry policy distinguish "peer is struggling" (5xx, worth
// retrying) from "peer simply lacks the bundle" (4xx, ask someone else).
type StatusError struct {
	URL  string
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("persist: fetch %s: peer answered %d", e.URL, e.Code)
}

// ErrBadBundle marks a fetch whose bytes arrived but failed validation.
// Bundles are immutable content, so re-fetching the same bytes from the
// same peer cannot help — not retryable.
var ErrBadBundle = errors.New("persist: fetched bundle invalid")

// RetryableFetch reports whether a FetchBundle error is worth retrying
// against the same peer: transport errors and 5xx answers are; 4xx
// answers, invalid bundles, and the caller's own context expiry are not.
func RetryableFetch(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return !errors.Is(err, ErrBadBundle)
}

// FetchBundle downloads the snapshot bundle for dictionary id from a peer's
// base URL and decodes it. limit <= 0 selects DefaultFetchLimit; client ==
// nil uses http.DefaultClient. On success it returns the validated raw bytes
// (ready for PutBytes) plus the decoded dictionary and automaton (nil when
// the bundle carries no DENSE section).
func FetchBundle(ctx context.Context, client *http.Client, base, id string, limit int64) ([]byte, *core.Dictionary, *dense.Automaton, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if limit <= 0 {
		limit = DefaultFetchLimit
	}
	u := base + "/v1/dicts/" + url.PathEscape(id) + "/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("persist: fetch %s: %w", u, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("persist: fetch %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil, nil, &StatusError{URL: u, Code: resp.StatusCode}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("persist: fetch %s: %w", u, err)
	}
	if int64(len(data)) > limit {
		return nil, nil, nil, fmt.Errorf("persist: fetch %s: bundle exceeds %d bytes", u, limit)
	}
	d, a, err := LoadBundle(data)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: fetch %s: %w", ErrBadBundle, u, err)
	}
	return data, d, a, nil
}
