// Package bench implements the experiment harness behind cmd/benchtab and
// EXPERIMENTS.md. The paper is an extended abstract with no empirical
// tables; its evaluation is the set of claimed complexity bounds
// (Theorems 3.1–3.3, 4.2, 4.3, 5.3 and the §3.2 structure bounds) plus the
// prior-work comparisons of §1.1. Each experiment here measures one claim
// on the PRAM simulator — work and depth counters are the reproduction
// currency (see DESIGN.md §3) — and prints a table whose *shape* (who
// wins, what grows, where crossovers fall) is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Experiment is one runnable table generator.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper's asserted bound or statement
	Run   func(w io.Writer, scale Scale)
}

// Scale selects experiment sizes.
type Scale int

const (
	// Quick keeps every experiment under a few seconds (CI-friendly).
	Quick Scale = iota
	// Full uses the sizes reported in EXPERIMENTS.md.
	Full
)

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Quick {
		return q
	}
	return f
}

// table is a minimal fixed-width table printer.
type table struct {
	w      io.Writer
	header []string
	widths []int
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: w, header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

func (t *table) row(cells ...interface{}) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			r[i] = v
		case float64:
			r[i] = formatFloat(v)
		case int:
			r[i] = fmt.Sprintf("%d", v)
		case int64:
			r[i] = fmt.Sprintf("%d", v)
		case time.Duration:
			r[i] = v.Round(time.Microsecond).String()
		default:
			r[i] = fmt.Sprint(v)
		}
		if len(r[i]) > t.widths[i] {
			t.widths[i] = len(r[i])
		}
	}
	t.rows = append(t.rows, r)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (t *table) flush() {
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(t.w, "| %-*s ", t.widths[i], c)
		}
		fmt.Fprintln(t.w, "|")
	}
	line(t.header)
	for i, w := range t.widths {
		fmt.Fprint(t.w, "|")
		for j := 0; j < w+2; j++ {
			fmt.Fprint(t.w, "-")
		}
		if i == len(t.widths)-1 {
			fmt.Fprintln(t.w, "|")
		}
	}
	for _, r := range t.rows {
		line(r)
	}
}

// log2 of an int, as float.
func log2(n int) float64 { return math.Log2(float64(n)) }

// All returns every experiment in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		E1MatchingScaling(),
		E2Preprocessing(),
		E3Alphabet(),
		E4Baselines(),
		E5Checker(),
		E6NCA(),
		E7LZCompress(),
		E8LZUncompress(),
		E9StaticParse(),
		E10SuffixTree(),
		E11Fingerprint(),
		E12PhraseCounts(),
		E13Distributed(),
		E14Adaptive(),
		E15Serving(),
		E16Streaming(),
		E17Persistence(),
		E18Dense(),
		E19BatchedServing(),
		E20Czsearch(),
		E21Cluster(),
		E22Resilience(),
	}
}
