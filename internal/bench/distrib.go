package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/distrib"
	"repro/internal/textgen"
)

// E13Distributed measures the §1.2 distributed sketch: matching cost and
// communication as the workstation count grows, plus the randomized-vs-
// deterministic string-equality gap of [29].
func E13Distributed() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Distributed dictionary matching and randomized equality (§1.2, [24], [29])",
		Claim: "the algorithms distribute with communication O(d·W + n); remote equality needs randomization to beat n bytes",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1013)
			n := scale.pick(1<<16, 1<<19)
			text, patterns := gen.PlantedDictionary(n, 40, 12, 997, 4)
			var d int
			for _, p := range patterns {
				d += len(p)
			}
			t := newTable(w, "workers", "wall", "messages", "bytes", "bytes/n")
			for _, workers := range []int{1, 2, 4, 8, 16} {
				c := distrib.NewCluster(workers)
				t0 := time.Now()
				c.Match(patterns, text, 9)
				wall := time.Since(t0)
				s := c.Stats()
				t.row(workers, wall, s.Messages, s.Bytes, float64(s.Bytes)/float64(n))
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: bytes ≈ (d+8)·W + 9n grows only mildly with W (halos + broadcast)")

			fmt.Fprintln(w, "\nremote string equality (Yao [29]):")
			t2 := newTable(w, "len", "randomized bytes", "deterministic bytes", "ratio")
			c := distrib.NewCluster(2)
			for _, l := range []int{1 << 10, 1 << 14, 1 << 18} {
				a := gen.Uniform(l, 4)
				_, exch, det := c.EqualExchange(a, a, 3)
				t2.row(l, exch, det, float64(det)/float64(exch))
			}
			t2.flush()
		},
	}
}
