// E19 and the B-series: batched request execution (internal/batch,
// DESIGN §13). The claim under test is the admission-side payoff of
// coalescing concurrent small requests into one machine dispatch over a
// separator-joined text: the per-request fixed costs the P-series exposed
// (machine setup, super-step coordination, per-call table builds, the Las
// Vegas check round) amortize across the batch, multiplying small-request
// throughput at high client concurrency while the demuxed responses stay
// byte-identical to solo serving. The series drives the server's in-process
// entry points (server.Match — the same serveMatch routing the HTTP
// handlers use) so it measures the serving dispatch the coalescer operates
// on, not the JSON/base64 framing that is identical under both configs; the
// HTTP-level byte-identity is pinned separately by the equivalence suite
// and fuzzer in internal/server.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/textgen"
)

// BatchPerfResult is one B-series measurement for BENCH_PR7.json: the same
// concurrent small-request workload served with coalescing off ("solo") and
// on ("batch").
type BatchPerfResult struct {
	ID        string  `json:"id"`     // B-series experiment id
	Name      string  `json:"name"`   // workload name
	Config    string  `json:"config"` // "solo" or "batch"
	Engine    string  `json:"engine"` // "tree" or "dense"
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	TextLen   int     `json:"textLen"`
	NsPerReq  int64   `json:"nsPerReq"`
	ReqPerSec float64 `json:"reqPerSec"`
	// Batch rows only.
	Speedup       float64 `json:"speedup,omitempty"`       // solo ns/req / batch ns/req
	Batches       int64   `json:"batches,omitempty"`       // dispatches formed
	MeanOccupancy float64 `json:"meanOccupancy,omitempty"` // requests per dispatch
	Identical     bool    `json:"identical,omitempty"`     // results identical to solo
}

// batchBenchClients is the client concurrency of the B-series sweep.
const batchBenchClients = 64

// batchBenchCases is the (engine, textLen) sweep: the tree rows trace how
// the amortizable fixed cost fades as per-byte matching work grows; the
// dense row is the floor — its solo path is already one table load per
// byte, so coalescing has almost nothing left to amortize there.
var batchBenchCases = []struct {
	Engine  string
	TextLen int
}{
	{"tree", 8},
	{"tree", 16},
	{"tree", 64},
	{"tree", 256},
	{"dense", 64},
}

// batchBenchServer builds a serving stack with one registered planted
// dictionary and returns it with the dictionary id. Registration goes
// through POST /v1/dicts so the dense path is armed exactly as in
// production (DenseOn compiles synchronously).
func batchBenchServer(denseMode, batchMode string, patterns [][]byte) (*server.Server, string, error) {
	srv, err := server.New(server.Config{
		Procs:       perfProcs,
		MaxDicts:    4,
		MaxInflight: 1024,
		DenseMode:   denseMode,
		BatchMode:   batchMode,
		// Closed-loop tuning: with a fixed client population, a batch one
		// short of the size trigger would idle the full default 500µs (no
		// 33rd client exists to fill it while 32 wait inside the batch), so
		// size the trigger to the population and keep the delay bound tight.
		BatchMaxRequests: batchBenchClients,
		BatchMaxDelay:    100 * time.Microsecond,
		Log:              log.New(io.Discard, "", 0),
	})
	if err != nil {
		return nil, "", err
	}
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	body, _ := json.Marshal(map[string]any{"patterns": patStrs, "seed": 7})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dicts", bytes.NewReader(body)))
	if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
		return nil, "", fmt.Errorf("register: status %d %s", rec.Code, rec.Body.String())
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		return nil, "", err
	}
	return srv, created.ID, nil
}

// batchBenchTexts slices count distinct textLen-byte requests out of the
// planted base text.
func batchBenchTexts(text []byte, count, textLen int) [][]byte {
	texts := make([][]byte, count)
	for i := range texts {
		off := (i * 769) % (len(text) - textLen)
		texts[i] = text[off : off+textLen]
	}
	return texts
}

// batchBenchDrive fires total requests at the server from clients
// goroutines (round-robin over the texts) and returns the wall time.
func batchBenchDrive(srv *server.Server, id string, texts [][]byte, clients, total int) time.Duration {
	ctx := context.Background()
	per := total / clients
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, _, err := srv.Match(ctx, id, texts[(c*per+i)%len(texts)]); err != nil {
					panic(err)
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(t0)
}

// batchBenchMetrics reads the /metrics batch section off the server.
func batchBenchMetrics(srv *server.Server) (batches, requests int64) {
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap struct {
		Batch struct {
			Batches  int64 `json:"batches"`
			Requests int64 `json:"requests"`
		} `json:"batch"`
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &snap)
	return snap.Batch.Batches, snap.Batch.Requests
}

// batchBenchIdentical verifies the equivalence half of the B-series claim:
// every text answered by the batch server under concurrency matches the
// solo server's sequential answer (positions, pattern ids, attempt counts,
// engine label).
func batchBenchIdentical(solo, batched *server.Server, soloID, batchID string, texts [][]byte) bool {
	ctx := context.Background()
	type answer struct {
		matches  []core.Match
		attempts int
		engine   string
	}
	want := make([]answer, len(texts))
	for i, tx := range texts {
		m, att, eng, err := solo.Match(ctx, soloID, tx)
		if err != nil {
			return false
		}
		want[i] = answer{m, att, eng}
	}
	same := make([]bool, len(texts))
	var wg sync.WaitGroup
	for i, tx := range texts {
		wg.Add(1)
		go func(i int, tx []byte) {
			defer wg.Done()
			m, att, eng, err := batched.Match(ctx, batchID, tx)
			same[i] = err == nil && att == want[i].attempts && eng == want[i].engine &&
				reflect.DeepEqual(m, want[i].matches)
		}(i, tx)
	}
	wg.Wait()
	for _, ok := range same {
		if !ok {
			return false
		}
	}
	return true
}

// RunBatchPerf measures the B-series: solo vs batched serving of the same
// concurrent small-request load across the (engine, textLen) sweep.
func RunBatchPerf(scale Scale) []BatchPerfResult {
	total := scale.pick(4096, 32768)
	total -= total % batchBenchClients
	gen := textgen.New(20260808)
	text, patterns := gen.PlantedDictionary(1<<17, 4096, 24, 211, 26)

	var out []BatchPerfResult
	for i, c := range batchBenchCases {
		denseMode := server.DenseOff
		if c.Engine == "dense" {
			denseMode = server.DenseOn
		}
		solo, soloID, err := batchBenchServer(denseMode, server.BatchOff, patterns)
		if err != nil {
			panic(err)
		}
		batched, batchID, err := batchBenchServer(denseMode, server.BatchOn, patterns)
		if err != nil {
			panic(err)
		}
		texts := batchBenchTexts(text, 64, c.TextLen)
		identical := batchBenchIdentical(solo, batched, soloID, batchID, texts)

		// Warm both stacks (pools, dense verify sampling, scheduler) off
		// the clock, then time the same load on each.
		warm := total / 8
		batchBenchDrive(solo, soloID, texts, batchBenchClients, warm)
		batchBenchDrive(batched, batchID, texts, batchBenchClients, warm)
		preBatches, preReqs := batchBenchMetrics(batched)

		soloWall := batchBenchDrive(solo, soloID, texts, batchBenchClients, total)
		batchWall := batchBenchDrive(batched, batchID, texts, batchBenchClients, total)
		batches, reqs := batchBenchMetrics(batched)
		batches -= preBatches
		reqs -= preReqs

		id := fmt.Sprintf("B%d", i+1)
		name := fmt.Sprintf("match_%s_%dB", c.Engine, c.TextLen)
		soloNs := soloWall.Nanoseconds() / int64(total)
		batchNs := batchWall.Nanoseconds() / int64(total)
		out = append(out, BatchPerfResult{
			ID: id, Name: name, Config: "solo", Engine: c.Engine,
			Clients: batchBenchClients, Requests: total, TextLen: c.TextLen,
			NsPerReq: soloNs, ReqPerSec: float64(total) / soloWall.Seconds(),
		})
		occupancy := 0.0
		if batches > 0 {
			occupancy = float64(reqs) / float64(batches)
		}
		out = append(out, BatchPerfResult{
			ID: id, Name: name, Config: "batch", Engine: c.Engine,
			Clients: batchBenchClients, Requests: total, TextLen: c.TextLen,
			NsPerReq: batchNs, ReqPerSec: float64(total) / batchWall.Seconds(),
			Speedup:       float64(soloNs) / float64(max(batchNs, 1)),
			Batches:       batches,
			MeanOccupancy: occupancy,
			Identical:     identical,
		})
	}
	return out
}

// E19BatchedServing prints the human-readable B-series table: dispatch
// throughput with coalescing off vs on at fixed client concurrency, plus
// the occupancy that explains the win.
func E19BatchedServing() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Batched execution: coalesced small requests vs solo serving (internal/batch, DESIGN §13)",
		Claim: "coalescing concurrent small requests into one machine dispatch over a separator-joined text amortizes per-request fixed costs, multiplying small-request throughput at high concurrency with results identical to solo serving",
		Run: func(w io.Writer, scale Scale) {
			results := RunBatchPerf(scale)
			t := newTable(w, "engine", "textLen", "clients", "solo req/s", "batch req/s", "speedup", "batches", "occupancy", "identical")
			for i := 0; i+1 < len(results); i += 2 {
				solo, b := results[i], results[i+1]
				t.row(solo.Engine, solo.TextLen, solo.Clients,
					fmt.Sprintf("%.0f", solo.ReqPerSec), fmt.Sprintf("%.0f", b.ReqPerSec),
					fmt.Sprintf("%.1fx", b.Speedup),
					b.Batches, fmt.Sprintf("%.1f", b.MeanOccupancy),
					fmt.Sprintf("%v", b.Identical))
			}
			t.flush()
			fmt.Fprintln(w, "\nexpected shape: the small tree rows clear the 3x bar — the amortized pool is the per-request dispatch scaffolding plus the per-invocation Step-1A anchor work, which grows with dictionary size — the speedup fades as per-byte matching work grows (256B row), and the dense row is the floor: its solo path is already one table load per byte, so coalescing only adds admission overhead there")
		},
	}
}
