package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// E1MatchingScaling measures Theorem 3.1's text-processing bounds: after
// preprocessing, matching a text of length n takes O(n) work and O(log d)
// time, independent of the dictionary size d. Two sweeps: n with d fixed
// (work/n flat), and d with n fixed (work/n flat, depth tracking log^2 d —
// our Step 1A substitution's documented extra log, DESIGN.md §4).
func E1MatchingScaling() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Dictionary matching: text work/depth scaling (Theorem 3.1)",
		Claim: "matching work O(n), time O(log d), independent of d",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1001)
			dictSize := scale.pick(64, 256)
			patterns := gen.Dictionary(dictSize, 4, 24, 4)
			mPre := pram.NewSequential()
			dict := core.Preprocess(mPre, patterns, core.Options{Seed: 1})

			fmt.Fprintln(w, "sweep A: text length n (d fixed)")
			t := newTable(w, "n", "work", "work/n", "depth", "depth/log^2 d")
			nMax := scale.pick(1<<14, 1<<17)
			var d int
			for _, p := range patterns {
				d += len(p)
			}
			l2 := log2(d) * log2(d)
			for n := nMax / 16; n <= nMax; n *= 2 {
				text := gen.Uniform(n, 4)
				m := pram.NewSequential()
				matches := dict.MatchText(m, text)
				_ = matches
				wk, dp := m.Counters()
				t.row(n, wk, float64(wk)/float64(n), dp, float64(dp)/l2)
			}
			t.flush()

			fmt.Fprintln(w, "\nsweep B: dictionary size d (n fixed) — text cost must not grow with d; anchor ablation")
			t2 := newTable(w, "d", "anchor", "work", "work/n", "depth", "depth/log d")
			n := scale.pick(1<<13, 1<<15)
			text := gen.Uniform(n, 4)
			for k := scale.pick(8, 16); k <= scale.pick(512, 4096); k *= 4 {
				ps := gen.Dictionary(k, 4, 24, 4)
				var dd int
				for _, p := range ps {
					dd += len(p)
				}
				for _, a := range []struct {
					name string
					s    core.AnchorStrategy
				}{{"separator", core.AnchorSeparator}, {"sa-binsearch", core.AnchorSA}} {
					dct := core.Preprocess(pram.NewSequential(), ps, core.Options{Seed: 1, Anchor: a.s})
					m := pram.NewSequential()
					dct.MatchText(m, text)
					wk, dp := m.Counters()
					t2.row(dd, a.name, wk, float64(wk)/float64(n), dp, float64(dp)/log2(dd))
				}
			}
			t2.flush()
			fmt.Fprintln(w, "expected shape: work/n flat for both anchors; separator depth tracks log d (the paper's Step 1A via [5]), SA-binsearch depth tracks log^2 d")
		},
	}
}

// E2Preprocessing measures Theorem 3.1's preprocessing bound: O(d) work,
// O(log d) time (our pipeline carries documented log-factor substitutions,
// so the fitted exponent of work against d is reported).
func E2Preprocessing() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Dictionary preprocessing scaling (Theorem 3.1)",
		Claim: "preprocessing work O(d), time O(log d)",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1002)
			t := newTable(w, "d", "work", "work/d", "work/(d log d)", "depth", "wall")
			for k := scale.pick(16, 32); k <= scale.pick(1024, 8192); k *= 4 {
				patterns := gen.Dictionary(k, 4, 24, 4)
				var d int
				for _, p := range patterns {
					d += len(p)
				}
				m := pram.NewSequential()
				start := time.Now()
				core.Preprocess(m, patterns, core.Options{Seed: 1})
				wall := time.Since(start)
				wk, dp := m.Counters()
				t.row(d, wk, float64(wk)/float64(d), float64(wk)/(float64(d)*log2(d)), dp, wall)
			}
			t.flush()
		},
	}
}

// E3Alphabet measures the alphabet-size effects of Theorems 3.1-3.3: the
// naive (constant-alphabet) NCA keeps per-position work O(1); large
// alphabets pay the van Emde Boas log log factor; the comparison-model
// reduction (binary encoding) pays log sigma in string length.
func E3Alphabet() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Alphabet effects (Theorems 3.1, 3.2, 3.3)",
		Claim: "O(n) work for constant alphabets; loglog d factor for polynomial; log sigma via binary encoding",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1003)
			n := scale.pick(1<<13, 1<<15)
			t := newTable(w, "sigma", "nca", "text work", "work/n", "depth", "wall")
			for _, sigma := range []int{2, 4, 16, 64, 256} {
				patterns := gen.Dictionary(scale.pick(32, 128), 4, 16, sigma)
				text := gen.Uniform(n, sigma)
				for _, variant := range []core.NCAVariant{core.NCANaive, core.NCAImproved} {
					name := "naive"
					if variant == core.NCAImproved {
						name = "veb"
					}
					dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1, NCA: variant})
					m := pram.NewSequential()
					t0 := time.Now()
					dict.MatchText(m, text)
					wall := time.Since(t0)
					wk, dp := m.Counters()
					t.row(sigma, name, wk, float64(wk)/float64(n), dp, wall)
				}
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: naive work/n constant (Thm 3.1); veb work/n larger by the charged loglog d query factor (Thm 3.2)")

			fmt.Fprintln(w, "\ncomparison-model reduction: binary-encode symbols (Theorem 3.3)")
			t2 := newTable(w, "sigma", "encoding", "n_effective", "text work", "work/n_orig")
			for _, sigma := range []int{4, 16, 64} {
				patterns := gen.Dictionary(scale.pick(32, 128), 4, 16, sigma)
				text := gen.Uniform(n, sigma)
				// Direct.
				dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1})
				m := pram.NewSequential()
				dict.MatchText(m, text)
				wk, _ := m.Counters()
				t2.row(sigma, "direct", n, wk, float64(wk)/float64(n))
				// Binary-encoded: log sigma bits per symbol.
				encPat := make([][]byte, len(patterns))
				for i, p := range patterns {
					encPat[i] = binaryEncode(p, sigma)
				}
				encText := binaryEncode(text, sigma)
				dict2 := core.Preprocess(pram.NewSequential(), encPat, core.Options{Seed: 1})
				m2 := pram.NewSequential()
				dict2.MatchText(m2, encText)
				wk2, _ := m2.Counters()
				t2.row(sigma, "binary", len(encText), wk2, float64(wk2)/float64(n))
			}
			t2.flush()
		},
	}
}

// binaryEncode expands each symbol of s (drawn from an alphabet of size
// sigma, offset 'a') into ceil(log2 sigma) bits, realizing the Theorem
// 3.1/3.3 reduction.
func binaryEncode(s []byte, sigma int) []byte {
	bits := 1
	for 1<<bits < sigma {
		bits++
	}
	out := make([]byte, 0, len(s)*bits)
	for _, c := range s {
		v := int(c - 'a')
		for b := bits - 1; b >= 0; b-- {
			out = append(out, byte('0'+(v>>b)&1))
		}
	}
	return out
}

// E4Baselines compares the work-optimal matcher against (a) the sequential
// Aho–Corasick automaton [3] (the classical optimal baseline: total ops
// should be within a constant factor) and (b) a naive parallel matcher that
// re-walks the trie at every position, whose work grows with the pattern
// length m — the regime the pre-1995 parallel algorithms ([22]: O(n sqrt
// log m), earlier: O(n log m)) sit between.
func E4Baselines() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Head-to-head vs Aho–Corasick and naive parallel matching (§1.1)",
		Claim: "previous parallel work bounds grow with m; the paper's (and AC's sequential) work does not",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1004)
			n := scale.pick(1<<13, 1<<15)
			t := newTable(w, "m (pattern len)", "parallel work/n", "naive-par work/n", "AC wall", "parallel wall")
			for _, m0 := range []int{4, 16, 64, 256} {
				// Worst-case workload for per-position re-matching: the
				// unary dictionary {a, aa, ..., a^m} on text a^n — every
				// position matches a pattern of length ~m, so the naive
				// parallel matcher does Θ(n·m) work while AC and the
				// work-optimal matcher stay linear.
				_ = gen
				pats := make([][]byte, m0)
				for k := 1; k <= m0; k++ {
					pats[k-1] = make([]byte, k)
					for j := range pats[k-1] {
						pats[k-1][j] = 'a'
					}
				}
				text := make([]byte, n)
				for j := range text {
					text[j] = 'a'
				}
				dict := core.Preprocess(pram.NewSequential(), pats, core.Options{Seed: 1})
				m := pram.NewSequential()
				t0 := time.Now()
				dict.MatchText(m, text)
				wallPar := time.Since(t0)
				wk, _ := m.Counters()

				ac := ahocorasick.New(pats)
				t1 := time.Now()
				ac.Match(text)
				wallAC := time.Since(t1)

				naive := naiveParallelWork(pats, text)
				t.row(m0, float64(wk)/float64(n), float64(naive)/float64(n), wallAC, wallPar)
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: the work-optimal matcher's work/n stays flat as m grows, like sequential AC; the naive parallel matcher's work/n grows with planted-match length (the pre-1995 parallel regime)")
		},
	}
}

// naiveParallelWork counts the operations of the trivially parallel
// matcher: every position independently walks the dictionary trie to its
// longest match — O(n·m) work, the quantity the optimal algorithm avoids.
func naiveParallelWork(patterns [][]byte, text []byte) int64 {
	type node struct{ next map[byte]int32 }
	trie := []node{{next: map[byte]int32{}}}
	for _, p := range patterns {
		cur := int32(0)
		for _, c := range p {
			nxt, ok := trie[cur].next[c]
			if !ok {
				nxt = int32(len(trie))
				trie[cur].next[c] = nxt
				trie = append(trie, node{next: map[byte]int32{}})
			}
			cur = nxt
		}
	}
	var work int64
	for i := range text {
		cur := int32(0)
		for j := i; j < len(text); j++ {
			nxt, ok := trie[cur].next[text[j]]
			if !ok {
				break
			}
			work++
			cur = nxt
		}
		work++
	}
	return work
}

// E5Checker measures the §3.4 Las Vegas checker: its cost relative to
// matching, and its detection power under fault injection.
func E5Checker() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Las Vegas checker cost and detection (§3.4, Lemma 3.4)",
		Claim: "checking is O(n) work / O(log n) time and certifies the output",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1005)
			rng := rand.New(rand.NewPCG(42, 43))
			n := scale.pick(1<<13, 1<<15)
			patterns := gen.Dictionary(scale.pick(32, 128), 3, 12, 3)
			dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1})
			text := gen.Uniform(n, 3)

			m := pram.NewSequential()
			matches := dict.MatchText(m, text)
			wkMatch, dpMatch := m.Counters()
			m.ResetCounters()
			okResult := dict.Check(m, text, matches)
			wkCheck, dpCheck := m.Counters()

			t := newTable(w, "quantity", "match", "check", "check/match")
			t.row("work", wkMatch, wkCheck, float64(wkCheck)/float64(wkMatch))
			t.row("depth", dpMatch, dpCheck, float64(dpCheck)/float64(dpMatch))
			t.flush()
			fmt.Fprintf(w, "checker accepts correct output: %v\n", okResult)

			// Fault injection: flip random positions to false claims.
			injected, caught := 0, 0
			for f := 0; f < scale.pick(100, 400); f++ {
				bad := append([]core.Match(nil), matches...)
				i := rng.IntN(n)
				k := int32(rng.IntN(len(patterns)))
				pl := int32(len(patterns[k]))
				if i+int(pl) <= n && string(text[i:i+int(pl)]) == string(patterns[k]) {
					continue // accidentally true
				}
				bad[i] = core.Match{PatternID: k, Length: pl}
				injected++
				if !dict.Check(pram.NewSequential(), text, bad) {
					caught++
				}
			}
			fmt.Fprintf(w, "fault injection: %d/%d false claims detected (want all)\n", caught, injected)
		},
	}
}
