// E18 and the C-series: the compiled dense automaton (internal/dense). The
// claim under test is the serving-side payoff of compiling the prepared
// dictionary into a flat goto∪failure table: matching throughput per core is
// a large constant factor over the tree walk (no hash probes, no node
// chasing — one load per text byte), the compile is a one-time cost linear
// in the table, and restoring the DENSE snapshot section replaces the
// compile entirely.
package bench

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// DensePerfResult is one C-series measurement for BENCH_PR6.json: the same
// (dictionary, text) workload matched by the tree walk and by the compiled
// dense automaton, plus the dense path's one-time costs.
type DensePerfResult struct {
	ID       string  `json:"id"`     // C-series experiment id
	Name     string  `json:"name"`   // workload name
	Config   string  `json:"config"` // "tree" or "dense"
	Patterns int     `json:"patterns"`
	Sigma    int     `json:"sigma"`
	TextLen  int     `json:"textLen"`
	NsPerOp  int64   `json:"nsPerOp"`
	MBPerSec float64 `json:"mbPerSec"`
	// Dense rows only.
	Speedup    float64 `json:"speedup,omitempty"`    // tree ns / dense ns
	CompileNs  int64   `json:"compileNs,omitempty"`  // one-time table build
	TableBytes int64   `json:"tableBytes,omitempty"` // next[][] footprint
	RestoreNs  int64   `json:"restoreNs,omitempty"`  // DENSE section -> automaton
}

// denseCases returns the (pattern count, max pattern length, alphabet)
// sweep. Small alphabets stress the planted-hit density, large ones the
// table width.
func denseCases(scale Scale) [][3]int {
	if scale == Quick {
		return [][3]int{{16, 8, 4}, {128, 16, 26}}
	}
	return [][3]int{{16, 8, 4}, {64, 16, 4}, {128, 16, 26}, {512, 24, 26}, {1024, 32, 64}}
}

// RunDensePerf measures the C-series across the dictionary sweep.
func RunDensePerf(scale Scale) []DensePerfResult {
	textLen := scale.pick(1<<17, 1<<20)
	var out []DensePerfResult
	for i, c := range denseCases(scale) {
		k, plen, sigma := c[0], c[1], c[2]
		id := fmt.Sprintf("C%d", i+1)
		name := fmt.Sprintf("match_k%d_sigma%d", k, sigma)
		gen := textgen.New(uint64(7919 + i))
		patterns := gen.Dictionary(k, plen/2, plen, sigma)
		text := gen.Uniform(textLen, sigma)

		m := pram.NewSequential()
		dict := core.Preprocess(m, patterns, core.Options{Seed: 5})
		treeNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				dict.MatchText(m, text)
			}
		}).NsPerOp()
		out = append(out, DensePerfResult{
			ID: id, Name: name, Config: "tree",
			Patterns: k, Sigma: sigma, TextLen: textLen,
			NsPerOp:  treeNs,
			MBPerSec: mbPerSec(textLen, treeNs),
		})

		aut, err := dense.CompileDictionary(dict, dense.Options{})
		if err != nil {
			panic(err) // sweep sizes are far below any table budget
		}
		compileNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				dense.CompileDictionary(dict, dense.Options{})
			}
		}).NsPerOp()
		payload := aut.Encode()
		restoreNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				dense.Restore(payload, patterns)
			}
		}).NsPerOp()
		buf := make([]core.Match, len(text))
		denseNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				aut.MatchInto(text, buf)
			}
		}).NsPerOp()
		out = append(out, DensePerfResult{
			ID: id, Name: name, Config: "dense",
			Patterns: k, Sigma: sigma, TextLen: textLen,
			NsPerOp:    denseNs,
			MBPerSec:   mbPerSec(textLen, denseNs),
			Speedup:    float64(treeNs) / float64(denseNs),
			CompileNs:  compileNs,
			TableBytes: aut.Stats().TableBytes,
			RestoreNs:  restoreNs,
		})
	}
	return out
}

func mbPerSec(n int, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(n) / float64(nsPerOp) * 1e9 / 1e6
}

// E18Dense prints the human-readable C-series table plus the amortization
// view: how many scanned bytes a compile (or a snapshot restore) costs at
// dense throughput.
func E18Dense() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Dense automaton: compiled serving path vs tree walk (internal/dense, DESIGN §12)",
		Claim: "pre-resolving goto∪failure into a flat table yields a large constant-factor throughput win per core over the tree walk, for a one-time compile linear in the table that a DENSE snapshot section replaces entirely",
		Run: func(w io.Writer, scale Scale) {
			results := RunDensePerf(scale)
			t := newTable(w, "patterns", "sigma", "tree MB/s", "dense MB/s", "speedup", "compile ns", "table KiB", "restore ns")
			for i := 0; i+1 < len(results); i += 2 {
				tree, dn := results[i], results[i+1]
				t.row(tree.Patterns, tree.Sigma,
					fmt.Sprintf("%.1f", tree.MBPerSec), fmt.Sprintf("%.1f", dn.MBPerSec),
					fmt.Sprintf("%.1fx", dn.Speedup),
					dn.CompileNs, dn.TableBytes/1024, dn.RestoreNs)
			}
			t.flush()
			fmt.Fprintln(w, "\nrestore vs compile: loading the DENSE section is the compile's output re-read")
			t2 := newTable(w, "patterns", "compile/restore", "compile amortized at (bytes)")
			for i := 1; i < len(results); i += 2 {
				dn := results[i]
				// compileNs at dense throughput: ns * MB/s * 1e-3 = bytes.
				t2.row(dn.Patterns,
					fmt.Sprintf("%.1fx", float64(dn.CompileNs)/float64(max(dn.RestoreNs, 1))),
					int64(float64(dn.CompileNs)*dn.MBPerSec*1e-3))
			}
			t2.flush()
		},
	}
}
