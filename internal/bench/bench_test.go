package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run to completion at Quick scale and produce a
// table (at least one header separator line) without error markers.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, Quick)
			out := buf.String()
			if !strings.Contains(out, "|--") {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
			if strings.Contains(out, "ERROR") {
				t.Fatalf("%s reported an error:\n%s", e.ID, out)
			}
		})
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Claim == "" || e.Title == "" {
			t.Fatalf("%s missing metadata", e.ID)
		}
	}
	if len(seen) != 22 {
		t.Fatalf("expected 22 experiments, have %d", len(seen))
	}
}

func TestTablePrinterAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable(&buf, "a", "long-header")
	tb.row(12345, 1.5)
	tb.row("x", "y")
	tb.flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Fatalf("misaligned table:\n%s", buf.String())
		}
	}
}

func TestBinaryEncode(t *testing.T) {
	// sigma=4 -> 2 bits: 'a'->00, 'b'->01, 'c'->10, 'd'->11.
	got := string(binaryEncode([]byte("abcd"), 4))
	if got != "0001"+"10"+"11" {
		t.Fatalf("binaryEncode = %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0.00",
		1.234:   "1.23",
		12345:   "12345",
		0.00001: "1.00e-05",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q want %q", in, got, want)
		}
	}
}
