package bench

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/server"
	"repro/internal/textgen"
)

// E15Serving measures the serving layer (internal/server): how the
// preprocess-once/match-many split amortizes the §3 preprocessing cost, in
// PRAM work, and what request throughput the HTTP service sustains as
// client concurrency grows.
func E15Serving() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Serving: preprocess-once amortization and matchd throughput (§3, ROADMAP)",
		Claim: "a resident preprocessed dictionary amortizes preprocessing across requests; per-request work converges to the pure matching cost",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(2027)
			n := scale.pick(1<<13, 1<<16)
			text, patterns := gen.PlantedDictionary(n, 32, 10, 211, 4)

			// Part 1 — amortization in exact PRAM work. The one-shot
			// regime (the CLIs) pays preprocessing on every request; the
			// registry pays it once.
			pm := pram.NewSequential()
			dict := core.Preprocess(pm, patterns, core.Options{Seed: 7})
			preWork, _ := pm.Counters()
			pm.ResetCounters()
			dict.MatchText(pm, text)
			matchWork, _ := pm.Counters()

			t := newTable(w, "requests", "one-shot work/req", "resident work/req", "ratio")
			for _, reqs := range []int{1, 10, 100, 1000} {
				oneShot := float64(preWork + matchWork)
				resident := (float64(preWork) + float64(reqs)*float64(matchWork)) / float64(reqs)
				t.row(reqs, formatFloat(oneShot), formatFloat(resident), oneShot/resident)
			}
			t.flush()
			fmt.Fprintf(w, "expected shape: resident work/req → pure matching cost (%d) as requests grow; preprocessing (%d) is paid once\n\n",
				matchWork, preWork)

			// Part 2 — measured throughput of the real HTTP service under
			// concurrent clients, one resident dictionary.
			srv, err := server.New(server.Config{
				Procs:       1, // per-request machines; concurrency comes from the clients
				MaxDicts:    4,
				MaxInflight: 256,
				Log:         log.New(io.Discard, "", 0),
			})
			if err != nil {
				fmt.Fprintf(w, "server setup failed: %v\n", err)
				return
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			patStrs := make([]string, len(patterns))
			for i, p := range patterns {
				patStrs[i] = string(p)
			}
			body, _ := json.Marshal(map[string]any{"patterns": patStrs, "seed": 7})
			resp, err := http.Post(ts.URL+"/v1/dicts", "application/json", bytes.NewReader(body))
			if err != nil {
				fmt.Fprintf(w, "register failed: %v\n", err)
				return
			}
			var created struct {
				ID string `json:"id"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&created)
			resp.Body.Close()

			reqBody, _ := json.Marshal(map[string]any{
				"textB64": base64.StdEncoding.EncodeToString(text),
			})
			url := fmt.Sprintf("%s/v1/dicts/%s/match", ts.URL, created.ID)
			total := scale.pick(48, 256)
			t2 := newTable(w, "clients", "requests", "wall", "req/s", "MB/s matched")
			for _, clients := range []int{1, 2, 4, 8} {
				var wg sync.WaitGroup
				t0 := time.Now()
				per := total / clients
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							r, err := http.Post(url, "application/json", bytes.NewReader(reqBody))
							if err != nil {
								continue
							}
							io.Copy(io.Discard, r.Body)
							r.Body.Close()
						}
					}()
				}
				wg.Wait()
				wall := time.Since(t0)
				done := per * clients
				rps := float64(done) / wall.Seconds()
				t2.row(clients, done, wall, rps, rps*float64(n)/1e6)
			}
			t2.flush()
			fmt.Fprintln(w, "expected shape: req/s grows with clients until cores saturate; no request pays preprocessing")
		},
	}
}
