// E22 and the R-series: the partition-tolerance layer's two-sided bill
// (internal/resilience, DESIGN §16). R1 prices the healthy path — the
// same resident-mix throughput as K1 with breakers, retry budget and
// deadline stamping armed; the claim is that bookkeeping on every
// outbound RPC costs ≤3%. R2 prices the failure path — a black-holed
// primary owner (connections accepted, bytes never answered) behind a
// proxying router; without breakers every proxied request pays the
// hedge budget before the healthy replica answers, with breakers the
// silence is converted into slow-strikes, the circuit opens, and the
// router detours before dialing.
//
// Like the K-series, everything runs over real loopback HTTP: the
// transport measured is byte-for-byte the one matchd ships.
package bench

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// ResiliencePerfResult is one R-series measurement for BENCH_PR10.json.
type ResiliencePerfResult struct {
	ID       string `json:"id"`     // R-series experiment id
	Name     string `json:"name"`   // workload name
	Config   string `json:"config"` // "baseline", "resilient", "no-breaker", "breaker"
	Nodes    int    `json:"nodes"`
	Replicas int    `json:"replicas"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	// R1 throughput rows.
	NsPerReq  int64   `json:"nsPerReq,omitempty"`
	ReqPerSec float64 `json:"reqPerSec,omitempty"`
	// Resilient row only: (resilient − baseline) ns/req as a percentage of
	// baseline; the ISSUE's acceptance bar is ≤3.
	OverheadPct float64 `json:"overheadPct,omitempty"`
	// R2 latency rows.
	P50Ms   float64 `json:"p50Ms,omitempty"`
	P99Ms   float64 `json:"p99Ms,omitempty"`
	Speedup float64 `json:"speedup,omitempty"` // p99 vs the no-breaker row
	// Router-side breaker accounting for the R2 rows: hedge-timer silence
	// strikes charged against the black-holed peer, and transport-level
	// fast-fails (normally 0 here — the proxy filters an open peer out of
	// its candidate list before a dial ever reaches the breaker).
	SlowStrikes int64 `json:"slowStrikes,omitempty"`
	FastFails   int64 `json:"fastFails,omitempty"`
}

// r1BaseMut shapes both R1 configs identically: a 250ms hedge budget
// keeps the hedger quiet, because a 64-client closed loop saturating one
// core pushes tail latency past the default 25ms budget and the
// resulting slow-strike bursts would open breakers against peers that
// are merely overloaded — that failure mode is real (the README's
// troubleshooting table names it) but it is not what R1 prices. Hedging
// itself is priced by K3.
func r1BaseMut(cfg *server.Config) {
	cfg.ClusterHedgeAfter = 250 * time.Millisecond
}

// r1ResilientMut additionally arms the outbound-RPC layer the way
// matchd's defaults do: breakers on a 5-failure fuse, a 10% retry
// budget, and a 5ms hop floor. Deadline stamping needs no switch — with
// cluster mode on every proxied request carries X-Deadline-Ms either
// way, so R1's two configs differ only in the breaker/budget bookkeeping
// being priced.
func r1ResilientMut(cfg *server.Config) {
	r1BaseMut(cfg)
	cfg.BreakerFailures = 5
	cfg.RetryBudgetPct = 10
	cfg.HopFloor = 5 * time.Millisecond
}

// rpcStatsOf reads one node's /metrics resilience.rpc section.
func rpcStatsOf(nd *benchClusterNode) (slowStrikes, fastFails int64) {
	resp, err := http.Get(nd.base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var ms struct {
		Resilience struct {
			Rpc struct {
				SlowStrikes      int64 `json:"slowStrikes"`
				BreakerFastFails int64 `json:"breakerFastFails"`
			} `json:"rpc"`
		} `json:"resilience"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&ms)
	return ms.Resilience.Rpc.SlowStrikes, ms.Resilience.Rpc.BreakerFastFails
}

// runBlackholeTail measures R2: sequential request latency through the
// non-owner router while the router's wire to the primary owner is a
// black hole (rpc.blackhole, p=1 — connections complete, responses never
// arrive). breakerFailures 0 leaves the breaker off: recovery then waits
// on the health prober, whose probe must itself ride out the stall.
func runBlackholeTail(breakerFailures, total int, reqBody []byte) (p50, p99 time.Duration, slowStrikes, fastFails int64, err error) {
	mut := func(cfg *server.Config) {
		cfg.RPCFaultAdmin = true
		if breakerFailures > 0 {
			cfg.BreakerFailures = breakerFailures
			// Longer than the measured window: no half-open trial re-dials
			// the black hole mid-run and smears slow samples into the tail.
			cfg.BreakerCooldown = 10 * time.Second
		}
	}
	nodes, cleanup, err := startBenchCluster(3, 2, 8, 20*time.Millisecond, mut)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cleanup()
	ids, err := clusterBenchDicts(nodes, 1, 64)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	id := ids[0]

	// The ring names the owners (primary first); the one non-owner routes.
	names := make([]string, len(nodes))
	for i, nd := range nodes {
		names[i] = nd.name
	}
	ring, err := cluster.NewRing(names, cluster.DefaultVirtualNodes, 2)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	owners := ring.Owners(id)
	var router *benchClusterNode
	for _, nd := range nodes {
		if nd.name != owners[0] && nd.name != owners[1] {
			router = nd
		}
	}
	// Warm every node (replica pulls off the clock), then cut the wire:
	// the fault sits in the router's transport only, so the owners and
	// their probers see a healthy world — a one-sided partition.
	for _, nd := range nodes {
		if _, derr := clusterBenchDrive([]*benchClusterNode{nd}, ids, reqBody, 1, 4); derr != nil {
			return 0, 0, 0, 0, derr
		}
	}
	plan := fmt.Sprintf("rpc.blackhole.%s:p=1", owners[0])
	fb, _ := json.Marshal(map[string]any{"seed": 11, "plan": plan})
	resp, err := http.Post(router.base+"/v1/rpcfaults", "application/json", bytes.NewReader(fb))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, 0, fmt.Errorf("install fault plan: %d %s", resp.StatusCode, fbody)
	}

	lat := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		t0 := time.Now()
		presp, perr := http.Post(router.base+"/v1/dicts/"+id+"/match", "application/json", bytes.NewReader(reqBody))
		if perr != nil {
			return 0, 0, 0, 0, perr
		}
		body, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			return 0, 0, 0, 0, fmt.Errorf("match via router: %d %s", presp.StatusCode, body)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 = lat[len(lat)/2]
	p99 = lat[len(lat)*99/100]
	slowStrikes, fastFails = rpcStatsOf(router)
	return p50, p99, slowStrikes, fastFails, nil
}

// RunResiliencePerf measures the R-series.
func RunResiliencePerf(scale Scale) []ResiliencePerfResult {
	reqText := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte("abracadabra "), 6)[:64])
	reqBody, _ := json.Marshal(map[string]any{"textB64": reqText})
	var out []ResiliencePerfResult

	// R1 — healthy overhead: K1's resident mix on the 3-node topology,
	// resilience off vs armed.
	{
		total := scale.pick(1536, 6144)
		total -= total % clusterBenchClients
		dicts, patterns := 3, 192
		// Interleaved min-of-3 behind a discarded warmup: on one core the
		// run-to-run spread (GC, scheduler, heap growth across successive
		// in-process cluster boots) is ~±10%, an order past the effect
		// being priced. The warmup eats the first-boot penalty, the pair
		// order alternates so slow drift cannot systematically favor one
		// side, and each side keeps its best wall.
		const reps = 3
		oneRun := func(mut func(cfg *server.Config)) time.Duration {
			// Each boot leaves dead registries and snapshot buffers behind;
			// collecting them up front keeps every timed window from
			// inheriting a different GC debt.
			runtime.GC()
			wall, _, err := runClusterThroughput(3, 2, 8, dicts, patterns, total, reqBody, mut)
			if err != nil {
				panic(err)
			}
			return wall
		}
		oneRun(r1BaseMut)
		var wallBase, wallRes time.Duration
		keepMin := func(d *time.Duration, w time.Duration) {
			if *d == 0 || w < *d {
				*d = w
			}
		}
		for r := 0; r < reps; r++ {
			if r%2 == 0 {
				keepMin(&wallBase, oneRun(r1BaseMut))
				keepMin(&wallRes, oneRun(r1ResilientMut))
			} else {
				keepMin(&wallRes, oneRun(r1ResilientMut))
				keepMin(&wallBase, oneRun(r1BaseMut))
			}
		}
		nsBase := wallBase.Nanoseconds() / int64(total)
		nsRes := wallRes.Nanoseconds() / int64(total)
		out = append(out,
			ResiliencePerfResult{ID: "R1", Name: "healthy_overhead", Config: "baseline", Nodes: 3, Replicas: 2,
				Clients: clusterBenchClients, Requests: total,
				NsPerReq: nsBase, ReqPerSec: float64(total) / wallBase.Seconds()},
			ResiliencePerfResult{ID: "R1", Name: "healthy_overhead", Config: "resilient", Nodes: 3, Replicas: 2,
				Clients: clusterBenchClients, Requests: total,
				NsPerReq: nsRes, ReqPerSec: float64(total) / wallRes.Seconds(),
				OverheadPct: 100 * float64(nsRes-nsBase) / float64(nsBase)})
	}

	// R2 — black-holed peer: without breakers every proxied request eats
	// the 20ms hedge budget until the prober's own 2s probe timeout finally
	// marks the peer down, so the tail sits at hedge+service; with a
	// 3-strike breaker the router pays the budget three times, the circuit
	// opens, and everything after detours straight to the live replica.
	{
		total := scale.pick(400, 1200)
		p50n, p99n, strikesN, fastN, err := runBlackholeTail(0, total, reqBody)
		if err != nil {
			panic(err)
		}
		p50b, p99b, strikesB, fastB, err := runBlackholeTail(3, total, reqBody)
		if err != nil {
			panic(err)
		}
		out = append(out,
			ResiliencePerfResult{ID: "R2", Name: "blackholed_peer", Config: "no-breaker", Nodes: 3, Replicas: 2,
				Clients: 1, Requests: total,
				P50Ms: float64(p50n.Nanoseconds()) / 1e6, P99Ms: float64(p99n.Nanoseconds()) / 1e6,
				SlowStrikes: strikesN, FastFails: fastN},
			ResiliencePerfResult{ID: "R2", Name: "blackholed_peer", Config: "breaker", Nodes: 3, Replicas: 2,
				Clients: 1, Requests: total,
				P50Ms: float64(p50b.Nanoseconds()) / 1e6, P99Ms: float64(p99b.Nanoseconds()) / 1e6,
				Speedup:     float64(p99n) / float64(max64(int64(p99b), 1)),
				SlowStrikes: strikesB, FastFails: fastB})
	}
	return out
}

// E22Resilience prints the human-readable R-series tables.
func E22Resilience() Experiment {
	return Experiment{
		ID:    "E22",
		Title: "Partition tolerance: healthy-path overhead and breaker-guarded tails (internal/resilience, DESIGN §16)",
		Claim: "per-peer circuit breakers, a cluster retry budget and deadline stamping cost ≤3% on the healthy path, and against a black-holed replica the breaker converts a per-request hedge-budget tax into three strikes and a fast detour, cutting proxied p99 by ≥5x",
		Run: func(w io.Writer, scale Scale) {
			results := RunResiliencePerf(scale)
			t := newTable(w, "series", "workload", "config", "nodes", "clients", "ns/req", "req/s", "overhead")
			for _, r := range results {
				if r.ID != "R1" {
					continue
				}
				ov := ""
				if r.Config == "resilient" {
					ov = fmt.Sprintf("%+.1f%%", r.OverheadPct)
				}
				t.row(r.ID, r.Name, r.Config, r.Nodes, r.Clients, r.NsPerReq,
					fmt.Sprintf("%.0f", r.ReqPerSec), ov)
			}
			t.flush()
			t2 := newTable(w, "series", "config", "p50 ms", "p99 ms", "slow strikes", "fast fails", "p99 speedup")
			for _, r := range results {
				if r.ID != "R2" {
					continue
				}
				sp := ""
				if r.Speedup > 0 {
					sp = fmt.Sprintf("%.1fx", r.Speedup)
				}
				t2.row(r.ID, r.Config, fmt.Sprintf("%.2f", r.P50Ms), fmt.Sprintf("%.2f", r.P99Ms),
					r.SlowStrikes, r.FastFails, sp)
			}
			t2.flush()
			fmt.Fprintln(w, "\nexpected shape: R1 overhead within ±3% — the armed path adds one breaker check, one budget observe and a header stamp per proxied request; R2 no-breaker p99 near the 20ms hedge budget plus a service time (every request pays it until the prober's 2s probe timeout finally condemns the peer, slow strikes ≈ that window's request count), breaker p99 near a bare proxied service time after exactly the breaker fuse's strikes — the open circuit is filtered out of the candidate list before any dial")
		},
	}
}
