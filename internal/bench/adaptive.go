package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// E14Adaptive measures the adaptive-dictionary extension (the paper's
// cited related problem [4]) built on the static matcher via the
// logarithmic method: update throughput and the query-time factor over a
// monolithic static dictionary.
func E14Adaptive() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Adaptive dictionary matching via the logarithmic method ([4], extension)",
		Claim: "inserts/deletes with amortized O(|P| log k) preprocessing; queries pay an O(log k) bucket factor",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1014)
			m := pram.NewSequential()
			n := scale.pick(1<<13, 1<<15)
			text := gen.Uniform(n, 4)

			t := newTable(w, "k patterns", "buckets", "insert total", "query wall", "static query wall", "query factor")
			for _, k := range []int{21, 85, 341} {
				patterns := gen.Dictionary(k, 4, 16, 4)
				a := core.NewAdaptive(core.Options{Seed: 1})
				t0 := time.Now()
				for _, p := range patterns {
					a.Insert(m, p)
				}
				insWall := time.Since(t0)

				t1 := time.Now()
				a.MatchText(m, text)
				qWall := time.Since(t1)

				static := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1})
				t2 := time.Now()
				static.MatchText(pram.NewSequential(), text)
				sWall := time.Since(t2)

				t.row(k, a.Buckets(), insWall, qWall, sWall, float64(qWall)/float64(sWall))
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: buckets stay O(log k); the query factor tracks the bucket count")
		},
	}
}
