package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/textgen"
)

// E7LZCompress measures Theorem 4.2: LZ1 compression in O(n) work and
// O(log n) time, against the previous O(n log n)-work bounds [23, 10]. The
// post-suffix-tree stage (the paper's actual §4 contribution) is reported
// separately from the Lemma 2.1 substitute.
func E7LZCompress() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "LZ1 compression scaling (Theorem 4.2)",
		Claim: "O(n) work, O(log n) time (prior work: O(n log n) work)",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1007)
			t := newTable(w, "n", "class", "work/n", "tree w/n", "§4 w/n", "parse w/n", "phrases", "wall")
			nMax := scale.pick(1<<14, 1<<16)
			classes := []struct {
				name string
				mk   func(n int) []byte
			}{
				{"dna", gen.DNA},
				{"repetitive", func(n int) []byte { return gen.Repetitive(n, 64, 0.01) }},
				{"random26", func(n int) []byte { return gen.Uniform(n, 26) }},
			}
			for _, c := range classes {
				for n := nMax / 4; n <= nMax; n *= 2 {
					text := c.mk(n)
					m := pram.NewSequential()
					t0 := time.Now()
					comp := lz.Compress(m, text)
					wall := time.Since(t0)
					wk, _ := m.Counters()
					per := map[string]float64{}
					for _, ph := range m.Phases() {
						per[ph.Name] = float64(ph.Work) / float64(n)
					}
					t.row(n, c.name, float64(wk)/float64(n),
						per["lz/suffixtree"], per["lz/matchstats"], per["lz/parse"],
						len(comp.Tokens), wall)
				}
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: the §4-specific columns (matchstats, parse) are flat = the paper's O(n); the tree column carries the Lemma 2.1 substitute's growth (see E10)")
		},
	}
}

// E8LZUncompress measures Theorem 4.3 plus the E8b ablation: resolving the
// copy forest by pointer jumping versus by connected components (the
// paper's Lemma 2.2 route).
func E8LZUncompress() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "LZ1 uncompression scaling and forest-resolution ablation (Theorem 4.3)",
		Claim: "uncompression in O(n) work, O(log n) time",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1008)
			t := newTable(w, "n", "mode", "work", "work/n", "depth", "wall")
			nMax := scale.pick(1<<14, 1<<16)
			for n := nMax / 4; n <= nMax; n *= 2 {
				text := gen.Repetitive(n, 100, 0.02)
				comp := lz.Compress(pram.NewSequential(), text)
				for _, mode := range []struct {
					name string
					m    lz.UncompressMode
				}{
					{"pointer-jump", lz.ByPointerJumping},
					{"conncomp", lz.ByConnectedComponents},
				} {
					m := pram.NewSequential()
					t0 := time.Now()
					if _, err := lz.Uncompress(m, comp, mode.m); err != nil {
						fmt.Fprintf(w, "ERROR: %v\n", err)
						return
					}
					wall := time.Since(t0)
					wk, dp := m.Counters()
					t.row(n, mode.name, wk, float64(wk)/float64(n), dp, wall)
				}
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: both modes near-linear work; conncomp pays a constant-factor premium (hook+jump rounds)")
		},
	}
}

// E9StaticParse measures Theorem 5.3: optimal static-dictionary parsing in
// O(n) work via dominating edges, against the BFS shortest-path baseline
// (the transitive-closure-style approach of [2]) and the greedy heuristic's
// compression quality.
func E9StaticParse() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Optimal static compression: dominating edges vs shortest paths vs greedy (Theorem 5.3)",
		Claim: "optimal parse in O(n) work; shortest-path baselines touch Theta(n·m) edges; greedy is suboptimal",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1009)
			m := pram.NewSequential()

			fmt.Fprintln(w, "sweep A: work against BFS edge count (prefix-closed dictionary trained on the text)")
			t := newTable(w, "n", "optimal work", "work/n", "BFS edges", "edges/n", "phrases opt", "phrases greedy")
			nMax := scale.pick(1<<13, 1<<15)
			for n := nMax / 4; n <= nMax; n *= 2 {
				text := gen.Markov(n, 4, 0.3)
				// Train a prefix-closed dictionary from substrings of the
				// text so matches are long (this is where the dominating-
				// edge construction beats BFS: edges/n = average match
				// length).
				patterns := trainWords(text, scale.pick(60, 200), 24)
				dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{Seed: 1})
				maxLen := dict.PrefixLengths(pram.NewSequential(), text)
				for i := range maxLen {
					if maxLen[i] == 0 {
						maxLen[i] = 1 // unseen symbols: implicit 1-letter words
					}
				}
				m.ResetCounters()
				opt, err := staticdict.OptimalParse(m, n, maxLen)
				if err != nil {
					fmt.Fprintf(w, "ERROR: %v\n", err)
					return
				}
				wk, _ := m.Counters()
				greedy, _ := staticdict.GreedyParse(n, maxLen)
				t.row(n, wk, float64(wk)/float64(n), staticdict.EdgeCount(maxLen),
					float64(staticdict.EdgeCount(maxLen))/float64(n), len(opt), len(greedy))
			}
			t.flush()

			fmt.Fprintln(w, "\nsweep B: greedy suboptimality on the adversarial family (dict = prefix closure of {a^k, a^k b} + {b})")
			t2 := newTable(w, "k", "n", "phrases optimal", "phrases greedy", "greedy/optimal")
			for _, k := range []int{2, 4, 8, 16} {
				text, adv := textgen.GreedyAdversarialDictionary(k, scale.pick(50, 400))
				advDict := core.Preprocess(pram.NewSequential(), adv, core.Options{Seed: 1})
				maxLen := advDict.PrefixLengths(pram.NewSequential(), text)
				opt, err1 := staticdict.OptimalParse(pram.NewSequential(), len(text), maxLen)
				greedy, err2 := staticdict.GreedyParse(len(text), maxLen)
				if err1 != nil || err2 != nil {
					fmt.Fprintf(w, "ERROR: %v %v\n", err1, err2)
					return
				}
				t2.row(k, len(text), len(opt), len(greedy), float64(len(greedy))/float64(len(opt)))
			}
			t2.flush()
			fmt.Fprintln(w, "expected shape: optimal work/n flat while BFS edges/n grows with match length; greedy/optimal -> 1.5 on the adversarial family")
		},
	}
}

// trainWords samples count substrings of text (length up to maxLen) and
// returns their prefix closure — a dictionary under which the text has long
// matches everywhere it repeats.
func trainWords(text []byte, count, maxLen int) [][]byte {
	seen := map[string]bool{}
	var words [][]byte
	add := func(word []byte) {
		for p := 1; p <= len(word); p++ {
			if k := string(word[:p]); !seen[k] {
				seen[k] = true
				words = append(words, []byte(k))
			}
		}
	}
	step := len(text) / count
	if step < 1 {
		step = 1
	}
	for pos := 0; pos < len(text); pos += step {
		end := pos + maxLen
		if end > len(text) {
			end = len(text)
		}
		add(text[pos:end])
	}
	return words
}

// E12PhraseCounts compares LZ1 against LZ2/LZ78 phrase counts across text
// classes (§1.2: "LZ1 is known to give better compressions in practice").
func E12PhraseCounts() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "LZ1 vs LZ2 phrase counts (§1.2)",
		Claim: "LZ1 compresses better in practice; LZ2 is P-complete [1] while LZ1 is in RNC",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1012)
			n := scale.pick(1<<14, 1<<16)
			m := pram.NewSequential()
			t := newTable(w, "class", "n", "LZ1 phrases", "LZ2 phrases", "LZ2/LZ1")
			classes := []struct {
				name string
				data []byte
			}{
				{"random26", gen.Uniform(n, 26)},
				{"dna", gen.DNA(n)},
				{"markov", gen.Markov(n, 8, 0.3)},
				{"repetitive", gen.Repetitive(n, 64, 0.01)},
				{"fibonacci", textgen.Fibonacci(n)},
				{"thue-morse", textgen.ThueMorse(n)},
			}
			for _, c := range classes {
				lz1 := lz.Compress(m, c.data)
				lz2 := lz.CompressLZ2(c.data)
				t.row(c.name, len(c.data), len(lz1.Tokens), len(lz2.Tokens),
					float64(len(lz2.Tokens))/float64(len(lz1.Tokens)))
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: LZ2/LZ1 > 1 on structured/repetitive inputs (the paper's \"better in practice\"), approaching parity or below on incompressible random text")
		},
	}
}
