// Runtime performance experiments behind `benchtab -json`. Unlike the
// E-series (which reproduce the paper's complexity claims through the
// work/depth ledger), the P-series measures the physical execution engine:
// ns/op, allocations, and the ledger of the same workload under the legacy
// spawn-per-step dispatch versus the pooled runtime. The ledger columns
// double as a regression guard — every config of a workload must report
// identical Work/Depth, or the engines have diverged from the cost model.
package bench

import (
	"testing"

	"repro/internal/par"
	"repro/internal/pram"
)

// PerfResult is one (workload, engine config) measurement, shaped for
// machine consumption (BENCH_PR2.json and future BENCH_PRn files).
type PerfResult struct {
	ID          string `json:"id"`     // P-series experiment id
	Name        string `json:"name"`   // workload name
	Config      string `json:"config"` // engine configuration
	N           int    `json:"n"`      // problem size
	NsPerOp     int64  `json:"nsPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	Work        int64  `json:"work"`  // PRAM work of one op (0 if not ledgered)
	Depth       int64  `json:"depth"` // PRAM depth of one op
}

// perfProcs is the simulated processor count of the P-series machines. It
// is deliberately fixed (not GOMAXPROCS) so ledgers and grain decisions are
// comparable across hosts; the pool caps physical helpers at the core count
// on its own.
const perfProcs = 4

// legacyGrain reproduces the seed runtime's fixed DefaultGrain.
const legacyGrain = 2048

// perfConfigs are the engine configurations every workload runs under.
// "legacy" replicates the seed runtime: goroutines spawned per super-step,
// fixed grain 2048, no inline threshold beyond n <= grain. "pooled" is the
// current default: parked workers, adaptive grain, inline threshold.
var perfConfigs = []struct {
	Name string
	Make func() *pram.Machine
}{
	{"legacy", func() *pram.Machine {
		m := pram.NewWithEngine(perfProcs, pram.EngineSpawn)
		m.SetGrain(legacyGrain)
		return m
	}},
	{"pooled", func() *pram.Machine {
		return pram.New(perfProcs)
	}},
}

// perfWorkload is one benchmarked kernel. Op must be self-contained and
// deterministic; it runs b.N times under testing.Benchmark.
type perfWorkload struct {
	ID   string
	Name string
	N    func(s Scale) int
	Op   func(m *pram.Machine, n int)
}

func perfWorkloads() []perfWorkload {
	return []perfWorkload{
		{
			// The many-super-step overhead regime: rounds of small steps with
			// trivial bodies, the shape of every contraction/doubling tail.
			// Legacy fans out whenever n > 2048; the adaptive runtime inlines
			// steps this cheap, so this is pure dispatch overhead.
			ID: "P1", Name: "superstep_small_x128",
			N: func(s Scale) int { return 3000 },
			Op: func(m *pram.Machine, n int) {
				dst := make([]int64, n)
				for r := 0; r < 128; r++ {
					m.ParallelFor(n, func(i int) { dst[i] = int64(i) })
				}
			},
		},
		{
			// One large step: dispatch cost amortized, body-bound.
			ID: "P2", Name: "superstep_large",
			N: func(s Scale) int { return s.pick(1<<16, 1<<18) },
			Op: func(m *pram.Machine, n int) {
				dst := make([]int64, n)
				m.ParallelFor(n, func(i int) { dst[i] = int64(i)*2654435761 + 17 })
			},
		},
		{
			// The acceptance microbench: randomized list contraction runs
			// O(log n) rounds of shrinking super-steps.
			ID: "P3", Name: "listrank_contract",
			N: func(s Scale) int { return s.pick(1<<14, 1<<16) },
			Op: func(m *pram.Machine, n int) {
				next := make([]int, n)
				for i := 0; i < n-1; i++ {
					next[i] = i + 1
				}
				next[n-1] = n - 1
				par.ListRankContract(m, next)
			},
		},
		{
			// Pointer doubling at the same size: log n full-width rounds.
			ID: "P4", Name: "listrank_jump",
			N: func(s Scale) int { return s.pick(1<<14, 1<<16) },
			Op: func(m *pram.Machine, n int) {
				next := make([]int, n)
				for i := 0; i < n-1; i++ {
					next[i] = i + 1
				}
				next[n-1] = n - 1
				par.ListRank(m, next)
			},
		},
		{
			// Scan + pack: the allocation-hot primitives converted to the
			// scratch arena; allocs/op is the interesting column.
			ID: "P5", Name: "scan_pack",
			N: func(s Scale) int { return s.pick(1<<14, 1<<16) },
			Op: func(m *pram.Machine, n int) {
				a := make([]int64, n)
				m.ParallelFor(n, func(i int) { a[i] = int64(i % 7) })
				par.ExclusiveScan(m, a)
				par.Pack(m, n, func(i int) bool { return a[i]&1 == 0 })
			},
		},
		{
			// Radix sort: histogram + scatter rounds.
			ID: "P6", Name: "sort_perm",
			N: func(s Scale) int { return s.pick(1<<14, 1<<16) },
			Op: func(m *pram.Machine, n int) {
				keys := make([]int64, n)
				for i := range keys {
					keys[i] = int64((i * 48271) % n)
				}
				par.SortPerm(m, keys, int64(n))
			},
		},
	}
}

// RunPerf measures every P-series workload under every engine config and
// returns the flat result list in (workload, config) order.
func RunPerf(scale Scale) []PerfResult {
	var out []PerfResult
	for _, w := range perfWorkloads() {
		n := w.N(scale)
		for _, cfg := range perfConfigs {
			m := cfg.Make()
			// Ledger of a single op, measured outside the timing loop.
			m.ResetCounters()
			w.Op(m, n)
			work, depth := m.Counters()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w.Op(m, n)
				}
			})
			m.Close()
			out = append(out, PerfResult{
				ID:          w.ID,
				Name:        w.Name,
				Config:      cfg.Name,
				N:           n,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Work:        work,
				Depth:       depth,
			})
		}
	}
	return out
}
