// E17 and the D-series: dictionary snapshot persistence (internal/persist).
// The claim under test is the serving-side extension of the paper's
// preprocess-once economics: a snapshot load is a sequential read of the
// already-computed tables, so restoring a dictionary costs a small constant
// fraction of the §3 preprocessing it replaces — and zero PRAM work — while
// the file stays within a modest constant factor of d (every serialized
// table is O(d) entries, DESIGN.md §10).
package bench

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// persistCases returns the dictionary-size sweep (pattern count, pattern
// length) for a scale; d grows roughly 4x per row.
func persistCases(scale Scale) [][2]int {
	if scale == Quick {
		return [][2]int{{16, 8}, {64, 16}, {128, 32}}
	}
	return [][2]int{{16, 8}, {64, 16}, {256, 32}, {512, 64}, {1024, 128}}
}

// E17Persistence measures the snapshot codec: cold preprocessing cost vs
// snapshot load cost, and snapshot size vs d, across a dictionary sweep.
func E17Persistence() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Persistence: snapshot load vs cold preprocess (internal/persist, DESIGN §10)",
		Claim: "loading a serialized dictionary reproduces the §3 preprocessing output with zero PRAM work, in a small fraction of the preprocessing wall time, from a file of O(d) table entries",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(4099)
			m := pram.New(perfProcs)
			defer m.Close()

			t := newTable(w, "patterns", "d", "prep ns", "prep work", "encode ns", "load ns", "prep/load", "snap bytes", "bytes/d")
			for _, c := range persistCases(scale) {
				k, plen := c[0], c[1]
				patterns := gen.Dictionary(k, plen/2, plen, 4)
				d := 0
				for _, p := range patterns {
					d += len(p)
				}
				opts := core.Options{Seed: 7}

				m.ResetCounters()
				dict := core.Preprocess(m, patterns, opts)
				prepWork, _ := m.Counters()
				prepNs := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.Preprocess(m, patterns, opts)
					}
				}).NsPerOp()

				data := persist.Encode(dict)
				encodeNs := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						persist.Encode(dict)
					}
				}).NsPerOp()
				loadNs := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := persist.Load(data); err != nil {
							b.Fatal(err)
						}
					}
				}).NsPerOp()

				// Equivalence spot check: the loaded dictionary answers a
				// planted text identically (byte-level equality is pinned by
				// internal/persist's tests; this guards the benchmark's
				// premise on every run).
				loaded, err := persist.Load(data)
				if err != nil {
					fmt.Fprintf(w, "load failed (k=%d): %v\n", k, err)
					return
				}
				text := plantText(gen, patterns, 1<<14)
				a := dict.MatchText(m, text)
				b := loaded.MatchText(m, text)
				for i := range a {
					if a[i] != b[i] {
						fmt.Fprintf(w, "DIVERGENCE: k=%d match[%d] differs after load\n", k, i)
						return
					}
				}

				t.row(k, d, prepNs, prepWork, encodeNs, loadNs,
					float64(prepNs)/float64(max(loadNs, 1)),
					len(data), float64(len(data))/float64(d))
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: loading beats preprocessing by a solid constant factor at every size (it skips suffix-tree + Weiner-link construction outright, though it still rebuilds the derived indexes); bytes/d is O(d) table entries — near-flat, creeping only with varint widths as offsets grow; and the load path charges no PRAM work at all — the serving warm-start premise")
		},
	}
}

// plantText embeds dictionary patterns into uniform filler so the
// equivalence check exercises real matches.
func plantText(gen *textgen.Gen, patterns [][]byte, n int) []byte {
	text := gen.Uniform(n, 4)
	step := n / (len(patterns) + 1)
	if step < 1 {
		step = 1
	}
	for i, p := range patterns {
		pos := (i + 1) * step
		if pos+len(p) > n {
			break
		}
		copy(text[pos:], p)
	}
	return text
}

// PersistPerfResult is one D-series measurement for BENCH_PR4.json: cold
// preprocessing vs snapshot load at one dictionary size.
type PersistPerfResult struct {
	ID            string  `json:"id"`     // D-series experiment id
	Name          string  `json:"name"`   // "snapshot"
	Config        string  `json:"config"` // "k=<patterns>"
	NumPatterns   int     `json:"numPatterns"`
	D             int     `json:"d"` // total pattern bytes
	PreprocessNs  int64   `json:"preprocessNs"`
	EncodeNs      int64   `json:"encodeNs"`
	LoadNs        int64   `json:"loadNs"`
	Speedup       float64 `json:"speedup"` // preprocessNs / loadNs
	SnapshotBytes int     `json:"snapshotBytes"`
	BytesPerD     float64 `json:"bytesPerD"`
	PrepWork      int64   `json:"prepWork"` // PRAM work of preprocessing
	LoadWork      int64   `json:"loadWork"` // PRAM work of loading: always 0
}

// RunPersistPerf measures the D-series across the dictionary sweep.
func RunPersistPerf(scale Scale) []PersistPerfResult {
	gen := textgen.New(4099)
	m := pram.New(perfProcs)
	defer m.Close()

	var out []PersistPerfResult
	for _, c := range persistCases(scale) {
		k, plen := c[0], c[1]
		patterns := gen.Dictionary(k, plen/2, plen, 4)
		d := 0
		for _, p := range patterns {
			d += len(p)
		}
		opts := core.Options{Seed: 7}

		m.ResetCounters()
		dict := core.Preprocess(m, patterns, opts)
		prepWork, _ := m.Counters()
		prepNs := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Preprocess(m, patterns, opts)
			}
		}).NsPerOp()

		data := persist.Encode(dict)
		encodeNs := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				persist.Encode(dict)
			}
		}).NsPerOp()

		// Load charges nothing to any PRAM machine: it takes none. The
		// before/after snapshot assertion lives in internal/persist's tests;
		// here the 0 is recorded into the JSON document as data.
		loadNs := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := persist.Load(data); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
		loaded, err := persist.Load(data)
		if err != nil {
			continue
		}
		text := plantText(gen, patterns, 1<<13)
		if !matchesEqual(m, dict, loaded, text) {
			continue
		}

		out = append(out, PersistPerfResult{
			ID: "D1", Name: "snapshot", Config: fmt.Sprintf("k=%d", k),
			NumPatterns: k, D: d,
			PreprocessNs: prepNs, EncodeNs: encodeNs, LoadNs: loadNs,
			Speedup:       float64(prepNs) / float64(max(loadNs, 1)),
			SnapshotBytes: len(data), BytesPerD: float64(len(data)) / float64(d),
			PrepWork: prepWork, LoadWork: 0,
		})
	}
	return out
}

// matchesEqual reports whether two dictionaries answer text identically.
func matchesEqual(m *pram.Machine, a, b *core.Dictionary, text []byte) bool {
	ra := a.MatchText(m, text)
	rb := b.MatchText(m, text)
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}
