package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/colorednca"
	"repro/internal/eulertour"
	"repro/internal/fingerprint"
	"repro/internal/pram"
	"repro/internal/suffixtree"
	"repro/internal/textgen"
)

// E6NCA measures the §3.2 trade-off between the paper's two nearest-
// colored-ancestor structures: naive skeleton tables (O(n·|C|)
// preprocessing work, O(1) query) versus the Euler-range + van Emde Boas
// structure (O(n + C) size, O(log log n) query).
func E6NCA() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Nearest colored ancestors: naive vs improved (§3.2)",
		Claim: "naive: O(n·|C|) preprocessing, O(1) query; improved: O(n+C) size, O(log log n) query",
		Run: func(w io.Writer, scale Scale) {
			rng := rand.New(rand.NewPCG(61, 62))
			n := scale.pick(1<<12, 1<<14)
			parent := make([]int, n)
			parent[0] = -1
			for v := 1; v < n; v++ {
				parent[v] = rng.IntN(v)
			}
			m := pram.NewSequential()
			tree := eulertour.New(m, parent)
			tour := tree.Euler(m)

			t := newTable(w, "|C| colors", "naive build", "improved build", "naive query", "improved query")
			for _, numColors := range []int{2, 8, 32, 128} {
				var colors []colorednca.Colored
				for v := 0; v < n; v++ {
					colors = append(colors, colorednca.Colored{Node: v, Color: int32(rng.IntN(numColors))})
				}
				t0 := time.Now()
				naive := colorednca.NewNaive(m, tree, colors)
				buildNaive := time.Since(t0)
				t1 := time.Now()
				impr := colorednca.NewImproved(m, tree, tour, colors)
				buildImpr := time.Since(t1)

				const queries = 200_000
				q0 := time.Now()
				var sink int
				for q := 0; q < queries; q++ {
					sink += naive.Find(q%n, int32(q%numColors))
				}
				qNaive := float64(time.Since(q0).Nanoseconds()) / queries
				q1 := time.Now()
				for q := 0; q < queries; q++ {
					sink += impr.Find(q%n, int32(q%numColors))
				}
				qImpr := float64(time.Since(q1).Nanoseconds()) / queries
				_ = sink
				t.row(numColors, buildNaive, buildImpr,
					fmt.Sprintf("%.1fns", qNaive), fmt.Sprintf("%.1fns", qImpr))
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: naive build grows linearly with |C|; improved build flat; both queries near-constant with improved slightly slower")
		},
	}
}

// E10SuffixTree measures the Lemma 2.1 substitute: suffix tree construction
// scaling for the parallel (prefix-doubling) and sequential (DC3) paths.
func E10SuffixTree() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Suffix tree construction scaling (Lemma 2.1 substitute)",
		Claim: "O(n) work / O(log n) time in the paper; ours: O(n log n) work at O(log^2 n) depth parallel, O(n) sequential",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(1010)
			t := newTable(w, "n", "path", "work", "work/n", "work/(n log n)", "depth", "wall")
			nMax := scale.pick(1<<14, 1<<17)
			for n := nMax / 8; n <= nMax; n *= 2 {
				text := gen.DNA(n)
				// Sequential machine: DC3 + Kasai + stack (linear).
				ms := pram.NewSequential()
				t0 := time.Now()
				suffixtree.Build(ms, text)
				wallS := time.Since(t0)
				wkS, dpS := ms.Counters()
				t.row(n, "seq/DC3", wkS, float64(wkS)/float64(n), float64(wkS)/(float64(n)*log2(n)), dpS, wallS)
				// Parallel machine: prefix doubling (counters measured with
				// the deterministic 1-worker schedule of the same parallel
				// algorithm to keep wall noise out; counters are identical
				// across worker counts).
				mp := pram.New(2)
				t1 := time.Now()
				suffixtree.Build(mp, text)
				wallP := time.Since(t1)
				wkP, dpP := mp.Counters()
				t.row(n, "par/doubling", wkP, float64(wkP)/float64(n), float64(wkP)/(float64(n)*log2(n)), dpP, wallP)
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: seq work/n flat (linear); par work/(n log n) flat; par depth grows ~log^2 n")
		},
	}
}

// E11Fingerprint measures the randomization justification (§1.2, [17]):
// collision probability of b-bit fingerprints against the analytic bound,
// on adversarially repetitive strings.
func E11Fingerprint() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Fingerprint width vs collision rate (Karp–Rabin [17])",
		Claim: "collision probability <= len/2^b per comparison; Las Vegas retries vanish at 61 bits",
		Run: func(w io.Writer, scale Scale) {
			m := pram.NewSequential()
			text := textgen.Fibonacci(scale.pick(1<<12, 1<<14)) // maximally repetitive
			h := fingerprint.NewHasher(7, len(text))
			tab := h.NewTable(m, text)
			rng := rand.New(rand.NewPCG(71, 72))

			t := newTable(w, "bits b", "pairs tested", "distinct pairs colliding", "rate", "bound len/2^b")
			pairs := scale.pick(200_000, 1_000_000)
			maxL := 64
			for _, bits := range []int{8, 12, 16, 24, 32, 61} {
				mask := uint64(1)<<uint(bits) - 1
				tested, collided := 0, 0
				for p := 0; p < pairs; p++ {
					l := 1 + rng.IntN(maxL)
					i := rng.IntN(len(text) - l)
					j := rng.IntN(len(text) - l)
					if i == j {
						continue
					}
					same := string(text[i:i+l]) == string(text[j:j+l])
					if same {
						continue // only distinct strings can collide
					}
					tested++
					if tab.Substring(i, i+l)&mask == tab.Substring(j, j+l)&mask {
						collided++
					}
				}
				bound := float64(maxL) / float64(uint64(1)<<uint(min(bits, 62)))
				t.row(bits, tested, collided, float64(collided)/float64(tested), bound)
			}
			t.flush()
			fmt.Fprintln(w, "expected shape: collision rate tracks 1/2^b and is zero at 61 bits")
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
