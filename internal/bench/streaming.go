// E16 and the S-series: the bounded-memory streaming pipeline
// (internal/stream) against the one-shot batch paths. The claim under test
// is the halo argument of DESIGN.md §9 — segmenting the text with a
// carry of maxPatternLen−1 bytes preserves the Theorem 3.1 outputs and
// work bound while resident text drops from n to segment+halo — plus the
// practical corollary: throughput stays near the batch matcher because
// the only extra work is recomputing the halo, a maxPat/segment fraction.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/stream"
	"repro/internal/textgen"
)

// countMatchSink counts events and discards them; the experiment checks
// event-count equality with the batch matcher, not payloads (the
// byte-level equivalence is pinned by internal/stream's tests and fuzzer).
type countMatchSink struct{ events int64 }

func (s *countMatchSink) MatchEvent(stream.MatchEvent) error { s.events++; return nil }

// streamSegments returns the segment-size sweep for a scale.
func streamSegments(scale Scale) []int {
	if scale == Quick {
		return []int{4 << 10, 16 << 10, 64 << 10}
	}
	return []int{64 << 10, 256 << 10, 1 << 20, 8 << 20}
}

// E16Streaming measures the streaming matcher across a segment sweep and
// the windowed streaming uncompressor, against their one-shot baselines.
func E16Streaming() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Streaming: bounded-memory pipeline vs one-shot (internal/stream, DESIGN §9)",
		Claim: "segmented matching with a maxPat−1 halo emits the Theorem 3.1 outputs with O(segment+maxPat) resident text; extra work is the recomputed halo fraction",
		Run: func(w io.Writer, scale Scale) {
			gen := textgen.New(2029)
			n := scale.pick(1<<16, 1<<20)
			text, patterns := gen.PlantedDictionary(n, 32, 10, 211, 4)

			m := pram.New(perfProcs)
			defer m.Close()
			dict := core.Preprocess(m, patterns, core.Options{Seed: 7})
			maxPat := dict.MaxPatternLen()

			// One-shot baseline: whole text resident, one ledger sample.
			m.ResetCounters()
			batch, _ := dict.MatchLasVegas(m, text)
			batchWork, _ := m.Counters()
			batchEvents := int64(0)
			for _, mt := range batch {
				if mt.Length > 0 {
					batchEvents++
				}
			}
			batchNs := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dict.MatchLasVegas(m, text)
				}
			}).NsPerOp()

			t := newTable(w, "segment", "segments", "resident", "resident/n", "work/n", "recompute", "MB/s", "vs one-shot")
			t.row("one-shot", 1, n, "1.00", float64(batchWork)/float64(n), "-",
				mbps(n, batchNs), "1.00")
			for _, seg := range streamSegments(scale) {
				sink := &countMatchSink{}
				st, err := stream.Match(context.Background(),
					stream.DictMatcher{Dict: dict, M: m},
					bytes.NewReader(text), sink, stream.Config{SegmentBytes: seg})
				if err != nil {
					fmt.Fprintf(w, "stream match (segment=%d) failed: %v\n", seg, err)
					return
				}
				if sink.events != batchEvents {
					fmt.Fprintf(w, "DIVERGENCE: segment=%d emitted %d events, batch has %d\n",
						seg, sink.events, batchEvents)
					return
				}
				ns := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						s := &countMatchSink{}
						stream.Match(context.Background(),
							stream.DictMatcher{Dict: dict, M: m},
							bytes.NewReader(text), s, stream.Config{SegmentBytes: seg})
					}
				}).NsPerOp()
				t.row(formatBytes(seg), st.Segments, st.MaxResident,
					float64(st.MaxResident)/float64(n),
					float64(st.Work)/float64(n),
					fmt.Sprintf("%.2f%%", 100*float64(st.WindowBytes-st.TextBytes)/float64(n)),
					mbps(n, ns), float64(batchNs)/float64(ns))
			}
			t.flush()
			fmt.Fprintf(w, "expected shape: every row emits the batch matcher's %d events; resident/n falls with the segment while work/n stays within the halo fraction (maxPat−1 = %d recomputed bytes per boundary)\n\n",
				batchEvents, maxPat-1)

			// Part 2 — streaming uncompression with a retention window,
			// against the batch array decoder (Theorem 4.3's output side).
			comp := lz.Compress(m, text)
			var enc bytes.Buffer
			if err := lz.EncodeStream(&enc, comp); err != nil {
				fmt.Fprintf(w, "encode failed: %v\n", err)
				return
			}
			decodeNs := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c, err := lz.DecodeStream(enc.Bytes())
					if err != nil {
						b.Fatal(err)
					}
					lz.Decode(c)
				}
			}).NsPerOp()

			// The full §4 parse copies from *first* occurrences, so its
			// references reach back ~n and no finite window can serve it;
			// a producer that bounds reference distance (blockwise
			// compression here) is what the window is for.
			const block = 8 << 10
			blockEnc, err := blockwiseContainer(m, text, block)
			if err != nil {
				fmt.Fprintf(w, "blockwise encode failed: %v\n", err)
				return
			}

			t2 := newTable(w, "container", "window", "resident hist", "farthest back", "MB/s", "vs batch")
			t2.row("full LZ1", "batch (array)", n, "-", mbps(n, decodeNs), "1.00")
			type uncCase struct {
				name string
				enc  []byte
				win  int
			}
			for _, uc := range []uncCase{
				{"full LZ1", enc.Bytes(), 0},
				{"blockwise", blockEnc, 0},
				{"blockwise", blockEnc, block},
			} {
				st, err := runUncompress(uc.enc, uc.win)
				if err != nil {
					fmt.Fprintf(w, "stream uncompress (%s, window=%d) failed: %v\n", uc.name, uc.win, err)
					continue
				}
				ns := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runUncompress(uc.enc, uc.win)
					}
				}).NsPerOp()
				label := "unbounded"
				if uc.win > 0 {
					label = formatBytes(uc.win)
				}
				t2.row(uc.name, label, st.MaxResident, st.FarthestBack,
					mbps(n, ns), float64(decodeNs)/float64(ns))
			}
			t2.flush()
			fmt.Fprintln(w, "expected shape: token-at-a-time expansion tracks the batch decoder; the blockwise container's references stay within one block, so a block-sized window caps resident history at ~2W while the full LZ1 parse (farthest back ~n) needs the whole prefix — a smaller window rejects it with ErrWindowExceeded, the streaming endpoint's 422 contract")
		},
	}
}

// blockwiseContainer compresses each block of the text independently and
// concatenates the token streams (copy sources rebased to absolute
// positions), yielding a valid LZ1R1 container whose references never
// reach back more than one block — the window-friendly producer regime.
func blockwiseContainer(m *pram.Machine, text []byte, block int) ([]byte, error) {
	c := lz.Compressed{N: len(text)}
	for off := 0; off < len(text); off += block {
		end := off + block
		if end > len(text) {
			end = len(text)
		}
		bc := lz.Compress(m, text[off:end])
		for _, tok := range bc.Tokens {
			if !tok.IsLiteral() {
				tok.Src += int32(off)
			}
			c.Tokens = append(c.Tokens, tok)
		}
	}
	out, err := lz.Decode(c)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(out, text) {
		return nil, fmt.Errorf("blockwise container does not round-trip")
	}
	var enc bytes.Buffer
	err = lz.EncodeStream(&enc, c)
	return enc.Bytes(), err
}

// runUncompress expands an LZ1R1 container to io.Discard with the given
// retention window and returns the pipeline stats.
func runUncompress(enc []byte, window int) (stream.Stats, error) {
	u, err := stream.NewUncompressor(bytes.NewReader(enc), stream.UncompressConfig{Window: window})
	if err != nil {
		return stream.Stats{}, err
	}
	return u.Run(context.Background(), io.Discard)
}

// mbps converts (bytes, ns/op) to MB/s.
func mbps(n int, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(n) / 1e6 / (float64(nsPerOp) / 1e9)
}

// formatBytes renders a byte count as KiB/MiB when it divides evenly.
func formatBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// StreamPerfResult is one S-series measurement for BENCH_PR3.json: the
// streaming matcher at one segment size (or the one-shot baseline when
// SegmentBytes is 0), with throughput and the resident-memory bound.
type StreamPerfResult struct {
	ID           string  `json:"id"`           // S-series experiment id
	Name         string  `json:"name"`         // workload name
	Config       string  `json:"config"`       // "oneshot" or "segment=<bytes>"
	N            int     `json:"n"`            // text length
	SegmentBytes int     `json:"segmentBytes"` // 0 for the one-shot baseline
	NsPerOp      int64   `json:"nsPerOp"`
	MBPerSec     float64 `json:"mbPerSec"`
	MaxResident  int     `json:"maxResident"` // peak window bytes (n for one-shot)
	Segments     int64   `json:"segments"`
	Work         int64   `json:"work"` // PRAM work of one pass
	Depth        int64   `json:"depth"`
}

// RunStreamPerf measures the S-series: one-shot matching followed by the
// streaming pipeline across the segment sweep, on the same planted text.
func RunStreamPerf(scale Scale) []StreamPerfResult {
	gen := textgen.New(2029)
	n := scale.pick(1<<16, 1<<20)
	text, patterns := gen.PlantedDictionary(n, 32, 10, 211, 4)

	m := pram.New(perfProcs)
	defer m.Close()
	dict := core.Preprocess(m, patterns, core.Options{Seed: 7})

	var out []StreamPerfResult

	m.ResetCounters()
	dict.MatchLasVegas(m, text)
	work, depth := m.Counters()
	ns := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dict.MatchLasVegas(m, text)
		}
	}).NsPerOp()
	out = append(out, StreamPerfResult{
		ID: "S1", Name: "match_oneshot", Config: "oneshot",
		N: n, NsPerOp: ns, MBPerSec: mbps(n, ns),
		MaxResident: n, Segments: 1, Work: work, Depth: depth,
	})

	for _, seg := range streamSegments(scale) {
		sink := &countMatchSink{}
		st, err := stream.Match(context.Background(),
			stream.DictMatcher{Dict: dict, M: m},
			bytes.NewReader(text), sink, stream.Config{SegmentBytes: seg})
		if err != nil {
			continue
		}
		ns := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := &countMatchSink{}
				stream.Match(context.Background(),
					stream.DictMatcher{Dict: dict, M: m},
					bytes.NewReader(text), s, stream.Config{SegmentBytes: seg})
			}
		}).NsPerOp()
		out = append(out, StreamPerfResult{
			ID: "S2", Name: "match_stream", Config: fmt.Sprintf("segment=%d", seg),
			N: n, SegmentBytes: seg, NsPerOp: ns, MBPerSec: mbps(n, ns),
			MaxResident: st.MaxResident, Segments: st.Segments,
			Work: st.Work, Depth: st.Depth,
		})
	}
	return out
}
