// E21 and the K-series: sharded, replicated serving (internal/cluster,
// DESIGN §15). Three claims under test, all shaped for a small machine —
// on one core a cluster cannot win by parallelism, so the series isolates
// the wins that survive: (K1) routing overhead is the honest price of the
// topology — a resident-working-set mix is served at roughly single-node
// speed, the proxy hop visible but bounded; (K2) the cluster's real
// resource is aggregate registry capacity — a working set that thrashes
// one node's LRU (every request a snapshot reload) stays fully resident
// across three nodes, and throughput multiplies; (K3) hedged proxying
// cuts the tail a slow replica inflicts — p99 tracks the hedge budget,
// not the straggler.
//
// All three run real HTTP over loopback listeners: the routing, pulling
// and hedging paths measured are byte-for-byte the ones matchd serves.
package bench

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/textgen"
)

// ClusterPerfResult is one K-series measurement for BENCH_PR9.json.
type ClusterPerfResult struct {
	ID        string  `json:"id"`     // K-series experiment id
	Name      string  `json:"name"`   // workload name
	Config    string  `json:"config"` // "1node", "3node", "unhedged", "hedged"
	Nodes     int     `json:"nodes"`
	Replicas  int     `json:"replicas"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Dicts     int     `json:"dicts,omitempty"`
	NsPerReq  int64   `json:"nsPerReq,omitempty"`
	ReqPerSec float64 `json:"reqPerSec,omitempty"`
	// Comparative rows only.
	Speedup float64 `json:"speedup,omitempty"` // vs the row's baseline config
	// K3 latency rows.
	P50Ms    float64 `json:"p50Ms,omitempty"`
	P99Ms    float64 `json:"p99Ms,omitempty"`
	Hedged   int64   `json:"hedged,omitempty"`
	HedgeWon int64   `json:"hedgeWon,omitempty"`
	// Capacity rows: snapshot-store loads during the timed window — the
	// thrashing node's LRU misses (local reloads and peer pulls both land
	// here; the resident topology stays at zero).
	SnapshotReloads int64 `json:"snapshotReloads,omitempty"`
}

// clusterBenchClients is the client concurrency of the K1/K2 sweeps (the
// ISSUE's 64-client small-request mix).
const clusterBenchClients = 64

// benchClusterNode is one in-process cluster member: a real matchd server
// behind a loopback listener, with an optional deterministic delay
// injector so K3 can make one replica slow without a chaos build.
type benchClusterNode struct {
	name string
	base string
	srv  *server.Server
	hs   *http.Server

	delayEvery atomic.Int64 // delay every Nth match request; 0 = off
	delayFor   atomic.Int64 // nanoseconds
	seen       atomic.Int64
}

func (nd *benchClusterNode) wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := nd.delayEvery.Load(); n > 0 && strings.HasSuffix(r.URL.Path, "/match") {
			if nd.seen.Add(1)%n == 0 {
				time.Sleep(time.Duration(nd.delayFor.Load()))
			}
		}
		inner.ServeHTTP(w, r)
	})
}

// startBenchCluster boots n cluster members on loopback listeners and
// returns them with a cleanup closure. Dense and batch serving are off:
// the K-series measures routing, capacity and hedging, not engines. mut
// (optional) tweaks each node's config before start — the R-series uses
// it to arm the resilience layer.
func startBenchCluster(n, replicas, maxDicts int, hedgeAfter time.Duration, mut func(cfg *server.Config)) ([]*benchClusterNode, func(), error) {
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		peers[i] = cluster.Peer{Name: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	root, err := os.MkdirTemp("", "bench-cluster-")
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]*benchClusterNode, n)
	for i := range nodes {
		cfg := server.Config{
			Procs:                1,
			MaxDicts:             maxDicts,
			MaxInflight:          1024,
			CacheDir:             filepath.Join(root, peers[i].Name),
			DenseMode:            server.DenseOff,
			BatchMode:            server.BatchOff,
			ClusterSelf:          peers[i].Name,
			ClusterPeers:         peers,
			ClusterReplicas:      replicas,
			ClusterHedgeAfter:    hedgeAfter,
			ClusterProbeInterval: 200 * time.Millisecond,
			Log:                  log.New(io.Discard, "", 0),
		}
		if mut != nil {
			mut(&cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		nd := &benchClusterNode{name: peers[i].Name, base: peers[i].URL, srv: srv}
		nd.hs = &http.Server{Handler: nd.wrap(srv.Handler())}
		go nd.hs.Serve(lns[i])
		nodes[i] = nd
	}
	cleanup := func() {
		for _, nd := range nodes {
			_ = nd.hs.Close()
			nd.srv.Close()
		}
		os.RemoveAll(root)
	}
	return nodes, cleanup, nil
}

// clusterBenchDicts registers count distinct planted dictionaries through
// the first node and returns their content-addressed ids.
func clusterBenchDicts(nodes []*benchClusterNode, count, patterns int) ([]string, error) {
	ids := make([]string, count)
	for i := range ids {
		gen := textgen.New(uint64(31 + i))
		_, pats := gen.PlantedDictionary(1<<12, patterns, 12, 97, 8)
		patStrs := make([]string, len(pats))
		for j, p := range pats {
			patStrs[j] = string(p)
		}
		body, _ := json.Marshal(map[string]any{"patterns": patStrs})
		resp, err := http.Post(nodes[0].base+"/v1/dicts", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("create dict %d: %d %s", i, resp.StatusCode, out)
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(out, &created); err != nil {
			return nil, err
		}
		ids[i] = created.ID
	}
	return ids, nil
}

// clusterBenchDrive fires total small match requests from clients
// goroutines, round-robin over nodes and dictionaries, and returns the
// wall time. Any non-200 fails the bench loudly — a cluster bench that
// quietly measures 404s measures nothing.
func clusterBenchDrive(nodes []*benchClusterNode, ids []string, reqBody []byte, clients, total int) (time.Duration, error) {
	per := total / clients
	var firstErr atomic.Value
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				nd := nodes[(c+i)%len(nodes)]
				id := ids[(c*7+i)%len(ids)]
				resp, err := http.Post(nd.base+"/v1/dicts/"+id+"/match", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("match via %s: %v", nd.name, err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("match via %s: %d %s", nd.name, resp.StatusCode, body))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, err
	}
	return wall, nil
}

// clusterMetricsOf reads one node's /metrics: snapshot loads (LRU-miss
// reloads, local or pulled) and the hedging counters.
func clusterMetricsOf(nd *benchClusterNode) (loads, hedged, hedgeWon int64) {
	resp, err := http.Get(nd.base + "/metrics")
	if err != nil {
		return 0, 0, 0
	}
	defer resp.Body.Close()
	var ms struct {
		Persist struct {
			Loads int64 `json:"loads"`
		} `json:"persist"`
		Cluster struct {
			Hedged   int64 `json:"hedged"`
			HedgeWon int64 `json:"hedgeWon"`
		} `json:"cluster"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&ms)
	return ms.Persist.Loads, ms.Cluster.Hedged, ms.Cluster.HedgeWon
}

// runClusterThroughput measures one topology on one working set and
// returns (wall, snapshot-store loads summed over nodes).
func runClusterThroughput(n, replicas, maxDicts, dicts, patterns, total int, reqBody []byte, mut func(cfg *server.Config)) (time.Duration, int64, error) {
	nodes, cleanup, err := startBenchCluster(n, replicas, maxDicts, 25*time.Millisecond, mut)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	ids, err := clusterBenchDicts(nodes, dicts, patterns)
	if err != nil {
		return 0, 0, err
	}
	// Warm: one request per (node, dict) pair so owners pull their replicas
	// off the clock; on the thrashing topology this also fills the LRU to
	// its steady state.
	if _, err := clusterBenchDrive(nodes, ids, reqBody, clusterBenchClients, max(total/8, n*dicts)); err != nil {
		return 0, 0, err
	}
	preLoads := int64(0)
	for _, nd := range nodes {
		p, _, _ := clusterMetricsOf(nd)
		preLoads += p
	}
	wall, err := clusterBenchDrive(nodes, ids, reqBody, clusterBenchClients, total)
	if err != nil {
		return 0, 0, err
	}
	loads := int64(0)
	for _, nd := range nodes {
		p, _, _ := clusterMetricsOf(nd)
		loads += p
	}
	return wall, loads - preLoads, nil
}

// runHedgeTail measures K3: request latency through a non-owner router
// when the primary replica stalls every 10th match for 10ms, with hedging
// effectively off (budget ≫ stall) vs on (budget ≪ stall).
func runHedgeTail(hedgeAfter time.Duration, total int, reqBody []byte) (p50, p99 time.Duration, hedged, hedgeWon int64, err error) {
	nodes, cleanup, err := startBenchCluster(3, 2, 8, hedgeAfter, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cleanup()
	ids, err := clusterBenchDicts(nodes, 1, 64)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	id := ids[0]

	// Place the fault: the ring names the owners (primary first); the one
	// non-owner is the router every request goes through, so each request
	// is a proxy with the slow node as first candidate.
	names := make([]string, len(nodes))
	byName := map[string]*benchClusterNode{}
	for i, nd := range nodes {
		names[i] = nd.name
		byName[nd.name] = nd
	}
	ring, err := cluster.NewRing(names, cluster.DefaultVirtualNodes, 2)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	owners := ring.Owners(id)
	slow := byName[owners[0]]
	var router *benchClusterNode
	for _, nd := range nodes {
		if nd.name != owners[0] && nd.name != owners[1] {
			router = nd
		}
	}
	// Warm both owners (replica pull off the clock), then arm the stall.
	for _, nd := range nodes {
		if _, derr := clusterBenchDrive([]*benchClusterNode{nd}, ids, reqBody, 1, 4); derr != nil {
			return 0, 0, 0, 0, derr
		}
	}
	slow.delayFor.Store(int64(10 * time.Millisecond))
	slow.delayEvery.Store(10)

	lat := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		t0 := time.Now()
		resp, perr := http.Post(router.base+"/v1/dicts/"+id+"/match", "application/json", bytes.NewReader(reqBody))
		if perr != nil {
			return 0, 0, 0, 0, perr
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, 0, 0, 0, fmt.Errorf("match via router: %d %s", resp.StatusCode, body)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 = lat[len(lat)/2]
	p99 = lat[len(lat)*99/100]
	_, hedged, hedgeWon = clusterMetricsOf(router)
	return p50, p99, hedged, hedgeWon, nil
}

// RunClusterPerf measures the K-series.
func RunClusterPerf(scale Scale) []ClusterPerfResult {
	reqText := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte("abracadabra "), 6)[:64])
	reqBody, _ := json.Marshal(map[string]any{"textB64": reqText})
	var out []ClusterPerfResult

	// K1 — resident working set: 3 dictionaries, everything fits everywhere.
	// The honest row: on one core the 3-node topology pays a proxy hop on
	// routed requests and buys no parallelism, so ~1x is the expected shape.
	{
		total := scale.pick(1536, 6144)
		total -= total % clusterBenchClients
		dicts, patterns := 3, 192
		wall1, _, err := runClusterThroughput(1, 1, 8, dicts, patterns, total, reqBody, nil)
		if err != nil {
			panic(err)
		}
		wall3, _, err := runClusterThroughput(3, 2, 8, dicts, patterns, total, reqBody, nil)
		if err != nil {
			panic(err)
		}
		rps1 := float64(total) / wall1.Seconds()
		rps3 := float64(total) / wall3.Seconds()
		out = append(out,
			ClusterPerfResult{ID: "K1", Name: "resident_mix", Config: "1node", Nodes: 1, Replicas: 1,
				Clients: clusterBenchClients, Requests: total, Dicts: dicts,
				NsPerReq: wall1.Nanoseconds() / int64(total), ReqPerSec: rps1},
			ClusterPerfResult{ID: "K1", Name: "resident_mix", Config: "3node", Nodes: 3, Replicas: 2,
				Clients: clusterBenchClients, Requests: total, Dicts: dicts,
				NsPerReq: wall3.Nanoseconds() / int64(total), ReqPerSec: rps3,
				Speedup: rps3 / rps1})
	}

	// K2 — capacity thrash: 12 dictionaries against a 6-entry registry.
	// Round-robin access over 12 > 6 is LRU's pathological case — the one
	// node reloads a snapshot on nearly every request — while three nodes
	// hold 4 each (R=1) with room to spare. This is the cluster's real
	// economics on a small machine: aggregate registry capacity.
	{
		total := scale.pick(1024, 4096)
		total -= total % clusterBenchClients
		// 8 registry slots per node: the single node faces 12 dictionaries
		// round-robin — LRU's pathological case, a miss nearly every
		// request — while across three nodes no member owns more than its
		// capacity even with ring skew.
		dicts, patterns, maxDicts := 12, 192, 8
		wall1, loads1, err := runClusterThroughput(1, 1, maxDicts, dicts, patterns, total, reqBody, nil)
		if err != nil {
			panic(err)
		}
		wall3, loads3, err := runClusterThroughput(3, 1, maxDicts, dicts, patterns, total, reqBody, nil)
		if err != nil {
			panic(err)
		}
		rps1 := float64(total) / wall1.Seconds()
		rps3 := float64(total) / wall3.Seconds()
		out = append(out,
			ClusterPerfResult{ID: "K2", Name: "capacity_thrash", Config: "1node", Nodes: 1, Replicas: 1,
				Clients: clusterBenchClients, Requests: total, Dicts: dicts,
				NsPerReq: wall1.Nanoseconds() / int64(total), ReqPerSec: rps1,
				SnapshotReloads: loads1},
			ClusterPerfResult{ID: "K2", Name: "capacity_thrash", Config: "3node", Nodes: 3, Replicas: 1,
				Clients: clusterBenchClients, Requests: total, Dicts: dicts,
				NsPerReq: wall3.Nanoseconds() / int64(total), ReqPerSec: rps3,
				Speedup: rps3 / rps1, SnapshotReloads: loads3})
	}

	// K3 — hedged tail: one replica stalls every 10th match for 10ms. With
	// the hedge budget above the stall the router waits it out (p99 ≈
	// stall); with a 2ms budget the hedge beats the straggler (p99 ≈
	// budget + service).
	{
		total := scale.pick(400, 1200)
		p50u, p99u, _, _, err := runHedgeTail(5*time.Second, total, reqBody)
		if err != nil {
			panic(err)
		}
		p50h, p99h, hedged, hedgeWon, err := runHedgeTail(2*time.Millisecond, total, reqBody)
		if err != nil {
			panic(err)
		}
		out = append(out,
			ClusterPerfResult{ID: "K3", Name: "hedged_tail", Config: "unhedged", Nodes: 3, Replicas: 2,
				Clients: 1, Requests: total,
				P50Ms: float64(p50u.Nanoseconds()) / 1e6, P99Ms: float64(p99u.Nanoseconds()) / 1e6},
			ClusterPerfResult{ID: "K3", Name: "hedged_tail", Config: "hedged", Nodes: 3, Replicas: 2,
				Clients: 1, Requests: total,
				P50Ms: float64(p50h.Nanoseconds()) / 1e6, P99Ms: float64(p99h.Nanoseconds()) / 1e6,
				Speedup: float64(p99u) / float64(max64(int64(p99h), 1)),
				Hedged:  hedged, HedgeWon: hedgeWon})
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E21Cluster prints the human-readable K-series tables.
func E21Cluster() Experiment {
	return Experiment{
		ID:    "E21",
		Title: "Cluster serving: sharded registry capacity and hedged tails (internal/cluster, DESIGN §15)",
		Claim: "on a replicated cluster the dictionary registry's aggregate capacity multiplies small-request throughput once the working set overflows one node's LRU, and hedged proxying bounds the tail a slow replica inflicts; a fully resident working set costs only the proxy hop",
		Run: func(w io.Writer, scale Scale) {
			results := RunClusterPerf(scale)
			t := newTable(w, "series", "workload", "config", "nodes", "R", "dicts", "clients", "req/s", "speedup", "reloads")
			for _, r := range results {
				if r.ID == "K3" {
					continue
				}
				sp := ""
				if r.Speedup > 0 {
					sp = fmt.Sprintf("%.2fx", r.Speedup)
				}
				t.row(r.ID, r.Name, r.Config, r.Nodes, r.Replicas, r.Dicts, r.Clients,
					fmt.Sprintf("%.0f", r.ReqPerSec), sp, r.SnapshotReloads)
			}
			t.flush()
			t2 := newTable(w, "series", "config", "p50 ms", "p99 ms", "hedged", "hedge won", "p99 speedup")
			for _, r := range results {
				if r.ID != "K3" {
					continue
				}
				sp := ""
				if r.Speedup > 0 {
					sp = fmt.Sprintf("%.1fx", r.Speedup)
				}
				t2.row(r.ID, r.Config, fmt.Sprintf("%.2f", r.P50Ms), fmt.Sprintf("%.2f", r.P99Ms),
					r.Hedged, r.HedgeWon, sp)
			}
			t2.flush()
			fmt.Fprintln(w, "\nexpected shape: K1 below 1x — the honest row: one core buys no parallelism and routed requests pay both proxy hops on the same CPU; K2 ≥2x — the 1-node LRU reloads a snapshot on nearly every request (reloads column) while 3 nodes keep the whole set resident; K3 hedged p99 near the 2ms hedge budget plus one service time, instead of the 10ms stall")
		},
	}
}
