// E20 and the Z-series: compressed-domain matching (internal/czsearch). The
// claim under test is the point of searching the token stream at all: on
// compressible corpora the scanner answers in time proportional to the
// bytes it actually touches (token boundaries plus a ≤ maxPatLen
// resynchronization run per copy), so represented-bytes-per-second beats
// decompress-then-match by roughly the compression ratio — and on
// incompressible corpora, where every byte arrives as a literal, it honestly
// does not.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/czsearch"
	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// CzPerfResult is one Z-series measurement for BENCH_PR8.json: the same
// (dictionary, container) workload answered by the compressed-domain scanner
// and by decompress-then-match on the same dense automaton — the strongest
// honest baseline, since the tree walk would flatter the scanner.
type CzPerfResult struct {
	ID        string  `json:"id"`     // Z-series experiment id
	Name      string  `json:"name"`   // corpus name
	Config    string  `json:"config"` // "czsearch" or "decompress+match"
	TextLen   int     `json:"textLen"`
	Tokens    int     `json:"tokens"`
	Ratio     float64 `json:"compressionRatio"` // container bytes / text bytes
	NsPerOp   int64   `json:"nsPerOp"`
	RepMBPerS float64 `json:"representedMBPerSec"`
	// czsearch rows only. BytesTouched/TouchedPct report how little of the
	// represented text fed automaton transitions — reported even on losing
	// rows, so the table cannot overstate the savings.
	Speedup      float64 `json:"speedup,omitempty"` // baseline ns / czsearch ns
	BytesTouched int64   `json:"bytesTouched,omitempty"`
	TouchedPct   float64 `json:"touchedPct,omitempty"`
	SyncSkipped  int64   `json:"syncSkipped,omitempty"`
	MemoHits     int64   `json:"memoHits,omitempty"`
}

// czCorpus is one Z-series workload.
type czCorpus struct {
	name  string
	text  []byte
	sigma int
}

// czCorpora spans the compressibility axis: repetitive (LZ ratio ~1%),
// mutated-repetitive (mid ratio, where the crossover lives), Markov and
// uniform (barely/not compressible — the losing rows the scanner must
// report honestly).
func czCorpora(scale Scale) []czCorpus {
	n := scale.pick(1<<18, 1<<21)
	g := textgen.New(20613)
	return []czCorpus{
		{"repetitive", g.Repetitive(n, 256, 0.001), 26},
		{"mutated", g.Repetitive(n, 64, 0.02), 26},
		{"markov", g.Markov(n, 16, 0.25), 16},
		{"uniform", g.Uniform(n, 26), 26},
	}
}

// RunCzPerf measures the Z-series.
func RunCzPerf(scale Scale) []CzPerfResult {
	m := pram.NewSequential()
	var out []CzPerfResult
	for i, c := range czCorpora(scale) {
		id := fmt.Sprintf("Z%d", i+1)
		patterns := textgen.New(uint64(977+i)).Dictionary(64, 4, 12, c.sigma)
		aut, err := dense.Compile(patterns, dense.Options{})
		if err != nil {
			panic(err) // sweep sizes are far below any table budget
		}
		var enc bytes.Buffer
		if err := lz.EncodeStream(&enc, lz.Compress(m, c.text)); err != nil {
			panic(err)
		}
		container := enc.Bytes()
		ratio := float64(len(container)) / float64(len(c.text))

		// Baseline: decode the container, expand it, scan with the same
		// automaton — what the serving layer's fallback and oracle do.
		sinkCount := 0
		baseNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				cc, err := lz.DecodeStream(container)
				if err != nil {
					b.Fatal(err)
				}
				text, err := lz.Decode(cc)
				if err != nil {
					b.Fatal(err)
				}
				if err := aut.Scan(text, func(pat int32, from, to int) error { sinkCount++; return nil }); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()

		sc := czsearch.NewScanner(aut, czsearch.Config{})
		var st czsearch.Stats
		czNs := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				dec, err := lz.NewDecoder(bytes.NewReader(container))
				if err != nil {
					b.Fatal(err)
				}
				st, err = sc.Run(context.Background(), dec, func(czsearch.Event) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()

		out = append(out,
			CzPerfResult{
				ID: id, Name: c.name, Config: "decompress+match",
				TextLen: len(c.text), Tokens: int(st.Tokens), Ratio: ratio,
				NsPerOp: baseNs, RepMBPerS: mbPerSec(len(c.text), baseNs),
			},
			CzPerfResult{
				ID: id, Name: c.name, Config: "czsearch",
				TextLen: len(c.text), Tokens: int(st.Tokens), Ratio: ratio,
				NsPerOp: czNs, RepMBPerS: mbPerSec(len(c.text), czNs),
				Speedup:      float64(baseNs) / float64(czNs),
				BytesTouched: st.BytesTouched,
				TouchedPct:   100 * float64(st.BytesTouched) / float64(max(st.BytesRepresented, 1)),
				SyncSkipped:  st.SyncSkipped,
				MemoHits:     st.MemoHits,
			})
	}
	return out
}

// E20Czsearch prints the human-readable Z-series table.
func E20Czsearch() Experiment {
	return Experiment{
		ID:    "E20",
		Title: "Compressed-domain matching: token-stream scan vs decompress-then-match (internal/czsearch, DESIGN §14)",
		Claim: "matching the LZ1 token stream directly costs automaton work proportional to bytes touched (token boundaries + one ≤ maxPatLen resync run per copy), so represented-MB/s beats decompress-then-match roughly by the compression ratio on compressible corpora — and loses honestly on incompressible ones",
		Run: func(w io.Writer, scale Scale) {
			results := RunCzPerf(scale)
			t := newTable(w, "corpus", "ratio", "tokens", "base MB/s", "cz MB/s", "speedup", "touched %", "syncSkipped", "memo hits")
			for i := 0; i+1 < len(results); i += 2 {
				base, cz := results[i], results[i+1]
				t.row(base.Name, fmt.Sprintf("%.4f", base.Ratio), base.Tokens,
					fmt.Sprintf("%.1f", base.RepMBPerS), fmt.Sprintf("%.1f", cz.RepMBPerS),
					fmt.Sprintf("%.2fx", cz.Speedup),
					fmt.Sprintf("%.2f%%", cz.TouchedPct), cz.SyncSkipped, cz.MemoHits)
			}
			t.flush()
			fmt.Fprintln(w, "\nMB/s are represented bytes per second; \"touched\" is what the automaton actually consumed.")
			fmt.Fprintln(w, "Bytes-touched accounting: touched + syncSkipped + memo == represented, checked by the test suite.")
		},
	}
}
