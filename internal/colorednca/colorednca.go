// Package colorednca implements the paper's nearest colored ancestors
// problem (§3.2): preprocess a rooted tree whose nodes carry colors so that
// Find(v, c) — the nearest ancestor of v (possibly v itself) colored c —
// is answered fast.
//
// Both of the paper's variants are provided:
//
//   - Naive: O(n·|C|) preprocessing work, O(1) query. The paper builds a
//     skeleton tree per color and answers with an LCA; we materialize the
//     equivalent per-color ancestor tables directly (same bounds, same
//     answers).
//   - Improved: O(n + C) structure size, O(log log n) query, where C is the
//     total number of (node, color) pairs. Exactly as in the paper, the
//     colored nodes of each color are reduced to ranges of Euler-tour
//     positions queried through a van Emde Boas predecessor structure.
//
// The single-color special case (the paper's Lemma 2.7, nearest *marked*
// ancestor) is NearestMarkedAll, computed for every node at once by pointer
// doubling.
package colorednca

import (
	"sort"

	"repro/internal/eulertour"
	"repro/internal/par"
	"repro/internal/pram"
	"repro/internal/veb"
)

// Colored assigns Color to Node. A node may carry several colors.
type Colored struct {
	Node  int
	Color int32
}

// Naive is the O(n·|C|)-preprocessing, O(1)-query variant.
type Naive struct {
	classOf map[int32]int
	anc     [][]int32 // anc[class][v] = nearest class-colored ancestor of v, -1 if none
}

// NewNaive builds per-color nearest-ancestor tables. Distinct colors each
// cost one O(n) top-down pass (run as |C| parallel pointer-doubling passes).
func NewNaive(m *pram.Machine, tree *eulertour.Tree, colors []Colored) *Naive {
	s := &Naive{classOf: make(map[int32]int)}
	byColor := groupByColor(colors)
	for _, g := range byColor {
		s.classOf[g.color] = len(s.anc)
		marked := make([]bool, tree.N)
		for _, v := range g.nodes {
			marked[v] = true
		}
		s.anc = append(s.anc, NearestMarkedAll(m, tree.Parent, marked))
	}
	return s
}

// Find returns the nearest ancestor of v (or v itself) with color c, or -1.
func (s *Naive) Find(v int, c int32) int {
	cl, ok := s.classOf[c]
	if !ok {
		return -1
	}
	return int(s.anc[cl][v])
}

// Improved is the O(n + C)-size, O(log log n)-query variant.
type Improved struct {
	tour    *eulertour.Tour
	classOf map[int32]int
	classes []colorClass
}

type colorClass struct {
	set    *veb.Tree     // Euler-tour First/Last positions of colored nodes
	owner  map[int]int32 // position -> colored node
	upSame []int32       // per colored node (indexed in class order): nearest
	// same-color proper ancestor, -1 if none
	indexIn map[int]int // node -> index into upSame
}

type colorGroup struct {
	color int32
	nodes []int
}

func groupByColor(colors []Colored) []colorGroup {
	sorted := append([]Colored(nil), colors...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Color != sorted[j].Color {
			return sorted[i].Color < sorted[j].Color
		}
		return sorted[i].Node < sorted[j].Node
	})
	var out []colorGroup
	for i := 0; i < len(sorted); {
		j := i
		var nodes []int
		for ; j < len(sorted) && sorted[j].Color == sorted[i].Color; j++ {
			if len(nodes) == 0 || nodes[len(nodes)-1] != sorted[j].Node {
				nodes = append(nodes, sorted[j].Node)
			}
		}
		out = append(out, colorGroup{sorted[i].Color, nodes})
		i = j
	}
	return out
}

// NewImproved builds the Euler-range + van Emde Boas structure. The work is
// O(n) for the tour plus O(C log log n) over all color classes; classes are
// processed as one parallel step whose per-processor cost is the class size
// (charged as the maximum class size, see the Account call).
func NewImproved(m *pram.Machine, tree *eulertour.Tree, tour *eulertour.Tour, colors []Colored) *Improved {
	s := &Improved{tour: tour, classOf: make(map[int32]int)}
	groups := groupByColor(colors)
	s.classes = make([]colorClass, len(groups))
	maxClass := 0
	total := 0
	for i, g := range groups {
		s.classOf[g.color] = i
		if len(g.nodes) > maxClass {
			maxClass = len(g.nodes)
		}
		total += len(g.nodes)
	}
	universe := len(tour.Order)
	if universe == 0 {
		universe = 1
	}
	m.Account(int64(total), int64(maxClass))
	m.ParallelFor(len(groups), func(i int) {
		s.classes[i] = buildColorClass(tour, universe, groups[i])
	})
	return s
}

// buildColorClass materializes one color's structure: van Emde Boas set of
// Euler positions, position→node ownership, and per-node nearest same-color
// proper ancestor. Deterministic given the tour, so the parallel build and
// the sequential snapshot restore produce identical structures.
func buildColorClass(tour *eulertour.Tour, universe int, g colorGroup) colorClass {
	cl := colorClass{
		set:     veb.New(universe),
		owner:   make(map[int]int32, 2*len(g.nodes)),
		upSame:  make([]int32, len(g.nodes)),
		indexIn: make(map[int]int, len(g.nodes)),
	}
	// Nodes sorted by First position = preorder within the class.
	nodes := append([]int(nil), g.nodes...)
	sort.Slice(nodes, func(a, b int) bool { return tour.First[nodes[a]] < tour.First[nodes[b]] })
	var stack []int
	for k, v := range nodes {
		cl.indexIn[v] = k
		f, l := int(tour.First[v]), int(tour.Last[v])
		cl.set.Insert(f)
		cl.set.Insert(l)
		// Tour positions identify nodes uniquely (position p is an
		// event of Order[p] only), so these writes never collide.
		cl.owner[f] = int32(v)
		cl.owner[l] = int32(v)
		// Pop closed intervals; the top of the stack then encloses v.
		for len(stack) > 0 && tour.Last[stack[len(stack)-1]] < tour.First[v] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			cl.upSame[k] = -1
		} else {
			cl.upSame[k] = int32(stack[len(stack)-1])
		}
		stack = append(stack, v)
	}
	return cl
}

// RestoreImproved rebuilds the Improved structure sequentially, with no
// machine and zero PRAM work: the per-class construction is the same
// deterministic pass NewImproved runs, so queries answer identically.
// Snapshot decoding (internal/persist) uses it.
func RestoreImproved(tour *eulertour.Tour, colors []Colored) *Improved {
	s := &Improved{tour: tour, classOf: make(map[int32]int)}
	groups := groupByColor(colors)
	s.classes = make([]colorClass, len(groups))
	universe := len(tour.Order)
	if universe == 0 {
		universe = 1
	}
	for i, g := range groups {
		s.classOf[g.color] = i
		s.classes[i] = buildColorClass(tour, universe, g)
	}
	return s
}

// RestoreNaive rebuilds the Naive per-color ancestor tables sequentially
// (one preorder pass per color, parent resolved before child), with no
// machine and zero PRAM work. The tables equal NearestMarkedAll's output —
// both compute the nearest marked ancestor function — so queries answer
// identically. Snapshot decoding (internal/persist) uses it.
func RestoreNaive(tree *eulertour.Tree, colors []Colored) *Naive {
	s := &Naive{classOf: make(map[int32]int)}
	for _, g := range groupByColor(colors) {
		s.classOf[g.color] = len(s.anc)
		marked := make([]bool, tree.N)
		for _, v := range g.nodes {
			marked[v] = true
		}
		anc := make([]int32, tree.N)
		stack := []int32{int32(tree.Root)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch {
			case marked[v]:
				anc[v] = v
			case tree.Parent[v] < 0:
				anc[v] = -1
			default:
				anc[v] = anc[tree.Parent[v]]
			}
			stack = append(stack, tree.Children(int(v))...)
		}
		s.anc = append(s.anc, anc)
	}
	return s
}

// Find returns the nearest ancestor of v (or v itself) colored c, or -1.
// O(log log n): one predecessor query plus O(1) checks.
func (s *Improved) Find(v int, c int32) int {
	ci, ok := s.classOf[c]
	if !ok {
		return -1
	}
	cl := &s.classes[ci]
	fv := int(s.tour.First[v])
	p := cl.set.Predecessor(fv + 1) // largest stored position <= First[v]
	if p == veb.None {
		return -1
	}
	u := int(cl.owner[p])
	// If u's tour interval contains v's first visit, u is the answer (it is
	// the deepest colored ancestor: any deeper one would have an event
	// between p and First[v]). Otherwise u's subtree closed before v, and
	// the colored ancestors of v coincide with the colored proper ancestors
	// of u, whose nearest representative was precomputed.
	if s.tour.First[u] <= s.tour.First[v] && s.tour.First[v] <= s.tour.Last[u] {
		return u
	}
	return int(cl.upSame[cl.indexIn[u]])
}

// NearestMarkedAll solves the paper's Lemma 2.7 for every node at once:
// given marked nodes, return each node's nearest marked ancestor (possibly
// itself), or -1. Pointer doubling over "stop at marked" parents: O(log n)
// rounds, O(n log n) work.
func NearestMarkedAll(m *pram.Machine, parent []int, marked []bool) []int32 {
	n := len(parent)
	f := m.GetInts(n)
	m.ParallelFor(n, func(v int) {
		if marked[v] || parent[v] < 0 {
			f[v] = v
		} else {
			f[v] = parent[v]
		}
	})
	roots := par.PointerJumpRoots(m, f)
	m.PutInts(f)
	out := make([]int32, n)
	m.ParallelFor(n, func(v int) {
		r := roots[v]
		if marked[r] {
			out[v] = int32(r)
		} else {
			out[v] = -1
		}
	})
	m.PutInts(roots)
	return out
}
