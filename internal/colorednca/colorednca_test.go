package colorednca

import (
	"math/rand/v2"
	"testing"

	"repro/internal/eulertour"
	"repro/internal/pram"
)

func randomTree(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	p[0] = -1
	for v := 1; v < n; v++ {
		p[v] = rng.IntN(v)
	}
	return p
}

func bruteFind(parent []int, colorsOf map[int]map[int32]bool, v int, c int32) int {
	for x := v; x != -1; x = parent[x] {
		if colorsOf[x][c] {
			return x
		}
	}
	return -1
}

func buildColorMap(colors []Colored) map[int]map[int32]bool {
	m := map[int]map[int32]bool{}
	for _, cc := range colors {
		if m[cc.Node] == nil {
			m[cc.Node] = map[int32]bool{}
		}
		m[cc.Node][cc.Color] = true
	}
	return m
}

func TestNaiveAndImprovedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{1, 2, 5, 50, 300} {
			for _, numColors := range []int{1, 2, 7} {
				parent := randomTree(rng, n)
				tree := eulertour.New(m, parent)
				tour := tree.Euler(m)
				var colors []Colored
				for v := 0; v < n; v++ {
					k := rng.IntN(3) // 0..2 colors per node
					for j := 0; j < k; j++ {
						colors = append(colors, Colored{v, int32(rng.IntN(numColors))})
					}
				}
				naive := NewNaive(m, tree, colors)
				impr := NewImproved(m, tree, tour, colors)
				cmap := buildColorMap(colors)
				for q := 0; q < 400; q++ {
					v := rng.IntN(n)
					c := int32(rng.IntN(numColors + 1)) // may be an unused color
					want := bruteFind(parent, cmap, v, c)
					if got := naive.Find(v, c); got != want {
						t.Fatalf("procs=%d n=%d naive Find(%d,%d)=%d want %d", procs, n, v, c, got, want)
					}
					if got := impr.Find(v, c); got != want {
						t.Fatalf("procs=%d n=%d improved Find(%d,%d)=%d want %d", procs, n, v, c, got, want)
					}
				}
			}
		}
	}
}

func TestFindSelfColored(t *testing.T) {
	m := pram.New(4)
	parent := []int{-1, 0, 1, 2}
	tree := eulertour.New(m, parent)
	tour := tree.Euler(m)
	colors := []Colored{{0, 5}, {2, 5}, {3, 7}}
	impr := NewImproved(m, tree, tour, colors)
	naive := NewNaive(m, tree, colors)
	for _, s := range []interface{ Find(int, int32) int }{impr, naive} {
		if got := s.Find(2, 5); got != 2 {
			t.Fatalf("self-colored Find = %d", got)
		}
		if got := s.Find(3, 5); got != 2 {
			t.Fatalf("Find(3,5) = %d", got)
		}
		if got := s.Find(1, 5); got != 0 {
			t.Fatalf("Find(1,5) = %d", got)
		}
		if got := s.Find(3, 7); got != 3 {
			t.Fatalf("Find(3,7) = %d", got)
		}
		if got := s.Find(2, 7); got != -1 {
			t.Fatalf("Find(2,7) = %d", got)
		}
		if got := s.Find(3, 99); got != -1 {
			t.Fatalf("unknown color Find = %d", got)
		}
	}
}

// The adversarial shape for the predecessor approach: colored nodes in
// sibling subtrees that close just before the query node opens.
func TestImprovedSiblingSubtreeDecoys(t *testing.T) {
	m := pram.New(4)
	// root 0; colored ancestor 1; below 1: decoy subtree {2,3,4} colored,
	// then query node 5.
	parent := []int{-1, 0, 1, 2, 2, 1}
	tree := eulertour.New(m, parent)
	tour := tree.Euler(m)
	colors := []Colored{{1, 1}, {3, 1}, {4, 1}, {2, 1}}
	impr := NewImproved(m, tree, tour, colors)
	if got := impr.Find(5, 1); got != 1 {
		t.Fatalf("decoy test: Find(5,1)=%d want 1", got)
	}
}

func TestNearestMarkedAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 114))
	for _, procs := range []int{1, 4} {
		m := pram.New(procs)
		for _, n := range []int{1, 2, 10, 200, 1000} {
			parent := randomTree(rng, n)
			marked := make([]bool, n)
			for v := range marked {
				marked[v] = rng.IntN(4) == 0
			}
			got := NearestMarkedAll(m, parent, marked)
			for v := 0; v < n; v++ {
				want := int32(-1)
				for x := v; x != -1; x = parent[x] {
					if marked[x] {
						want = int32(x)
						break
					}
				}
				if got[v] != want {
					t.Fatalf("procs=%d n=%d nma[%d]=%d want %d", procs, n, v, got[v], want)
				}
			}
		}
	}
}

func TestNearestMarkedAllNoneMarked(t *testing.T) {
	m := pram.New(4)
	parent := randomTree(rand.New(rand.NewPCG(1, 1)), 50)
	got := NearestMarkedAll(m, parent, make([]bool, 50))
	for v, g := range got {
		if g != -1 {
			t.Fatalf("nma[%d]=%d want -1", v, g)
		}
	}
}
