package server

import (
	"bytes"
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/persist"
	"repro/internal/pram"
)

// Dense serving path. A registered dictionary is lowered to a compiled
// internal/dense automaton — synchronously in mode "on", in the background in
// mode "auto" — and published onto the entry with an atomic pointer swap, the
// same publish discipline the circuit breaker uses for degraded state:
// requests either see nil (serve the tree walk) or a fully built automaton,
// never a partial one. The tree-walk Las Vegas matcher stays resident as the
// fallback for texts the automaton cannot serve yet and as the correctness
// oracle: the first dense request on an entry and every verifySampleEvery-th
// after it are re-matched through MatchChecked and compared; a divergence is
// counted, logged, and answered with the oracle's result.

// Dense serving modes (Config.DenseMode).
const (
	DenseOff  = "off"  // never compile, always tree walk
	DenseOn   = "on"   // compile synchronously at registration
	DenseAuto = "auto" // compile in the background; tree walk until ready
)

// validDenseMode reports whether s names a dense serving mode.
func validDenseMode(s string) bool {
	return s == DenseOff || s == DenseOn || s == DenseAuto
}

// verifySampleEvery is the sampled-verification period: dense request 1 and
// every multiple of this count are cross-checked against the oracle. The
// first-request check catches a wrong automaton before it serves anything in
// quantity; the steady-state sampling bounds oracle cost to ~1.6% of
// requests.
const verifySampleEvery = 64

// denseOptions builds the compile options from the server config.
func (s *Server) denseOptions() dense.Options {
	return dense.Options{MaxTableBytes: s.cfg.DenseMaxTableBytes}
}

// armDense starts (or performs) dense compilation for a freshly registered
// entry according to the serving mode. A snapshot-restored automaton is
// already on the entry and counts as a dense load, not a compile. upgrade,
// when non-nil, runs after a successful background compile with the new
// automaton — the create path uses it to rewrite the cached snapshot as a
// DENSE-bearing bundle so the next boot skips compilation too.
func (s *Server) armDense(e *Entry, upgrade func(*dense.Automaton)) {
	if s.cfg.DenseMode == DenseOff {
		return
	}
	if e.denseAut.Load() != nil {
		s.metrics.denseLoads.Add(1)
		return
	}
	if !e.denseElect.CompareAndSwap(false, true) {
		return // another path already compiled or is compiling
	}
	if s.cfg.DenseMode == DenseOn {
		s.compileDense(e, upgrade)
		return
	}
	go s.compileDense(e, upgrade)
}

// compileDense lowers the entry's dictionary and publishes the automaton.
// Failure (typically ErrTableTooLarge) is terminal for the entry: it keeps
// serving from the tree walk forever, which is exactly the fallback story.
func (s *Server) compileDense(e *Entry, upgrade func(*dense.Automaton)) {
	e.mu.RLock()
	dict := e.dict
	e.mu.RUnlock()
	start := time.Now()
	a, err := dense.CompileDictionary(dict, s.denseOptions())
	if err != nil {
		s.metrics.denseCompileFails.Add(1)
		e.logf("entry %s: dense compile refused: %v; serving from tree walk", e.ID, err)
		return
	}
	e.denseAut.Store(a)
	s.metrics.denseCompiles.Add(1)
	s.metrics.denseCompileNanos.Add(time.Since(start).Nanoseconds())
	s.metrics.denseTableBytes.Add(a.Stats().TableBytes)
	if upgrade != nil {
		upgrade(a)
	}
}

// denseUpgradeFunc returns the post-compile hook that rewrites the cached
// snapshot under key as a DENSE-bearing bundle, or nil when there is no
// store. The encode runs under the entry's read lock so a concurrent reseed
// cannot tear the dictionary state.
func (s *Server) denseUpgradeFunc(e *Entry, key persist.Key) func(*dense.Automaton) {
	if s.store == nil {
		return nil
	}
	return func(a *dense.Automaton) {
		e.mu.RLock()
		data := persist.EncodeBundle(e.dict, a)
		e.mu.RUnlock()
		if n, err := s.store.PutBytes(key, data); err != nil {
			e.logf("entry %s: dense snapshot upgrade failed: %v", e.ID, err)
		} else {
			s.metrics.recordSave(n)
		}
	}
}

// Engine labels for matchResponse.Engine.
const (
	engineDense = "dense"
	engineTree  = "tree"
)

// serveMatchSolo answers one match request through the fastest correct path:
// the compiled dense automaton when the entry has one (deterministic — no
// Las Vegas loop, no attempts), otherwise the checked tree-walk matcher.
// Dense results are sampled against the oracle; on divergence the oracle's
// verified answer is served and the failure counted. The dense path also
// serves entries whose circuit breaker is open — the automaton does not
// depend on the poisoned fingerprint state the breaker protects against.
// (serveMatch in batch.go routes here for requests that bypass coalescing.)
func (s *Server) serveMatchSolo(ctx context.Context, e *Entry, text []byte) ([]core.Match, int, string, error) {
	a := e.denseAut.Load()
	if s.cfg.DenseMode == DenseOff || a == nil {
		if s.cfg.DenseMode != DenseOff {
			s.metrics.denseFallback.Add(1)
		}
		matches, attempts, _, err := e.MatchChecked(ctx, text, s.cfg.Procs, s.metrics)
		return matches, attempts, engineTree, err
	}

	matches, counters := denseMatchSharded(a, text, s.cfg.Procs)
	s.metrics.ChargePRAM("match", counters.Work, counters.Depth)

	if n := e.denseReqs.Add(1); n == 1 || n%verifySampleEvery == 0 {
		want, _, _, err := e.MatchChecked(ctx, text, s.cfg.Procs, s.metrics)
		switch {
		case err != nil:
			// A degraded entry or exhausted verify attempt cannot indict the
			// deterministic dense result; serve it and let the breaker's own
			// machinery handle the oracle's trouble.
			var de *DegradedError
			var fe *FingerprintExhaustedError
			if !errors.As(err, &de) && !errors.As(err, &fe) {
				return nil, 0, engineDense, err // context cancellation etc.
			}
		case sameMatchSets(e.patterns(), matches, want):
			s.metrics.denseVerifyPass.Add(1)
		default:
			s.metrics.denseVerifyFail.Add(1)
			e.logf("entry %s: dense result diverged from oracle on %d-byte text; serving oracle result", e.ID, len(text))
			return want, 1, engineTree, nil
		}
	}
	s.metrics.denseServed.Add(1)
	return matches, 1, engineDense, nil
}

// patterns returns the entry's pattern set. The slice is immutable after
// preprocessing (reseeds replace fingerprints, never patterns), so reading it
// without the lock is safe.
func (e *Entry) patterns() [][]byte {
	return e.dict.Patterns
}

// sameMatchSets reports whether two M[] outputs agree. Pattern ids may
// legitimately differ where duplicate patterns exist (implementations
// collapse duplicates onto different representatives); equality requires the
// same length and the same spelled pattern at every position.
func sameMatchSets(patterns [][]byte, got, want []core.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if got[i].Length != want[i].Length {
			return false
		}
		if got[i].PatternID < 0 || want[i].PatternID < 0 ||
			!bytes.Equal(patterns[got[i].PatternID], patterns[want[i].PatternID]) {
			return false
		}
	}
	return true
}

// denseMinShardLen is the smallest text shard worth a dedicated worker on
// the dense path. The automaton has no per-shard ramp-up beyond the halo
// bytes, but a goroutine + buffer still costs ~µs; 32 KiB keeps that noise
// under 5% of shard work.
const denseMinShardLen = 1 << 15

// denseMatchSharded runs the automaton over text, sharding across workers
// with a halo of maxPatternLen-1 bytes exactly like the tree-walk path
// (match.go): M[i] depends on at most that much lookahead, so every match
// starting inside a shard completes inside its halo. Counters follow the
// parallel composition rule — Work is total bytes scanned (including halo
// re-scans), Depth the largest single-worker span.
func denseMatchSharded(a *dense.Automaton, text []byte, procs int) ([]core.Match, pram.Counters) {
	out := make([]core.Match, len(text))
	counters := denseMatchShardedInto(a, text, out, procs)
	return out, counters
}

// denseMatchShardedInto is denseMatchSharded writing into a caller-provided
// buffer (len(out) must equal len(text)). The single-shard path — every
// batched small-request dispatch lands here — allocates nothing; the
// multi-shard path allocates only per-worker halo scratch.
func denseMatchShardedInto(a *dense.Automaton, text []byte, out []core.Match, procs int) pram.Counters {
	n := len(text)
	if procs < 1 {
		procs = 1
	}
	shards := procs
	if maxShards := (n + denseMinShardLen - 1) / denseMinShardLen; shards > maxShards {
		shards = maxShards
	}
	if shards <= 1 {
		a.MatchInto(text, out)
		return pram.Counters{Work: int64(n), Depth: int64(n)}
	}

	per := (n + shards - 1) / shards
	halo := a.MaxPatternLen() - 1
	work := int64(0)
	depth := int64(0)
	var wg sync.WaitGroup
	var panicked atomic.Pointer[pram.StepPanic]
	for w := 0; w < shards; w++ {
		start := w * per
		if start >= n {
			break
		}
		end := start + per
		if end > n {
			end = n
		}
		stop := end + halo
		if stop > n {
			stop = n
		}
		work += int64(stop - start)
		if d := int64(stop - start); d > depth {
			depth = d
		}
		wg.Add(1)
		go func(start, end, stop int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &pram.StepPanic{Value: r, Stack: debug.Stack()})
				}
			}()
			local := make([]core.Match, stop-start)
			a.MatchInto(text[start:stop], local)
			// Positions in the halo belong to the right neighbour.
			copy(out[start:end], local[:end-start])
		}(start, end, stop)
	}
	wg.Wait()
	if sp := panicked.Load(); sp != nil {
		panic(sp)
	}
	return pram.Counters{Work: work, Depth: depth}
}
