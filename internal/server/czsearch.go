package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/czsearch"
	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/stream"
)

// Compressed-domain matching endpoints. Where /v1/dicts/{id}/match reads
// text and /v1/decompress/stream expands a container, these two routes fuse
// the halves: an LZ1R1 container in, dictionary matches over the represented
// text out, without the server ever materializing that text on the fast
// path.
//
//	POST /v1/dicts/{id}/match/compressed           raw LZ1R1 in → NDJSON events out
//	POST /v1/dicts/{id}/match/compressed/buffered  JSON {dataB64} in → JSON hits out
//
// The streaming route follows the /match/stream conventions: no request
// deadline, no MaxBodyBytes cap (memory is bounded by the scanner's retained
// window, not the body size), NDJSON events in position order, and a final
// {"summary":...} line — or {"error":...}, which clients must treat as a
// failed stream since the HTTP status is long committed. The represented
// size from the container header is still capped by MaxExpandBytes: an
// unbounded-window scan retains the whole represented text as copy-source
// history, so the cap is the same zip-bomb guard /v1/decompress enforces.
//
// Engine selection mirrors the dense serving path: entries with a compiled
// automaton serve from the czsearch token-stream scanner (engine
// "czsearch"); the rest decompress through the windowed uncompressor fused
// to the tree-walk matcher (engine "tree", counted as a fallback). Scanner
// results are cross-checked against the decompress-then-match oracle on the
// first request and every verifySampleEvery-th after it — the same sampling
// the dense path uses — and a divergence fails the request loudly (500 or
// error trailer) rather than serving unverifiable output: the scanner's
// memo cache is exactly the kind of state a fault can poison (chaos point
// czsearch.cache), and the oracle is what detects it.

// engineCz labels responses answered by the compressed-domain scanner.
const engineCz = "czsearch"

// czFlushEvery bounds how many NDJSON events the streaming route buffers
// before pushing them to the client.
const czFlushEvery = 512

// czConfig is the scan configuration shared by both engines: the streaming
// window bounds retained history, MaxExpandBytes bounds represented output.
func (s *Server) czConfig() czsearch.Config {
	return czsearch.Config{Window: s.cfg.StreamWindow, MaxOutput: s.cfg.MaxExpandBytes}
}

// czAutomaton returns the entry's compiled automaton if the compressed scan
// may use it (nil = serve the decompress-and-match fallback).
func (s *Server) czAutomaton(e *Entry) *dense.Automaton {
	if s.cfg.DenseMode == DenseOff {
		return nil
	}
	return e.denseAut.Load()
}

// czRunner is a prepared compressed-domain scan: the container header has
// been validated (so the handler can still choose a proper HTTP status) but
// no token has been consumed yet.
type czRunner struct {
	n      int    // represented size from the container header
	engine string // engineCz or engineTree
	run    func(ctx context.Context, sink czsearch.Sink) (czsearch.Stats, error)
}

// czPrepare validates the container header on body and returns the runner
// for the fastest correct engine. aut is the caller's automaton decision
// (czAutomaton), passed in so the engine choice and the caller's sampling
// decision cannot disagree.
func (s *Server) czPrepare(e *Entry, aut *dense.Automaton, body io.Reader) (czRunner, error) {
	if aut != nil {
		dec, err := lz.NewDecoder(body)
		if err != nil {
			return czRunner{}, err
		}
		sc, _ := e.czPool.Get().(*czsearch.Scanner)
		if sc == nil {
			sc = czsearch.NewScanner(aut, s.czConfig())
		}
		return czRunner{n: dec.N(), engine: engineCz, run: func(ctx context.Context, sink czsearch.Sink) (czsearch.Stats, error) {
			st, err := sc.Run(ctx, dec, sink)
			// Run resets the scanner up front, so pooling it back even after
			// an error (or a chaos fault) cannot leak state into the next
			// request — the chaos suite pins this.
			e.czPool.Put(sc)
			return st, err
		}}, nil
	}
	f, err := czsearch.NewFallback(body, s.czConfig())
	if err != nil {
		return czRunner{}, err
	}
	return czRunner{n: f.N(), engine: engineTree, run: func(ctx context.Context, sink czsearch.Sink) (czsearch.Stats, error) {
		tm := entryMatcher{e: e, procs: s.cfg.Procs, mt: s.metrics}
		return f.Run(ctx, tm, stream.Config{SegmentBytes: s.cfg.SegmentBytes}, sink)
	}}, nil
}

// czObserve folds one successful scan into the service metrics.
func (s *Server) czObserve(engine string, st czsearch.Stats) {
	if engine == engineCz {
		s.metrics.czServed.Add(1)
	} else {
		s.metrics.czFallback.Add(1)
	}
	s.metrics.czTokens.Add(st.Tokens)
	s.metrics.czBytesRepresented.Add(st.BytesRepresented)
	s.metrics.czBytesTouched.Add(st.BytesTouched)
	s.metrics.czMemoHits.Add(st.MemoHits)
}

// czSampled reports whether this scanner-engine request is an oracle sample:
// the entry's first compressed request and every verifySampleEvery-th after
// it, the same cadence the dense match path verifies on.
func (e *Entry) czSampled() bool {
	n := e.czReqs.Add(1)
	return n == 1 || n%verifySampleEvery == 0
}

// czVerify cross-checks a scanner result against the decompress-then-match
// oracle: the teed container is expanded and run through the checked
// tree-walk matcher, and the event sets are compared by spelled pattern
// (duplicate patterns may legitimately resolve to different ids). Returns
// +1 on agreement, -1 on divergence, 0 when the oracle could not run (a
// degraded or exhausted oracle cannot indict the scan — the same rule the
// dense path applies).
func (s *Server) czVerify(ctx context.Context, e *Entry, container []byte, got []czsearch.Event) int {
	c, err := lz.DecodeStream(container)
	if err != nil {
		return 0 // the scanner consumed it, so this cannot happen; don't indict
	}
	text, err := lz.Decode(c)
	if err != nil {
		return 0
	}
	want, _, _, err := e.MatchChecked(ctx, text, s.cfg.Procs, s.metrics)
	if err != nil {
		return 0
	}
	if czSameEvents(e.patterns(), got, want) {
		s.metrics.czVerifyPass.Add(1)
		return 1
	}
	s.metrics.czVerifyFail.Add(1)
	e.logf("entry %s: compressed match diverged from oracle on %d-byte text", e.ID, len(text))
	return -1
}

// czSameEvents reports whether the scanner's event stream equals the
// oracle's M[] output: same positions, same lengths, and the same spelled
// pattern everywhere.
func czSameEvents(patterns [][]byte, got []czsearch.Event, want []core.Match) bool {
	j := 0
	for i, m := range want {
		if m.Length == 0 {
			continue
		}
		if j >= len(got) {
			return false
		}
		g := got[j]
		j++
		if g.Pos != int64(i) || g.Length != m.Length {
			return false
		}
		if g.PatternID != m.PatternID {
			if g.PatternID < 0 || m.PatternID < 0 ||
				int(g.PatternID) >= len(patterns) || int(m.PatternID) >= len(patterns) ||
				!bytes.Equal(patterns[g.PatternID], patterns[m.PatternID]) {
				return false
			}
		}
	}
	return j == len(got)
}

// cappedTee records the bytes written through it up to a cap; past the cap
// it discards everything and reports overflow, so an oversized container
// skips verification instead of buffering unboundedly.
type cappedTee struct {
	buf        bytes.Buffer
	cap        int64
	overflowed bool
}

func (ct *cappedTee) Write(p []byte) (int, error) {
	if !ct.overflowed {
		if int64(ct.buf.Len())+int64(len(p)) > ct.cap {
			ct.overflowed = true
			ct.buf.Reset()
		} else {
			ct.buf.Write(p)
		}
	}
	return len(p), nil
}

// handleMatchCompressed matches a streamed LZ1R1 container against a
// resident dictionary without decompressing it on the fast path. Raw
// container bytes in (chunked encoding welcome, MaxBodyBytes deliberately
// not applied), NDJSON match events out, {"summary":...} trailer on success.
func (s *Server) handleMatchCompressed(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}

	aut := s.czAutomaton(e)
	verify := aut != nil && e.czSampled()
	body := io.Reader(r.Body)
	var tee *cappedTee
	if verify {
		// The body streams through once; tee it so the oracle can re-expand
		// it after the scan. The cap only guards memory — a container too
		// large to tee just skips its verification turn.
		tee = &cappedTee{cap: s.cfg.MaxBodyBytes}
		body = io.TeeReader(r.Body, tee)
	}

	run, err := s.czPrepare(e, aut, body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad LZ1R1 stream: %v", err)
		return
	}
	if int64(run.n) > s.cfg.MaxExpandBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"represented size %d exceeds %d bytes", run.n, s.cfg.MaxExpandBytes)
		return
	}

	s.metrics.streamStarted.Add(1)
	s.metrics.streamActive.Add(1)
	defer s.metrics.streamActive.Add(-1)

	rc := http.NewResponseController(w)
	// Tokens are still being read from the body while events go out; on
	// HTTP/1.x the first response write would otherwise close the body.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 32<<10)

	var events []czsearch.Event // collected only for verification
	pending := 0
	sink := func(ev czsearch.Event) error {
		if verify {
			events = append(events, ev)
		}
		s.metrics.streamEvents.Add(1)
		if _, err := fmt.Fprintf(bw, `{"pos":%d,"pattern":%d,"length":%d}`+"\n", ev.Pos, ev.PatternID, ev.Length); err != nil {
			return err
		}
		if pending++; pending >= czFlushEvery {
			pending = 0
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
				return err
			}
		}
		return nil
	}

	st, err := run.run(r.Context(), sink)
	s.metrics.streamBytes.Add(st.BytesRepresented)
	if err != nil {
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			return // client went away; nothing to tell
		}
		// The status line is committed; the error travels as the last line.
		fmt.Fprintf(bw, `{"error":%q}`+"\n", err.Error())
		bw.Flush()
		return
	}
	s.czObserve(run.engine, st)
	if verify && !tee.overflowed && s.czVerify(r.Context(), e, tee.buf.Bytes(), events) < 0 {
		fmt.Fprintf(bw, `{"error":%q}`+"\n", "compressed match diverged from decompress-then-match oracle")
		bw.Flush()
		return
	}
	sb, _ := json.Marshal(st)
	fmt.Fprintf(bw, `{"summary":{"n":%d,"engine":%q,"stats":%s}}`+"\n", run.n, run.engine, sb)
	bw.Flush()
}

type matchCompressedRequest struct {
	DataB64 string `json:"dataB64"`
}

type matchCompressedResponse struct {
	N       int            `json:"n"`
	Matched int            `json:"matched"`
	Engine  string         `json:"engine"` // "czsearch" or "tree"
	Stats   czsearch.Stats `json:"stats"`
	Hits    []matchHit     `json:"hits"`
}

// handleMatchCompressedBuffered is the batch-friendly variant: one JSON
// request carrying the container ({"dataB64":...}), one JSON response with
// every hit. It goes through the ordinary buffered middleware (body cap,
// request deadline), and a sampled oracle divergence fails it with a clean
// 500 instead of a mid-stream trailer.
func (s *Server) handleMatchCompressedBuffered(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	var req matchCompressedRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.DataB64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad dataB64: %v", err)
		return
	}

	aut := s.czAutomaton(e)
	run, err := s.czPrepare(e, aut, bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad LZ1R1 stream: %v", err)
		return
	}
	if int64(run.n) > s.cfg.MaxExpandBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"represented size %d exceeds %d bytes", run.n, s.cfg.MaxExpandBytes)
		return
	}

	verify := aut != nil && e.czSampled()
	resp := matchCompressedResponse{N: run.n, Engine: run.engine, Hits: []matchHit{}}
	var events []czsearch.Event
	st, err := run.run(r.Context(), func(ev czsearch.Event) error {
		if verify {
			events = append(events, ev)
		}
		resp.Hits = append(resp.Hits, matchHit{Pos: int(ev.Pos), Pattern: int(ev.PatternID), Length: int(ev.Length)})
		return nil
	})
	if err != nil {
		var de *DegradedError
		if errors.As(err, &de) {
			writeDegraded(w, de)
			return
		}
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			writeCtxError(w, err)
			return
		}
		if chaos.IsInjected(err) {
			// A server-side fault, not a client-data problem.
			writeError(w, http.StatusInternalServerError, "compressed match failed: %v", err)
			return
		}
		// Everything else the scan can report is container-level: bad
		// tokens, window violations, a lying header.
		writeError(w, http.StatusUnprocessableEntity, "bad LZ1R1 stream: %v", err)
		return
	}
	s.czObserve(run.engine, st)
	if verify && s.czVerify(r.Context(), e, data, events) < 0 {
		writeError(w, http.StatusInternalServerError,
			"compressed match diverged from decompress-then-match oracle")
		return
	}
	resp.Stats = st
	resp.Matched = len(resp.Hits)
	writeJSON(w, http.StatusOK, resp)
}
