package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency histogram buckets. Bucket i counts
// requests with latency < 2^i microseconds; the last bucket is the
// overflow (everything slower than ~2^18 µs ≈ 262 ms lands there too).
const histBuckets = 20

// routeMetrics accumulates per-route request statistics. All fields are
// atomics so the hot path never takes a lock.
type routeMetrics struct {
	count       atomic.Int64
	errors      atomic.Int64 // responses with status >= 400
	totalMicros atomic.Int64
	maxMicros   atomic.Int64
	hist        [histBuckets]atomic.Int64
}

func (rm *routeMetrics) observe(d time.Duration, status int) {
	us := d.Microseconds()
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	rm.totalMicros.Add(us)
	for {
		old := rm.maxMicros.Load()
		if us <= old || rm.maxMicros.CompareAndSwap(old, us) {
			break
		}
	}
	b := 0
	for b < histBuckets-1 && int64(1)<<b <= us {
		b++
	}
	rm.hist[b].Add(1)
}

// quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// in microseconds from the power-of-two histogram.
func (rm *routeMetrics) quantile(q float64) int64 {
	total := int64(0)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = rm.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= target {
			return int64(1) << i // bucket upper bound
		}
	}
	return rm.maxMicros.Load()
}

// ledger accumulates the PRAM work/depth charged to one algorithm family
// across all requests — the serving-side continuation of the paper's
// work/depth accounting (DESIGN.md §3).
type ledger struct {
	ops   atomic.Int64 // requests that charged this ledger
	work  atomic.Int64
	depth atomic.Int64
}

// Metrics is the server-wide observability state behind GET /metrics.
type Metrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeMetrics

	algos map[string]*ledger // fixed key set, created up front

	rejected atomic.Int64 // 429s from the limiter
	timeouts atomic.Int64 // 503s from per-request deadlines
	panics   atomic.Int64 // requests converted to 500 by the recover wrapper
}

// pramAlgos is the fixed set of ledger keys. Registration charges
// "preprocess" (including Las Vegas reseeds); the request handlers charge
// the rest.
var pramAlgos = []string{"preprocess", "match", "check", "compress", "uncompress", "parse"}

func newMetrics() *Metrics {
	mt := &Metrics{
		start:  time.Now(),
		routes: make(map[string]*routeMetrics),
		algos:  make(map[string]*ledger, len(pramAlgos)),
	}
	for _, a := range pramAlgos {
		mt.algos[a] = &ledger{}
	}
	return mt
}

// route returns (creating if needed) the stats bucket for a route pattern.
func (mt *Metrics) route(pattern string) *routeMetrics {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	rm, ok := mt.routes[pattern]
	if !ok {
		rm = &routeMetrics{}
		mt.routes[pattern] = rm
	}
	return rm
}

// ChargePRAM adds work/depth to the named algorithm ledger. Unknown names
// are dropped rather than allocated so a typo cannot grow the map forever.
func (mt *Metrics) ChargePRAM(algo string, work, depth int64) {
	l, ok := mt.algos[algo]
	if !ok {
		return
	}
	l.ops.Add(1)
	l.work.Add(work)
	l.depth.Add(depth)
}

// routeSnapshot is the JSON shape of one route's statistics.
type routeSnapshot struct {
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	AvgMicros   float64 `json:"avgMicros"`
	P50Micros   int64   `json:"p50Micros"`
	P95Micros   int64   `json:"p95Micros"`
	P99Micros   int64   `json:"p99Micros"`
	MaxMicros   int64   `json:"maxMicros"`
	HistPow2Mic []int64 `json:"histPow2Micros"`
}

// ledgerSnapshot is the JSON shape of one algorithm's PRAM ledger.
type ledgerSnapshot struct {
	Ops   int64 `json:"ops"`
	Work  int64 `json:"work"`
	Depth int64 `json:"depth"`
}

// MetricsSnapshot is the GET /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64                   `json:"uptimeSeconds"`
	Requests      map[string]routeSnapshot  `json:"requests"`
	PRAM          map[string]ledgerSnapshot `json:"pram"`
	Registry      RegistrySnapshot          `json:"registry"`
	Limiter       limiterSnapshot           `json:"limiter"`
	Timeouts      int64                     `json:"timeouts"`
	Panics        int64                     `json:"panics"`
	RouteOrder    []string                  `json:"routeOrder"`
}

type limiterSnapshot struct {
	Inflight int   `json:"inflight"`
	Capacity int   `json:"capacity"`
	Rejected int64 `json:"rejected"`
}

// Snapshot assembles the full metrics payload.
func (mt *Metrics) Snapshot(reg *Registry, lim *Limiter) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(mt.start).Seconds(),
		Requests:      make(map[string]routeSnapshot),
		PRAM:          make(map[string]ledgerSnapshot, len(mt.algos)),
		Timeouts:      mt.timeouts.Load(),
		Panics:        mt.panics.Load(),
	}
	mt.mu.Lock()
	patterns := make([]string, 0, len(mt.routes))
	for p := range mt.routes {
		patterns = append(patterns, p)
	}
	mt.mu.Unlock()
	sort.Strings(patterns)
	snap.RouteOrder = patterns
	for _, p := range patterns {
		rm := mt.route(p)
		n := rm.count.Load()
		rs := routeSnapshot{
			Count:     n,
			Errors:    rm.errors.Load(),
			P50Micros: rm.quantile(0.50),
			P95Micros: rm.quantile(0.95),
			P99Micros: rm.quantile(0.99),
			MaxMicros: rm.maxMicros.Load(),
		}
		if n > 0 {
			rs.AvgMicros = float64(rm.totalMicros.Load()) / float64(n)
		}
		rs.HistPow2Mic = make([]int64, histBuckets)
		for i := range rs.HistPow2Mic {
			rs.HistPow2Mic[i] = rm.hist[i].Load()
		}
		snap.Requests[p] = rs
	}
	for name, l := range mt.algos {
		snap.PRAM[name] = ledgerSnapshot{Ops: l.ops.Load(), Work: l.work.Load(), Depth: l.depth.Load()}
	}
	if reg != nil {
		snap.Registry = reg.Snapshot()
	}
	if lim != nil {
		snap.Limiter = limiterSnapshot{
			Inflight: lim.Inflight(),
			Capacity: lim.Capacity(),
			Rejected: lim.Rejected(),
		}
	}
	return snap
}
