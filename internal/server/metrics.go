package server

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// histBuckets is the number of latency histogram buckets. Bucket i counts
// requests with latency < 2^i microseconds; the last bucket is the
// overflow (everything slower than ~2^18 µs ≈ 262 ms lands there too).
const histBuckets = 20

// counterShards stripes the per-route hot counters across cache lines so
// concurrent handlers on different cores don't serialize on one contended
// line. Eight padded cells cover typical core counts; beyond that the
// residual contention is per-shard, not global.
const counterShards = 8

// paddedCell is an atomic counter padded to a cache line.
type paddedCell struct {
	v atomic.Int64
	_ [56]byte
}

// shardedCounter is an add-mostly counter: Add touches one pseudo-randomly
// chosen shard (rand/v2's per-thread generator, no shared state), Load sums
// all shards. Loads are monotone but not a point-in-time snapshot, which is
// exactly the consistency /metrics needs.
type shardedCounter struct {
	cells [counterShards]paddedCell
}

func (c *shardedCounter) Add(delta int64) {
	c.cells[rand.Uint32()%counterShards].v.Add(delta)
}

func (c *shardedCounter) Load() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// routeMetrics accumulates per-route request statistics. Every field is
// atomic (the busiest ones sharded); the observe path takes no lock and
// touches no shared cache line beyond its own shard and histogram bucket.
type routeMetrics struct {
	count       shardedCounter
	errors      atomic.Int64 // responses with status >= 400 (rare: unsharded)
	totalMicros shardedCounter
	maxMicros   atomic.Int64
	hist        [histBuckets]atomic.Int64
}

func (rm *routeMetrics) observe(d time.Duration, status int) {
	us := d.Microseconds()
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	rm.totalMicros.Add(us)
	for {
		old := rm.maxMicros.Load()
		if us <= old || rm.maxMicros.CompareAndSwap(old, us) {
			break
		}
	}
	b := 0
	for b < histBuckets-1 && int64(1)<<b <= us {
		b++
	}
	rm.hist[b].Add(1)
}

// quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// in microseconds from the power-of-two histogram.
func (rm *routeMetrics) quantile(q float64) int64 {
	total := int64(0)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = rm.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= target {
			return int64(1) << i // bucket upper bound
		}
	}
	return rm.maxMicros.Load()
}

// ledger accumulates the PRAM work/depth charged to one algorithm family
// across all requests — the serving-side continuation of the paper's
// work/depth accounting (DESIGN.md §3).
type ledger struct {
	ops   atomic.Int64 // requests that charged this ledger
	work  atomic.Int64
	depth atomic.Int64
}

// Metrics is the server-wide observability state behind GET /metrics.
// The request path is entirely lock-free: route lookup reads an immutable
// copy-on-write map, counters are atomics, and the only mutex in the type
// serializes the (rare) registration of a new route pattern.
type Metrics struct {
	start time.Time

	// routes is an immutable map, swapped wholesale on insert. Readers
	// Load and index with no synchronization; writers clone under addMu.
	routes atomic.Pointer[map[string]*routeMetrics]
	addMu  sync.Mutex

	algos map[string]*ledger // fixed key set, created up front; read-only map

	rejected atomic.Int64 // 429s from the limiter
	timeouts atomic.Int64 // 503s from per-request deadlines
	panics   atomic.Int64 // requests converted to 500 by the recover wrapper

	// Resilience counters (breaker.go): fully exhausted Las Vegas requests,
	// circuit-breaker opens, and completed background recoveries.
	fpExhaustions     atomic.Int64
	breakerOpens      atomic.Int64
	breakerRecoveries atomic.Int64

	// Inbound RPC-resilience counters (DESIGN.md §16): requests shed
	// because the propagated deadline budget fell below the hop floor,
	// and requests answered from a local replica because every owner was
	// unreachable. The outbound counters (per-peer breakers, retry
	// budget, injected faults) live in the resilience.Pool.
	deadlineSheds atomic.Int64
	staleServes   atomic.Int64

	// Streaming endpoints. streamActive is a gauge (in-flight streams);
	// the rest are totals across completed and in-flight streams.
	streamActive   atomic.Int64
	streamStarted  atomic.Int64
	streamSegments atomic.Int64 // windows processed across all streams
	streamEvents   atomic.Int64 // NDJSON events / decompressed tokens emitted
	streamBytes    atomic.Int64 // text bytes in (match) or out (decompress)

	// Snapshot cache (internal/persist). cacheHits/cacheMisses count
	// create-time lookups; loads counts every successful snapshot decode
	// (cache hits, warm boots, explicit restores) with loadNanos their total
	// wall time; snapshotSaves/snapshotBytes count write-throughs and
	// explicit snapshots. Quarantine counts live on the persist.Store itself
	// (the single authority — it performs the renames); handleMetrics copies
	// them into the snapshot.
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	snapshotSaves atomic.Int64
	snapshotBytes atomic.Int64
	loads         atomic.Int64
	loadNanos     atomic.Int64

	// Dense serving path (dense.go). denseServed/denseFallback split the
	// match requests on dense-enabled servers by which engine answered;
	// denseVerifyPass/denseVerifyFail count sampled oracle cross-checks of
	// dense results; denseCompiles/denseCompileNanos/denseCompileFails and
	// denseTableBytes account the compile stage; denseLoads counts automata
	// restored from DENSE snapshot sections — dictionaries that skipped
	// compilation entirely.
	denseServed       atomic.Int64
	denseFallback     atomic.Int64
	denseVerifyPass   atomic.Int64
	denseVerifyFail   atomic.Int64
	denseCompiles     atomic.Int64
	denseCompileNanos atomic.Int64
	denseCompileFails atomic.Int64
	denseTableBytes   atomic.Int64
	denseLoads        atomic.Int64

	// Compressed-domain matching (czsearch.go). czServed/czFallback split the
	// compressed-match requests by engine (token-stream scanner vs
	// decompress-and-tree-walk); the byte counters expose the economics —
	// czBytesRepresented is what the streams stood for, czBytesTouched what
	// the automaton actually consumed; czVerifyPass/czVerifyFail count
	// sampled decompress-then-match oracle cross-checks.
	czServed           atomic.Int64
	czFallback         atomic.Int64
	czTokens           atomic.Int64
	czBytesRepresented atomic.Int64
	czBytesTouched     atomic.Int64
	czMemoHits         atomic.Int64
	czVerifyPass       atomic.Int64
	czVerifyFail       atomic.Int64

	// Cluster mode (cluster.go). clusterProxied counts requests this node
	// forwarded to an owner (create forwards included); clusterRedirected
	// the 307s sent instead when redirect mode is on; clusterHedged the
	// proxied requests that fired a timer-triggered second copy and
	// clusterHedgeWon those where that extra copy answered first;
	// clusterReplPulls/clusterReplBytes the snapshot bundles pulled from
	// peers to fill local gaps. Peer health transitions live on the
	// cluster.Health tracker and are copied into the snapshot.
	clusterProxied    atomic.Int64
	clusterRedirected atomic.Int64
	clusterHedged     atomic.Int64
	clusterHedgeWon   atomic.Int64
	clusterReplPulls  atomic.Int64
	clusterReplBytes  atomic.Int64

	// Request coalescing (batch.go). batchBatches counts dispatched groups
	// (at least one live request); batchRequests the requests they carried;
	// batchBytes their coalesced payload; batchSolo the eligible-mode
	// requests that bypassed the coalescer (mode "auto", text at or above
	// the shard threshold); batchDropped waiters that abandoned a queued
	// request; batchDelayHist the queue delay (admission → dispatch) in
	// power-of-two microsecond buckets.
	batchBatches   atomic.Int64
	batchRequests  atomic.Int64
	batchBytes     atomic.Int64
	batchSolo      atomic.Int64
	batchDropped   atomic.Int64
	batchDelayHist [histBuckets]atomic.Int64
}

// pramAlgos is the fixed set of ledger keys. Registration charges
// "preprocess" (including Las Vegas reseeds); the request handlers charge
// the rest.
var pramAlgos = []string{"preprocess", "match", "check", "compress", "uncompress", "parse"}

func newMetrics() *Metrics {
	mt := &Metrics{
		start: time.Now(),
		algos: make(map[string]*ledger, len(pramAlgos)),
	}
	empty := make(map[string]*routeMetrics)
	mt.routes.Store(&empty)
	for _, a := range pramAlgos {
		mt.algos[a] = &ledger{}
	}
	return mt
}

// route returns (creating if needed) the stats bucket for a route pattern.
// The fast path is a lock-free map read; creation clones the map under
// addMu and publishes the copy atomically (routes are registered at mux
// build time, so in practice the clone path runs a dozen times at startup
// and never again).
func (mt *Metrics) route(pattern string) *routeMetrics {
	if rm, ok := (*mt.routes.Load())[pattern]; ok {
		return rm
	}
	mt.addMu.Lock()
	defer mt.addMu.Unlock()
	cur := *mt.routes.Load()
	if rm, ok := cur[pattern]; ok {
		return rm
	}
	next := make(map[string]*routeMetrics, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	rm := &routeMetrics{}
	next[pattern] = rm
	mt.routes.Store(&next)
	return rm
}

// ChargePRAM adds work/depth to the named algorithm ledger. Unknown names
// are dropped rather than allocated so a typo cannot grow the map forever.
func (mt *Metrics) ChargePRAM(algo string, work, depth int64) {
	l, ok := mt.algos[algo]
	if !ok {
		return
	}
	l.ops.Add(1)
	l.work.Add(work)
	l.depth.Add(depth)
}

// routeSnapshot is the JSON shape of one route's statistics.
type routeSnapshot struct {
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	AvgMicros   float64 `json:"avgMicros"`
	P50Micros   int64   `json:"p50Micros"`
	P95Micros   int64   `json:"p95Micros"`
	P99Micros   int64   `json:"p99Micros"`
	MaxMicros   int64   `json:"maxMicros"`
	HistPow2Mic []int64 `json:"histPow2Micros"`
}

// ledgerSnapshot is the JSON shape of one algorithm's PRAM ledger.
type ledgerSnapshot struct {
	Ops   int64 `json:"ops"`
	Work  int64 `json:"work"`
	Depth int64 `json:"depth"`
}

// streamsSnapshot is the JSON shape of the streaming counters.
type streamsSnapshot struct {
	Active   int64 `json:"active"`
	Started  int64 `json:"started"`
	Segments int64 `json:"segments"`
	Events   int64 `json:"events"`
	Bytes    int64 `json:"bytes"`
}

// persistSnapshot is the JSON shape of the snapshot-cache counters.
// Quarantines and QuarantineFails come from the persist.Store counters
// (filled in by handleMetrics when a store is configured).
type persistSnapshot struct {
	Enabled         bool  `json:"enabled"`
	CacheHits       int64 `json:"cacheHits"`
	CacheMisses     int64 `json:"cacheMisses"`
	SnapshotSaves   int64 `json:"snapshotSaves"`
	SnapshotBytes   int64 `json:"snapshotBytes"`
	Loads           int64 `json:"loads"`
	LoadNanos       int64 `json:"loadNanos"`
	Quarantines     int64 `json:"quarantines"`
	QuarantineFails int64 `json:"quarantineFails"`
}

// denseSnapshot is the JSON shape of the dense serving-path counters.
type denseSnapshot struct {
	Served       int64 `json:"served"`       // match requests answered by the dense engine
	Fallback     int64 `json:"fallback"`     // dense-enabled requests that fell back to the tree walk
	VerifyPass   int64 `json:"verifyPass"`   // sampled oracle cross-checks that agreed
	VerifyFail   int64 `json:"verifyFail"`   // divergences (oracle result served instead)
	Compiles     int64 `json:"compiles"`     // automata compiled by this process
	CompileNanos int64 `json:"compileNanos"` // total compile wall time
	CompileFails int64 `json:"compileFails"` // compiles refused (table budget)
	TableBytes   int64 `json:"tableBytes"`   // total transition-table bytes compiled
	Loads        int64 `json:"loads"`        // automata restored from DENSE sections (zero compile)
}

// czSnapshot is the JSON shape of the compressed-domain matching counters.
type czSnapshot struct {
	Served           int64 `json:"served"`           // requests answered by the token-stream scanner
	Fallback         int64 `json:"fallback"`         // requests decompressed and tree-walked instead
	Tokens           int64 `json:"tokens"`           // tokens scanned across all requests
	BytesRepresented int64 `json:"bytesRepresented"` // text bytes the streams stood for
	BytesTouched     int64 `json:"bytesTouched"`     // bytes actually fed through the automaton
	MemoHits         int64 `json:"memoHits"`         // copy tokens replayed from the memo cache
	VerifyPass       int64 `json:"verifyPass"`       // sampled oracle cross-checks that agreed
	VerifyFail       int64 `json:"verifyFail"`       // divergences (request failed, fault surfaced)
}

// batchSnapshot is the JSON shape of the request-coalescing counters.
type batchSnapshot struct {
	Mode                string  `json:"mode"`                // configured BatchMode
	Batches             int64   `json:"batches"`             // dispatched groups
	Requests            int64   `json:"requests"`            // requests served through a batch
	MeanOccupancy       float64 `json:"meanOccupancy"`       // requests per batch
	CoalescedBytes      int64   `json:"coalescedBytes"`      // payload bytes joined
	SoloFallbacks       int64   `json:"soloFallbacks"`       // eligible-mode requests served solo
	Dropped             int64   `json:"dropped"`             // waiters that abandoned a queued request
	DelayHistPow2Micros []int64 `json:"delayHistPow2Micros"` // queue delay histogram
}

// observeBatch records one dispatched batch.
func (mt *Metrics) observeBatch(live, dropped int, bytes int64) {
	mt.batchBatches.Add(1)
	mt.batchRequests.Add(int64(live))
	mt.batchDropped.Add(int64(dropped))
	mt.batchBytes.Add(bytes)
}

// observeBatchDelay records one request's queue delay from its admission
// time to now (called at dispatch).
func (mt *Metrics) observeBatchDelay(admitted time.Time) {
	us := time.Since(admitted).Microseconds()
	b := 0
	for b < histBuckets-1 && int64(1)<<b <= us {
		b++
	}
	mt.batchDelayHist[b].Add(1)
}

// clusterSnapshot is the JSON shape of the cluster section. OwnedDicts
// counts resident dictionaries this node is primary for, ReplicatedDicts
// the resident rest (replica-owned or pulled).
type clusterSnapshot struct {
	Enabled          bool   `json:"enabled"`
	Self             string `json:"self,omitempty"`
	Peers            int    `json:"peers,omitempty"`
	Replicas         int    `json:"replicas,omitempty"`
	OwnedDicts       int    `json:"ownedDicts"`
	ReplicatedDicts  int    `json:"replicatedDicts"`
	Proxied          int64  `json:"proxied"`
	Redirected       int64  `json:"redirected"`
	Hedged           int64  `json:"hedged"`
	HedgeWon         int64  `json:"hedgeWon"`
	ReplicationPulls int64  `json:"replicationPulls"`
	ReplicationBytes int64  `json:"replicationBytes"`
	PeerTransitions  int64  `json:"peerTransitions"`
}

// resilienceSnapshot is the JSON shape of the fault-recovery counters.
type resilienceSnapshot struct {
	FpExhaustions     int64 `json:"fpExhaustions"`
	BreakerOpens      int64 `json:"breakerOpens"`
	BreakerRecoveries int64 `json:"breakerRecoveries"`
	// Rpc is the outbound-RPC resilience section, present only in
	// cluster mode (filled by Server.rpcMetrics, not Snapshot).
	Rpc *rpcSnapshot `json:"rpc,omitempty"`
}

// rpcSnapshot is the cluster RPC resilience section of /metrics: the
// pool's per-peer breaker accounting plus the server-side shed/stale
// counters.
type rpcSnapshot struct {
	resilience.Snapshot
	DeadlineSheds int64 `json:"deadlineSheds"`
	StaleServes   int64 `json:"staleServes"`
}

// recordLoad charges one successful snapshot load.
func (mt *Metrics) recordLoad(d time.Duration) {
	mt.loads.Add(1)
	mt.loadNanos.Add(d.Nanoseconds())
}

// recordSave charges one snapshot written to the store.
func (mt *Metrics) recordSave(bytes int) {
	mt.snapshotSaves.Add(1)
	mt.snapshotBytes.Add(int64(bytes))
}

// MetricsSnapshot is the GET /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64                   `json:"uptimeSeconds"`
	Requests      map[string]routeSnapshot  `json:"requests"`
	PRAM          map[string]ledgerSnapshot `json:"pram"`
	Registry      RegistrySnapshot          `json:"registry"`
	Limiter       limiterSnapshot           `json:"limiter"`
	Streams       streamsSnapshot           `json:"streams"`
	Persist       persistSnapshot           `json:"persist"`
	Dense         denseSnapshot             `json:"dense"`
	Cz            czSnapshot                `json:"czsearch"`
	Batch         batchSnapshot             `json:"batch"`
	Cluster       clusterSnapshot           `json:"cluster"`
	Quota         quotaSnapshot             `json:"quota"`
	Resilience    resilienceSnapshot        `json:"resilience"`
	Timeouts      int64                     `json:"timeouts"`
	Panics        int64                     `json:"panics"`
	RouteOrder    []string                  `json:"routeOrder"`
}

type limiterSnapshot struct {
	Inflight int   `json:"inflight"`
	Capacity int   `json:"capacity"`
	Rejected int64 `json:"rejected"`
}

// Snapshot assembles the full metrics payload.
func (mt *Metrics) Snapshot(reg *Registry, lim *Limiter) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(mt.start).Seconds(),
		Requests:      make(map[string]routeSnapshot),
		PRAM:          make(map[string]ledgerSnapshot, len(mt.algos)),
		Timeouts:      mt.timeouts.Load(),
		Panics:        mt.panics.Load(),
		Streams: streamsSnapshot{
			Active:   mt.streamActive.Load(),
			Started:  mt.streamStarted.Load(),
			Segments: mt.streamSegments.Load(),
			Events:   mt.streamEvents.Load(),
			Bytes:    mt.streamBytes.Load(),
		},
		Persist: persistSnapshot{
			CacheHits:     mt.cacheHits.Load(),
			CacheMisses:   mt.cacheMisses.Load(),
			SnapshotSaves: mt.snapshotSaves.Load(),
			SnapshotBytes: mt.snapshotBytes.Load(),
			Loads:         mt.loads.Load(),
			LoadNanos:     mt.loadNanos.Load(),
		},
		Dense: denseSnapshot{
			Served:       mt.denseServed.Load(),
			Fallback:     mt.denseFallback.Load(),
			VerifyPass:   mt.denseVerifyPass.Load(),
			VerifyFail:   mt.denseVerifyFail.Load(),
			Compiles:     mt.denseCompiles.Load(),
			CompileNanos: mt.denseCompileNanos.Load(),
			CompileFails: mt.denseCompileFails.Load(),
			TableBytes:   mt.denseTableBytes.Load(),
			Loads:        mt.denseLoads.Load(),
		},
		Cz: czSnapshot{
			Served:           mt.czServed.Load(),
			Fallback:         mt.czFallback.Load(),
			Tokens:           mt.czTokens.Load(),
			BytesRepresented: mt.czBytesRepresented.Load(),
			BytesTouched:     mt.czBytesTouched.Load(),
			MemoHits:         mt.czMemoHits.Load(),
			VerifyPass:       mt.czVerifyPass.Load(),
			VerifyFail:       mt.czVerifyFail.Load(),
		},
		Resilience: resilienceSnapshot{
			FpExhaustions:     mt.fpExhaustions.Load(),
			BreakerOpens:      mt.breakerOpens.Load(),
			BreakerRecoveries: mt.breakerRecoveries.Load(),
		},
	}
	snap.Batch = batchSnapshot{
		Batches:        mt.batchBatches.Load(),
		Requests:       mt.batchRequests.Load(),
		CoalescedBytes: mt.batchBytes.Load(),
		SoloFallbacks:  mt.batchSolo.Load(),
		Dropped:        mt.batchDropped.Load(),
	}
	if snap.Batch.Batches > 0 {
		snap.Batch.MeanOccupancy = float64(snap.Batch.Requests) / float64(snap.Batch.Batches)
	}
	snap.Batch.DelayHistPow2Micros = make([]int64, histBuckets)
	for i := range snap.Batch.DelayHistPow2Micros {
		snap.Batch.DelayHistPow2Micros[i] = mt.batchDelayHist[i].Load()
	}
	routes := *mt.routes.Load()
	patterns := make([]string, 0, len(routes))
	for p := range routes {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	snap.RouteOrder = patterns
	for _, p := range patterns {
		rm := routes[p]
		n := rm.count.Load()
		rs := routeSnapshot{
			Count:     n,
			Errors:    rm.errors.Load(),
			P50Micros: rm.quantile(0.50),
			P95Micros: rm.quantile(0.95),
			P99Micros: rm.quantile(0.99),
			MaxMicros: rm.maxMicros.Load(),
		}
		if n > 0 {
			rs.AvgMicros = float64(rm.totalMicros.Load()) / float64(n)
		}
		rs.HistPow2Mic = make([]int64, histBuckets)
		for i := range rs.HistPow2Mic {
			rs.HistPow2Mic[i] = rm.hist[i].Load()
		}
		snap.Requests[p] = rs
	}
	for name, l := range mt.algos {
		snap.PRAM[name] = ledgerSnapshot{Ops: l.ops.Load(), Work: l.work.Load(), Depth: l.depth.Load()}
	}
	if reg != nil {
		snap.Registry = reg.Snapshot()
	}
	if lim != nil {
		snap.Limiter = limiterSnapshot{
			Inflight: lim.Inflight(),
			Capacity: lim.Capacity(),
			Rejected: lim.Rejected(),
		}
	}
	return snap
}
