package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/cluster"
	"repro/internal/textgen"
)

// clusterNode is one in-process cluster member. shutdown is idempotent so
// tests can kill a node mid-run without the cleanup hook hanging on it.
type clusterNode struct {
	name     string
	base     string
	srv      *Server
	shutdown func() error
	stopOnce sync.Once
	stopErr  error
}

func (nd *clusterNode) stop() error {
	nd.stopOnce.Do(func() { nd.stopErr = nd.shutdown() })
	return nd.stopErr
}

// startTestCluster boots n matchd servers on loopback ports sharing one
// static peer table. Listeners are bound before any server starts so the
// peer URLs are known up front. mut (optional) tweaks each node's config.
func startTestCluster(t *testing.T, n, replicas int, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Peer{Name: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	root := t.TempDir()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			Procs:                2,
			MaxDicts:             8,
			MaxInflight:          128,
			ShutdownGrace:        2 * time.Second,
			CacheDir:             filepath.Join(root, peers[i].Name),
			Log:                  quietLogger(),
			ClusterSelf:          peers[i].Name,
			ClusterPeers:         peers,
			ClusterReplicas:      replicas,
			ClusterProbeInterval: 50 * time.Millisecond,
			ClusterHedgeAfter:    40 * time.Millisecond,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		ln := lns[i]
		go func() { done <- srv.RunListener(ctx, ln) }()
		node := &clusterNode{name: peers[i].Name, base: peers[i].URL, srv: srv}
		node.shutdown = func() error {
			cancel()
			srv.Close()
			select {
			case err := <-done:
				return err
			case <-time.After(15 * time.Second):
				return fmt.Errorf("node did not shut down within 15s")
			}
		}
		nodes[i] = node
		t.Cleanup(func() { _ = node.stop() })
	}
	// Wait until every node answers /healthz so the first request of a test
	// never races server startup.
	for _, nd := range nodes {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st := getJSON(t, nd.base+"/healthz", nil); st == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy", nd.name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// clusterFixture builds a small planted dictionary and its oracle.
func clusterFixture(t *testing.T) (text []byte, patterns [][]byte, patStrs []string) {
	t.Helper()
	gen := textgen.New(99)
	text, patterns = gen.PlantedDictionary(1<<13, 16, 6, 60, 4)
	patStrs = make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	return text, patterns, patStrs
}

func createClusterDict(t *testing.T, base string, patStrs []string) dictCreateResponse {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patStrs})
	if status != http.StatusCreated {
		t.Fatalf("create via %s: %d %s", base, status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created
}

// TestClusterContentAddressedCreate: the same patterns created through
// every node yield one ID (the content address), and the ID is a 64-hex
// persist key — placement needs nothing else.
func TestClusterContentAddressedCreate(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, nil)
	_, _, patStrs := clusterFixture(t)

	ids := map[string]bool{}
	for _, nd := range nodes {
		created := createClusterDict(t, nd.base, patStrs)
		ids[created.ID] = true
		if len(created.ID) != 64 {
			t.Fatalf("cluster dict ID %q is not a content address", created.ID)
		}
	}
	if len(ids) != 1 {
		t.Fatalf("create through 3 nodes produced %d distinct IDs: %v", len(ids), ids)
	}
}

// TestClusterMatchAnywhereAndReplicationPull: a dictionary created once is
// servable through every node — owners pull the DMSNAP bundle from a peer
// (zero re-preprocessing), non-owners proxy — and the match answers agree
// with the oracle everywhere.
func TestClusterMatchAnywhereAndReplicationPull(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, nil)
	text, patterns, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)

	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}

	for _, nd := range nodes {
		status, body := postJSON(t, nd.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": string(text)})
		if status != http.StatusOK {
			t.Fatalf("match via %s: %d %s", nd.name, status, body)
		}
		var resp matchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Matched != wantHits {
			t.Fatalf("match via %s: %d hits, oracle says %d", nd.name, resp.Matched, wantHits)
		}
		for _, h := range resp.Hits {
			if p := oracle[h.Pos]; int(p) != h.Pattern || int(ac.PatternLen(p)) != h.Length {
				t.Fatalf("match via %s: hit at %d diverges from oracle", nd.name, h.Pos)
			}
		}
	}

	// Cluster-wide accounting: the bundle replicated at least once (the
	// non-creating owner pulled it), somebody proxied (the non-owner), and
	// no node ran §3 preprocessing more than once in total.
	var pulls, proxied, prepOps int64
	for _, nd := range nodes {
		var m MetricsSnapshot
		if st := getJSON(t, nd.base+"/metrics", &m); st != http.StatusOK {
			t.Fatalf("metrics via %s: %d", nd.name, st)
		}
		pulls += m.Cluster.ReplicationPulls
		proxied += m.Cluster.Proxied
		prepOps += m.PRAM["preprocess"].Ops
	}
	if pulls == 0 {
		t.Fatal("no replication pulls recorded anywhere — replicas re-preprocessed or never materialized")
	}
	if proxied == 0 {
		t.Fatal("no proxied requests recorded — every node claims ownership?")
	}
	if prepOps > 1 {
		t.Fatalf("preprocess ran %d times across the cluster, want at most 1 (replicas restore, never re-preprocess)", prepOps)
	}

	// The replica's entry must say so: some node holds the dictionary with
	// source "replica" or "cache", never a second "preprocess".
	prepCount := 0
	for _, nd := range nodes {
		if e, ok := nd.srv.Registry().Get(created.ID); ok && e.Source == "preprocess" {
			prepCount++
		}
	}
	if prepCount > 1 {
		t.Fatalf("%d nodes claim to have preprocessed the dictionary", prepCount)
	}
}

// TestClusterReplicaConsistency is the replica-fidelity property test: a
// dictionary restored from a peer-fetched bundle must produce byte-identical
// match, parse, and compressed-match responses on every node, and (dense
// mode on) walk the identical compiled automaton — same state ids at every
// text position as the origin's.
func TestClusterReplicaConsistency(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, func(i int, cfg *Config) {
		cfg.DenseMode = DenseOn // compile at create; bundle ships the DENSE section
	})
	text, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)

	// Compressed container for the compressed-domain matching leg.
	status, body := postJSON(t, nodes[0].base+"/v1/compress", map[string]any{"text": string(text)})
	if status != http.StatusOK {
		t.Fatalf("compress: %d %s", status, body)
	}
	var comp compressResponse
	if err := json.Unmarshal(body, &comp); err != nil {
		t.Fatal(err)
	}

	// The §5 parse endpoint needs the prefix property, which the planted
	// dictionary lacks — give it its own prefix-closed dictionary and a
	// text over the same alphabet (single letters are words, so every text
	// parses).
	gen := textgen.New(7)
	pcPats := gen.PrefixClosedDictionary(8, 12, 3)
	pcPats = append(pcPats, []byte("a"), []byte("b"), []byte("c"))
	pcStrs := make([]string, len(pcPats))
	for i, p := range pcPats {
		pcStrs[i] = string(p)
	}
	pcCreated := createClusterDict(t, nodes[0].base, pcStrs)
	parseText := gen.Uniform(512, 3)

	probes := []struct {
		name string
		id   string
		path string
		req  map[string]any
	}{
		{"match", created.ID, "/match", map[string]any{"text": string(text)}},
		{"parse", pcCreated.ID, "/parse", map[string]any{"text": string(parseText)}},
		{"czmatch", created.ID, "/match/compressed/buffered", map[string]any{"dataB64": comp.DataB64}},
	}
	for _, probe := range probes {
		var origin []byte
		for i, nd := range nodes {
			status, resp := postJSON(t, nd.base+"/v1/dicts/"+probe.id+probe.path, probe.req)
			if status != http.StatusOK {
				t.Fatalf("%s via %s: %d %s", probe.name, nd.name, status, resp)
			}
			if i == 0 {
				origin = resp
				continue
			}
			if string(resp) != string(origin) {
				t.Fatalf("%s via %s differs from origin:\n  origin:  %s\n  replica: %s", probe.name, nd.name, origin, resp)
			}
		}
	}

	// Dense state-id identity: every node that holds the dictionary walks
	// the same automaton — not just equivalent output, the same state at
	// every position.
	type walker struct {
		name string
		ids  []int32
	}
	var walks []walker
	sample := text[:1024]
	for _, nd := range nodes {
		e, ok := nd.srv.Registry().Get(created.ID)
		if !ok {
			continue
		}
		a := e.denseAut.Load()
		if a == nil {
			t.Fatalf("node %s holds %s without a dense automaton despite DenseOn", nd.name, created.ID)
		}
		ids := make([]int32, len(sample))
		q := int32(0)
		for i, b := range sample {
			q = a.Step(q, b)
			ids[i] = q
		}
		walks = append(walks, walker{nd.name, ids})
	}
	if len(walks) < 2 {
		t.Fatalf("only %d nodes hold the dictionary; want at least the replica pair", len(walks))
	}
	for _, wk := range walks[1:] {
		for i := range wk.ids {
			if wk.ids[i] != walks[0].ids[i] {
				t.Fatalf("dense state diverges at position %d: %s=%d, %s=%d",
					i, walks[0].name, walks[0].ids[i], wk.name, wk.ids[i])
			}
		}
	}
}

// TestClusterSurvivesOwnerDeath: with R=2 every dictionary has a second
// owner; killing the creating node mid-cluster must leave the dictionary
// servable through every survivor (the replica serves, the non-owner
// routes to it, hedging and health probes absorb the corpse).
func TestClusterSurvivesOwnerDeath(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, nil)
	text, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)

	// Warm every node once so the replica owner has pulled the bundle
	// before the kill (pull-based replication is lazy by design).
	for _, nd := range nodes {
		if status, body := postJSON(t, nd.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": "warm"}); status != http.StatusOK {
			t.Fatalf("warm via %s: %d %s", nd.name, status, body)
		}
	}

	// Kill the node that served the create (an owner, possibly primary).
	victim := nodes[0]
	if err := victim.stop(); err != nil {
		t.Fatalf("victim shutdown: %v", err)
	}

	// Survivors must keep answering. The first request may land inside the
	// probe window and lean on hedging/failover; allow a couple of retries.
	for _, nd := range nodes[1:] {
		ok := false
		var lastStatus int
		var lastBody []byte
		for attempt := 0; attempt < 10 && !ok; attempt++ {
			status, body := postJSON(t, nd.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": string(text[:256])})
			lastStatus, lastBody = status, body
			if status == http.StatusOK {
				ok = true
			} else {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if !ok {
			t.Fatalf("match via survivor %s after owner death: %d %s", nd.name, lastStatus, lastBody)
		}
	}

	// The survivors noticed: peer transitions were recorded.
	var transitions int64
	for _, nd := range nodes[1:] {
		var m MetricsSnapshot
		getJSON(t, nd.base+"/metrics", &m)
		transitions += m.Cluster.PeerTransitions
	}
	if transitions == 0 {
		t.Fatal("no peer health transitions recorded after a node died")
	}
}

// TestClusterInfoEndpoint: GET /v1/cluster reports the peer table, health,
// and resident placement; non-cluster servers answer enabled=false.
func TestClusterInfoEndpoint(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, nil)
	_, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)

	// Let the probe loop run at least once.
	time.Sleep(150 * time.Millisecond)

	sawResident := false
	for _, nd := range nodes {
		var info clusterInfoResponse
		if st := getJSON(t, nd.base+"/v1/cluster", &info); st != http.StatusOK {
			t.Fatalf("cluster info via %s: %d", nd.name, st)
		}
		if !info.Enabled || info.Self != nd.name || len(info.Peers) != 3 || info.Replicas != 2 {
			t.Fatalf("cluster info via %s: %+v", nd.name, info)
		}
		for _, ps := range info.Health {
			if ps.State != "ready" {
				t.Fatalf("peer %s not ready in %s's view: %s", ps.Name, nd.name, ps.State)
			}
		}
		for _, res := range info.Resident {
			if res.ID == created.ID {
				sawResident = true
				if len(res.Owners) != 2 {
					t.Fatalf("placement of %s lists %d owners, want 2", res.ID, len(res.Owners))
				}
			}
		}
	}
	if !sawResident {
		t.Fatalf("no node reports %s resident", created.ID)
	}

	// A plain server answers the same route with enabled=false.
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 1})
	defer shutdown()
	_ = srv
	var info clusterInfoResponse
	if st := getJSON(t, base+"/v1/cluster", &info); st != http.StatusOK || info.Enabled {
		t.Fatalf("non-cluster /v1/cluster: %d %+v", st, info)
	}
}

// TestClusterDictListShowsDenseState: satellite check — GET /v1/dicts
// exposes per-entry dense/compiled serving state.
func TestClusterDictListShowsDenseState(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn})
	defer shutdown()
	_ = srv
	_, _, patStrs := clusterFixture(t)
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patStrs})
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	var list struct {
		Dicts []EntryInfo `json:"dicts"`
	}
	if st := getJSON(t, base+"/v1/dicts", &list); st != http.StatusOK || len(list.Dicts) != 1 {
		t.Fatalf("list: %d %+v", st, list)
	}
	info := list.Dicts[0]
	if !info.Dense || info.DenseStates <= 0 || info.DenseTableBytes <= 0 {
		t.Fatalf("EntryInfo misses dense state: %+v", info)
	}
	if info.Degraded || info.MaxPatLen <= 0 {
		t.Fatalf("EntryInfo serving state wrong: %+v", info)
	}
}

// TestTenantQuota: a tenant at its concurrency cap sheds with 429 while
// other tenants (and untagged requests) still clear admission.
func TestTenantQuota(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 1, QuotaPerTenant: 1})
	defer shutdown()

	// Occupy tenant A's only slot out-of-band, then watch its next request
	// bounce while tenant B and an untagged client sail through.
	if !srv.quota.Acquire("tenant-a") {
		t.Fatal("first acquire failed")
	}
	defer srv.quota.Release("tenant-a")

	do := func(tenant string) int {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/compress", strings.NewReader(`{"text":"aaab"}`))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if st := do("tenant-a"); st != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant got %d, want 429", st)
	}
	if st := do("tenant-b"); st != http.StatusOK {
		t.Fatalf("other tenant got %d, want 200", st)
	}
	if st := do(""); st != http.StatusOK {
		t.Fatalf("untagged request got %d, want 200", st)
	}

	var m MetricsSnapshot
	getJSON(t, base+"/metrics", &m)
	if !m.Quota.Enabled || m.Quota.Rejected != 1 || m.Quota.PerTenant != 1 {
		t.Fatalf("quota metrics: %+v", m.Quota)
	}
}
