// In-process entry points: the batch-aware serving paths the HTTP handlers
// use, exposed without the transport. Embedding callers (and the B-series
// benchmark, internal/bench/batch.go) drive the same serveMatch/serveParse
// routing — eligible requests coalesce with concurrent HTTP traffic on the
// same entry — with none of the JSON/base64 framing cost.
package server

import (
	"context"
	"errors"

	"repro/internal/core"
)

// ErrUnknownDict is returned by Match and Parse when no resident dictionary
// has the given id.
var ErrUnknownDict = errors.New("server: unknown dictionary")

// Match answers one match request in process. It returns the longest match
// per text position, the Las Vegas attempt count, and the engine label
// ("tree" or "dense"). Under -batch the request is coalesced exactly as an
// HTTP request would be.
func (s *Server) Match(ctx context.Context, id string, text []byte) ([]core.Match, int, string, error) {
	e, ok := s.reg.Get(id)
	if !ok {
		return nil, 0, "", ErrUnknownDict
	}
	return s.serveMatch(ctx, e, text)
}

// Parse answers one §5 optimal-parse request in process: the minimum-phrase
// parse of text as dictionary-word references, or an error when no parse
// exists. Batched exactly as Match is.
func (s *Server) Parse(ctx context.Context, id string, text []byte) ([]int32, error) {
	e, ok := s.reg.Get(id)
	if !ok {
		return nil, ErrUnknownDict
	}
	return s.serveParse(ctx, e, text)
}
