package server

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pram"
)

// minShardLen is the smallest text shard worth a dedicated worker. Below
// ~32 KiB the per-shard window ramp-up (Step 1 windows are O(log² d) long)
// costs more than the parallelism buys.
const minShardLen = 1 << 15

// matchSharded runs dictionary matching over text against a resident
// dictionary, sharding large texts across a worker pool the same way
// internal/distrib shards across workstations: each shard carries a halo of
// maxPatternLen-1 bytes from its right neighbour, because M[i] depends on
// at most that much lookahead. Unlike distrib — where every workstation
// re-preprocesses the dictionary — all workers here share the single
// resident structure; the read path of core.Dictionary is pure.
//
// Returned counters follow the parallel composition rule: Work is the sum
// over shards, Depth the maximum (the shards run concurrently).
func matchSharded(dict *core.Dictionary, text []byte, procs int) ([]core.Match, pram.Counters) {
	n := len(text)
	if procs < 1 {
		procs = 1
	}
	shards := procs
	if maxShards := (n + minShardLen - 1) / minShardLen; shards > maxShards {
		shards = maxShards
	}
	if shards <= 1 {
		m := pram.New(procs)
		defer m.Close()
		out := dict.MatchText(m, text)
		return out, m.Snapshot()
	}

	maxPat := 0
	for _, p := range dict.Patterns {
		if len(p) > maxPat {
			maxPat = len(p)
		}
	}
	out := make([]core.Match, n)
	counters := make([]pram.Counters, shards)
	per := (n + shards - 1) / shards
	var wg sync.WaitGroup
	// A panic on a bare shard goroutine would kill the process — there is no
	// recover above it. Contain it like a pool super-step: park the first
	// panic, let the WaitGroup complete, re-raise on the caller as a typed
	// *pram.StepPanic where the request middleware's recover catches it.
	var panicked atomic.Pointer[pram.StepPanic]
	for w := 0; w < shards; w++ {
		start := w * per
		if start >= n {
			break
		}
		end := start + per
		if end > n {
			end = n
		}
		halo := end + maxPat - 1
		if halo > n {
			halo = n
		}
		wg.Add(1)
		go func(w, start, end, halo int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &pram.StepPanic{Value: r, Stack: debug.Stack()})
				}
			}()
			m := pram.NewSequential()
			local := dict.MatchText(m, text[start:halo])
			// Positions in the halo belong to the right neighbour.
			copy(out[start:end], local[:end-start])
			counters[w] = m.Snapshot()
		}(w, start, end, halo)
	}
	wg.Wait()
	if sp := panicked.Load(); sp != nil {
		panic(sp)
	}
	var total pram.Counters
	for _, c := range counters {
		total.Work += c.Work
		if c.Depth > total.Depth {
			total.Depth = c.Depth
		}
	}
	return out, total
}

// matchAttempts bounds the Las Vegas loop. With 61-bit fingerprints even a
// second attempt is essentially unobservable; six failures mean something
// is wrong beyond bad luck.
const matchAttempts = 6

// MatchChecked runs the Las Vegas matching loop against the entry: sharded
// Monte Carlo matching, then the deterministic §3.4 checker over the full
// text (the checker must see the whole text — shard-local checks would miss
// inconsistencies straddling a boundary). On a fingerprint failure the
// dictionary is reseeded under the write lock and the attempt repeats.
// PRAM costs are charged to the "match", "check" and (for reseeds)
// "preprocess" ledgers of mt; mt may be nil. The returned counters are the
// total charged by this call (attempts compose sequentially) so callers —
// the streaming pipeline in particular — can aggregate a per-call ledger
// without scraping the shared metrics.
// A request against an entry whose circuit breaker is open (breaker.go)
// fails fast with a *DegradedError; an exhausted request returns a
// *FingerprintExhaustedError and feeds the breaker. Between failed attempts
// the loop backs off exponentially with jitter (failure path only — the
// fault-free request never sleeps and its ledger is untouched).
func (e *Entry) MatchChecked(ctx context.Context, text []byte, procs int, mt *Metrics) ([]core.Match, int, pram.Counters, error) {
	var total pram.Counters
	if e.Degraded() {
		return nil, 0, total, &DegradedError{ID: e.ID}
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt - 1, total, err
		}
		e.mu.RLock()
		matches, mc := matchSharded(e.dict, text, procs)
		cm := pram.New(procs)
		ok := e.dict.Check(cm, text, matches)
		cw, cd := cm.Work(), cm.Depth()
		cm.Close()
		e.mu.RUnlock()
		total.Work += mc.Work + cw
		total.Depth += mc.Depth + cd
		if mt != nil {
			mt.ChargePRAM("match", mc.Work, mc.Depth)
			mt.ChargePRAM("check", cw, cd)
		}
		if ok {
			e.noteSuccess()
			return matches, attempt, total, nil
		}
		if attempt == matchAttempts {
			e.noteExhaustion(mt)
			return nil, attempt, total, &FingerprintExhaustedError{ID: e.ID, Attempts: attempt}
		}
		e.reseed(uint64(attempt), mt)
		e.mu.RLock()
		seed := e.seed
		e.mu.RUnlock()
		reseedBackoff(ctx, attempt, seed)
	}
}

// MatchJoinedChecked is MatchChecked for a separator-joined batch of texts
// (batch.go): one Las Vegas loop over the joined symbol buffer — Monte Carlo
// matching, then the deterministic checker over the whole joined text — so a
// batch of k small requests pays one machine dispatch instead of k. The
// separator safety argument (core/separator.go) makes the joined output
// byte-identical to k solo runs; the checker sees the separators too, so any
// forged match spanning a request boundary fails the same first-char test it
// would fail solo. Costs are charged to the same "match"/"check"/"preprocess"
// ledgers as the solo path.
func (e *Entry) MatchJoinedChecked(ctx context.Context, j *core.Joined, procs int, mt *Metrics) ([]core.Match, int, error) {
	if e.Degraded() {
		return nil, 0, &DegradedError{ID: e.ID}
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt - 1, err
		}
		e.mu.RLock()
		m := pram.New(procs)
		matches := e.dict.MatchJoined(m, j)
		mw, md := m.Work(), m.Depth()
		m.Close()
		cm := pram.New(procs)
		ok := e.dict.CheckJoined(cm, j, matches)
		cw, cd := cm.Work(), cm.Depth()
		cm.Close()
		e.mu.RUnlock()
		if mt != nil {
			mt.ChargePRAM("match", mw, md)
			mt.ChargePRAM("check", cw, cd)
		}
		if ok {
			e.noteSuccess()
			return matches, attempt, nil
		}
		if attempt == matchAttempts {
			e.noteExhaustion(mt)
			return nil, attempt, &FingerprintExhaustedError{ID: e.ID, Attempts: attempt}
		}
		e.reseed(uint64(attempt), mt)
		e.mu.RLock()
		seed := e.seed
		e.mu.RUnlock()
		reseedBackoff(ctx, attempt, seed)
	}
}

// reseed replaces the entry's fingerprint randomness under the write lock.
// In-flight readers finish on the old tables first; the next attempt sees
// the new ones.
func (e *Entry) reseed(attempt uint64, mt *Metrics) {
	m := pram.NewSequential()
	e.mu.Lock()
	e.seed += attempt * 0x9e3779b97f4a7c15
	if e.seed == 0 {
		e.seed = 1
	}
	e.dict.Reseed(m, e.seed)
	e.mu.Unlock()
	if mt != nil {
		mt.ChargePRAM("preprocess", m.Work(), m.Depth())
	}
}

// Parse runs the §5 optimal static parse of text against the entry's
// dictionary, charging the "parse" ledger.
func (e *Entry) Parse(ctx context.Context, text []byte, procs int, mt *Metrics) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := pram.New(procs)
	defer m.Close()
	e.mu.RLock()
	refs, err := e.dict.CompressStatic(m, text)
	e.mu.RUnlock()
	if mt != nil {
		mt.ChargePRAM("parse", m.Work(), m.Depth())
	}
	return refs, err
}

// Expand reverses Parse, charging the "parse" ledger as well (it is the
// same §5 codec).
func (e *Entry) Expand(ctx context.Context, refs []int32, procs int, mt *Metrics) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := pram.New(procs)
	defer m.Close()
	e.mu.RLock()
	text, err := e.dict.DecompressStatic(m, refs)
	e.mu.RUnlock()
	if mt != nil {
		mt.ChargePRAM("parse", m.Work(), m.Depth())
	}
	return text, err
}
