package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/textgen"
)

// postRaw is postJSON keeping the whole *http.Response so tests can assert
// on headers (the body is fully read and restored for convenience).
func postRaw(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestRetryAfterHeaders pins the backpressure contract: every 429 (limiter)
// and pressure-driven 503 (deadline, degraded entry) carries a Retry-After
// header so well-behaved clients back off instead of hammering.
func TestRetryAfterHeaders(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxInflight: 1,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// 429: saturate the single limiter slot.
	if !srv.Limiter().TryAcquire() {
		t.Fatal("could not saturate limiter")
	}
	resp, body := postRaw(t, base+"/v1/compress", map[string]any{"text": "hello"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	srv.Limiter().Release()

	// 503 (deadline): a server whose per-request deadline always fires.
	_, base2, shutdown2 := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, RequestTimeout: time.Nanosecond,
	})
	defer func() {
		if err := shutdown2(); err != nil {
			t.Errorf("shutdown2: %v", err)
		}
	}()
	resp, body = postRaw(t, base2+"/v1/compress", map[string]any{"text": "aaaa"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline 503 missing Retry-After header")
	}
}

// TestDegradedEntryServes503 pins the open-breaker contract without chaos
// plumbing: an entry marked degraded answers match requests with 503 +
// Retry-After, /readyz flips to 503 and names the entry, and the registry
// metrics count it. Clearing the flag restores service.
func TestDegradedEntryServes503(t *testing.T) {
	// DenseOff: the 503 contract below is about the Las Vegas tree walk. A
	// compiled dense automaton is fingerprint-free and keeps serving degraded
	// entries — TestDenseServesDegradedEntry pins that rescue path.
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOff})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Healthy boot: ready.
	var ready readyzResponse
	if status := getJSON(t, base+"/readyz", &ready); status != http.StatusOK {
		t.Fatalf("readyz on healthy server: status %d", status)
	}
	if ready.Status != "ready" || ready.Pool != "ok" || len(ready.Degraded) != 0 {
		t.Fatalf("readyz on healthy server: %+v", ready)
	}

	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": []string{"abra", "cad"}})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	e, ok := srv.Registry().Get(created.ID)
	if !ok {
		t.Fatalf("entry %s not resident", created.ID)
	}
	e.degraded.Store(true)

	resp, body := postRaw(t, fmt.Sprintf("%s/v1/dicts/%s/match", base, created.ID),
		map[string]any{"text": "abracadabra"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded match: status %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After header")
	}

	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rbody, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with degraded entry: status %d %s, want 503", rresp.StatusCode, rbody)
	}
	if rresp.Header.Get("Retry-After") == "" {
		t.Error("readyz 503 missing Retry-After header")
	}
	ready = readyzResponse{}
	if err := json.Unmarshal(rbody, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || len(ready.Degraded) != 1 || ready.Degraded[0] != created.ID {
		t.Fatalf("readyz payload: %+v", ready)
	}

	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.Registry.Degraded != 1 {
		t.Errorf("metrics registry.degraded = %d, want 1", snap.Registry.Degraded)
	}

	// Recovery: service resumes and readyz goes green again.
	e.degraded.Store(false)
	if status, body := postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/match", base, created.ID),
		map[string]any{"text": "abracadabra"}); status != http.StatusOK {
		t.Fatalf("recovered match: status %d %s", status, body)
	}
	if status := getJSON(t, base+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d", status)
	}
}

// TestGracefulDrainMidStream is the drain regression test: a SIGTERM-style
// shutdown arriving while an NDJSON match stream is mid-flight must let the
// stream finish (the drain window covers it) and the stream must end with
// an explicit trailer — a summary here, since nothing fails — never a
// silent truncation. The events that arrive must be exactly the oracle's.
func TestGracefulDrainMidStream(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, ShutdownGrace: 15 * time.Second,
	})

	gen := textgen.New(7)
	text, patterns := gen.PlantedDictionary(1<<16, 16, 6, 211, 4)
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patStrs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)

	// Stream the text in pieces through a pipe so the request is genuinely
	// in flight when the shutdown lands. The feed runs in a goroutine: the
	// client's Do doesn't return until response headers arrive, and the
	// server doesn't commit headers until the first segment of body shows
	// up.
	pr, pw := io.Pipe()
	shutdownErr := make(chan error, 1)
	feedErr := make(chan error, 1)
	go func() {
		defer pw.Close()
		// First quarter of the text, then SIGTERM (ctx cancel -> Shutdown),
		// then the rest while the server is draining.
		quarter := len(text) / 4
		if _, err := pw.Write(text[:quarter]); err != nil {
			feedErr <- fmt.Errorf("write: %v", err)
			return
		}
		// Only pull the trigger once the handler is demonstrably running —
		// a connection still in the accept queue dies with the listener
		// instead of draining.
		for deadline := time.Now().Add(10 * time.Second); srv.Metrics().streamStarted.Load() == 0; {
			if time.Now().After(deadline) {
				feedErr <- fmt.Errorf("stream never started")
				return
			}
			time.Sleep(time.Millisecond)
		}
		go func() { shutdownErr <- shutdown() }()
		// Give Shutdown a moment to close the listeners; the in-flight
		// stream must survive that.
		time.Sleep(100 * time.Millisecond)
		for off := quarter; off < len(text); off += 8192 {
			end := off + 8192
			if end > len(text) {
				end = len(text)
			}
			if _, err := pw.Write(text[off:end]); err != nil {
				feedErr <- fmt.Errorf("write during drain: %v", err)
				return
			}
		}
		feedErr <- nil
	}()

	req, err := http.NewRequest("POST", fmt.Sprintf("%s/v1/dicts/%s/match/stream?segment=4096", base, created.ID), pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	// The full NDJSON stream must arrive: events, then one summary trailer.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream during drain: %v", err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"summary"`) {
		t.Fatalf("stream did not end in a summary trailer: %q", last)
	}
	var trailer struct {
		Summary streamSummary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Summary.N != int64(len(text)) {
		t.Errorf("summary n = %d, want %d (stream truncated?)", trailer.Summary.N, len(text))
	}

	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if got := len(lines) - 1; got != wantHits {
		t.Errorf("drained stream delivered %d events, oracle says %d", got, wantHits)
	}
	for _, ln := range lines[:len(lines)-1] {
		var ev struct {
			Pos     int `json:"pos"`
			Pattern int `json:"pattern"`
			Length  int `json:"length"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", ln, err)
		}
		if p := oracle[ev.Pos]; int(p) != ev.Pattern || int(ac.PatternLen(p)) != ev.Length {
			t.Fatalf("event %+v disagrees with oracle (pattern %d len %d)", ev, p, ac.PatternLen(p))
		}
	}

	// The feed and the SIGTERM handling itself must both have been clean.
	if err := <-feedErr; err != nil {
		t.Fatal(err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown during stream: %v", err)
	}
}
