package server

import (
	"sync"
	"testing"
	"time"
)

// TestMetricsConcurrentObserve hammers one route from many goroutines while
// others register fresh routes and take snapshots. Under -race this pins
// down the lock-free observe path and the copy-on-write route map.
func TestMetricsConcurrentObserve(t *testing.T) {
	mt := newMetrics()
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rm := mt.route("GET /v1/hot")
			for i := 0; i < perG; i++ {
				status := 200
				if i%10 == 0 {
					status = 500
				}
				rm.observe(time.Duration(i)*time.Microsecond, status)
				if i%500 == 0 {
					// Concurrent registration must not disturb readers.
					mt.route("GET /v1/cold")
					_ = mt.Snapshot(nil, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := mt.Snapshot(nil, nil)
	rs, ok := snap.Requests["GET /v1/hot"]
	if !ok {
		t.Fatal("hot route missing from snapshot")
	}
	wantCount := int64(goroutines * perG)
	if rs.Count != wantCount {
		t.Fatalf("count = %d, want %d", rs.Count, wantCount)
	}
	if want := wantCount / 10; rs.Errors != want {
		t.Fatalf("errors = %d, want %d", rs.Errors, want)
	}
	var histTotal int64
	for _, c := range rs.HistPow2Mic {
		histTotal += c
	}
	if histTotal != wantCount {
		t.Fatalf("histogram total = %d, want %d", histTotal, wantCount)
	}
	if rs.MaxMicros != perG-1 {
		t.Fatalf("max = %d, want %d", rs.MaxMicros, perG-1)
	}
	if _, ok := snap.Requests["GET /v1/cold"]; !ok {
		t.Fatal("cold route missing from snapshot")
	}
}

// TestMetricsRouteIdentity checks that route() always returns the same
// bucket for a pattern, across the copy-on-write swaps caused by other
// insertions.
func TestMetricsRouteIdentity(t *testing.T) {
	mt := newMetrics()
	a := mt.route("GET /a")
	mt.route("GET /b")
	mt.route("GET /c")
	if mt.route("GET /a") != a {
		t.Fatal("route bucket identity lost across inserts")
	}
}

// TestShardedCounterSum verifies that Load sums every shard.
func TestShardedCounterSum(t *testing.T) {
	var c shardedCounter
	for i := 0; i < 1000; i++ {
		c.Add(2)
	}
	if got := c.Load(); got != 2000 {
		t.Fatalf("Load = %d, want 2000", got)
	}
}

// BenchmarkMetricsObserve measures the uncontended observe path.
func BenchmarkMetricsObserve(b *testing.B) {
	mt := newMetrics()
	rm := mt.route("GET /v1/bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rm.observe(50*time.Microsecond, 200)
	}
}

// BenchmarkMetricsObserveParallel measures contention across cores — the
// case the sharded counters exist for.
func BenchmarkMetricsObserveParallel(b *testing.B) {
	mt := newMetrics()
	rm := mt.route("GET /v1/bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rm.observe(50*time.Microsecond, 200)
		}
	})
}
