package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
)

// ndLine is one NDJSON line of the streaming match protocol: an event
// (Pos set), the summary trailer, or an error trailer.
type ndLine struct {
	Pos     *int64         `json:"pos"`
	Pattern int32          `json:"pattern"`
	Length  int32          `json:"length"`
	Summary *streamSummary `json:"summary"`
	Error   string         `json:"error"`
}

func createDict(t *testing.T, base string, patterns ...string) string {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patterns})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created.ID
}

// TestStreamMatchBeyondBodyCap is the headline acceptance check: a text
// several times larger than MaxBodyBytes 413s on the buffered endpoint but
// streams fine — with events identical to the batch matcher, in strictly
// increasing position order, and a summary trailer.
func TestStreamMatchBeyondBodyCap(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, MaxBodyBytes: 4096,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	patterns := []string{"aba", "ab", "b", "aabb", "cccc"}
	id := createDict(t, base, patterns...)

	rng := rand.New(rand.NewPCG(21, 22))
	text := make([]byte, 200_000)
	for i := range text {
		text[i] = byte('a' + rng.IntN(3))
	}

	// Buffered endpoint: the JSON body alone exceeds the cap.
	status, body := postJSON(t, base+"/v1/dicts/"+id+"/match", map[string]any{"text": string(text)})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("buffered match of %d bytes: status %d (%.80s), want 413", len(text), status, body)
	}

	// Streaming endpoint: same text, raw body, small segments.
	resp, err := http.Post(base+"/v1/dicts/"+id+"/match/stream?segment=4096", "application/octet-stream", bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream match: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Batch oracle, computed locally (Las Vegas output is seed-independent).
	m := pram.NewSequential()
	pb := make([][]byte, len(patterns))
	for i, p := range patterns {
		pb[i] = []byte(p)
	}
	dict := core.Preprocess(m, pb, core.Options{Seed: 7})
	want, _ := dict.MatchLasVegas(m, text)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events int
	var lastPos int64 = -1
	var summary *streamSummary
	for sc.Scan() {
		var line ndLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Summary != nil:
			summary = line.Summary
		case line.Pos != nil:
			if summary != nil {
				t.Fatal("event after summary trailer")
			}
			if *line.Pos <= lastPos {
				t.Fatalf("positions out of order: %d after %d", *line.Pos, lastPos)
			}
			lastPos = *line.Pos
			w := want[*line.Pos]
			if w.Length != line.Length || w.PatternID != line.Pattern {
				t.Fatalf("pos %d: got (pat=%d,len=%d), batch says (pat=%d,len=%d)",
					*line.Pos, line.Pattern, line.Length, w.PatternID, w.Length)
			}
			events++
		default:
			t.Fatalf("unrecognized NDJSON line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantEvents := 0
	for _, w := range want {
		if w.Length > 0 {
			wantEvents++
		}
	}
	if events != wantEvents {
		t.Fatalf("stream emitted %d events, batch has %d", events, wantEvents)
	}
	if summary == nil {
		t.Fatal("no summary trailer")
	}
	if summary.N != int64(len(text)) || summary.Events != int64(events) {
		t.Fatalf("summary %+v does not match n=%d events=%d", summary, len(text), events)
	}
	if summary.Segments < 10 {
		t.Fatalf("expected many segments at segment=4096, got %d", summary.Segments)
	}
	if summary.Work <= 0 || summary.Depth <= 0 {
		t.Fatalf("summary ledger empty: %+v", summary)
	}

	// The per-stream counters surfaced in /metrics.
	snap := srv.Metrics().Snapshot(srv.Registry(), srv.Limiter())
	if snap.Streams.Started < 1 || snap.Streams.Segments < summary.Segments {
		t.Fatalf("stream metrics not ticking: %+v", snap.Streams)
	}
	if snap.Streams.Events != int64(events) || snap.Streams.Bytes != int64(len(text)) {
		t.Fatalf("stream metrics %+v, want events=%d bytes=%d", snap.Streams, events, len(text))
	}
	if snap.Streams.Active != 0 {
		t.Fatalf("stream still active after completion: %+v", snap.Streams)
	}
}

// TestStreamMatchDisconnectAborts checks that a client that vanishes
// mid-stream releases the server promptly: the handler returns, the
// in-flight gauge drops to zero, and the limiter slot frees.
func TestStreamMatchDisconnectAborts(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id := createDict(t, base, "ab", "ba")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/dicts/"+id+"/match/stream?segment=1024", pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	// Feed two full segments so the server commits headers and flushes
	// events, then stall forever (from the server's point of view).
	chunk := bytes.Repeat([]byte("ab"), 1024)
	if _, err := pw.Write(chunk); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatalf("request failed before headers: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers within 10s")
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first event byte: %v", err)
	}
	if got := srv.Metrics().Snapshot(nil, nil).Streams.Active; got != 1 {
		t.Fatalf("active streams = %d, want 1", got)
	}

	// Vanish.
	cancel()
	pw.CloseWithError(fmt.Errorf("client gone"))
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.Metrics().Snapshot(nil, nil).Streams.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream did not abort within 10s of disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if inflight := srv.Limiter().Inflight(); inflight != 0 {
		t.Fatalf("limiter still holds %d slots after disconnect", inflight)
	}
}

func TestStreamDecompress(t *testing.T) {
	_, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	m := pram.NewSequential()
	rng := rand.New(rand.NewPCG(31, 32))
	text := make([]byte, 150_000)
	for i := range text {
		text[i] = byte('a' + rng.IntN(4))
	}
	var enc bytes.Buffer
	if err := lz.EncodeStream(&enc, lz.Compress(m, text)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/v1/decompress/stream", "application/octet-stream", bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %.120s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Uncompressed-Length"); got != fmt.Sprint(len(text)) {
		t.Fatalf("X-Uncompressed-Length = %q, want %d", got, len(text))
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, text) {
		t.Fatalf("decompressed %d bytes diverge from original %d", len(out), len(text))
	}

	// A non-container body gets a real status, not a truncated stream.
	resp, err = http.Post(base+"/v1/decompress/stream", "application/octet-stream", strings.NewReader("definitely not LZ1R1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad magic: status %d, want 422", resp.StatusCode)
	}
}

// TestStreamDecompressWindowed pins the bounded-memory contract: with a
// finite StreamWindow, a container whose copies reach back beyond the
// retained history is rejected rather than silently corrupted.
func TestStreamDecompressWindowed(t *testing.T) {
	_, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 1, StreamWindow: 64})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c := lz.Compressed{N: 510}
	for i := 0; i < 10; i++ {
		c.Tokens = append(c.Tokens, lz.Token{Len: 0, Lit: byte('0' + i)})
	}
	for i := 0; i < 50; i++ {
		c.Tokens = append(c.Tokens, lz.Token{Src: 0, Len: 10})
	}
	var enc bytes.Buffer
	if err := lz.EncodeStream(&enc, c); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/decompress/stream", "application/octet-stream", bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("window escape: status %d, want 422", resp.StatusCode)
	}
}
