package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// densePatternStrings builds a planted workload and its string form for the
// JSON create payload.
func densePatternStrings(t *testing.T, seed uint64) ([]byte, [][]byte, []string) {
	t.Helper()
	gen := textgen.New(seed)
	text, patterns := gen.PlantedDictionary(1<<16, 16, 6, 97, 4)
	strs := make([]string, len(patterns))
	for i, p := range patterns {
		strs[i] = string(p)
	}
	return text, patterns, strs
}

// TestDenseServingEndToEnd: with -dense=on the match endpoint answers from
// the compiled automaton ("engine": "dense"), results agree with the
// independent oracle, and the /metrics dense section populates every counter
// the serving path touches.
func TestDenseServingEndToEnd(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, MaxDicts: 4, MaxInflight: 64, DenseMode: DenseOn,
	})
	text, patterns, strs := densePatternStrings(t, 77)

	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, id := range oracle {
		if id >= 0 {
			wantHits++
		}
	}

	for req := 0; req < 3; req++ {
		status, body = postJSON(t, base+"/v1/dicts/"+created.ID+"/match", map[string]string{"text": string(text)})
		if status != http.StatusOK {
			t.Fatalf("match: %d %s", status, body)
		}
		var mr matchResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Engine != engineDense {
			t.Fatalf("request %d served by %q, want %q", req, mr.Engine, engineDense)
		}
		if mr.Matched != wantHits {
			t.Fatalf("request %d: %d hits, oracle says %d", req, mr.Matched, wantHits)
		}
		for _, h := range mr.Hits {
			if id := oracle[h.Pos]; id < 0 || int(ac.PatternLen(id)) != h.Length {
				t.Fatalf("hit at %d (len %d) disagrees with oracle id %d", h.Pos, h.Length, id)
			}
		}
	}

	var snap MetricsSnapshot
	if code := getJSON(t, base+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	d := snap.Dense
	if d.Served < 3 {
		t.Fatalf("dense.served = %d, want >= 3", d.Served)
	}
	if d.Compiles != 1 || d.CompileNanos <= 0 || d.TableBytes <= 0 {
		t.Fatalf("compile counters: %+v", d)
	}
	if d.VerifyPass < 1 || d.VerifyFail != 0 {
		t.Fatalf("verify counters: pass=%d fail=%d", d.VerifyPass, d.VerifyFail)
	}
	if d.Loads != 0 || d.Fallback != 0 {
		t.Fatalf("unexpected loads=%d fallback=%d", d.Loads, d.Fallback)
	}
	_ = srv
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestDenseModeOff: the flag really disables the path.
func TestDenseModeOff(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOff,
	})
	_, _, strs := densePatternStrings(t, 3)
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	status, body = postJSON(t, base+"/v1/dicts/"+created.ID+"/match", map[string]string{"text": "abcd"})
	if status != http.StatusOK {
		t.Fatalf("match: %d %s", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Engine != engineTree {
		t.Fatalf("engine = %q with dense off", mr.Engine)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestDenseAutoBackgroundCompile: in auto mode the automaton lands via the
// background election and subsequent requests use it.
func TestDenseAutoBackgroundCompile(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseAuto,
	})
	_, _, strs := densePatternStrings(t, 5)
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	e, ok := srv.Registry().Get(created.ID)
	if !ok {
		t.Fatal("entry missing")
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.denseAut.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background dense compile did not land within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, body = postJSON(t, base+"/v1/dicts/"+created.ID+"/match", map[string]string{"text": "xyz"})
	if status != http.StatusOK {
		t.Fatalf("match: %d %s", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Engine != engineDense {
		t.Fatalf("engine = %q after background compile", mr.Engine)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestDenseVerifyDivergence: a wrong automaton planted on an entry is caught
// by the first-request oracle check; the oracle's result is served (engine
// "tree") and the failure counted.
func TestDenseVerifyDivergence(t *testing.T) {
	srv, err := New(Config{Procs: 1, DenseMode: DenseAuto, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]byte{[]byte("abc"), []byte("bcd")}
	e, _ := srv.Registry().Register(pram.NewSequential(), patterns, core.Options{})
	// Same pattern count (ids stay in range for sameMatchSets), different
	// content — the automaton will disagree with the dictionary.
	wrong, err := dense.Compile([][]byte{[]byte("zzz"), []byte("qqq")}, dense.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.denseElect.Store(true)
	e.denseAut.Store(wrong)

	text := []byte("xabcdx")
	matches, _, engine, err := srv.serveMatch(context.Background(), e, text)
	if err != nil {
		t.Fatal(err)
	}
	if engine != engineTree {
		t.Fatalf("divergent result served by %q, want oracle fallback", engine)
	}
	if got := matches[1]; got.Length != 3 {
		t.Fatalf("oracle result not served: M[1] = %+v", got)
	}
	if srv.Metrics().denseVerifyFail.Load() != 1 {
		t.Fatalf("verifyFail = %d, want 1", srv.Metrics().denseVerifyFail.Load())
	}
}

// TestDenseServesDegradedEntry: the compiled automaton carries no Las Vegas
// fingerprint state, so an entry whose tree walk has tripped the breaker
// keeps answering 200 from the dense path (the sampled oracle check
// tolerates DegradedError). With dense off the same entry 503s —
// TestDegradedEntryServes503 pins that side.
func TestDenseServesDegradedEntry(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn,
	})
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": []string{"abra", "cad"}})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	e, ok := srv.Registry().Get(created.ID)
	if !ok {
		t.Fatal("entry missing")
	}
	e.degraded.Store(true)

	status, body = postJSON(t, base+"/v1/dicts/"+created.ID+"/match", map[string]string{"text": "abracadabra"})
	if status != http.StatusOK {
		t.Fatalf("degraded match with dense: %d %s, want 200", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Engine != engineDense || mr.Matched != 3 {
		t.Fatalf("degraded entry: engine=%q matched=%d", mr.Engine, mr.Matched)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestDenseSnapshotWarmStart is the acceptance criterion for persistence: a
// DENSE-bearing snapshot written by one server boots into another with the
// automaton restored — zero compiles, zero preprocess PRAM work charged.
func TestDenseSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	_, _, strs := densePatternStrings(t, 11)

	srvA, baseA, shutdownA := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn, CacheDir: dir,
	})
	status, body := postJSON(t, baseA+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	if n := srvA.Metrics().denseCompiles.Load(); n != 1 {
		t.Fatalf("server A compiles = %d, want 1", n)
	}
	if err := shutdownA(); err != nil {
		t.Fatal(err)
	}

	_, baseB, shutdownB := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn, CacheDir: dir,
	})
	var infos struct {
		Dicts []EntryInfo `json:"dicts"`
	}
	if code := getJSON(t, baseB+"/v1/dicts", &infos); code != http.StatusOK || len(infos.Dicts) != 1 {
		t.Fatalf("warm start registry: code=%d dicts=%d", code, len(infos.Dicts))
	}
	status, body = postJSON(t, baseB+"/v1/dicts/"+infos.Dicts[0].ID+"/match", map[string]string{"text": strs[0] + "xx" + strs[1]})
	if status != http.StatusOK {
		t.Fatalf("match on warm-started server: %d %s", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Engine != engineDense {
		t.Fatalf("warm-started entry served by %q, want %q", mr.Engine, engineDense)
	}

	var snap MetricsSnapshot
	if code := getJSON(t, baseB+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if snap.Dense.Loads != 1 || snap.Dense.Compiles != 0 {
		t.Fatalf("server B dense: loads=%d compiles=%d, want 1/0", snap.Dense.Loads, snap.Dense.Compiles)
	}
	if prep := snap.PRAM["preprocess"]; prep.Work != 0 {
		t.Fatalf("warm start charged %d preprocess work, want 0", prep.Work)
	}
	if err := shutdownB(); err != nil {
		t.Fatal(err)
	}
}
