package server

import (
	"sync"
	"sync/atomic"
)

// Per-tenant admission quotas, layered on top of the global Limiter. The
// global semaphore protects the process; the quota protects tenants from
// each other — one client hammering the service can exhaust its own slice
// and start seeing 429s while everyone else's requests still clear
// admission. Tenancy is declared by the X-Tenant request header; requests
// without it are only subject to the global limit.

// TenantQuota bounds concurrent in-flight requests per tenant.
type TenantQuota struct {
	perTenant int
	mu        sync.Mutex
	inflight  map[string]int
	rejected  atomic.Int64
}

// NewTenantQuota builds a quota allowing perTenant concurrent requests per
// tenant (perTenant < 1 returns nil — quotas disabled).
func NewTenantQuota(perTenant int) *TenantQuota {
	if perTenant < 1 {
		return nil
	}
	return &TenantQuota{perTenant: perTenant, inflight: make(map[string]int)}
}

// Acquire claims a slot for tenant, reporting whether one was free.
func (q *TenantQuota) Acquire(tenant string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[tenant] >= q.perTenant {
		q.rejected.Add(1)
		return false
	}
	q.inflight[tenant]++
	return true
}

// Release returns tenant's slot. The map entry is dropped at zero so the
// table only holds tenants with live requests, not every tenant ever seen.
func (q *TenantQuota) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.inflight[tenant]; n <= 1 {
		delete(q.inflight, tenant)
	} else {
		q.inflight[tenant] = n - 1
	}
}

// PerTenant returns the configured per-tenant concurrency.
func (q *TenantQuota) PerTenant() int { return q.perTenant }

// ActiveTenants returns how many tenants have requests in flight.
func (q *TenantQuota) ActiveTenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.inflight)
}

// Rejected returns how many requests the quota has refused.
func (q *TenantQuota) Rejected() int64 { return q.rejected.Load() }

// quotaSnapshot is the quota section of the metrics payload.
type quotaSnapshot struct {
	Enabled       bool  `json:"enabled"`
	PerTenant     int   `json:"perTenant"`
	ActiveTenants int   `json:"activeTenants"`
	Rejected      int64 `json:"rejected"`
}
