package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/textgen"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// startServer runs a server on a loopback port and returns its base URL
// plus a shutdown func that cancels the serve context and reports Run's
// error (nil means a clean graceful shutdown).
func startServer(t *testing.T, cfg Config) (*Server, string, func() error) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = quietLogger()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.RunListener(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	shutdown := func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("server did not shut down within 15s")
		}
	}
	return srv, url, shutdown
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndServing is the acceptance test: start matchd's server on a
// loopback port, register a dictionary once, issue >= 120 concurrent match
// and compress/decompress requests, check every result against independent
// oracles, check that /metrics reports the traffic with nonzero PRAM work
// counters, and shut down gracefully. Under -race this exercises every
// lock in the package.
func TestEndToEndServing(t *testing.T) {
	// DenseOff pins the tree-walk ledger exactly (one match charge per
	// request); the dense path has its own end-to-end test in dense_test.go.
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2, MaxDicts: 4, MaxInflight: 256, DenseMode: DenseOff})

	// One dictionary, preprocessed once (the paper's amortized regime).
	gen := textgen.New(42)
	text, patterns := gen.PlantedDictionary(1<<14, 24, 8, 101, 4)
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patStrs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	// Independent oracle for the match answers.
	ac := ahocorasick.New(patterns)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if wantHits == 0 {
		t.Fatal("degenerate workload: oracle found no matches")
	}

	// Pre-generate the compression payloads: textgen.Gen is a single rng
	// stream, not safe for concurrent use.
	const matchReqs, lzReqs = 64, 64
	lzPayloads := make([][]byte, lzReqs)
	for i := range lzPayloads {
		lzPayloads[i] = gen.Repetitive(2048+16*i, 64, 0.02)
	}

	var wg sync.WaitGroup
	errs := make(chan error, matchReqs+lzReqs)
	textB64 := base64.StdEncoding.EncodeToString(text)
	for i := 0; i < matchReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/match", base, created.ID),
				map[string]any{"textB64": textB64})
			if status != http.StatusOK {
				errs <- fmt.Errorf("match %d: status %d: %s", i, status, body)
				return
			}
			var mr matchResponse
			if err := json.Unmarshal(body, &mr); err != nil {
				errs <- fmt.Errorf("match %d: %v", i, err)
				return
			}
			if mr.Matched != wantHits || mr.N != len(text) || mr.Attempts < 1 {
				errs <- fmt.Errorf("match %d: %d hits over %d bytes (attempts %d), oracle says %d over %d",
					i, mr.Matched, mr.N, mr.Attempts, wantHits, len(text))
				return
			}
			for _, h := range mr.Hits {
				if p := oracle[h.Pos]; int(p) != h.Pattern || int(ac.PatternLen(p)) != h.Length {
					errs <- fmt.Errorf("match %d pos %d: got pattern %d len %d, oracle %d len %d",
						i, h.Pos, h.Pattern, h.Length, p, ac.PatternLen(p))
					return
				}
			}
		}(i)
	}
	for i := 0; i < lzReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := lzPayloads[i]
			status, body := postJSON(t, base+"/v1/compress",
				map[string]any{"textB64": base64.StdEncoding.EncodeToString(payload)})
			if status != http.StatusOK {
				errs <- fmt.Errorf("compress %d: status %d: %s", i, status, body)
				return
			}
			var cr compressResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				errs <- fmt.Errorf("compress %d: %v", i, err)
				return
			}
			if cr.N != len(payload) || cr.Tokens == 0 {
				errs <- fmt.Errorf("compress %d: N=%d tokens=%d for %d bytes", i, cr.N, cr.Tokens, len(payload))
				return
			}
			status, body = postJSON(t, base+"/v1/decompress", map[string]any{"dataB64": cr.DataB64})
			if status != http.StatusOK {
				errs <- fmt.Errorf("decompress %d: status %d: %s", i, status, body)
				return
			}
			var dr expandResponse
			if err := json.Unmarshal(body, &dr); err != nil {
				errs <- fmt.Errorf("decompress %d: %v", i, err)
				return
			}
			round, err := base64.StdEncoding.DecodeString(dr.TextB64)
			if err != nil || !bytes.Equal(round, payload) {
				errs <- fmt.Errorf("decompress %d: round trip mismatch (err=%v)", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The metrics payload must reflect the traffic, including nonzero PRAM
	// work per exercised algorithm.
	var snap MetricsSnapshot
	if status := getJSON(t, base+"/metrics", &snap); status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if got := snap.Requests["POST /v1/dicts/{id}/match"].Count; got != matchReqs {
		t.Errorf("metrics: %d match requests recorded, want %d", got, matchReqs)
	}
	if got := snap.Requests["POST /v1/compress"].Count; got != lzReqs {
		t.Errorf("metrics: %d compress requests recorded, want %d", got, lzReqs)
	}
	for _, algo := range []string{"preprocess", "match", "check", "compress", "uncompress"} {
		l := snap.PRAM[algo]
		if l.Work <= 0 || l.Depth <= 0 {
			t.Errorf("metrics: PRAM ledger %q empty: %+v", algo, l)
		}
	}
	if snap.PRAM["match"].Ops != matchReqs {
		t.Errorf("metrics: match ops = %d, want %d", snap.PRAM["match"].Ops, matchReqs)
	}
	if snap.Registry.Dicts != 1 || snap.Registry.Capacity != 4 {
		t.Errorf("metrics: registry = %+v", snap.Registry)
	}
	if rm := snap.Requests["POST /v1/dicts/{id}/match"]; rm.P50Micros <= 0 || rm.MaxMicros <= 0 {
		t.Errorf("metrics: empty latency histogram: %+v", rm)
	}
	if srv.Registry().Len() != 1 {
		t.Errorf("registry length = %d", srv.Registry().Len())
	}

	// Graceful shutdown: Run must return nil and the port must close.
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestParseExpandRoundTrip exercises the §5 endpoints: optimal parse into
// word references, then expansion back to the text.
func TestParseExpandRoundTrip(t *testing.T) {
	_, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Prefix-closed dictionary over {a,b} — every text is parseable.
	status, body := postJSON(t, base+"/v1/dicts",
		map[string]any{"patterns": []string{"a", "b", "ab", "aba", "bb"}})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	text := "abababbbabaab"
	status, body = postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/parse", base, created.ID),
		map[string]any{"text": text})
	if status != http.StatusOK {
		t.Fatalf("parse: %d %s", status, body)
	}
	var pr parseResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Phrases == 0 || pr.Phrases > len(text) {
		t.Fatalf("parse: %d phrases for %d bytes", pr.Phrases, len(text))
	}
	status, body = postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/expand", base, created.ID),
		map[string]any{"refs": pr.Refs})
	if status != http.StatusOK {
		t.Fatalf("expand: %d %s", status, body)
	}
	var er expandResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	round, err := base64.StdEncoding.DecodeString(er.TextB64)
	if err != nil || string(round) != text {
		t.Fatalf("expand round trip: %q err=%v", round, err)
	}

	// A text outside the alphabet cannot be parsed: 422, not a hang or 500.
	status, body = postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/parse", base, created.ID),
		map[string]any{"text": "abcab"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unparseable text: status %d %s, want 422", status, body)
	}
}

// TestErrorPaths covers the robustness layer: unknown IDs, malformed
// bodies, oversized payloads, saturation shedding, and request deadlines.
func TestErrorPaths(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr:         "127.0.0.1:0",
		Procs:        1,
		MaxInflight:  2,
		MaxBodyBytes: 1 << 12,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	if status, _ := postJSON(t, base+"/v1/dicts/nope/match", map[string]any{"text": "x"}); status != http.StatusNotFound {
		t.Errorf("unknown dict: status %d, want 404", status)
	}
	resp, err := http.Post(base+"/v1/dicts", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if status, _ := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": []string{""}}); status != http.StatusBadRequest {
		t.Errorf("empty pattern: status %d, want 400", status)
	}
	big := bytes.Repeat([]byte("a"), 1<<13) // over MaxBodyBytes once JSON-wrapped
	if status, _ := postJSON(t, base+"/v1/compress", map[string]any{"text": string(big)}); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: want 413")
	}
	if status, _ := postJSON(t, base+"/v1/decompress", map[string]any{"dataB64": "AAAA"}); status != http.StatusUnprocessableEntity {
		t.Errorf("bad stream: want 422")
	}

	// Saturation: hold both limiter slots, then any /v1 request sheds 429
	// while /metrics (unlimited) still answers.
	if !srv.Limiter().TryAcquire() || !srv.Limiter().TryAcquire() {
		t.Fatal("could not saturate limiter")
	}
	status, body := postJSON(t, base+"/v1/compress", map[string]any{"text": "hello"})
	if status != http.StatusTooManyRequests {
		t.Errorf("saturated: status %d %s, want 429", status, body)
	}
	if status := getJSON(t, base+"/metrics", nil); status != http.StatusOK {
		t.Errorf("metrics under saturation: status %d", status)
	}
	srv.Limiter().Release()
	srv.Limiter().Release()
	if status, _ := postJSON(t, base+"/v1/compress", map[string]any{"text": "hello"}); status != http.StatusOK {
		t.Errorf("after release: status %d, want 200", status)
	}
	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.Limiter.Rejected == 0 {
		t.Error("metrics: limiter rejection not recorded")
	}
}

// TestRequestDeadline pins the per-request timeout: with a deadline that
// has always already expired, handlers answer 503 instead of running the
// algorithms.
func TestRequestDeadline(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr:           "127.0.0.1:0",
		Procs:          1,
		RequestTimeout: time.Nanosecond,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	status, body := postJSON(t, base+"/v1/compress", map[string]any{"text": "aaaa"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d %s, want 503", status, body)
	}
	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.Timeouts == 0 {
		t.Error("metrics: timeout not recorded")
	}
}
